# hierdet — build/test/experiment entry points. Standard library only; no
# network access required for any target.

GO ?= go

.PHONY: all build test test-short race cover bench bench-json bench-scale bench-compare fuzz figures alpha examples smoke smoke-metrics soak fmt vet lint clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One bench per paper artifact (Table I, Figures 4–5) plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the recorded benchmark trajectories (append-only; see EXPERIMENTS.md).
bench-json:
	$(GO) run ./cmd/benchjson

# Live-runtime scale lanes at p ∈ {127, 511, 1023} → BENCH_scale.json.
bench-scale:
	$(GO) run ./cmd/benchjson -suite scale

# Perf drift gate: diff the last two entries of the scale trajectory (CI
# points BENCH_COMPARE_OUT at its freshly refreshed copy) and fail when the
# p=1023 parallel lane's throughput regressed more than 10% or its
# observe→solution p99 latency rose more than 150% (latency quantiles on a
# shared box are far noisier than throughput, hence the loose tolerance).
BENCH_COMPARE_OUT ?= BENCH_scale.json
bench-compare:
	$(GO) run ./cmd/benchjson -suite scale -compare -out $(BENCH_COMPARE_OUT) \
		-maxregress 'p1023_parallel_intervals_per_sec=10,p1023_parallel_latency_p99_ms>150'

# Short fuzz passes over the wire codecs. Patterns are anchored: a bare
# FuzzDecodeReport would match both FuzzDecodeReport and FuzzDecodeReportV2,
# and `go test -fuzz` refuses ambiguous patterns.
fuzz:
	$(GO) test -run FuzzUnmarshalBinary -fuzz FuzzUnmarshalBinary -fuzztime 30s ./internal/vclock/
	$(GO) test -run FuzzDecodeDelta -fuzz FuzzDecodeDelta -fuzztime 30s ./internal/vclock/
	$(GO) test -run 'FuzzDecodeReport$$' -fuzz 'FuzzDecodeReport$$' -fuzztime 30s ./internal/wire/
	$(GO) test -run FuzzDecodeReportV2 -fuzz FuzzDecodeReportV2 -fuzztime 30s ./internal/wire/
	$(GO) test -run FuzzDecodeReportBatch -fuzz FuzzDecodeReportBatch -fuzztime 30s ./internal/wire/
	$(GO) test -run FuzzDecodeHeartbeat -fuzz FuzzDecodeHeartbeat -fuzztime 30s ./internal/wire/
	$(GO) test -run FuzzDecodeAttach -fuzz FuzzDecodeAttach -fuzztime 30s ./internal/wire/
	$(GO) test -run FuzzDecodeTrace -fuzz FuzzDecodeTrace -fuzztime 30s ./internal/replay/

# Regenerate the paper's evaluation artifacts.
figures:
	$(GO) run ./cmd/figures

alpha:
	$(GO) run ./cmd/alpha

examples:
	@for ex in examples/*/; do \
		echo "== $$ex"; \
		$(GO) run ./$$ex || exit 1; \
	done

# Multi-process failover proof: seven hierdet-node OS processes over TCP,
# one SIGKILLed mid-run, detection counts checked against the in-memory
# reference. Localhost sockets only.
smoke:
	timeout 180 $(GO) run ./examples/distributed

# Observability proof: three hierdet-node OS processes, /metrics scraped off
# node 0's pprof endpoint and checked for every exposition plane.
smoke-metrics:
	timeout 180 ./scripts/metrics_smoke.sh

# Chaos/soak lane: randomized kill/partition schedules under load, every run
# recorded as a trace, replayed and invariant-checked; the failing run's
# trace survives in $(SOAK_OUT) for `hierdet-chaos -replay` triage.
SOAK_DURATION ?= 60s
SOAK_OUT ?= chaos-artifacts
soak:
	$(GO) run ./cmd/hierdet-chaos -duration $(SOAK_DURATION) -out $(SOAK_OUT)

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# vet plus staticcheck when it's on PATH (CI installs it; locally optional).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, ran go vet only"; \
	fi

clean:
	$(GO) clean ./...
	rm -rf internal/*/testdata/fuzz
