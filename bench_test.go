package hierdet

// Benchmarks regenerating the paper's evaluation artifacts. Each bench runs
// the full system — workload, tree, simulated asynchronous network, detector
// — and reports the paper's metrics (messages, comparisons, detections) as
// custom benchmark metrics alongside wall-clock time.
//
//	Table I  → BenchmarkTableI_*          (space/time/messages at fixed size)
//	Figure 4 → BenchmarkFigure4_Messages  (d=2 sweep over tree heights)
//	Figure 5 → BenchmarkFigure5_Messages  (d=4 sweep over tree heights)
//
// Figures 1–3 are worked examples, reproduced as unit tests
// (TestFigure1NonNestedSolution, TestFigure2Scenario, TestFigure3Aggregation).

import (
	"fmt"
	"testing"
)

// runOnce executes one full simulation and returns its result.
func runOnce(algo Algorithm, d, height, rounds int, seed int64) *SimResult {
	topo := BalancedTree(d, height)
	exec := GenerateWorkload(topo, rounds, seed, 1.0, 0, 0)
	return SimulateExecution(SimConfig{
		Topology:  topo,
		Algorithm: algo,
		Seed:      seed,
	}, exec)
}

func reportRun(b *testing.B, res *SimResult) {
	b.Helper()
	b.ReportMetric(float64(res.Net.TotalSent), "msgs/run")
	var cmp, worstCmp int
	for _, st := range res.NodeStats {
		cmp += st.VecComparisons
		if st.VecComparisons > worstCmp {
			worstCmp = st.VecComparisons
		}
	}
	b.ReportMetric(float64(cmp), "cmps/run")
	b.ReportMetric(float64(worstCmp), "worst-node-cmps/run")
	var space, worstSpace int
	for _, hw := range res.ResidentHighWater {
		space += hw
		if hw > worstSpace {
			worstSpace = hw
		}
	}
	b.ReportMetric(float64(worstSpace), "worst-node-ivls/run")
	b.ReportMetric(float64(len(res.RootDetections())), "detections/run")
	// Byte volume under both wire framings: fixed-width v1 and delta-varint
	// v2 with per-link basis chaining. The ratio is the wire saving a TCP
	// deployment sees after the codec change.
	b.ReportMetric(float64(res.WireBytesV1), "bytes-v1/run")
	b.ReportMetric(float64(res.WireBytesV2), "bytes-v2/run")
}

// BenchmarkTableI_Hierarchical measures Algorithm 1 on a 31-node binary tree
// with p=20 occurrences: the hierarchical column of Table I, with the work
// and space spread across nodes (compare worst-node metrics against the
// centralized bench below).
func BenchmarkTableI_Hierarchical(b *testing.B) {
	var res *SimResult
	for i := 0; i < b.N; i++ {
		res = runOnce(HierarchicalAlgorithm, 2, 4, 20, 1)
	}
	reportRun(b, res)
}

// BenchmarkTableI_Centralized measures the baseline [12] on the same input:
// the centralized column of Table I — all comparisons and queue residency at
// the sink, every interval paying multi-hop routing.
func BenchmarkTableI_Centralized(b *testing.B) {
	var res *SimResult
	for i := 0; i < b.N; i++ {
		res = runOnce(CentralizedAlgorithm, 2, 4, 20, 1)
	}
	reportRun(b, res)
}

// benchFigure sweeps tree heights at fixed degree for both algorithms —
// the measured counterpart of the paper's message-complexity figures. h
// follows the paper's convention (number of levels).
func benchFigure(b *testing.B, d, maxLevels int) {
	for levels := 3; levels <= maxLevels; levels++ {
		for _, algo := range []struct {
			name string
			a    Algorithm
		}{{"hier", HierarchicalAlgorithm}, {"central", CentralizedAlgorithm}} {
			b.Run(fmt.Sprintf("h=%d/%s", levels, algo.name), func(b *testing.B) {
				var res *SimResult
				for i := 0; i < b.N; i++ {
					res = runOnce(algo.a, d, levels-1, 20, 1)
				}
				reportRun(b, res)
			})
		}
	}
}

// BenchmarkFigure4_Messages regenerates Figure 4 (d=2, p=20): message totals
// per run appear as the msgs/run metric; hier vs central at equal h is the
// figure's gap.
func BenchmarkFigure4_Messages(b *testing.B) { benchFigure(b, 2, 6) }

// BenchmarkFigure5_Messages regenerates Figure 5 (d=4, p=20).
func BenchmarkFigure5_Messages(b *testing.B) { benchFigure(b, 4, 4) }

// BenchmarkAblationFIFO quantifies the cost of the non-FIFO model: the same
// run over reordering links (resequencer active) versus FIFO links.
func BenchmarkAblationFIFO(b *testing.B) {
	for _, mode := range []struct {
		name string
		fifo bool
	}{{"non-fifo", false}, {"fifo", true}} {
		b.Run(mode.name, func(b *testing.B) {
			topo := BalancedTree(2, 4)
			exec := GenerateWorkload(topo, 20, 1, 1.0, 0, 0)
			var res *SimResult
			for i := 0; i < b.N; i++ {
				res = SimulateExecution(SimConfig{
					Topology: topo,
					Seed:     1,
					FIFO:     mode.fifo,
					MaxDelay: 2000, // several round-spacings: heavy reordering
				}, exec)
			}
			reportRun(b, res)
		})
	}
}

// BenchmarkAblationWorkloadMix shows how the aggregation probability α
// manifests: global pulses (every level aggregates, maximum upward traffic)
// versus group pulses (aggregation dies at the group boundary) versus
// isolated intervals (leaf reports only — the α→0 regime of Eq. 11).
func BenchmarkAblationWorkloadMix(b *testing.B) {
	mixes := []struct {
		name            string
		pGlobal, pGroup float64
	}{
		{"global", 1, 0},
		{"group", 0, 1},
		{"isolated", 0, 0},
	}
	for _, m := range mixes {
		b.Run(m.name, func(b *testing.B) {
			topo := BalancedTree(2, 4)
			exec := GenerateWorkload(topo, 20, 1, m.pGlobal, m.pGroup, 0)
			var res *SimResult
			for i := 0; i < b.N; i++ {
				res = SimulateExecution(SimConfig{Topology: topo, Seed: 1}, exec)
			}
			reportRun(b, res)
		})
	}
}

// BenchmarkBatching measures the report-batching extension: rounds arrive
// faster than the batch window, so each link coalesces several reports per
// message. Compare msgs/run across the two sub-benchmarks.
func BenchmarkBatching(b *testing.B) {
	for _, mode := range []struct {
		name   string
		window int64
	}{{"off", 0}, {"window=500", 500}} {
		b.Run(mode.name, func(b *testing.B) {
			topo := BalancedTree(2, 4)
			exec := GenerateWorkload(topo, 20, 1, 1.0, 0, 0)
			var res *SimResult
			for i := 0; i < b.N; i++ {
				res = SimulateExecution(SimConfig{
					Topology:     topo,
					Seed:         1,
					RoundSpacing: 100,
					BatchWindow:  mode.window,
				}, exec)
			}
			reportRun(b, res)
		})
	}
}

// BenchmarkDetectionLatency measures how long after an occurrence completes
// the root reports it, across tree depths and for both algorithms — the
// latency cost of the hierarchy's pipeline (one aggregation step per level)
// against the centralized algorithm's multi-hop forwarding. Latency is not
// analysed in the paper; this quantifies the trade bought by the message
// and load advantages.
func BenchmarkDetectionLatency(b *testing.B) {
	for _, levels := range []int{3, 4, 5, 6} {
		for _, algo := range []struct {
			name string
			a    Algorithm
		}{{"hier", HierarchicalAlgorithm}, {"central", CentralizedAlgorithm}} {
			b.Run(fmt.Sprintf("h=%d/%s", levels, algo.name), func(b *testing.B) {
				topo := BalancedTree(2, levels-1)
				exec := GenerateWorkload(topo, 15, 1, 1.0, 0, 0)
				var res *SimResult
				for i := 0; i < b.N; i++ {
					res = SimulateExecution(SimConfig{
						Topology:  topo,
						Algorithm: algo.a,
						Seed:      1,
						Verify:    true, // retain members for latency attribution
					}, exec)
				}
				lats := res.RootLatencies()
				if len(lats) == 0 {
					b.Fatal("no attributable detections")
				}
				var sum int64
				for _, l := range lats {
					sum += int64(l)
				}
				b.ReportMetric(float64(sum)/float64(len(lats)), "mean-latency")
			})
		}
	}
}

// BenchmarkHeartbeatTradeoff sweeps the heartbeat period: faster beats find
// failures sooner (repair-latency metric) at proportionally higher control
// traffic (hb-msgs metric) — the operational tuning knob of §III-F.
func BenchmarkHeartbeatTradeoff(b *testing.B) {
	for _, period := range []int64{50, 100, 200, 400} {
		b.Run(fmt.Sprintf("hb=%d", period), func(b *testing.B) {
			topo := BalancedTree(2, 3)
			exec := GenerateWorkload(topo, 15, 1, 1.0, 0, 0)
			var res *SimResult
			for i := 0; i < b.N; i++ {
				res = SimulateExecution(SimConfig{
					Topology:   topo,
					Seed:       1,
					Heartbeats: true,
					HbEvery:    period,
					HbTimeout:  3 * period,
					Failures:   []Failure{{At: 5500, Node: 1}},
				}, exec)
			}
			if len(res.Repairs) == 1 {
				b.ReportMetric(float64(res.Repairs[0].At-5500), "repair-latency")
			}
			b.ReportMetric(float64(res.Net.Sent["hb"]), "hb-msgs/run")
			reportRun(b, res)
		})
	}
}

// BenchmarkFailureRepair measures a run with five injected failures and
// heartbeat detection — the fault-tolerance machinery's end-to-end cost —
// for both repair strategies: the topology oracle and the distributed
// attach protocol.
func BenchmarkFailureRepair(b *testing.B) {
	for _, mode := range []struct {
		name        string
		distributed bool
	}{{"oracle", false}, {"distributed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			topo := BalancedTree(2, 4)
			exec := GenerateWorkload(topo, 20, 1, 1.0, 0, 0)
			var res *SimResult
			for i := 0; i < b.N; i++ {
				res = SimulateExecution(SimConfig{
					Topology:          topo,
					Seed:              1,
					Heartbeats:        true,
					DistributedRepair: mode.distributed,
					Failures: []Failure{
						{At: 3500, Node: 3}, {At: 5500, Node: 1}, {At: 8500, Node: 22},
						{At: 11500, Node: 2}, {At: 14500, Node: 30},
					},
				}, exec)
			}
			reportRun(b, res)
		})
	}
}
