// Command alpha measures the paper's aggregation probability α empirically.
// Eq. 11 models the hierarchical algorithm's traffic with a per-level
// success probability α: each level-i node emits d·α aggregates per interval
// its children deliver, so the per-level aggregate volume decays (or grows)
// geometrically. This tool runs workloads with different synchronization
// locality, reports the measured per-level aggregate counts, derives the
// per-level ratio α̂(ℓ) = sent(ℓ)/sent(ℓ+1) (levels numbered from the
// leaves), and compares the measured total message count with Eq. 11
// evaluated at the mean measured α̂.
//
// Usage:
//
//	go run ./cmd/alpha                      # default sweep
//	go run ./cmd/alpha -d 3 -height 3 -rounds 50
package main

import (
	"flag"
	"fmt"

	"hierdet"
	"hierdet/internal/analytic"
)

func main() {
	var (
		d      = flag.Int("d", 2, "tree degree")
		height = flag.Int("height", 4, "tree height (edges; levels = height+1)")
		rounds = flag.Int("rounds", 40, "workload rounds (the paper's p)")
		seed   = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	fmt.Printf("measuring α on a complete %d-ary tree of height %d, p=%d\n\n", *d, *height, *rounds)
	mixes := []struct {
		name            string
		pGlobal, pGroup float64
	}{
		{"all global pulses", 1, 0},
		{"70% global / 30% group", 0.7, 0.3},
		{"30% global / 70% group", 0.3, 0.7},
		{"all group pulses", 0, 1},
		{"30% global / 70% isolated", 0.3, 0},
	}
	for _, m := range mixes {
		runMix(m.name, *d, *height, *rounds, *seed, m.pGlobal, m.pGroup)
	}
}

func runMix(name string, d, height, rounds int, seed int64, pGlobal, pGroup float64) {
	topo := hierdet.BalancedTree(d, height)
	exec := hierdet.GenerateWorkload(topo, rounds, seed, pGlobal, pGroup, 0)
	res := hierdet.SimulateExecution(hierdet.SimConfig{Topology: topo, Seed: seed}, exec)

	fmt.Printf("%s:\n", name)
	// Depth δ nodes are at level ℓ = height−δ+1 in the paper's numbering
	// (leaves are level 1). AggSentByDepth is keyed by depth.
	fmt.Printf("  %-8s %-8s %-14s %-10s\n", "level", "depth", "aggregates", "α̂(ℓ)")
	var prev int
	var ratios []float64
	for depth := height; depth >= 1; depth-- {
		level := height - depth + 1
		sent := res.AggSentByDepth[depth]
		alphaHat := ""
		if level > 1 && prev > 0 {
			r := float64(sent) / float64(prev)
			ratios = append(ratios, r)
			alphaHat = fmt.Sprintf("%.3f", r)
		}
		fmt.Printf("  %-8d %-8d %-14d %-10s\n", level, depth, sent, alphaHat)
		prev = sent
	}
	mean := 0.0
	for _, r := range ratios {
		mean += r
	}
	if len(ratios) > 0 {
		mean /= float64(len(ratios))
	}
	if mean > 1 {
		mean = 1
	}
	levels := height + 1
	pred := analytic.HierarchicalMessages(rounds, d, levels, mean)
	fmt.Printf("  measured total: %d messages; Eq. 11 at α̂=%.3f predicts %.0f (p=%d, d=%d, h=%d levels)\n\n",
		res.Net.Sent["ivl"], mean, pred, rounds, d, levels)
}
