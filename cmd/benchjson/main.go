// Command benchjson runs a benchmark suite and records the results in a
// machine-readable JSON file. Checked in and regenerated per change, each
// file is a benchmark trajectory: an append-only array with one entry per
// recorded run, so `git log -p BENCH_hotpath.json` — or just reading the
// file — shows how ns/op, B/op, allocs/op, bytes/frame and intervals/sec
// moved with every perf PR, without anyone re-running old commits.
//
// Usage:
//
//	go run ./cmd/benchjson -label "PR 4"    # hot-path suite → BENCH_hotpath.json
//	go run ./cmd/benchjson -suite scale -label "PR 6 post"  # → BENCH_scale.json
//	go run ./cmd/benchjson -short -label L  # quicker pass (CI)
//	go run ./cmd/benchjson -out F -label L  # write elsewhere
//	go run ./cmd/benchjson -suite scale -compare            # diff last two entries
//
// Every recorded entry must carry a unique, non-empty -label: the trajectory
// is the repo's perf ledger, and an unlabeled or duplicated entry is exactly
// the silent gap that makes a ledger unreadable months later, so benchjson
// refuses to append one instead of recording it quietly.
//
// -compare prints a benchstat-style table of the last two recorded entries
// (old → new ns/op and intervals/sec per benchmark, plus summary deltas)
// without running anything; CI attaches it next to the refreshed JSON.
//
// The hotpath suite covers the layers of the report hot path: vclock codec
// and comparisons, wire encode/decode (v1 vs v2, pooled), interval
// aggregation and queue, detector node work, TCP loopback, and the
// simulator's Figure 4/5 byte-volume sweeps. The scale suite runs the live
// runtime's p ∈ {127, 511, 1023} lanes (BenchmarkLiveScale: legacy seed
// plane vs sharded vs batched vs parallel) plus the batched report encode
// path, and summarizes each size's lane speedups — including the parallel
// engine's ratio over the batched sequential baseline, the current
// acceptance headline.
//
// Files recorded in the old single-run format are migrated in place: the
// previous run becomes the trajectory's first entry.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// suite is one `go test -bench` invocation.
type suite struct {
	Pkg       string `json:"package"`
	Pattern   string `json:"pattern"`
	Benchtime string `json:"benchtime"`
	short     string // benchtime override under -short ("" keeps Benchtime)
}

var hotpathSuites = []suite{
	{Pkg: "./internal/vclock", Pattern: "BenchmarkCompareLess|BenchmarkAppendDelta|BenchmarkConsumeDelta|BenchmarkString|BenchmarkLess|BenchmarkMarshal", Benchtime: "20000x"},
	{Pkg: "./internal/wire", Pattern: "BenchmarkEncodeReport|BenchmarkDecodeReport", Benchtime: "20000x"},
	{Pkg: "./internal/interval", Pattern: "BenchmarkAggregate|BenchmarkOverlapAll|BenchmarkQueueCycle", Benchtime: "20000x"},
	{Pkg: "./internal/core", Pattern: "BenchmarkNodeDetection|BenchmarkNodeElimination", Benchtime: "200x", short: "50x"},
	{Pkg: "./internal/transport/tcptransport", Pattern: "BenchmarkLoopbackRoundTrip|BenchmarkRebase", Benchtime: "50000x", short: "5000x"},
	{Pkg: ".", Pattern: "BenchmarkFigure4_Messages|BenchmarkFigure5_Messages", Benchtime: "1x"},
}

var scaleSuites = []suite{
	{Pkg: "./internal/livenet", Pattern: "BenchmarkLiveScale", Benchtime: "16x", short: "2x"},
	{Pkg: "./internal/wire", Pattern: "BenchmarkAppendReportBatch|BenchmarkDecodeReportBatch", Benchtime: "20000x", short: "2000x"},
	{Pkg: "./internal/tenantplane", Pattern: "BenchmarkMultiTenant", Benchtime: "2x", short: "1x"},
}

// result is one benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type suiteOut struct {
	suite
	Results []result `json:"results"`
}

// run is one trajectory entry: everything a single benchjson invocation
// measured.
type run struct {
	Label   string             `json:"label,omitempty"`
	Go      string             `json:"go"`
	GOARCH  string             `json:"goarch"`
	Suites  []suiteOut         `json:"suites"`
	Summary map[string]float64 `json:"summary"`
}

// trajectory is the on-disk document: a note plus the append-only run list.
type trajectory struct {
	Note       string `json:"note"`
	Trajectory []run  `json:"trajectory"`
}

func main() {
	suiteName := flag.String("suite", "hotpath", "suite to run: hotpath or scale")
	out := flag.String("out", "", "output file (default BENCH_<suite>.json)")
	label := flag.String("label", "", "unique annotation for this trajectory entry (required when recording)")
	short := flag.Bool("short", false, "shorter benchtimes for CI lanes")
	compare := flag.Bool("compare", false, "print a benchstat-style diff of the last two recorded entries and exit")
	maxRegress := flag.String("maxregress", "", "with -compare: comma-separated summary drift gates; key=pct fails when new < old*(1-pct/100) (throughput-style, bigger is better), key>pct fails when new > old*(1+pct/100) (latency-style, smaller is better)")
	flag.Parse()

	var suites []suite
	var summarize func([]suiteOut) map[string]float64
	switch *suiteName {
	case "hotpath":
		suites, summarize = hotpathSuites, summarizeHotpath
	case "scale":
		suites, summarize = scaleSuites, summarizeScale
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown suite %q (want hotpath or scale)\n", *suiteName)
		os.Exit(2)
	}
	if *out == "" {
		*out = "BENCH_" + *suiteName + ".json"
	}

	if *compare {
		doc := load(*out)
		if len(doc.Trajectory) < 2 {
			fmt.Fprintf(os.Stderr, "benchjson: %s holds %d entries; -compare needs two\n", *out, len(doc.Trajectory))
			os.Exit(1)
		}
		old, new := doc.Trajectory[len(doc.Trajectory)-2], doc.Trajectory[len(doc.Trajectory)-1]
		printCompare(os.Stdout, old, new)
		if !checkDriftGates(os.Stdout, old, new, *maxRegress) {
			os.Exit(1)
		}
		return
	}

	if strings.TrimSpace(*label) == "" {
		fmt.Fprintln(os.Stderr, "benchjson: refusing to record an unlabeled trajectory entry — pass -label (e.g. -label \"PR 6 post\")")
		os.Exit(2)
	}

	entry := run{
		Label:  *label,
		Go:     runtime.Version(),
		GOARCH: runtime.GOARCH,
	}
	for _, s := range suites {
		bt := s.Benchtime
		if *short && s.short != "" {
			bt = s.short
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s -bench %s -benchtime %s\n", s.Pkg, s.Pattern, bt)
		results, err := runSuite(s.Pkg, s.Pattern, bt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", s.Pkg, err)
			os.Exit(1)
		}
		s.Benchtime = bt
		entry.Suites = append(entry.Suites, suiteOut{suite: s, Results: results})
	}
	entry.Summary = summarize(entry.Suites)

	doc := load(*out)
	for _, prev := range doc.Trajectory {
		if prev.Label == *label {
			fmt.Fprintf(os.Stderr, "benchjson: %s already records an entry labeled %q — every trajectory entry needs a unique label\n", *out, *label)
			os.Exit(2)
		}
	}
	doc.Note = "trajectory of recorded runs, newest last; append with: go run ./cmd/benchjson -suite " + *suiteName + " -label <unique label>"
	doc.Trajectory = append(doc.Trajectory, entry)

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended run %d to %s\n", len(doc.Trajectory), *out)
}

// load reads an existing trajectory file. A file in the pre-trajectory
// format (one bare run object) is migrated: it becomes the first entry. A
// missing or unreadable file starts a fresh trajectory.
func load(path string) trajectory {
	data, err := os.ReadFile(path)
	if err != nil {
		return trajectory{}
	}
	var doc trajectory
	if err := json.Unmarshal(data, &doc); err == nil && doc.Trajectory != nil {
		return doc
	}
	var old struct {
		Go      string             `json:"go"`
		GOARCH  string             `json:"goarch"`
		Suites  []suiteOut         `json:"suites"`
		Summary map[string]float64 `json:"summary"`
	}
	if err := json.Unmarshal(data, &old); err == nil && old.Suites != nil {
		return trajectory{Trajectory: []run{{
			Label: "migrated from single-run format", Go: old.Go, GOARCH: old.GOARCH,
			Suites: old.Suites, Summary: old.Summary,
		}}}
	}
	return trajectory{}
}

func runSuite(pkg, pattern, benchtime string) ([]result, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchtime", benchtime, "-benchmem", "-count", "1", pkg)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("%w\n%s%s", err, stdout.String(), stderr.String())
	}
	var results []result
	sc := bufio.NewScanner(&stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines in output:\n%s", stdout.String())
	}
	return results, nil
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName[/sub][-P]  N  v1 unit1  v2 unit2 ...
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name := fields[0]
	// Strip the trailing -GOMAXPROCS qualifier, keeping sub-benchmark paths.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}

// printCompare renders a benchstat-style diff of two trajectory entries: one
// row per benchmark and tracked unit with old value, new value and relative
// delta, followed by the summary keys the two runs share. Benchmarks present
// in only one entry are listed so a lane appearing or vanishing is visible
// rather than silently dropped.
func printCompare(w io.Writer, old, new run) {
	fmt.Fprintf(w, "old: %s\nnew: %s\n\n", entryTitle(old), entryTitle(new))
	oldRes, newRes := flattenResults(old), flattenResults(new)
	var names []string
	for name := range newRes {
		names = append(names, name)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tunit\told\tnew\tdelta")
	for _, name := range names {
		nr := newRes[name]
		or, ok := oldRes[name]
		if !ok {
			fmt.Fprintf(tw, "%s\t\t(absent)\t\tnew benchmark\n", name)
			continue
		}
		for _, unit := range [...]string{"ns/op", "intervals/sec", "B/op", "allocs/op", "bytes/frame", "worst-node-cmps/run", "latency-p50-ms", "latency-p99-ms"} {
			nv, okN := nr.Metrics[unit]
			ov, okO := or.Metrics[unit]
			if !okN || !okO || ov == 0 {
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\t%.4g\t%.4g\t%+.1f%%\n", name, unit, ov, nv, 100*(nv/ov-1))
		}
	}
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			fmt.Fprintf(tw, "%s\t\t\t(absent)\tbenchmark removed\n", name)
		}
	}
	tw.Flush()
	var keys []string
	for k := range new.Summary {
		if _, ok := old.Summary[k]; ok {
			keys = append(keys, k)
		}
	}
	if len(keys) > 0 {
		sort.Strings(keys)
		fmt.Fprintln(w, "\nsummary")
		for _, k := range keys {
			ov, nv := old.Summary[k], new.Summary[k]
			if ov != 0 {
				fmt.Fprintf(w, "  %s: %.4g -> %.4g (%+.1f%%)\n", k, ov, nv, 100*(nv/ov-1))
			} else {
				fmt.Fprintf(w, "  %s: %.4g -> %.4g\n", k, ov, nv)
			}
		}
	}
}

// checkDriftGates enforces -maxregress: each gate is a summary key plus the
// largest tolerated regression in percent. `key=pct` guards a bigger-is-better
// headline (trips when the newer value falls more than pct below the older),
// `key>pct` guards a smaller-is-better one like a latency quantile (trips when
// the newer value rises more than pct above the older). A key missing from
// either entry trips its gate too — a gated headline silently vanishing from
// the trajectory is exactly the drift the gate exists to catch. Returns false
// when any gate tripped.
func checkDriftGates(w io.Writer, old, new run, spec string) bool {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return true
	}
	ok := true
	for _, gate := range strings.Split(spec, ",") {
		gate = strings.TrimSpace(gate)
		key, pctStr, found := strings.Cut(gate, "=")
		upward := false
		if !found {
			key, pctStr, found = strings.Cut(gate, ">")
			upward = true
		}
		pct, err := strconv.ParseFloat(pctStr, 64)
		if !found || err != nil || pct < 0 {
			fmt.Fprintf(w, "drift gate %q: malformed, want key=pct or key>pct\n", gate)
			ok = false
			continue
		}
		ov, okO := old.Summary[key]
		nv, okN := new.Summary[key]
		switch {
		case !okO || !okN:
			fmt.Fprintf(w, "drift gate %s: FAIL — key missing from %s entry\n",
				key, map[bool]string{true: "newer", false: "older"}[okO])
			ok = false
		case !upward && ov > 0 && nv < ov*(1-pct/100):
			fmt.Fprintf(w, "drift gate %s: FAIL — %.4g -> %.4g (%.1f%% drop, tolerance %.1f%%)\n",
				key, ov, nv, 100*(1-nv/ov), pct)
			ok = false
		case upward && ov > 0 && nv > ov*(1+pct/100):
			fmt.Fprintf(w, "drift gate %s: FAIL — %.4g -> %.4g (%.1f%% rise, tolerance %.1f%%)\n",
				key, ov, nv, 100*(nv/ov-1), pct)
			ok = false
		default:
			fmt.Fprintf(w, "drift gate %s: ok — %.4g -> %.4g (tolerance %.1f%%)\n", key, ov, nv, pct)
		}
	}
	return ok
}

func entryTitle(r run) string {
	if r.Label != "" {
		return r.Label
	}
	return "(unlabeled)"
}

// flattenResults indexes an entry's benchmark lines by name.
func flattenResults(r run) map[string]result {
	out := map[string]result{}
	for _, s := range r.Suites {
		for _, res := range s.Results {
			out[res.Name] = res
		}
	}
	return out
}

// metric finds one benchmark metric in a suite set.
func metric(suites []suiteOut, pkg, name, unit string) (float64, bool) {
	for _, s := range suites {
		if s.Pkg != pkg {
			continue
		}
		for _, r := range s.Results {
			if r.Name == name {
				v, ok := r.Metrics[unit]
				return v, ok
			}
		}
	}
	return 0, false
}

// summarizeHotpath derives the headline numbers the wire/hot-path acceptance
// criteria track.
func summarizeHotpath(suites []suiteOut) map[string]float64 {
	sum := map[string]float64{}
	v1F, ok1 := metric(suites, "./internal/wire", "BenchmarkEncodeReportV2/v1", "bytes/frame")
	absF, ok2 := metric(suites, "./internal/wire", "BenchmarkEncodeReportV2/absolute", "bytes/frame")
	dltF, ok3 := metric(suites, "./internal/wire", "BenchmarkEncodeReportV2/delta", "bytes/frame")
	if ok1 && ok2 && v1F > 0 {
		sum["frame_reduction_pct_v2_absolute"] = 100 * (1 - absF/v1F)
	}
	if ok1 && ok3 && v1F > 0 {
		sum["frame_reduction_pct_v2_delta"] = 100 * (1 - dltF/v1F)
	}
	if a, ok := metric(suites, "./internal/wire", "BenchmarkEncodeReportPooled", "allocs/op"); ok {
		sum["pooled_encode_allocs_per_op"] = a
	}
	if a, ok := metric(suites, "./internal/wire", "BenchmarkDecodeReportPooled/v2-delta", "allocs/op"); ok {
		sum["pooled_decode_allocs_per_op"] = a
	}
	// Simulated byte-volume reduction across the Figure 4/5 height sweeps
	// (worst sub-benchmark, i.e. the smallest saving).
	worst := -1.0
	for _, s := range suites {
		if s.Pkg != "." {
			continue
		}
		for _, r := range s.Results {
			v1b, ok1 := r.Metrics["bytes-v1/run"]
			v2b, ok2 := r.Metrics["bytes-v2/run"]
			if ok1 && ok2 && v1b > 0 {
				if red := 100 * (1 - v2b/v1b); worst < 0 || red < worst {
					worst = red
				}
			}
		}
	}
	if worst >= 0 {
		sum["sim_bytes_reduction_pct_min"] = worst
	}
	if v1, ok1 := metric(suites, "./internal/transport/tcptransport", "BenchmarkLoopbackRoundTrip/v1", "ns/op"); ok1 {
		if v2, ok2 := metric(suites, "./internal/transport/tcptransport", "BenchmarkLoopbackRoundTrip/v2", "ns/op"); ok2 && v2 > 0 {
			sum["loopback_v1_over_v2_speedup"] = v1 / v2
		}
		if nc, ok2 := metric(suites, "./internal/transport/tcptransport", "BenchmarkLoopbackRoundTrip/v2-nochain", "ns/op"); ok2 && nc > 0 {
			sum["loopback_v1_over_v2_nochain_speedup"] = v1 / nc
		}
	}
	return sum
}

// summarizeScale derives the scale-lane headlines: per-size throughput for
// every lane, each size's speedups over the recorded baselines (legacy for
// the delivery-plane lanes, batched-sequential for the parallel engine —
// both measured in the same run), goroutine high-water marks, per-lane
// worst-node comparison counts, the parallel lane's comparison-pruning
// effectiveness (digest filter rate and memo hit rate), and the batched
// encode path's allocation count.
func summarizeScale(suites []suiteOut) map[string]float64 {
	sum := map[string]float64{}
	lanes := []string{"legacy", "sharded", "batched", "parallel"}
	for _, p := range []int{127, 511, 1023} {
		for _, lane := range lanes {
			name := fmt.Sprintf("BenchmarkLiveScale/p=%d/%s", p, lane)
			if v, ok := metric(suites, "./internal/livenet", name, "intervals/sec"); ok {
				sum[fmt.Sprintf("p%d_%s_intervals_per_sec", p, lane)] = v
			}
			if v, ok := metric(suites, "./internal/livenet", name, "peak-goroutines"); ok {
				sum[fmt.Sprintf("p%d_%s_peak_goroutines", p, lane)] = v
			}
			if v, ok := metric(suites, "./internal/livenet", name, "worst-node-cmps/run"); ok {
				sum[fmt.Sprintf("p%d_%s_worst_node_cmps", p, lane)] = v
			}
			if v, ok := metric(suites, "./internal/livenet", name, "latency-p50-ms"); ok {
				sum[fmt.Sprintf("p%d_%s_latency_p50_ms", p, lane)] = v
			}
			if v, ok := metric(suites, "./internal/livenet", name, "latency-p99-ms"); ok {
				sum[fmt.Sprintf("p%d_%s_latency_p99_ms", p, lane)] = v
			}
		}
		// The comparison-pruning layer's effectiveness, parallel lane only
		// (the sequential lanes report no digest/memo activity by design).
		parName := fmt.Sprintf("BenchmarkLiveScale/p=%d/parallel", p)
		if v, ok := metric(suites, "./internal/livenet", parName, "digest-filter-rate"); ok {
			sum[fmt.Sprintf("p%d_digest_filter_rate", p)] = v
		}
		if v, ok := metric(suites, "./internal/livenet", parName, "memo-hit-rate"); ok {
			sum[fmt.Sprintf("p%d_memo_hit_rate", p)] = v
		}
		base := sum[fmt.Sprintf("p%d_legacy_intervals_per_sec", p)]
		if base > 0 {
			for _, lane := range lanes[1:] {
				if v := sum[fmt.Sprintf("p%d_%s_intervals_per_sec", p, lane)]; v > 0 {
					sum[fmt.Sprintf("p%d_speedup_%s_vs_legacy", p, lane)] = v / base
				}
			}
		}
		if batched := sum[fmt.Sprintf("p%d_batched_intervals_per_sec", p)]; batched > 0 {
			if par := sum[fmt.Sprintf("p%d_parallel_intervals_per_sec", p)]; par > 0 {
				sum[fmt.Sprintf("p%d_speedup_parallel_vs_batched", p)] = par / batched
			}
		}
	}
	if a, ok := metric(suites, "./internal/wire", "BenchmarkAppendReportBatch", "allocs/op"); ok {
		sum["batch_encode_allocs_per_op"] = a
	}
	for _, tenants := range []int{1, 16, 256} {
		name := fmt.Sprintf("BenchmarkMultiTenant/p=63/tenants=%d", tenants)
		if v, ok := metric(suites, "./internal/tenantplane", name, "intervals/sec"); ok {
			sum[fmt.Sprintf("tenants%d_intervals_per_sec", tenants)] = v
		}
		if v, ok := metric(suites, "./internal/tenantplane", name, "per-tenant-intervals/sec"); ok {
			sum[fmt.Sprintf("tenants%d_per_tenant_intervals_per_sec", tenants)] = v
		}
		if v, ok := metric(suites, "./internal/tenantplane", name, "goroutines"); ok {
			sum[fmt.Sprintf("tenants%d_goroutines", tenants)] = v
		}
		if v, ok := metric(suites, "./internal/tenantplane", name, "bytes/tenant"); ok {
			sum[fmt.Sprintf("tenants%d_bytes_per_tenant", tenants)] = v
		}
	}
	// Multiplexing overhead: how much total plane throughput costs relative
	// to running the same workload as one predicate.
	if base := sum["tenants1_intervals_per_sec"]; base > 0 {
		for _, tenants := range []int{16, 256} {
			if v := sum[fmt.Sprintf("tenants%d_intervals_per_sec", tenants)]; v > 0 {
				sum[fmt.Sprintf("tenants%d_throughput_vs_single", tenants)] = v / base
			}
		}
	}
	return sum
}
