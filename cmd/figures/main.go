// Command figures regenerates the paper's evaluation artifacts: Table I and
// the message-complexity comparisons of Figures 4 and 5, both from the
// analytic model (Eq. 11 / Eq. 12) and — for network sizes a laptop can
// simulate — from measured runs of the two algorithms on identical
// workloads.
//
// Usage:
//
//	go run ./cmd/figures            # everything
//	go run ./cmd/figures -fig4     # just Figure 4
//	go run ./cmd/figures -fig5     # just Figure 5
//	go run ./cmd/figures -table1   # just Table I
//	go run ./cmd/figures -nosim    # analytic curves only (fast)
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"hierdet"
	"hierdet/internal/analytic"
	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// writeCSV saves one figure's data when -csv was given.
func writeCSV(name, content string) {
	if *csvDir == "" {
		return
	}
	path := filepath.Join(*csvDir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  (wrote %s)\n", path)
}

var (
	fig4   = flag.Bool("fig4", false, "print Figure 4 (d=2)")
	sweep  = flag.Bool("sweep", false, "print the measured complexity sweep (Table I across sizes)")
	fig5   = flag.Bool("fig5", false, "print Figure 5 (d=4)")
	table1 = flag.Bool("table1", false, "print Table I")
	nosim  = flag.Bool("nosim", false, "skip simulation validation columns")
	p      = flag.Int("p", 20, "intervals per process (the paper's p)")
	seed   = flag.Int64("seed", 1, "simulation seed")
	csvDir = flag.String("csv", "", "also write figure data as CSV files into this directory")
)

func main() {
	flag.Parse()
	all := !*fig4 && !*fig5 && !*table1 && !*sweep
	if all || *table1 {
		printTableI(*p)
		fmt.Println()
	}
	if all || *sweep {
		printSweep(*p, *seed)
		fmt.Println()
	}
	if all || *fig4 {
		printFigure(4, 2, *p, !*nosim, *seed)
		fmt.Println()
	}
	if all || *fig5 {
		printFigure(5, 4, *p, !*nosim, *seed)
	}
}

func printTableI(p int) {
	const d, h = 2, 5
	n := int(math.Pow(d, h))
	fmt.Printf("Table I — complexity comparison, p=%d, d=%d, h=%d (n=d^h=%d), α=0.45\n", p, d, h, n)
	hier, central := analytic.TableI(p, d, h, 0.45)
	fmt.Printf("  %-26s %-28s %-28s\n", "metric", "hierarchical (Algorithm 1)", "centralized [12]")
	fmt.Printf("  %-26s %-28s %-28s\n", "space O(pn²) slots",
		fmt.Sprintf("%.0f (across all nodes)", hier.SpaceIntervalSlots),
		fmt.Sprintf("%.0f (at the sink)", central.SpaceIntervalSlots))
	fmt.Printf("  %-26s %-28s %-28s\n", "time bound (comparisons)",
		fmt.Sprintf("O(d²pn²) = %.0f", hier.TimeComparisons),
		fmt.Sprintf("O(pn³) = %.0f", central.TimeComparisons))
	fmt.Printf("  %-26s %-28s %-28s\n", "messages",
		fmt.Sprintf("%.0f (Eq. 11)", hier.Messages),
		fmt.Sprintf("%.0f (Eq. 12)", central.Messages))

	// Measured counterpart on a simulable size: d=2, h=4 → 31 nodes.
	topo := hierdet.BalancedTree(2, 4)
	exec := hierdet.GenerateWorkload(topo, p, 1, 1.0, 0, 0)
	hres := hierdet.SimulateExecution(hierdet.SimConfig{Topology: topo, Seed: 1}, exec)
	cres := hierdet.SimulateExecution(hierdet.SimConfig{Topology: topo, Algorithm: hierdet.CentralizedAlgorithm, Seed: 1}, exec)

	maxNode, total := 0, 0
	for _, hw := range hres.ResidentHighWater {
		total += hw
		if hw > maxNode {
			maxNode = hw
		}
	}
	var maxCmp, totalCmp int
	for _, st := range hres.NodeStats {
		totalCmp += st.VecComparisons
		if st.VecComparisons > maxCmp {
			maxCmp = st.VecComparisons
		}
	}
	sinkStats := cres.NodeStats[0]
	fmt.Printf("\n  measured on %d nodes (complete binary tree h=4), %d global pulses:\n", topo.N(), p)
	fmt.Printf("  %-26s %-28s %-28s\n", "queue residency (peak)",
		fmt.Sprintf("%d total, worst node %d", total, maxNode),
		fmt.Sprintf("%d all at the sink", cres.ResidentHighWater[0]))
	fmt.Printf("  %-26s %-28s %-28s\n", "vector comparisons",
		fmt.Sprintf("%d total, worst node %d", totalCmp, maxCmp),
		fmt.Sprintf("%d all at the sink", sinkStats.VecComparisons))
	fmt.Printf("  %-26s %-28s %-28s\n", "messages",
		fmt.Sprintf("%d (1 hop each)", hres.Net.Sent["ivl"]),
		fmt.Sprintf("%d (hop-by-hop)", cres.Net.Sent["fwd"]))
}

// printSweep measures, across network sizes, how the paper's three cost
// metrics distribute: the hierarchical algorithm's worst node versus the
// centralized sink. This is Table I's asymptotic story made concrete.
func printSweep(p int, seed int64) {
	fmt.Printf("Measured complexity sweep — worst single node, hierarchical vs centralized (p=%d global pulses)\n", p)
	fmt.Printf("  %-7s %-6s %-22s %-22s %-20s %-16s\n",
		"nodes", "h", "comparisons (worst)", "resident ivls (worst)", "messages", "bytes")
	for _, levels := range []int{3, 4, 5, 6} {
		topoH := tree.Balanced(2, levels-1)
		topoC := tree.Balanced(2, levels-1)
		exec := workload.Generate(workload.Config{Topology: topoH, Rounds: p, Seed: seed, PGlobal: 1})
		h := hierdet.SimulateExecution(hierdet.SimConfig{Topology: topoH, Seed: seed}, exec)
		c := hierdet.SimulateExecution(hierdet.SimConfig{Topology: topoC, Algorithm: hierdet.CentralizedAlgorithm, Seed: seed}, exec)
		worst := func(r *hierdet.SimResult) (cmp, hw int) {
			for _, st := range r.NodeStats {
				if st.VecComparisons > cmp {
					cmp = st.VecComparisons
				}
			}
			for _, w := range r.ResidentHighWater {
				if w > hw {
					hw = w
				}
			}
			return
		}
		hc, hh := worst(h)
		cc, ch := worst(c)
		fmt.Printf("  %-7d %-6d %8d vs %-10d %8d vs %-10d %7d vs %-9d %7d vs %d\n",
			topoH.N(), levels, hc, cc, hh, ch,
			h.Net.TotalSent, c.Net.TotalSent, h.Net.TotalBytes, c.Net.TotalBytes)
	}
	fmt.Println("  (hierarchical vs centralized; the centralized worst node is always the sink)")
}

func printFigure(num, d, p int, sim bool, seed int64) {
	fmt.Printf("Figure %d — total messages vs tree height, d=%d, p=%d\n", num, d, p)
	fmt.Printf("  %-3s %-8s %-14s %-14s %-14s\n", "h", "n=d^h", "hier α=0.1", "hier α=0.45", "centralized")
	maxH := 10
	if d == 4 {
		maxH = 7
	}
	var csv strings.Builder
	csv.WriteString("h,n,hier_alpha_0.1,hier_alpha_0.45,centralized\n")
	for h := 2; h <= maxH; h++ {
		n := math.Pow(float64(d), float64(h))
		h01 := analytic.HierarchicalMessages(p, d, h, 0.1)
		h45 := analytic.HierarchicalMessages(p, d, h, 0.45)
		cen := analytic.CentralizedMessages(p, d, h)
		fmt.Printf("  %-3d %-8.0f %-14.0f %-14.0f %-14.0f\n", h, n, h01, h45, cen)
		fmt.Fprintf(&csv, "%d,%.0f,%.0f,%.0f,%.0f\n", h, n, h01, h45, cen)
	}
	writeCSV(fmt.Sprintf("fig%d.csv", num), csv.String())
	if !sim {
		return
	}
	// The paper's h counts tree LEVELS (leaves at level 1, root at level h);
	// a complete d-ary tree with h levels has height h−1 edges. Building
	// Balanced(d, h−1) makes the measured centralized count equal Eq. 12 at
	// the same h exactly.
	fmt.Printf("\n  simulation validation (complete %d-ary trees with h levels, %d global-pulse rounds, seed %d):\n", d, p, seed)
	fmt.Printf("  %-3s %-8s %-12s %-12s %-12s %-8s %-22s\n", "h", "nodes", "hier msgs", "cent msgs", "Eq.12", "ratio", "root detections (h/c)")
	maxSimH := 7
	if d == 4 {
		maxSimH = 5
	}
	for h := 3; h <= maxSimH; h++ {
		topo := tree.Balanced(d, h-1)
		exec := workload.Generate(workload.Config{Topology: topo, Rounds: p, Seed: seed, PGlobal: 1})
		hres := hierdet.SimulateExecution(hierdet.SimConfig{Topology: topo, Seed: seed}, exec)
		cres := hierdet.SimulateExecution(hierdet.SimConfig{Topology: topo, Algorithm: hierdet.CentralizedAlgorithm, Seed: seed}, exec)
		hm, cm := hres.Net.Sent["ivl"], cres.Net.Sent["fwd"]
		fmt.Printf("  %-3d %-8d %-12d %-12d %-12.0f %-8.2f %d/%d\n",
			h, topo.N(), hm, cm, analytic.CentralizedMessages(p, d, h),
			float64(cm)/float64(hm),
			len(hres.RootDetections()), len(cres.RootDetections()))
	}
	fmt.Println("  notes: measured centralized messages equal Eq. 12 exactly. With every round a")
	fmt.Println("  global pulse every node reports once per round, so measured hierarchical traffic")
	fmt.Println("  is (nodes−1)·p — one 1-hop report per node per occurrence, the regime Eq. 11")
	fmt.Println("  models with its per-level aggregation probability α; both algorithms detect all")
	fmt.Println("  p occurrences.")
}
