// Command hdmon runs one monitoring simulation end to end and reports what
// was detected and what it cost — a workbench for exploring the hierarchical
// detector (and the centralized baseline) on arbitrary topologies, workload
// mixes and failure schedules.
//
// Examples:
//
//	go run ./cmd/hdmon -n 40 -degree 3 -rounds 30 -pglobal 0.3 -pgroup 0.4
//	go run ./cmd/hdmon -n 15 -algo central -rounds 20 -pglobal 1
//	go run ./cmd/hdmon -n 31 -rounds 20 -pglobal 1 -fail 1@5500 -fail 8@9200 -heartbeats
//	go run ./cmd/hdmon -shape chain -n 10 -rounds 10 -pglobal 1 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hierdet"
)

type failureList []hierdet.Failure

func (f *failureList) String() string { return fmt.Sprint(*f) }

func (f *failureList) Set(s string) error {
	parts := strings.Split(s, "@")
	if len(parts) != 2 {
		return fmt.Errorf("want node@time, got %q", s)
	}
	node, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("bad node in %q: %v", s, err)
	}
	at, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return fmt.Errorf("bad time in %q: %v", s, err)
	}
	*f = append(*f, hierdet.Failure{At: at, Node: node})
	return nil
}

func main() {
	var (
		n        = flag.Int("n", 15, "number of processes")
		degree   = flag.Int("degree", 2, "tree degree (balanced/random shapes)")
		shape    = flag.String("shape", "balanced", "topology: balanced | chain | star | random")
		algo     = flag.String("algo", "hier", "algorithm: hier | central")
		rounds   = flag.Int("rounds", 20, "workload rounds (intervals per process)")
		pglobal  = flag.Float64("pglobal", 0.5, "probability a round satisfies the global predicate")
		pgroup   = flag.Float64("pgroup", 0.25, "probability a round satisfies only per-subtree predicates")
		seed     = flag.Int64("seed", 1, "seed for workload, delays and jitter")
		fifo     = flag.Bool("fifo", false, "force FIFO links (the model is non-FIFO)")
		hb       = flag.Bool("heartbeats", false, "detect failures via heartbeats instead of oracle repair")
		distrep  = flag.Bool("distrepair", false, "repair the tree with the distributed attach protocol (implies -heartbeats)")
		resend   = flag.Bool("resend", false, "re-report last aggregate after adoption (Figure 2(c) behaviour)")
		verbose  = flag.Bool("v", false, "print every detection at every level")
		failures failureList
	)
	flag.Var(&failures, "fail", "inject failure node@time (repeatable)")
	flag.Parse()

	var topo *hierdet.Topology
	switch *shape {
	case "balanced":
		topo = hierdet.BalancedTreeN(*n, *degree)
	case "chain":
		topo = hierdet.ChainTree(*n)
	case "star":
		topo = hierdet.StarTree(*n)
	case "random":
		topo = hierdet.RandomTree(*n, *degree, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown shape %q\n", *shape)
		os.Exit(2)
	}

	// Keep the mix a valid distribution when only -pglobal was raised.
	if *pglobal+*pgroup > 1 {
		*pgroup = 1 - *pglobal
	}

	if *distrep {
		*hb = true
	}
	cfg := hierdet.SimConfig{
		Topology:          topo,
		Rounds:            *rounds,
		PGlobal:           *pglobal,
		PGroup:            *pgroup,
		Seed:              *seed,
		FIFO:              *fifo,
		Failures:          failures,
		Heartbeats:        *hb,
		DistributedRepair: *distrep,
		ResendLastOnAdopt: *resend,
		Verify:            true,
	}
	if *algo == "central" {
		cfg.Algorithm = hierdet.CentralizedAlgorithm
	} else if *algo != "hier" {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	res := hierdet.Simulate(cfg)

	fmt.Printf("topology: %s, %d processes, height %d, degree %d; algorithm: %s; seed %d\n",
		*shape, topo.N(), topo.Height(), topo.Degree(), *algo, *seed)
	if len(failures) > 0 {
		fmt.Printf("failures injected: %v (crashed during run: %v)\n", []hierdet.Failure(failures), res.Failed)
	}

	roots := res.RootDetections()
	fmt.Printf("\nglobal/root detections: %d\n", len(roots))
	for _, d := range roots {
		fmt.Printf("  t=%-8d node %-3d covering %d processes\n", d.Time, d.Node, len(d.Det.Agg.Span))
	}
	if lats := res.RootLatencies(); len(lats) > 0 {
		var sum, max int64
		for _, l := range lats {
			sum += int64(l)
			if int64(l) > max {
				max = int64(l)
			}
		}
		fmt.Printf("detection latency after round completion: mean %dt, max %dt\n",
			sum/int64(len(lats)), max)
	}
	if *verbose {
		fmt.Printf("\nall detections (%d):\n", len(res.Detections))
		for _, d := range res.Detections {
			kind := "group"
			if d.AtRoot {
				kind = "ROOT"
			}
			fmt.Printf("  t=%-8d %-5s node %-3d span %v\n", d.Time, kind, d.Node, d.Det.Agg.Span)
		}
	}

	fmt.Println()
	if err := res.WriteSummary(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "summary: %v\n", err)
		os.Exit(1)
	}
}
