// Command hdmon runs one monitoring simulation end to end and reports what
// was detected and what it cost — a workbench for exploring the hierarchical
// detector (and the centralized baseline) on arbitrary topologies, workload
// mixes and failure schedules.
//
// Examples:
//
//	go run ./cmd/hdmon -n 40 -degree 3 -rounds 30 -pglobal 0.3 -pgroup 0.4
//	go run ./cmd/hdmon -n 15 -algo central -rounds 20 -pglobal 1
//	go run ./cmd/hdmon -n 31 -rounds 20 -pglobal 1 -fail 1@5500 -fail 8@9200 -heartbeats
//	go run ./cmd/hdmon -shape chain -n 10 -rounds 10 -pglobal 1 -v
//	go run ./cmd/hdmon -live -n 15 -rounds 20 -pglobal 1 -fail 1@10 -v
//
// With -live the detector runs on real goroutines and channels instead of
// the deterministic simulator; failures are then injected at round
// boundaries (-fail node@round) and repaired by the live heartbeat/attach
// machinery, and per-node runtime metrics are reported.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hierdet"
)

type failureList []hierdet.Failure

func (f *failureList) String() string { return fmt.Sprint(*f) }

func (f *failureList) Set(s string) error {
	parts := strings.Split(s, "@")
	if len(parts) != 2 {
		return fmt.Errorf("want node@time, got %q", s)
	}
	node, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("bad node in %q: %v", s, err)
	}
	at, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return fmt.Errorf("bad time in %q: %v", s, err)
	}
	*f = append(*f, hierdet.Failure{At: at, Node: node})
	return nil
}

func main() {
	var (
		n        = flag.Int("n", 15, "number of processes")
		degree   = flag.Int("degree", 2, "tree degree (balanced/random shapes)")
		shape    = flag.String("shape", "balanced", "topology: balanced | chain | star | random")
		algo     = flag.String("algo", "hier", "algorithm: hier | central")
		rounds   = flag.Int("rounds", 20, "workload rounds (intervals per process)")
		pglobal  = flag.Float64("pglobal", 0.5, "probability a round satisfies the global predicate")
		pgroup   = flag.Float64("pgroup", 0.25, "probability a round satisfies only per-subtree predicates")
		seed     = flag.Int64("seed", 1, "seed for workload, delays and jitter")
		fifo     = flag.Bool("fifo", false, "force FIFO links (the model is non-FIFO)")
		hb       = flag.Bool("heartbeats", false, "detect failures via heartbeats instead of oracle repair")
		distrep  = flag.Bool("distrepair", false, "repair the tree with the distributed attach protocol (implies -heartbeats)")
		resend   = flag.Bool("resend", false, "re-report last aggregate after adoption (Figure 2(c) behaviour)")
		live     = flag.Bool("live", false, "run on real goroutines/channels instead of the simulator")
		metrics  = flag.String("metrics-addr", "", "with -live: serve Prometheus /metrics on this address for the run's duration")
		verbose  = flag.Bool("v", false, "print every detection at every level")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the run here")
		memprof  = flag.String("memprofile", "", "write a heap profile taken after the run here")
		failures failureList
	)
	flag.Var(&failures, "fail", "inject failure node@time, or node@round with -live (repeatable)")
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hdmon:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hdmon:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hdmon:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hdmon:", err)
			}
			f.Close()
		}()
	}

	var topo *hierdet.Topology
	switch *shape {
	case "balanced":
		topo = hierdet.BalancedTreeN(*n, *degree)
	case "chain":
		topo = hierdet.ChainTree(*n)
	case "star":
		topo = hierdet.StarTree(*n)
	case "random":
		topo = hierdet.RandomTree(*n, *degree, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown shape %q\n", *shape)
		os.Exit(2)
	}

	// Keep the mix a valid distribution when only -pglobal was raised.
	if *pglobal+*pgroup > 1 {
		*pgroup = 1 - *pglobal
	}

	if *live {
		if *algo != "hier" {
			fmt.Fprintln(os.Stderr, "-live supports only the hierarchical algorithm")
			os.Exit(2)
		}
		runLive(topo, *rounds, *pglobal, *pgroup, *seed, failures, *resend, *verbose, *metrics)
		return
	}

	if *distrep {
		*hb = true
	}
	cfg := hierdet.SimConfig{
		Topology:          topo,
		Rounds:            *rounds,
		PGlobal:           *pglobal,
		PGroup:            *pgroup,
		Seed:              *seed,
		FIFO:              *fifo,
		Failures:          failures,
		Heartbeats:        *hb,
		DistributedRepair: *distrep,
		ResendLastOnAdopt: *resend,
		Verify:            true,
	}
	if *algo == "central" {
		cfg.Algorithm = hierdet.CentralizedAlgorithm
	} else if *algo != "hier" {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	res := hierdet.Simulate(cfg)

	fmt.Printf("topology: %s, %d processes, height %d, degree %d; algorithm: %s; seed %d\n",
		*shape, topo.N(), topo.Height(), topo.Degree(), *algo, *seed)
	if len(failures) > 0 {
		fmt.Printf("failures injected: %v (crashed during run: %v)\n", []hierdet.Failure(failures), res.Failed)
	}

	roots := res.RootDetections()
	fmt.Printf("\nglobal/root detections: %d\n", len(roots))
	for _, d := range roots {
		fmt.Printf("  t=%-8d node %-3d covering %d processes\n", d.Time, d.Node, len(d.Det.Agg.Span))
	}
	if lats := res.RootLatencies(); len(lats) > 0 {
		var sum, max int64
		for _, l := range lats {
			sum += int64(l)
			if int64(l) > max {
				max = int64(l)
			}
		}
		fmt.Printf("detection latency after round completion: mean %dt, max %dt\n",
			sum/int64(len(lats)), max)
	}
	if *verbose {
		fmt.Printf("\nall detections (%d):\n", len(res.Detections))
		for _, d := range res.Detections {
			kind := "group"
			if d.AtRoot {
				kind = "ROOT"
			}
			fmt.Printf("  t=%-8d %-5s node %-3d span %v\n", d.Time, kind, d.Node, d.Det.Agg.Span)
		}
	}

	fmt.Println()
	if err := res.WriteSummary(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "summary: %v\n", err)
		os.Exit(1)
	}
}

// runLive executes the workload on the live runtime: one goroutine per
// process, reports racing over channels, failures crash-stopped at round
// boundaries and repaired by heartbeats plus the distributed attach protocol.
func runLive(topo *hierdet.Topology, rounds int, pglobal, pgroup float64, seed int64, failures failureList, resend, verbose bool, metricsAddr string) {
	exec := hierdet.GenerateWorkload(topo, rounds, seed, pglobal, pgroup, 0)

	// In live mode a failure's time is the round boundary it lands on.
	for _, f := range failures {
		if f.Node < 0 || f.Node >= topo.N() {
			fmt.Fprintf(os.Stderr, "-fail %d@%d: no such process (topology has %d)\n",
				f.Node, f.At, topo.N())
			os.Exit(2)
		}
	}
	sort.Slice(failures, func(i, j int) bool { return failures[i].At < failures[j].At })

	repaired := make(chan hierdet.LiveRepair, topo.N())
	cluster := hierdet.NewLiveCluster(hierdet.LiveConfig{
		Topology: topo, Seed: seed, Verify: true,
		Failure: hierdet.LiveFailureOptions{
			HbEvery:           500 * time.Microsecond,
			ResendLastOnAdopt: resend,
		},
		Events: func(e hierdet.Event) {
			if e.Kind == hierdet.EventRepairConcluded {
				repaired <- hierdet.LiveRepair{Orphan: e.Node, NewParent: e.Peer}
			}
		},
	})
	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", cluster.Registry().Handler())
		go func() {
			if err := http.ListenAndServe(metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "hdmon: metrics:", err)
			}
		}()
	}

	feed := func(lo, hi int) {
		var wg sync.WaitGroup
		for p := 0; p < topo.N(); p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for k := lo; k < hi && k < len(exec.Streams[p]); k++ {
					cluster.Observe(p, exec.Streams[p][k])
					time.Sleep(20 * time.Microsecond)
				}
			}(p)
		}
		wg.Wait()
	}

	start := time.Now()
	prev := 0
	for _, f := range failures {
		boundary := int(f.At)
		if boundary < 0 {
			boundary = 0
		}
		if boundary > rounds {
			boundary = rounds
		}
		feed(prev, boundary)
		prev = boundary
		cluster.Drain()
		orphans := cluster.Kill(f.Node)
		fmt.Printf("killed node %d after round %d: %d orphaned subtrees\n", f.Node, boundary, orphans)
		for i := 0; i < orphans; i++ {
			select {
			case r := <-repaired:
				if r.NewParent == hierdet.NoParent {
					fmt.Printf("  orphan %d: no live candidate, now a partition root\n", r.Orphan)
				} else {
					fmt.Printf("  orphan %d adopted by node %d\n", r.Orphan, r.NewParent)
				}
			case <-time.After(30 * time.Second):
				fmt.Fprintln(os.Stderr, "timed out waiting for tree repair")
				os.Exit(1)
			}
		}
		cluster.Drain()
	}
	feed(prev, rounds)
	dets := cluster.Stop()
	elapsed := time.Since(start)

	fmt.Printf("\nlive run: %d processes, %d rounds in %v; failed: %v\n",
		topo.N(), rounds, elapsed.Round(time.Millisecond), cluster.Failed())
	roots := 0
	for _, d := range dets {
		if d.AtRoot {
			roots++
			if verbose {
				fmt.Printf("  ROOT  node %-3d span %d processes\n", d.Node, len(d.Det.Agg.Span))
			}
		}
	}
	fmt.Printf("root detections: %d (of %d total at all levels)\n", roots, len(dets))

	cm := cluster.ClusterMetrics()
	fmt.Printf("messages: %d in / %d out; duplicates dropped: %d; stale reports: %d; "+
		"reseq high water: %d; repairs: %d\n",
		cm.MsgsIn, cm.MsgsOut, cm.Duplicates, cm.StaleReports, cm.ReseqHighWater, cm.Repairs)
	if verbose {
		fmt.Println("\nper-node metrics:")
		fmt.Printf("  %-4s %6s %6s %5s %6s %5s %4s\n", "node", "in", "out", "dup", "detect", "buf^", "rep")
		for _, m := range cluster.MetricsByNode() {
			fmt.Printf("  %-4d %6d %6d %5d %6d %5d %4d\n",
				m.ID, m.MsgsIn, m.MsgsOut, m.Duplicates, m.Detections, m.ReseqHighWater, m.Repairs)
		}
	}
}
