// Command hierdet-chaos is the randomized record/verify soak lane: it keeps
// launching chaotic live runs — random topology, random workload mix, random
// crash-stop schedule, random delivery plane, sometimes split across several
// OS-level TCP participants — records every run as a trace artifact, and
// checks the invariants the runtime promises:
//
//   - soundness: every detection's solution set passes trace.CheckDetection,
//     on the recording and on a replay through an independently chosen plane
//     (on multi-participant recordings, aggregates that crossed TCP arrive
//     opaque — no member expansion on the wire — so only detections with
//     full membership are checkable there; the replay, which always runs in
//     one process, re-checks the same execution with full membership)
//   - reconciliation: the cluster's counter ledger agrees with its lifecycle
//     event stream (detections↔solution_found, repairs↔repair_concluded,
//     msgsOut↔report_sent; kill-free runs additionally balance sent against
//     received exactly)
//   - ground truth: kill-free runs must detect exactly what the centralized
//     flat reference detects
//   - determinism: traces the recorder classified byte-reproducible must
//     replay byte-identically (replay is always run; nondeterministic traces
//     are checked for soundness only)
//
// A run that holds every invariant deletes its artifact; the first failure
// keeps the trace file, prints how to re-run it, and exits nonzero — the
// artifact replays the exact execution under a debugger.
//
// Usage:
//
//	# soak for a minute, artifacts under chaos-artifacts/
//	go run ./cmd/hierdet-chaos -duration 60s -seed 1 -out chaos-artifacts
//
//	# re-run a kept failure artifact, half speed, on the parallel plane
//	go run ./cmd/hierdet-chaos -replay chaos-artifacts/run-0007.hdtr -plane parallel -speed 0.5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hierdet"
	"hierdet/internal/interval"
	"hierdet/internal/livenet"
	"hierdet/internal/trace"
	"hierdet/internal/workload"
)

func main() {
	var (
		duration   = flag.Duration("duration", 30*time.Second, "keep launching chaos runs until this much time has passed")
		seed       = flag.Int64("seed", 1, "base seed; run i derives everything from seed+i")
		n          = flag.Int("n", 15, "processes per run")
		out        = flag.String("out", "chaos-artifacts", "directory for trace artifacts (failures are kept)")
		replayPath = flag.String("replay", "", "replay one trace file instead of soaking")
		plane      = flag.String("plane", "", "delivery plane override (legacy|sharded|batched|parallel); default: recorded plane when replaying, random per verification otherwise")
		speed      = flag.Float64("speed", 0, "replay pacing as a recorded-time multiplier (2 = twice as fast; 0 = as fast as the barriers allow)")
		links      = flag.String("links", "mixed", "link graphs for chaos runs: tree|full|mixed")
	)
	flag.Parse()

	if *replayPath != "" {
		replayOne(*replayPath, *plane, *speed)
		return
	}
	soak(*duration, *seed, *n, *out, *plane, *links)
}

// replayOne re-executes a kept artifact and reports the verdict.
func replayOne(path, plane string, speed float64) {
	tr, err := hierdet.ReadTraceFile(path)
	if err != nil {
		fail("read %s: %v", path, err)
	}
	fmt.Printf("%s: %d nodes, %d steps, %d events, %d detections, plane %s, deterministic=%v\n",
		path, len(tr.Parents), len(tr.Schedule), len(tr.Events), tr.Detections, tr.Plane, tr.Deterministic)
	rep, err := hierdet.NewTraceReplayer(tr, hierdet.TraceReplayerConfig{Plane: plane, Speed: speed})
	if err != nil {
		fail("replayer: %v", err)
	}
	res, err := rep.Run()
	if err != nil {
		rep.Close()
		fail("replay: %v", err)
	}
	if err := checkSoundness(res.Detections, false); err != nil {
		fail("replay detections unsound: %v", err)
	}
	fmt.Printf("replayed on %s: %d detections, match=%v\n", res.Plane, len(res.Detections), res.Match)
	if tr.Deterministic && !res.Deterministic {
		fmt.Println("note: replay went off-script (spurious suspicion under load); parity not checked")
	}
	if res.Deterministic && !res.Match {
		printOutcomeDiff(tr.Outcome, res.Outcome)
		fail("byte parity FAILED on a trace recorded as deterministic")
	}
	fmt.Println("replay invariants held ✓")
}

// soak launches randomized runs until the duration budget is spent (always
// at least one), verifying each and keeping only failing artifacts.
func soak(duration time.Duration, seed int64, n int, out, plane, links string) {
	if err := os.MkdirAll(out, 0o755); err != nil {
		fail("mkdir %s: %v", out, err)
	}
	start := time.Now()
	runs, kills := 0, 0
	for runs == 0 || time.Since(start) < duration {
		runSeed := seed + int64(runs)
		path := filepath.Join(out, fmt.Sprintf("run-%04d.hdtr", runs))
		k, err := chaosRun(runSeed, n, path, plane, links)
		kills += k
		runs++
		if err != nil {
			fmt.Fprintf(os.Stderr, "\nrun %d FAILED: %v\n", runs-1, err)
			fail("artifact kept at %s — re-run it with:\n  go run ./cmd/hierdet-chaos -replay %s", path, path)
		}
		os.Remove(path)
	}
	fmt.Printf("soak clean: %d runs, %d kills, %s — every invariant held ✓\n",
		runs, kills, time.Since(start).Round(time.Millisecond))
}

// chaosRun records one randomized execution to path and verifies it. It
// returns the number of kills scheduled and the first invariant violation.
func chaosRun(seed int64, n int, path, planeFlag, links string) (kills int, err error) {
	rng := rand.New(rand.NewSource(seed))

	treeOnly := links == "tree" || (links == "mixed" && rng.Intn(2) == 0)
	topo := hierdet.BalancedTreeN(n, 2+rng.Intn(2))
	if treeOnly {
		topo.UseTreeLinksOnly()
	}
	rounds := 4 + rng.Intn(5)
	ws := hierdet.TraceWorkload{
		Rounds: rounds, Seed: rng.Int63(),
		PGlobal: 0.6, PGroup: 0.25, PSubset: 0.1,
	}

	// Up to two kills, never the root, each victim distinct. On tree-only
	// graphs every kill is a partition (deterministic); on complete graphs
	// an inner victim's subtree renegotiates adoption, which the recorder
	// classifies nondeterministic — both classes belong in the soak.
	kills = rng.Intn(3)
	victims := rng.Perm(n - 1)[:kills]
	for i := range victims {
		victims[i]++ // shift off the root
	}

	// Slice the rounds into kills+1 observe phases with a kill between each.
	var schedule []hierdet.TraceStep
	cuts := append([]int{0}, sortedCuts(rng, rounds, kills)...)
	cuts = append(cuts, rounds)
	for i := 0; i <= kills; i++ {
		schedule = append(schedule, hierdet.TraceStep{Kind: hierdet.TraceStepObserve, Lo: cuts[i], Hi: cuts[i+1]})
		if i < kills {
			schedule = append(schedule, hierdet.TraceStep{Kind: hierdet.TraceStepKill, Node: victims[i]})
		}
	}

	cfg := hierdet.TraceRecorderConfig{
		Topology: topo,
		Workload: ws,
		Schedule: schedule,
		Plane:    pickPlane(rng, planeFlag),
		Delivery: hierdet.TraceDeliveryOptions{MaxDelay: 200 * time.Microsecond, Seed: rng.Int63()},
	}
	if kills > 0 {
		cfg.Failure = hierdet.TraceFailureOptions{
			HbEvery: 2 * time.Millisecond, HbTimeout: 12 * time.Millisecond, SeekTimeout: 50 * time.Millisecond,
		}
	}
	// A third of the runs split the deployment across loopback TCP.
	if rng.Intn(3) == 0 && n >= 6 {
		cfg.Participants = splitNodes(rng, n)
	}

	rec, err := hierdet.NewTraceRecorder(cfg)
	if err != nil {
		return kills, fmt.Errorf("recorder: %w", err)
	}
	tr, err := rec.Run()
	if err != nil {
		rec.Close()
		return kills, fmt.Errorf("record: %w", err)
	}
	dets := rec.Detections()
	cm := rec.Metrics()
	rec.Close()

	// Persist before verifying, so any violation below keeps the artifact.
	if err := hierdet.WriteTraceFile(path, tr); err != nil {
		return kills, fmt.Errorf("write artifact: %w", err)
	}
	fmt.Printf("run seed=%d n=%d rounds=%d plane=%s links=%s parts=%d kills=%d det=%d deterministic=%v\n",
		seed, n, rounds, cfg.Plane, linksName(treeOnly), max(1, len(cfg.Participants)), kills, len(dets), tr.Deterministic)

	if err := checkSoundness(dets, len(cfg.Participants) > 1); err != nil {
		return kills, fmt.Errorf("recorded detections unsound: %w", err)
	}
	if err := reconcile(cm, kills); err != nil {
		return kills, err
	}
	if kills == 0 {
		if err := checkFlatReference(topo, ws, dets); err != nil {
			return kills, err
		}
	}

	// Replay the artifact (not the in-memory trace: the read-back also
	// proves the codec) through an independently chosen plane.
	tr2, err := hierdet.ReadTraceFile(path)
	if err != nil {
		return kills, fmt.Errorf("read back artifact: %w", err)
	}
	vplane := pickPlane(rng, planeFlag)
	rep, err := hierdet.NewTraceReplayer(tr2, hierdet.TraceReplayerConfig{Plane: vplane})
	if err != nil {
		return kills, fmt.Errorf("replayer: %w", err)
	}
	res, err := rep.Run()
	if err != nil {
		rep.Close()
		return kills, fmt.Errorf("replay on %s: %w", vplane, err)
	}
	if err := checkSoundness(res.Detections, false); err != nil {
		return kills, fmt.Errorf("replay detections unsound: %w", err)
	}
	if tr2.Deterministic && !res.Deterministic {
		fmt.Printf("  note: %s replay went off-script (spurious suspicion under load); parity not checked\n", vplane)
	}
	if res.Deterministic && !res.Match {
		printOutcomeDiff(tr2.Outcome, res.Outcome)
		return kills, fmt.Errorf("byte parity FAILED replaying a deterministic trace on %s (%d vs %d detections)",
			vplane, len(res.Detections), tr2.Detections)
	}
	return kills, nil
}

// printOutcomeDiff decodes both outcome blobs and prints the first few
// diverging entries, so a parity failure names the detection and field that
// went wrong instead of just "bytes differ".
func printOutcomeDiff(recorded, replayed []byte) {
	a, errA := hierdet.DecodeTraceOutcome(recorded)
	b, errB := hierdet.DecodeTraceOutcome(replayed)
	if errA != nil || errB != nil {
		fmt.Fprintf(os.Stderr, "outcome decode for diff failed: recorded=%v replayed=%v\n", errA, errB)
		return
	}
	fmt.Fprintf(os.Stderr, "outcome diff (recorded %d entries, replayed %d):\n", len(a), len(b))
	shown := 0
	for i := 0; i < len(a) || i < len(b); i++ {
		switch {
		case i >= len(a):
			fmt.Fprintf(os.Stderr, "  [%d] only replayed: %+v\n", i, b[i])
		case i >= len(b):
			fmt.Fprintf(os.Stderr, "  [%d] only recorded: %+v\n", i, a[i])
		case fmt.Sprintf("%+v", a[i]) != fmt.Sprintf("%+v", b[i]):
			fmt.Fprintf(os.Stderr, "  [%d] recorded %+v\n  [%d] replayed %+v\n", i, a[i], i, b[i])
		default:
			continue
		}
		if shown++; shown >= 8 {
			fmt.Fprintln(os.Stderr, "  …")
			return
		}
	}
}

// reconcile cross-checks the counter ledger against the lifecycle event
// stream. Counter↔event pairs must agree exactly. The message balance is
// exact only without kills: repair traffic (attach messages) counts into
// msgsOut/msgsIn without being reports, and a victim's in-flight messages
// are dropped — so runs with kills get one-sided bounds.
func reconcile(cm livenet.ClusterMetrics, kills int) error {
	ev := cm.Events
	if cm.Detections != ev["solution_found"] {
		return fmt.Errorf("reconciliation: %d detections vs %d solution_found events", cm.Detections, ev["solution_found"])
	}
	if cm.Repairs != ev["repair_concluded"] {
		return fmt.Errorf("reconciliation: %d repairs vs %d repair_concluded events", cm.Repairs, ev["repair_concluded"])
	}
	if cm.MsgsOut < ev["report_sent"] {
		return fmt.Errorf("reconciliation: %d msgsOut below %d report_sent events", cm.MsgsOut, ev["report_sent"])
	}
	if ev["report_recv"] > ev["report_sent"] {
		return fmt.Errorf("reconciliation: %d report_recv exceeds %d report_sent", ev["report_recv"], ev["report_sent"])
	}
	if kills == 0 {
		if cm.MsgsOut != ev["report_sent"] {
			return fmt.Errorf("reconciliation: kill-free run sent %d messages but logged %d report_sent events", cm.MsgsOut, ev["report_sent"])
		}
		if cm.MsgsIn != cm.MsgsOut {
			return fmt.Errorf("reconciliation: kill-free run received %d messages but sent %d", cm.MsgsIn, cm.MsgsOut)
		}
		if ev["report_recv"] != ev["report_sent"] {
			return fmt.Errorf("reconciliation: kill-free run logged %d report_recv vs %d report_sent", ev["report_recv"], ev["report_sent"])
		}
	}
	return nil
}

// checkFlatReference compares a kill-free run's root detections against the
// centralized flat detector over the same regenerated execution.
func checkFlatReference(topo *hierdet.Topology, ws hierdet.TraceWorkload, dets []livenet.Detection) error {
	exec := workload.Generate(workload.Config{
		Topology: topo, Rounds: ws.Rounds, Seed: ws.Seed,
		PGlobal: ws.PGlobal, PGroup: ws.PGroup, PSubset: ws.PSubset,
	})
	span := topo.Subtree(0)
	sort.Ints(span)
	want := trace.FlatCount(exec, span, 1)
	roots := 0
	for _, d := range dets {
		if d.AtRoot {
			roots++
		}
	}
	if roots != want {
		return fmt.Errorf("ground truth: %d root detections, flat reference says %d", roots, want)
	}
	return nil
}

// sortedCuts picks k distinct ascending cut points inside (0, rounds).
func sortedCuts(rng *rand.Rand, rounds, k int) []int {
	perm := rng.Perm(rounds - 1)[:k]
	for i := range perm {
		perm[i]++
	}
	sort.Ints(perm)
	return perm
}

// splitNodes partitions [0,n) into 2–3 contiguous participant ranges.
func splitNodes(rng *rand.Rand, n int) [][]int {
	parts := 2 + rng.Intn(2)
	var out [][]int
	lo := 0
	for i := 0; i < parts; i++ {
		hi := n
		if i < parts-1 {
			hi = lo + 1 + rng.Intn(n-lo-(parts-1-i))
		}
		nodes := make([]int, 0, hi-lo)
		for id := lo; id < hi; id++ {
			nodes = append(nodes, id)
		}
		out = append(out, nodes)
		lo = hi
	}
	return out
}

func pickPlane(rng *rand.Rand, flagged string) string {
	if flagged != "" {
		return flagged
	}
	planes := hierdet.ReplayPlanes()
	return planes[rng.Intn(len(planes))]
}

// checkSoundness runs trace.CheckDetection over a run's detections. On a
// distributed recording, aggregates that crossed TCP have no member
// expansion (the wire ships the interval, not its bases), so those
// detections are skipped there — the single-process replay re-checks the
// same execution with full membership.
func checkSoundness(dets []livenet.Detection, distributed bool) error {
	for _, d := range dets {
		if distributed && hasOpaque(d.Det.Agg) {
			continue
		}
		if err := trace.CheckDetection(d.Det); err != nil {
			return err
		}
	}
	return nil
}

func hasOpaque(agg interval.Interval) bool {
	for _, b := range interval.BaseIntervals(agg) {
		if b.Agg {
			return true
		}
	}
	return false
}

func linksName(treeOnly bool) string {
	if treeOnly {
		return "tree"
	}
	return "full"
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
