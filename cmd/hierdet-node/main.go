// Command hierdet-node runs ONE spanning-tree node of the hierarchical
// detector as its own OS process, talking to the other nodes over TCP. A
// deployment is a cluster file (internal/clusterfile) shared by every
// process: the tree, each node's listen address, and the workload parameters
// every participant regenerates identically from the shared seed.
//
// Generate a deployment, then launch one process per node:
//
//	hierdet-node -init -o cluster.json -n 7
//	for i in $(seq 0 6); do hierdet-node -config cluster.json -id $i & done
//
// Each process prints a line-oriented protocol on stdout that scripts (and
// examples/distributed, the orchestrated failover demo) can follow:
//
//	READY id=2 addr=127.0.0.1:41233     listening, cluster started
//	DETECT id=0 root=true span=7        a detection (span = solution width)
//	REPAIR orphan=3 parent=2            a §III-F reattachment concluded here
//	FED id=2 phase=1                    this process finished feeding a phase
//
// With -tenants N (at -init time; recorded in the cluster file) each process
// serves N predicates — tenants "t0".."tN-1", one detection tree each, with
// per-tenant workload seeds — multiplexed over the deployment's single TCP
// mesh, and the protocol lines carry a tenant= field:
//
//	READY id=2 addr=127.0.0.1:41233 tenants=2
//	DETECT id=0 tenant=t1 root=true span=7
//	REPAIR tenant=t0 orphan=3 parent=2
//
// The workload is fed in two phases, [0, Phase1) and [Phase1, Rounds), with
// a file-based barrier between them: after phase 1 every process polls for
// the file named by -gate and resumes only once it exists. The pause gives an
// orchestrator a quiet point to kill a process and let the survivors repair
// before the second phase's intervals arrive. Without -gate the phases run
// back to back. After feeding, the process idles until killed — detection
// and failure handling keep running.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"hierdet"
	"hierdet/internal/clusterfile"
)

func main() {
	var (
		initMode = flag.Bool("init", false, "generate a cluster file instead of running a node")
		config   = flag.String("config", "cluster.json", "cluster file path (shared by all processes)")
		out      = flag.String("o", "cluster.json", "init: output path")
		n        = flag.Int("n", 7, "init: node count (balanced binary tree)")
		rounds   = flag.Int("rounds", 12, "init: workload rounds")
		phase1   = flag.Int("phase1", 0, "init: rounds before the gate (default rounds/2)")
		seed     = flag.Int64("seed", 42, "init: workload seed")
		tenants  = flag.Int("tenants", 1, "init: predicates multiplexed per process")
		id       = flag.Int("id", -1, "node id this process hosts")
		gate     = flag.String("gate", "", "barrier file to await between feeding phases")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile here, flushed on SIGINT/SIGTERM")
		memprof  = flag.String("memprofile", "", "write a heap profile here on SIGINT/SIGTERM")
		pprofSrv = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *initMode {
		if err := writeClusterFile(*out, *n, *rounds, *phase1, *seed, *tenants); err != nil {
			fmt.Fprintln(os.Stderr, "hierdet-node:", err)
			os.Exit(1)
		}
		return
	}
	if err := startProfiling(*cpuprof, *memprof, *pprofSrv); err != nil {
		fmt.Fprintln(os.Stderr, "hierdet-node:", err)
		os.Exit(1)
	}
	if err := runNode(*config, *id, *gate); err != nil {
		fmt.Fprintln(os.Stderr, "hierdet-node:", err)
		os.Exit(1)
	}
}

// startProfiling wires the node's observability hooks: file-based CPU/heap
// profiles and an optional live pprof endpoint. The process runs until
// killed (runNode never returns), so profile flushing hangs off a
// SIGINT/SIGTERM handler rather than a defer.
func startProfiling(cpuprof, memprof, addr string) error {
	if addr != "" {
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "hierdet-node: pprof:", err)
			}
		}()
	}
	var cpuFile *os.File
	if cpuprof != "" {
		f, err := os.Create(cpuprof)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		cpuFile = f
	}
	if cpuprof != "" || memprof != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		go func() {
			<-sig
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if memprof != "" {
				if f, err := os.Create(memprof); err != nil {
					fmt.Fprintln(os.Stderr, "hierdet-node:", err)
				} else {
					runtime.GC()
					if err := pprof.WriteHeapProfile(f); err != nil {
						fmt.Fprintln(os.Stderr, "hierdet-node:", err)
					}
					f.Close()
				}
			}
			os.Exit(0)
		}()
	}
	return nil
}

// writeClusterFile builds a balanced-binary-tree deployment on localhost. It
// reserves a concrete port per node by binding and immediately releasing an
// ephemeral listener, so the file can be generated before any node starts.
// (A released port can in principle be re-taken before the node binds it;
// on a quiet machine the window is harmless, and a collision just means
// regenerating the file.)
func writeClusterFile(path string, n, rounds, phase1 int, seed int64, tenants int) error {
	if n < 2 {
		return fmt.Errorf("need at least 2 nodes, got %d", n)
	}
	topo := hierdet.BalancedTreeN(n, 2)
	f := &clusterfile.File{
		Parents: make([]int, n),
		Addrs:   make([]string, n),
		Rounds:  rounds, Phase1: phase1, Seed: seed, PGlobal: 1,
		Tenants: tenants,
	}
	for i := 0; i < n; i++ {
		f.Parents[i] = topo.Parent(i)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		f.Addrs[i] = ln.Addr().String()
		ln.Close()
	}
	if err := f.Save(path); err != nil {
		return err
	}
	fmt.Printf("WROTE %s nodes=%d rounds=%d phase1=%d tenants=%d\n", path, n, f.Rounds, f.Phase1, f.Tenants)
	return nil
}

func runNode(path string, id int, gate string) error {
	f, err := clusterfile.Load(path)
	if err != nil {
		return err
	}
	if id < 0 || id >= f.N() {
		return fmt.Errorf("-id %d out of range for %d-node cluster", id, f.N())
	}
	topo, err := f.Topology()
	if err != nil {
		return err
	}
	exec := hierdet.GenerateWorkload(topo, f.Rounds, f.Seed, f.PGlobal, 0, 0)

	tr, err := hierdet.NewTCPTransport(hierdet.TCPConfig{
		Listen: f.Addrs[id],
		Peers:  f.Peers(id),
	})
	if err != nil {
		return err
	}
	if f.Tenants > 1 {
		return runTenants(f, topo, tr, id, gate)
	}

	c := hierdet.NewLiveCluster(hierdet.LiveConfig{
		Topology: topo,
		Seed:     f.Seed + int64(id),
		Failure: hierdet.LiveFailureOptions{
			HbEvery:   time.Duration(f.HbEveryMs) * time.Millisecond,
			HbTimeout: time.Duration(f.HbTimeoutMs) * time.Millisecond,
		},
		Distributed: hierdet.LiveDistributedOptions{
			Transport:    tr,
			LocalNodes:   []int{id},
			StartupGrace: time.Duration(f.StartupGraceMs) * time.Millisecond,
		},
		Events: func(e hierdet.Event) {
			switch e.Kind {
			case hierdet.EventSolutionFound:
				fmt.Printf("DETECT id=%d root=%t span=%d\n", e.Node, e.AtRoot, len(e.Agg.Span))
			case hierdet.EventRepairConcluded:
				fmt.Printf("REPAIR orphan=%d parent=%d\n", e.Node, e.Peer)
			}
		},
	})
	// Mount Prometheus exposition next to the pprof handlers: with -pprof set
	// the shared default mux already serves, so the scrape endpoint appears on
	// the same address.
	http.Handle("/metrics", c.Registry().Handler())
	fmt.Printf("READY id=%d addr=%s\n", id, tr.Addr())

	pace := time.Duration(f.FeedEveryMs) * time.Millisecond
	feed := func(lo, hi int) {
		for k := lo; k < hi && k < len(exec.Streams[id]); k++ {
			c.Observe(id, exec.Streams[id][k])
			time.Sleep(pace)
		}
	}

	feed(0, f.Phase1)
	fmt.Printf("FED id=%d phase=1\n", id)
	awaitGate(gate)
	feed(f.Phase1, f.Rounds)
	fmt.Printf("FED id=%d phase=2\n", id)

	// Stay alive — detection and failure handling continue until the
	// orchestrator (or the shell) kills the process.
	select {}
}

// awaitGate polls for the barrier file between feeding phases; an empty gate
// means the phases run back to back.
func awaitGate(gate string) {
	if gate == "" {
		return
	}
	for {
		if _, err := os.Stat(gate); err == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// runTenants is the -tenants mode: one TenantMultiplexer per process serving
// f.Tenants predicates over the shared transport. Each tenant reuses the
// deployment's spanning tree but regenerates its own workload from
// Seed+tenant, so the tenants' detections interleave on the mesh without
// being copies of each other. Each process runs a single-member monitor
// fleet over a process-local lease table — the file-based deployment has no
// shared coordination service, so the lease state (and the hierdet_lease_*
// metric families) reflects this process's own view.
func runTenants(f *clusterfile.File, topo *hierdet.Topology, tr *hierdet.TCPTransport, id int, gate string) error {
	leases := hierdet.NewLeaseTable(time.Second)
	plane, err := hierdet.NewTenantMultiplexer(hierdet.TenantConfig{
		Transport:  tr,
		LocalNodes: []int{id},
		Monitor:    fmt.Sprintf("node-%d", id),
		Leases:     leases,
		Events: func(e hierdet.Event) {
			switch e.Kind {
			case hierdet.EventSolutionFound:
				fmt.Printf("DETECT id=%d tenant=%s root=%t span=%d\n", e.Node, e.Tenant, e.AtRoot, len(e.Agg.Span))
			case hierdet.EventRepairConcluded:
				fmt.Printf("REPAIR tenant=%s orphan=%d parent=%d\n", e.Tenant, e.Node, e.Peer)
			}
		},
	})
	if err != nil {
		return err
	}

	handles := make([]*hierdet.TenantHandle, f.Tenants)
	execs := make([]*hierdet.Execution, f.Tenants)
	for k := range handles {
		h, err := plane.RegisterPredicate(fmt.Sprintf("t%d", k), hierdet.TenantSpec{
			Topology:     topo,
			Seed:         f.Seed + int64(id*f.Tenants+k),
			HbEvery:      time.Duration(f.HbEveryMs) * time.Millisecond,
			HbTimeout:    time.Duration(f.HbTimeoutMs) * time.Millisecond,
			StartupGrace: time.Duration(f.StartupGraceMs) * time.Millisecond,
		})
		if err != nil {
			return err
		}
		handles[k] = h
		execs[k] = hierdet.GenerateWorkload(topo, f.Rounds, f.Seed+int64(k), f.PGlobal, 0, 0)
	}
	http.Handle("/metrics", plane.Registry().Handler())
	fmt.Printf("READY id=%d addr=%s tenants=%d\n", id, tr.Addr(), f.Tenants)

	pace := time.Duration(f.FeedEveryMs) * time.Millisecond
	feed := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			for k, h := range handles {
				if r < len(execs[k].Streams[id]) {
					h.Observe(id, execs[k].Streams[id][r])
				}
			}
			time.Sleep(pace)
		}
	}

	feed(0, f.Phase1)
	fmt.Printf("FED id=%d phase=1\n", id)
	awaitGate(gate)
	feed(f.Phase1, f.Rounds)
	fmt.Printf("FED id=%d phase=2\n", id)

	select {}
}
