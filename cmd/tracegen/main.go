// Command tracegen generates execution traces, saves them as JSON, and
// replays saved traces through both detectors — so a regression, a
// cross-version comparison or a hand-crafted execution can be pinned down to
// a file.
//
// Usage:
//
//	# generate a trace and write it to a file
//	go run ./cmd/tracegen -gen -n 15 -rounds 20 -pglobal 0.4 -pgroup 0.3 -o trace.json
//
//	# generate an unstructured (chaotic) trace
//	go run ./cmd/tracegen -gen -chaos -n 8 -steps 2000 -o chaos.json
//
//	# replay a trace through both algorithms and compare
//	go run ./cmd/tracegen -replay trace.json -n 15
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"hierdet"
	"hierdet/internal/trace"
	vizpkg "hierdet/internal/viz"
	"hierdet/internal/workload"
)

func main() {
	var (
		gen     = flag.Bool("gen", false, "generate a trace")
		replay  = flag.String("replay", "", "replay a trace file")
		out     = flag.String("o", "trace.json", "output file for -gen")
		n       = flag.Int("n", 15, "processes")
		degree  = flag.Int("degree", 2, "tree degree")
		rounds  = flag.Int("rounds", 20, "rounds (round-based generator)")
		pglobal = flag.Float64("pglobal", 0.4, "global-round probability")
		pgroup  = flag.Float64("pgroup", 0.3, "group-round probability")
		psubset = flag.Float64("psubset", 0, "tree-oblivious random-subset round probability")
		chaos   = flag.Bool("chaos", false, "use the unstructured generator")
		steps   = flag.Int("steps", 2000, "steps (chaotic generator)")
		seed    = flag.Int64("seed", 1, "seed")
		viz     = flag.Bool("viz", false, "print an ASCII timing diagram of the trace")
		width   = flag.Int("width", 100, "diagram width for -viz")
	)
	flag.Parse()

	switch {
	case *gen:
		var exec *workload.Execution
		if *chaos {
			exec = workload.GenerateChaotic(workload.ChaoticConfig{N: *n, Steps: *steps, Seed: *seed})
		} else {
			topo := hierdet.BalancedTreeN(*n, *degree)
			exec = hierdet.GenerateWorkload(topo, *rounds, *seed, *pglobal, *pgroup, *psubset)
		}
		data, err := json.MarshalIndent(exec, "", " ")
		if err != nil {
			fail("encode: %v", err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fail("write: %v", err)
		}
		fmt.Printf("wrote %s: %d processes, %d intervals, %d rounds\n",
			*out, exec.N, exec.TotalIntervals(), len(exec.Rounds))
		if *viz {
			fmt.Println(vizpkg.Describe(exec))
			fmt.Print(vizpkg.Timeline(exec, *width))
		}

	case *replay != "":
		data, err := os.ReadFile(*replay)
		if err != nil {
			fail("read: %v", err)
		}
		var exec workload.Execution
		if err := json.Unmarshal(data, &exec); err != nil {
			fail("decode: %v", err)
		}
		if *viz {
			fmt.Println(vizpkg.Describe(&exec))
			fmt.Print(vizpkg.Timeline(&exec, *width))
		}
		topo := hierdet.BalancedTreeN(exec.N, *degree)
		hier := hierdet.SimulateExecution(hierdet.SimConfig{
			Topology: topo, Seed: *seed, Verify: true,
		}, &exec)
		cent := hierdet.SimulateExecution(hierdet.SimConfig{
			Topology: topo, Algorithm: hierdet.CentralizedAlgorithm, Seed: *seed, Verify: true,
		}, &exec)
		span := topo.Subtree(0)
		sort.Ints(span)
		flat := trace.FlatCount(&exec, span, *seed)
		fmt.Printf("trace: %d processes, %d intervals\n", exec.N, exec.TotalIntervals())
		fmt.Printf("root detections: hierarchical=%d centralized=%d flat-reference=%d\n",
			len(hier.RootDetections()), len(cent.RootDetections()), flat)
		fmt.Printf("messages:        hierarchical=%d centralized=%d\n",
			hier.Net.TotalSent, cent.Net.TotalSent)
		fmt.Printf("bytes:           hierarchical=%d centralized=%d\n",
			hier.Net.TotalBytes, cent.Net.TotalBytes)
		if len(hier.RootDetections()) != flat || len(cent.RootDetections()) != flat {
			fail("MISMATCH against flat reference")
		}
		fmt.Println("all detectors agree ✓")

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
