package hierdet_test

import (
	"fmt"

	"hierdet"
)

// Example demonstrates the one-call simulation API: build a spanning tree,
// run a monitored workload, read off every occurrence of the predicate.
func Example() {
	topo := hierdet.BalancedTree(2, 2) // 7 processes

	res := hierdet.Simulate(hierdet.SimConfig{
		Topology: topo,
		Rounds:   5,
		PGlobal:  1, // every round satisfies the global predicate
		Seed:     1,
	})

	fmt.Printf("detected %d occurrences over %d processes\n",
		len(res.RootDetections()), topo.N())
	// Output:
	// detected 5 occurrences over 7 processes
}

// Example_streaming subscribes to detections as they happen instead of
// collecting them afterwards — the continuous-monitoring pattern.
func Example_streaming() {
	alarms := 0
	hierdet.Simulate(hierdet.SimConfig{
		Topology: hierdet.BalancedTree(2, 1),
		Rounds:   3,
		PGlobal:  1,
		Seed:     2,
		OnDetection: func(d hierdet.SimDetection) {
			if d.AtRoot {
				alarms++
				fmt.Printf("alarm %d at t=%d\n", alarms, d.Time)
			}
		},
	})
	fmt.Printf("%d alarms\n", alarms)
	// Output:
	// alarm 1 at t=1354
	// alarm 2 at t=2422
	// alarm 3 at t=3310
	// 3 alarms
}

// Example_embedding shows the deployment-facing API: instrumented processes
// feeding detector nodes directly, no simulator involved.
func Example_embedding() {
	cfg := hierdet.NodeConfig{N: 2}
	root := hierdet.NewNode(0, cfg, true)
	root.AddChild(1)
	leaf := hierdet.NewNode(1, cfg, true)

	report := func(src int, iv hierdet.Interval) {
		for _, det := range root.OnInterval(src, iv) {
			fmt.Printf("Definitely(Φ) over processes %v\n", det.Agg.Span)
		}
	}

	procs := []*hierdet.Process{
		hierdet.NewProcess(0, 2, func(iv hierdet.Interval) { report(0, iv) }),
		nil,
	}
	procs[1] = hierdet.NewProcess(1, 2, func(iv hierdet.Interval) {
		for _, det := range leaf.OnInterval(1, iv) {
			report(1, det.Agg)
		}
	})

	// Both predicates hold across a message exchange: an occurrence.
	procs[0].SetPredicate(true)
	procs[0].Internal()
	procs[1].SetPredicate(true)
	procs[1].Internal()
	procs[0].Receive(procs[1].PrepareSend())
	procs[1].Receive(procs[0].PrepareSend())
	procs[0].SetPredicate(false)
	procs[0].Internal()
	procs[1].SetPredicate(false)
	procs[1].Internal()

	// Output:
	// Definitely(Φ) over processes [0 1]
}
