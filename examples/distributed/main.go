// The distributed example is the module's multi-process proof: seven
// hierdet-node OS processes on localhost, joined only by TCP sockets, must
// detect exactly what the in-memory single-process cluster detects on the
// same workload — through a real process kill.
//
// The script:
//
//  1. Build cmd/hierdet-node and generate a 7-node deployment (balanced
//     binary tree, ephemeral localhost ports).
//  2. Run the same workload on an in-memory LiveCluster, with the same
//     mid-run failure, to learn the expected detection counts. Detection
//     counts are schedule-independent (each occurrence is detected exactly
//     once), so the two runs are comparable despite wildly different timing.
//  3. Launch the seven processes and feed phase 1, watching their stdout.
//  4. SIGKILL the process hosting node 1 — a real crash-stop: no goodbye,
//     no FIN handshake the detector can use; survivors must notice pure
//     heartbeat silence, and nodes 3 and 4 must reattach over TCP (§III-F).
//  5. Open the gate (a barrier file) so survivors feed phase 2, and require
//     the post-failure detections to match the reference.
//
// Exit status 0 iff both phases match. Run: go run ./examples/distributed
package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"hierdet"
)

const (
	nodes        = 7
	rounds       = 12
	phase1       = 6
	seed   int64 = 42
	victim       = 1 // parents [-1 0 0 1 1 2 2]: killing 1 orphans 3 and 4
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("PASS")
}

// tally accumulates protocol lines from every process's stdout.
type tally struct {
	mu      sync.Mutex
	span    map[int]int // root-detection count by span width
	repairs int
}

func (t *tally) rootSpan(w int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.span[w]
}

func (t *tally) repaired() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.repairs
}

// follow parses one process's stdout into the tally, echoing each line.
func (t *tally) follow(id int, r *bufio.Scanner, wg *sync.WaitGroup) {
	defer wg.Done()
	for r.Scan() {
		line := r.Text()
		fmt.Printf("[node %d] %s\n", id, line)
		var n, span int
		var root bool
		if c, _ := fmt.Sscanf(line, "DETECT id=%d root=%t span=%d", &n, &root, &span); c == 3 && root {
			t.mu.Lock()
			t.span[span]++
			t.mu.Unlock()
		}
		var orphan, parent int
		if c, _ := fmt.Sscanf(line, "REPAIR orphan=%d parent=%d", &orphan, &parent); c == 2 {
			t.mu.Lock()
			t.repairs++
			t.mu.Unlock()
		}
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "hierdet-distributed")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "hierdet-node")
	conf := filepath.Join(dir, "cluster.json")
	gate := filepath.Join(dir, "gate")

	fmt.Println("== building cmd/hierdet-node ==")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/hierdet-node").CombinedOutput(); err != nil {
		return fmt.Errorf("build: %v\n%s", err, out)
	}
	if out, err := exec.Command(bin, "-init", "-o", conf, "-n", fmt.Sprint(nodes),
		"-rounds", fmt.Sprint(rounds), "-phase1", fmt.Sprint(phase1),
		"-seed", fmt.Sprint(seed)).CombinedOutput(); err != nil {
		return fmt.Errorf("init: %v\n%s", err, out)
	}

	refFull, refSurvivor, err := reference()
	if err != nil {
		return err
	}
	fmt.Printf("== reference (in-memory): %d span-%d then %d span-%d root detections ==\n",
		refFull, nodes, refSurvivor, nodes-1)

	fmt.Printf("== launching %d processes ==\n", nodes)
	t := &tally{span: map[int]int{}}
	var wg sync.WaitGroup
	procs := make([]*exec.Cmd, nodes)
	for id := 0; id < nodes; id++ {
		cmd := exec.Command(bin, "-config", conf, "-id", fmt.Sprint(id), "-gate", gate)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		procs[id] = cmd
		wg.Add(1)
		go t.follow(id, bufio.NewScanner(stdout), &wg)
	}
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
			}
		}
		wg.Wait()
		for _, p := range procs {
			p.Wait()
		}
	}()

	if err := await("phase-1 detections", func() bool { return t.rootSpan(nodes) >= refFull }); err != nil {
		return err
	}

	fmt.Printf("== SIGKILL process of node %d ==\n", victim)
	if err := procs[victim].Process.Kill(); err != nil {
		return err
	}
	if err := await("orphans to reattach over TCP", func() bool { return t.repaired() >= 2 }); err != nil {
		return err
	}

	fmt.Println("== opening gate: phase 2 ==")
	if err := os.WriteFile(gate, nil, 0o644); err != nil {
		return err
	}
	if err := await("phase-2 detections", func() bool { return t.rootSpan(nodes-1) >= refSurvivor }); err != nil {
		return err
	}
	time.Sleep(500 * time.Millisecond) // settle: surplus detections would be a bug

	full, survivor := t.rootSpan(nodes), t.rootSpan(nodes-1)
	if full != refFull || survivor != refSurvivor {
		return fmt.Errorf("detections diverged: got %d span-%d and %d span-%d, reference %d and %d",
			full, nodes, survivor, nodes-1, refFull, refSurvivor)
	}
	fmt.Printf("== multi-process counts match the in-memory reference: %d + %d ==\n", full, survivor)
	return nil
}

// reference runs the identical workload and failure on the in-memory
// single-process cluster and returns the expected root-detection counts.
func reference() (full, survivor int, err error) {
	topo := hierdet.BalancedTreeN(nodes, 2)
	exec := hierdet.GenerateWorkload(topo, rounds, seed, 1, 0, 0)
	repaired := make(chan int, 4)
	c := hierdet.NewLiveCluster(hierdet.LiveConfig{
		Topology: topo, Seed: seed, Verify: true,
		Failure: hierdet.LiveFailureOptions{HbEvery: time.Millisecond},
		Events: func(e hierdet.Event) {
			if e.Kind == hierdet.EventRepairConcluded {
				repaired <- e.Node
			}
		},
	})
	feed := func(lo, hi int) {
		for k := lo; k < hi; k++ {
			for p := 0; p < nodes; p++ {
				c.Observe(p, exec.Streams[p][k]) // no-op for killed processes
			}
		}
	}
	feed(0, phase1)
	c.Drain()
	orphans := c.Kill(victim)
	for i := 0; i < orphans; i++ {
		select {
		case <-repaired:
		case <-time.After(30 * time.Second):
			return 0, 0, fmt.Errorf("reference: repair %d/%d timed out", i+1, orphans)
		}
	}
	c.Drain()
	feed(phase1, rounds)
	for _, d := range c.Stop() {
		if d.AtRoot {
			switch len(d.Det.Agg.Span) {
			case nodes:
				full++
			case nodes - 1:
				survivor++
			}
		}
	}
	return full, survivor, nil
}

// await polls cond for up to a minute — generous: CI machines are slow, and
// the deployment's startup grace alone holds repairs back for two seconds.
func await(what string, cond func() bool) error {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("timed out waiting for %s", what)
}
