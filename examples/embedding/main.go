// Embedding: use the library's detector nodes directly, without the bundled
// simulator — the way a real deployment would, with its own processes and
// its own transport.
//
// Three processes form a two-level tree (root 0, leaves 1 and 2). Each
// process is instrumented with hierdet.Process (vector clocks + interval
// extraction); each runs a hierdet.Node detector. "Transport" here is a
// direct function call from child to parent; in a deployment it would be
// your network stack, delivering each child's reports in order.
//
// Run:
//
//	go run ./examples/embedding
package main

import (
	"fmt"

	"hierdet"
)

const n = 3

func main() {
	cfg := hierdet.NodeConfig{N: n, Strict: true, KeepMembers: true}

	// Detector layer: one node per process, wired as a tree.
	root := hierdet.NewNode(0, cfg, true)
	root.AddChild(1)
	root.AddChild(2)
	leaves := map[int]*hierdet.Node{
		1: hierdet.NewNode(1, cfg, true),
		2: hierdet.NewNode(2, cfg, true),
	}

	deliverToRoot := func(src int, iv hierdet.Interval) {
		for _, det := range root.OnInterval(src, iv) {
			fmt.Printf("ROOT: Definitely(Φ) for processes %v (solution of %d intervals)\n",
				det.Agg.Span, len(det.Set))
		}
	}
	deliverToLeaf := func(leaf int, iv hierdet.Interval) {
		for _, det := range leaves[leaf].OnInterval(leaf, iv) {
			// A leaf's "detection" is its own interval; report it upward.
			deliverToRoot(leaf, det.Agg)
		}
	}

	// Application layer: instrumented processes. Completed local intervals
	// flow into the process's own detector node.
	procs := make([]*hierdet.Process, n)
	for i := 0; i < n; i++ {
		i := i
		emit := func(iv hierdet.Interval) {
			if i == 0 {
				deliverToRoot(0, iv)
			} else {
				deliverToLeaf(i, iv)
			}
		}
		procs[i] = hierdet.NewProcess(i, n, emit)
	}

	fmt.Println("episode 1: predicates true but never causally overlapping — no detection")
	for i := 0; i < n; i++ {
		procs[i].SetPredicate(true)
		procs[i].Internal()
		procs[i].SetPredicate(false)
		procs[i].Internal()
		// Sequence the episodes: each process tells the next before it acts.
		if i+1 < n {
			procs[i+1].Receive(procs[i].PrepareSend())
		}
	}

	fmt.Println("episode 2: a synchronized occurrence — detection expected")
	for _, p := range procs {
		p.SetPredicate(true)
		p.Internal()
	}
	// Everyone reports "started" to process 0; process 0 acknowledges. The
	// acks put every interval's end causally after every interval's start.
	for i := 1; i < n; i++ {
		procs[0].Receive(procs[i].PrepareSend())
	}
	for i := 1; i < n; i++ {
		procs[i].Receive(procs[0].PrepareSend())
	}
	for _, p := range procs {
		p.SetPredicate(false)
		p.Internal()
	}

	fmt.Println("episode 3: another occurrence — repeated detection, no reset needed")
	for _, p := range procs {
		p.SetPredicate(true)
		p.Internal()
	}
	for i := 1; i < n; i++ {
		procs[0].Receive(procs[i].PrepareSend())
	}
	for i := 1; i < n; i++ {
		procs[i].Receive(procs[0].PrepareSend())
	}
	for _, p := range procs {
		p.SetPredicate(false)
		p.Internal()
	}
}
