// Failover: the paper's Figure 2 story at system scale — an internal node of
// the spanning tree dies mid-run; the orphaned subtrees reattach; detection
// of the predicate over the survivors continues. The same failure kills the
// centralized baseline for good when it hits the sink.
//
// The first section runs the deterministic simulator; the last replays the
// same crash on the live runtime — real goroutines, racing channels,
// heartbeat failure detection — and shows the identical recovery story.
//
// Run:
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"sync"
	"time"

	"hierdet"
)

func main() {
	// 13 processes in a 3-ary tree of height 2. Node 1 (an inner node with
	// children 4, 5, 6) will fail at t=8500, between rounds 8 and 9.
	build := func() *hierdet.Topology { return hierdet.BalancedTree(3, 2) }
	const failAt, victim = 8500, 1

	exec := hierdet.GenerateWorkload(build(), 16, 11, 1.0, 0, 0)

	fmt.Println("=== hierarchical detector, heartbeat failure detection, distributed repair ===")
	hier := hierdet.SimulateExecution(hierdet.SimConfig{
		Topology:   build(),
		Seed:       11,
		Verify:     true,
		Heartbeats: true,
		// The orphaned subtrees negotiate adoption with live neighbours over
		// the network (attach request/grant/confirm) — no oracle involved.
		DistributedRepair: true,
		Failures:          []hierdet.Failure{{At: failAt, Node: victim}},
		// Re-report the last aggregate to the adoptive parent, as the paper's
		// Figure 2(c) narrative does.
		ResendLastOnAdopt: true,
	}, exec)

	before, after := 0, 0
	for _, d := range hier.RootDetections() {
		if d.Time <= failAt {
			before++
		} else {
			after++
		}
		marker := ""
		if len(d.Det.Agg.Span) < 13 {
			marker = "  (partial predicate: survivors only)"
		}
		fmt.Printf("  t=%-6d root detection over %2d processes%s\n",
			d.Time, len(d.Det.Agg.Span), marker)
	}
	fmt.Printf("node %d failed at t=%d → %d detections before, %d after; monitoring never stopped\n",
		victim, failAt, before, after)

	fmt.Println("\n=== centralized baseline, same workload, sink failure ===")
	cent := hierdet.SimulateExecution(hierdet.SimConfig{
		Topology:  build(),
		Algorithm: hierdet.CentralizedAlgorithm,
		Seed:      11,
		Verify:    true,
		Failures:  []hierdet.Failure{{At: failAt, Node: 0}}, // the sink itself
	}, exec)
	lastT := int64(0)
	for _, d := range cent.RootDetections() {
		if int64(d.Time) > lastT {
			lastT = int64(d.Time)
		}
	}
	fmt.Printf("  sink failed at t=%d; detections: %d, last at t=%d — nothing after, every queued interval lost\n",
		failAt, len(cent.RootDetections()), lastT)

	fmt.Println("\n=== live runtime: same crash on real goroutines and channels ===")
	// Same workload, but now each process is a goroutine and the failure is
	// a genuine crash-stop: the victim's goroutine goes silent, survivors
	// notice the missing heartbeats, and the orphans renegotiate parents
	// over the racing links while the workload keeps flowing.
	const crashAfter = 8 // rounds fed before the kill
	repaired := make(chan hierdet.LiveRepair, 4)
	cluster := hierdet.NewLiveCluster(hierdet.LiveConfig{
		Topology: build(), Seed: 11, Verify: true,
		Failure: hierdet.LiveFailureOptions{
			HbEvery:           300 * time.Microsecond,
			ResendLastOnAdopt: true,
		},
		// The Events stream carries every repair (and much more); filter for
		// the RepairConcluded kind to follow the reattachment protocol live.
		Events: func(e hierdet.Event) {
			if e.Kind == hierdet.EventRepairConcluded {
				repaired <- hierdet.LiveRepair{Orphan: e.Node, NewParent: e.Peer}
			}
		},
	})
	feed := func(lo, hi int) {
		var wg sync.WaitGroup
		for p := 0; p < build().N(); p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for k := lo; k < hi; k++ {
					cluster.Observe(p, exec.Streams[p][k])
					time.Sleep(20 * time.Microsecond)
				}
			}(p)
		}
		wg.Wait()
	}
	feed(0, crashAfter)
	cluster.Drain()
	orphans := cluster.Kill(victim)
	fmt.Printf("  node %d crash-stopped after round %d; %d subtrees orphaned\n",
		victim, crashAfter, orphans)
	for i := 0; i < orphans; i++ {
		r := <-repaired
		fmt.Printf("  heartbeats flagged the silence; orphan %d adopted by node %d\n",
			r.Orphan, r.NewParent)
	}
	feed(crashAfter, 16)
	liveBefore, liveAfter := 0, 0
	for _, d := range cluster.Stop() {
		if !d.AtRoot {
			continue
		}
		if len(d.Det.Agg.Span) == 13 {
			liveBefore++
		} else {
			liveAfter++
		}
	}
	fmt.Printf("  root detections: %d full-span, %d over the survivors — monitoring never stopped here either\n",
		liveBefore, liveAfter)
}
