// Failover: the paper's Figure 2 story at system scale — an internal node of
// the spanning tree dies mid-run; the orphaned subtrees reattach; detection
// of the predicate over the survivors continues. The same failure kills the
// centralized baseline for good when it hits the sink.
//
// Run:
//
//	go run ./examples/failover
package main

import (
	"fmt"

	"hierdet"
)

func main() {
	// 13 processes in a 3-ary tree of height 2. Node 1 (an inner node with
	// children 4, 5, 6) will fail at t=8500, between rounds 8 and 9.
	build := func() *hierdet.Topology { return hierdet.BalancedTree(3, 2) }
	const failAt, victim = 8500, 1

	exec := hierdet.GenerateWorkload(build(), 16, 11, 1.0, 0)

	fmt.Println("=== hierarchical detector, heartbeat failure detection, distributed repair ===")
	hier := hierdet.SimulateExecution(hierdet.SimConfig{
		Topology:   build(),
		Seed:       11,
		Verify:     true,
		Heartbeats: true,
		// The orphaned subtrees negotiate adoption with live neighbours over
		// the network (attach request/grant/confirm) — no oracle involved.
		DistributedRepair: true,
		Failures:          []hierdet.Failure{{At: failAt, Node: victim}},
		// Re-report the last aggregate to the adoptive parent, as the paper's
		// Figure 2(c) narrative does.
		ResendLastOnAdopt: true,
	}, exec)

	before, after := 0, 0
	for _, d := range hier.RootDetections() {
		if d.Time <= failAt {
			before++
		} else {
			after++
		}
		marker := ""
		if len(d.Det.Agg.Span) < 13 {
			marker = "  (partial predicate: survivors only)"
		}
		fmt.Printf("  t=%-6d root detection over %2d processes%s\n",
			d.Time, len(d.Det.Agg.Span), marker)
	}
	fmt.Printf("node %d failed at t=%d → %d detections before, %d after; monitoring never stopped\n",
		victim, failAt, before, after)

	fmt.Println("\n=== centralized baseline, same workload, sink failure ===")
	cent := hierdet.SimulateExecution(hierdet.SimConfig{
		Topology:  build(),
		Algorithm: hierdet.CentralizedAlgorithm,
		Seed:      11,
		Verify:    true,
		Failures:  []hierdet.Failure{{At: failAt, Node: 0}}, // the sink itself
	}, exec)
	lastT := int64(0)
	for _, d := range cent.RootDetections() {
		if int64(d.Time) > lastT {
			lastT = int64(d.Time)
		}
	}
	fmt.Printf("  sink failed at t=%d; detections: %d, last at t=%d — nothing after, every queued interval lost\n",
		failAt, len(cent.RootDetections()), lastT)
}
