// Livecluster: the detector on real goroutines and channels — one goroutine
// per process, reports racing each other over asynchronous links — rather
// than the deterministic simulator the other examples use.
//
// Fifteen processes form a binary tree. Each process runs in its own
// goroutine, produces its local-predicate intervals, and hands them to its
// detector node; aggregates travel parent-ward with random delays, arriving
// out of order and being resequenced. Every occurrence of the global
// predicate is still detected, exactly once.
//
// Run:
//
//	go run ./examples/livecluster
package main

import (
	"fmt"
	"sync"
	"time"

	"hierdet"
)

func main() {
	const rounds = 10
	topo := hierdet.BalancedTree(2, 3) // 15 processes

	// The recorded execution fixes causality (which rounds synchronize);
	// the live cluster then races its delivery for real.
	exec := hierdet.GenerateWorkload(topo, rounds, 99, 0.6, 0.2, 0)

	cluster := hierdet.NewLiveCluster(hierdet.LiveConfig{
		Topology: topo,
		Seed:     99,
		Verify:   true,
		Delivery: hierdet.LiveDeliveryOptions{
			MaxDelay: time.Millisecond, // force heavy reordering
		},
	})

	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < topo.N(); p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for _, iv := range exec.Streams[p] {
				cluster.Observe(p, iv)
				time.Sleep(50 * time.Microsecond) // the process's own pacing
			}
		}(p)
	}
	wg.Wait()
	dets := cluster.Stop()
	elapsed := time.Since(start)

	global, group := 0, 0
	for _, d := range dets {
		if d.AtRoot && len(d.Det.Agg.Span) == topo.N() {
			global++
		} else if !d.AtRoot && len(d.Det.Agg.Span) > 1 {
			group++
		}
	}
	fmt.Printf("%d goroutine-processes over channel links, %d rounds in %v\n",
		topo.N(), rounds, elapsed.Round(time.Millisecond))
	fmt.Printf("detections: %d global (all %d processes), %d group-level\n",
		global, topo.N(), group)

	expected := exec.ExpectedDetections(topo.Subtree(0))
	fmt.Printf("ground truth: the global predicate held %d times → detected %d/%d despite reordering\n",
		expected, global, expected)

	// The runtime keeps per-node counters; the resequencer high-water mark
	// shows how much reordering the random delays actually produced.
	msgs, high := 0, 0
	for _, m := range cluster.Metrics() {
		msgs += m.MsgsIn
		if m.ReseqHighWater > high {
			high = m.ReseqHighWater
		}
	}
	fmt.Printf("runtime metrics: %d reports delivered, worst resequencer backlog %d\n", msgs, high)
}
