// Quickstart: monitor a conjunctive predicate over a 7-node network with the
// hierarchical detector and print every global detection.
//
// The simulated workload produces 12 rounds of local-predicate intervals; in
// roughly half the rounds all processes synchronize (the global predicate
// Definitely holds), in the rest only subgroups or nobody. The detector must
// report exactly the global rounds at the tree root — repeatedly, not just
// the first one.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"hierdet"
)

func main() {
	// A complete binary spanning tree of height 2: processes 0..6, root 0.
	topo := hierdet.BalancedTree(2, 2)

	res := hierdet.Simulate(hierdet.SimConfig{
		Topology: topo,
		Rounds:   12,
		PGlobal:  0.5, // ~half the rounds satisfy the global predicate
		PGroup:   0.25,
		Seed:     42,
		Verify:   true, // retain solution sets so we can inspect them
	})

	fmt.Printf("network: %d processes, height %d, degree %d\n",
		topo.N(), topo.Height(), topo.Degree())
	fmt.Printf("traffic: %d messages (%d interval reports)\n",
		res.Net.TotalSent, res.Net.Sent["ivl"])
	fmt.Println()

	roots := res.RootDetections()
	fmt.Printf("the global predicate Definitely(Φ) held %d times:\n", len(roots))
	for i, d := range roots {
		fmt.Printf("  #%d at t=%-6d span=%v  ⊓-interval %v .. %v\n",
			i+1, d.Time, d.Det.Agg.Span, d.Det.Agg.Lo, d.Det.Agg.Hi)
	}

	// Detections also happen at every level — here is what the subtree
	// rooted at process 1 (processes 1, 3, 4) observed, including rounds
	// where only that group synchronized.
	group := res.DetectionsAt(1)
	fmt.Printf("\ngroup-level: subtree of process 1 detected its partial predicate %d times\n", len(group))
}
