// Relational: detect an arbitrary relational predicate — the paper's §I
// example Φ = "avg(x, y) = 35" — with the global-state-lattice detector
// (Cooper–Marzullo, references [5][6] of the paper).
//
// Interval-based detection (the paper's subject) only handles conjunctions
// of local predicates, because relational detection is NP-complete in
// general. The lattice detector pays that exponential price on a recorded
// execution, which makes it usable for small systems and, in this
// repository, as the independent ground truth the interval detectors are
// validated against.
//
// Run:
//
//	go run ./examples/relational
package main

import (
	"fmt"
	"math"

	"hierdet"
)

func main() {
	const n = 2
	rec := hierdet.NewRecorder(n)
	x := hierdet.NewProcess(0, n, nil)
	y := hierdet.NewProcess(1, n, nil)
	rec.Attach(x)
	rec.Attach(y)

	// Two processes update their variables concurrently, with one message
	// in the middle.
	x.SetValue(10)
	x.Internal()
	y.SetValue(30)
	y.Internal()
	x.SetValue(40)
	stamp := x.PrepareSend() // x=40 announced
	y.Receive(stamp)
	y.SetValue(60)
	y.Internal()
	x.SetValue(0)
	x.Internal()

	avgIs := func(target float64) hierdet.GlobalPredicate {
		return func(states []hierdet.LocalState) bool {
			return math.Abs((states[0].Value+states[1].Value)/2-target) < 1e-9
		}
	}

	for _, target := range []float64{35, 50, 100} {
		pos, err := hierdet.LatticePossibly(rec.Recording(), avgIs(target))
		if err != nil {
			panic(err)
		}
		def, err := hierdet.LatticeDefinitely(rec.Recording(), avgIs(target))
		if err != nil {
			panic(err)
		}
		fmt.Printf("Φ = \"avg(x,y) = %g\":  Possibly(Φ)=%-5v  Definitely(Φ)=%v\n", target, pos, def)
	}

	fmt.Println()
	fmt.Println("avg=35 and avg=50 are Possibly but not Definitely: some observation pauses at")
	fmt.Println("(x=40, y=30) or (x=40, y=60), but the observation that runs x to completion")
	fmt.Println("first — states (10,0), (40,0), (0,0), then (0,30), (0,60) — avoids both")
	fmt.Println("averages. avg=100 is satisfied by no reachable state at all.")
}
