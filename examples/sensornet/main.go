// Sensornet: group-level monitoring of a 40-node wireless sensor network —
// the paper's motivating deployment (§I): resource-constrained nodes, a
// pre-built spanning tree, and a monitoring program that must raise an alarm
// *every* time the condition occurs, at cluster granularity as well as
// network-wide.
//
// The conjunctive predicate is "every sensor in the region reads above its
// alarm threshold". Cluster heads (depth-1 subtree roots) detect the
// predicate for their own cluster; the base station (root) detects it for
// the whole field. The workload mixes network-wide heat events (global
// rounds), per-cluster events (group rounds) and noise (isolated rounds).
//
// The example also contrasts traffic against the centralized alternative,
// where every reading interval travels hop-by-hop to the base station.
//
// Run:
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"sort"

	"hierdet"
)

func main() {
	// 40 sensors in a 3-ary tree: base station 0, 3 cluster heads, deeper
	// relay/sensor layers.
	const nSensors = 40
	topo := hierdet.BalancedTreeN(nSensors, 3)

	exec := hierdet.GenerateWorkload(topo, 30, 7, 0.2, 0.5, 0.1)

	hier := hierdet.SimulateExecution(hierdet.SimConfig{
		Topology: topo,
		Seed:     7,
		Verify:   true,
	}, exec)
	cent := hierdet.SimulateExecution(hierdet.SimConfig{
		Topology:  topo,
		Algorithm: hierdet.CentralizedAlgorithm,
		Seed:      7,
		Verify:    true,
	}, exec)

	fmt.Printf("field: %d sensors, tree height %d, degree %d\n",
		topo.N(), topo.Height(), topo.Degree())

	fmt.Printf("\nnetwork-wide alarms at the base station: %d\n", len(hier.RootDetections()))
	for _, d := range hier.RootDetections() {
		fmt.Printf("  t=%-6d all %d sensors above threshold simultaneously\n",
			d.Time, len(d.Det.Agg.Span))
	}

	fmt.Println("\ncluster-level alarms (the hierarchy's finer-grained monitoring):")
	heads := topo.Children(0)
	sort.Ints(heads)
	for _, head := range heads {
		cluster := topo.Subtree(head)
		alarms := hier.DetectionsAt(head)
		fmt.Printf("  cluster head %2d (%2d sensors): %d alarms\n",
			head, len(cluster), len(alarms))
	}

	fmt.Println("\ntraffic comparison (messages over the radio):")
	fmt.Printf("  hierarchical: %6d reports (1 hop each)\n", hier.Net.Sent["ivl"])
	fmt.Printf("  centralized:  %6d forwards (every reading walks to the base station)\n",
		cent.Net.Sent["fwd"])
	ratio := float64(cent.Net.Sent["fwd"]) / float64(hier.Net.Sent["ivl"])
	fmt.Printf("  → the hierarchy saves %.1fx\n", ratio)

	fmt.Println("\nper-node queue residency (space spreads across the tree):")
	maxResident, sinkResident := 0, cent.ResidentHighWater[0]
	for _, hw := range hier.ResidentHighWater {
		if hw > maxResident {
			maxResident = hw
		}
	}
	fmt.Printf("  hierarchical worst node: %d intervals resident\n", maxResident)
	fmt.Printf("  centralized sink:        %d intervals resident\n", sinkResident)
}
