// Visualize: render an execution as an ASCII timing diagram (the style of
// the paper's Figure 2(b)) next to what the detector reported — the fastest
// way to see *why* a round did or did not produce a detection.
//
// Run:
//
//	go run ./examples/visualize
package main

import (
	"fmt"

	"hierdet"
	"hierdet/internal/viz"
	"hierdet/internal/workload"
)

func main() {
	topo := hierdet.BalancedTree(2, 2) // 7 processes, height 2
	exec := workload.Generate(workload.Config{
		Topology: topo,
		Rounds:   8,
		Seed:     3,
		PGlobal:  0.4,
		PGroup:   0.4,
	})

	fmt.Println(viz.Describe(exec))
	fmt.Println()
	fmt.Print(viz.Timeline(exec, 96))
	fmt.Println()

	res := hierdet.SimulateExecution(hierdet.SimConfig{
		Topology: topo,
		Seed:     3,
		Verify:   true,
	}, exec)

	fmt.Println("what the detector saw:")
	for r, round := range exec.Rounds {
		detected := "—"
		for _, d := range res.RootDetections() {
			// The detected round is the base intervals' sequence number.
			for _, b := range hierdet.BaseIntervalsOf(d.Det.Agg) {
				if b.Seq == r {
					detected = fmt.Sprintf("ROOT detection at t=%d", d.Time)
				}
				break
			}
		}
		fmt.Printf("  round %d (%-8s groups %v): %s\n", r, round.Kind, round.Groups, detected)
	}
	fmt.Printf("\n%d root detections for %d global rounds\n",
		len(res.RootDetections()), exec.ExpectedDetections(topo.Subtree(0)))
}
