package hierdet

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun builds and executes every example program, asserting it
// exits cleanly and produces its headline output — the examples are part of
// the public API surface and must not rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	wants := map[string]string{
		"quickstart":  "the global predicate Definitely(Φ) held",
		"embedding":   "repeated detection, no reset needed",
		"sensornet":   "network-wide alarms at the base station",
		"failover":    "monitoring never stopped",
		"livecluster": "despite reordering",
		"relational":  "Possibly(Φ)=true",
		"visualize":   "what the detector saw:",
		"distributed": "multi-process counts match the in-memory reference",
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(wants) {
		t.Fatalf("examples/ has %d entries, expectations cover %d — update this test", len(entries), len(wants))
	}
	for _, e := range entries {
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			want, ok := wants[name]
			if !ok {
				t.Fatalf("no expectation for example %q", name)
			}
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Fatalf("output missing %q:\n%s", want, out)
			}
		})
	}
}
