module hierdet

go 1.24
