// Package hierdet is a fault-tolerant, hierarchical, repeated detector for
// strong conjunctive predicates — Definitely(Φ) where Φ is a conjunction of
// per-process local predicates — in asynchronous message-passing systems,
// reproducing Shen & Kshemkalyani, "A Fault-Tolerant Strong Conjunctive
// Predicate Detection Algorithm for Large-Scale Networks" (IPDPSW 2013).
//
// # Concepts
//
// Processes carry vector clocks. An interval is a maximal stretch of a
// process's events during which its local predicate holds, identified by the
// vector timestamps of its first and last events. Definitely(Φ) holds for a
// set of intervals (one per process) iff every pair satisfies
// min(x) < max(y) — in every consistent observation of the execution there
// is a global state where all local predicates hold simultaneously.
//
// The detector runs on a pre-constructed spanning tree: every node maintains
// one interval queue for itself and one per child, detects the predicate in
// its own subtree, aggregates each solution set into a single interval with
// the ⊓ operator, and reports it one hop up. Detection is repeated — every
// occurrence is found, at every level — and survives node failures: a dead
// node costs only its own intervals, the tree repairs itself, and detection
// of the partial predicate over the survivors continues.
//
// # Embedding
//
// Instrument application processes with Process (vector clocks plus interval
// extraction), run one Node per process over your own transport (intervals
// from each sender must be delivered in generation order — resequence if
// your channels are not FIFO), and feed every completed local interval and
// every child report into Node.OnInterval. Each returned Detection covers
// the node's subtree; forward Detection.Agg to the node's parent.
//
// # Simulation
//
// Simulate runs the full system — workload, spanning tree, asynchronous
// lossy-ordering network, heartbeats, failures — inside a deterministic
// discrete-event simulator, and is what the repository's experiments and
// examples use.
package hierdet

import (
	"hierdet/internal/analytic"
	"hierdet/internal/centralized"
	"hierdet/internal/core"
	"hierdet/internal/interval"
	"hierdet/internal/oneshot"
	"hierdet/internal/procsim"
	"hierdet/internal/tree"
	"hierdet/internal/vclock"
)

// VC is a vector clock (a vector of n event counters). See VC.Less for the
// happens-before comparison.
type VC = vclock.VC

// NewVC returns a zeroed vector clock for an n-process system.
func NewVC(n int) VC { return vclock.New(n) }

// Interval is a duration during which a local predicate held at one process,
// or the ⊓-aggregation of a detected solution set; both are identified by a
// pair of vector-timestamp cuts.
type Interval = interval.Interval

// NewInterval builds a base interval for process origin with sequence number
// seq and bounds lo, hi.
func NewInterval(origin, seq int, lo, hi VC) Interval {
	return interval.New(origin, seq, lo, hi)
}

// Overlap reports the pairwise Definitely condition between two intervals:
// min(x) < max(y) ∧ min(y) < max(x).
func Overlap(x, y Interval) bool { return interval.Overlap(x, y) }

// OverlapAll reports whether a whole set of intervals satisfies
// Definitely(Φ) pairwise.
func OverlapAll(xs []Interval) bool { return interval.OverlapAll(xs) }

// Aggregate applies the ⊓ operator to a solution set (component-wise max of
// lower bounds, component-wise min of upper bounds).
func Aggregate(xs []Interval, origin, seq int) Interval {
	return interval.Aggregate(xs, origin, seq, false)
}

// BaseIntervalsOf expands an aggregate built with solution-set retention
// (SimConfig.Verify / NodeConfig.KeepMembers) back to the raw per-process
// intervals it covers; an opaque aggregate expands to itself.
func BaseIntervalsOf(x Interval) []Interval {
	return interval.BaseIntervals(x)
}

// Process instruments one application process: it maintains the vector clock
// across internal/send/receive events and extracts local-predicate
// intervals. See NewProcess.
type Process = procsim.Process

// NewProcess returns an instrumented process handle. emit is invoked
// synchronously with each completed local-predicate interval; feed it to the
// process's detector Node (or ship it to the node that hosts the detector).
func NewProcess(id, n int, emit func(Interval)) *Process {
	return procsim.New(id, n, emit)
}

// Node is the per-process hierarchical detector (Algorithm 1): interval
// queues, head elimination, solution aggregation and the Eq. 10 pruning rule
// for repeated detection. See NewNode.
type Node = core.Node

// Detection is one satisfaction of the predicate in the subtree of the
// reporting node. Agg is the ⊓-aggregate to forward to the node's parent;
// its Span lists the covered processes.
type Detection = core.Detection

// NodeConfig configures detector nodes.
type NodeConfig struct {
	// N is the total number of processes (vector-clock dimension).
	N int
	// KeepMembers retains solution sets on aggregates so detections can be
	// expanded to base intervals (debugging/verification; costs memory).
	KeepMembers bool
	// Strict makes nodes panic when a source's intervals arrive out of
	// generation order — a transport bug detector.
	Strict bool
}

// NewNode returns the detector for process id. local declares whether the
// process hosts a local predicate (participates in the conjunction) rather
// than merely relaying. Wire children with Node.AddChild; feed intervals
// with Node.OnInterval; handle failures with Node.RemoveChild.
func NewNode(id int, cfg NodeConfig, local bool) *Node {
	return core.NewNode(id, core.Config{N: cfg.N, KeepMembers: cfg.KeepMembers, Strict: cfg.Strict}, local)
}

// Sink is the centralized repeated-detection baseline [12]: one process
// queues every interval from every process. Included for comparison; it is
// the algorithm the paper improves on.
type Sink = centralized.Sink

// NewSink returns a centralized detector at process sinkID over the given
// participants.
func NewSink(sinkID int, cfg NodeConfig, participants []int) *Sink {
	return centralized.NewSink(sinkID, core.Config{N: cfg.N, KeepMembers: cfg.KeepMembers, Strict: cfg.Strict}, participants)
}

// OneShotDefinitely is the classical one-time Definitely(Φ) detector
// (Garg–Waldecker); it finds the first occurrence and then stops. Included
// to demonstrate why repeated detection needs more than re-running it.
type OneShotDefinitely = oneshot.DefinitelyDetector

// NewOneShotDefinitely returns a one-shot Definitely(Φ) detector.
func NewOneShotDefinitely(participants []int) *OneShotDefinitely {
	return oneshot.NewDefinitely(participants)
}

// OneShotPossibly is the classical one-time Possibly(Φ) detector.
type OneShotPossibly = oneshot.PossiblyDetector

// NewOneShotPossibly returns a one-shot Possibly(Φ) detector.
func NewOneShotPossibly(participants []int) *OneShotPossibly {
	return oneshot.NewPossibly(participants)
}

// Topology is a spanning tree (or forest, after partitions) over the
// processes plus the underlying communication graph used for failure repair.
type Topology = tree.Topology

// NoParent marks a root in Topology parent queries.
const NoParent = tree.None

// BalancedTree builds a complete d-ary spanning tree of height h.
func BalancedTree(d, h int) *Topology { return tree.Balanced(d, h) }

// BalancedTreeN builds a d-ary heap-layout tree over exactly n nodes.
func BalancedTreeN(n, d int) *Topology { return tree.BalancedN(n, d) }

// ChainTree builds a path topology (degree 1).
func ChainTree(n int) *Topology { return tree.Chain(n) }

// StarTree builds a root with n−1 direct children — the centralized shape.
func StarTree(n int) *Topology { return tree.Star(n) }

// RandomTree builds a random tree with bounded degree, deterministic in seed.
func RandomTree(n, maxDegree int, seed int64) *Topology {
	return tree.Random(n, maxDegree, seed)
}

// HierarchicalMessages evaluates the paper's Eq. 11: total messages of the
// hierarchical algorithm for p intervals/process on a (d, h) tree with
// aggregation probability α.
func HierarchicalMessages(p, d, h int, alpha float64) float64 {
	return analytic.HierarchicalMessages(p, d, h, alpha)
}

// CentralizedMessages evaluates the paper's Eq. 12: total messages of the
// centralized baseline on the same tree (each interval pays its distance to
// the sink).
func CentralizedMessages(p, d, h int) float64 {
	return analytic.CentralizedMessages(p, d, h)
}
