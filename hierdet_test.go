package hierdet

import (
	"testing"
)

// TestEmbeddingAPI walks the documented embedding flow end to end without
// the simulator: instrument processes, run one detector node per process,
// wire the tree by forwarding aggregates by hand.
func TestEmbeddingAPI(t *testing.T) {
	const n = 3
	cfg := NodeConfig{N: n, Strict: true, KeepMembers: true}
	root := NewNode(0, cfg, true)
	root.AddChild(1)
	root.AddChild(2)
	leaf1 := NewNode(1, cfg, true)
	leaf2 := NewNode(2, cfg, true)

	var rootDetections []Detection
	feedRoot := func(src int, iv Interval) {
		rootDetections = append(rootDetections, root.OnInterval(src, iv)...)
	}
	// Leaf detections forward their aggregates to the root.
	forward := func(leaf *Node) func(int, Interval) {
		return func(src int, iv Interval) {
			for _, d := range leaf.OnInterval(src, iv) {
				feedRoot(leaf.ID(), d.Agg)
			}
		}
	}
	feed1, feed2 := forward(leaf1), forward(leaf2)

	procs := make([]*Process, n)
	emit := []func(int, Interval){feedRoot, feed1, feed2}
	for i := 0; i < n; i++ {
		i := i
		procs[i] = NewProcess(i, n, func(iv Interval) { emit[i](i, iv) })
	}

	// One synchronized pulse: everyone true, cross acks, everyone false.
	for _, p := range procs {
		p.SetPredicate(true)
		p.Internal()
	}
	for i := 1; i < n; i++ {
		procs[0].Receive(procs[i].PrepareSend())
	}
	for i := 1; i < n; i++ {
		procs[i].Receive(procs[0].PrepareSend())
	}
	for _, p := range procs {
		p.SetPredicate(false)
		p.Internal()
	}

	if len(rootDetections) != 1 {
		t.Fatalf("root detections = %d, want 1", len(rootDetections))
	}
	if span := rootDetections[0].Agg.Span; len(span) != 3 {
		t.Fatalf("span = %v, want all three processes", span)
	}
}

func TestVCAndIntervalHelpers(t *testing.T) {
	x := NewInterval(0, 0, VC{1, 0}, VC{3, 2})
	y := NewInterval(1, 0, VC{0, 1}, VC{2, 3})
	if !x.WellFormed() || !y.WellFormed() {
		t.Fatal("intervals ill-formed")
	}
	if !Overlap(x, y) {
		t.Fatal("interleaved intervals should overlap")
	}
	if !OverlapAll([]Interval{x, y}) {
		t.Fatal("OverlapAll should hold")
	}
	agg := Aggregate([]Interval{x, y}, 1, 0)
	if !agg.Agg {
		t.Fatal("aggregate not marked")
	}
	if !agg.Lo.Equal(VC{1, 1}) || !agg.Hi.Equal(VC{2, 2}) {
		t.Fatalf("aggregate bounds %v..%v", agg.Lo, agg.Hi)
	}
	if v := NewVC(3); v.Len() != 3 {
		t.Fatal("NewVC")
	}
}

func TestSimulateHierarchicalEndToEnd(t *testing.T) {
	topo := BalancedTree(2, 2)
	res := Simulate(SimConfig{
		Topology: topo,
		Rounds:   10,
		PGlobal:  1,
		Seed:     1,
		Verify:   true,
	})
	if got := len(res.RootDetections()); got != 10 {
		t.Fatalf("root detections = %d, want 10", got)
	}
	// Simulate must not mutate the caller's topology.
	if !topo.Alive(0) || topo.Parent(1) != 0 {
		t.Fatal("Simulate mutated the input topology")
	}
}

func TestSimulateBothAlgorithmsOnSameExecution(t *testing.T) {
	topo := BalancedTree(2, 2)
	exec := GenerateWorkload(topo, 8, 3, 0.5, 0.25, 0)
	h := SimulateExecution(SimConfig{Topology: topo, Seed: 5, Verify: true}, exec)
	c := SimulateExecution(SimConfig{Topology: topo, Algorithm: CentralizedAlgorithm, Seed: 5, Verify: true}, exec)
	if len(h.RootDetections()) != len(c.RootDetections()) {
		t.Fatalf("hierarchical %d vs centralized %d root detections",
			len(h.RootDetections()), len(c.RootDetections()))
	}
	if h.Net.TotalSent >= c.Net.TotalSent && c.Net.TotalSent > 0 {
		t.Fatalf("hierarchical traffic (%d) should undercut centralized (%d)",
			h.Net.TotalSent, c.Net.TotalSent)
	}
}

func TestSimulateWithFailure(t *testing.T) {
	topo := BalancedTree(2, 2)
	res := Simulate(SimConfig{
		Topology: topo,
		Rounds:   10,
		PGlobal:  1,
		Seed:     2,
		Verify:   true,
		Failures: []Failure{{At: 5500, Node: 6}},
	})
	if len(res.Failed) != 1 || res.Failed[0] != 6 {
		t.Fatalf("Failed = %v", res.Failed)
	}
	survivors := 0
	for _, d := range res.RootDetections() {
		if len(d.Det.Agg.Span) == 6 {
			survivors++
		}
	}
	if survivors == 0 {
		t.Fatal("no survivor-span detections after failure")
	}
}

func TestSimulateKnobs(t *testing.T) {
	topo := BalancedTree(2, 2)
	exec := GenerateWorkload(topo, 10, 4, 1, 0, 0)

	// Batching: fewer messages, same detections (round spacing 100 makes
	// several rounds share a 500-tick window).
	plain := SimulateExecution(SimConfig{Topology: topo, Seed: 9, RoundSpacing: 100}, exec)
	batched := SimulateExecution(SimConfig{Topology: topo, Seed: 9, RoundSpacing: 100, BatchWindow: 500}, exec)
	if len(batched.RootDetections()) != len(plain.RootDetections()) {
		t.Fatal("batching changed detections")
	}
	if batched.Net.TotalSent >= plain.Net.TotalSent {
		t.Fatal("batching saved nothing")
	}

	// Differential timestamps pay off on group-local traffic (a global
	// pulse changes every clock component, where deltas are *larger* than
	// the flat encoding — 12 vs 8 bytes per component).
	groupExec := GenerateWorkload(topo, 20, 5, 0.1, 0.8, 0)
	full := SimulateExecution(SimConfig{Topology: topo, Seed: 9, FIFO: true}, groupExec)
	diff := SimulateExecution(SimConfig{Topology: topo, Seed: 9, FIFO: true, DiffTimestamps: true}, groupExec)
	if diff.Net.TotalBytes >= full.Net.TotalBytes {
		t.Fatalf("differential encoding saved nothing on group traffic (%d vs %d)",
			diff.Net.TotalBytes, full.Net.TotalBytes)
	}

	// Loss: misses but never falsifies.
	lossy := SimulateExecution(SimConfig{Topology: topo, Seed: 9, LossProb: 0.2, Verify: true}, exec)
	if lossy.Net.Lost == 0 {
		t.Fatal("nothing lost")
	}
	for _, d := range lossy.Detections {
		if !OverlapAll(BaseIntervalsOf(d.Det.Agg)) {
			t.Fatal("false detection under loss")
		}
	}

	// Subset rounds through the facade.
	sub := Simulate(SimConfig{Topology: topo, Rounds: 10, PSubset: 1, Seed: 4, Verify: true})
	for _, d := range sub.Detections {
		if d.AtRoot && len(d.Det.Agg.Span) == 7 {
			t.Fatal("subset-only workload produced a global detection")
		}
	}
}

func TestAnalyticFacade(t *testing.T) {
	h := HierarchicalMessages(20, 2, 5, 0.45)
	c := CentralizedMessages(20, 2, 5)
	if h <= 0 || c <= 0 || h >= c {
		t.Fatalf("h=%v c=%v", h, c)
	}
}

func TestTreeBuildersFacade(t *testing.T) {
	if BalancedTree(2, 3).N() != 15 {
		t.Fatal("BalancedTree")
	}
	if BalancedTreeN(10, 3).N() != 10 {
		t.Fatal("BalancedTreeN")
	}
	if ChainTree(4).Height() != 3 {
		t.Fatal("ChainTree")
	}
	if StarTree(5).Degree() != 4 {
		t.Fatal("StarTree")
	}
	if RandomTree(10, 2, 1).Degree() > 2 {
		t.Fatal("RandomTree")
	}
}

func TestOneShotFacade(t *testing.T) {
	d := NewOneShotDefinitely([]int{0})
	lo := NewVC(1)
	lo.Tick(0)
	hi := lo.Clone()
	hi.Tick(0)
	if !d.OnInterval(0, NewInterval(0, 0, lo, hi)) {
		t.Fatal("one-shot should fire")
	}
	p := NewOneShotPossibly([]int{0})
	if !p.OnInterval(0, NewInterval(0, 1, hi.Ticked(0), hi.Ticked(0).Ticked(0))) {
		t.Fatal("possibly should fire")
	}
}

func TestLatticeFacade(t *testing.T) {
	rec := NewRecorder(2)
	a := NewProcess(0, 2, nil)
	b := NewProcess(1, 2, nil)
	rec.Attach(a)
	rec.Attach(b)
	a.SetPredicate(true)
	a.Internal()
	b.SetPredicate(true)
	b.Internal()
	a.Receive(b.PrepareSend())
	b.Receive(a.PrepareSend())
	a.SetPredicate(false)
	a.Internal()
	b.SetPredicate(false)
	b.Internal()

	def, err := LatticeDefinitely(rec.Recording(), ConjunctivePredicate())
	if err != nil || !def {
		t.Fatalf("Definitely = %v, %v; want true", def, err)
	}
	pos, err := LatticePossibly(rec.Recording(), ConjunctivePredicate())
	if err != nil || !pos {
		t.Fatalf("Possibly = %v, %v; want true", pos, err)
	}
	never := func(states []LocalState) bool { return false }
	if pos, _ := LatticePossibly(rec.Recording(), never); pos {
		t.Fatal("Possibly(false) held")
	}
}

func TestSinkFacade(t *testing.T) {
	s := NewSink(0, NodeConfig{N: 2, Strict: true}, []int{0, 1})
	lo0 := NewVC(2)
	lo0.Tick(0)
	hi0 := VC{3, 2}
	lo1 := VC{0, 1}
	hi1 := VC{2, 3}
	s.OnInterval(0, NewInterval(0, 0, lo0, hi0))
	dets := s.OnInterval(1, NewInterval(1, 0, lo1, hi1))
	if len(dets) != 1 {
		t.Fatalf("sink detections = %d", len(dets))
	}
}
