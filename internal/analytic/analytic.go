// Package analytic implements the paper's complexity model (§IV): the
// message-count formulas behind Figures 4 and 5 and the Table I entries, for
// a spanning tree of degree d and height h (n = d^h in the paper's
// approximation) with p intervals per process and per-level aggregation
// probability α.
//
// Convention: the paper's h counts tree LEVELS — leaves are level 1 and the
// root level h — so a complete d-ary tree with h levels has h−1 edges of
// height and is built by tree.Balanced(d, h−1). The measured validations in
// cmd/figures align the two conventions explicitly.
//
// Two forms of the centralized count are provided. The defining summation
// (Eq. 12) is ground truth. The closed form printed as Eq. (14) in the paper
// does not equal that summation (e.g. d=2, h=3, p=1 gives 10 by Eq. 12 but 2
// by the printed formula); re-deriving the telescoping sum yields
//
//	total = p · d · ((h−1)·d^h − h·d^(h−1) + 1) / (d−1)²
//
// which the tests verify equals Eq. 12 exactly. The printed form is kept as
// CentralizedMessagesPaperEq14 for reference; all experiments use the
// summation-backed functions. See EXPERIMENTS.md for the discrepancy note.
package analytic

import (
	"fmt"
	"math"
)

// HierarchicalMessages evaluates paper Eq. 11: the total message count of
// Algorithm 1 on a tree of degree d and height h with p intervals per
// process and aggregation probability α,
//
//	Σ_{i=1}^{h−1} d^(h−i) · p · d^(i−1) · α^(i−1)  =  p·d^(h−1)·(1−α^(h−1))/(1−α)
//
// Every message travels exactly one hop (child to parent).
func HierarchicalMessages(p, d, h int, alpha float64) float64 {
	checkParams(p, d, h)
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("analytic: alpha %v out of [0,1]", alpha))
	}
	sum := 0.0
	for i := 1; i <= h-1; i++ {
		sum += math.Pow(float64(d), float64(h-i)) *
			float64(p) *
			math.Pow(float64(d), float64(i-1)) *
			math.Pow(alpha, float64(i-1))
	}
	return sum
}

// HierarchicalMessagesClosed evaluates the closed form of Eq. 11,
// p·d^(h−1)·(1−α^(h−1))/(1−α); at α = 1 the geometric sum degenerates to
// p·d^(h−1)·(h−1).
func HierarchicalMessagesClosed(p, d, h int, alpha float64) float64 {
	checkParams(p, d, h)
	base := float64(p) * math.Pow(float64(d), float64(h-1))
	if alpha == 1 {
		return base * float64(h-1)
	}
	return base * (1 - math.Pow(alpha, float64(h-1))) / (1 - alpha)
}

// CentralizedMessages evaluates paper Eq. 12, the defining summation of the
// centralized baseline's message count: each of the p intervals of each of
// the d^(h−i) processes at level i travels h−i hops to the sink,
//
//	Σ_{i=1}^{h−1} p · d^(h−i) · (h−i)
func CentralizedMessages(p, d, h int) float64 {
	checkParams(p, d, h)
	sum := 0.0
	for i := 1; i <= h-1; i++ {
		sum += float64(p) * math.Pow(float64(d), float64(h-i)) * float64(h-i)
	}
	return sum
}

// CentralizedMessagesClosed is the corrected closed form of Eq. 12:
//
//	p · d · ((h−1)·d^h − h·d^(h−1) + 1) / (d−1)²
//
// Tests verify it equals CentralizedMessages exactly.
func CentralizedMessagesClosed(p, d, h int) float64 {
	checkParams(p, d, h)
	if d == 1 {
		// Σ_{j=1}^{h−1} j = h(h−1)/2 per interval.
		return float64(p) * float64(h*(h-1)) / 2
	}
	df := float64(d)
	return float64(p) * df *
		(float64(h-1)*math.Pow(df, float64(h)) - float64(h)*math.Pow(df, float64(h-1)) + 1) /
		((df - 1) * (df - 1))
}

// CentralizedMessagesPaperEq14 evaluates the closed form exactly as printed
// in the paper's Eq. (14),
//
//	p · ((d^h − 2d)·(dh − d − h) − d) / (d−1)²
//
// It does NOT match the defining summation Eq. 12 (see the package comment);
// it is retained only so the discrepancy is reproducible.
func CentralizedMessagesPaperEq14(p, d, h int) float64 {
	checkParams(p, d, h)
	if d == 1 {
		return math.NaN()
	}
	df, hf := float64(d), float64(h)
	return float64(p) * ((math.Pow(df, hf)-2*df)*(df*hf-df-hf) - df) / ((df - 1) * (df - 1))
}

// MessageRatio returns centralized/hierarchical message counts — the factor
// the paper's Figures 4 and 5 visualize.
func MessageRatio(p, d, h int, alpha float64) float64 {
	return CentralizedMessages(p, d, h) / HierarchicalMessages(p, d, h, alpha)
}

// TableIRow is one column of the paper's Table I, instantiated numerically.
type TableIRow struct {
	// Space is the worst-case stored-interval count × O(n) timestamp size,
	// reported as interval-slots (pn for intervals, each of size O(n)).
	SpaceIntervalSlots float64
	// Time is the dominant comparison-count term.
	TimeComparisons float64
	// Messages is the total message count.
	Messages float64
	// Distributed reports whether the costs spread across all nodes (the
	// hierarchical algorithm) or concentrate at the sink.
	Distributed bool
}

// TableI instantiates both columns of Table I for concrete parameters.
// n is taken as d^h per the paper's convention.
func TableI(p, d, h int, alpha float64) (hier, central TableIRow) {
	checkParams(p, d, h)
	n := math.Pow(float64(d), float64(h))
	pf, df := float64(p), float64(d)
	hier = TableIRow{
		SpaceIntervalSlots: pf * n * n, // O(pn²): pn intervals × O(n) timestamps
		TimeComparisons:    df * df * pf * n * n,
		Messages:           HierarchicalMessages(p, d, h, alpha),
		Distributed:        true,
	}
	central = TableIRow{
		SpaceIntervalSlots: pf * n * n,
		TimeComparisons:    pf * n * n * n,
		Messages:           CentralizedMessages(p, d, h),
		Distributed:        false,
	}
	return hier, central
}

func checkParams(p, d, h int) {
	if p <= 0 || d <= 0 || h <= 0 {
		panic(fmt.Sprintf("analytic: invalid parameters p=%d d=%d h=%d", p, d, h))
	}
}
