package analytic

import (
	"math"
	"testing"
)

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

func TestHierarchicalClosedMatchesSummation(t *testing.T) {
	for _, d := range []int{2, 3, 4, 8} {
		for h := 1; h <= 10; h++ {
			for _, alpha := range []float64{0, 0.1, 0.45, 0.5, 0.9, 1} {
				sum := HierarchicalMessages(20, d, h, alpha)
				closed := HierarchicalMessagesClosed(20, d, h, alpha)
				if !almostEqual(sum, closed) {
					t.Fatalf("d=%d h=%d α=%v: sum %v vs closed %v", d, h, alpha, sum, closed)
				}
			}
		}
	}
}

func TestCentralizedClosedMatchesSummation(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4, 8} {
		for h := 1; h <= 10; h++ {
			sum := CentralizedMessages(7, d, h)
			closed := CentralizedMessagesClosed(7, d, h)
			if !almostEqual(sum, closed) {
				t.Fatalf("d=%d h=%d: sum %v vs closed %v", d, h, sum, closed)
			}
		}
	}
}

// TestPaperEq14Discrepancy documents that the closed form printed in the
// paper's Eq. (14) does not equal its own defining summation Eq. (12); our
// corrected closed form does. If this test ever fails, the printed formula
// actually matched and the EXPERIMENTS.md note should be removed.
func TestPaperEq14Discrepancy(t *testing.T) {
	// By hand: level 1 has 4 processes at 2 hops, level 2 has 2 processes at
	// 1 hop → 4·2 + 2·1 = 10 messages per interval.
	sum := CentralizedMessages(1, 2, 3)
	if sum != 10 {
		t.Fatalf("Eq. 12 at p=1,d=2,h=3 = %v, want 10", sum)
	}
	printed := CentralizedMessagesPaperEq14(1, 2, 3)
	if almostEqual(sum, printed) {
		t.Fatalf("printed Eq. 14 (%v) unexpectedly matches Eq. 12 (%v)", printed, sum)
	}
}

func TestHierarchicalKnownValues(t *testing.T) {
	// d=2, h=3, α=0: only leaves send, 4 leaves × p messages.
	if got := HierarchicalMessages(20, 2, 3, 0); got != 80 {
		t.Fatalf("α=0: %v, want 80", got)
	}
	// α=1: p·d^(h−1)·(h−1) = 20·4·2 = 160.
	if got := HierarchicalMessages(20, 2, 3, 1); got != 160 {
		t.Fatalf("α=1: %v, want 160", got)
	}
	// h=1: a single level — no messages in the sum's empty range.
	if got := HierarchicalMessages(20, 2, 1, 0.5); got != 0 {
		t.Fatalf("h=1: %v, want 0", got)
	}
}

func TestCentralizedKnownValues(t *testing.T) {
	// d=2, h=3: 4 leaves × 2 hops + 2 mid × 1 hop = 10 per interval.
	if got := CentralizedMessages(1, 2, 3); got != 10 {
		t.Fatalf("got %v, want 10", got)
	}
	if got := CentralizedMessages(20, 2, 3); got != 200 {
		t.Fatalf("p=20: got %v, want 200", got)
	}
}

func TestHierarchicalBeatsCentralized(t *testing.T) {
	// The paper's headline comparison: for h > 2 and practical α the
	// hierarchical algorithm sends fewer messages, increasingly so with
	// scale.
	for _, d := range []int{2, 4} {
		prev := 0.0
		for h := 3; h <= 10; h++ {
			for _, alpha := range []float64{0.1, 0.45} {
				ratio := MessageRatio(20, d, h, alpha)
				if ratio <= 1 {
					t.Fatalf("d=%d h=%d α=%v: centralized/hierarchical = %v, want > 1", d, h, alpha, ratio)
				}
			}
			r := MessageRatio(20, d, h, 0.1)
			if r < prev {
				t.Fatalf("d=%d: advantage should grow with h (h=%d ratio %v < %v)", d, h, r, prev)
			}
			prev = r
		}
	}
}

func TestAlphaMonotonicity(t *testing.T) {
	// More aggregation success ⇒ more aggregate traffic upward.
	last := -1.0
	for _, alpha := range []float64{0, 0.1, 0.3, 0.45, 0.7, 0.9, 1} {
		got := HierarchicalMessages(20, 2, 6, alpha)
		if got <= last {
			t.Fatalf("messages not increasing in α: %v after %v", got, last)
		}
		last = got
	}
}

func TestPLinearity(t *testing.T) {
	// p is a linear factor in both formulas (paper §IV-A observation).
	h1 := HierarchicalMessages(1, 4, 5, 0.45)
	h20 := HierarchicalMessages(20, 4, 5, 0.45)
	if !almostEqual(h20, 20*h1) {
		t.Fatalf("hierarchical not linear in p: %v vs %v", h20, 20*h1)
	}
	c1 := CentralizedMessages(1, 4, 5)
	c20 := CentralizedMessages(20, 4, 5)
	if !almostEqual(c20, 20*c1) {
		t.Fatalf("centralized not linear in p: %v vs %v", c20, 20*c1)
	}
}

func TestTableI(t *testing.T) {
	hier, central := TableI(20, 2, 5, 0.45)
	n := 32.0
	if !almostEqual(hier.SpaceIntervalSlots, 20*n*n) || !almostEqual(central.SpaceIntervalSlots, 20*n*n) {
		t.Fatal("Table I space entries wrong")
	}
	if !almostEqual(hier.TimeComparisons, 4*20*n*n) {
		t.Fatalf("hier time = %v", hier.TimeComparisons)
	}
	if !almostEqual(central.TimeComparisons, 20*n*n*n) {
		t.Fatalf("central time = %v", central.TimeComparisons)
	}
	// d² < n for h > 2: the paper's superiority argument.
	if hier.TimeComparisons >= central.TimeComparisons {
		t.Fatal("hierarchical time should be lower for h > 2")
	}
	if !hier.Distributed || central.Distributed {
		t.Fatal("distribution flags wrong")
	}
}

func TestValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"neg-p":     func() { HierarchicalMessages(0, 2, 3, 0.5) },
		"bad-alpha": func() { HierarchicalMessages(1, 2, 3, 1.5) },
		"neg-d":     func() { CentralizedMessages(1, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
	if !math.IsNaN(CentralizedMessagesPaperEq14(1, 1, 3)) {
		t.Error("printed Eq. 14 should be NaN at d=1")
	}
}
