// Package centralized implements the baseline this paper compares against:
// the centralized repeated detection algorithm for Definitely(Φ) of
// Kshemkalyani, "Repeated detection of conjunctive predicates in distributed
// executions", Information Processing Letters 111(9), 2011 — reference [12].
//
// A single sink process maintains one queue per process in the system. Every
// process ships every local interval to the sink (in a multi-hop network,
// each interval costs as many messages as its distance to the sink — the
// message-complexity penalty quantified by paper Eq. 12). The sink runs the
// same elimination loop and Eq. 10 pruning rule as the hierarchical
// algorithm, but over all n queues at once: all O(pn²) space and O(pn³) time
// land on one node, and a sink failure loses every interval — the two
// deficiencies the hierarchical algorithm removes.
//
// The detection engine is deliberately shared with internal/core: the paper
// notes Algorithm 1 "has the same basic structure as the centralized
// algorithm given in [12]"; the difference is where the queues live and what
// flows into them (raw intervals here, aggregates there).
package centralized

import (
	"fmt"

	"hierdet/internal/core"
	"hierdet/internal/interval"
)

// Sink is the central detector. It is a pure state machine like core.Node;
// transport (and its multi-hop cost) is simulated by internal/monitor.
type Sink struct {
	node    *core.Node
	n       int
	sinkID  int
	history []core.Detection
}

// NewSink returns a sink detector for an n-process system. The sink itself
// is process sinkID; participants lists the process ids whose local
// predicates form the conjunction (normally all n processes).
func NewSink(sinkID int, cfg core.Config, participants []int) *Sink {
	if len(participants) == 0 {
		panic("centralized: no participants")
	}
	local := false
	for _, p := range participants {
		if p == sinkID {
			local = true
			break
		}
	}
	nd := core.NewNode(sinkID, cfg, local)
	for _, p := range participants {
		if p != sinkID {
			nd.AddChild(p)
		}
	}
	return &Sink{node: nd, n: cfg.N, sinkID: sinkID}
}

// ID returns the sink's process id.
func (s *Sink) ID() int { return s.sinkID }

// OnInterval delivers one local interval from process p (possibly the sink
// itself) and returns the global detections it triggers.
func (s *Sink) OnInterval(p int, iv interval.Interval) []core.Detection {
	if !s.node.HasSource(p) {
		panic(fmt.Sprintf("centralized: interval from unknown process %d", p))
	}
	dets := s.node.OnInterval(p, iv)
	s.history = append(s.history, dets...)
	return dets
}

// RemoveProcess drops a failed process's queue. The centralized algorithm
// has no principled story for this — the paper's point — but supporting it
// lets experiments compare like for like after failures of non-sink nodes.
func (s *Sink) RemoveProcess(p int) []core.Detection {
	dets := s.node.RemoveChild(p)
	s.history = append(s.history, dets...)
	return dets
}

// Detections returns every detection so far, in order.
func (s *Sink) Detections() []core.Detection {
	return append([]core.Detection(nil), s.history...)
}

// Stats exposes the sink's work counters. Unlike the hierarchical detector,
// every count here burdens the single sink process.
func (s *Sink) Stats() core.Stats { return s.node.Stats() }

// QueueSizes reports current and high-water interval residency at the sink.
func (s *Sink) QueueSizes() (current, highWater int) { return s.node.QueueSizes() }
