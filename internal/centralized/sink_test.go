package centralized

import (
	"testing"

	"hierdet/internal/core"
	"hierdet/internal/interval"
	"hierdet/internal/vclock"
)

// pulse builds one synchronized pulse of n mutually overlapping intervals;
// pulse p+1 begins strictly after pulse p ends.
func pulse(n, p int) []interval.Interval {
	base := uint32(p * 10)
	out := make([]interval.Interval, n)
	for i := 0; i < n; i++ {
		lo := make(vclock.VC, n)
		hi := make(vclock.VC, n)
		for c := 0; c < n; c++ {
			lo[c] = base + 1
			hi[c] = base + 5
		}
		lo[i] = base + 2
		hi[i] = base + 6
		out[i] = interval.New(i, p, lo, hi)
	}
	return out
}

func TestSinkRepeatedDetection(t *testing.T) {
	const n, k = 5, 20
	s := NewSink(0, core.Config{N: n, Strict: true, KeepMembers: true}, []int{0, 1, 2, 3, 4})
	total := 0
	for p := 0; p < k; p++ {
		for _, iv := range pulse(n, p) {
			total += len(s.OnInterval(iv.Origin, iv))
		}
	}
	if total != k {
		t.Fatalf("detections = %d, want %d", total, k)
	}
	if got := len(s.Detections()); got != k {
		t.Fatalf("history = %d, want %d", got, k)
	}
	for i, d := range s.Detections() {
		if len(d.Set) != n {
			t.Fatalf("detection %d has %d intervals, want %d", i, len(d.Set), n)
		}
		if !interval.OverlapAll(d.Set) {
			t.Fatalf("detection %d violates Eq. 2", i)
		}
	}
}

func TestSinkNoFalseDetection(t *testing.T) {
	// Strictly sequential intervals: P0 then P1 then P2 — Definitely never
	// holds.
	const n = 3
	s := NewSink(0, core.Config{N: n, Strict: true}, []int{0, 1, 2})
	ivs := []interval.Interval{
		interval.New(0, 0, vclock.Of(1, 0, 0), vclock.Of(2, 0, 0)),
		interval.New(1, 0, vclock.Of(3, 1, 0), vclock.Of(3, 2, 0)),
		interval.New(2, 0, vclock.Of(3, 3, 1), vclock.Of(3, 3, 2)),
	}
	for _, iv := range ivs {
		if dets := s.OnInterval(iv.Origin, iv); len(dets) != 0 {
			t.Fatalf("false detection: %v", dets)
		}
	}
}

func TestSinkRemoveProcess(t *testing.T) {
	const n = 3
	s := NewSink(0, core.Config{N: n, Strict: true}, []int{0, 1, 2})
	s.OnInterval(0, interval.New(0, 0, vclock.Of(2, 1, 0), vclock.Of(5, 4, 0)))
	s.OnInterval(1, interval.New(1, 0, vclock.Of(1, 2, 0), vclock.Of(4, 5, 0)))
	dets := s.RemoveProcess(2)
	if len(dets) != 1 {
		t.Fatalf("detections after removal = %d, want 1", len(dets))
	}
}

// TestSinkFigure2Sequence replays the paper's Figure 2 interval relations at
// the centralized sink: the first candidate set {x1,x2,x4,x5} fails, and the
// repeated-detection machinery recovers the later solution {x1,x3,x4,x5} —
// the same behaviour the hierarchical algorithm shows level by level.
func TestSinkFigure2Sequence(t *testing.T) {
	s := NewSink(2, core.Config{N: 4, Strict: true, KeepMembers: true}, []int{0, 1, 2, 3})
	x1 := interval.New(0, 0, vclock.Of(1, 0, 0, 0), vclock.Of(6, 5, 2, 2))
	x2 := interval.New(1, 0, vclock.Of(0, 1, 0, 0), vclock.Of(1, 3, 0, 0))
	x3 := interval.New(1, 1, vclock.Of(2, 4, 0, 0), vclock.Of(5, 7, 1, 1))
	x4 := interval.New(2, 0, vclock.Of(0, 0, 1, 0), vclock.Of(3, 4, 4, 1))
	x5 := interval.New(3, 0, vclock.Of(0, 0, 0, 1), vclock.Of(3, 4, 1, 4))

	var dets []core.Detection
	for _, iv := range []interval.Interval{x1, x2, x4, x5} {
		dets = append(dets, s.OnInterval(iv.Origin, iv)...)
	}
	if len(dets) != 0 {
		t.Fatalf("premature detection from {x1,x2,x4,x5}: %v", dets)
	}
	dets = s.OnInterval(1, x3)
	if len(dets) != 1 {
		t.Fatalf("detections after x3 = %d, want 1", len(dets))
	}
	for _, iv := range dets[0].Set {
		if iv.Origin == 1 && iv.Seq != 1 {
			t.Fatalf("solution used x2, want x3: %v", iv)
		}
	}
	if !interval.OverlapAll(dets[0].Set) {
		t.Fatal("solution violates Eq. 2")
	}
}

func TestSinkValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":   func() { NewSink(0, core.Config{N: 1}, nil) },
		"unknown": func() { NewSink(0, core.Config{N: 2}, []int{0, 1}).OnInterval(9, interval.Interval{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSinkWithoutOwnPredicate(t *testing.T) {
	// The sink can be a pure observer outside the conjunction.
	s := NewSink(9, core.Config{N: 10, Strict: true}, []int{0, 1})
	s.OnInterval(0, interval.New(0, 0, tenOf(2, 1), tenOf(5, 4)))
	dets := s.OnInterval(1, interval.New(1, 0, tenOf(1, 2), tenOf(4, 5)))
	if len(dets) != 1 {
		t.Fatalf("detections = %d, want 1", len(dets))
	}
	if cur, _ := s.QueueSizes(); cur != 0 {
		t.Fatalf("residual queue size = %d, want 0", cur)
	}
	if s.Stats().Detections != 1 {
		t.Fatalf("stats.Detections = %d", s.Stats().Detections)
	}
}

func tenOf(a, b uint32) vclock.VC {
	v := vclock.New(10)
	v[0], v[1] = a, b
	return v
}
