// Package clusterfile defines the deployment description a multi-process
// detector run shares: the spanning tree, each process's listen address, and
// the workload and failure-detector parameters every participant must agree
// on. One process per topology node reads the same file (cmd/hierdet-node),
// regenerates the identical workload from the shared seed, and dials its
// peers at the recorded addresses — no coordination service, just a file,
// which is all a localhost cluster or a CI smoke test needs.
package clusterfile

import (
	"encoding/json"
	"fmt"
	"os"

	"hierdet/internal/tree"
)

// File is the shared deployment description.
type File struct {
	// Parents is the spanning tree: Parents[i] is node i's parent, -1 for a
	// root. Node count is len(Parents).
	Parents []int `json:"parents"`
	// Addrs[i] is node i's listen address ("host:port").
	Addrs []string `json:"addrs"`

	// Workload: every process regenerates the same execution from these.
	Rounds  int     `json:"rounds"`
	Phase1  int     `json:"phase1"` // rounds fed before the failure gate
	Seed    int64   `json:"seed"`
	PGlobal float64 `json:"pglobal"`

	// Tenants multiplexes this many predicates ("t0".."tN-1", one detection
	// tree each, workload seeds Seed, Seed+1, ...) over the deployment's one
	// TCP mesh. 0 or 1 runs the classic single-predicate node.
	Tenants int `json:"tenants,omitempty"`

	// Failure detector timings, in milliseconds (generous defaults for
	// separate OS processes on one machine; see Normalize).
	HbEveryMs      int `json:"hbEveryMs"`
	HbTimeoutMs    int `json:"hbTimeoutMs"`
	StartupGraceMs int `json:"startupGraceMs"`
	// FeedEveryMs paces each process's interval stream.
	FeedEveryMs int `json:"feedEveryMs"`
}

// N returns the node count.
func (f *File) N() int { return len(f.Parents) }

// Normalize fills defaults in place.
func (f *File) Normalize() {
	if f.Rounds == 0 {
		f.Rounds = 12
	}
	if f.Phase1 == 0 || f.Phase1 > f.Rounds {
		f.Phase1 = f.Rounds / 2
	}
	if f.PGlobal == 0 {
		f.PGlobal = 1
	}
	if f.Tenants == 0 {
		f.Tenants = 1
	}
	if f.HbEveryMs == 0 {
		f.HbEveryMs = 5
	}
	if f.HbTimeoutMs == 0 {
		f.HbTimeoutMs = 8 * f.HbEveryMs
	}
	if f.StartupGraceMs == 0 {
		// Processes launch one after another; suppress suspicion until the
		// whole deployment is plausibly up.
		f.StartupGraceMs = 2000
	}
	if f.FeedEveryMs == 0 {
		f.FeedEveryMs = 2
	}
}

// Validate checks structural sanity (tree shape is checked by Topology).
func (f *File) Validate() error {
	n := f.N()
	if n == 0 {
		return fmt.Errorf("clusterfile: no nodes")
	}
	if len(f.Addrs) != n {
		return fmt.Errorf("clusterfile: %d addrs for %d nodes", len(f.Addrs), n)
	}
	if f.Tenants < 0 {
		return fmt.Errorf("clusterfile: negative tenant count %d", f.Tenants)
	}
	roots := 0
	for i, p := range f.Parents {
		switch {
		case p == tree.None:
			roots++
		case p < 0 || p >= n:
			return fmt.Errorf("clusterfile: node %d has parent %d out of range", i, p)
		case p == i:
			return fmt.Errorf("clusterfile: node %d is its own parent", i)
		}
	}
	if roots != 1 {
		return fmt.Errorf("clusterfile: %d roots, want 1", roots)
	}
	for i, a := range f.Addrs {
		if a == "" {
			return fmt.Errorf("clusterfile: node %d has no address", i)
		}
	}
	return nil
}

// Topology builds the spanning tree (complete communication graph, the
// default candidates pool for repairs).
func (f *File) Topology() (*tree.Topology, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	t := tree.New(f.N())
	// Attach top-down so SetParent's cycle check sees a growing forest; a
	// parent list with a cycle never exposes all its members as attachable
	// and is reported instead of looping.
	attached := map[int]bool{}
	for i, p := range f.Parents {
		if p == tree.None {
			attached[i] = true
		}
	}
	for remaining := f.N() - len(attached); remaining > 0; {
		progressed := false
		for i, p := range f.Parents {
			if attached[i] || !attached[p] {
				continue
			}
			t.SetParent(i, p)
			attached[i] = true
			remaining--
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("clusterfile: parent list contains a cycle")
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("clusterfile: %w", err)
	}
	return t, nil
}

// Peers returns the address book for one process: every node's address but
// its own — any node can become a repair candidate, so every process must be
// dialable from every other.
func (f *File) Peers(self int) map[int]string {
	out := make(map[int]string, f.N()-1)
	for id, addr := range f.Addrs {
		if id != self {
			out[id] = addr
		}
	}
	return out
}

// Load reads and validates a cluster file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("clusterfile: %s: %w", path, err)
	}
	f.Normalize()
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Save writes the file, normalized, with stable indentation.
func (f *File) Save(path string) error {
	f.Normalize()
	if err := f.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
