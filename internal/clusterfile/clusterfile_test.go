package clusterfile

import (
	"path/filepath"
	"testing"

	"hierdet/internal/tree"
)

func sevenNode() *File {
	return &File{
		// Balanced(2,2) parent list: 0 root; 1,2 under 0; 3,4 under 1; 5,6 under 2.
		Parents: []int{tree.None, 0, 0, 1, 1, 2, 2},
		Addrs: []string{
			"127.0.0.1:9000", "127.0.0.1:9001", "127.0.0.1:9002",
			"127.0.0.1:9003", "127.0.0.1:9004", "127.0.0.1:9005", "127.0.0.1:9006",
		},
		Rounds: 10, Phase1: 5, Seed: 7, PGlobal: 1,
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	f := sevenNode()
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 7 || got.Rounds != 10 || got.Phase1 != 5 || got.Seed != 7 {
		t.Errorf("round-trip lost fields: %+v", got)
	}
	// Save normalized, so the timing defaults must be concrete after Load.
	if got.HbEveryMs == 0 || got.HbTimeoutMs == 0 || got.StartupGraceMs == 0 || got.FeedEveryMs == 0 {
		t.Errorf("timings not normalized: %+v", got)
	}
	// Tenants defaults to the classic single-predicate node.
	if got.Tenants != 1 {
		t.Errorf("Tenants = %d, want 1 after normalization", got.Tenants)
	}
}

func TestTenantsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	f := sevenNode()
	f.Tenants = 16
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tenants != 16 {
		t.Errorf("Tenants = %d, want 16", got.Tenants)
	}
	f.Tenants = -1
	if err := f.Validate(); err == nil {
		t.Error("negative tenant count accepted")
	}
}

func TestTopologyMatchesBuilder(t *testing.T) {
	topo, err := sevenNode().Topology()
	if err != nil {
		t.Fatal(err)
	}
	want := tree.Balanced(2, 2)
	for id := 0; id < 7; id++ {
		if topo.Parent(id) != want.Parent(id) {
			t.Errorf("node %d parent = %d, want %d", id, topo.Parent(id), want.Parent(id))
		}
	}
}

func TestTopologyShuffledParentOrder(t *testing.T) {
	// A chain written child-first: node 0 is the deepest leaf. Topology must
	// attach in dependency order regardless of the slice order.
	f := &File{
		Parents: []int{1, 2, tree.None},
		Addrs:   []string{"a:1", "a:2", "a:3"},
	}
	topo, err := f.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Parent(0) != 1 || topo.Parent(1) != 2 || topo.Parent(2) != tree.None {
		t.Errorf("unexpected chain: parents = %d %d %d", topo.Parent(0), topo.Parent(1), topo.Parent(2))
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*File)
	}{
		{"no nodes", func(f *File) { f.Parents = nil; f.Addrs = nil }},
		{"addr count mismatch", func(f *File) { f.Addrs = f.Addrs[:3] }},
		{"parent out of range", func(f *File) { f.Parents[3] = 99 }},
		{"self parent", func(f *File) { f.Parents[3] = 3 }},
		{"two roots", func(f *File) { f.Parents[1] = tree.None }},
		{"no root", func(f *File) { f.Parents[0] = 1 }}, // also a 0↔1 cycle
		{"empty addr", func(f *File) { f.Addrs[2] = "" }},
	}
	for _, tc := range cases {
		f := sevenNode()
		tc.mutate(f)
		if err := f.Validate(); err == nil {
			if _, err := f.Topology(); err == nil {
				t.Errorf("%s: accepted", tc.name)
			}
		}
	}
}

func TestTopologyRejectsCycle(t *testing.T) {
	f := &File{
		Parents: []int{tree.None, 2, 3, 1}, // 1→2→3→1 cycle beside a lone root
		Addrs:   []string{"a:1", "a:2", "a:3", "a:4"},
	}
	if _, err := f.Topology(); err == nil {
		t.Error("cycle accepted")
	}
}

func TestPeers(t *testing.T) {
	f := sevenNode()
	peers := f.Peers(3)
	if len(peers) != 6 {
		t.Fatalf("len(peers) = %d, want 6", len(peers))
	}
	if _, ok := peers[3]; ok {
		t.Error("peers includes self")
	}
	if peers[0] != "127.0.0.1:9000" {
		t.Errorf("peers[0] = %q", peers[0])
	}
}
