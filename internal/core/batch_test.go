package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
	"hierdet/internal/wire"
	"hierdet/internal/workload"
)

// encodeDetections serializes a detection sequence to bytes — aggregate and
// solution set through the v2 wire codec — so equivalence checks compare the
// strongest possible notion of "same detections": byte-identical output.
func encodeDetections(dets []Detection) []byte {
	var buf bytes.Buffer
	for _, d := range dets {
		buf.Write(wire.EncodeReportV2(wire.Report{Iv: d.Agg}))
		for _, m := range d.Set {
			buf.Write(wire.EncodeReportV2(wire.Report{Iv: m}))
		}
	}
	return buf.Bytes()
}

// batchEquivalent is the batch-vs-sequential property: delivering any run of
// consecutive intervals through one OnIntervals call emits a byte-identical
// detection sequence to delivering them one OnInterval at a time. The corpus
// is chaotic executions cut into random per-source chunks; both nodes see
// the chunks in the same global order, so the only difference is batch
// ingestion itself.
//
// Detections must match byte for byte; the discard bookkeeping need not. A
// batch exposes a chunk's later intervals inside the same elimination fixed
// point where the sequential path starts a fresh one, so head pairs coexist
// in one path that never meet in the other and each path may discard a
// different (equally provably-useless) interval, splitting Eliminated/Pruned
// differently. What must hold is conservation — every enqueued interval is
// resident, eliminated or pruned — and equality of the outcome counters.
func batchEquivalent(t *testing.T, seed int64, nSel uint8) bool {
	n := 2 + int(nSel%4) // 2..5 sources
	streams := workload.GenerateChaotic(workload.ChaoticConfig{
		N: n, Steps: 50 * n, Seed: seed,
	}).Streams

	seq := NewNode(99, Config{N: n, Strict: true, KeepMembers: true}, false)
	bat := NewNode(99, Config{N: n, Strict: true, KeepMembers: true}, false)
	for p := 0; p < n; p++ {
		seq.AddChild(p)
		bat.AddChild(p)
	}

	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	idx := make([]int, n)
	var seqDets, batDets []Detection
	for {
		progressed := false
		for p := 0; p < n; p++ {
			left := len(streams[p]) - idx[p]
			if left == 0 {
				continue
			}
			k := 1 + rng.Intn(left) // random chunk: 1..left intervals
			run := streams[p][idx[p] : idx[p]+k]
			idx[p] += k
			progressed = true
			for _, iv := range run {
				seqDets = append(seqDets, seq.OnInterval(p, iv)...)
			}
			batDets = append(batDets, bat.OnIntervals(p, run)...)
		}
		if !progressed {
			break
		}
	}
	ss, bs := seq.Stats(), bat.Stats()
	for _, nd := range []struct {
		name string
		st   Stats
		node *Node
	}{{"seq", ss, seq}, {"bat", bs, bat}} {
		cur, _ := nd.node.QueueSizes()
		if nd.st.IntervalsIn != nd.st.Eliminated+nd.st.Pruned+cur {
			t.Logf("seed %d n %d: %s leaks intervals: %+v, resident %d", seed, n, nd.name, nd.st, cur)
			return false
		}
	}
	ss.VecComparisons, bs.VecComparisons = 0, 0
	ss.Eliminated, bs.Eliminated = 0, 0
	ss.Pruned, bs.Pruned = 0, 0
	if ss != bs {
		t.Logf("seed %d n %d: outcomes diverge: seq %+v bat %+v", seed, n, ss, bs)
		return false
	}
	return bytes.Equal(encodeDetections(seqDets), encodeDetections(batDets))
}

func TestQuickBatchEquivalence(t *testing.T) {
	f := func(seed int64, nSel uint8) bool { return batchEquivalent(t, seed, nSel) }
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchEquivalenceRegression pins a quick.Check counterexample against
// the original over-strict property: on this execution the two paths discard
// a different provably-useless interval (Eliminated 22 vs 21), while the
// detection sequences — the actual contract — stay byte-identical.
func TestBatchEquivalenceRegression(t *testing.T) {
	if !batchEquivalent(t, -3252540898166769584, 0x55) {
		t.Fatal("batch and sequential ingestion diverged")
	}
}

// sync3 builds an interval for an N=3 system whose clocks are the same in
// every component — rounds built from these overlap across sources (Eq. 2
// holds pairwise) and succeed each other cleanly across rounds.
func sync3(origin, seq, lo, hi int) interval.Interval {
	return interval.New(origin, seq,
		vclock.Of(uint32(lo), uint32(lo), uint32(lo)), vclock.Of(uint32(hi), uint32(hi), uint32(hi)))
}

// TestRemoveChildDeepQueues: with sources 0 and 1 five rounds deep and
// source 2 silent, nothing can be detected — every solution needs a head
// from all three queues. Removing child 2 must re-run detection over the
// survivors and release all five blocked rounds at once, leaving the deep
// queues fully drained.
func TestRemoveChildDeepQueues(t *testing.T) {
	const rounds = 5
	nd := NewNode(9, Config{N: 3, Strict: true, KeepMembers: true}, false)
	for p := 0; p < 3; p++ {
		nd.AddChild(p)
	}
	for r := 0; r < rounds; r++ {
		for p := 0; p < 2; p++ {
			if dets := nd.OnInterval(p, sync3(p, r, 10*r+1, 10*r+5)); dets != nil {
				t.Fatalf("round %d source %d: detection before child removal: %v", r, p, dets)
			}
		}
	}
	if cur, high := nd.QueueSizes(); cur != 2*rounds || high != 2*rounds {
		t.Fatalf("pre-removal residency = %d (high %d), want %d (%d)", cur, high, 2*rounds, 2*rounds)
	}

	dets := nd.RemoveChild(2)
	if len(dets) != rounds {
		t.Fatalf("RemoveChild released %d detections, want %d", len(dets), rounds)
	}
	for r, d := range dets {
		if len(d.Set) != 2 {
			t.Fatalf("detection %d solution over %d sources, want 2", r, len(d.Set))
		}
		if !interval.OverlapAll(d.Set) {
			t.Fatalf("detection %d is not a valid solution", r)
		}
		if want := vclock.Of(uint32(10*r+1), uint32(10*r+1), uint32(10*r+1)); !d.Agg.Lo.Equal(want) {
			t.Fatalf("detection %d out of round order: agg lo %v, want %v", r, d.Agg.Lo, want)
		}
	}
	if cur, _ := nd.QueueSizes(); cur != 0 {
		t.Fatalf("post-removal residency = %d, want 0", cur)
	}
	if nd.HasSource(2) {
		t.Fatal("source 2 still registered after RemoveChild")
	}
}

// TestRemoveChildPartialDrain: the re-detection after removal consumes only
// complete rounds — a survivor with deeper queues keeps its tail.
func TestRemoveChildPartialDrain(t *testing.T) {
	nd := NewNode(9, Config{N: 3, Strict: true}, false)
	for p := 0; p < 3; p++ {
		nd.AddChild(p)
	}
	for r := 0; r < 6; r++ { // source 0: six rounds deep
		nd.OnInterval(0, sync3(0, r, 10*r+1, 10*r+5))
	}
	for r := 0; r < 2; r++ { // source 1: two rounds deep
		nd.OnInterval(1, sync3(1, r, 10*r+1, 10*r+5))
	}
	dets := nd.RemoveChild(2)
	if len(dets) != 2 {
		t.Fatalf("RemoveChild released %d detections, want 2 (the complete rounds)", len(dets))
	}
	if cur, _ := nd.QueueSizes(); cur != 4 {
		t.Fatalf("post-removal residency = %d, want 4 (source 0's tail)", cur)
	}
}

// TestResetSourceDeepQueue: an epoch restart discards the whole queued
// stream — counted as EpochDiscards, not eliminations — clears succession
// state so the restarted stream may begin anywhere, and the node keeps
// detecting across the reset.
func TestResetSourceDeepQueue(t *testing.T) {
	const depth = 7
	nd := NewNode(9, Config{N: 3, Strict: true}, false)
	for p := 0; p < 3; p++ {
		nd.AddChild(p)
	}
	for r := 0; r < depth; r++ {
		nd.OnInterval(2, sync3(2, r, 10*r+1, 10*r+5))
	}

	nd.ResetSource(2)
	if got := nd.Stats().EpochDiscards; got != depth {
		t.Fatalf("EpochDiscards = %d, want %d", got, depth)
	}
	if cur, _ := nd.QueueSizes(); cur != 0 {
		t.Fatalf("residency after reset = %d, want 0", cur)
	}
	if nd.Stats().Eliminated != 0 || nd.Stats().Pruned != 0 {
		t.Fatalf("reset leaked into elimination stats: %+v", nd.Stats())
	}

	// The restarted stream starts BELOW the discarded one's frontier —
	// legal only because ResetSource dropped the succession state.
	for p := 0; p < 3; p++ {
		src := p
		dets := func() []Detection {
			if src == 2 {
				return nd.OnIntervals(2, []interval.Interval{sync3(2, 0, 1, 5)})
			}
			return nd.OnInterval(src, sync3(src, 0, 1, 5))
		}()
		if p < 2 && dets != nil {
			t.Fatalf("premature detection at source %d", p)
		}
		if p == 2 && len(dets) != 1 {
			t.Fatalf("restarted stream: %d detections, want 1", len(dets))
		}
	}
}

// TestOnIntervalsUnknownSource: a whole batch from a removed child is
// dropped and counted, exactly like the per-interval path.
func TestOnIntervalsUnknownSource(t *testing.T) {
	nd := NewNode(0, Config{N: 2}, true)
	nd.AddChild(1)
	nd.RemoveChild(1)
	batch := []interval.Interval{sync3(1, 0, 1, 5), sync3(1, 1, 11, 15)}
	if dets := nd.OnIntervals(1, batch); dets != nil {
		t.Fatalf("stale batch triggered detections: %v", dets)
	}
	if got := nd.Stats().Dropped; got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	if dets := nd.OnIntervals(1, nil); dets != nil {
		t.Fatal("empty batch returned detections")
	}
}
