package core

import (
	"fmt"
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
)

// benchPulses pre-generates k pulses of mutually overlapping intervals for
// an n-process system (all sources of one detector node).
func benchPulses(n, k int) [][]interval.Interval {
	out := make([][]interval.Interval, k)
	for p := 0; p < k; p++ {
		base := uint32(p * 10)
		set := make([]interval.Interval, n)
		for i := 0; i < n; i++ {
			lo := make(vclock.VC, n)
			hi := make(vclock.VC, n)
			for c := 0; c < n; c++ {
				lo[c] = base + 1
				hi[c] = base + 5
			}
			lo[i] = base + 2
			hi[i] = base + 6
			set[i] = interval.New(i, p, lo, hi)
		}
		out[p] = set
	}
	return out
}

// BenchmarkNodeDetection measures Algorithm 1's per-interval cost at one
// node with d children plus a local queue, under a workload where every
// pulse produces a detection — the worst case for lines 18–33.
func BenchmarkNodeDetection(b *testing.B) {
	for _, d := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			n := d + 1
			pulses := benchPulses(n, 64)
			b.ReportAllocs()
			b.ResetTimer()
			dets := 0
			for i := 0; i < b.N; i++ {
				nd := NewNode(0, Config{N: n}, true)
				for c := 1; c <= d; c++ {
					nd.AddChild(c)
				}
				for _, pulse := range pulses {
					for _, iv := range pulse {
						dets += len(nd.OnInterval(iv.Origin, iv))
					}
				}
			}
			if dets == 0 {
				b.Fatal("benchmark produced no detections")
			}
		})
	}
}

// BenchmarkNodeElimination measures the elimination loop on a workload of
// isolated intervals where nothing ever matches (pure head-pruning traffic).
func BenchmarkNodeElimination(b *testing.B) {
	const n = 5
	// Sequential, non-overlapping intervals from every source.
	streams := make([][]interval.Interval, n)
	for src := 0; src < n; src++ {
		for k := 0; k < 64; k++ {
			lo := make(vclock.VC, n)
			hi := make(vclock.VC, n)
			t := uint32(k*n+src) * 4
			for c := 0; c < n; c++ {
				lo[c] = t + 1
				hi[c] = t + 2
			}
			streams[src] = append(streams[src], interval.New(src, k, lo, hi))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nd := NewNode(0, Config{N: n}, true)
		for c := 1; c < n; c++ {
			nd.AddChild(c)
		}
		for k := 0; k < 64; k++ {
			for src := 0; src < n; src++ {
				nd.OnInterval(src, streams[src][k])
			}
		}
	}
}
