package core

import (
	"fmt"
	"sort"
	"time"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
)

// This file implements the parallel detection engine: the same Algorithm 1
// loop as detect/eliminate/prune, restructured so the O(n)-per-comparison
// work — the only part that grows with system size — partitions across a
// bounded worker Pool, and so the aggregates it publishes live in a flat
// struct-of-arrays vclock.Store instead of per-detection clones.
//
// Equivalence with the sequential engine is structural, not approximate, and
// the sequential path is kept verbatim as the property-test oracle (Config
// {Parallel: false}):
//
//   - Each elimination round first snapshots the round's head-to-head pairs
//     in the sequential iteration order, then evaluates the pair verdicts —
//     inline, or fanned out when the round carries enough components — and
//     finally applies the verdicts serially in that same pair order. Within a
//     round no queue mutates (deletions happen after the pair sweep, exactly
//     like the sequential loop), so the verdicts are a pure function of the
//     heads and the parallel engine deletes exactly the heads the sequential
//     engine deletes, in the same order, producing byte-identical detections
//     and identical Stats.
//
//   - Queues stay single-writer: workers read only the pair snapshots (bounds
//     are immutable once published), and an epoch guard — Queue.Gen sampled
//     around every fanned-out round — turns any concurrent mutation into an
//     immediate panic rather than a race. Producers are never blocked by a
//     cascade: in the live runtime they enqueue into mailboxes, and the
//     detector drains them only between detect calls.

// Pair resolution states: evaluated by a comparison (the only state workers
// touch), answered from the cross-round memo at snapshot time, or resolved by
// swapping the verdict of its mirror pair within the round.
const (
	pairEval uint8 = iota
	pairMemo
	pairMirror
)

// cmpTask snapshots one head-to-head pair of an elimination round: the source
// ids and positions, the four bound clocks plus their digests (so workers
// never touch queues or maps), the head generations that key the memo store,
// and the pair's resolution state.
type cmpTask struct {
	a, b               int
	ia, ib             int // positions in nd.srcs (memo indices)
	xLo, xHi, yLo, yHi vclock.VC
	dxLo, dxHi         uint64 // digests of xLo/xHi
	dyLo, dyHi         uint64
	genX, genY         uint64 // head generations at snapshot
	xBeforeY, yBeforeX bool   // memo-resolved verdict (state == pairMemo)
	state              uint8
	filtered           uint8 // digest-refuted directions (state == pairEval)
	mirror             int32 // index of the pair this one mirrors
}

// cmpVerdict holds the two fused Less results for one pair.
type cmpVerdict struct {
	xBeforeY, yBeforeX bool
}

// defaultFanoutThreshold seeds the fanout decision: the minimum number of
// clock components a comparison round must carry before it is worth shipping
// to the pool; below it, fanout overhead (job publication, wakeups, the
// completion barrier) exceeds the comparison work itself. With the default
// adaptive policy (engine_policy.go) this is only the starting point — the
// measured inline-vs-fanned round costs walk the threshold from here. A
// positive Config.FanoutThreshold pins it statically.
const defaultFanoutThreshold = 32768

func (nd *Node) fanoutThreshold() int {
	if nd.cfg.FanoutThreshold > 0 {
		return nd.cfg.FanoutThreshold
	}
	return nd.policy.cut()
}

// detectPar is detect for the parallel engine: the identical outer loop, with
// eliminate/solution/prune swapped for their partitioned forms and the
// aggregate materialized flat (interval.AggregateFlat) instead of scratch
// aggregation plus a compact clone.
func (nd *Node) detectPar(trigger []int) []Detection {
	var dets []Detection
	updated := append(nd.scratchA[:0], trigger...)
	for {
		nd.eliminatePar(updated)
		sol, ok := nd.solutionPar()
		if !ok {
			nd.scratchA = updated[:0]
			return dets
		}
		agg := interval.AggregateFlat(nd.store, sol, nd.id, nd.aggSeq, nd.cfg.KeepMembers)
		nd.aggSeq++
		nd.stats.Detections++
		dets = append(dets, Detection{Node: nd.id, Set: sol, Agg: agg})
		updated = nd.prunePar(updated[:0])
	}
}

// eliminatePar is eliminate with each round split into snapshot → verdicts →
// serial application. The snapshot walks (cur × srcs) in the sequential
// order, resolving pairs from the cross-round memo (both head generations
// unchanged) or from their mirror within the round; only the rest are
// evaluated — digest-guarded, inline or fanned out — and application replays
// the sequential addUnique/DeleteHead sequence from the verdicts, tallying
// the enumerated comparisons exactly as the oracle does.
func (nd *Node) eliminatePar(trigger []int) {
	cur := append(nd.scratchElimA[:0], trigger...)
	next := nd.scratchElimB[:0]
	s := len(nd.srcs)
	mirror := nd.mirrorScratch
	for len(cur) > 0 {
		next = next[:0]
		pairs := nd.pairScratch[:0]
		eval := 0
		for _, a := range cur {
			qa, ok := nd.queues[a]
			if !ok || qa.Empty() {
				continue
			}
			x := qa.HeadRef()
			gx := qa.HeadGen()
			ia := nd.srcPos[a]
			for ib, b := range nd.srcs {
				if b == a {
					continue
				}
				qb := nd.queues[b]
				if qb.Empty() {
					continue
				}
				y := qb.HeadRef()
				t := cmpTask{a: a, b: b, ia: ia, ib: ib,
					xLo: x.Lo, xHi: x.Hi, yLo: y.Lo, yHi: y.Hi,
					genX: gx, genY: qb.HeadGen()}
				if m := &nd.elimMemoT[ia*s+ib]; m.valid && m.genA == t.genX && m.genB == t.genY {
					t.state = pairMemo
					t.xBeforeY, t.yBeforeX = m.xBeforeY, m.yBeforeX
				} else if j := mirror[ib*s+ia]; j >= 0 {
					t.state = pairMirror
					t.mirror = j
				} else {
					// Digests are consulted only from a head's second
					// evaluation on: a head evaluated once costs two O(n)
					// sums to guard a single comparison, which is more than
					// the guard can save, while memo and mirror resolution
					// already make repeat evaluations of an unchanged *pair*
					// free. A side whose head is seen for the first time
					// carries the conservative sentinel sums (Lo 0, Hi max),
					// under which neither direction can refute, so the
					// comparison kernel and its verdicts are untouched.
					t.dxLo, t.dxHi = digestNone.Lo, digestNone.Hi
					t.dyLo, t.dyHi = digestNone.Lo, digestNone.Hi
					if nd.digestSeen[ia] == gx+1 {
						dx := qa.HeadDigests()
						t.dxLo, t.dxHi = dx.Lo, dx.Hi
					} else {
						nd.digestSeen[ia] = gx + 1
					}
					if gy := t.genY; nd.digestSeen[ib] == gy+1 {
						dy := qb.HeadDigests()
						t.dyLo, t.dyHi = dy.Lo, dy.Hi
					} else {
						nd.digestSeen[ib] = gy + 1
					}
					mirror[ia*s+ib] = int32(len(pairs))
					eval++
				}
				pairs = append(pairs, t)
			}
		}
		if cap(nd.verdictScratch) < len(pairs) {
			nd.verdictScratch = make([]cmpVerdict, len(pairs))
		}
		verdicts := nd.verdictScratch[:len(pairs)]
		for i := range pairs {
			if pairs[i].state == pairMemo {
				verdicts[i] = cmpVerdict{pairs[i].xBeforeY, pairs[i].yBeforeX}
			}
		}
		nd.compareAll(pairs, verdicts, eval)
		for i := range pairs {
			if pairs[i].state == pairMirror {
				v := verdicts[pairs[i].mirror]
				verdicts[i] = cmpVerdict{v.yBeforeX, v.xBeforeY}
			}
		}
		for i := range pairs {
			p := &pairs[i]
			nd.stats.VecComparisons += 2
			if p.state == pairEval {
				nd.stats.FilteredComparisons += int(p.filtered)
			} else {
				nd.stats.MemoHits += 2
			}
			v := verdicts[i]
			nd.elimMemoT[p.ia*s+p.ib] = elimMemo{genA: p.genX, genB: p.genY,
				xBeforeY: v.xBeforeY, yBeforeX: v.yBeforeX, valid: true}
			nd.elimMemoT[p.ib*s+p.ia] = elimMemo{genA: p.genY, genB: p.genX,
				xBeforeY: v.yBeforeX, yBeforeX: v.xBeforeY, valid: true}
			mirror[p.ia*s+p.ib] = -1 // restore the at-rest scratch state
			if !v.xBeforeY {
				next = addUnique(next, p.b)
			}
			if !v.yBeforeX {
				next = addUnique(next, p.a)
			}
		}
		nd.pairScratch = pairs[:0]
		for _, c := range next {
			if q := nd.queues[c]; !q.Empty() {
				q.DeleteHead()
				nd.noteRemovals(1)
				nd.stats.Eliminated++
			}
		}
		cur, next = next, cur
	}
	nd.scratchElimA, nd.scratchElimB = cur[:0], next[:0]
}

// compareAll fills verdicts[i] with the digest-guarded fused CompareLess of
// every still-unresolved pair (state == pairEval; eval counts them), fanning
// the round out to the pool when the lane decision says so and running it
// inline otherwise. With a static Config.FanoutThreshold the decision is the
// historical size cut; by default the adaptive policy decides and measured
// rounds feed their cost back. Fanned-out rounds are epoch-guarded: every
// queue's generation is sampled before and after, and a moved generation — a
// producer mutating a queue mid-round — panics.
func (nd *Node) compareAll(pairs []cmpTask, verdicts []cmpVerdict, eval int) {
	comps := eval * nd.cfg.N
	fan, measure := false, false
	switch {
	case nd.cfg.Pool == nil || eval < 2:
	case nd.cfg.FanoutThreshold > 0:
		fan = comps >= nd.cfg.FanoutThreshold
	default:
		fan, measure = nd.policy.decide(comps)
	}
	var t0 time.Time
	if measure {
		t0 = time.Now()
	}
	if !fan {
		if eval > 0 {
			nd.cfg.Pool.noteInline()
		}
		for i := range pairs {
			p := &pairs[i]
			if p.state != pairEval {
				continue
			}
			var f int
			verdicts[i].xBeforeY, verdicts[i].yBeforeX, f = vclock.CompareLessDigest(
				p.xLo, p.yHi, p.yLo, p.xHi, p.dxLo, p.dyHi, p.dyLo, p.dxHi)
			p.filtered = uint8(f)
		}
	} else {
		gens := nd.genScratch[:0]
		for _, s := range nd.srcs {
			gens = append(gens, nd.queues[s].Gen())
		}
		nd.cfg.Pool.Run(len(pairs), func(i int) {
			p := &pairs[i]
			if p.state != pairEval {
				return
			}
			var f int
			verdicts[i].xBeforeY, verdicts[i].yBeforeX, f = vclock.CompareLessDigest(
				p.xLo, p.yHi, p.yLo, p.xHi, p.dxLo, p.dyHi, p.dyLo, p.dxHi)
			p.filtered = uint8(f)
		})
		for i, s := range nd.srcs {
			if nd.queues[s].Gen() != gens[i] {
				panic(fmt.Sprintf("core: node %d: queue %d mutated during a parallel comparison round (single-writer contract violated)", nd.id, s))
			}
		}
		nd.genScratch = gens[:0]
	}
	if measure {
		nd.policy.observe(fan, comps, time.Since(t0))
	}
}

// solutionPar is solution with the set carved from a slab instead of a fresh
// allocation: solution sets escape into Detections, and at production rates
// one make per detection was measurable. A slab chunk is retained only as
// long as some detection carved from it.
func (nd *Node) solutionPar() ([]interval.Interval, bool) {
	if len(nd.srcs) == 0 {
		return nil, false
	}
	for _, s := range nd.srcs {
		if nd.queues[s].Empty() {
			return nil, false
		}
	}
	need := len(nd.srcs)
	if len(nd.solSlab)+need > cap(nd.solSlab) {
		// Slab chunks double from a few sets up to solSlabChunk: most nodes
		// publish few detections, so a fixed large chunk would strand memory
		// per node at scale.
		c := 2 * cap(nd.solSlab)
		if c < 2*need {
			c = 2 * need
		}
		if c > solSlabChunk && c > need {
			c = solSlabChunk
			if c < need {
				c = need
			}
		}
		nd.solSlab = make([]interval.Interval, 0, c)
	}
	base := len(nd.solSlab)
	nd.solSlab = nd.solSlab[:base+need]
	sol := nd.solSlab[base : base+need : base+need]
	for i, s := range nd.srcs {
		sol[i] = *nd.queues[s].HeadRef()
	}
	if nd.cfg.Strict && !interval.OverlapAll(sol) {
		panic(fmt.Sprintf("core: node %d: solution set fails pairwise overlap", nd.id))
	}
	return sol, true
}

// solSlabChunk sizes the solution-set slab (in intervals). Sets are d+1
// intervals, so one chunk serves tens of detections at typical fanouts.
const solSlabChunk = 256

// prunePar is prune with the per-head keep decisions evaluated concurrently.
// Each head's decision reads only queue heads (and Eq. 9 successor peeks) and
// writes its own verdict slot; comparisons — logical, digest-filtered and
// memo-served — are tallied per head and summed in source order, so Stats
// match the sequential engine exactly. Small source sets fall through to
// pruneParSeq, the memoized single-goroutine body — never to the sequential
// oracle's prune, which stays verbatim.
func (nd *Node) prunePar(removable []int) []int {
	srcs := nd.srcs
	if nd.cfg.Pool == nil || len(srcs) < 4 || len(srcs)*(len(srcs)-1)*nd.cfg.N < nd.fanoutThreshold() {
		return nd.pruneParSeq(removable)
	}
	if cap(nd.keepScratch) < len(srcs) {
		nd.keepScratch = make([]pruneVerdict, len(srcs))
	}
	keeps := nd.keepScratch[:len(srcs)]
	gens := nd.genScratch[:0]
	for _, s := range srcs {
		q := nd.queues[s]
		gens = append(gens, q.Gen())
		// Digest caches fill lazily on consult, which is a write; prefill
		// every digest the fanned-out workers can touch here on the owner
		// goroutine so the workers are pure readers.
		q.HeadDigests()
		if nd.cfg.ExactPrune && q.Len() > 1 {
			q.DigestsAt(1)
		}
	}
	nd.cfg.Pool.Run(len(srcs), func(i int) {
		keeps[i] = nd.pruneKeep(srcs[i])
	})
	for i, s := range srcs {
		if nd.queues[s].Gen() != gens[i] {
			panic(fmt.Sprintf("core: node %d: queue %d mutated during a parallel pruning round (single-writer contract violated)", nd.id, s))
		}
	}
	nd.genScratch = gens[:0]
	for i, a := range srcs {
		nd.stats.VecComparisons += keeps[i].comparisons
		nd.stats.FilteredComparisons += keeps[i].filtered
		nd.stats.MemoHits += keeps[i].memoHits
		if !keeps[i].keep {
			removable = append(removable, a)
		}
	}
	if len(removable) == 0 {
		panic(fmt.Sprintf("core: node %d: pruning found no removable interval (Theorem 4 violated)", nd.id))
	}
	for _, a := range removable {
		nd.queues[a].DeleteHead()
		nd.noteRemovals(1)
		nd.stats.Pruned++
	}
	sort.Ints(removable)
	return removable
}

// pruneVerdict is one head's pruning decision plus the comparison accounting
// it accrued, so the serial tally reproduces the sequential VecComparisons
// count and the comparison-pruning breakdown.
type pruneVerdict struct {
	keep        bool
	comparisons int
	filtered    int
	memoHits    int
}

// pruneKeep evaluates Eq. 10 (and, under ExactPrune, Eq. 9) for source a's
// head — the loop body of the sequential prune, reading queues but mutating
// nothing except its own memo column: entry (b, a) is touched only by the
// worker evaluating a, so concurrent evaluations stay independent.
func (nd *Node) pruneKeep(a int) pruneVerdict {
	var v pruneVerdict
	s := len(nd.srcs)
	qa := nd.queues[a]
	xa := qa.HeadRef()
	da := qa.HeadDigests()
	ga := qa.HeadGen()
	ia := nd.srcPos[a]
	for ib, b := range nd.srcs {
		if b == a {
			continue
		}
		qb := nd.queues[b]
		v.comparisons++
		var less bool
		gb := qb.HeadGen()
		if m := &nd.pruneMemoT[ib*s+ia]; m.valid && m.genB == gb && m.genA == ga {
			less = m.less
			v.memoHits++
		} else {
			db := qb.HeadDigests()
			var filtered bool
			less, filtered = qb.HeadRef().Hi.LessDigest(xa.Hi, db.Hi, da.Hi)
			if filtered {
				v.filtered++
			}
			*m = pruneMemo{genB: gb, genA: ga, less: less, valid: true}
		}
		if !less {
			continue
		}
		if nd.cfg.ExactPrune && qb.Len() > 1 {
			v.comparisons++
			sl, sf := qb.At(1).Lo.LessDigest(xa.Hi, qb.DigestsAt(1).Lo, da.Hi)
			if sf {
				v.filtered++
			}
			if !sl {
				continue
			}
		}
		v.keep = true
		return v
	}
	return v
}
