package core

import (
	"fmt"
	"sort"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
)

// This file implements the parallel detection engine: the same Algorithm 1
// loop as detect/eliminate/prune, restructured so the O(n)-per-comparison
// work — the only part that grows with system size — partitions across a
// bounded worker Pool, and so the aggregates it publishes live in a flat
// struct-of-arrays vclock.Store instead of per-detection clones.
//
// Equivalence with the sequential engine is structural, not approximate, and
// the sequential path is kept verbatim as the property-test oracle (Config
// {Parallel: false}):
//
//   - Each elimination round first snapshots the round's head-to-head pairs
//     in the sequential iteration order, then evaluates the pair verdicts —
//     inline, or fanned out when the round carries enough components — and
//     finally applies the verdicts serially in that same pair order. Within a
//     round no queue mutates (deletions happen after the pair sweep, exactly
//     like the sequential loop), so the verdicts are a pure function of the
//     heads and the parallel engine deletes exactly the heads the sequential
//     engine deletes, in the same order, producing byte-identical detections
//     and identical Stats.
//
//   - Queues stay single-writer: workers read only the pair snapshots (bounds
//     are immutable once published), and an epoch guard — Queue.Gen sampled
//     around every fanned-out round — turns any concurrent mutation into an
//     immediate panic rather than a race. Producers are never blocked by a
//     cascade: in the live runtime they enqueue into mailboxes, and the
//     detector drains them only between detect calls.

// cmpTask snapshots one head-to-head pair of an elimination round: the source
// ids (for verdict application) and the four bound clocks (so workers never
// touch queues or maps).
type cmpTask struct {
	a, b               int
	xLo, xHi, yLo, yHi vclock.VC
}

// cmpVerdict holds the two fused Less results for one pair.
type cmpVerdict struct {
	xBeforeY, yBeforeX bool
}

// defaultFanoutThreshold is the minimum number of clock components a
// comparison round must carry before it is worth shipping to the pool; below
// it, fanout overhead (job publication, wakeups, the completion barrier)
// exceeds the comparison work itself. pairs×n components at 8 bytes each
// puts the default at ~256 KiB of scanned bounds per round.
const defaultFanoutThreshold = 32768

func (nd *Node) fanoutThreshold() int {
	if nd.cfg.FanoutThreshold > 0 {
		return nd.cfg.FanoutThreshold
	}
	return defaultFanoutThreshold
}

// detectPar is detect for the parallel engine: the identical outer loop, with
// eliminate/solution/prune swapped for their partitioned forms and the
// aggregate materialized flat (interval.AggregateFlat) instead of scratch
// aggregation plus a compact clone.
func (nd *Node) detectPar(trigger []int) []Detection {
	var dets []Detection
	updated := append(nd.scratchA[:0], trigger...)
	for {
		nd.eliminatePar(updated)
		sol, ok := nd.solutionPar()
		if !ok {
			nd.scratchA = updated[:0]
			return dets
		}
		agg := interval.AggregateFlat(nd.store, sol, nd.id, nd.aggSeq, nd.cfg.KeepMembers)
		nd.aggSeq++
		nd.stats.Detections++
		dets = append(dets, Detection{Node: nd.id, Set: sol, Agg: agg})
		updated = nd.prunePar(updated[:0])
	}
}

// eliminatePar is eliminate with each round split into snapshot → verdicts →
// serial application. The snapshot walks (cur × srcs) in the sequential
// order; verdict evaluation is embarrassingly parallel; application replays
// the sequential addUnique/DeleteHead sequence from the verdicts.
func (nd *Node) eliminatePar(trigger []int) {
	cur := append(nd.scratchElimA[:0], trigger...)
	next := nd.scratchElimB[:0]
	for len(cur) > 0 {
		next = next[:0]
		pairs := nd.pairScratch[:0]
		for _, a := range cur {
			qa, ok := nd.queues[a]
			if !ok || qa.Empty() {
				continue
			}
			x := qa.HeadRef()
			for _, b := range nd.srcs {
				if b == a {
					continue
				}
				qb := nd.queues[b]
				if qb.Empty() {
					continue
				}
				y := qb.HeadRef()
				pairs = append(pairs, cmpTask{a: a, b: b, xLo: x.Lo, xHi: x.Hi, yLo: y.Lo, yHi: y.Hi})
			}
		}
		if cap(nd.verdictScratch) < len(pairs) {
			nd.verdictScratch = make([]cmpVerdict, len(pairs))
		}
		verdicts := nd.verdictScratch[:len(pairs)]
		nd.compareAll(pairs, verdicts)
		for i := range pairs {
			nd.stats.VecComparisons += 2
			if !verdicts[i].xBeforeY {
				next = addUnique(next, pairs[i].b)
			}
			if !verdicts[i].yBeforeX {
				next = addUnique(next, pairs[i].a)
			}
		}
		nd.pairScratch = pairs[:0]
		for _, c := range next {
			if q := nd.queues[c]; !q.Empty() {
				q.DeleteHead()
				nd.noteRemovals(1)
				nd.stats.Eliminated++
			}
		}
		cur, next = next, cur
	}
	nd.scratchElimA, nd.scratchElimB = cur[:0], next[:0]
}

// compareAll fills verdicts[i] with the fused CompareLess of pairs[i],
// fanning the round out to the pool when it carries enough components and
// running it inline otherwise. Fanned-out rounds are epoch-guarded: every
// queue's generation is sampled before and after, and a moved generation —
// a producer mutating a queue mid-round — panics.
func (nd *Node) compareAll(pairs []cmpTask, verdicts []cmpVerdict) {
	if nd.cfg.Pool == nil || len(pairs) < 2 || len(pairs)*nd.cfg.N < nd.fanoutThreshold() {
		if len(pairs) > 0 {
			nd.cfg.Pool.noteInline()
		}
		for i := range pairs {
			p := &pairs[i]
			verdicts[i].xBeforeY, verdicts[i].yBeforeX = vclock.CompareLess(p.xLo, p.yHi, p.yLo, p.xHi)
		}
		return
	}
	gens := nd.genScratch[:0]
	for _, s := range nd.srcs {
		gens = append(gens, nd.queues[s].Gen())
	}
	nd.cfg.Pool.Run(len(pairs), func(i int) {
		p := &pairs[i]
		verdicts[i].xBeforeY, verdicts[i].yBeforeX = vclock.CompareLess(p.xLo, p.yHi, p.yLo, p.xHi)
	})
	for i, s := range nd.srcs {
		if nd.queues[s].Gen() != gens[i] {
			panic(fmt.Sprintf("core: node %d: queue %d mutated during a parallel comparison round (single-writer contract violated)", nd.id, s))
		}
	}
	nd.genScratch = gens[:0]
}

// solutionPar is solution with the set carved from a slab instead of a fresh
// allocation: solution sets escape into Detections, and at production rates
// one make per detection was measurable. A slab chunk is retained only as
// long as some detection carved from it.
func (nd *Node) solutionPar() ([]interval.Interval, bool) {
	if len(nd.srcs) == 0 {
		return nil, false
	}
	for _, s := range nd.srcs {
		if nd.queues[s].Empty() {
			return nil, false
		}
	}
	need := len(nd.srcs)
	if len(nd.solSlab)+need > cap(nd.solSlab) {
		// Slab chunks double from a few sets up to solSlabChunk: most nodes
		// publish few detections, so a fixed large chunk would strand memory
		// per node at scale.
		c := 2 * cap(nd.solSlab)
		if c < 2*need {
			c = 2 * need
		}
		if c > solSlabChunk && c > need {
			c = solSlabChunk
			if c < need {
				c = need
			}
		}
		nd.solSlab = make([]interval.Interval, 0, c)
	}
	base := len(nd.solSlab)
	nd.solSlab = nd.solSlab[:base+need]
	sol := nd.solSlab[base : base+need : base+need]
	for i, s := range nd.srcs {
		sol[i] = *nd.queues[s].HeadRef()
	}
	if nd.cfg.Strict && !interval.OverlapAll(sol) {
		panic(fmt.Sprintf("core: node %d: solution set fails pairwise overlap", nd.id))
	}
	return sol, true
}

// solSlabChunk sizes the solution-set slab (in intervals). Sets are d+1
// intervals, so one chunk serves tens of detections at typical fanouts.
const solSlabChunk = 256

// prunePar is prune with the per-head keep decisions evaluated concurrently.
// Each head's decision reads only queue heads (and Eq. 9 successor peeks) and
// writes its own verdict slot; comparisons are tallied per head and summed in
// source order, so Stats match the sequential engine exactly. Small source
// sets fall through to the sequential prune — the verdicts are identical,
// fanout just isn't worth it below the threshold.
func (nd *Node) prunePar(removable []int) []int {
	srcs := nd.srcs
	if nd.cfg.Pool == nil || len(srcs) < 4 || len(srcs)*(len(srcs)-1)*nd.cfg.N < nd.fanoutThreshold() {
		return nd.prune(removable)
	}
	if cap(nd.keepScratch) < len(srcs) {
		nd.keepScratch = make([]pruneVerdict, len(srcs))
	}
	keeps := nd.keepScratch[:len(srcs)]
	gens := nd.genScratch[:0]
	for _, s := range srcs {
		gens = append(gens, nd.queues[s].Gen())
	}
	nd.cfg.Pool.Run(len(srcs), func(i int) {
		keeps[i] = nd.pruneKeep(srcs[i])
	})
	for i, s := range srcs {
		if nd.queues[s].Gen() != gens[i] {
			panic(fmt.Sprintf("core: node %d: queue %d mutated during a parallel pruning round (single-writer contract violated)", nd.id, s))
		}
	}
	nd.genScratch = gens[:0]
	for i, a := range srcs {
		nd.stats.VecComparisons += keeps[i].comparisons
		if !keeps[i].keep {
			removable = append(removable, a)
		}
	}
	if len(removable) == 0 {
		panic(fmt.Sprintf("core: node %d: pruning found no removable interval (Theorem 4 violated)", nd.id))
	}
	for _, a := range removable {
		nd.queues[a].DeleteHead()
		nd.noteRemovals(1)
		nd.stats.Pruned++
	}
	sort.Ints(removable)
	return removable
}

// pruneVerdict is one head's pruning decision plus the comparisons it cost,
// so the serial tally reproduces the sequential VecComparisons count.
type pruneVerdict struct {
	keep        bool
	comparisons int
}

// pruneKeep evaluates Eq. 10 (and, under ExactPrune, Eq. 9) for source a's
// head — the loop body of the sequential prune, reading queues but mutating
// nothing, so concurrent evaluations are independent.
func (nd *Node) pruneKeep(a int) pruneVerdict {
	var v pruneVerdict
	xa := nd.queues[a].HeadRef()
	for _, b := range nd.srcs {
		if b == a {
			continue
		}
		qb := nd.queues[b]
		xb := qb.HeadRef()
		v.comparisons++
		if !xb.Hi.Less(xa.Hi) {
			continue
		}
		if nd.cfg.ExactPrune && qb.Len() > 1 {
			v.comparisons++
			if !qb.At(1).Lo.Less(xa.Hi) {
				continue
			}
		}
		v.keep = true
		return v
	}
	return v
}
