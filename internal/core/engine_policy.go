package core

import "time"

// The adaptive fanout policy. The old static defaultFanoutThreshold encoded
// one machine's break-even point for shipping a comparison round to the pool;
// on hardware where helpers are scarce (a single-core box, an oversubscribed
// container) or memory bandwidth differs, a fixed threshold either fans out
// rounds that were cheaper inline or strands cores on rounds that weren't.
// The policy instead measures what the rounds actually cost on the running
// machine — nanoseconds per scanned component, one EWMA per lane — and walks
// the threshold toward whichever lane is cheaper, probing the out-of-favor
// lane periodically so a stale verdict cannot lock in. Rounds below a
// measurement floor always run inline and unmeasured: their wall time is
// dominated by the clock reads themselves.
//
// The policy only chooses *where* identical work runs; verdicts, Stats and
// detections are unaffected, so oracle parity is independent of its state. A
// positive Config.FanoutThreshold bypasses the policy entirely (static
// semantics, used by tests to force fanout at toy sizes).

const (
	// policyMeasureFloor is the round size (components) below which rounds
	// run inline unmeasured: ~4k components is roughly a microsecond of
	// comparison work, the scale where two time.Now calls stop distorting
	// what they measure.
	policyMeasureFloor = 1 << 12

	// policyMinThreshold / policyMaxThreshold clamp the walk: the threshold
	// can never drop below the measurement floor (unmeasurable rounds stay
	// inline) nor grow so large that fanout is effectively disabled forever
	// (the probe cadence still revisits it).
	policyMinThreshold = policyMeasureFloor
	policyMaxThreshold = 1 << 24

	// policyProbeEvery forces every k-th measured round onto the lane the
	// current threshold would not pick, keeping both EWMAs alive.
	policyProbeEvery = 64

	// policyAlpha is the EWMA smoothing factor; ~0.1 averages over the last
	// couple dozen measured rounds, long enough to ride out scheduler noise.
	policyAlpha = 0.1

	// policyMargin is the relative cost advantage a lane must show before
	// the threshold moves — hysteresis against oscillation on noisy boxes.
	policyMargin = 0.9
)

// fanoutPolicy carries one node's adaptive threshold state. The zero value
// is ready to use (threshold lazily seeded from defaultFanoutThreshold).
type fanoutPolicy struct {
	threshold           int
	inlineNs, fanNs     float64 // EWMA ns per component, per lane
	haveInline, haveFan bool
	measured            int
}

// cut returns the current components threshold.
func (p *fanoutPolicy) cut() int {
	if p.threshold == 0 {
		p.threshold = defaultFanoutThreshold
	}
	return p.threshold
}

// decide picks the lane for a round of the given size and whether the round
// should be timed. Probe rounds deliberately take the out-of-favor lane.
func (p *fanoutPolicy) decide(comps int) (fan, measure bool) {
	fan = comps >= p.cut()
	if comps < policyMeasureFloor {
		return fan, false
	}
	p.measured++
	if p.measured%policyProbeEvery == 0 {
		fan = !fan
	}
	return fan, true
}

// observe feeds one measured round back and walks the threshold toward the
// cheaper lane once both lanes have evidence.
func (p *fanoutPolicy) observe(fan bool, comps int, dt time.Duration) {
	ns := float64(dt.Nanoseconds()) / float64(comps)
	if fan {
		if !p.haveFan {
			p.fanNs, p.haveFan = ns, true
		} else {
			p.fanNs += policyAlpha * (ns - p.fanNs)
		}
	} else {
		if !p.haveInline {
			p.inlineNs, p.haveInline = ns, true
		} else {
			p.inlineNs += policyAlpha * (ns - p.inlineNs)
		}
	}
	if !p.haveFan || !p.haveInline {
		return
	}
	switch {
	case p.fanNs < p.inlineNs*policyMargin:
		p.threshold = max(policyMinThreshold, p.threshold*3/4)
	case p.inlineNs < p.fanNs*policyMargin:
		p.threshold = min(policyMaxThreshold, p.threshold*5/4)
	}
}
