package core

import (
	"fmt"
	"sort"

	"hierdet/internal/interval"
)

// Cross-round verdict memoization for the parallel engine. A head-to-head
// verdict — elimination's fused CompareLess of two queue heads, or pruning's
// Eq. 10 Less of two head upper bounds — is a pure function of the two head
// intervals. Queue.HeadGen advances exactly when a queue's head changes, so
// the pair (headGen_a, headGen_b) identifies the operands: a detect cascade,
// an OnIntervals batch, or a post-prune re-eliminate that enumerates a pair
// whose two heads are unchanged answers it from the memo in O(1) instead of
// re-scanning two O(n) clocks.
//
// Tables are dense, indexed by source *position* in nd.srcs (position_a ×
// len(srcs) + position_b), and rebuilt — fully invalidated — whenever the
// source set changes (AddChild, RemoveChild), which also covers the head
// generation restarting at zero in a recreated queue. The sequential oracle
// never touches any of this: memoization lives strictly on the parallel
// engine's side of the detect split, keeping the oracle verbatim.

// digestNone is the sentinel digest pair for a head that is not worth
// summing yet (first evaluation): a zero Lo sum never certifies
// sum(lo) ≥ sum(hi') and a maximal Hi sum is never reached by a real Lo sum
// (component sums are bounded by 2^52), so under the sentinel neither
// direction of the digest guard can refute and the comparison kernel runs
// exactly as if unguarded.
var digestNone = interval.SlotDigest{Lo: 0, Hi: ^uint64(0)}

// elimMemo caches one elimination pair verdict: the two fused Less results
// for (head_a, head_b) at the recorded head generations.
type elimMemo struct {
	genA, genB         uint64
	xBeforeY, yBeforeX bool
	valid              bool
}

// pruneMemo caches one pruning-rule comparison: whether head_b.Hi <
// head_a.Hi (Eq. 10) at the recorded head generations. Eq. 9's successor
// peek is deliberately not memoized — it reads At(1), which a tail enqueue
// changes without moving HeadGen.
type pruneMemo struct {
	genB, genA uint64
	less       bool
	valid      bool
}

// rebuildMemo resizes and invalidates the memo tables and the position index
// after a source-set change. A no-op under the sequential oracle.
func (nd *Node) rebuildMemo() {
	if !nd.cfg.Parallel {
		return
	}
	s := len(nd.srcs)
	if nd.srcPos == nil {
		nd.srcPos = make(map[int]int, s)
	}
	clear(nd.srcPos)
	for i, src := range nd.srcs {
		nd.srcPos[src] = i
	}
	need := s * s
	if cap(nd.elimMemoT) < need {
		nd.elimMemoT = make([]elimMemo, need)
		nd.pruneMemoT = make([]pruneMemo, need)
		nd.mirrorScratch = make([]int32, need)
	} else {
		nd.elimMemoT = nd.elimMemoT[:need]
		nd.pruneMemoT = nd.pruneMemoT[:need]
		nd.mirrorScratch = nd.mirrorScratch[:need]
		clear(nd.elimMemoT)
		clear(nd.pruneMemoT)
	}
	if cap(nd.digestSeen) < s {
		nd.digestSeen = make([]uint64, s)
	} else {
		nd.digestSeen = nd.digestSeen[:s]
		clear(nd.digestSeen)
	}
	// The mirror scratch is "empty at rest": rounds restore their touched
	// entries to -1, so only a rebuild pays the full wipe.
	for i := range nd.mirrorScratch {
		nd.mirrorScratch[i] = -1
	}
}

// pruneParSeq is the parallel engine's memoized, digest-guarded prune body:
// the exact enumeration, early-break and VecComparisons accounting of the
// sequential prune (node.go), with each Eq. 10 Less answered from the memo
// when both head generations match and digest-guarded otherwise. It replaces
// the oracle prune as prunePar's below-threshold path, so the oracle itself
// stays verbatim.
func (nd *Node) pruneParSeq(removable []int) []int {
	s := len(nd.srcs)
	for ia, a := range nd.srcs {
		qa := nd.queues[a]
		xa := qa.HeadRef()
		ga := qa.HeadGen()
		// Digests follow the same second-evaluation rule as eliminatePar:
		// summing a head to guard its only comparison costs more than the
		// guard saves, so the guard engages only once both heads have been
		// seen in an earlier evaluation (and their digests are therefore
		// cached or about to amortize).
		seenA := nd.digestSeen[ia] == ga+1
		if !seenA {
			nd.digestSeen[ia] = ga + 1
		}
		keep := false
		for ib, b := range nd.srcs {
			if b == a {
				continue
			}
			qb := nd.queues[b]
			nd.stats.VecComparisons++
			var less bool
			gb := qb.HeadGen()
			if m := &nd.pruneMemoT[ib*s+ia]; m.valid && m.genB == gb && m.genA == ga {
				less = m.less
				nd.stats.MemoHits++
			} else {
				if seenA && nd.digestSeen[ib] == gb+1 {
					var filtered bool
					less, filtered = qb.HeadRef().Hi.LessDigest(xa.Hi, qb.HeadDigests().Hi, qa.HeadDigests().Hi)
					if filtered {
						nd.stats.FilteredComparisons++
					}
				} else {
					if nd.digestSeen[ib] != gb+1 {
						nd.digestSeen[ib] = gb + 1
					}
					less = qb.HeadRef().Hi.Less(xa.Hi)
				}
				*m = pruneMemo{genB: gb, genA: ga, less: less, valid: true}
			}
			if !less {
				continue // Eq. 10 certifies x_b cannot revive x_a
			}
			if nd.cfg.ExactPrune && qb.Len() > 1 {
				// x_b's successor is already here: apply Eq. 9 exactly.
				// Guarded only when x_a's digest is already paid for; the
				// successor's sum is a prepayment — its slot cache survives
				// until the slot is vacated, so it rides into the head
				// digest when x_b is deleted.
				nd.stats.VecComparisons++
				succ := qb.At(1)
				var sl bool
				if seenA {
					var sf bool
					sl, sf = succ.Lo.LessDigest(xa.Hi, qb.DigestsAt(1).Lo, qa.HeadDigests().Hi)
					if sf {
						nd.stats.FilteredComparisons++
					}
				} else {
					sl = succ.Lo.Less(xa.Hi)
				}
				if !sl {
					continue // succ(x_b) does not overlap x_a either
				}
			}
			keep = true
			break
		}
		if !keep {
			removable = append(removable, a)
		}
	}
	if len(removable) == 0 {
		panic(fmt.Sprintf("core: node %d: pruning found no removable interval (Theorem 4 violated)", nd.id))
	}
	for _, a := range removable {
		nd.queues[a].DeleteHead()
		nd.noteRemovals(1)
		nd.stats.Pruned++
	}
	sort.Ints(removable)
	return removable
}
