// Package core implements the paper's primary contribution: the hierarchical,
// decentralized, repeated detector for Definitely(Φ) (Algorithm 1 of Shen &
// Kshemkalyani, IPDPSW 2013).
//
// Every process in a pre-constructed spanning tree runs one Node. A Node
// maintains one interval queue per source: Q_0 for intervals produced by its
// own local predicate, and one queue per child in the tree, carrying the
// aggregated intervals those children produce. On every new queue head the
// Node runs the elimination loop (Algorithm 1, lines 1–17): heads that can
// provably never participate in a solution are deleted. When all queues are
// non-empty and their heads mutually overlap, the heads form a solution set —
// Definitely(Φ) holds for the subtree rooted at this node (lines 18–22). The
// set is aggregated with ⊓ (Eq. 5/6) for the parent, and the pruning rule of
// Eq. 10 (lines 23–33) removes at least one head so that *future* occurrences
// of the predicate keep being detected (Theorems 3 and 4).
//
// A Node is a pure, single-threaded state machine: it consumes intervals and
// returns the detections they trigger. All I/O — message transport,
// resequencing of the non-FIFO network, heartbeats, tree reconfiguration —
// lives in internal/monitor, which keeps this package deterministic and
// directly testable.
package core

import (
	"fmt"
	"sort"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
)

// Detection records one satisfaction of the predicate in the subtree rooted
// at the detecting node.
type Detection struct {
	// Node is the id of the detecting process (the subtree root).
	Node int

	// Set is the solution set: one interval per queue (the node's own plus
	// one per child), every pair satisfying min(x) < max(y).
	Set []interval.Interval

	// Agg is ⊓(Set), the single interval that represents this solution set
	// at the next level of the hierarchy. At the tree root it is not sent
	// anywhere but still identifies the global solution's span.
	Agg interval.Interval
}

// Stats counts the work a node has performed, for the complexity experiments
// (paper §IV and Table I).
type Stats struct {
	// IntervalsIn counts intervals accepted into queues (local + children).
	IntervalsIn int
	// Dropped counts intervals discarded because their source is not (or is
	// no longer) a queue at this node — e.g. in-flight messages from a child
	// that failed or was adopted away.
	Dropped int
	// VecComparisons counts vector-timestamp comparisons executed by the
	// elimination loop and the pruning rule. Each comparison costs O(n)
	// component operations, which is how the paper's O(d²pn²) arises. The
	// count is of *logical* comparisons — the pairs Algorithm 1 enumerates —
	// and is identical across engines; FilteredComparisons and MemoHits
	// break down how many of them the parallel engine's comparison-pruning
	// layer answered in O(1) instead of an O(n) scan.
	VecComparisons int
	// FilteredComparisons counts comparison directions the digest guard
	// refuted from the one-word component-sum digests (vclock.Sum) without
	// scanning the clocks. Always zero under the sequential oracle.
	FilteredComparisons int
	// MemoHits counts comparisons served from the cross-round verdict memo
	// — the (source, head-generation) keyed cache of elimination and prune
	// verdicts — including mirror pairs resolved by swapping an already
	// evaluated verdict within a round. Always zero under the sequential
	// oracle.
	MemoHits int
	// Eliminated counts heads deleted by the elimination loop (lines 12–16).
	Eliminated int
	// Pruned counts heads deleted by the repeated-detection rule (Eq. 10).
	Pruned int
	// EpochDiscards counts intervals discarded by ResetSource when a
	// child's stream restarted after a tree reconfiguration.
	EpochDiscards int
	// Detections counts solution sets found at this node.
	Detections int
}

// Legacy returns s with the comparison-pruning breakdown zeroed — the shape
// the sequential oracle produces. VecComparisons keeps its historical meaning
// (the comparisons Algorithm 1 enumerates) in both engines; the breakdown
// fields only describe how much of that enumerated work was answered in O(1),
// so oracle-parity checks and legacy dashboards compare Legacy values.
func (s Stats) Legacy() Stats {
	s.FilteredComparisons, s.MemoHits = 0, 0
	return s
}

// Config carries the knobs shared by every node of one detector instance.
type Config struct {
	// N is the number of processes in the system (the vector-clock size).
	N int

	// KeepMembers retains each aggregate's solution set in memory so tests
	// can expand detections back to base intervals. Off in production.
	KeepMembers bool

	// Strict enables succession checking: every interval accepted from a
	// source must start causally after the previously accepted interval from
	// that source ended (max(x) < min(succ(x)), Theorem 2). Violations panic;
	// they indicate a transport-layer ordering bug, never a data condition.
	Strict bool

	// ExactPrune additionally applies the exact removal condition Eq. 9
	// (min(succ(x_j)) ≮ max(x_i)) whenever a head's successor has already
	// arrived, pruning a superset of what the paper's approximation Eq. 10
	// permits. The paper adopts Eq. 10 because successors are generally not
	// yet known; this option quantifies what the approximation leaves on
	// the queues (see BenchmarkAblationPruneRule). Safety is unchanged —
	// Eq. 9 is the exact characterization — and liveness follows a fortiori.
	ExactPrune bool

	// Parallel switches the node to the partitioned detection engine: the
	// same Algorithm 1 loop, with comparison rounds snapshotted and fanned
	// out across Pool, aggregates published from a flat vclock.Store, and
	// solution sets carved from a slab. Detections and Stats are
	// byte-identical to the sequential engine (property-tested); the
	// sequential path remains available as the oracle when Parallel is off.
	Parallel bool

	// Pool is the shared comparison worker set for the parallel engine. A
	// nil Pool keeps the partitioned engine on the calling goroutine (flat
	// storage and slabs still apply; rounds just never fan out). Ignored
	// unless Parallel is set.
	Pool *Pool

	// Clocks, when set, is a shared chunk arena the node's flat vclock
	// store carves from — many nodes (across many clusters, in the tenant
	// plane) bump-allocate out of common slabs instead of each stranding
	// its own chunk tails. Ignored unless Parallel is set.
	Clocks *vclock.Arena

	// FanoutThreshold overrides the minimum number of clock components a
	// comparison round must carry before it fans out to Pool. Zero — the
	// default — selects the adaptive policy (engine_policy.go), which
	// measures inline and fanned round costs and moves the threshold toward
	// whichever lane is cheaper on the running hardware. A positive value
	// pins the threshold statically; tests lower it to force fanout at toy
	// sizes.
	FanoutThreshold int
}

// Node is the per-process detector state machine.
type Node struct {
	id  int
	cfg Config

	// queues maps source id → pending intervals. The node's own id keys Q_0
	// when the node hosts a local predicate; child ids key the child queues.
	queues map[int]*interval.Queue
	// srcs holds queue keys in deterministic (insertion) order.
	srcs []int

	// lastHi tracks, per source, the upper bound of the last accepted
	// interval, for Strict succession checks.
	lastHi map[int]interval.Interval

	aggSeq int
	stats  Stats

	// Scratch buffers reused across detection rounds; detection runs on the
	// owner's goroutine only, so reuse is safe and keeps the per-interval
	// hot path allocation-free (see BenchmarkNodeDetection). scratchA backs
	// detect's updated/prune list; the elim pair backs eliminate's rounds;
	// aggScratch holds each ⊓-aggregation while it is computed, so only the
	// published Detection pays an allocation (one compact clone instead of
	// two clock clones plus a span set).
	scratchA                   []int
	scratchElimA, scratchElimB []int
	aggScratch                 interval.Interval
	one                        [1]int

	// resident / residentHigh track the node-level interval residency and
	// its true peak — the maximum number of intervals concurrently queued
	// across all queues, maintained incrementally at every enqueue and
	// deletion. Summing per-queue HighWater marks instead (the old
	// QueueSizes behaviour) overstates the peak because queues peak at
	// different times.
	resident, residentHigh int

	// Parallel-engine state (nil/empty under the sequential oracle): the
	// flat bounds store, the pair/verdict/gen scratch of eliminatePar and
	// prunePar, and the solution-set slab.
	store          *vclock.Store
	pairScratch    []cmpTask
	verdictScratch []cmpVerdict
	genScratch     []uint64
	keepScratch    []pruneVerdict
	solSlab        []interval.Interval

	// Comparison-pruning state (parallel engine only, memo.go): source →
	// position in srcs, the (position², head-generation keyed) elimination
	// and prune verdict memos, the per-round mirror index scratch, the
	// last head generation per source whose evaluation was seen (digests
	// are consulted only from a head's second evaluation on), and the
	// adaptive fanout policy.
	srcPos        map[int]int
	elimMemoT     []elimMemo
	pruneMemoT    []pruneMemo
	mirrorScratch []int32
	digestSeen    []uint64
	policy        fanoutPolicy
}

// NewNode returns a detector for process id in an n-process system. If local
// is true the node hosts a local predicate and owns a Q_0; nodes outside the
// conjunction (pure relays) pass false.
func NewNode(id int, cfg Config, local bool) *Node {
	if cfg.N <= 0 {
		panic(fmt.Sprintf("core: invalid system size %d", cfg.N))
	}
	nd := &Node{
		id:     id,
		cfg:    cfg,
		queues: make(map[int]*interval.Queue),
		lastHi: make(map[int]interval.Interval),
	}
	if cfg.Parallel {
		nd.store = vclock.NewStoreIn(cfg.N, cfg.Clocks)
	}
	if local {
		nd.addSource(id)
	}
	return nd
}

// ID returns the node's process id.
func (nd *Node) ID() int { return nd.id }

// Stats returns a copy of the node's counters.
func (nd *Node) Stats() Stats { return nd.stats }

// QueueSizes returns the node's current interval residency across all queues
// and its true node-level high-water mark — the maximum number of intervals
// ever *concurrently* resident, maintained incrementally at every enqueue and
// deletion. (An earlier version summed the per-queue HighWater marks, which
// overstates the peak whenever queues peak at different times; per-queue
// peaks remain available via QueueHighWaters.)
func (nd *Node) QueueSizes() (current, highWater int) {
	return nd.resident, nd.residentHigh
}

// QueueHighWaters returns each source's own peak residency. The values can
// legitimately sum to more than the node-level high-water mark reported by
// QueueSizes: a queue's peak is local to its own timeline.
func (nd *Node) QueueHighWaters() map[int]int {
	out := make(map[int]int, len(nd.queues))
	for src, q := range nd.queues {
		out[src] = q.HighWater
	}
	return out
}

// noteEnqueue and noteRemovals maintain the node-level residency accounting
// next to every queue mutation.
func (nd *Node) noteEnqueue() {
	nd.resident++
	if nd.resident > nd.residentHigh {
		nd.residentHigh = nd.resident
	}
}

func (nd *Node) noteRemovals(k int) {
	nd.resident -= k
}

// Sources returns the queue keys in deterministic order (the node's own id
// first if it hosts a local predicate, then children in insertion order).
func (nd *Node) Sources() []int {
	return append([]int(nil), nd.srcs...)
}

// HasSource reports whether the node currently maintains a queue for src.
func (nd *Node) HasSource(src int) bool {
	_, ok := nd.queues[src]
	return ok
}

func (nd *Node) addSource(src int) {
	if _, ok := nd.queues[src]; ok {
		panic(fmt.Sprintf("core: node %d already has source %d", nd.id, src))
	}
	nd.queues[src] = interval.NewQueue()
	nd.srcs = append(nd.srcs, src)
	nd.rebuildMemo()
}

// AddChild creates a queue for a (possibly newly adopted) child subtree. The
// paper's §III-F: "nodes having new child processes will create a new local
// queue to receive aggregated intervals reported from each new child".
func (nd *Node) AddChild(child int) {
	if child == nd.id {
		panic(fmt.Sprintf("core: node %d cannot be its own child", nd.id))
	}
	nd.addSource(child)
}

// RemoveChild drops the queue of a failed or re-parented child, discarding
// its pending intervals. Removing a queue can unblock detection — the dead
// child may have been the only empty queue — so the node re-runs detection
// over the remaining sources and returns any solutions found. This is
// exactly how the algorithm keeps detecting the partial predicate over the
// surviving processes (paper §III-F).
func (nd *Node) RemoveChild(child int) []Detection {
	q, ok := nd.queues[child]
	if !ok {
		return nil
	}
	nd.noteRemovals(q.Len())
	delete(nd.queues, child)
	delete(nd.lastHi, child)
	for i, s := range nd.srcs {
		if s == child {
			nd.srcs = append(nd.srcs[:i], nd.srcs[i+1:]...)
			break
		}
	}
	nd.rebuildMemo()
	if len(nd.srcs) == 0 {
		return nil
	}
	// Heads may never have been cross-compared while the removed queue
	// blocked solutions; recheck everything.
	return nd.detect(nd.srcs)
}

// ResetSource discards everything queued from src and forgets its
// succession baseline, keeping the queue itself. It implements the receiving
// side of a reconfiguration epoch: when a child's own subtree membership
// changes (tree repair), its subsequent aggregates no longer causally follow
// its earlier ones (Theorem 2 holds only for a fixed source set), so the
// parent must not mix the two streams in one FIFO order. Discarding the
// stale entries is safe — it can only postpone detections, never falsify
// one — and mirrors the other repair losses the paper accepts.
func (nd *Node) ResetSource(src int) {
	q, ok := nd.queues[src]
	if !ok {
		return
	}
	for !q.Empty() {
		q.DeleteHead()
		nd.noteRemovals(1)
		nd.stats.EpochDiscards++
	}
	delete(nd.lastHi, src)
}

// OnInterval delivers the next interval from src — the node's own id for a
// local-predicate interval, a child id for that child's aggregate — and
// returns the detections it triggers, in order. Intervals from unknown
// sources (stale in-flight messages after a failure) are counted and dropped.
func (nd *Node) OnInterval(src int, iv interval.Interval) []Detection {
	q, ok := nd.queues[src]
	if !ok {
		nd.stats.Dropped++
		return nil
	}
	if nd.cfg.Strict {
		if prev, ok := nd.lastHi[src]; ok && !prev.Hi.Less(iv.Lo) {
			panic(fmt.Sprintf("core: node %d: succession violated on source %d: prev max %v, next min %v",
				nd.id, src, prev.Hi, iv.Lo))
		}
		nd.lastHi[src] = iv
	}
	q.Enqueue(iv)
	nd.noteEnqueue()
	nd.stats.IntervalsIn++
	// Algorithm 1 line 2: only a new head can change the outcome.
	if q.Len() != 1 {
		return nil
	}
	nd.one[0] = src
	return nd.detect(nd.one[:])
}

// OnIntervals ingests a run of consecutive intervals of one source, in
// succession order, as a single batch: everything is enqueued first and the
// detection loop runs once — Algorithm 1 line 2 amortized over the run,
// which is what the batched runtimes feed it (a resequencer's released run,
// an ObserveBatch call). The emitted detections are exactly those of the
// equivalent one-at-a-time OnInterval sequence (property-tested to byte
// identity): an elimination proof against a head persists against every
// successor of that head, so which provably-useless intervals a fixed point
// discards never changes which solutions exist. The bookkeeping may differ —
// a batch exposes the run's later intervals inside the same fixed point
// where the sequential path starts a fresh one, so the two paths can
// classify a discarded interval differently (Eliminated vs Pruned vs still
// resident), and ExactPrune's Eq. 9 successor peek sees batch-delivered
// successors earlier.
func (nd *Node) OnIntervals(src int, ivs []interval.Interval) []Detection {
	if len(ivs) == 0 {
		return nil
	}
	q, ok := nd.queues[src]
	if !ok {
		nd.stats.Dropped += len(ivs)
		return nil
	}
	wasEmpty := q.Empty()
	for _, iv := range ivs {
		if nd.cfg.Strict {
			if prev, ok := nd.lastHi[src]; ok && !prev.Hi.Less(iv.Lo) {
				panic(fmt.Sprintf("core: node %d: succession violated on source %d: prev max %v, next min %v",
					nd.id, src, prev.Hi, iv.Lo))
			}
			nd.lastHi[src] = iv
		}
		q.Enqueue(iv)
		nd.noteEnqueue()
		nd.stats.IntervalsIn++
	}
	// Algorithm 1 line 2: only a new head can change the outcome, and the
	// batch exposed one exactly when the queue was empty before it.
	if !wasEmpty {
		return nil
	}
	nd.one[0] = src
	return nd.detect(nd.one[:])
}

// detect runs the elimination loop and, repeatedly, solution extraction and
// pruning, starting from the queues named in trigger. It returns every
// solution set found, in detection order. The parallel engine (engine.go)
// runs the same loop with partitioned rounds and flat aggregate storage;
// this sequential body is kept verbatim as its property-test oracle.
func (nd *Node) detect(trigger []int) []Detection {
	if nd.cfg.Parallel {
		return nd.detectPar(trigger)
	}
	return nd.detectSeq(trigger)
}

func (nd *Node) detectSeq(trigger []int) []Detection {
	var dets []Detection
	updated := append(nd.scratchA[:0], trigger...)
	for {
		nd.eliminate(updated)
		sol, ok := nd.solution()
		if !ok {
			nd.scratchA = updated[:0]
			return dets
		}
		interval.AggregateInto(&nd.aggScratch, sol, nd.id, nd.aggSeq, nd.cfg.KeepMembers)
		agg := nd.aggScratch.CompactClone()
		nd.aggSeq++
		nd.stats.Detections++
		dets = append(dets, Detection{Node: nd.id, Set: sol, Agg: agg})
		updated = nd.prune(updated[:0])
	}
}

// eliminate is Algorithm 1 lines 4–17: while some queue gained a new head,
// compare that head pairwise with every other head; a head x with
// min(x) ≮ max(y) proves y useless (y ends before x — and before every
// successor of x — begins to overlap), and vice versa. Deleted heads expose
// new heads, which feed the next round.
func (nd *Node) eliminate(trigger []int) {
	// Work on private buffers: cur/next swap roles each round, so they must
	// never alias the caller's slice.
	cur := append(nd.scratchElimA[:0], trigger...)
	next := nd.scratchElimB[:0]
	for len(cur) > 0 {
		next = next[:0]
		for _, a := range cur {
			qa, ok := nd.queues[a]
			if !ok || qa.Empty() {
				continue
			}
			x := qa.Head()
			for _, b := range nd.srcs {
				if b == a {
					continue
				}
				qb := nd.queues[b]
				if qb.Empty() {
					continue
				}
				y := qb.Head()
				nd.stats.VecComparisons += 2
				// One fused pass evaluates both directions of Eq. 2's
				// pairwise check (see vclock.CompareLess).
				xBeforeY, yBeforeX := vclock.CompareLess(x.Lo, y.Hi, y.Lo, x.Hi)
				if !xBeforeY {
					next = addUnique(next, b)
				}
				if !yBeforeX {
					next = addUnique(next, a)
				}
			}
		}
		for _, c := range next {
			if q := nd.queues[c]; !q.Empty() {
				q.DeleteHead()
				nd.noteRemovals(1)
				nd.stats.Eliminated++
			}
		}
		// Swap the scratch roles: the just-consumed buffer becomes the next
		// round's accumulator.
		cur, next = next, cur
	}
	nd.scratchElimA, nd.scratchElimB = cur[:0], next[:0]
}

// addUnique appends v unless present; the sets here are bounded by the
// node's queue count, so a linear scan beats any set structure.
func addUnique(s []int, v int) []int {
	for _, t := range s {
		if t == v {
			return s
		}
	}
	return append(s, v)
}

// solution returns the heads of all queues if every queue is non-empty
// (Algorithm 1 line 18). After eliminate has reached a fixed point, those
// heads are pairwise overlapping, so they form a solution set; Strict mode
// re-verifies that invariant on every solution.
func (nd *Node) solution() ([]interval.Interval, bool) {
	if len(nd.srcs) == 0 {
		return nil, false
	}
	// Cheap emptiness pass first: most invocations find a blocked queue, and
	// the hot path must not allocate for them.
	for _, s := range nd.srcs {
		if nd.queues[s].Empty() {
			return nil, false
		}
	}
	sol := make([]interval.Interval, 0, len(nd.srcs))
	for _, s := range nd.srcs {
		sol = append(sol, nd.queues[s].Head())
	}
	if nd.cfg.Strict && !interval.OverlapAll(sol) {
		// The elimination fixed point guarantees pairwise overlap; a
		// violation means the elimination loop is broken, never bad input.
		panic(fmt.Sprintf("core: node %d: solution set fails pairwise overlap", nd.id))
	}
	return sol, true
}

// prune is Algorithm 1 lines 23–33 (Eq. 10): from the just-detected solution
// set, delete every head xₐ such that no other member's upper bound is
// strictly below xₐ's — i.e. the minimal elements of the max(x) order. Such a
// head can never belong to a future solution (Theorem 3, safety), and at
// least one always exists because a finite partial order always has a minimal
// element (Theorem 4, liveness). Returns the pruned sources so detection can
// re-run on the freshly exposed heads.
func (nd *Node) prune(removable []int) []int {
	for _, a := range nd.srcs {
		xa := nd.queues[a].Head()
		keep := false
		for _, b := range nd.srcs {
			if b == a {
				continue
			}
			qb := nd.queues[b]
			xb := qb.Head()
			nd.stats.VecComparisons++
			if !xb.Hi.Less(xa.Hi) {
				continue // Eq. 10 certifies x_b cannot revive x_a
			}
			if nd.cfg.ExactPrune && qb.Len() > 1 {
				// x_b's successor is already here: apply Eq. 9 exactly.
				nd.stats.VecComparisons++
				if !qb.At(1).Lo.Less(xa.Hi) {
					continue // succ(x_b) does not overlap x_a either
				}
			}
			keep = true
			break
		}
		if !keep {
			removable = append(removable, a)
		}
	}
	if len(removable) == 0 {
		// Impossible: the max(x) partial order over a finite non-empty set
		// always has minimal elements (Theorem 4).
		panic(fmt.Sprintf("core: node %d: pruning found no removable interval (Theorem 4 violated)", nd.id))
	}
	for _, a := range removable {
		nd.queues[a].DeleteHead()
		nd.noteRemovals(1)
		nd.stats.Pruned++
	}
	sort.Ints(removable)
	return removable
}
