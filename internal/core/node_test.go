package core

import (
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
)

// testTree drives a set of Nodes wired into a tree, synchronously propagating
// every aggregate to the parent — the deterministic, transport-free analogue
// of the monitor runtime.
type testTree struct {
	t      *testing.T
	nodes  map[int]*Node
	parent map[int]int // -1 for root
	all    []Detection // every detection at every level, in order
	root   []Detection // detections at the tree root only
}

func newTestTree(t *testing.T, cfg Config) *testTree {
	return &testTree{
		t:      t,
		nodes:  make(map[int]*Node),
		parent: make(map[int]int),
	}
}

func (tt *testTree) add(id, parent int, cfg Config, local bool) *Node {
	nd := NewNode(id, cfg, local)
	tt.nodes[id] = nd
	tt.parent[id] = parent
	if parent >= 0 {
		tt.nodes[parent].AddChild(id)
	}
	return nd
}

// local delivers a local-predicate interval to node id and propagates.
func (tt *testTree) local(id int, iv interval.Interval) {
	tt.deliver(id, id, iv)
}

func (tt *testTree) deliver(node, src int, iv interval.Interval) {
	dets := tt.nodes[node].OnInterval(src, iv)
	tt.propagate(node, dets)
}

func (tt *testTree) propagate(node int, dets []Detection) {
	for _, det := range dets {
		tt.all = append(tt.all, det)
		p := tt.parent[node]
		if p < 0 {
			tt.root = append(tt.root, det)
			continue
		}
		tt.deliver(p, node, det.Agg)
	}
}

func (tt *testTree) removeChild(node, child int) {
	tt.propagate(node, tt.nodes[node].RemoveChild(child))
}

func iv(origin, seq int, lo, hi vclock.VC) interval.Interval {
	return interval.New(origin, seq, lo, hi)
}

func TestLeafForwardsEveryInterval(t *testing.T) {
	cfg := Config{N: 2, Strict: true}
	tt := newTestTree(t, cfg)
	root := tt.add(1, -1, cfg, true)
	tt.add(0, 1, cfg, true)

	// Three intervals at leaf P0; P1's own predicate holds once, overlapping
	// the second.
	tt.local(0, iv(0, 0, vclock.Of(1, 0), vclock.Of(2, 0)))
	tt.local(0, iv(0, 1, vclock.Of(4, 2), vclock.Of(5, 2)))
	tt.local(1, iv(1, 0, vclock.Of(3, 1), vclock.Of(5, 5)))
	tt.local(0, iv(0, 2, vclock.Of(7, 6), vclock.Of(8, 6)))

	// Leaf detects (trivially) once per interval.
	leafDets := 0
	for _, d := range tt.all {
		if d.Node == 0 {
			leafDets++
		}
	}
	if leafDets != 3 {
		t.Fatalf("leaf detections = %d, want 3", leafDets)
	}
	// Root: x0#0 is eliminated (ends before P1's interval starts:
	// min(x1) = [3 1] ≮ max(x0#0) = [2 0]); x0#1 pairs with x1#0.
	if len(tt.root) != 1 {
		t.Fatalf("root detections = %d, want 1", len(tt.root))
	}
	if got := tt.root[0].Agg.Span; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("root detection span = %v, want [0 1]", got)
	}
	// Two eliminations at the root: x0#0 (ends before x1 begins) and, after
	// the solution {x0#1, x1} is found and x0#1 pruned, x1 itself — x0#2
	// proves it useless (min(x0#2) ≮ max(x1) fails the other way: x1 ends
	// before x0#2 begins).
	if root.Stats().Eliminated != 2 {
		t.Fatalf("root eliminated = %d, want 2", root.Stats().Eliminated)
	}
	if root.Stats().Pruned != 1 {
		t.Fatalf("root pruned = %d, want 1 (x0#1)", root.Stats().Pruned)
	}
}

// TestFigure2Scenario encodes the paper's Figure 2(a)/(b): tree P1→P2→P3←P4
// (P2 and P4 are P3's children, P1 is P2's child; 0-based ids: P1=0, P2=1,
// P3=2, P4=3). The first solution at P2 is {x1,x2}; its aggregate fails at
// P3 against {x4,x5}; repeated detection at P2 then produces {x1,x3}, whose
// aggregate completes the global solution {x1,x3,x4,x5}.
func TestFigure2Scenario(t *testing.T) {
	cfg := Config{N: 4, Strict: true, KeepMembers: true}
	tt := newTestTree(t, cfg)
	tt.add(2, -1, cfg, true) // P3, root
	tt.add(1, 2, cfg, true)  // P2, child of P3
	tt.add(3, 2, cfg, true)  // P4, child of P3
	tt.add(0, 1, cfg, true)  // P1, child of P2

	x1 := iv(0, 0, vclock.Of(1, 0, 0, 0), vclock.Of(6, 5, 2, 2))
	x2 := iv(1, 0, vclock.Of(0, 1, 0, 0), vclock.Of(1, 3, 0, 0))
	x3 := iv(1, 1, vclock.Of(2, 4, 0, 0), vclock.Of(5, 7, 1, 1))
	x4 := iv(2, 0, vclock.Of(0, 0, 1, 0), vclock.Of(3, 4, 4, 1))
	x5 := iv(3, 0, vclock.Of(0, 0, 0, 1), vclock.Of(3, 4, 1, 4))

	tt.local(0, x1) // P1's interval reaches P2
	tt.local(1, x2) // first solution {x1,x2} at P2 → aggregate to P3
	tt.local(2, x4)
	tt.local(3, x5) // P3 attempts {⊓(x1,x2), x4, x5}: fails, aggregate eliminated
	if len(tt.root) != 0 {
		t.Fatalf("premature root detection: %v", tt.root)
	}
	p3 := tt.nodes[2]
	if p3.Stats().Eliminated != 1 {
		t.Fatalf("P3 eliminated = %d, want 1 (the {x1,x2} aggregate)", p3.Stats().Eliminated)
	}

	tt.local(1, x3) // second solution {x1,x3} at P2 → global solution at P3
	if len(tt.root) != 1 {
		t.Fatalf("root detections = %d, want 1", len(tt.root))
	}
	span := tt.root[0].Agg.Span
	if len(span) != 4 {
		t.Fatalf("global detection span = %v, want all 4 processes", span)
	}
	// Ground truth: expand to base intervals and verify Eq. 2 pairwise.
	bases := nil2empty(t, tt.root[0])
	if len(bases) != 4 {
		t.Fatalf("base intervals = %d, want 4", len(bases))
	}
	if !interval.OverlapAll(bases) {
		t.Fatal("reported solution does not satisfy Definitely(Φ) on base intervals")
	}
	// The solution must be {x1, x3, x4, x5} — x3, not x2.
	for _, b := range bases {
		if b.Origin == 1 && b.Seq != 1 {
			t.Fatalf("solution used x2 (seq %d), want x3", b.Seq)
		}
	}

	// Repeated-detection bookkeeping at P2: after the first solution, x2 was
	// pruned and x1 kept (max(x2) < max(x1)).
	p2 := tt.nodes[1]
	if p2.Stats().Detections != 2 {
		t.Fatalf("P2 detections = %d, want 2", p2.Stats().Detections)
	}
}

// TestFigure2Failover encodes Figure 2(c): P3 fails after x4; the tree
// reconnects with P2 under P4, and the partial predicate over {P1, P2, P4}
// is still detected via the {x1, x3} aggregate and x5.
func TestFigure2Failover(t *testing.T) {
	cfg := Config{N: 4, Strict: true, KeepMembers: true}
	tt := newTestTree(t, cfg)
	tt.add(3, -1, cfg, true) // P4 becomes the new root
	tt.add(1, 3, cfg, true)  // P2 adopted by P4
	tt.add(0, 1, cfg, true)  // P1 still under P2

	x1 := iv(0, 0, vclock.Of(1, 0, 0, 0), vclock.Of(6, 5, 2, 2))
	x3 := iv(1, 1, vclock.Of(2, 4, 0, 0), vclock.Of(5, 7, 1, 1))
	x5 := iv(3, 0, vclock.Of(0, 0, 0, 1), vclock.Of(3, 4, 1, 4))

	tt.local(3, x5)
	tt.local(0, x1)
	tt.local(1, x3)

	if len(tt.root) != 1 {
		t.Fatalf("root detections = %d, want 1", len(tt.root))
	}
	span := tt.root[0].Agg.Span
	want := []int{0, 1, 3}
	if len(span) != 3 || span[0] != want[0] || span[1] != want[1] || span[2] != want[2] {
		t.Fatalf("partial predicate span = %v, want %v (survivors)", span, want)
	}
}

// TestFigure1NonNestedSolution: the approach of Garg–Waldecker [7] assumes a
// solution set can be ordered x1..xk with min(x_i) ≺ min(x_j) and
// max(x_j) ≺ max(x_i) for i<j (nested intervals, paper Fig. 1). This test
// builds a solution set whose members have pairwise-concurrent bounds — no
// nesting order exists — and checks our detector still finds it.
func TestFigure1NonNestedSolution(t *testing.T) {
	cfg := Config{N: 3, Strict: true, KeepMembers: true}
	tt := newTestTree(t, cfg)
	tt.add(2, -1, cfg, true)
	tt.add(0, 2, cfg, true)
	tt.add(1, 2, cfg, true)

	// All three intervals straddle a common frontier; their maxes are
	// pairwise concurrent, so no nested ordering exists.
	a := iv(0, 0, vclock.Of(1, 0, 0), vclock.Of(4, 3, 3))
	b := iv(1, 0, vclock.Of(0, 1, 0), vclock.Of(3, 4, 3))
	c := iv(2, 0, vclock.Of(0, 0, 1), vclock.Of(3, 3, 4))
	if a.Hi.Compare(b.Hi) != vclock.Concurrent || b.Hi.Compare(c.Hi) != vclock.Concurrent {
		t.Fatal("test construction broken: maxes should be concurrent")
	}

	tt.local(0, a)
	tt.local(1, b)
	tt.local(2, c)
	if len(tt.root) != 1 {
		t.Fatalf("root detections = %d, want 1", len(tt.root))
	}
	if !interval.OverlapAll(nil2empty(t, tt.root[0])) {
		t.Fatal("solution fails Eq. 2")
	}
	// With concurrent maxes, Eq. 10 prunes all three (each is minimal).
	if got := tt.nodes[2].Stats().Pruned; got != 3 {
		t.Fatalf("pruned = %d, want 3", got)
	}
}

// TestRepeatedDetectionPulses drives k synchronized pulses through a 7-node
// binary tree and expects exactly k detections at the root — the repeated
// detection property the one-shot algorithms lack.
func TestRepeatedDetectionPulses(t *testing.T) {
	const n, k = 7, 25
	cfg := Config{N: n, Strict: true, KeepMembers: true}
	tt := newTestTree(t, cfg)
	// Balanced binary tree: 0 root; 1,2 inner; 3..6 leaves.
	tt.add(0, -1, cfg, true)
	tt.add(1, 0, cfg, true)
	tt.add(2, 0, cfg, true)
	tt.add(3, 1, cfg, true)
	tt.add(4, 1, cfg, true)
	tt.add(5, 2, cfg, true)
	tt.add(6, 2, cfg, true)

	for pulse := 0; pulse < k; pulse++ {
		for _, ivl := range pulseIntervals(n, pulse) {
			tt.local(ivl.Origin, ivl)
		}
	}
	if len(tt.root) != k {
		t.Fatalf("root detections = %d, want %d", len(tt.root), k)
	}
	for i, d := range tt.root {
		bases := nil2empty(t, d)
		if len(bases) != n {
			t.Fatalf("pulse %d: base intervals = %d, want %d", i, len(bases), n)
		}
		if !interval.OverlapAll(bases) {
			t.Fatalf("pulse %d: solution violates Eq. 2", i)
		}
	}
}

// pulseIntervals builds one globally synchronized pulse: every process's
// interval straddles the pulse's causal frontier, so all n intervals mutually
// overlap, and pulse p+1 begins strictly after pulse p ends.
func pulseIntervals(n, pulse int) []interval.Interval {
	base := uint32(pulse * 10)
	out := make([]interval.Interval, n)
	for p := 0; p < n; p++ {
		lo := make(vclock.VC, n)
		hi := make(vclock.VC, n)
		for c := 0; c < n; c++ {
			lo[c] = base + 1
			hi[c] = base + 5
		}
		// The origin's own component distinguishes the bounds and keeps them
		// genuine event timestamps: start event, then end event.
		lo[p] = base + 2
		hi[p] = base + 6
		out[p] = interval.New(p, pulse, lo, hi)
	}
	return out
}

func TestRemoveChildUnblocksDetection(t *testing.T) {
	cfg := Config{N: 3, Strict: true}
	tt := newTestTree(t, cfg)
	tt.add(0, -1, cfg, true)
	tt.add(1, 0, cfg, true)
	tt.add(2, 0, cfg, true)

	// P0 and P1 contribute overlapping intervals; P2 stays silent.
	tt.local(0, iv(0, 0, vclock.Of(2, 1, 0), vclock.Of(5, 4, 0)))
	tt.local(1, iv(1, 0, vclock.Of(1, 2, 0), vclock.Of(4, 5, 0)))
	if len(tt.root) != 0 {
		t.Fatal("detection fired while a queue was empty")
	}
	// P2 dies; its queue disappears; the partial predicate over {P0, P1}
	// must now be detected.
	tt.removeChild(0, 2)
	if len(tt.root) != 1 {
		t.Fatalf("root detections after failure = %d, want 1", len(tt.root))
	}
	if span := tt.root[0].Agg.Span; len(span) != 2 {
		t.Fatalf("span = %v, want the two survivors", span)
	}
}

func TestRemoveUnknownChildIsNoop(t *testing.T) {
	nd := NewNode(0, Config{N: 2}, true)
	if dets := nd.RemoveChild(99); dets != nil {
		t.Fatalf("RemoveChild(unknown) = %v, want nil", dets)
	}
}

func TestStaleSourceDropped(t *testing.T) {
	nd := NewNode(0, Config{N: 2}, true)
	nd.AddChild(1)
	dets := nd.RemoveChild(1)
	_ = dets
	if got := nd.OnInterval(1, iv(1, 0, vclock.Of(0, 1), vclock.Of(0, 2))); got != nil {
		t.Fatalf("stale interval triggered detections: %v", got)
	}
	if nd.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", nd.Stats().Dropped)
	}
}

func TestStrictSuccessionPanics(t *testing.T) {
	nd := NewNode(0, Config{N: 2, Strict: true}, true)
	nd.OnInterval(0, iv(0, 0, vclock.Of(1, 0), vclock.Of(3, 0)))
	defer func() {
		if recover() == nil {
			t.Error("out-of-order interval did not panic in Strict mode")
		}
	}()
	// Next interval starts causally before the previous ended.
	nd.OnInterval(0, iv(0, 1, vclock.Of(2, 0), vclock.Of(5, 0)))
}

func TestAddChildValidation(t *testing.T) {
	nd := NewNode(3, Config{N: 4}, true)
	for name, f := range map[string]func(){
		"self-child": func() { nd.AddChild(3) },
		"dup-child":  func() { nd.AddChild(1); nd.AddChild(1) },
		"bad-config": func() { NewNode(0, Config{}, true) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSourcesAndQueueSizes(t *testing.T) {
	nd := NewNode(5, Config{N: 8}, true)
	nd.AddChild(2)
	nd.AddChild(7)
	srcs := nd.Sources()
	if len(srcs) != 3 || srcs[0] != 5 || srcs[1] != 2 || srcs[2] != 7 {
		t.Fatalf("Sources = %v", srcs)
	}
	if !nd.HasSource(2) || nd.HasSource(4) {
		t.Fatal("HasSource broken")
	}
	cur, hw := nd.QueueSizes()
	if cur != 0 || hw != 0 {
		t.Fatalf("fresh QueueSizes = %d,%d", cur, hw)
	}
}

func TestResetSource(t *testing.T) {
	nd := NewNode(0, Config{N: 2, Strict: true}, true)
	nd.AddChild(1)
	// Two intervals queue up from child 1 (no local interval, so no
	// detection consumes them).
	nd.OnInterval(1, iv(1, 0, vclock.Of(0, 1), vclock.Of(0, 2)))
	nd.OnInterval(1, iv(1, 1, vclock.Of(0, 3), vclock.Of(0, 4)))
	if cur, _ := nd.QueueSizes(); cur != 2 {
		t.Fatalf("resident = %d, want 2", cur)
	}
	nd.ResetSource(1)
	if cur, _ := nd.QueueSizes(); cur != 0 {
		t.Fatalf("resident after reset = %d, want 0", cur)
	}
	if nd.Stats().EpochDiscards != 2 {
		t.Fatalf("EpochDiscards = %d, want 2", nd.Stats().EpochDiscards)
	}
	// After the reset, Strict mode accepts a stream that regresses relative
	// to the discarded one — the whole point of the epoch restart.
	nd.OnInterval(1, iv(1, 0, vclock.Of(0, 1), vclock.Of(0, 2)))
	// Unknown source: no-op.
	nd.ResetSource(99)
}

// nil2empty expands a detection to base intervals, failing the test if the
// solution chain was not retained.
func nil2empty(t *testing.T, d Detection) []interval.Interval {
	t.Helper()
	bases := interval.BaseIntervals(d.Agg)
	for _, b := range bases {
		if b.Agg {
			t.Fatal("detection contains opaque aggregate; run with KeepMembers")
		}
	}
	return bases
}
