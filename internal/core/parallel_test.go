package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"hierdet/internal/interval"
	"hierdet/internal/workload"
)

// The parallel engine's contract (engine.go) is stronger than the batch
// ingestion property next door: not just byte-identical detections but
// identical Stats, because each elimination round snapshots its pairs in the
// sequential iteration order, evaluates verdicts as pure functions of the
// heads, and applies them serially. These tests pin that contract as a
// property over chaotic executions with reconfigurations mixed in, across
// worker counts, with FanoutThreshold=1 so every multi-pair round actually
// crosses the pool (the default threshold would keep small test clocks
// inline and the pool untouched). Run under -race, the snapshot/verdict
// phases double as a data-race check on the single-writer queue contract.

// parallelEquivalent drives one sequential-oracle node and one parallel node
// through an identical schedule — random per-source chunks, interleaved
// RemoveChild and ResetSource reconfigurations — and requires byte-identical
// detections and identical Stats at every point where both have quiesced.
func parallelEquivalent(t *testing.T, seed int64, nSel uint8, pool *Pool) bool {
	n := 2 + int(nSel%5) // 2..6 sources
	streams := workload.GenerateChaotic(workload.ChaoticConfig{
		N: n, Steps: 50 * n, Seed: seed,
	}).Streams

	seq := NewNode(99, Config{N: n, Strict: true, KeepMembers: true}, false)
	par := NewNode(99, Config{N: n, Strict: true, KeepMembers: true,
		Parallel: true, Pool: pool, FanoutThreshold: 1}, false)
	for p := 0; p < n; p++ {
		seq.AddChild(p)
		par.AddChild(p)
	}

	rng := rand.New(rand.NewSource(seed ^ 0x9a11e1))
	idx := make([]int, n)
	removed := make([]bool, n)
	live := n
	var seqDets, parDets []Detection
	for {
		progressed := false
		for p := 0; p < n; p++ {
			if removed[p] {
				continue
			}
			// Reconfigurations, rarely: drop a source for good (keeping at
			// least two live so detection stays possible), or reset its
			// stream as a repair epoch would — discard the queue, forget the
			// succession baseline, keep feeding.
			if live > 2 && rng.Intn(40) == 0 {
				seqDets = append(seqDets, seq.RemoveChild(p)...)
				parDets = append(parDets, par.RemoveChild(p)...)
				removed[p] = true
				live--
				progressed = true
				continue
			}
			if rng.Intn(40) == 0 {
				seq.ResetSource(p)
				par.ResetSource(p)
			}
			left := len(streams[p]) - idx[p]
			if left == 0 {
				continue
			}
			k := 1 + rng.Intn(left)
			run := streams[p][idx[p] : idx[p]+k]
			idx[p] += k
			progressed = true
			seqDets = append(seqDets, seq.OnIntervals(p, run)...)
			parDets = append(parDets, par.OnIntervals(p, run)...)
		}
		if !progressed {
			break
		}
	}

	// Legacy Stats (the Algorithm 1 counters) must be identical; the
	// comparison-pruning breakdown is the parallel engine's own accounting
	// of how much of that identical work it answered in O(1), so it must be
	// zero on the oracle and bounded by the enumerated work on the engine.
	ss, ps := seq.Stats(), par.Stats()
	if ss.Legacy() != ps.Legacy() {
		t.Logf("seed %d n %d: stats diverge:\n  seq %+v\n  par %+v", seed, n, ss, ps)
		return false
	}
	if ss.FilteredComparisons != 0 || ss.MemoHits != 0 {
		t.Logf("seed %d n %d: sequential oracle reported pruning-layer work: %+v", seed, n, ss)
		return false
	}
	if ps.FilteredComparisons+ps.MemoHits > ps.VecComparisons {
		t.Logf("seed %d n %d: breakdown exceeds enumerated comparisons: %+v", seed, n, ps)
		return false
	}
	sc, sh := seq.QueueSizes()
	pc, ph := par.QueueSizes()
	if sc != pc || sh != ph {
		t.Logf("seed %d n %d: queue accounting diverges: seq %d/%d par %d/%d", seed, n, sc, sh, pc, ph)
		return false
	}
	if !bytes.Equal(encodeDetections(seqDets), encodeDetections(parDets)) {
		t.Logf("seed %d n %d: detection streams diverge (%d vs %d detections)",
			seed, n, len(seqDets), len(parDets))
		return false
	}
	return true
}

// TestQuickParallelEquivalence checks the parity property across worker
// counts: a single helper (maximum interleaving with the caller), a small
// pool, and an oversubscribed one.
func TestQuickParallelEquivalence(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		pool := NewPool(workers)
		defer pool.Close()
		f := func(seed int64, nSel uint8) bool { return parallelEquivalent(t, seed, nSel, pool) }
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

// TestParallelEquivalenceNilPool pins the pool-less parallel configuration —
// flat aggregate storage and slab-carved sets with every round inline — which
// is what a single-core deployment runs.
func TestParallelEquivalenceNilPool(t *testing.T) {
	f := func(seed int64, nSel uint8) bool { return parallelEquivalent(t, seed, nSel, nil) }
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestComparisonPruningEngaged pins that the comparison-pruning layer
// actually fires on a detection-dense schedule — a five-round cascade whose
// pruning comparisons are digest-refutable (equal upper-bound sums) and whose
// multi-source elimination rounds contain mirror pairs — so the breakdown
// counters cannot silently rot to zero. The oracle-parity property next door
// already guarantees the layer never changes a verdict; this guarantees it
// exists.
func TestComparisonPruningEngaged(t *testing.T) {
	par := NewNode(99, Config{N: 3, Strict: true, KeepMembers: true, Parallel: true}, false)
	for p := 0; p < 3; p++ {
		par.AddChild(p)
	}
	var dets []Detection
	for r := 0; r < 5; r++ {
		dets = append(dets, par.OnInterval(0, sync3(0, r, 10*r+1, 10*r+3))...)
		dets = append(dets, par.OnInterval(1, sync3(1, r, 10*r+1, 10*r+3))...)
	}
	var run []interval.Interval
	for r := 0; r < 5; r++ {
		run = append(run, sync3(2, r, 10*r+1, 10*r+3))
	}
	dets = append(dets, par.OnIntervals(2, run)...)
	if len(dets) != 5 {
		t.Fatalf("detections = %d, want 5", len(dets))
	}
	st := par.Stats()
	if st.FilteredComparisons == 0 {
		t.Fatalf("digest guard never fired: %+v", st)
	}
	if st.MemoHits == 0 {
		t.Fatalf("verdict memo never hit: %+v", st)
	}
	if st.FilteredComparisons+st.MemoHits > st.VecComparisons {
		t.Fatalf("breakdown exceeds enumerated comparisons: %+v", st)
	}
}

// TestParallelEpochInterleaving pins a deterministic repair-epoch schedule:
// two sources five rounds deep, a third reset mid-stream (epoch bump), then
// refilled. Sequential and parallel engines must discard, re-baseline and
// detect identically — including the EpochDiscards counter.
func TestParallelEpochInterleaving(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	mk := func(parallel bool) *Node {
		cfg := Config{N: 3, Strict: true, KeepMembers: true}
		if parallel {
			cfg.Parallel, cfg.Pool, cfg.FanoutThreshold = true, pool, 1
		}
		nd := NewNode(99, cfg, false)
		for p := 0; p < 3; p++ {
			nd.AddChild(p)
		}
		return nd
	}
	seq, par := mk(false), mk(true)

	var seqDets, parDets []Detection
	feed := func(src, seqNo, lo, hi int) {
		iv := sync3(src, seqNo, lo, hi)
		seqDets = append(seqDets, seq.OnInterval(src, iv)...)
		parDets = append(parDets, par.OnInterval(src, iv)...)
	}
	// Source 2 runs five rounds ahead while 0 and 1 are silent: nothing can
	// be detected (every solution needs a head from all three queues), so
	// all five sit blocked in queue 2.
	for r := 0; r < 5; r++ {
		feed(2, r, 10*r+1, 10*r+3)
	}
	// Source 2's subtree repairs: the epoch bump discards its whole queue
	// and forgets the succession baseline, then the new epoch restarts its
	// Seq at zero, interleaved with sources 0 and 1 finally reporting.
	seq.ResetSource(2)
	par.ResetSource(2)
	for r := 0; r < 5; r++ {
		feed(0, r, 10*r+1, 10*r+3)
		feed(1, r, 10*r+1, 10*r+3)
		feed(2, r, 10*r+1, 10*r+3)
	}

	ss, ps := seq.Stats(), par.Stats()
	if ss.Legacy() != ps.Legacy() {
		t.Fatalf("stats diverge:\n  seq %+v\n  par %+v", ss, ps)
	}
	if ss.EpochDiscards == 0 {
		t.Fatal("schedule never exercised an epoch discard")
	}
	if ss.Detections != 5 {
		t.Fatalf("detections = %d, want 5", ss.Detections)
	}
	if !bytes.Equal(encodeDetections(seqDets), encodeDetections(parDets)) {
		t.Fatal("detection streams diverge")
	}
}
