package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is the bounded worker set the parallel detection engine fans
// comparison rounds across. One pool is shared by every node of a detector
// instance (a live cluster passes the same pool to all of its core nodes), so
// the steady-state goroutine count stays O(workers) no matter how many nodes
// detect concurrently — the same scaling contract the delivery plane keeps.
//
// Run partitions an index space across the helpers and the calling goroutine;
// the caller always participates, so a pool adds latency only when it adds
// parallelism. Work items must be independent and must not touch shared
// mutable state: the engine only ships pure vector-clock comparisons here,
// and applies their verdicts serially afterwards (see eliminatePar).
type Pool struct {
	workers int
	jobs    chan *poolJob
	quit    chan struct{}
	once    sync.Once

	// Occupancy and traffic counters for the observability plane.
	busy    atomic.Int64
	fanouts atomic.Int64
	inlines atomic.Int64
	tasks   atomic.Int64
}

type poolJob struct {
	fn   func(int)
	next atomic.Int64
	n    int64
	done sync.WaitGroup
}

// NewPool starts a pool with the given number of helper goroutines; workers
// ≤ 0 means GOMAXPROCS. A single-worker pool still fans out (one helper plus
// the caller); use inline thresholds, not pool size, to avoid fanning out
// small rounds.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		jobs:    make(chan *poolJob, workers),
		quit:    make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		go p.helper()
	}
	return p
}

// Workers returns the helper count the pool was started with.
func (p *Pool) Workers() int { return p.workers }

// Busy returns how many helpers are currently executing round work.
func (p *Pool) Busy() int64 { return p.busy.Load() }

// Fanouts returns how many comparison rounds were partitioned across the
// pool; Inlines counts the rounds that stayed on the calling goroutine
// because they were below the fanout threshold.
func (p *Pool) Fanouts() int64 { return p.fanouts.Load() }

// Inlines returns the number of rounds executed inline (see Fanouts).
func (p *Pool) Inlines() int64 { return p.inlines.Load() }

// Tasks returns the total number of work items executed through Run,
// including the caller's share of fanned-out rounds.
func (p *Pool) Tasks() int64 { return p.tasks.Load() }

// noteInline records a round that ran inline, for the occupancy counters.
func (p *Pool) noteInline() {
	if p != nil {
		p.inlines.Add(1)
	}
}

// Run executes fn(0)…fn(n-1), partitioned across the pool's helpers and the
// calling goroutine, and returns once every index has completed. Indices are
// claimed atomically, so the assignment is nondeterministic — callers must
// make the work order-independent. fn must not call Run (rounds do not nest)
// and must not block on pool-driven work.
func (p *Pool) Run(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if p == nil || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	j := &poolJob{fn: fn, n: int64(n)}
	j.done.Add(n)
	p.fanouts.Add(1)
	// Wake at most n-1 helpers (the caller covers the rest); non-blocking
	// sends so a saturated pool degrades to caller-only execution instead of
	// queueing behind other rounds.
	wake := p.workers
	if wake > n-1 {
		wake = n - 1
	}
	for i := 0; i < wake; i++ {
		select {
		case p.jobs <- j:
		default:
			i = wake // buffer full: every helper already has work
		}
	}
	p.drain(j)
	j.done.Wait()
}

// drain claims and executes indices until the job is exhausted.
func (p *Pool) drain(j *poolJob) {
	for {
		i := j.next.Add(1) - 1
		if i >= j.n {
			return
		}
		j.fn(int(i))
		p.tasks.Add(1)
		j.done.Done()
	}
}

func (p *Pool) helper() {
	for {
		select {
		case j := <-p.jobs:
			p.busy.Add(1)
			p.drain(j)
			p.busy.Add(-1)
		case <-p.quit:
			return
		}
	}
}

// Close stops the helper goroutines. Run must not be in flight or called
// after Close. Closing a nil pool is a no-op; Close is idempotent.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.once.Do(func() { close(p.quit) })
}
