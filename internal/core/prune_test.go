package core

import (
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
	"hierdet/internal/workload"
)

// The scenario: x_a and x_b overlap (a solution); max(x_b) < max(x_a), so
// Eq. 10 keeps x_a alive (x_a might pair with succ(x_b)); but succ(x_b) has
// already arrived and provably does not reach into x_a
// (min(succ(x_b)) ≮ max(x_a)), so Eq. 9 prunes x_a too.
func exactPruneScenario() (xa, xb, succb interval.Interval) {
	xa = interval.New(0, 0, vclock.Of(1, 0), vclock.Of(5, 2))
	xb = interval.New(1, 0, vclock.Of(0, 1), vclock.Of(2, 2))
	succb = interval.New(1, 1, vclock.Of(3, 3), vclock.Of(3, 4))
	return
}

func TestExactPruneRemovesMore(t *testing.T) {
	run := func(exact bool) *Node {
		nd := NewNode(9, Config{N: 2, Strict: true, ExactPrune: exact}, false)
		nd.AddChild(0)
		nd.AddChild(1)
		xa, xb, succb := exactPruneScenario()
		nd.OnInterval(1, xb)
		nd.OnInterval(1, succb) // successor arrives before the solution fires
		dets := nd.OnInterval(0, xa)
		if len(dets) != 1 {
			t.Fatalf("detections = %d, want 1", len(dets))
		}
		return nd
	}
	approx := run(false)
	exact := run(true)
	if approx.Stats().Pruned != 1 {
		t.Fatalf("Eq. 10 pruned %d, want 1 (x_b only)", approx.Stats().Pruned)
	}
	if exact.Stats().Pruned != 2 {
		t.Fatalf("Eq. 9 pruned %d, want 2 (x_a and x_b)", exact.Stats().Pruned)
	}
	// A notable subtlety: the approximation does NOT retain x_a for long —
	// the detection loop's next elimination pass compares succ(x_b) against
	// x_a and deletes it. Eq. 10's looseness costs an extra elimination
	// round, not residual queue state; the final queues are identical.
	if got := approx.Stats().Eliminated; got != 1 {
		t.Fatalf("Eq. 10 eliminated %d, want 1 (x_a, cleaned up by elimination)", got)
	}
	if got := exact.Stats().Eliminated; got != 0 {
		t.Fatalf("Eq. 9 eliminated %d, want 0", got)
	}
	ca, _ := approx.QueueSizes()
	ce, _ := exact.QueueSizes()
	if ca != 1 || ce != 1 {
		t.Fatalf("final residency approx=%d exact=%d, want 1 and 1 (succ(x_b) only)", ca, ce)
	}
}

// TestExactPruneSameDetections: on arbitrary executions the two rules find
// exactly the same occurrences — Eq. 9 only removes intervals that can never
// be in a solution, so detection counts are invariant.
func TestExactPruneSameDetections(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		streams := workload.GenerateChaotic(workload.ChaoticConfig{
			N: 4, Steps: 400, Seed: int64(trial),
		}).Streams
		count := func(exact bool) int {
			nd := NewNode(9, Config{N: 4, Strict: true, ExactPrune: exact}, false)
			for p := 0; p < 4; p++ {
				nd.AddChild(p)
			}
			dets := 0
			idx := make([]int, 4)
			// Round-robin merge preserves per-source order.
			for {
				progressed := false
				for p := 0; p < 4; p++ {
					if idx[p] < len(streams[p]) {
						dets += len(nd.OnInterval(p, streams[p][idx[p]]))
						idx[p]++
						progressed = true
					}
				}
				if !progressed {
					return dets
				}
			}
		}
		a, e := count(false), count(true)
		if a != e {
			t.Fatalf("trial %d: Eq. 10 found %d, Eq. 9 found %d", trial, a, e)
		}
	}
}

func TestExactPruneWithUnknownSuccessorFallsBack(t *testing.T) {
	// Without the successor queued, ExactPrune behaves exactly like Eq. 10.
	nd := NewNode(9, Config{N: 2, Strict: true, ExactPrune: true}, false)
	nd.AddChild(0)
	nd.AddChild(1)
	xa, xb, _ := exactPruneScenario()
	nd.OnInterval(1, xb)
	dets := nd.OnInterval(0, xa)
	if len(dets) != 1 {
		t.Fatalf("detections = %d", len(dets))
	}
	if nd.Stats().Pruned != 1 {
		t.Fatalf("pruned %d, want 1 (successor unknown → approximation)", nd.Stats().Pruned)
	}
}

func TestQueueAt(t *testing.T) {
	q := interval.NewQueue()
	xa, xb, succb := exactPruneScenario()
	q.Enqueue(xa)
	q.Enqueue(xb)
	q.Enqueue(succb)
	q.DeleteHead()
	if got := q.At(0); got.Origin != xb.Origin || got.Seq != xb.Seq {
		t.Fatalf("At(0) = %v", got)
	}
	if got := q.At(1); got.Seq != succb.Seq {
		t.Fatalf("At(1) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	q.At(2)
}
