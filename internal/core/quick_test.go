package core

import (
	"testing"
	"testing/quick"

	"hierdet/internal/interval"
	"hierdet/internal/workload"
)

// TestQuickNodeInvariants drives a single detector node with arbitrary
// seeded chaotic executions and checks the invariants that must hold for
// ANY input:
//
//   - soundness: every solution set passes the pairwise Eq. 2 test (also
//     re-verified internally in Strict mode);
//   - progress: every detection removes at least one interval (Theorem 4),
//     so detections never exceed intervals consumed;
//   - no leak: queue residency never exceeds what arrived minus what was
//     removed.
func TestQuickNodeInvariants(t *testing.T) {
	f := func(seed int64, nSel uint8) bool {
		n := 2 + int(nSel%4) // 2..5 sources
		streams := workload.GenerateChaotic(workload.ChaoticConfig{
			N: n, Steps: 60 * n, Seed: seed,
		}).Streams

		nd := NewNode(99, Config{N: n, Strict: true}, false)
		for p := 0; p < n; p++ {
			nd.AddChild(p)
		}
		idx := make([]int, n)
		totalIn, detections := 0, 0
		for {
			progressed := false
			for p := 0; p < n; p++ {
				if idx[p] >= len(streams[p]) {
					continue
				}
				dets := nd.OnInterval(p, streams[p][idx[p]])
				idx[p]++
				totalIn++
				progressed = true
				for _, d := range dets {
					detections++
					if len(d.Set) != n {
						return false
					}
					if !interval.OverlapAll(d.Set) {
						return false
					}
				}
			}
			if !progressed {
				break
			}
		}
		st := nd.Stats()
		if st.IntervalsIn != totalIn {
			return false
		}
		// Conservation: everything in is either still resident or removed.
		cur, _ := nd.QueueSizes()
		if cur+st.Eliminated+st.Pruned != totalIn {
			return false
		}
		// Progress: each detection prunes ≥ 1 interval.
		if st.Pruned < detections {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEliminationMonotone: feeding the same streams twice (fresh nodes)
// is deterministic — identical stats either way.
func TestQuickEliminationDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		run := func() Stats {
			streams := workload.GenerateChaotic(workload.ChaoticConfig{
				N: 3, Steps: 150, Seed: seed,
			}).Streams
			nd := NewNode(9, Config{N: 3, Strict: true}, false)
			for p := 0; p < 3; p++ {
				nd.AddChild(p)
			}
			for k := 0; ; k++ {
				progressed := false
				for p := 0; p < 3; p++ {
					if k < len(streams[p]) {
						nd.OnInterval(p, streams[p][k])
						progressed = true
					}
				}
				if !progressed {
					return nd.Stats()
				}
			}
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
