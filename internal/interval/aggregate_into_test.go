package interval

import (
	"math/rand"
	"reflect"
	"testing"

	"hierdet/internal/vclock"
)

// TestAggregateIntoMatchesAggregate checks the in-place form against the
// allocating form over randomized overlapping sets, including span dedup and
// base counting.
func TestAggregateIntoMatchesAggregate(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var scratch Interval
	for trial := 0; trial < 500; trial++ {
		n := 2 + r.Intn(6)
		k := 1 + r.Intn(5)
		xs := make([]Interval, k)
		for i := range xs {
			lo := make(vclock.VC, n)
			hi := make(vclock.VC, n)
			for c := 0; c < n; c++ {
				lo[c] = uint32(r.Intn(10))
				hi[c] = lo[c] + uint32(r.Intn(10))
			}
			xs[i] = New(r.Intn(n), i, lo, hi)
			if r.Intn(2) == 0 { // overlapping spans exercise the dedup
				xs[i].Span = append(xs[i].Span, r.Intn(n))
			}
			xs[i].Bases = 1 + r.Intn(3)
		}
		want := Aggregate(xs, 9, trial, false)
		AggregateInto(&scratch, xs, 9, trial, false)
		if !scratch.Lo.Equal(want.Lo) || !scratch.Hi.Equal(want.Hi) {
			t.Fatalf("bounds differ: %v..%v vs %v..%v", scratch.Lo, scratch.Hi, want.Lo, want.Hi)
		}
		if !reflect.DeepEqual(scratch.Span, want.Span) {
			t.Fatalf("span differs: %v vs %v", scratch.Span, want.Span)
		}
		if scratch.Bases != want.Bases || scratch.Origin != want.Origin ||
			scratch.Seq != want.Seq || !scratch.Agg {
			t.Fatalf("metadata differs: %+v vs %+v", scratch, want)
		}
	}
}

// TestAggregateIntoReusesStorage proves the scratch interval's backing arrays
// survive across calls — the property the detector's zero-alloc hot path
// rests on.
func TestAggregateIntoReusesStorage(t *testing.T) {
	xs := []Interval{
		New(0, 0, vclock.Of(1, 2, 3), vclock.Of(4, 5, 6)),
		New(1, 0, vclock.Of(2, 1, 3), vclock.Of(5, 4, 6)),
	}
	var scratch Interval
	AggregateInto(&scratch, xs, 7, 0, false)
	pLo, pHi := &scratch.Lo[0], &scratch.Hi[0]
	pSpan := &scratch.Span[0]
	AggregateInto(&scratch, xs, 7, 1, false)
	if &scratch.Lo[0] != pLo || &scratch.Hi[0] != pHi || &scratch.Span[0] != pSpan {
		t.Fatal("AggregateInto reallocated storage on the second call")
	}
}

func TestInsertUnique(t *testing.T) {
	var s []int
	for _, p := range []int{5, 1, 3, 5, 1, 2, 9, 3} {
		s = insertUnique(s, p)
	}
	want := []int{1, 2, 3, 5, 9}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("insertUnique built %v, want %v", s, want)
	}
}

// TestQueueCapacityStaysPowerOfTwo guards the mask-indexing invariant under
// interleaved enqueue/delete churn with wraparound.
func TestQueueCapacityStaysPowerOfTwo(t *testing.T) {
	q := NewQueue()
	next := 0
	pop := 0
	r := rand.New(rand.NewSource(3))
	for step := 0; step < 10000; step++ {
		if r.Intn(3) > 0 || q.Empty() {
			q.Enqueue(Interval{Seq: next})
			next++
		} else {
			if got := q.DeleteHead().Seq; got != pop {
				t.Fatalf("step %d: popped Seq %d, want %d", step, got, pop)
			}
			pop++
		}
		if c := len(q.buf); c != 0 && (c&(c-1)) != 0 {
			t.Fatalf("capacity %d is not a power of two", c)
		}
		if q.mask != len(q.buf)-1 && len(q.buf) != 0 {
			t.Fatalf("mask %d does not match capacity %d", q.mask, len(q.buf))
		}
	}
	for !q.Empty() {
		if got := q.DeleteHead().Seq; got != pop {
			t.Fatalf("drain: popped Seq %d, want %d", got, pop)
		}
		pop++
	}
	if pop != next {
		t.Fatalf("drained %d of %d enqueued", pop, next)
	}
}
