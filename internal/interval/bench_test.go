package interval

import (
	"fmt"
	"testing"

	"hierdet/internal/vclock"
)

func benchSet(n, k int) []Interval {
	set := make([]Interval, k)
	for i := 0; i < k; i++ {
		lo := make(vclock.VC, n)
		hi := make(vclock.VC, n)
		for c := 0; c < n; c++ {
			lo[c] = 10
			hi[c] = 20
		}
		lo[i%n]++
		hi[i%n]++
		set[i] = New(i%n, i/n, lo, hi)
	}
	return set
}

// BenchmarkAggregate measures the ⊓ operator — executed once per detection
// at every non-root node.
func BenchmarkAggregate(b *testing.B) {
	for _, size := range []struct{ n, k int }{{16, 4}, {64, 8}, {256, 16}} {
		set := benchSet(size.n, size.k)
		b.Run(fmt.Sprintf("n=%d/k=%d", size.n, size.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = Aggregate(set, 0, i, false)
			}
		})
	}
}

func BenchmarkOverlapAll(b *testing.B) {
	for _, size := range []struct{ n, k int }{{16, 4}, {64, 8}, {256, 16}} {
		set := benchSet(size.n, size.k)
		b.Run(fmt.Sprintf("n=%d/k=%d", size.n, size.k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = OverlapAll(set)
			}
		})
	}
}

// BenchmarkQueueCycle measures the enqueue/head/delete loop that dominates
// steady-state detection.
func BenchmarkQueueCycle(b *testing.B) {
	iv := New(0, 0, vclock.Of(1, 0), vclock.Of(2, 0))
	q := NewQueue()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(iv)
		_ = q.Head()
		_ = q.DeleteHead()
	}
}
