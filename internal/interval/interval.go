// Package interval models the intervals at the heart of interval-based
// predicate detection: maximal durations during which a process's local
// predicate holds, bounded by the vector timestamps of their first and last
// events (Garg–Waldecker 1996; Kshemkalyani 1996, 2011).
//
// The package also implements the paper's aggregation function ⊓ (Eq. 5/6):
// a set X of intervals satisfying overlap(X) collapses into a single interval
// whose lower bound is the component-wise maximum of the members' lower
// bounds and whose upper bound is the component-wise minimum of the members'
// upper bounds. By Theorem 1 the aggregate stands in for the whole set when
// detecting Definitely(Φ) in a strictly larger set, which is what lets the
// hierarchical algorithm pass one interval per subtree up the spanning tree.
package interval

import (
	"fmt"

	"hierdet/internal/vclock"
)

// Interval is a duration during which a local predicate held at one process
// (a base interval), or the ⊓-aggregation of a solution set detected in some
// subtree (an aggregated interval). Both kinds are identified by a pair of
// cuts of the execution:
//
//	Lo = min(x), the timestamp of the interval's first event (or the
//	     component-wise max of the members' Lo for an aggregate), and
//	Hi = max(x), the timestamp of its last event (or the component-wise min
//	     of the members' Hi).
//
// For a base interval Lo ≤ Hi component-wise; Theorem 2 shows the same holds
// for aggregates of overlapping sets.
type Interval struct {
	// Lo and Hi are the bounding cuts (min(x) and max(x)).
	Lo, Hi vclock.VC

	// Term is the timestamp of the falsifying event — the first event at
	// which the predicate was false again after the interval — or nil when
	// the execution ended with the predicate still true. The local state
	// "predicate holds" persists from min(x) until just before Term, so
	// Possibly(Φ) detection must compare against Term, not Hi: two
	// intervals can coexist in a consistent global state even when
	// max(x) ≺ min(y), as long as ¬(Term(x) ≺ min(y)). Definitely(Φ)
	// detection uses Hi per Eq. 2 and ignores Term.
	Term vclock.VC

	// Origin is the id of the process at which the interval occurred, or —
	// for an aggregated interval — the id of the subtree root that detected
	// the solution set and aggregated it.
	Origin int

	// Seq numbers the intervals produced at Origin, starting at 0. For two
	// intervals from the same origin, the one with the larger Seq is the
	// successor in the paper's succ relation: max(x) < min(succ(x)).
	Seq int

	// Agg marks aggregated intervals.
	Agg bool

	// Span lists the process ids whose local predicates the interval covers:
	// {Origin} for a base interval, the union of members' spans for an
	// aggregate. A root-level detection therefore reports exactly which
	// processes participated — the paper's "partial predicate" visibility.
	Span []int

	// Bases counts the base intervals aggregated inside (1 for a base
	// interval). Used by the complexity experiments.
	Bases int

	// Members optionally retains the aggregated solution set for ground-truth
	// verification in tests; production configurations leave it nil.
	Members []Interval
}

// New returns a base interval for process origin with bounds lo and hi.
func New(origin, seq int, lo, hi vclock.VC) Interval {
	return Interval{
		Lo:     lo,
		Hi:     hi,
		Origin: origin,
		Seq:    seq,
		Span:   []int{origin},
		Bases:  1,
	}
}

// WellFormed reports Lo ≤ Hi component-wise, which every base interval and
// every aggregate of an overlapping set satisfies (Theorem 2).
func (x Interval) WellFormed() bool { return x.Lo.LessEq(x.Hi) }

// CompactClone returns a deep copy of x whose Lo and Hi share one backing
// array — one allocation instead of two for the pair of clocks that every
// published aggregate must own. Term and Members are shared (both are
// immutable once set); Span is copied.
func (x Interval) CompactClone() Interval {
	out := x
	n := x.Lo.Len()
	backing := make(vclock.VC, n+x.Hi.Len())
	copy(backing[:n], x.Lo)
	copy(backing[n:], x.Hi)
	out.Lo, out.Hi = backing[:n:n], backing[n:]
	out.Span = append([]int(nil), x.Span...)
	return out
}

// String renders the interval for logs and test failures.
func (x Interval) String() string {
	kind := "ivl"
	if x.Agg {
		kind = "agg"
	}
	return fmt.Sprintf("%s{P%d#%d %v..%v span%v}", kind, x.Origin, x.Seq, x.Lo, x.Hi, x.Span)
}

// Overlap reports the pairwise Definitely condition between x and y:
//
//	min(x) < max(y)  ∧  min(y) < max(x)
//
// For a set this must hold between every ordered pair (paper Eq. 2). The two
// comparisons run as one fused component pass (vclock.CompareLess).
func Overlap(x, y Interval) bool {
	a, b := vclock.CompareLess(x.Lo, y.Hi, y.Lo, x.Hi)
	return a && b
}

// OverlapAll reports overlap(X): min(xᵢ) < max(xⱼ) for every ordered pair
// i ≠ j. A singleton set trivially overlaps; the empty set does not.
func OverlapAll(xs []Interval) bool {
	if len(xs) == 0 {
		return false
	}
	for i := range xs {
		for j := range xs {
			if i != j && !xs[i].Lo.Less(xs[j].Hi) {
				return false
			}
		}
	}
	return true
}

// Aggregate applies ⊓ to a non-empty solution set (paper Eq. 5/6):
//
//	min(⊓X)[k] = max over x∈X of min(x)[k]
//	max(⊓X)[k] = min over x∈X of max(x)[k]
//
// origin and seq identify the producing subtree root and its position in that
// root's succession of aggregates. The resulting span is the union of member
// spans and Bases the sum of member base counts. If keepMembers is true the
// solution set is retained on the aggregate for later ground-truth expansion.
//
// Aggregate panics on an empty set; callers only aggregate detected solution
// sets, which are never empty.
func Aggregate(xs []Interval, origin, seq int, keepMembers bool) Interval {
	var agg Interval
	AggregateInto(&agg, xs, origin, seq, keepMembers)
	return agg
}

// AggregateInto computes ⊓xs into *dst, reusing dst's Lo, Hi and Span
// backing arrays when they have capacity. It is the allocation-free form of
// Aggregate for callers that keep a scratch interval across detections (the
// detector runs one aggregation per detection, and at production sizes the
// two clock clones plus the span set dominated its cost). dst must not alias
// any member of xs. Term and Members are reset; Members is populated (fresh
// storage) only when keepMembers is set.
func AggregateInto(dst *Interval, xs []Interval, origin, seq int, keepMembers bool) {
	if len(xs) == 0 {
		panic("interval: Aggregate of empty set")
	}
	n := xs[0].Lo.Len()
	dst.Lo = sizedVC(dst.Lo, n)
	dst.Hi = sizedVC(dst.Hi, n)
	dst.Lo.CopyFrom(xs[0].Lo)
	dst.Hi.CopyFrom(xs[0].Hi)
	dst.Span = dst.Span[:0]
	bases := 0
	for i := range xs {
		x := &xs[i]
		if i > 0 {
			dst.Lo.MergeMax(x.Lo)
			dst.Hi.MergeMin(x.Hi)
		}
		bases += x.Bases
		for _, p := range x.Span {
			dst.Span = insertUnique(dst.Span, p)
		}
	}
	dst.Origin = origin
	dst.Seq = seq
	dst.Agg = true
	dst.Bases = bases
	dst.Term = nil
	dst.Members = nil
	if keepMembers {
		dst.Members = append([]Interval(nil), xs...)
	}
}

// AggregateFlat computes ⊓xs as a freshly published aggregate whose bounds
// live in a flat vclock.Store — the parallel engine's replacement for the
// AggregateInto-then-CompactClone pair. Two layout decisions make it cheap
// while producing component-for-component the same values as Aggregate:
//
//   - A singleton solution set aggregates to itself (⊓{x} = x), so instead of
//     cloning 2n clock components the result aliases x's bounds and span
//     directly. Bounds and spans are immutable once published, which makes the
//     sharing safe; leaf nodes — half the tree — detect only singletons, so
//     their entire aggregation cost disappears.
//
//   - A multi-member set merges directly into an arena-carved Lo/Hi pair via
//     the fused bounds kernels (vclock.BoundsInit/BoundsFold, vectorized on
//     amd64): the first two members seed the pair in one pass with no
//     intermediate copy, each further member folds in with one more pass,
//     and the aggregate is born compact — no scratch interval, no second
//     copy, one heap allocation per Store chunk instead of one per
//     detection.
//
// The caller owns st and must be the only goroutine allocating from it.
func AggregateFlat(st *vclock.Store, xs []Interval, origin, seq int, keepMembers bool) Interval {
	if len(xs) == 0 {
		panic("interval: Aggregate of empty set")
	}
	out := Interval{Origin: origin, Seq: seq, Agg: true}
	if keepMembers {
		out.Members = append([]Interval(nil), xs...)
	}
	if len(xs) == 1 {
		x := &xs[0]
		out.Lo, out.Hi = x.Lo, x.Hi
		out.Span = x.Span
		out.Bases = x.Bases
		return out
	}
	lo, hi := st.AllocPair()
	vclock.BoundsInit(lo, hi, xs[0].Lo, xs[0].Hi, xs[1].Lo, xs[1].Hi)
	for i := 2; i < len(xs); i++ {
		vclock.BoundsFold(lo, hi, xs[i].Lo, xs[i].Hi)
	}
	out.Lo, out.Hi = lo, hi
	spanCap, bases := 0, 0
	for i := range xs {
		spanCap += len(xs[i].Span)
		bases += xs[i].Bases
	}
	out.Span = mergeSpans(xs, spanCap)
	out.Bases = bases
	return out
}

// sizedVC resizes v to n components, reusing its backing array if possible.
func sizedVC(v vclock.VC, n int) vclock.VC {
	if cap(v) >= n {
		return v[:n]
	}
	return make(vclock.VC, n)
}

// insertUnique adds p to a sorted id list, keeping it sorted and duplicate
// free. Spans are bounded by subtree size and usually tiny, so the linear
// shift beats a set structure.
// mergeSpans unions the members' spans. Each Span is sorted and duplicate-
// free, so a k-way merge builds the union in one linear pass — at a tree
// root the union covers every process, and inserting BFS-interleaved subtree
// ids one at a time (insertUnique) degenerated to a quadratic memmove there.
func mergeSpans(xs []Interval, spanCap int) []int {
	var idxArr [8]int
	var idx []int
	if len(xs) <= len(idxArr) {
		idx = idxArr[:len(xs)]
	} else {
		idx = make([]int, len(xs))
	}
	span := make([]int, 0, spanCap)
	for {
		best, bestV := -1, 0
		for i := range xs {
			if idx[i] < len(xs[i].Span) {
				if v := xs[i].Span[idx[i]]; best == -1 || v < bestV {
					best, bestV = i, v
				}
			}
		}
		if best == -1 {
			return span
		}
		idx[best]++
		if len(span) == 0 || span[len(span)-1] != bestV {
			span = append(span, bestV)
		}
	}
}

func insertUnique(s []int, p int) []int {
	i := len(s)
	for i > 0 && s[i-1] > p {
		i--
	}
	if i > 0 && s[i-1] == p {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = p
	return s
}

// BaseIntervals recursively expands an interval into the base intervals it
// aggregates. It requires the interval chain to have been built with
// keepMembers — otherwise an aggregate is returned as-is. Tests use this to
// verify a reported detection against raw execution data (paper Eq. 2).
func BaseIntervals(x Interval) []Interval {
	if !x.Agg || x.Members == nil {
		return []Interval{x}
	}
	var out []Interval
	for _, m := range x.Members {
		out = append(out, BaseIntervals(m)...)
	}
	return out
}
