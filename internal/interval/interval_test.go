package interval

import (
	"math/rand"
	"testing"

	"hierdet/internal/vclock"
)

func TestNewBaseInterval(t *testing.T) {
	x := New(2, 0, vclock.Of(0, 0, 1, 0), vclock.Of(0, 0, 3, 0))
	if x.Agg {
		t.Error("base interval marked aggregated")
	}
	if x.Bases != 1 {
		t.Errorf("Bases = %d, want 1", x.Bases)
	}
	if len(x.Span) != 1 || x.Span[0] != 2 {
		t.Errorf("Span = %v, want [2]", x.Span)
	}
	if !x.WellFormed() {
		t.Error("interval with Lo ≤ Hi reported ill-formed")
	}
}

func TestWellFormedRejectsInverted(t *testing.T) {
	x := New(0, 0, vclock.Of(5, 0), vclock.Of(1, 0))
	if x.WellFormed() {
		t.Error("Lo > Hi reported well-formed")
	}
}

func TestOverlapPairwise(t *testing.T) {
	// Two intervals on 2 processes: x at P0 spans events 1..4, y at P1 spans
	// cuts that causally interleave with x.
	x := New(0, 0, vclock.Of(1, 0), vclock.Of(4, 2))
	y := New(1, 0, vclock.Of(0, 1), vclock.Of(2, 3))
	if !Overlap(x, y) || !Overlap(y, x) {
		t.Error("interleaved intervals should overlap (symmetrically)")
	}
	// z strictly after x: min(z) not before max(x) is fine, but max(x) < min(z)
	// kills overlap.
	z := New(1, 1, vclock.Of(5, 4), vclock.Of(6, 6))
	if Overlap(x, z) {
		t.Error("sequential intervals should not overlap")
	}
}

func TestOverlapAllEdgeCases(t *testing.T) {
	if OverlapAll(nil) {
		t.Error("empty set should not overlap")
	}
	x := New(0, 0, vclock.Of(1, 0), vclock.Of(3, 1))
	if !OverlapAll([]Interval{x}) {
		t.Error("singleton set should trivially overlap")
	}
}

func TestAggregateBounds(t *testing.T) {
	// Paper Eq. 5/6: lower bound is component-wise max of the Los, upper
	// bound is component-wise min of the His.
	x1 := New(0, 0, vclock.Of(1, 0, 0, 0), vclock.Of(5, 3, 2, 1))
	x2 := New(2, 0, vclock.Of(0, 1, 2, 0), vclock.Of(4, 4, 6, 2))
	agg := Aggregate([]Interval{x1, x2}, 7, 3, false)
	if !agg.Lo.Equal(vclock.Of(1, 1, 2, 0)) {
		t.Errorf("agg.Lo = %v, want [1 1 2 0]", agg.Lo)
	}
	if !agg.Hi.Equal(vclock.Of(4, 3, 2, 1)) {
		t.Errorf("agg.Hi = %v, want [4 3 2 1]", agg.Hi)
	}
	if !agg.Agg || agg.Origin != 7 || agg.Seq != 3 {
		t.Errorf("aggregate identity wrong: %v", agg)
	}
	if agg.Bases != 2 {
		t.Errorf("Bases = %d, want 2", agg.Bases)
	}
	if len(agg.Span) != 2 || agg.Span[0] != 0 || agg.Span[1] != 2 {
		t.Errorf("Span = %v, want [0 2]", agg.Span)
	}
	if agg.Members != nil {
		t.Error("Members retained without keepMembers")
	}
}

func TestAggregateKeepsMembers(t *testing.T) {
	x1 := New(0, 0, vclock.Of(1, 0), vclock.Of(3, 2))
	x2 := New(1, 0, vclock.Of(0, 1), vclock.Of(2, 3))
	agg := Aggregate([]Interval{x1, x2}, 5, 0, true)
	if len(agg.Members) != 2 {
		t.Fatalf("Members = %d, want 2", len(agg.Members))
	}
	bases := BaseIntervals(agg)
	if len(bases) != 2 {
		t.Fatalf("BaseIntervals = %d, want 2", len(bases))
	}
	// Nested aggregation expands fully.
	y := New(2, 0, vclock.Of(0, 0), vclock.Of(9, 9))
	top := Aggregate([]Interval{agg, y}, 6, 0, true)
	if got := BaseIntervals(top); len(got) != 3 {
		t.Fatalf("nested BaseIntervals = %d, want 3", len(got))
	}
}

func TestBaseIntervalsWithoutMembers(t *testing.T) {
	x1 := New(0, 0, vclock.Of(1, 0), vclock.Of(3, 2))
	x2 := New(1, 0, vclock.Of(0, 1), vclock.Of(2, 3))
	agg := Aggregate([]Interval{x1, x2}, 5, 0, false)
	got := BaseIntervals(agg)
	if len(got) != 1 || !got[0].Agg {
		t.Fatalf("opaque aggregate should expand to itself, got %v", got)
	}
}

func TestAggregatePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Aggregate(nil) did not panic")
		}
	}()
	Aggregate(nil, 0, 0, false)
}

func TestAggregateSpanDeduplicates(t *testing.T) {
	// Two aggregates sharing span members must union, not double-count.
	x1 := New(3, 0, vclock.Of(1, 1), vclock.Of(4, 4))
	a1 := Aggregate([]Interval{x1}, 9, 0, false)
	a2 := Aggregate([]Interval{x1, a1}, 9, 1, false)
	if len(a2.Span) != 1 || a2.Span[0] != 3 {
		t.Errorf("Span = %v, want [3]", a2.Span)
	}
}

func TestIntervalString(t *testing.T) {
	x := New(2, 1, vclock.Of(1, 0, 2), vclock.Of(3, 1, 4))
	s := x.String()
	if s != "ivl{P2#1 [1 0 2]..[3 1 4] span[2]}" {
		t.Fatalf("String = %q", s)
	}
	agg := Aggregate([]Interval{x}, 5, 0, false)
	if got := agg.String(); got[:3] != "agg" {
		t.Fatalf("aggregate String = %q", got)
	}
}

// TestFigure3Aggregation reconstructs the scenario of the paper's Figure 3:
// four processes; X = {x1 at P1, x2 at P3}, Y = {y1 at P2, y2 at P4};
// overlap(X) and overlap(Y) hold; the aggregates' overlap certifies
// overlap(X ∪ Y) (Theorem 1). Process ids here are 0-based.
func TestFigure3Aggregation(t *testing.T) {
	// Crafted timestamps: all four intervals mutually interleave — each
	// interval's start causally precedes every interval's end, via cross
	// messages among the four processes.
	x1 := New(0, 0, vclock.Of(2, 0, 1, 0), vclock.Of(6, 4, 5, 4))
	x2 := New(2, 0, vclock.Of(1, 0, 2, 0), vclock.Of(5, 4, 6, 4))
	y1 := New(1, 0, vclock.Of(0, 2, 1, 1), vclock.Of(5, 6, 5, 4))
	y2 := New(3, 0, vclock.Of(0, 1, 1, 2), vclock.Of(5, 4, 5, 6))

	X := []Interval{x1, x2}
	Y := []Interval{y1, y2}
	Z := []Interval{x1, x2, y1, y2}

	if !OverlapAll(X) {
		t.Fatal("overlap(X) should hold")
	}
	if !OverlapAll(Y) {
		t.Fatal("overlap(Y) should hold")
	}
	if !OverlapAll(Z) {
		t.Fatal("overlap(X ∪ Y) should hold")
	}

	aggX := Aggregate(X, 1, 0, false)
	aggY := Aggregate(Y, 3, 0, false)
	if !Overlap(aggX, aggY) {
		t.Fatal("aggregates should overlap when the union does (Theorem 1 ⇒)")
	}

	// Eq. 5/6 on X: component-wise max of mins / min of maxes.
	if !aggX.Lo.Equal(vclock.Of(2, 0, 2, 0)) {
		t.Errorf("min(⊓X) = %v, want [2 0 2 0]", aggX.Lo)
	}
	if !aggX.Hi.Equal(vclock.Of(5, 4, 5, 4)) {
		t.Errorf("max(⊓X) = %v, want [5 4 5 4]", aggX.Hi)
	}
}

// TestTheorem1Soundness checks the direction the detector relies on: if
// overlap(X), overlap(Y) and overlap(⊓X, ⊓Y) all hold, then overlap(X ∪ Y)
// holds — on randomized overlapping pulse constructions.
func TestTheorem1Soundness(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		n := 2 + r.Intn(5)
		X := randPulse(r, n, 1+r.Intn(3))
		Y := randPulse(r, n, 1+r.Intn(3))
		if !OverlapAll(X) || !OverlapAll(Y) {
			continue // pulse construction almost always overlaps; skip rest
		}
		aggX := Aggregate(X, 100, trial, false)
		aggY := Aggregate(Y, 101, trial, false)
		if Overlap(aggX, aggY) {
			Z := append(append([]Interval(nil), X...), Y...)
			if !OverlapAll(Z) {
				t.Fatalf("Theorem 1 soundness violated:\nX=%v\nY=%v", X, Y)
			}
		}
	}
}

// TestEq7AggregationAssociativity checks paper Eq. 7:
// ⊓(⊓X, ⊓Y) == ⊓(X ∪ Y) — aggregating aggregates equals aggregating the
// union, so multi-level aggregation loses nothing.
func TestEq7AggregationAssociativity(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 2000; trial++ {
		n := 2 + r.Intn(5)
		X := randPulse(r, n, 1+r.Intn(3))
		Y := randPulse(r, n, 1+r.Intn(3))
		aggX := Aggregate(X, 0, 0, false)
		aggY := Aggregate(Y, 1, 0, false)
		nested := Aggregate([]Interval{aggX, aggY}, 2, 0, false)
		Z := append(append([]Interval(nil), X...), Y...)
		flat := Aggregate(Z, 2, 0, false)
		if !nested.Lo.Equal(flat.Lo) || !nested.Hi.Equal(flat.Hi) {
			t.Fatalf("Eq. 7 violated: nested %v..%v vs flat %v..%v",
				nested.Lo, nested.Hi, flat.Lo, flat.Hi)
		}
	}
}

// randPulse builds k intervals over an n-process system whose bounds straddle
// a common causal frontier, so they mutually overlap with high probability:
// every Lo is below the frontier, every Hi above it.
func randPulse(r *rand.Rand, n, k int) []Interval {
	frontier := make(vclock.VC, n)
	for i := range frontier {
		frontier[i] = uint32(3 + r.Intn(4))
	}
	out := make([]Interval, k)
	for i := range out {
		lo := make(vclock.VC, n)
		hi := make(vclock.VC, n)
		for c := range lo {
			lo[c] = frontier[c] - uint32(1+r.Intn(3))
			hi[c] = frontier[c] + uint32(1+r.Intn(3))
		}
		out[i] = New(i%n, i/n, lo, hi)
	}
	return out
}
