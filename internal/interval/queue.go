package interval

// Queue is the per-source FIFO of intervals each detector node maintains —
// Q_0 for the node's own intervals and Q_1…Q_l for its children. Intervals
// from one source arrive in succession order (max(x) < min(succ(x))), so the
// head is always the earliest interval from that source still eligible for a
// solution set.
//
// The implementation is a growable ring buffer: detection repeatedly
// enqueues at the tail and deletes at the head, and a ring avoids the
// re-slicing churn of a plain slice queue. Capacities are powers of two so
// every index computation is a bitmask rather than a modulo — the ring is hit
// four times per interval on the steady-state hot path (enqueue, head, delete,
// and Eq. 9's successor peek), and an integer division there is measurable at
// scale. Queue is not safe for concurrent use; each detector node owns its
// queues and serializes access.
type Queue struct {
	buf []Interval
	// digs is a parallel ring of per-slot bound digests: digs[i] caches the
	// component-sum digests (vclock.VC.Sum) of buf[i].Lo and buf[i].Hi,
	// computed lazily on first consult (HeadDigests/DigestsAt) and retained
	// until the slot is vacated or overwritten. Laziness matters: queues
	// whose heads are never compared — every leaf detector's single queue,
	// and any slot eliminated before the comparison loops reach it — never
	// pay the two O(n) sums, and slots that are consulted pay them exactly
	// when the comparison loops are about to stream the same clocks anyway,
	// so the summing rides cache-warm data. Keeping digests beside the ring
	// (rather than inside Interval) leaves the Interval wire/value identity
	// untouched, so the sequential oracle's byte-identity contract is
	// unaffected.
	digs       []slotDigest
	mask       int // len(buf)-1; valid because len(buf) is a power of two
	head, size int

	// HighWater tracks the maximum number of intervals ever resident, for
	// the space-complexity experiments.
	HighWater int

	// gen counts mutations (enqueues and deletions). The parallel detection
	// engine snapshots it around every fanned-out comparison round and panics
	// if it moved: queues are single-writer by contract, and the epoch guard
	// turns a violation of that contract into an immediate, attributable
	// failure instead of a silent data race. Reads do not bump it.
	gen uint64

	// headGen counts head *changes* only: DeleteHead, and an Enqueue that
	// lands on an empty queue. Tail enqueues leave it alone. Two equal
	// observations therefore bracket a window in which Head() was the same
	// interval — the memoization key the cross-round verdict cache is built
	// on (gen would over-invalidate: a deep queue's tail grows constantly
	// while its head sits still).
	headGen uint64
}

// SlotDigest carries the component-sum digests of one queued interval's
// bounds.
type SlotDigest struct {
	Lo, Hi uint64
}

// slotDigest is one cache entry in the digest ring: the digests plus a
// validity bit. ok distinguishes "not yet computed" from a genuine all-zero
// digest (the zero clock sums to zero), so laziness never re-derives a
// cached value and never serves a stale one.
type slotDigest struct {
	SlotDigest
	ok bool
}

// NewQueue returns an empty queue.
func NewQueue() *Queue { return &Queue{} }

// Len returns the number of intervals currently enqueued.
func (q *Queue) Len() int { return q.size }

// Empty reports whether the queue holds no intervals.
func (q *Queue) Empty() bool { return q.size == 0 }

// Gen returns the queue's mutation epoch: it advances on every enqueue and
// deletion and is stable across reads, so two equal observations bracket a
// mutation-free window.
func (q *Queue) Gen() uint64 { return q.gen }

// HeadGen returns the queue's head epoch: it advances exactly when the head
// interval changes (a deletion, or an enqueue exposing a head on an empty
// queue), never on tail growth. Equal observations identify an unchanged
// head, which is what verdict memoization keys on.
func (q *Queue) HeadGen() uint64 { return q.headGen }

// Enqueue appends x at the tail.
func (q *Queue) Enqueue(x Interval) {
	q.gen++
	if q.size == 0 {
		q.headGen++
	}
	if q.size == len(q.buf) {
		q.grow()
	}
	i := (q.head + q.size) & q.mask
	q.buf[i] = x
	q.digs[i] = slotDigest{} // invalidate any stale cache for the slot
	q.size++
	if q.size > q.HighWater {
		q.HighWater = q.size
	}
}

// Head returns the interval at the front. It panics on an empty queue;
// callers always guard with Empty, mirroring Algorithm 1's explicit
// "if Q_a is not empty" tests.
func (q *Queue) Head() Interval {
	if q.size == 0 {
		panic("interval: Head of empty queue")
	}
	return q.buf[q.head]
}

// HeadRef returns a pointer to the interval at the front, valid only until
// the queue's next mutation. The parallel engine's snapshot loops read heads
// through it to skip the by-value copy of the full Interval struct that
// Head() costs on every head-to-head check; the epoch guard (Gen) already
// polices the no-mutation window the pointer depends on. It panics on an
// empty queue.
func (q *Queue) HeadRef() *Interval {
	if q.size == 0 {
		panic("interval: HeadRef of empty queue")
	}
	return &q.buf[q.head]
}

// DeleteHead removes the interval at the front. It panics on an empty queue.
func (q *Queue) DeleteHead() Interval {
	if q.size == 0 {
		panic("interval: DeleteHead of empty queue")
	}
	q.gen++
	q.headGen++
	x := q.buf[q.head]
	q.buf[q.head] = Interval{} // release references for GC
	q.digs[q.head] = slotDigest{}
	q.head = (q.head + 1) & q.mask
	q.size--
	return x
}

// HeadDigests returns the bound digests of the head interval, computing and
// caching them on first consult. It panics on an empty queue. Like every
// Queue method it is single-writer: concurrent readers must consult through
// a serial prefill (the parallel engine prefills heads on the owner
// goroutine before fanning out its comparison workers).
func (q *Queue) HeadDigests() SlotDigest {
	if q.size == 0 {
		panic("interval: HeadDigests of empty queue")
	}
	return q.digestAt(q.head)
}

// DigestsAt returns the bound digests of the i-th interval from the head,
// mirroring At, computing and caching them on first consult. The exact
// pruning rule's successor peek (Eq. 9) guards its comparison with
// DigestsAt(1).
func (q *Queue) DigestsAt(i int) SlotDigest {
	if i < 0 || i >= q.size {
		panic("interval: Queue.DigestsAt out of range")
	}
	return q.digestAt((q.head + i) & q.mask)
}

// digestAt returns the cached digests of ring slot j, filling the cache from
// the interval's bounds on first consult.
func (q *Queue) digestAt(j int) SlotDigest {
	d := &q.digs[j]
	if !d.ok {
		x := &q.buf[j]
		d.SlotDigest = SlotDigest{Lo: x.Lo.Sum(), Hi: x.Hi.Sum()}
		d.ok = true
	}
	return d.SlotDigest
}

// At returns the i-th interval from the head (At(0) == Head()). It panics
// when i is out of range. The exact pruning rule (Eq. 9) uses At(1) to read
// a head's already-arrived successor.
func (q *Queue) At(i int) Interval {
	if i < 0 || i >= q.size {
		panic("interval: Queue.At out of range")
	}
	return q.buf[(q.head+i)&q.mask]
}

// Snapshot returns the queued intervals in order, head first. Used by tests
// and diagnostics only.
func (q *Queue) Snapshot() []Interval {
	out := make([]Interval, q.size)
	for i := 0; i < q.size; i++ {
		out[i] = q.buf[(q.head+i)&q.mask]
	}
	return out
}

// grow doubles the ring (minimum 4 slots), keeping the capacity a power of
// two so mask indexing stays valid. The digest ring moves in lockstep.
func (q *Queue) grow() {
	next := make([]Interval, max(4, 2*len(q.buf)))
	nextDigs := make([]slotDigest, len(next))
	for i := 0; i < q.size; i++ {
		j := (q.head + i) & q.mask
		next[i] = q.buf[j]
		nextDigs[i] = q.digs[j]
	}
	q.buf = next
	q.digs = nextDigs
	q.mask = len(next) - 1
	q.head = 0
}
