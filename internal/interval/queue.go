package interval

// Queue is the per-source FIFO of intervals each detector node maintains —
// Q_0 for the node's own intervals and Q_1…Q_l for its children. Intervals
// from one source arrive in succession order (max(x) < min(succ(x))), so the
// head is always the earliest interval from that source still eligible for a
// solution set.
//
// The implementation is a growable ring buffer: detection repeatedly
// enqueues at the tail and deletes at the head, and a ring avoids the
// re-slicing churn of a plain slice queue. Capacities are powers of two so
// every index computation is a bitmask rather than a modulo — the ring is hit
// four times per interval on the steady-state hot path (enqueue, head, delete,
// and Eq. 9's successor peek), and an integer division there is measurable at
// scale. Queue is not safe for concurrent use; each detector node owns its
// queues and serializes access.
type Queue struct {
	buf        []Interval
	mask       int // len(buf)-1; valid because len(buf) is a power of two
	head, size int

	// HighWater tracks the maximum number of intervals ever resident, for
	// the space-complexity experiments.
	HighWater int

	// gen counts mutations (enqueues and deletions). The parallel detection
	// engine snapshots it around every fanned-out comparison round and panics
	// if it moved: queues are single-writer by contract, and the epoch guard
	// turns a violation of that contract into an immediate, attributable
	// failure instead of a silent data race. Reads do not bump it.
	gen uint64
}

// NewQueue returns an empty queue.
func NewQueue() *Queue { return &Queue{} }

// Len returns the number of intervals currently enqueued.
func (q *Queue) Len() int { return q.size }

// Empty reports whether the queue holds no intervals.
func (q *Queue) Empty() bool { return q.size == 0 }

// Gen returns the queue's mutation epoch: it advances on every enqueue and
// deletion and is stable across reads, so two equal observations bracket a
// mutation-free window.
func (q *Queue) Gen() uint64 { return q.gen }

// Enqueue appends x at the tail.
func (q *Queue) Enqueue(x Interval) {
	q.gen++
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.size)&q.mask] = x
	q.size++
	if q.size > q.HighWater {
		q.HighWater = q.size
	}
}

// Head returns the interval at the front. It panics on an empty queue;
// callers always guard with Empty, mirroring Algorithm 1's explicit
// "if Q_a is not empty" tests.
func (q *Queue) Head() Interval {
	if q.size == 0 {
		panic("interval: Head of empty queue")
	}
	return q.buf[q.head]
}

// HeadRef returns a pointer to the interval at the front, valid only until
// the queue's next mutation. The parallel engine's snapshot loops read heads
// through it to skip the by-value copy of the full Interval struct that
// Head() costs on every head-to-head check; the epoch guard (Gen) already
// polices the no-mutation window the pointer depends on. It panics on an
// empty queue.
func (q *Queue) HeadRef() *Interval {
	if q.size == 0 {
		panic("interval: HeadRef of empty queue")
	}
	return &q.buf[q.head]
}

// DeleteHead removes the interval at the front. It panics on an empty queue.
func (q *Queue) DeleteHead() Interval {
	if q.size == 0 {
		panic("interval: DeleteHead of empty queue")
	}
	q.gen++
	x := q.buf[q.head]
	q.buf[q.head] = Interval{} // release references for GC
	q.head = (q.head + 1) & q.mask
	q.size--
	return x
}

// At returns the i-th interval from the head (At(0) == Head()). It panics
// when i is out of range. The exact pruning rule (Eq. 9) uses At(1) to read
// a head's already-arrived successor.
func (q *Queue) At(i int) Interval {
	if i < 0 || i >= q.size {
		panic("interval: Queue.At out of range")
	}
	return q.buf[(q.head+i)&q.mask]
}

// Snapshot returns the queued intervals in order, head first. Used by tests
// and diagnostics only.
func (q *Queue) Snapshot() []Interval {
	out := make([]Interval, q.size)
	for i := 0; i < q.size; i++ {
		out[i] = q.buf[(q.head+i)&q.mask]
	}
	return out
}

// grow doubles the ring (minimum 4 slots), keeping the capacity a power of
// two so mask indexing stays valid.
func (q *Queue) grow() {
	next := make([]Interval, max(4, 2*len(q.buf)))
	for i := 0; i < q.size; i++ {
		next[i] = q.buf[(q.head+i)&q.mask]
	}
	q.buf = next
	q.mask = len(next) - 1
	q.head = 0
}
