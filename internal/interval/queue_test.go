package interval

import (
	"math/rand"
	"testing"

	"hierdet/internal/vclock"
)

func ivl(seq int) Interval {
	return New(0, seq, vclock.Of(uint32(seq*2+1)), vclock.Of(uint32(seq*2+2)))
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue()
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	for i := 0; i < 5; i++ {
		q.Enqueue(ivl(i))
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	for i := 0; i < 5; i++ {
		if h := q.Head(); h.Seq != i {
			t.Fatalf("Head.Seq = %d, want %d", h.Seq, i)
		}
		if d := q.DeleteHead(); d.Seq != i {
			t.Fatalf("DeleteHead.Seq = %d, want %d", d.Seq, i)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty after draining")
	}
}

func TestQueueWraparound(t *testing.T) {
	q := NewQueue()
	seq := 0
	next := 0
	// Interleave enqueues and deletes so the ring head walks around the
	// buffer repeatedly.
	r := rand.New(rand.NewSource(7))
	for step := 0; step < 10000; step++ {
		if q.Empty() || r.Intn(2) == 0 {
			q.Enqueue(ivl(seq))
			seq++
		} else {
			if d := q.DeleteHead(); d.Seq != next {
				t.Fatalf("step %d: deleted seq %d, want %d", step, d.Seq, next)
			}
			next++
		}
	}
	for !q.Empty() {
		if d := q.DeleteHead(); d.Seq != next {
			t.Fatalf("drain: deleted seq %d, want %d", d.Seq, next)
		}
		next++
	}
	if next != seq {
		t.Fatalf("drained %d, enqueued %d", next, seq)
	}
}

func TestQueueHighWater(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 10; i++ {
		q.Enqueue(ivl(i))
	}
	for i := 0; i < 8; i++ {
		q.DeleteHead()
	}
	q.Enqueue(ivl(10))
	if q.HighWater != 10 {
		t.Fatalf("HighWater = %d, want 10", q.HighWater)
	}
}

func TestQueueSnapshot(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 6; i++ {
		q.Enqueue(ivl(i))
	}
	q.DeleteHead()
	q.DeleteHead()
	snap := q.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(snap))
	}
	for i, x := range snap {
		if x.Seq != i+2 {
			t.Fatalf("Snapshot[%d].Seq = %d, want %d", i, x.Seq, i+2)
		}
	}
}

func TestQueuePanics(t *testing.T) {
	q := NewQueue()
	for name, f := range map[string]func(){
		"Head":       func() { q.Head() },
		"DeleteHead": func() { q.DeleteHead() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty queue did not panic", name)
				}
			}()
			f()
		}()
	}
}
