package interval

import (
	"math/rand"
	"testing"

	"hierdet/internal/vclock"
)

func ivl(seq int) Interval {
	return New(0, seq, vclock.Of(uint32(seq*2+1)), vclock.Of(uint32(seq*2+2)))
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue()
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	for i := 0; i < 5; i++ {
		q.Enqueue(ivl(i))
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	for i := 0; i < 5; i++ {
		if h := q.Head(); h.Seq != i {
			t.Fatalf("Head.Seq = %d, want %d", h.Seq, i)
		}
		if d := q.DeleteHead(); d.Seq != i {
			t.Fatalf("DeleteHead.Seq = %d, want %d", d.Seq, i)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty after draining")
	}
}

func TestQueueWraparound(t *testing.T) {
	q := NewQueue()
	seq := 0
	next := 0
	// Interleave enqueues and deletes so the ring head walks around the
	// buffer repeatedly.
	r := rand.New(rand.NewSource(7))
	for step := 0; step < 10000; step++ {
		if q.Empty() || r.Intn(2) == 0 {
			q.Enqueue(ivl(seq))
			seq++
		} else {
			if d := q.DeleteHead(); d.Seq != next {
				t.Fatalf("step %d: deleted seq %d, want %d", step, d.Seq, next)
			}
			next++
		}
	}
	for !q.Empty() {
		if d := q.DeleteHead(); d.Seq != next {
			t.Fatalf("drain: deleted seq %d, want %d", d.Seq, next)
		}
		next++
	}
	if next != seq {
		t.Fatalf("drained %d, enqueued %d", next, seq)
	}
}

func TestQueueHighWater(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 10; i++ {
		q.Enqueue(ivl(i))
	}
	for i := 0; i < 8; i++ {
		q.DeleteHead()
	}
	q.Enqueue(ivl(10))
	if q.HighWater != 10 {
		t.Fatalf("HighWater = %d, want 10", q.HighWater)
	}
}

func TestQueueSnapshot(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 6; i++ {
		q.Enqueue(ivl(i))
	}
	q.DeleteHead()
	q.DeleteHead()
	snap := q.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(snap))
	}
	for i, x := range snap {
		if x.Seq != i+2 {
			t.Fatalf("Snapshot[%d].Seq = %d, want %d", i, x.Seq, i+2)
		}
	}
}

// TestQueueDigestsAndHeadGen drives a long random enqueue/delete schedule and
// checks, at every step, that the per-slot digests equal the recomputed bound
// sums and that HeadGen advances exactly when the head interval changes —
// never on a tail enqueue. Digests fill lazily on consult; consulting every
// slot every step exercises both the first fill and the cached reads, and a
// slot reused after DeleteHead/grow would surface any stale cache as a
// mismatch against the recomputed sums.
func TestQueueDigestsAndHeadGen(t *testing.T) {
	q := NewQueue()
	r := rand.New(rand.NewSource(23))
	seq := 0
	var lastHeadGen uint64
	var lastHeadSeq = -1
	for step := 0; step < 5000; step++ {
		if q.Empty() || r.Intn(2) == 0 {
			wasEmpty := q.Empty()
			q.Enqueue(ivl(seq))
			seq++
			if wasEmpty && q.HeadGen() == lastHeadGen {
				t.Fatalf("step %d: enqueue onto empty queue did not advance HeadGen", step)
			}
			if !wasEmpty && q.HeadGen() != lastHeadGen && lastHeadSeq >= 0 {
				t.Fatalf("step %d: tail enqueue advanced HeadGen", step)
			}
		} else {
			q.DeleteHead()
			if q.HeadGen() == lastHeadGen {
				t.Fatalf("step %d: DeleteHead did not advance HeadGen", step)
			}
		}
		lastHeadGen = q.HeadGen()
		if q.Empty() {
			lastHeadSeq = -1
			continue
		}
		lastHeadSeq = q.Head().Seq
		for i := 0; i < q.Len(); i++ {
			x, d := q.At(i), q.DigestsAt(i)
			if d.Lo != x.Lo.Sum() || d.Hi != x.Hi.Sum() {
				t.Fatalf("step %d slot %d: digests (%d,%d), recomputed (%d,%d)",
					step, i, d.Lo, d.Hi, x.Lo.Sum(), x.Hi.Sum())
			}
		}
		if hd := q.HeadDigests(); hd != q.DigestsAt(0) {
			t.Fatalf("step %d: HeadDigests %v != DigestsAt(0) %v", step, hd, q.DigestsAt(0))
		}
	}
}

func TestQueuePanics(t *testing.T) {
	q := NewQueue()
	for name, f := range map[string]func(){
		"Head":       func() { q.Head() },
		"DeleteHead": func() { q.DeleteHead() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty queue did not panic", name)
				}
			}()
			f()
		}()
	}
}
