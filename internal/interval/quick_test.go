package interval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hierdet/internal/vclock"
)

// quick-driven properties of the aggregation operator and the overlap
// relation, over randomized pulse constructions (seed-parameterized so
// testing/quick explores the space).

func pulseFromSeed(seed int64, n, k int) []Interval {
	r := rand.New(rand.NewSource(seed))
	frontier := make(vclock.VC, n)
	for i := range frontier {
		frontier[i] = uint32(4 + r.Intn(4))
	}
	out := make([]Interval, k)
	for i := range out {
		lo := make(vclock.VC, n)
		hi := make(vclock.VC, n)
		for c := range lo {
			lo[c] = frontier[c] - uint32(1+r.Intn(3))
			hi[c] = frontier[c] + uint32(1+r.Intn(3))
		}
		out[i] = New(i%n, i/n, lo, hi)
	}
	return out
}

func TestQuickAggregateBoundsAreTight(t *testing.T) {
	f := func(seed int64, nSel, kSel uint8) bool {
		n := 2 + int(nSel%5)
		k := 1 + int(kSel%5)
		set := pulseFromSeed(seed, n, k)
		agg := Aggregate(set, 0, 0, false)
		// Lower bound dominates every member's Lo; upper is dominated by
		// every member's Hi (Eq. 5/6 as lattice bounds).
		for _, x := range set {
			if !x.Lo.LessEq(agg.Lo) {
				return false
			}
			if !agg.Hi.LessEq(x.Hi) {
				return false
			}
		}
		// And they are tight: each component of agg.Lo equals some member's
		// Lo component, likewise agg.Hi.
		for c := 0; c < n; c++ {
			foundLo, foundHi := false, false
			for _, x := range set {
				if x.Lo[c] == agg.Lo[c] {
					foundLo = true
				}
				if x.Hi[c] == agg.Hi[c] {
					foundHi = true
				}
			}
			if !foundLo || !foundHi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAggregateIdempotent(t *testing.T) {
	f := func(seed int64, nSel uint8) bool {
		n := 2 + int(nSel%5)
		set := pulseFromSeed(seed, n, 3)
		a1 := Aggregate(set, 0, 0, false)
		a2 := Aggregate([]Interval{a1}, 0, 1, false)
		return a2.Lo.Equal(a1.Lo) && a2.Hi.Equal(a1.Hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAggregateOrderInvariant(t *testing.T) {
	f := func(seed int64) bool {
		set := pulseFromSeed(seed, 4, 4)
		rev := make([]Interval, len(set))
		for i, x := range set {
			rev[len(set)-1-i] = x
		}
		a := Aggregate(set, 0, 0, false)
		b := Aggregate(rev, 0, 0, false)
		if !a.Lo.Equal(b.Lo) || !a.Hi.Equal(b.Hi) || a.Bases != b.Bases {
			return false
		}
		if len(a.Span) != len(b.Span) {
			return false
		}
		for i := range a.Span {
			if a.Span[i] != b.Span[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPulsesAlwaysOverlapAndAggregateWellFormed(t *testing.T) {
	// Straddling a common frontier guarantees pairwise overlap; by Theorem 2
	// the aggregate of an overlapping set is then well-formed (Lo ≤ Hi).
	f := func(seed int64, kSel uint8) bool {
		k := 2 + int(kSel%6)
		set := pulseFromSeed(seed, 4, k)
		if !OverlapAll(set) {
			return false
		}
		return Aggregate(set, 0, 0, false).WellFormed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
