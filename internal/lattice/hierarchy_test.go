package lattice

import (
	"math/rand"
	"testing"

	"hierdet/internal/core"
	"hierdet/internal/interval"
	"hierdet/internal/procsim"
)

// TestHierarchyAgreesWithLattice validates the full hierarchical pipeline
// against the independent lattice detector: on random small executions, the
// hierarchical detector (two-level tree, aggregation, repeated detection)
// reports at least one root detection exactly when Cooper–Marzullo
// Definitely(Φ) holds for the recorded execution. The two share neither code
// nor algorithmic idea, so agreement across hundreds of trials validates the
// whole stack — interval extraction, aggregation (Theorem 1), queues and
// elimination.
func TestHierarchyAgreesWithLattice(t *testing.T) {
	const n = 4
	held := 0
	for trial := 0; trial < 300; trial++ {
		r := rand.New(rand.NewSource(int64(trial) + 5000))

		// Hierarchy: root 0 with child 1; node 1 has children 2, 3.
		cfg := core.Config{N: n, Strict: true, KeepMembers: true}
		root := core.NewNode(0, cfg, true)
		root.AddChild(1)
		mid := core.NewNode(1, cfg, true)
		mid.AddChild(2)
		mid.AddChild(3)
		leaves := map[int]*core.Node{
			2: core.NewNode(2, cfg, true),
			3: core.NewNode(3, cfg, true),
		}
		rootDetections := 0
		feedRoot := func(src int, iv interval.Interval) {
			for _, d := range root.OnInterval(src, iv) {
				rootDetections++
				if !interval.OverlapAll(interval.BaseIntervals(d.Agg)) {
					t.Fatalf("trial %d: false detection", trial)
				}
			}
		}
		feedMid := func(src int, iv interval.Interval) {
			for _, d := range mid.OnInterval(src, iv) {
				feedRoot(1, d.Agg)
			}
		}
		emit := func(iv interval.Interval) {
			switch iv.Origin {
			case 0:
				feedRoot(0, iv)
			case 1:
				feedMid(1, iv)
			default:
				for _, d := range leaves[iv.Origin].OnInterval(iv.Origin, iv) {
					feedMid(iv.Origin, d.Agg)
				}
			}
		}

		rec := NewRecorder(n)
		procs := make([]*procsim.Process, n)
		for i := 0; i < n; i++ {
			procs[i] = procsim.New(i, n, emit)
			rec.Attach(procs[i])
		}

		// Random execution.
		type msg struct {
			to    int
			stamp []uint32
		}
		var inflight []msg
		for step := 0; step < 40; step++ {
			p := r.Intn(n)
			// Bias predicates toward true so four-way simultaneity is
			// reachable; falling false stays rare.
			switch {
			case !procs[p].Predicate() && r.Float64() < 0.7:
				procs[p].SetPredicate(true)
			case procs[p].Predicate() && r.Float64() < 0.15:
				procs[p].SetPredicate(false)
			}
			switch {
			case r.Float64() < 0.3:
				to := (p + 1 + r.Intn(n-1)) % n
				inflight = append(inflight, msg{to: to, stamp: procs[p].PrepareSend()})
			case len(inflight) > 0 && r.Float64() < 0.5:
				k := r.Intn(len(inflight))
				m := inflight[k]
				inflight = append(inflight[:k], inflight[k+1:]...)
				procs[m.to].Receive(m.stamp)
			default:
				procs[p].Internal()
			}
		}
		for _, m := range inflight {
			procs[m.to].Receive(m.stamp)
		}
		for _, p := range procs {
			p.SetPredicate(false)
			p.Internal()
			p.Finish()
		}

		def, err := Definitely(rec.Recording(), Conjunctive())
		if err != nil {
			t.Fatal(err)
		}
		if def != (rootDetections > 0) {
			t.Fatalf("trial %d: lattice Definitely=%v, hierarchical detections=%d",
				trial, def, rootDetections)
		}
		if def {
			held++
		}
	}
	if held == 0 || held == 300 {
		t.Fatalf("degenerate workload: Definitely held in %d/300 trials", held)
	}
}
