// Package lattice implements Cooper & Marzullo's global-state-lattice
// detection of Possibly(Φ) and Definitely(Φ) (the paper's references [5],
// [6]) over a recorded execution, for an arbitrary predicate over the
// processes' local states — including the relational predicates of §I (e.g.
// "avg(xᵢ, yⱼ) = 35") that the interval-based algorithms cannot handle.
//
// The algorithm enumerates consistent cuts of the execution: a cut assigns
// each process a prefix of its events, and is consistent when no included
// event causally depends on an excluded one (checked with vector clocks).
// Possibly(Φ) holds iff some consistent cut satisfies Φ; Definitely(Φ)
// holds iff every maximal path through the lattice (every consistent
// observation) passes through a Φ-cut.
//
// The cost is exponential in the worst case — detecting relational
// predicates is NP-complete, as the paper notes — so this detector is for
// small recorded executions. Its role in this repository is twofold:
//
//   - an *independent* ground truth: it shares no code or algorithmic idea
//     with the interval-based detectors, so agreement on conjunctive
//     predicates is strong evidence both are right;
//   - the relational-predicate capability the interval algorithms trade
//     away for tractability, completing the survey of §I.
package lattice

import (
	"errors"
	"fmt"

	"hierdet/internal/vclock"
)

// ErrTooLarge is returned when a query would explore more consistent cuts
// than MaxCuts — the algorithm is exponential and silently grinding through
// a huge lattice is never what the caller wants.
var ErrTooLarge = errors.New("lattice: state budget exceeded (execution too large for exhaustive detection)")

// MaxCuts bounds the number of consistent cuts a single Possibly or
// Definitely query may visit. A variable so callers (and tests) can tune it.
var MaxCuts = 2_000_000

// Event is one recorded event at a process: its vector timestamp and the
// process's local state immediately after the event.
type Event struct {
	VC vclock.VC
	// Pred is the local predicate's value at this event.
	Pred bool
	// Value is an application variable (for relational predicates).
	Value float64
}

// Recording is a full execution record: every event of every process, in
// per-process order. Build one by hand or with Recorder.
type Recording struct {
	N      int
	Events [][]Event
	// Initial holds each process's state before its first event.
	Initial []Event
}

// LocalState is a process's state at a cut: the fields of the last included
// event (or the initial state).
type LocalState struct {
	Pred  bool
	Value float64
}

// Cut assigns each process the number of its events included (0 = none).
type Cut []int

// Predicate evaluates a global predicate on the per-process states at a cut.
type Predicate func(states []LocalState) bool

// Conjunctive returns the predicate ∧ᵢ predᵢ — true when every process's
// local predicate holds.
func Conjunctive() Predicate {
	return func(states []LocalState) bool {
		for _, s := range states {
			if !s.Pred {
				return false
			}
		}
		return true
	}
}

// validate checks recording invariants once per query.
func (r *Recording) validate() error {
	if r.N <= 0 || len(r.Events) != r.N {
		return fmt.Errorf("lattice: recording has n=%d with %d event streams", r.N, len(r.Events))
	}
	if r.Initial != nil && len(r.Initial) != r.N {
		return fmt.Errorf("lattice: %d initial states for %d processes", len(r.Initial), r.N)
	}
	for p, evs := range r.Events {
		for k, e := range evs {
			if e.VC.Len() != r.N {
				return fmt.Errorf("lattice: event %d of process %d has clock size %d", k, p, e.VC.Len())
			}
			if int(e.VC[p]) != k+1 {
				return fmt.Errorf("lattice: event %d of process %d has own component %d, want %d",
					k, p, e.VC[p], k+1)
			}
		}
	}
	return nil
}

// consistent reports whether the cut includes every causal dependency of its
// included events: for each process p with k_p ≥ 1 events included, the last
// included event's knowledge of q must not exceed k_q.
func (r *Recording) consistent(cut Cut) bool {
	for p := range cut {
		if cut[p] == 0 {
			continue
		}
		vc := r.Events[p][cut[p]-1].VC
		for q := range cut {
			if int(vc[q]) > cut[q] {
				return false
			}
		}
	}
	return true
}

// states materializes the per-process local states at a cut.
func (r *Recording) states(cut Cut) []LocalState {
	out := make([]LocalState, r.N)
	for p := range cut {
		switch {
		case cut[p] > 0:
			e := r.Events[p][cut[p]-1]
			out[p] = LocalState{Pred: e.Pred, Value: e.Value}
		case r.Initial != nil:
			out[p] = LocalState{Pred: r.Initial[p].Pred, Value: r.Initial[p].Value}
		}
	}
	return out
}

func (r *Recording) level(cut Cut) int {
	total := 0
	for _, k := range cut {
		total += k
	}
	return total
}

func (r *Recording) totalEvents() int {
	total := 0
	for _, evs := range r.Events {
		total += len(evs)
	}
	return total
}

func key(cut Cut) string {
	b := make([]byte, 0, len(cut)*3)
	for _, k := range cut {
		b = append(b, byte(k), byte(k>>8), ',')
	}
	return string(b)
}

// Possibly reports whether some consistent cut of the execution satisfies
// pred — there is a consistent observation in which Φ held at some global
// state.
func Possibly(r *Recording, pred Predicate) (bool, error) {
	if err := r.validate(); err != nil {
		return false, err
	}
	// BFS over the cut lattice from the initial cut.
	start := make(Cut, r.N)
	seen := map[string]bool{key(start): true}
	frontier := []Cut{start}
	visited := 0
	for len(frontier) > 0 {
		var next []Cut
		for _, cut := range frontier {
			if visited++; visited > MaxCuts {
				return false, ErrTooLarge
			}
			if pred(r.states(cut)) {
				return true, nil
			}
			for p := 0; p < r.N; p++ {
				if cut[p] >= len(r.Events[p]) {
					continue
				}
				adv := append(Cut(nil), cut...)
				adv[p]++
				k := key(adv)
				if seen[k] || !r.consistent(adv) {
					continue
				}
				seen[k] = true
				next = append(next, adv)
			}
		}
		frontier = next
	}
	return false, nil
}

// Definitely reports whether every consistent observation of the execution
// passes through a cut satisfying pred (Cooper–Marzullo level sweep: track
// the cuts reachable without having satisfied Φ; if that set empties before
// the final cut, Φ was unavoidable).
func Definitely(r *Recording, pred Predicate) (bool, error) {
	if err := r.validate(); err != nil {
		return false, err
	}
	total := r.totalEvents()
	start := make(Cut, r.N)
	current := []Cut{start}
	if pred(r.states(start)) {
		// Every observation begins at the initial cut.
		return true, nil
	}
	visited := 0
	for level := 1; level <= total; level++ {
		seen := map[string]bool{}
		var next []Cut
		for _, cut := range current {
			if visited++; visited > MaxCuts {
				return false, ErrTooLarge
			}
			for p := 0; p < r.N; p++ {
				if cut[p] >= len(r.Events[p]) {
					continue
				}
				adv := append(Cut(nil), cut...)
				adv[p]++
				k := key(adv)
				if seen[k] || !r.consistent(adv) {
					continue
				}
				seen[k] = true
				if pred(r.states(adv)) {
					continue // this branch satisfied Φ; drop it
				}
				next = append(next, adv)
			}
		}
		if len(next) == 0 {
			// No observation can reach level `level` without meeting Φ.
			return true, nil
		}
		current = next
	}
	// Some observation reached the final cut without ever satisfying Φ.
	return false, nil
}
