package lattice

import (
	"math"
	"math/rand"
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/oneshot"
	"hierdet/internal/procsim"
	"hierdet/internal/vclock"
)

// rec2 builds a 2-process recording from event tuples.
func rec2(p0, p1 []Event) *Recording {
	return &Recording{N: 2, Events: [][]Event{p0, p1}, Initial: make([]Event, 2)}
}

func TestPossiblyConcurrentTruth(t *testing.T) {
	// P0 true at its first event, P1 true at its first event; no messages —
	// the events are concurrent, so some observation sees both at once:
	// Possibly holds. But each predicate falls false at the second event,
	// and an observation can interleave them apart: Definitely fails.
	r := rec2(
		[]Event{{VC: vclock.Of(1, 0), Pred: true}, {VC: vclock.Of(2, 0), Pred: false}},
		[]Event{{VC: vclock.Of(0, 1), Pred: true}, {VC: vclock.Of(0, 2), Pred: false}},
	)
	pos, err := Possibly(r, Conjunctive())
	if err != nil || !pos {
		t.Fatalf("Possibly = %v, %v; want true", pos, err)
	}
	def, err := Definitely(r, Conjunctive())
	if err != nil || def {
		t.Fatalf("Definitely = %v, %v; want false", def, err)
	}
}

func TestDefinitelyForcedOverlap(t *testing.T) {
	// P0 true during events 1..3; P1's only event is a receive of P0's
	// message sent while true, and P1 is true at it; P0 still true after.
	// Every observation must pass through a cut with both true.
	r := rec2(
		[]Event{
			{VC: vclock.Of(1, 0), Pred: true},
			{VC: vclock.Of(2, 0), Pred: true}, // send
			{VC: vclock.Of(3, 1), Pred: true}, // receive P1's reply
			{VC: vclock.Of(4, 1), Pred: false},
		},
		[]Event{
			{VC: vclock.Of(2, 1), Pred: true}, // receive, also a send back
			{VC: vclock.Of(2, 2), Pred: false},
		},
	)
	def, err := Definitely(r, Conjunctive())
	if err != nil || !def {
		t.Fatalf("Definitely = %v, %v; want true", def, err)
	}
}

func TestNeitherHolds(t *testing.T) {
	// P0's truth wholly precedes P1's: a message forces the order, so no
	// cut sees both true.
	r := rec2(
		[]Event{
			{VC: vclock.Of(1, 0), Pred: true},
			{VC: vclock.Of(2, 0), Pred: false}, // send (pred already false)
		},
		[]Event{
			{VC: vclock.Of(2, 1), Pred: true}, // receive
			{VC: vclock.Of(2, 2), Pred: false},
		},
	)
	if pos, _ := Possibly(r, Conjunctive()); pos {
		t.Fatal("Possibly should fail for causally ordered truths")
	}
	if def, _ := Definitely(r, Conjunctive()); def {
		t.Fatal("Definitely should fail")
	}
}

func TestInitialCutSatisfies(t *testing.T) {
	r := rec2(
		[]Event{{VC: vclock.Of(1, 0), Pred: false}},
		[]Event{{VC: vclock.Of(0, 1), Pred: false}},
	)
	r.Initial = []Event{{Pred: true}, {Pred: true}}
	def, err := Definitely(r, Conjunctive())
	if err != nil || !def {
		t.Fatalf("Definitely = %v, %v; want true (initial cut satisfies)", def, err)
	}
}

func TestRelationalPredicate(t *testing.T) {
	// The paper's §I example: Φ = "avg(x_i, y_j) = 35". x and y evolve
	// concurrently; some state combinations average to 35 and some
	// observations avoid all of them.
	r := rec2(
		[]Event{
			{VC: vclock.Of(1, 0), Value: 10},
			{VC: vclock.Of(2, 0), Value: 40},
			{VC: vclock.Of(3, 0), Value: 0},
		},
		[]Event{
			{VC: vclock.Of(0, 1), Value: 30},
			{VC: vclock.Of(0, 2), Value: 60},
		},
	)
	avg35 := func(states []LocalState) bool {
		return math.Abs((states[0].Value+states[1].Value)/2-35) < 1e-9
	}
	pos, err := Possibly(r, avg35)
	if err != nil || !pos {
		t.Fatalf("Possibly(avg=35) = %v, %v; want true (x=40, y=30)", pos, err)
	}
	// avg = 100 is unreachable.
	avg100 := func(states []LocalState) bool {
		return (states[0].Value+states[1].Value)/2 == 100
	}
	if pos, _ := Possibly(r, avg100); pos {
		t.Fatal("Possibly(avg=100) should fail")
	}
	// The observation x:10→40→0 before any y event avoids every 35-cut.
	if def, _ := Definitely(r, avg35); def {
		t.Fatal("Definitely(avg=35) should fail")
	}
}

func TestStateBudget(t *testing.T) {
	old := MaxCuts
	MaxCuts = 50
	defer func() { MaxCuts = old }()
	// Two processes, 20 fully concurrent events each: 441 consistent cuts,
	// far over the lowered budget.
	mk := func(p int) []Event {
		evs := make([]Event, 20)
		for k := range evs {
			vc := vclock.New(2)
			vc[p] = uint32(k + 1)
			evs[k] = Event{VC: vc}
		}
		return evs
	}
	r := rec2(mk(0), mk(1))
	never := func([]LocalState) bool { return false }
	if _, err := Possibly(r, never); err != ErrTooLarge {
		t.Fatalf("Possibly err = %v, want ErrTooLarge", err)
	}
	if _, err := Definitely(r, never); err != ErrTooLarge {
		t.Fatalf("Definitely err = %v, want ErrTooLarge", err)
	}
}

func TestValidation(t *testing.T) {
	bad := &Recording{N: 2, Events: [][]Event{{}}}
	if _, err := Possibly(bad, Conjunctive()); err == nil {
		t.Error("stream-count mismatch accepted")
	}
	badClock := rec2([]Event{{VC: vclock.Of(5, 0)}}, nil)
	if _, err := Definitely(badClock, Conjunctive()); err == nil {
		t.Error("broken own-component accepted")
	}
	if badClock2 := rec2([]Event{{VC: vclock.Of(1)}}, nil); true {
		if _, err := Possibly(badClock2, Conjunctive()); err == nil {
			t.Error("wrong clock size accepted")
		}
	}
}

// TestCrossValidationAgainstIntervalDetectors is the headline test: on
// random small executions, the lattice detectors (Cooper–Marzullo, state
// enumeration) and the interval-based one-shot detectors (Garg–Waldecker,
// queues and timestamps) must agree on whether Possibly(Φ) and
// Definitely(Φ) hold. The two families share no code and no algorithmic
// idea.
func TestCrossValidationAgainstIntervalDetectors(t *testing.T) {
	const n = 3
	agreePos, agreeDef, holds := 0, 0, 0
	for trial := 0; trial < 200; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))

		rec := NewRecorder(n)
		procs := make([]*procsim.Process, n)
		def := oneshot.NewDefinitely([]int{0, 1, 2})
		pos := oneshot.NewPossibly([]int{0, 1, 2})
		emit := func(iv interval.Interval) {
			def.OnInterval(iv.Origin, iv)
			pos.OnInterval(iv.Origin, iv)
		}
		for i := 0; i < n; i++ {
			procs[i] = procsim.New(i, n, emit)
			rec.Attach(procs[i])
		}

		// A short random execution with random toggles and messages.
		type msg struct {
			to    int
			stamp []uint32
		}
		var inflight []msg
		for step := 0; step < 25; step++ {
			p := r.Intn(n)
			if r.Float64() < 0.4 {
				procs[p].SetPredicate(!procs[p].Predicate())
			}
			switch {
			case r.Float64() < 0.3:
				to := (p + 1 + r.Intn(n-1)) % n
				inflight = append(inflight, msg{to: to, stamp: procs[p].PrepareSend()})
			case len(inflight) > 0 && r.Float64() < 0.5:
				k := r.Intn(len(inflight))
				m := inflight[k]
				inflight = append(inflight[:k], inflight[k+1:]...)
				procs[m.to].Receive(m.stamp)
			default:
				procs[p].Internal()
			}
		}
		for _, m := range inflight {
			procs[m.to].Receive(m.stamp)
		}
		for _, p := range procs {
			p.SetPredicate(false)
			p.Internal() // close any open interval with a final event
			p.Finish()
		}

		latticePos, err := Possibly(rec.Recording(), Conjunctive())
		if err != nil {
			t.Fatal(err)
		}
		latticeDef, err := Definitely(rec.Recording(), Conjunctive())
		if err != nil {
			t.Fatal(err)
		}
		if latticePos != pos.Done() {
			t.Fatalf("trial %d: lattice Possibly=%v, interval Possibly=%v", trial, latticePos, pos.Done())
		}
		if latticeDef != def.Done() {
			t.Fatalf("trial %d: lattice Definitely=%v, interval Definitely=%v", trial, latticeDef, def.Done())
		}
		agreePos++
		agreeDef++
		if latticeDef {
			holds++
		}
	}
	if holds == 0 || holds == 200 {
		t.Fatalf("degenerate workload: Definitely held in %d/200 trials", holds)
	}
}
