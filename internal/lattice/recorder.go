package lattice

import (
	"fmt"

	"hierdet/internal/procsim"
	"hierdet/internal/vclock"
)

// Recorder captures a full execution from instrumented processes for lattice
// detection. Attach it to every process before any event executes.
type Recorder struct {
	rec Recording
}

// NewRecorder returns a recorder for an n-process system.
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		panic(fmt.Sprintf("lattice: invalid system size %d", n))
	}
	return &Recorder{rec: Recording{
		N:       n,
		Events:  make([][]Event, n),
		Initial: make([]Event, n),
	}}
}

// Attach hooks the recorder into a process's event stream.
func (r *Recorder) Attach(p *procsim.Process) {
	id := p.ID()
	if id < 0 || id >= r.rec.N {
		panic(fmt.Sprintf("lattice: process %d out of range", id))
	}
	p.SetEventHook(func(vc vclock.VC, pred bool, value float64) {
		r.rec.Events[id] = append(r.rec.Events[id], Event{VC: vc, Pred: pred, Value: value})
	})
}

// Recording returns the captured execution. The recorder may keep recording
// afterwards; take the recording only when the execution is done.
func (r *Recorder) Recording() *Recording {
	return &r.rec
}
