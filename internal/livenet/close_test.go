package livenet

import (
	"context"
	"testing"
	"time"

	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// runWorkload feeds a whole execution and returns the cluster ready to be
// torn down by whichever lifecycle entry point the test exercises.
func runWorkload(t *testing.T, seed int64) (*Cluster, *workload.Execution) {
	t.Helper()
	topo := tree.Balanced(2, 2)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: 6, Seed: seed, PGlobal: 1})
	c := New(Config{Topology: topo, Seed: seed, Strict: true, KeepMembers: true})
	for p := range e.Streams {
		c.ObserveBatch(p, e.Streams[p])
	}
	return c, e
}

// sameDetections asserts two detection lists agree on the canonical
// projection (node, root-ness, aggregate identity) — Stop and
// Close+Detections must be interchangeable teardown spellings.
func sameDetections(t *testing.T, got, want []Detection) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("detections = %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Node != w.Node || g.AtRoot != w.AtRoot ||
			g.Det.Agg.Seq != w.Det.Agg.Seq || g.Det.Agg.Origin != w.Det.Agg.Origin {
			t.Fatalf("detection %d: got {node %d root %v seq %d}, want {node %d root %v seq %d}",
				i, g.Node, g.AtRoot, g.Det.Agg.Seq, w.Node, w.AtRoot, w.Det.Agg.Seq)
		}
	}
}

// TestCloseEqualsStop pins the deprecation contract: Close followed by
// Detections returns exactly what Stop would have (same workload, same
// seed, same ordering), and Close is idempotent where Stop panics.
func TestCloseEqualsStop(t *testing.T) {
	cs, _ := runWorkload(t, 77)
	viaStop := cs.Stop()

	cc, _ := runWorkload(t, 77)
	if err := cc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	viaClose := cc.Detections()
	sameDetections(t, viaClose, viaStop)

	// Close again: nil, and Detections unchanged.
	if err := cc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	sameDetections(t, cc.Detections(), viaStop)
}

// TestDetectionsBeforeStop: the accessor answers nil until teardown has
// produced the final ordered list.
func TestDetectionsBeforeStop(t *testing.T) {
	c := New(Config{Topology: tree.Star(3)})
	if d := c.Detections(); d != nil {
		t.Fatalf("Detections before teardown = %d entries, want nil", len(d))
	}
	c.Close()
	if c.Detections() == nil {
		// A teardown with zero detections returns the empty (non-nil is not
		// promised) list; only panic-free access matters here.
		t.Log("empty teardown returned nil detections")
	}
}

// TestStopAfterClosePanics: the historical Stop contract (double teardown
// is a bug worth a loud crash) survives the lifecycle refactor.
func TestStopAfterClosePanics(t *testing.T) {
	c := New(Config{Topology: tree.Star(3)})
	c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Stop after Close did not panic")
		}
	}()
	c.Stop()
}

// TestShutdownDeadline: a Shutdown whose context expires while credits are
// still pending reports ctx.Err(), leaves the cluster running (Observe
// still legal, no panic), and a later unbounded Shutdown completes with the
// full detection set.
func TestShutdownDeadline(t *testing.T) {
	topo := tree.Chain(2)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: 4, Seed: 9, PGlobal: 1})
	// A long batch window parks child 1's report credit on the flush timer,
	// so quiescence is provably not reachable within the short deadline.
	c := New(Config{Topology: topo, Seed: 9, Strict: true, KeepMembers: true,
		BatchWindow: 300 * time.Millisecond, SequentialDetect: true})
	for p := range e.Streams {
		c.ObserveBatch(p, e.Streams[p][:2])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := c.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown under deadline = %v, want context.DeadlineExceeded", err)
	}

	// Still running: feeding more work must not panic.
	for p := range e.Streams {
		c.ObserveBatch(p, e.Streams[p][2:])
	}
	if err := c.Shutdown(context.Background()); err != nil {
		t.Fatalf("unbounded Shutdown: %v", err)
	}
	roots := 0
	for _, d := range c.Detections() {
		if d.AtRoot {
			roots++
		}
	}
	if roots != 4 {
		t.Fatalf("root detections after resumed shutdown = %d, want 4", roots)
	}
	// Shutdown after stopped: nil.
	if err := c.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown after stopped = %v, want nil", err)
	}
}
