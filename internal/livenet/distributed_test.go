package livenet

import (
	"sync"
	"testing"
	"time"

	"hierdet/internal/transport"
	"hierdet/internal/transport/tcptransport"
	"hierdet/internal/tree"
	"hierdet/internal/wire"
	"hierdet/internal/workload"
)

// detLog aggregates streamed detections across the participants of a
// distributed deployment (each cluster only returns its own from Stop).
type detLog struct {
	mu   sync.Mutex
	dets []Detection
}

func (l *detLog) add(d Detection) {
	l.mu.Lock()
	l.dets = append(l.dets, d)
	l.mu.Unlock()
}

func (l *detLog) rootSpan(span int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return spanCount(l.dets, span)
}

func (l *detLog) all() []Detection {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Detection(nil), l.dets...)
}

// feedOne feeds rounds [lo, hi) of process p's stream into its hosting
// cluster, preserving generation order.
func feedOne(c *Cluster, e *workload.Execution, p, lo, hi int) {
	for k := lo; k < hi && k < len(e.Streams[p]); k++ {
		c.Observe(p, e.Streams[p][k])
		time.Sleep(10 * time.Microsecond)
	}
}

// feedRangeMulti feeds rounds [lo, hi) into a one-cluster-per-node
// deployment, one goroutine per process.
func feedRangeMulti(clusters map[int]*Cluster, e *workload.Execution, lo, hi int) {
	var wg sync.WaitGroup
	for p := range e.Streams {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			feedOne(clusters[p], e, p, lo, hi)
		}(p)
	}
	wg.Wait()
}

// totalRepairs sums the concluded reattachments across a deployment.
func totalRepairs(clusters map[int]*Cluster) int {
	n := 0
	for _, c := range clusters {
		n += len(c.Repairs())
	}
	return n
}

// TestDistributedParityAndFailover is the tentpole's semantic contract: the
// same workload, run once on the single-process channel cluster and once as
// seven one-node clusters joined only by wire-encoded frames over an
// in-process network, produces identical root-detection counts — before a
// failure and after one, with the §III-F repair negotiated entirely over the
// transport (heartbeat-fed covered sets, silence-based suspicion, no shared
// state).
func TestDistributedParityAndFailover(t *testing.T) {
	const phase1, phase2 = 8, 8
	const victim = 1 // children 3 and 4 become orphans; parent 0 drops it
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e := workload.Generate(workload.Config{Topology: build(), Rounds: phase1 + phase2, Seed: 6, PGlobal: 1})

	// Reference: the single-process cluster (in-memory channel transport) on
	// the same execution and failure schedule.
	refRepaired := make(chan int, 8)
	ref := New(Config{
		Topology: build(), Seed: 11, Strict: true, KeepMembers: true,
		HbEvery:  300 * time.Microsecond,
		OnRepair: func(orphan, newParent int) { refRepaired <- orphan },
	})
	feedRange(ref, e, 0, phase1)
	ref.Drain()
	awaitRepairs(t, refRepaired, ref.Kill(victim))
	waitCond(t, "reference parent to drop dead child", func() bool { return ref.Metrics()[0].ChildDrops == 1 })
	ref.Drain()
	feedRange(ref, e, phase1, phase1+phase2)
	refDets := ref.Stop()
	refFull, refSurvivor := spanCount(refDets, 7), spanCount(refDets, 6)

	// Distributed: one cluster per node, joined by the in-process Network.
	// Per-cluster Drain cannot see frames in flight on the transport, so the
	// phases synchronize on observed detection counts instead.
	net := transport.NewNetwork()
	var log detLog
	repaired := make(chan int, 8)
	clusters := make(map[int]*Cluster, 7)
	for id := 0; id < 7; id++ {
		clusters[id] = New(Config{
			Topology: build(), Seed: 11, Strict: true, KeepMembers: true,
			HbEvery:      time.Millisecond,
			StartupGrace: 5 * time.Millisecond,
			Transport:    net.Endpoint(id),
			LocalNodes:   []int{id},
			OnDetect:     log.add,
			OnRepair:     func(orphan, newParent int) { repaired <- orphan },
		})
	}

	feedRangeMulti(clusters, e, 0, phase1)
	waitCond(t, "phase-1 root detections", func() bool { return log.rootSpan(7) >= refFull })

	if orphans := clusters[victim].Kill(victim); orphans != 2 {
		t.Fatalf("Kill(%d) orphans = %d, want 2", victim, orphans)
	}
	awaitRepairs(t, repaired, 2)
	waitCond(t, "parent to drop dead child", func() bool { return clusters[0].Metrics()[0].ChildDrops == 1 })

	feedRangeMulti(clusters, e, phase1, phase1+phase2)
	waitCond(t, "phase-2 root detections", func() bool { return log.rootSpan(6) >= refSurvivor })
	time.Sleep(20 * time.Millisecond) // settle: surplus detections would be a bug

	var dets []Detection
	for id := 0; id < 7; id++ {
		dets = append(dets, clusters[id].Stop()...)
	}
	soundRoots(t, dets)
	if got := spanCount(dets, 7); got != refFull || got != phase1 {
		t.Errorf("full-span root detections = %d, want %d (reference: %d)", got, phase1, refFull)
	}
	if got := spanCount(dets, 6); got != refSurvivor || got != phase2 {
		t.Errorf("survivor root detections = %d, want %d (reference: %d)", got, phase2, refSurvivor)
	}
	if got := totalRepairs(clusters); got != 2 {
		t.Errorf("repairs across deployment = %d, want 2", got)
	}
	hb, bad := 0, 0
	for id, c := range clusters {
		m := c.Metrics()[id]
		hb += m.Heartbeats
		bad += m.BadFrames
	}
	if hb == 0 {
		t.Error("no heartbeat messages handled; distributed liveness never ran")
	}
	if bad != 0 {
		t.Errorf("bad frames = %d, want 0 on a clean network", bad)
	}
}

// TestDistributedRedeliveryAndCorruptFrames is the livenet half of the
// redelivery contract (the transport half is tcptransport's mid-stream
// disconnect test): a report frame redelivered verbatim is absorbed by the
// receiver's resequencer — counted a duplicate, not delivered again — and a
// corrupt frame is counted and dropped without disturbing detection.
func TestDistributedRedeliveryAndCorruptFrames(t *testing.T) {
	const rounds = 3
	build := func() *tree.Topology { return tree.Chain(2) }
	e := workload.Generate(workload.Config{Topology: build(), Rounds: rounds, Seed: 9, PGlobal: 1})

	net := transport.NewNetwork()
	epRoot := net.Endpoint(0)
	epLeaf := net.Endpoint(1)

	// Tap the leaf's outgoing frames so the test can replay a real report.
	var tapMu sync.Mutex
	var reportFrame []byte
	epLeaf.Drop = func(to int, frame []byte) bool {
		tapMu.Lock()
		if reportFrame == nil {
			if k, err := wire.FrameKind(frame); err == nil && k == wire.KindReport {
				reportFrame = append([]byte(nil), frame...)
			}
		}
		tapMu.Unlock()
		return false
	}

	var log detLog
	mk := func(id int, ep *transport.Endpoint) *Cluster {
		return New(Config{
			Topology: build(), Seed: 3, Strict: true, KeepMembers: true,
			HbEvery: time.Millisecond, Transport: ep, LocalNodes: []int{id},
			OnDetect: log.add,
		})
	}
	root, leaf := mk(0, epRoot), mk(1, epLeaf)

	feedOne(root, e, 0, 0, 1)
	feedOne(leaf, e, 1, 0, 1)
	waitCond(t, "first detection", func() bool { return log.rootSpan(2) == 1 })

	// Replay the delivered report twice — a transport redelivering after a
	// reconnect — plus one frame of garbage.
	tapMu.Lock()
	dup := reportFrame
	tapMu.Unlock()
	if dup == nil {
		t.Fatal("tap never saw a report frame")
	}
	epRoot.Inject(0, dup)
	epRoot.Inject(0, dup)
	epRoot.Inject(0, []byte{0xFF, 0x01, 0x02})
	waitCond(t, "duplicates absorbed", func() bool { return root.Metrics()[0].Duplicates >= 2 })
	waitCond(t, "corrupt frame counted", func() bool { return root.Metrics()[0].BadFrames == 1 })

	feedOne(root, e, 0, 1, rounds)
	feedOne(leaf, e, 1, 1, rounds)
	waitCond(t, "remaining detections", func() bool { return log.rootSpan(2) == rounds })
	time.Sleep(10 * time.Millisecond)

	dets := append(root.Stop(), leaf.Stop()...)
	soundRoots(t, dets)
	if got := spanCount(dets, 2); got != rounds {
		t.Errorf("root detections = %d, want %d (redelivery must not re-deliver)", got, rounds)
	}
}

// TestDistributedOverTCP runs the seven-node failover scenario over real
// loopback sockets: seven clusters, each with its own TCP transport, a
// mid-tree victim killed between phases, orphans reattaching over TCP. The
// separate-OS-process variant of this scenario is examples/distributed.
func TestDistributedOverTCP(t *testing.T) {
	const phase1, phase2 = 6, 6
	const victim = 1
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e := workload.Generate(workload.Config{Topology: build(), Rounds: phase1 + phase2, Seed: 23, PGlobal: 1})

	// Bind all listeners first, then point every transport at every other:
	// candidates for adoption can be any node, not just tree neighbours.
	trs := make([]*tcptransport.Transport, 7)
	for id := range trs {
		tr, err := tcptransport.New(tcptransport.Config{Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		trs[id] = tr
	}
	for id, tr := range trs {
		tr.SetPeers(func() map[int]string {
			peers := make(map[int]string)
			for other, otr := range trs {
				if other != id {
					peers[other] = otr.Addr()
				}
			}
			return peers
		}())
	}

	var log detLog
	repaired := make(chan int, 8)
	clusters := make(map[int]*Cluster, 7)
	for id := 0; id < 7; id++ {
		clusters[id] = New(Config{
			Topology: build(), Seed: 29, Strict: true, KeepMembers: true,
			HbEvery:      2 * time.Millisecond,
			StartupGrace: 20 * time.Millisecond,
			Transport:    trs[id],
			LocalNodes:   []int{id},
			OnDetect:     log.add,
			OnRepair:     func(orphan, newParent int) { repaired <- orphan },
		})
	}

	feedRangeMulti(clusters, e, 0, phase1)
	waitCond(t, "phase-1 root detections over TCP", func() bool { return log.rootSpan(7) >= phase1 })

	if orphans := clusters[victim].Kill(victim); orphans != 2 {
		t.Fatalf("Kill(%d) orphans = %d, want 2", victim, orphans)
	}
	awaitRepairs(t, repaired, 2)
	waitCond(t, "parent to drop dead child", func() bool { return clusters[0].Metrics()[0].ChildDrops == 1 })

	feedRangeMulti(clusters, e, phase1, phase1+phase2)
	waitCond(t, "phase-2 root detections over TCP", func() bool { return log.rootSpan(6) >= phase2 })
	time.Sleep(20 * time.Millisecond)

	var dets []Detection
	for id := 0; id < 7; id++ {
		dets = append(dets, clusters[id].Stop()...)
	}
	soundRoots(t, dets)
	if got := spanCount(dets, 7); got != phase1 {
		t.Errorf("full-span root detections = %d, want %d", got, phase1)
	}
	if got := spanCount(dets, 6); got != phase2 {
		t.Errorf("survivor root detections = %d, want %d", got, phase2)
	}
}

// TestDistributedBatchWindow: with report coalescing on, child→parent
// traffic crosses the transport as KindReportBatch frames — and detection
// output is unchanged. The tap on every endpoint proves batch frames
// actually traveled (coalescing engaged, not just degenerated to singles).
func TestDistributedBatchWindow(t *testing.T) {
	const rounds = 10
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e := workload.Generate(workload.Config{Topology: build(), Rounds: rounds, Seed: 17, PGlobal: 1})

	net := transport.NewNetwork()
	var tapMu sync.Mutex
	batchFrames := 0
	var log detLog
	clusters := make(map[int]*Cluster, 7)
	for id := 0; id < 7; id++ {
		ep := net.Endpoint(id)
		ep.Drop = func(to int, frame []byte) bool {
			if k, err := wire.FrameKind(frame); err == nil && k == wire.KindReportBatch {
				tapMu.Lock()
				batchFrames++
				tapMu.Unlock()
			}
			return false
		}
		clusters[id] = New(Config{
			Topology: build(), Seed: 13, Strict: true, KeepMembers: true,
			HbEvery:      time.Millisecond,
			StartupGrace: 5 * time.Millisecond,
			BatchWindow:  500 * time.Microsecond,
			Transport:    ep,
			LocalNodes:   []int{id},
			OnDetect:     log.add,
		})
	}

	feedRangeMulti(clusters, e, 0, rounds)
	waitCond(t, "root detections with batched wire frames", func() bool { return log.rootSpan(7) >= rounds })
	time.Sleep(20 * time.Millisecond) // settle: surplus detections would be a bug

	var dets []Detection
	for id := 0; id < 7; id++ {
		dets = append(dets, clusters[id].Stop()...)
	}
	soundRoots(t, dets)
	if got := spanCount(dets, 7); got != rounds {
		t.Errorf("root detections = %d, want %d", got, rounds)
	}
	tapMu.Lock()
	defer tapMu.Unlock()
	if batchFrames == 0 {
		t.Error("no KindReportBatch frames on the wire; coalescing never engaged")
	}
	bad := 0
	for id, c := range clusters {
		bad += c.Metrics()[id].BadFrames
	}
	if bad != 0 {
		t.Errorf("bad frames = %d, want 0", bad)
	}
}
