package livenet

import (
	"testing"
	"time"

	"hierdet/internal/interval"
	"hierdet/internal/monitor"
	"hierdet/internal/simnet"
	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// feedRange feeds rounds [lo, hi) of an execution into the cluster, one
// goroutine per process. Observations for killed processes are silently
// dropped by Observe, so the full execution can be replayed unchanged.
func feedRange(c *Cluster, e *workload.Execution, lo, hi int) {
	done := make(chan struct{})
	n := 0
	for p := range e.Streams {
		n++
		go func(p int) {
			defer func() { done <- struct{}{} }()
			for k := lo; k < hi && k < len(e.Streams[p]); k++ {
				c.Observe(p, e.Streams[p][k])
				time.Sleep(10 * time.Microsecond)
			}
		}(p)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// awaitRepairs receives n orphan-reattachment notifications, failing the
// test on timeout.
func awaitRepairs(t *testing.T, repaired <-chan int, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-repaired:
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for reattachment %d of %d", i+1, n)
		}
	}
}

// waitCond polls an atomic-backed condition until it holds, failing the
// test on timeout. Used for events with no callback (a survivor dropping a
// dead child's queue).
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func spanCount(dets []Detection, span int) int {
	n := 0
	for _, d := range dets {
		if d.AtRoot && len(d.Det.Agg.Span) == span {
			n++
		}
	}
	return n
}

func soundRoots(t *testing.T, dets []Detection) {
	t.Helper()
	for _, d := range dets {
		if d.AtRoot && !interval.OverlapAll(interval.BaseIntervals(d.Det.Agg)) {
			t.Fatal("false detection")
		}
	}
}

// TestLiveClusterFailover is the live counterpart of the simulator's
// distributed-repair tests: a mid-tree node is killed between two workload
// phases, its orphans renegotiate parents over the real racing channels, and
// root detection continues over the survivors — with the same detection
// counts as the deterministic simulator running the same execution and
// failure.
func TestLiveClusterFailover(t *testing.T) {
	const phase1, phase2 = 8, 8
	const victim = 1 // children 3 and 4 become orphans; parent 0 drops it
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e := workload.Generate(workload.Config{Topology: build(), Rounds: phase1 + phase2, Seed: 6, PGlobal: 1})

	// Reference: the simulator on the same execution, the failure placed
	// after phase 1's cascade has drained and repaired before phase 2's
	// first round completes — the schedule the live run reproduces with
	// Drain and the repair callbacks.
	ref := monitor.NewRunner(monitor.Config{
		Mode: monitor.Hierarchical, Topology: build(), Exec: e,
		Seed: 17, Strict: true, KeepMembers: true,
		Spacing: 5000, MinDelay: 1, MaxDelay: 10,
		HbEvery: 100, HbTimeout: 400,
		DistributedRepair: true,
	})
	ref.ScheduleFailure(simnet.Time(phase1)*5000+3000, victim)
	refRes := ref.Run()
	refFull, refSurvivor := 0, 0
	for _, d := range refRes.RootDetections() {
		switch len(d.Det.Agg.Span) {
		case 7:
			refFull++
		case 6:
			refSurvivor++
		}
	}

	repaired := make(chan int, 8)
	topo := build()
	c := New(Config{
		Topology: topo, Seed: 11, Strict: true, KeepMembers: true,
		HbEvery:  300 * time.Microsecond,
		OnRepair: func(orphan, newParent int) { repaired <- orphan },
	})
	feedRange(c, e, 0, phase1)
	c.Drain()

	orphans := c.Kill(victim)
	if orphans != 2 {
		t.Fatalf("Kill(%d) orphans = %d, want 2", victim, orphans)
	}
	awaitRepairs(t, repaired, orphans)
	waitCond(t, "parent to drop dead child", func() bool { return c.Metrics()[0].ChildDrops == 1 })
	c.Drain()

	feedRange(c, e, phase1, phase1+phase2)
	dets := c.Stop()

	soundRoots(t, dets)
	if got := spanCount(dets, 7); got != phase1 || got != refFull {
		t.Errorf("full-span root detections = %d, want %d (simulator: %d)", got, phase1, refFull)
	}
	if got := spanCount(dets, 6); got != phase2 || got != refSurvivor {
		t.Errorf("survivor root detections = %d, want %d (simulator: %d)", got, phase2, refSurvivor)
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("topology mirror invalid after repair: %v", err)
	}
	if roots := topo.Roots(); len(roots) != 1 {
		t.Fatalf("roots = %v, want a single surviving tree", roots)
	}
	if got := c.Failed(); len(got) != 1 || got[0] != victim {
		t.Fatalf("Failed() = %v", got)
	}
	if reps := c.Repairs(); len(reps) != 2 {
		t.Fatalf("Repairs() = %v, want 2 adoptions", reps)
	} else {
		for _, r := range reps {
			if r.NewParent == tree.None {
				t.Fatalf("orphan %d partitioned; complete graph should adopt it", r.Orphan)
			}
		}
	}
	totalRepairs := 0
	for _, m := range c.Metrics() {
		totalRepairs += m.Repairs
	}
	if totalRepairs != 2 {
		t.Errorf("metrics repairs = %d, want 2", totalRepairs)
	}
}

// TestLiveClusterFailoverResendLast: with resend-on-adopt, the orphans
// re-report their last pre-crash aggregate to the new parent. Counts may
// exceed the phase totals (re-detections are the documented cost), but
// every detection must still be sound and the survivor predicate detected
// for every post-crash round.
func TestLiveClusterFailoverResendLast(t *testing.T) {
	const phase1, phase2 = 6, 6
	const victim = 2
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e := workload.Generate(workload.Config{Topology: build(), Rounds: phase1 + phase2, Seed: 14, PGlobal: 1})

	repaired := make(chan int, 8)
	topo := build()
	c := New(Config{
		Topology: topo, Seed: 15, Strict: true, KeepMembers: true,
		HbEvery: 300 * time.Microsecond, ResendLastOnAdopt: true,
		OnRepair: func(orphan, newParent int) { repaired <- orphan },
	})
	feedRange(c, e, 0, phase1)
	c.Drain()
	orphans := c.Kill(victim)
	if orphans != 2 {
		t.Fatalf("Kill(%d) orphans = %d, want 2", victim, orphans)
	}
	awaitRepairs(t, repaired, orphans)
	waitCond(t, "parent to drop dead child", func() bool { return c.Metrics()[0].ChildDrops == 1 })
	c.Drain()
	feedRange(c, e, phase1, phase1+phase2)
	dets := c.Stop()

	soundRoots(t, dets)
	if got := spanCount(dets, 6); got < phase2 {
		t.Errorf("survivor root detections = %d, want ≥ %d", got, phase2)
	}
}

// TestLiveClusterPartition: with tree-only links, killing a chain's middle
// strands the tail subtree. Its root exhausts the seek rounds, declares
// itself a partition root (OnRepair reports tree.None) and keeps detecting
// the partial predicate over its own span.
func TestLiveClusterPartition(t *testing.T) {
	const phase1, phase2 = 4, 4
	const victim = 1 // chain 0→1→2→3: {2,3} is stranded
	build := func() *tree.Topology {
		tp := tree.Chain(4)
		tp.UseTreeLinksOnly()
		return tp
	}
	e := workload.Generate(workload.Config{Topology: build(), Rounds: phase1 + phase2, Seed: 20, PGlobal: 1})

	repaired := make(chan RepairEvent, 4)
	topo := build()
	c := New(Config{
		Topology: topo, Seed: 21, Strict: true, KeepMembers: true,
		HbEvery:  300 * time.Microsecond,
		OnRepair: func(orphan, newParent int) { repaired <- RepairEvent{orphan, newParent} },
	})
	feedRange(c, e, 0, phase1)
	c.Drain()
	if orphans := c.Kill(victim); orphans != 1 {
		t.Fatalf("Kill orphans = %d, want 1", orphans)
	}
	select {
	case ev := <-repaired:
		if ev.Orphan != 2 || ev.NewParent != tree.None {
			t.Fatalf("repair event = %+v, want orphan 2 partitioned", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for partition give-up")
	}
	waitCond(t, "parent to drop dead child", func() bool { return c.Metrics()[0].ChildDrops == 1 })
	c.Drain()
	feedRange(c, e, phase1, phase1+phase2)
	dets := c.Stop()

	soundRoots(t, dets)
	// The stranded pair keeps detecting at its own root...
	pair := 0
	for _, d := range dets {
		if d.Node == 2 && d.AtRoot && len(d.Det.Agg.Span) == 2 {
			pair++
		}
	}
	if pair != phase2 {
		t.Errorf("stranded-pair detections = %d, want %d", pair, phase2)
	}
	// ...and the old root detects its remaining singleton span for every
	// phase-2 round. (Dropping the dead child may additionally unblock one
	// leftover phase-1 head, so count by round.)
	singles := 0
	for _, d := range dets {
		if d.Node == 0 && d.AtRoot && len(d.Det.Agg.Span) == 1 {
			if base := interval.BaseIntervals(d.Det.Agg); len(base) == 1 && base[0].Seq >= phase1 {
				singles++
			}
		}
	}
	if singles != phase2 {
		t.Errorf("singleton root detections = %d, want %d", singles, phase2)
	}
}
