package livenet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// TestObserveStopRace hammers the documented lifecycle contract under the
// race detector: feeders call Observe in a tight loop while Stop lands at an
// arbitrary moment. Every Observe must either be fully delivered (and its
// whole cascade drained by Stop) or panic with the documented message —
// never send on a closed channel, never lose a cascade in flight. The seed
// design (unsynchronized stopped flag + sleep-polling on an atomic counter)
// fails this test; the credit-ledger design passes by construction.
func TestObserveStopRace(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		topo := tree.Balanced(2, 2)
		e := workload.GenerateChaotic(workload.ChaoticConfig{N: 7, Steps: 400, Seed: int64(trial)})
		c := New(Config{Topology: topo, Seed: int64(trial), Strict: true, KeepMembers: true,
			MaxDelay: 50 * time.Microsecond})

		var observed, rejected atomic.Int64
		var wg sync.WaitGroup
		for p := 0; p < topo.N(); p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						if r != "livenet: Observe after Stop" {
							panic(r)
						}
						rejected.Add(1)
					}
				}()
				for _, iv := range e.Streams[p] {
					c.Observe(p, iv)
					observed.Add(1)
				}
			}(p)
		}
		// Let the feeders race the shutdown at a different phase each trial.
		time.Sleep(time.Duration(trial*20) * time.Microsecond)
		dets := c.Stop()
		wg.Wait()

		// Whatever was accepted before Stop was fully drained: no cascade is
		// still running, so the detection slice is complete and immutable.
		if observed.Load() == 0 && rejected.Load() == 0 {
			t.Fatalf("trial %d: no feeder made progress", trial)
		}
		_ = dets
	}
}

// TestDrainWaitsForCascade: after Drain returns, every accepted observation
// has propagated all the way to the root — the phase boundary the failover
// workflow (feed, Drain, Kill) depends on.
func TestDrainWaitsForCascade(t *testing.T) {
	topo := tree.Balanced(2, 2)
	const rounds = 10
	e := workload.Generate(workload.Config{Topology: topo, Rounds: rounds, Seed: 4, PGlobal: 1})
	c := New(Config{Topology: topo, Seed: 7, Strict: true, KeepMembers: true,
		MaxDelay: time.Millisecond})
	feedRange(c, e, 0, rounds)
	c.Drain()
	// All root detections must already be recorded — no settling time, no
	// reliance on Stop.
	m := c.Metrics()
	roots := m[0].Detections
	if roots != rounds {
		t.Fatalf("root detections after Drain = %d, want %d", roots, rounds)
	}
	c.Stop()
}

// TestKillIdempotent: killing twice is a no-op, killing after Stop panics.
func TestKillIdempotent(t *testing.T) {
	topo := tree.Balanced(2, 1)
	c := New(Config{Topology: topo, HbEvery: time.Millisecond})
	if n := c.Kill(1); n != 0 {
		t.Fatalf("Kill(leaf) orphans = %d, want 0", n)
	}
	if n := c.Kill(1); n != 0 {
		t.Fatalf("second Kill = %d, want 0", n)
	}
	c.Stop()
	defer func() {
		if recover() == nil {
			t.Error("Kill after Stop did not panic")
		}
	}()
	c.Kill(2)
}

// TestKillRequiresHeartbeats: without heartbeats nobody would ever detect
// the crash, so Kill refuses to inject one.
func TestKillRequiresHeartbeats(t *testing.T) {
	c := New(Config{Topology: tree.Balanced(2, 1)})
	defer c.Stop()
	defer func() {
		if recover() == nil {
			t.Error("Kill without heartbeats did not panic")
		}
	}()
	c.Kill(1)
}
