// Package livenet runs the hierarchical detector over real concurrency. It
// is the natural Go embedding of the paper's system model — asynchronous
// processes, asynchronous non-FIFO message passing — and complements
// internal/simnet, which trades real concurrency for determinism.
//
// The delivery plane is built for scale: every node owns a bounded mailbox
// shard, a small worker pool drains the shards (one worker per node at a
// time, so detector state stays single-writer), and a single hashed timer
// wheel carries every delayed message, repair timeout and heartbeat tick.
// Steady-state goroutine count is the pool plus the wheel — independent of
// the process count and of the number of in-flight messages — where the seed
// design spent one goroutine per node plus one per in-flight message.
// Messages on one link still genuinely race and arrive out of order (the
// wheel quantizes each message's pseudo-random delay); the same per-link
// sequence numbers and resequencers as the simulated runtime (shared via
// internal/repair) restore queue order at the receiver.
//
// With Config.BatchWindow > 0 each node coalesces the reports it owes its
// parent and flushes them as one message (one wire frame, in distributed
// mode) per window — the live runtime's port of the simulator's BatchWindow,
// trading up to one window of detection latency for per-message overhead.
// Arrivals batch symmetrically: runs of in-order reports released together
// by a resequencer feed the detector through core.Node's batch ingestion
// (OnIntervals), which runs the elimination loop once per exposed head
// rather than once per arrival (Algorithm 1 line 2).
//
// With heartbeats enabled (Config.HbEvery > 0) the cluster is fault
// tolerant per the paper's §III-F: Kill crashes a process, its tree
// neighbours detect the silence, the dead node's parent drops the child's
// queue, and each orphan subtree renegotiates a parent over the network
// using the request/grant/confirm/abort protocol of internal/repair — the
// same state machines the deterministic simulator drives, here exercised
// under real races. Orphans that exhaust their candidates continue as
// partition roots, detecting the partial predicate over their own subtree.
//
// Lifecycle is race-clean by construction: a single mutex guards the
// cluster state machine (running → stopping → stopped) and a message-credit
// ledger; every message holds exactly one credit from before it is sent
// until after it is handled, timers take their credit when armed, and Stop
// waits on a condition variable until the ledger drains before tearing the
// pool and the wheel down. There is no sleep-polling, no unsynchronized
// flag, and — unlike the seed's per-message sleep goroutines — nothing left
// sleeping after Stop returns: the wheel cancels its remaining (uncredited)
// entries instead of firing them.
//
// With Config.Transport set the cluster becomes one participant of a
// distributed deployment: it hosts only Config.LocalNodes, traffic between
// co-hosted nodes stays in-process, and everything else is wire-encoded
// (internal/wire) and shipped through the transport — the in-process Network
// of internal/transport for deterministic tests, real TCP sockets
// (internal/transport/tcptransport) for separate OS processes. Distributed
// mode has no shared state to lean on, so it runs the same machinery the
// deterministic simulator's distributed-repair mode does: covered sets and
// the root-seeking flag ride on heartbeat messages, suspicion comes from
// heartbeat silence alone, and adoption grants are validated against local
// knowledge only.
package livenet

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hierdet/internal/core"
	"hierdet/internal/interval"
	"hierdet/internal/obsv"
	"hierdet/internal/repair"
	"hierdet/internal/transport"
	"hierdet/internal/tree"
	"hierdet/internal/wire"
)

// Config parameterizes a cluster.
type Config struct {
	// Topology is the spanning tree; one detector node runs per alive node.
	Topology *tree.Topology
	// MaxDelay bounds the random per-message delivery delay (default 200µs;
	// larger values force more reordering). The timer wheel quantizes delays
	// to its tick (MaxDelay/8, clamped to [20µs, 1ms]).
	MaxDelay time.Duration
	// Seed drives the delay distribution.
	Seed int64
	// Strict and KeepMembers configure the detector nodes (see core.Config).
	Strict, KeepMembers bool

	// Workers sizes the pool that drains the mailbox shards. Zero means
	// GOMAXPROCS.
	Workers int
	// MailboxBound caps each node's mailbox shard for external producers:
	// Observe and ObserveBatch block while the destination shard is at the
	// bound, pushing back on the workload. Internal cascade traffic is not
	// bounded (a blocked worker could deadlock the pool). Zero means 4096.
	MailboxBound int
	// BatchWindow coalesces each node's child→parent reports and flushes
	// them as one message (one wire frame in distributed mode) per window.
	// Zero sends every report immediately, the paper's per-detection
	// behaviour.
	BatchWindow time.Duration
	// AdaptiveFlush coalesces reports per worker drain instead of per fixed
	// time window: reports a node emits while its worker drains one mailbox
	// swap leave as a single message at the end of that drain. The coalescing
	// unit is the actual burst — a detection cascade triggered by one batch of
	// deliveries flushes as one frame with zero added latency, while an
	// isolated report still leaves within its own drain — so the policy adapts
	// to load where a static BatchWindow must pick one point on the
	// latency/frame-count trade-off for every node and every phase of the run.
	// Mutually exclusive with BatchWindow and incompatible with
	// LegacyDelivery (whose per-message channel loop has no drain boundary,
	// and which is a frozen baseline anyway).
	AdaptiveFlush bool
	// LegacyDelivery restores the seed's delivery plane in full: one inbox
	// channel and one goroutine per node, one sleeping goroutine per delayed
	// message, one time.AfterFunc per repair timer and a per-node heartbeat
	// ticker, instead of the mailbox shards, worker pool and timer wheel. It
	// exists so the scale benchmarks can measure the rebuilt plane against
	// the pre-change baseline forever; production configurations leave it
	// off. LegacyDelivery implies SequentialDetect: the seed plane is a
	// baseline, and baselines do not silently absorb later engine work.
	LegacyDelivery bool

	// SequentialDetect restores the single-threaded in-node detection
	// engine — the paper's Algorithm 1 loop exactly as it ran before the
	// parallel engine landed. It is the property-test oracle and the
	// benchmark baseline lane (the role LegacyDelivery plays for the
	// delivery plane); production configurations leave it off and get the
	// partitioned engine with flat aggregate storage.
	SequentialDetect bool
	// DetectWorkers sizes the comparison worker set the parallel detection
	// engine shares across every hosted node (core.Pool). Zero means
	// GOMAXPROCS. Ignored under SequentialDetect/LegacyDelivery.
	DetectWorkers int

	// Scheduler attaches the cluster to a shared scheduler substrate (see
	// NewSharedScheduler): the substrate's worker pool drains the mailbox
	// shards, its timer wheel carries the delayed messages and heartbeat
	// ticks, its comparison pool backs the parallel detection engine and its
	// clock arena supplies the aggregate storage — the cluster spawns no
	// delivery goroutines of its own. Workers and DetectWorkers are then
	// ignored (the substrate's pools are sized once, at its creation);
	// MailboxBound still applies per cluster. Nil (the default) keeps a
	// private pool and wheel — a standalone cluster behaves exactly as
	// before. Incompatible with LegacyDelivery.
	Scheduler *SharedScheduler

	// HbEvery enables failure handling: on this period every node publishes
	// a liveness beacon and checks the beacons of its tree neighbours. Zero
	// (the default) disables heartbeats and failure handling; Kill then
	// panics.
	HbEvery time.Duration
	// HbTimeout is how stale a peer's beacon must be before it is suspected
	// dead. Default 8×HbEvery.
	HbTimeout time.Duration
	// SeekTimeout is how long an orphan root waits for each candidate's
	// grant before moving on. A willing candidate answers in two message
	// delays, so the timeout only gates the failure paths (dead or refusing
	// candidates) — but it must absorb real scheduler and timer jitter, or
	// grants go stale and live candidates are skipped (in the worst case the
	// orphan wrongly declares itself partitioned). Default
	// max(10ms, 4×MaxDelay, 2×HbEvery).
	SeekTimeout time.Duration
	// ResendLastOnAdopt re-reports the subtree's most recent aggregate to a
	// newly adopted parent (paper §III-B / Figure 2(c)): reports in flight
	// to the dead parent are lost, but the latest solution the subtree
	// found is not.
	ResendLastOnAdopt bool
	// OnRepair, when set, is called once per concluded reattachment:
	// newParent is the adopting node, or tree.None when the orphan
	// exhausted its candidates and continues as a partition root. It runs
	// off the cluster's locks (Metrics and Repairs may be called from it;
	// Stop may not).
	OnRepair func(orphan, newParent int)
	// OnDetect, when set, is called for every detection as it is recorded —
	// the streaming complement of Stop's batch return, which a long-running
	// process (cmd/hierdet-node) needs. It runs off the cluster's locks but
	// on worker goroutines, so it must be quick and must not call Stop.
	OnDetect func(Detection)

	// Events, when set, receives the cluster's full lifecycle stream —
	// every interval observed, report sent and received, solution found,
	// interval pruned, node suspected, repair concluded and transport
	// redial (see obsv.EventKind). It subsumes OnDetect and OnRepair:
	// every detection arrives as a SolutionFound event and every concluded
	// repair as a RepairConcluded event, in the same order the deprecated
	// callbacks would have seen them. Events for one node are delivered in
	// that node's causal order; events of different nodes interleave, so
	// the sink must be safe for concurrent calls. Like OnDetect it runs on
	// runtime goroutines: keep it quick and never call Stop from it.
	Events func(obsv.Event)

	// Transport switches the cluster to distributed mode: it hosts only
	// LocalNodes, and messages to every other topology node are wire-encoded
	// and shipped through the transport (see the package comment). The
	// cluster starts the transport in New and closes it in Stop.
	Transport transport.Transport
	// LocalNodes is the subset of topology nodes this cluster hosts
	// (distributed mode only; default: every alive node, i.e. a
	// single-participant deployment).
	LocalNodes []int
	// StartupGrace suppresses heartbeat-silence suspicion for this long
	// after New: in a multi-process deployment the participants do not start
	// simultaneously, and without a grace window the early ones would
	// "repair around" peers that merely have not launched yet. Default
	// 2×HbTimeout in distributed mode, unused otherwise.
	StartupGrace time.Duration
}

// Detection is one predicate satisfaction observed by the live cluster.
type Detection struct {
	Node   int
	AtRoot bool
	Det    core.Detection
}

// RepairEvent records one concluded reattachment. NewParent is tree.None
// when the orphan became a partition root.
type RepairEvent struct {
	Orphan    int
	NewParent int
}

// clusterState is the lifecycle phase, guarded by Cluster.mu.
type clusterState int

const (
	clusterRunning clusterState = iota
	clusterStopping
	clusterStopped
)

// Cluster is a running set of detector nodes. Create with New, feed local
// intervals with Observe or ObserveBatch, optionally crash processes with
// Kill, then call Stop to drain and collect every detection.
type Cluster struct {
	cfg     Config
	nodes   map[int]*liveNode
	wg      sync.WaitGroup // worker pool (private mode only)
	wheel   *wheel
	runq    chan *liveNode // private mode: the channel behind sched
	sched   runQueue       // where enqueue schedules nodes (see sched.go)
	bound   int            // mailbox bound for external producers
	workers int
	// shared is the substrate this cluster rides (Config.Scheduler), with
	// seat the cluster's DRR run-queue client on it; both nil in private
	// mode. halted flips at Stop so the shared wheel stops re-arming this
	// cluster's recurring ticks.
	shared *SharedScheduler
	seat   *schedClient
	halted atomic.Bool
	// detectPool is the comparison worker set shared by every hosted node's
	// parallel detection engine; nil under SequentialDetect/LegacyDelivery,
	// substrate-owned when shared is set (Stop then must not close it).
	detectPool *core.Pool
	remote     bool      // distributed mode: Transport is set
	startAt    time.Time // StartupGrace reference point

	// Observability plane: the metrics registry every family registers
	// into, the per-kind event counters (index = obsv.EventKind), and the
	// scheduler-pool instruments (see registerFamilies).
	reg         *obsv.Registry
	evCounts    [obsv.NumEventKinds]*obsv.Counter
	busyWorkers atomic.Int64
	drains      atomic.Int64
	drained     atomic.Int64
	drainHist   *obsv.Histogram
	latHist     *obsv.Histogram // observe→SolutionFound latency

	// mu guards everything below: the lifecycle state machine, the
	// message-credit ledger (pending, see post/armTimer/done), the topology
	// mirror the repair protocol validates against, and the collected
	// results. cond signals pending reaching zero.
	mu      sync.Mutex
	cond    *sync.Cond
	state   clusterState
	pending int
	topo    *tree.Topology
	killed  map[int]bool
	seeking map[int]bool // orphan roots currently renegotiating a parent
	reqSeq  int
	dets    []Detection
	final   []Detection // set once by teardown; read by Detections
	repairs []RepairEvent
}

// New builds and starts a cluster over the alive nodes of the topology.
func New(cfg Config) *Cluster {
	if cfg.Topology == nil {
		panic("livenet: Topology is required")
	}
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = 200 * time.Microsecond
	}
	if cfg.HbTimeout == 0 {
		cfg.HbTimeout = 8 * cfg.HbEvery
	}
	if cfg.SeekTimeout == 0 {
		cfg.SeekTimeout = 10 * time.Millisecond
		if 4*cfg.MaxDelay > cfg.SeekTimeout {
			cfg.SeekTimeout = 4 * cfg.MaxDelay
		}
		if 2*cfg.HbEvery > cfg.SeekTimeout {
			cfg.SeekTimeout = 2 * cfg.HbEvery
		}
	}
	if cfg.Transport != nil && cfg.StartupGrace == 0 {
		cfg.StartupGrace = 2 * cfg.HbTimeout
	}
	if cfg.Scheduler != nil && cfg.LegacyDelivery {
		panic("livenet: Scheduler is incompatible with LegacyDelivery")
	}
	if cfg.AdaptiveFlush && cfg.LegacyDelivery {
		panic("livenet: AdaptiveFlush is incompatible with LegacyDelivery")
	}
	if cfg.AdaptiveFlush && cfg.BatchWindow > 0 {
		panic("livenet: AdaptiveFlush and BatchWindow are mutually exclusive coalescing policies")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MailboxBound <= 0 {
		cfg.MailboxBound = 4096
	}
	c := &Cluster{
		cfg:     cfg,
		remote:  cfg.Transport != nil,
		startAt: time.Now(),
		topo:    cfg.Topology,
		bound:   cfg.MailboxBound,
		workers: cfg.Workers,
		shared:  cfg.Scheduler,
		nodes:   make(map[int]*liveNode),
		killed:  make(map[int]bool),
		seeking: make(map[int]bool),
	}
	c.cond = sync.NewCond(&c.mu)
	if c.shared != nil {
		// Shared substrate: adopt its wheel, pools and clock arena; the
		// cluster's only seat on it is a DRR run-queue client.
		c.wheel = c.shared.wheel
		c.workers = c.shared.workers
		c.seat = c.shared.register()
		c.sched = c.seat
		if !cfg.SequentialDetect {
			c.detectPool = c.shared.detect
		}
	} else {
		c.wheel = newWheel(cfg.MaxDelay / 8)
		if !cfg.SequentialDetect && !cfg.LegacyDelivery {
			dw := cfg.DetectWorkers
			if dw <= 0 {
				dw = runtime.GOMAXPROCS(0)
			}
			c.detectPool = core.NewPool(dw)
		}
	}
	c.reg = obsv.NewRegistry()
	hosted := cfg.Topology.AliveNodes()
	if c.remote && len(cfg.LocalNodes) > 0 {
		hosted = cfg.LocalNodes
	}
	// One slab for all hosted processes: the node structs dominate a
	// cluster's construction allocations, and a plane registering hundreds
	// of tenants pays that bill hundreds of times over.
	slab := make([]liveNode, len(hosted))
	for i, id := range hosted {
		if !cfg.Topology.Alive(id) {
			panic(fmt.Sprintf("livenet: LocalNodes lists dead or unknown node %d", id))
		}
		initLiveNode(&slab[i], c, id)
		c.nodes[id] = &slab[i]
	}
	if c.shared == nil {
		// Sentinel stops (one nil per worker) ride the same queue as work, so
		// the capacity covers every node being scheduled at once plus them.
		c.runq = make(chan *liveNode, len(c.nodes)+c.workers)
		c.sched = chanQueue{ch: c.runq}
	}
	c.registerFamilies()
	if c.remote {
		// A transport that knows how to describe itself (tcptransport does)
		// joins the cluster's registry and event stream before any traffic
		// flows.
		if inst, ok := cfg.Transport.(interface {
			Instrument(*obsv.Registry, func(obsv.Event))
		}); ok {
			inst.Instrument(c.reg, c.emitEvent)
		}
		if err := cfg.Transport.Start(c.onFrame); err != nil {
			panic(fmt.Sprintf("livenet: transport start: %v", err))
		}
	}
	if c.shared == nil {
		go c.wheel.run()
		if cfg.LegacyDelivery {
			// The seed delivery plane, whole: one goroutine and one inbox
			// channel per node, heartbeats on per-node tickers (in runLegacy),
			// delayed messages on fresh sleeping goroutines (in post). The
			// wheel stays up but idle so Stop's teardown is uniform.
			for _, ln := range c.nodes {
				ln.inbox = make(chan message, 256)
				c.wg.Add(1)
				go ln.runLegacy()
			}
			return c
		}
		for i := 0; i < c.workers; i++ {
			c.wg.Add(1)
			go c.worker()
		}
	}
	if cfg.HbEvery > 0 {
		for _, ln := range c.nodes {
			// Stagger first beats so the cluster does not pulse in lockstep.
			first := 1 + time.Duration(ln.rng.Int64N(int64(cfg.HbEvery)))
			c.wheel.schedule(ln, message{kind: msgHbTick}, first, cfg.HbEvery)
		}
	}
	return c
}

// Observe feeds one completed local-predicate interval of process p into the
// cluster. Intervals of one process must be observed in generation order
// (they are at the emitting process by construction); different processes
// may call Observe concurrently. Observe blocks while p's mailbox shard is
// at its bound (backpressure) and must not be called after Stop;
// observations for killed processes are silently dropped (the process is
// dead — it generates nothing).
func (c *Cluster) Observe(p int, iv interval.Interval) {
	ln := c.admit(p, 1)
	if ln == nil {
		return
	}
	c.enqueue(ln, message{kind: msgLocal, from: p, iv: iv, born: time.Now().UnixNano()}, true)
}

// ObserveBatch feeds a run of consecutive completed intervals of process p,
// in generation order, as one delivery: the detector enqueues them all and
// runs detection once per exposed head (Algorithm 1 line 2) instead of once
// per interval. The cluster retains ivs until the batch is handled; the
// caller must not modify it afterwards. Semantics are identical to calling
// Observe once per interval — only the per-message overhead differs.
func (c *Cluster) ObserveBatch(p int, ivs []interval.Interval) {
	if len(ivs) == 0 {
		return
	}
	ln := c.admit(p, 1)
	if ln == nil {
		return
	}
	c.enqueue(ln, message{kind: msgLocalBatch, from: p, ivs: ivs, born: time.Now().UnixNano()}, true)
}

// admit performs Observe/ObserveBatch's shared lifecycle check and takes
// credits message deliveries. It returns nil when the observation should be
// silently dropped (killed process).
func (c *Cluster) admit(p, credits int) *liveNode {
	ln, ok := c.nodes[p]
	if !ok {
		panic(fmt.Sprintf("livenet: Observe for unknown process %d", p))
	}
	c.mu.Lock()
	if c.state != clusterRunning {
		c.mu.Unlock()
		panic("livenet: Observe after Stop")
	}
	if c.killed[p] {
		c.mu.Unlock()
		return nil
	}
	c.pending += credits
	c.mu.Unlock()
	return ln
}

// Kill crashes process node (crash-stop: it stops beating, handling and
// sending forever; queued and in-flight messages to it are discarded). It
// returns the number of orphan subtrees the crash created — the number of
// OnRepair callbacks that will eventually fire as each orphan reattaches or
// gives up. Killing requires heartbeats (Config.HbEvery > 0); killing an
// already-dead process returns 0.
func (c *Cluster) Kill(node int) int {
	if c.cfg.HbEvery <= 0 {
		panic("livenet: Kill requires heartbeats (Config.HbEvery > 0)")
	}
	ln, ok := c.nodes[node]
	if !ok {
		panic(fmt.Sprintf("livenet: Kill of unknown process %d", node))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != clusterRunning {
		panic("livenet: Kill after Stop")
	}
	if c.killed[node] {
		return 0
	}
	c.killed[node] = true
	delete(c.seeking, node)
	_, orphans := c.topo.MarkFailed(node)
	ln.down.Store(true)
	return len(orphans)
}

// Drain blocks until the message-credit ledger is empty: every observation
// fed so far, and the whole report cascade it triggered, has been handled.
// Armed repair timers and pending batch-window flushes hold credits too, so
// after the survivors have begun a reattachment Drain also covers its
// conclusion. It does not stop anything; Observe may be called again
// afterwards.
func (c *Cluster) Drain() {
	c.mu.Lock()
	for c.pending != 0 {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// Stop waits for the cluster to go idle, shuts the delivery plane down and
// returns every detection, ordered by node id and then detection order at
// that node.
//
// The quiescence protocol (quiesceLocked): state moves to stopping (new
// Observe calls panic, internal cascade traffic still flows), then Stop
// waits on the condition variable until the credit ledger drains. Because
// every message acquires its credit under mu before it is sent — timers at
// arm time — a drained ledger means no credited delivery can be
// outstanding, so moving to stopped and cancelling the wheel (teardown)
// cannot lose work. The wheel's surviving entries are the uncredited
// heartbeat ticks; they are discarded, the workers take their stop
// sentinels, and nothing is left sleeping or running when Stop returns.
//
// Stop is the original teardown entry point, kept as a compatibility alias:
// it is exactly Close followed by Detections, except that stopping an
// already-stopped cluster panics (the historical contract, which existing
// callers rely on to flag double-teardown bugs). New code should prefer
// Close (idempotent) or Shutdown (deadline-aware).
//
// Deprecated: use Close or Shutdown, then Detections.
func (c *Cluster) Stop() []Detection {
	c.mu.Lock()
	if c.state != clusterRunning {
		c.mu.Unlock()
		panic("livenet: Stop called twice")
	}
	c.quiesceLocked(nil)
	c.mu.Unlock()
	return c.teardown()
}

// Close waits for the cluster to go idle and shuts the delivery plane down,
// exactly like Stop, but follows the io.Closer convention: it returns nil on
// an already-closed cluster instead of panicking, and it does not hand the
// detections back — read them with Detections. Close never fails; the error
// return exists so every long-lived object in the package family (Cluster,
// tenant-plane Multiplexer, replay Recorder/Replayer) closes through the
// same signature.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.state != clusterRunning {
		c.mu.Unlock()
		return nil
	}
	c.quiesceLocked(nil)
	c.mu.Unlock()
	c.teardown()
	return nil
}

// Shutdown is Close with a deadline: it waits for the message-credit ledger
// to drain only as long as ctx allows. If the ledger drains in time the
// cluster tears down exactly as Close does and Shutdown returns nil. If ctx
// expires first, Shutdown returns ctx.Err() and the cluster RESUMES RUNNING —
// no work has been lost, Observe is legal again, and a later Close/Stop/
// Shutdown can finish the job. On an already-stopped cluster Shutdown
// returns nil.
func (c *Cluster) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	if c.state != clusterRunning {
		c.mu.Unlock()
		return nil
	}
	if !c.quiesceLocked(ctx) {
		// Deadline hit with traffic still in flight: abort the shutdown and
		// hand the cluster back in the running state.
		c.state = clusterRunning
		c.mu.Unlock()
		return ctx.Err()
	}
	c.mu.Unlock()
	c.teardown()
	return nil
}

// quiesceLocked runs the quiescence protocol under mu: state moves to
// stopping (new Observe calls panic, internal cascade traffic still flows),
// then waits on the condition variable until the credit ledger drains — or,
// when ctx is non-nil, until ctx expires, whichever comes first. Returns true
// with state at clusterStopped when the ledger drained, false with state
// still at clusterStopping when ctx expired first (the caller restores
// clusterRunning).
func (c *Cluster) quiesceLocked(ctx context.Context) bool {
	c.state = clusterStopping
	var stopWatch chan struct{}
	if ctx != nil && ctx.Done() != nil {
		// The waiter below sleeps on the cond; a context expiry has to kick
		// it awake. The watcher is told to stand down once quiescence
		// resolves either way.
		stopWatch = make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				c.mu.Lock()
				c.cond.Broadcast()
				c.mu.Unlock()
			case <-stopWatch:
			}
		}()
		defer close(stopWatch)
	}
	for c.pending != 0 {
		if ctx != nil && ctx.Err() != nil {
			return false
		}
		c.cond.Wait()
	}
	c.state = clusterStopped
	return true
}

// teardown dismantles the delivery plane after a successful quiescence
// (state is clusterStopped, ledger empty — see Stop's doc comment for why
// nothing can be lost from here) and returns the final sorted detection
// list, also stashing it for Detections.
func (c *Cluster) teardown() []Detection {
	c.halted.Store(true)
	if c.shared != nil {
		// Shared substrate: the wheel and pools belong to the substrate and
		// keep running for the other clusters. cancel removes this cluster's
		// remaining (uncredited, recurring) wheel entries, and detach waits
		// until no shared worker is still inside one of its drains — the
		// role the sentinel/WaitGroup protocol plays in private mode.
		c.wheel.cancel(c)
		c.shared.detach(c.seat)
	} else {
		// Order matters: the wheel must be fully gone before the stop
		// sentinels go out, because an advancing wheel pushes nodes onto the
		// run queue.
		c.wheel.stop()
		<-c.wheel.done
		if c.cfg.LegacyDelivery {
			// Seed teardown: the drained ledger means no send can be in
			// flight, so closing the inboxes cannot race one.
			for _, ln := range c.nodes {
				close(ln.inbox)
			}
		} else {
			for i := 0; i < c.workers; i++ {
				c.runq <- nil
			}
		}
		c.wg.Wait()
		// With the delivery workers gone no detection can be in flight, so
		// the comparison pool can be torn down without a round mid-fanout.
		c.detectPool.Close()
	}
	if c.remote {
		// Incoming frames have been dropped (not credited) since the state
		// reached stopped; Close additionally waits out any receive callback
		// already in flight, so nothing touches the cluster after Stop.
		c.cfg.Transport.Close()
	}
	// Ownership transfer, not a copy: teardown runs once (quiescence resolves
	// exactly once) and nothing records into a stopped cluster, so the
	// accumulated list can be handed to the caller as-is.
	c.mu.Lock()
	out := c.dets
	c.dets = nil
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Det.Agg.Seq < out[j].Det.Agg.Seq
	})
	c.mu.Lock()
	c.final = out
	c.mu.Unlock()
	return out
}

// Detections returns the final detection list — ordered by node id, then
// detection order at that node — once the cluster has stopped (via Stop,
// Close or a successful Shutdown). Before that it returns nil: the list is
// only final after teardown. The slice is shared with Stop's return value;
// treat it as read-only.
func (c *Cluster) Detections() []Detection {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.final
}

// Workers returns the size of the worker pool draining this cluster's
// mailbox shards — the private pool's size, or the shared substrate's when
// the cluster rides one.
func (c *Cluster) Workers() int { return c.workers }

// MailboxBound returns the per-node mailbox bound applied to external
// producers.
func (c *Cluster) MailboxBound() int { return c.bound }

// Shared reports whether the cluster rides a shared scheduler substrate.
func (c *Cluster) Shared() bool { return c.shared != nil }

// Failed returns the processes killed so far, ascending.
func (c *Cluster) Failed() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.killed))
	for id := range c.killed {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Repairs returns the reattachments concluded so far, in conclusion order.
func (c *Cluster) Repairs() []RepairEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]RepairEvent(nil), c.repairs...)
}

// post ships a message to a node's mailbox after delay, taking the message's
// pending credit first. During stopping the internal cascade is still
// allowed — Stop drains it; only after stopped (ledger empty, so nothing can
// legally be in flight) is the message dropped. Zero-delay messages enqueue
// directly; delayed ones ride the wheel — or, under LegacyDelivery, a fresh
// sleeping goroutine, the seed behaviour the scale benchmarks baseline
// against.
func (c *Cluster) post(to int, msg message, delay time.Duration) {
	dst, ok := c.nodes[to]
	if !ok {
		return
	}
	c.mu.Lock()
	if c.state == clusterStopped {
		c.mu.Unlock()
		return
	}
	c.pending++
	c.mu.Unlock()
	switch {
	case delay <= 0:
		c.enqueue(dst, msg, false)
	case c.cfg.LegacyDelivery:
		// Kept out of line: a closure here would capture msg and force every
		// zero-delay post — the hot path — to heap-allocate the message.
		c.postLegacy(dst, msg, delay)
	default:
		c.wheel.schedule(dst, msg, delay, 0)
	}
}

// postLegacy delivers a delayed message the seed way: a fresh sleeping
// goroutine per message.
//
//go:noinline
func (c *Cluster) postLegacy(dst *liveNode, msg message, delay time.Duration) {
	go func() {
		time.Sleep(delay)
		c.enqueue(dst, msg, false)
	}()
}

// armTimer schedules a timer message, taking its pending credit at arm time:
// an armed timer keeps the ledger non-zero, so Stop cannot tear the delivery
// plane down under a pending timer.
func (c *Cluster) armTimer(ln *liveNode, d time.Duration, msg message) {
	c.mu.Lock()
	if c.state == clusterStopped {
		c.mu.Unlock()
		return
	}
	c.pending++
	c.mu.Unlock()
	if c.cfg.LegacyDelivery {
		c.armLegacy(ln, d, msg)
		return
	}
	c.wheel.schedule(ln, msg, d, 0)
}

// takeFlushCredit reserves one ledger credit for an AdaptiveFlush drain-end
// flush — armTimer's role for the batch-window timer, without a timer. A
// buffered report must keep the ledger non-zero until its flush, or Drain and
// Stop could observe quiescence with reports still sitting in outBuf. The
// credit is released by runNode after the flush runs (or after the buffer is
// discarded because the node went down). Returns false after stopped, when
// nothing may enter the ledger anymore.
func (c *Cluster) takeFlushCredit() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == clusterStopped {
		return false
	}
	c.pending++
	return true
}

// armLegacy is postLegacy's timer twin, out of line for the same reason: the
// AfterFunc closure must not make wheel-mode armTimer heap-allocate msg.
//
//go:noinline
func (c *Cluster) armLegacy(ln *liveNode, d time.Duration, msg message) {
	time.AfterFunc(d, func() { c.enqueue(ln, msg, false) })
}

// done returns one message's credit to the ledger.
func (c *Cluster) done() {
	c.mu.Lock()
	c.pending--
	if c.pending == 0 {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// record stores a detection and notifies the sinks. It runs on the detecting
// node's worker, so SolutionFound events keep that node's causal order.
func (c *Cluster) record(d Detection) {
	c.mu.Lock()
	c.dets = append(c.dets, d)
	c.mu.Unlock()
	c.emitEvent(obsv.Event{Kind: obsv.SolutionFound, Node: d.Node, Peer: obsv.NoPeer,
		Seq: d.Det.Agg.Seq, Count: 1, AtRoot: d.AtRoot, Agg: d.Det.Agg, Set: d.Det.Set})
	if c.cfg.OnDetect != nil {
		c.cfg.OnDetect(d)
	}
}

// notifyRepair records a concluded reattachment and runs the user callback
// outside the cluster lock.
func (c *Cluster) notifyRepair(orphan, newParent int) {
	c.mu.Lock()
	c.repairs = append(c.repairs, RepairEvent{Orphan: orphan, NewParent: newParent})
	c.mu.Unlock()
	c.emitEvent(obsv.Event{Kind: obsv.RepairConcluded, Node: orphan, Peer: newParent, Count: 1})
	if c.cfg.OnRepair != nil {
		c.cfg.OnRepair(orphan, newParent)
	}
}

// send routes a message: through the in-process mailbox when this cluster
// hosts the destination (or is not distributed at all), wire-encoded over
// the transport otherwise. The transport is best-effort and asynchronous, so
// remote sends take no ledger credit — like the paper's network, a remote
// message in flight is outside any process's knowledge until it arrives.
func (c *Cluster) send(to int, msg message, delay time.Duration) {
	if _, local := c.nodes[to]; local || !c.remote {
		c.post(to, msg, delay)
		return
	}
	if msg.kind == msgReport {
		// Reports — the O(n)-sized hot-path messages — ride wire format v2
		// through a pooled scratch buffer. Send must not retain the frame
		// (transport.Transport contract), so the buffer recycles as soon as
		// it returns; per-link delta chaining, if any, happens inside the
		// transport against its own connection state.
		buf := wire.GetBuffer()
		*buf = wire.AppendReportV2(*buf, wire.Report{Iv: msg.iv, LinkSeq: msg.seq, Epoch: msg.epoch}, nil)
		c.cfg.Transport.Send(to, *buf)
		wire.PutBuffer(buf)
		return
	}
	if frame := encodeMessage(msg); frame != nil {
		c.cfg.Transport.Send(to, frame)
	}
}

// sendBatch routes a flushed report-batch: one in-process message when the
// destination is hosted here, one self-contained wire batch frame (reports
// delta-chained against each other inside the frame, encoded through a
// pooled buffer — the zero-allocation batched encode path) otherwise.
func (c *Cluster) sendBatch(to, from int, batch []repair.Report, born int64, delay time.Duration) {
	if _, local := c.nodes[to]; local || !c.remote {
		c.post(to, message{kind: msgReportBatch, from: from, reps: batch, born: born}, delay)
		return
	}
	buf := wire.GetBuffer()
	*buf = wire.AppendReportBatch(*buf, batch)
	c.cfg.Transport.Send(to, *buf)
	wire.PutBuffer(buf)
}

// encodeMessage wire-encodes a mailbox message for a remote peer. Timer kinds
// never travel; msgLocal never leaves its process; reports take the pooled
// v2 path in send.
func encodeMessage(msg message) []byte {
	switch msg.kind {
	case msgHeartbeat:
		return wire.EncodeHeartbeat(wire.Heartbeat{
			Sender: msg.from, Epoch: msg.epoch,
			RootSeeking: msg.hb.rootSeeking, Covered: msg.hb.covered,
		})
	case msgAttach:
		return wire.EncodeAttach(wire.Attach{From: msg.from, Msg: msg.att})
	default:
		panic(fmt.Sprintf("livenet: message kind %d cannot be wire-encoded", msg.kind))
	}
}

// onFrame is the transport's receive callback: decode, then hand the message
// to the addressed node through the same credited post as local traffic.
// Frames that fail to decode are counted and dropped — the wire package's
// typed errors guarantee a corrupt frame cannot crash the node, one of the
// satellite guarantees of the transport work.
func (c *Cluster) onFrame(to int, frame []byte) {
	ln, ok := c.nodes[to]
	if !ok {
		return // misrouted: addressed to a node another participant hosts
	}
	kind, err := wire.FrameKind(frame)
	if err != nil {
		ln.m.badFrames.Add(1)
		return
	}
	var msg message
	switch kind {
	case wire.KindReport:
		r, err := wire.DecodeReport(frame)
		if err != nil {
			ln.m.badFrames.Add(1)
			return
		}
		// A node only reports aggregates it created, so the interval's
		// origin identifies the sender.
		msg = message{kind: msgReport, from: r.Iv.Origin, seq: r.LinkSeq, epoch: r.Epoch, iv: r.Iv}
	case wire.KindReportBatch:
		batch, err := wire.DecodeReportBatch(frame)
		if err != nil || len(batch) == 0 {
			ln.m.badFrames.Add(1)
			return
		}
		msg = message{kind: msgReportBatch, from: batch[0].Iv.Origin, reps: batch}
	case wire.KindHeartbeat:
		hb, err := wire.DecodeHeartbeat(frame)
		if err != nil {
			ln.m.badFrames.Add(1)
			return
		}
		msg = message{kind: msgHeartbeat, from: hb.Sender, epoch: hb.Epoch,
			hb: hbInfo{rootSeeking: hb.RootSeeking, covered: hb.Covered}}
	case wire.KindAttach:
		a, err := wire.DecodeAttach(frame)
		if err != nil {
			ln.m.badFrames.Add(1)
			return
		}
		msg = message{kind: msgAttach, from: a.From, att: a.Msg}
	default:
		// Valid framing of a kind a bare cluster does not consume (a tenant
		// envelope that escaped its mux, or a future addition): dropped, not
		// a zero-value message.
		ln.m.badFrames.Add(1)
		return
	}
	c.post(to, msg, 0)
}

// rootSeekingLocked reports whether the root of id's current tree (per the
// mirror) is another node that is itself renegotiating a parent — in which
// case id must refuse adoption requests, or a cycle of dangling trees could
// form. The simulator propagates this flag on heartbeats; here the mirror is
// exact. Caller holds mu.
func (c *Cluster) rootSeekingLocked(id int) bool {
	r := id
	for c.topo.Parent(r) != tree.None {
		r = c.topo.Parent(r)
	}
	return r != id && c.seeking[r]
}
