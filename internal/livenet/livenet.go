// Package livenet runs the hierarchical detector over real concurrency: one
// goroutine per process, Go channels as the communication links. It is the
// natural Go embedding of the paper's system model — asynchronous processes,
// asynchronous non-FIFO message passing — and complements internal/simnet,
// which trades real concurrency for determinism.
//
// Delivery of each report is handed to its own goroutine with a small
// pseudo-random delay, so messages on one link genuinely race and arrive out
// of order; the same per-link sequence numbers and resequencers as the
// simulated runtime restore queue order at the receiver.
//
// livenet intentionally supports only the failure-free fast path: it is the
// concurrency showcase and embedding template. Failure injection, heartbeats
// and tree repair live in internal/monitor where they are deterministic and
// exhaustively testable.
package livenet

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hierdet/internal/core"
	"hierdet/internal/interval"
	"hierdet/internal/tree"
)

// Config parameterizes a cluster.
type Config struct {
	// Topology is the spanning tree; one goroutine runs per alive node.
	Topology *tree.Topology
	// MaxDelay bounds the random per-message delivery delay (default 200µs;
	// larger values force more reordering).
	MaxDelay time.Duration
	// Seed drives the delay distribution.
	Seed int64
	// Strict and KeepMembers configure the detector nodes (see core.Config).
	Strict, KeepMembers bool
}

// Detection is one predicate satisfaction observed by the live cluster.
type Detection struct {
	Node   int
	AtRoot bool
	Det    core.Detection
}

// message is what flows through a node's inbox.
type message struct {
	from    int
	linkSeq int
	iv      interval.Interval
	local   bool
}

// Cluster is a running set of detector goroutines. Create with New, feed
// local intervals with Observe (or OnIntervalFunc per process), then call
// Stop to drain and collect every detection.
type Cluster struct {
	cfg   Config
	topo  *tree.Topology
	nodes map[int]*liveNode

	pending atomic.Int64 // messages enqueued or in flight
	detMu   sync.Mutex
	dets    []Detection

	stopped bool
	wg      sync.WaitGroup
}

type liveNode struct {
	c      *Cluster
	id     int
	parent int
	inbox  chan message
	node   *core.Node
	reseq  map[int]*resequencer
	outSeq int
	rng    *rand.Rand
	rngMu  sync.Mutex
}

// New builds and starts a cluster over the alive nodes of the topology.
func New(cfg Config) *Cluster {
	if cfg.Topology == nil {
		panic("livenet: Topology is required")
	}
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = 200 * time.Microsecond
	}
	c := &Cluster{cfg: cfg, topo: cfg.Topology, nodes: make(map[int]*liveNode)}
	coreCfg := core.Config{N: cfg.Topology.N(), Strict: cfg.Strict, KeepMembers: cfg.KeepMembers}
	for _, id := range cfg.Topology.AliveNodes() {
		ln := &liveNode{
			c:      c,
			id:     id,
			parent: cfg.Topology.Parent(id),
			inbox:  make(chan message, 256),
			node:   core.NewNode(id, coreCfg, true),
			reseq:  make(map[int]*resequencer),
			rng:    rand.New(rand.NewSource(cfg.Seed ^ int64(id)<<17)),
		}
		for _, child := range cfg.Topology.Children(id) {
			ln.node.AddChild(child)
			ln.reseq[child] = newResequencer()
		}
		c.nodes[id] = ln
	}
	for _, ln := range c.nodes {
		c.wg.Add(1)
		go ln.run()
	}
	return c
}

// Observe feeds one completed local-predicate interval of process p into the
// cluster. Intervals of one process must be observed in generation order
// (they are at the emitting process by construction); different processes
// may call Observe concurrently. Observe must not be called after Stop.
func (c *Cluster) Observe(p int, iv interval.Interval) {
	if c.stopped {
		panic("livenet: Observe after Stop")
	}
	ln, ok := c.nodes[p]
	if !ok {
		panic(fmt.Sprintf("livenet: Observe for unknown process %d", p))
	}
	c.pending.Add(1)
	ln.inbox <- message{from: p, iv: iv, local: true}
}

// Stop waits for the cluster to go idle, shuts the goroutines down and
// returns every detection, ordered by node id and then detection order at
// that node.
func (c *Cluster) Stop() []Detection {
	if c.stopped {
		panic("livenet: Stop called twice")
	}
	c.stopped = true
	// Quiesce: pending counts every undelivered or in-process message;
	// handlers increment for the sends they trigger before decrementing
	// themselves, so 0 means the whole cascade finished.
	for c.pending.Load() != 0 {
		time.Sleep(200 * time.Microsecond)
	}
	for _, ln := range c.nodes {
		close(ln.inbox)
	}
	c.wg.Wait()
	c.detMu.Lock()
	defer c.detMu.Unlock()
	out := append([]Detection(nil), c.dets...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Det.Agg.Seq < out[j].Det.Agg.Seq
	})
	return out
}

func (ln *liveNode) run() {
	defer ln.c.wg.Done()
	for msg := range ln.inbox {
		ln.handle(msg)
		ln.c.pending.Add(-1)
	}
}

func (ln *liveNode) handle(msg message) {
	var ivs []interval.Interval
	src := msg.from
	if msg.local {
		ivs = []interval.Interval{msg.iv}
	} else {
		rs, ok := ln.reseq[msg.from]
		if !ok {
			return
		}
		ivs = rs.accept(msg.linkSeq, msg.iv)
	}
	for _, iv := range ivs {
		for _, det := range ln.node.OnInterval(src, iv) {
			ln.c.record(Detection{Node: ln.id, AtRoot: ln.parent == tree.None, Det: det})
			if ln.parent != tree.None {
				ln.report(det.Agg)
			}
		}
	}
}

// report ships an aggregate to the parent on its own goroutine after a
// random delay — deliberately unordered with respect to other reports on the
// same link.
func (ln *liveNode) report(agg interval.Interval) {
	parentInbox := ln.c.nodes[ln.parent].inbox
	msg := message{from: ln.id, linkSeq: ln.outSeq, iv: agg}
	ln.outSeq++
	ln.rngMu.Lock()
	delay := time.Duration(ln.rng.Int63n(int64(ln.c.cfg.MaxDelay)))
	ln.rngMu.Unlock()
	ln.c.pending.Add(1)
	go func() {
		time.Sleep(delay)
		parentInbox <- msg
	}()
}

func (c *Cluster) record(d Detection) {
	c.detMu.Lock()
	c.dets = append(c.dets, d)
	c.detMu.Unlock()
}

// resequencer mirrors internal/monitor's: restore per-link order.
type resequencer struct {
	next    int
	pending map[int]interval.Interval
}

func newResequencer() *resequencer {
	return &resequencer{pending: make(map[int]interval.Interval)}
}

func (q *resequencer) accept(seq int, iv interval.Interval) []interval.Interval {
	if seq < q.next {
		return nil
	}
	q.pending[seq] = iv
	var out []interval.Interval
	for {
		next, ok := q.pending[q.next]
		if !ok {
			return out
		}
		delete(q.pending, q.next)
		q.next++
		out = append(out, next)
	}
}
