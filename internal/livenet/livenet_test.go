package livenet

import (
	"sort"
	"sync"
	"testing"
	"time"

	"hierdet/internal/interval"
	"hierdet/internal/trace"
	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// feed pushes an execution's streams into the cluster, one goroutine per
// process (per-process order preserved, cross-process order raced).
func feed(c *Cluster, e *workload.Execution, topo *tree.Topology) {
	var wg sync.WaitGroup
	for p := range e.Streams {
		if !topo.Alive(p) {
			continue
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for _, iv := range e.Streams[p] {
				c.Observe(p, iv)
				time.Sleep(10 * time.Microsecond)
			}
		}(p)
	}
	wg.Wait()
}

func TestLiveClusterDetectsAllPulses(t *testing.T) {
	topo := tree.Balanced(2, 2)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: 15, Seed: 1, PGlobal: 1})
	c := New(Config{Topology: topo, Seed: 3, Strict: true, KeepMembers: true})
	feed(c, e, topo)
	dets := c.Stop()

	roots := 0
	for _, d := range dets {
		if d.AtRoot {
			roots++
			if !interval.OverlapAll(interval.BaseIntervals(d.Det.Agg)) {
				t.Fatal("false detection")
			}
		}
	}
	if roots != 15 {
		t.Fatalf("root detections = %d, want 15", roots)
	}
}

func TestLiveClusterMatchesFlatReferenceOnChaos(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		topo := tree.Balanced(2, 2)
		e := workload.GenerateChaotic(workload.ChaoticConfig{N: 7, Steps: 700, Seed: int64(trial)})
		c := New(Config{Topology: topo, Seed: int64(trial), Strict: true, KeepMembers: true})
		feed(c, e, topo)
		dets := c.Stop()

		perNode := map[int]int{}
		for _, d := range dets {
			perNode[d.Node]++
		}
		for node := 0; node < topo.N(); node++ {
			span := topo.Subtree(node)
			sort.Ints(span)
			want := trace.FlatCount(e, span, int64(trial)+5)
			if perNode[node] != want {
				t.Errorf("trial %d node %d: live %d vs flat %d", trial, node, perNode[node], want)
			}
		}
	}
}

func TestLiveClusterGroupLevel(t *testing.T) {
	topo := tree.Balanced(2, 2)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: 20, Seed: 2, PGroup: 1})
	c := New(Config{Topology: topo, Seed: 5, Strict: true, KeepMembers: true})
	feed(c, e, topo)
	dets := c.Stop()

	// Group rounds never satisfy the global predicate...
	for _, d := range dets {
		if d.AtRoot && len(d.Det.Agg.Span) == 7 {
			t.Fatal("global detection from group-only workload")
		}
	}
	// ...but inner nodes see their subtree's occurrences.
	inner := 0
	for _, d := range dets {
		if d.Node == 1 || d.Node == 2 {
			inner++
		}
	}
	if inner == 0 {
		t.Fatal("no group-level detections at inner nodes")
	}
}

func TestLiveClusterHeavyReordering(t *testing.T) {
	topo := tree.Balanced(2, 3)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: 10, Seed: 3, PGlobal: 1})
	// 2ms max delay with 10µs feed pacing: reports from one link overtake
	// each other constantly; Strict panics if resequencing ever fails.
	c := New(Config{Topology: topo, Seed: 9, Strict: true, KeepMembers: true, MaxDelay: 2 * time.Millisecond})
	feed(c, e, topo)
	dets := c.Stop()
	roots := 0
	for _, d := range dets {
		if d.AtRoot {
			roots++
		}
	}
	if roots != 10 {
		t.Fatalf("root detections = %d, want 10", roots)
	}
}

func TestLiveClusterValidation(t *testing.T) {
	topo := tree.Balanced(2, 1)
	c := New(Config{Topology: topo})
	defer c.Stop()
	for name, f := range map[string]func(){
		"nil-topo":    func() { New(Config{}) },
		"unknown-obs": func() { c.Observe(99, interval.Interval{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestStopTwicePanics(t *testing.T) {
	c := New(Config{Topology: tree.Balanced(2, 1)})
	c.Stop()
	defer func() {
		if recover() == nil {
			t.Error("second Stop did not panic")
		}
	}()
	c.Stop()
}
