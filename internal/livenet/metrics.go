package livenet

import (
	"sort"
	"sync/atomic"
)

// Metrics is a point-in-time snapshot of one node's runtime counters. All
// counters are maintained with atomics, so snapshots are safe at any moment
// — including while the cluster is running.
type Metrics struct {
	// MsgsIn and MsgsOut count network messages (reports and attach-protocol
	// traffic) handled and sent by this node. Local observations and timers
	// are not messages.
	MsgsIn, MsgsOut int
	// StaleReports counts reports that arrived from a process that is no
	// longer a child (in flight across a repair) and were dropped.
	StaleReports int
	// Duplicates counts reports the node's resequencers discarded as
	// redeliveries.
	Duplicates int
	// ReseqBuffered is the number of reports currently held back by the
	// node's resequencers waiting for a sequence gap; ReseqHighWater is the
	// largest value it has reached.
	ReseqBuffered, ReseqHighWater int
	// Detections counts solution sets found at this node.
	Detections int
	// Repairs counts reattachments this node concluded as the orphan root
	// (adoptions plus partition give-ups).
	Repairs int
	// ChildDrops counts child queues this node dropped because the child
	// was confirmed dead.
	ChildDrops int
	// Heartbeats counts heartbeat messages this node handled (distributed
	// mode only; single-process beacons are timestamps, not messages).
	Heartbeats int
	// BadFrames counts transport frames addressed to this node that failed
	// wire decoding and were dropped (distributed mode only).
	BadFrames int
	// BatchFlushes counts batch-window flushes this node sent its parent
	// (Config.BatchWindow > 0 only); MsgsOut counts each flush as one
	// message, so reports-per-flush is the coalescing win.
	BatchFlushes int
	// MailboxHighWater is the deepest this node's mailbox shard has been —
	// the backpressure signal of the sharded delivery plane.
	MailboxHighWater int
}

// nodeMetrics is the atomic backing store for Metrics. Gauges are written
// only on the node's goroutine; everything may be read from anywhere.
type nodeMetrics struct {
	msgsIn, msgsOut atomic.Int64
	stale           atomic.Int64
	duplicates      atomic.Int64
	reseqBuffered   atomic.Int64
	reseqHigh       atomic.Int64
	detections      atomic.Int64
	repairs         atomic.Int64
	childDrops      atomic.Int64
	heartbeats      atomic.Int64
	badFrames       atomic.Int64
	batchFlushes    atomic.Int64
}

// gaugeReseq republishes the resequencer-depth gauges after a queue changed.
// Runs on the node's goroutine, the only writer of reseq and the gauges.
func (ln *liveNode) gaugeReseq() {
	buffered, dropped := 0, 0
	for _, q := range ln.reseq {
		buffered += q.Buffered()
		dropped += q.Dropped()
	}
	ln.m.reseqBuffered.Store(int64(buffered))
	if int64(buffered) > ln.m.reseqHigh.Load() {
		ln.m.reseqHigh.Store(int64(buffered))
	}
	ln.m.duplicates.Store(int64(dropped))
}

// snapshot reads the counters.
func (m *nodeMetrics) snapshot() Metrics {
	return Metrics{
		MsgsIn:         int(m.msgsIn.Load()),
		MsgsOut:        int(m.msgsOut.Load()),
		StaleReports:   int(m.stale.Load()),
		Duplicates:     int(m.duplicates.Load()),
		ReseqBuffered:  int(m.reseqBuffered.Load()),
		ReseqHighWater: int(m.reseqHigh.Load()),
		Detections:     int(m.detections.Load()),
		Repairs:        int(m.repairs.Load()),
		ChildDrops:     int(m.childDrops.Load()),
		Heartbeats:     int(m.heartbeats.Load()),
		BadFrames:      int(m.badFrames.Load()),
		BatchFlushes:   int(m.batchFlushes.Load()),
	}
}

// Metrics returns a snapshot of every node's runtime counters, keyed by
// node id. Safe to call at any time, including after Stop.
func (c *Cluster) Metrics() map[int]Metrics {
	out := make(map[int]Metrics, len(c.nodes))
	for id, ln := range c.nodes {
		m := ln.m.snapshot()
		m.MailboxHighWater = ln.mb.highWater()
		out[id] = m
	}
	return out
}

// NodeIDs returns the cluster's process ids, ascending — the stable
// iteration order for Metrics.
func (c *Cluster) NodeIDs() []int {
	out := make([]int, 0, len(c.nodes))
	for id := range c.nodes {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
