package livenet

import (
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"hierdet/internal/obsv"
)

// Metrics is a point-in-time snapshot of one node's runtime counters. All
// counters are maintained with atomics, so snapshots are safe at any moment
// — including while the cluster is running, killing or repairing.
type Metrics struct {
	// MsgsIn and MsgsOut count network messages (reports and attach-protocol
	// traffic) handled and sent by this node. Local observations and timers
	// are not messages.
	MsgsIn  int `json:"msgsIn"`
	MsgsOut int `json:"msgsOut"`
	// StaleReports counts reports that arrived from a process that is no
	// longer a child (in flight across a repair) and were dropped.
	StaleReports int `json:"staleReports"`
	// Duplicates counts reports the node's resequencers discarded as
	// redeliveries.
	Duplicates int `json:"duplicates"`
	// ReseqBuffered is the number of reports currently held back by the
	// node's resequencers waiting for a sequence gap; ReseqHighWater is the
	// largest value it has reached.
	ReseqBuffered  int `json:"reseqBuffered"`
	ReseqHighWater int `json:"reseqHighWater"`
	// Detections counts solution sets found at this node.
	Detections int `json:"detections"`
	// IntervalsIn counts intervals the detector accepted into its queues
	// (its own plus every child stream); Pruned and Eliminated count queue
	// heads deleted by the repeated-detection rule (Eq. 10 / Eq. 9) and the
	// elimination loop respectively — the detector-side visibility the
	// observability layer adds.
	IntervalsIn int `json:"intervalsIn"`
	Pruned      int `json:"pruned"`
	Eliminated  int `json:"eliminated"`
	// VecComparisons counts the vector-clock comparisons Algorithm 1
	// enumerated at this node's detector; FilteredComparisons and MemoHits
	// break out how many of those the comparison-pruning layer answered
	// without scanning clocks — refuted by a one-word digest compare, or
	// served from the cross-round verdict memo. Both breakdowns are zero
	// under SequentialDetect (the oracle runs unpruned).
	VecComparisons      int `json:"vecComparisons"`
	FilteredComparisons int `json:"filteredComparisons"`
	MemoHits            int `json:"memoHits"`
	// QueueDepth is the detector's current interval residency across its
	// queues; QueueHighWater is the node-level peak — the most intervals
	// ever *concurrently* resident, not the sum of per-queue peaks (queues
	// peak at different times, so that sum overstates pressure).
	QueueDepth     int `json:"queueDepth"`
	QueueHighWater int `json:"queueHighWater"`
	// Repairs counts reattachments this node concluded as the orphan root
	// (adoptions plus partition give-ups).
	Repairs int `json:"repairs"`
	// ChildDrops counts child queues this node dropped because the child
	// was confirmed dead.
	ChildDrops int `json:"childDrops"`
	// Heartbeats counts heartbeat messages this node handled (distributed
	// mode only; single-process beacons are timestamps, not messages).
	Heartbeats int `json:"heartbeats"`
	// BadFrames counts transport frames addressed to this node that failed
	// wire decoding and were dropped (distributed mode only).
	BadFrames int `json:"badFrames"`
	// BatchFlushes counts batch-window flushes this node sent its parent
	// (Config.BatchWindow > 0 only); MsgsOut counts each flush as one
	// message, so reports-per-flush is the coalescing win.
	BatchFlushes int `json:"batchFlushes"`
	// MailboxDepth is the node's current mailbox shard depth;
	// MailboxHighWater is the deepest the shard has been — the backpressure
	// signals of the sharded delivery plane.
	MailboxDepth     int `json:"mailboxDepth"`
	MailboxHighWater int `json:"mailboxHighWater"`
}

// NodeMetrics pairs a node id with its Metrics snapshot — the
// iteration-stable form of the per-node metrics (Cluster.MetricsByNode).
type NodeMetrics struct {
	ID int `json:"id"`
	Metrics
}

// nodeMetrics is the atomic backing store for Metrics. Gauges are written
// only on the node's goroutine; everything may be read from anywhere.
type nodeMetrics struct {
	msgsIn, msgsOut atomic.Int64
	stale           atomic.Int64
	duplicates      atomic.Int64
	reseqBuffered   atomic.Int64
	reseqHigh       atomic.Int64
	detections      atomic.Int64
	intervalsIn     atomic.Int64
	pruned          atomic.Int64
	eliminated      atomic.Int64
	vecCmps         atomic.Int64
	filteredCmps    atomic.Int64
	memoHits        atomic.Int64
	queueDepth      atomic.Int64
	queueHigh       atomic.Int64
	repairs         atomic.Int64
	childDrops      atomic.Int64
	heartbeats      atomic.Int64
	badFrames       atomic.Int64
	batchFlushes    atomic.Int64
}

// gaugeReseq republishes the resequencer-depth gauges after a queue changed.
// Runs on the node's goroutine, the only writer of reseq and the gauges.
func (ln *liveNode) gaugeReseq() {
	buffered, dropped := 0, 0
	for _, q := range ln.reseq {
		buffered += q.Buffered()
		dropped += q.Dropped()
	}
	ln.m.reseqBuffered.Store(int64(buffered))
	if int64(buffered) > ln.m.reseqHigh.Load() {
		ln.m.reseqHigh.Store(int64(buffered))
	}
	ln.m.duplicates.Store(int64(dropped))
}

// syncCoreStats mirrors the detector's own counters (worker-confined inside
// core.Node) into the node's atomics so scrapes and snapshots can read them
// from any goroutine, and emits the IntervalPruned event for heads the last
// detection deleted. Runs on the node's worker after every detector call.
func (ln *liveNode) syncCoreStats() {
	st := ln.node.Stats()
	ln.m.intervalsIn.Store(int64(st.IntervalsIn))
	ln.m.eliminated.Store(int64(st.Eliminated))
	ln.m.pruned.Store(int64(st.Pruned))
	ln.m.vecCmps.Store(int64(st.VecComparisons))
	ln.m.filteredCmps.Store(int64(st.FilteredComparisons))
	ln.m.memoHits.Store(int64(st.MemoHits))
	depth, high := ln.node.QueueSizes()
	ln.m.queueDepth.Store(int64(depth))
	ln.m.queueHigh.Store(int64(high))
	if d := st.Pruned - ln.lastPruned; d > 0 {
		ln.lastPruned = st.Pruned
		ln.c.emitEvent(obsv.Event{Kind: obsv.IntervalPruned, Node: ln.id, Peer: obsv.NoPeer, Count: d})
	}
}

// snapshot reads the counters.
func (m *nodeMetrics) snapshot() Metrics {
	return Metrics{
		MsgsIn:              int(m.msgsIn.Load()),
		MsgsOut:             int(m.msgsOut.Load()),
		StaleReports:        int(m.stale.Load()),
		Duplicates:          int(m.duplicates.Load()),
		ReseqBuffered:       int(m.reseqBuffered.Load()),
		ReseqHighWater:      int(m.reseqHigh.Load()),
		Detections:          int(m.detections.Load()),
		IntervalsIn:         int(m.intervalsIn.Load()),
		Pruned:              int(m.pruned.Load()),
		Eliminated:          int(m.eliminated.Load()),
		VecComparisons:      int(m.vecCmps.Load()),
		FilteredComparisons: int(m.filteredCmps.Load()),
		MemoHits:            int(m.memoHits.Load()),
		QueueDepth:          int(m.queueDepth.Load()),
		QueueHighWater:      int(m.queueHigh.Load()),
		Repairs:             int(m.repairs.Load()),
		ChildDrops:          int(m.childDrops.Load()),
		Heartbeats:          int(m.heartbeats.Load()),
		BadFrames:           int(m.badFrames.Load()),
		BatchFlushes:        int(m.batchFlushes.Load()),
	}
}

// Metrics returns a snapshot of every node's runtime counters, keyed by
// node id. Safe to call at any time, including after Stop. Map iteration
// order is random; use MetricsByNode for a stable order.
func (c *Cluster) Metrics() map[int]Metrics {
	out := make(map[int]Metrics, len(c.nodes))
	for id, ln := range c.nodes {
		out[id] = ln.snapshotMetrics()
	}
	return out
}

// MetricsByNode returns the same snapshots as Metrics in iteration-stable
// form: one NodeMetrics per hosted node, ascending by id.
func (c *Cluster) MetricsByNode() []NodeMetrics {
	out := make([]NodeMetrics, 0, len(c.nodes))
	for _, id := range c.NodeIDs() {
		out = append(out, NodeMetrics{ID: id, Metrics: c.nodes[id].snapshotMetrics()})
	}
	return out
}

func (ln *liveNode) snapshotMetrics() Metrics {
	m := ln.m.snapshot()
	m.MailboxDepth, m.MailboxHighWater = ln.mb.depths()
	return m
}

// NodeIDs returns the cluster's process ids, ascending — the stable
// iteration order for Metrics.
func (c *Cluster) NodeIDs() []int {
	out := make([]int, 0, len(c.nodes))
	for id := range c.nodes {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// ClusterMetrics is an aggregate snapshot across every plane of one cluster:
// detector nodes (sums, plus maxima where a sum would mislead), the
// scheduler (worker pool and mailbox shards), the timer wheel, and the
// lifecycle ledger. Field order is fixed and every field is tagged, so the
// JSON encoding is stable across runs and releases — a scrape-once document
// for dashboards and test assertions.
type ClusterMetrics struct {
	Nodes   int `json:"nodes"`
	Workers int `json:"workers"`

	MsgsIn         int64 `json:"msgsIn"`
	MsgsOut        int64 `json:"msgsOut"`
	IntervalsIn    int64 `json:"intervalsIn"`
	Detections     int64 `json:"detections"`
	Pruned         int64 `json:"pruned"`
	Eliminated     int64 `json:"eliminated"`
	Duplicates     int64 `json:"duplicates"`
	StaleReports   int64 `json:"staleReports"`
	Repairs        int64 `json:"repairs"`
	ChildDrops     int64 `json:"childDrops"`
	Heartbeats     int64 `json:"heartbeats"`
	BadFrames      int64 `json:"badFrames"`
	BatchFlushes   int64 `json:"batchFlushes"`
	ReseqBuffered  int64 `json:"reseqBuffered"`
	ReseqHighWater int64 `json:"reseqHighWater"` // max across nodes

	QueueDepth     int64 `json:"queueDepth"`     // sum of current detector residencies
	QueueHighWater int64 `json:"queueHighWater"` // max node-level peak across nodes

	// Comparison-pruning layer: comparisons Algorithm 1 enumerated across
	// every detector, how many were answered by the digest guard or the
	// verdict memo (zero under SequentialDetect), and the single worst
	// node's enumerated share — the hot-spot the hierarchy is supposed to
	// flatten.
	VecComparisons      int64 `json:"vecComparisons"`
	FilteredComparisons int64 `json:"filteredComparisons"`
	MemoHits            int64 `json:"memoHits"`
	WorstNodeCmps       int64 `json:"worstNodeCmps"` // max VecComparisons across nodes

	MailboxDepth     int `json:"mailboxDepth"`     // sum of current depths
	MailboxHighWater int `json:"mailboxHighWater"` // max across nodes
	WorkersBusy      int `json:"workersBusy"`
	RunqDepth        int `json:"runqDepth"`

	// Parallel detection engine (zero under SequentialDetect): the shared
	// comparison pool's size and occupancy, and how many comparison rounds
	// fanned out across it versus staying inline below the threshold.
	DetectWorkers int   `json:"detectWorkers"`
	DetectBusy    int64 `json:"detectBusy"`
	DetectFanouts int64 `json:"detectFanouts"`
	DetectInlines int64 `json:"detectInlines"`
	DetectTasks   int64 `json:"detectTasks"`

	Drains          int64 `json:"drains"`
	MessagesDrained int64 `json:"messagesDrained"`

	WheelEntries  int   `json:"wheelEntries"`
	WheelLagNanos int64 `json:"wheelLagNanos"`

	PendingCredits  int `json:"pendingCredits"`
	KilledProcesses int `json:"killedProcesses"`

	// Observe→SolutionFound latency: how long after an interval entered the
	// cluster the detection its cascade completed was recorded, estimated
	// from the hierdet_latency_observe_to_solution_seconds histogram
	// (quantiles are bucket-interpolated; see obsv.Histogram.Quantile).
	// Count is observations; the quantiles are in seconds and NaN-free
	// (zero when the histogram is empty). Stamps do not cross a transport,
	// so in distributed mode this covers the in-process pipeline only.
	LatencyCount int64   `json:"latencyCount"`
	LatencyP50   float64 `json:"latencyP50Seconds"`
	LatencyP99   float64 `json:"latencyP99Seconds"`

	// Events counts every lifecycle event emitted so far by kind name
	// (counted whether or not an Events sink is installed). encoding/json
	// sorts map keys, so the encoding stays stable.
	Events map[string]int64 `json:"events"`
}

// ClusterMetrics aggregates a snapshot of the whole cluster. Safe at any
// time, including concurrently with Observe, Kill, repair and Stop.
func (c *Cluster) ClusterMetrics() ClusterMetrics {
	out := ClusterMetrics{
		Nodes:   len(c.nodes),
		Workers: c.workers,
	}
	for _, ln := range c.nodes {
		m := ln.snapshotMetrics()
		out.MsgsIn += int64(m.MsgsIn)
		out.MsgsOut += int64(m.MsgsOut)
		out.IntervalsIn += int64(m.IntervalsIn)
		out.Detections += int64(m.Detections)
		out.Pruned += int64(m.Pruned)
		out.Eliminated += int64(m.Eliminated)
		out.Duplicates += int64(m.Duplicates)
		out.StaleReports += int64(m.StaleReports)
		out.Repairs += int64(m.Repairs)
		out.ChildDrops += int64(m.ChildDrops)
		out.Heartbeats += int64(m.Heartbeats)
		out.BadFrames += int64(m.BadFrames)
		out.BatchFlushes += int64(m.BatchFlushes)
		out.ReseqBuffered += int64(m.ReseqBuffered)
		if int64(m.ReseqHighWater) > out.ReseqHighWater {
			out.ReseqHighWater = int64(m.ReseqHighWater)
		}
		out.QueueDepth += int64(m.QueueDepth)
		if int64(m.QueueHighWater) > out.QueueHighWater {
			out.QueueHighWater = int64(m.QueueHighWater)
		}
		out.VecComparisons += int64(m.VecComparisons)
		out.FilteredComparisons += int64(m.FilteredComparisons)
		out.MemoHits += int64(m.MemoHits)
		if int64(m.VecComparisons) > out.WorstNodeCmps {
			out.WorstNodeCmps = int64(m.VecComparisons)
		}
		out.MailboxDepth += m.MailboxDepth
		if m.MailboxHighWater > out.MailboxHighWater {
			out.MailboxHighWater = m.MailboxHighWater
		}
	}
	if p := c.detectPool; p != nil {
		out.DetectWorkers = p.Workers()
		out.DetectBusy = p.Busy()
		out.DetectFanouts = p.Fanouts()
		out.DetectInlines = p.Inlines()
		out.DetectTasks = p.Tasks()
	}
	out.WorkersBusy = int(c.busyWorkers.Load())
	out.RunqDepth = c.sched.depth()
	out.Drains = c.drains.Load()
	out.MessagesDrained = c.drained.Load()
	out.WheelEntries = c.wheel.entries()
	out.WheelLagNanos = c.wheel.lagNanos.Load()
	c.mu.Lock()
	out.PendingCredits = c.pending
	out.KilledProcesses = len(c.killed)
	c.mu.Unlock()
	if h := c.latHist; h != nil {
		out.LatencyCount = h.Count()
		if out.LatencyCount > 0 {
			out.LatencyP50 = h.Quantile(0.50)
			out.LatencyP99 = h.Quantile(0.99)
		}
	}
	out.Events = make(map[string]int64, len(c.evCounts))
	for k, ctr := range c.evCounts {
		if ctr != nil {
			out.Events[obsv.EventKind(k).String()] = ctr.Value()
		}
	}
	return out
}

// Registry returns the cluster's metrics registry — every plane's families,
// ready for Prometheus exposition (obsv.Registry.Handler) or programmatic
// reads. The registry is created in New and stays valid after Stop.
func (c *Cluster) Registry() *obsv.Registry { return c.reg }

// noteLatency records one observe→SolutionFound measurement: a detection was
// just recorded whose triggering cascade began with an Observe stamped at
// born (UnixNano). Runs on the detecting node's worker.
func (c *Cluster) noteLatency(born int64) {
	if c.latHist == nil {
		return
	}
	if d := time.Now().UnixNano() - born; d > 0 {
		c.latHist.Observe(float64(d) / 1e9)
	}
}

// emitEvent counts e and hands it to the configured sink, if any. Callers
// emit from the goroutine that owns the event's node, which is what gives
// the stream its per-node causal order.
func (c *Cluster) emitEvent(e obsv.Event) {
	if ctr := c.evCounts[e.Kind]; ctr != nil {
		ctr.Inc()
	}
	if c.cfg.Events != nil {
		c.cfg.Events(e)
	}
}

// registerFamilies populates the cluster's registry: per-node counters and
// gauges (func-backed — the scrape reads the same atomics the snapshots do,
// no hot-path double bookkeeping), the scheduler plane, the timer wheel, the
// lifecycle ledger and the per-kind event counts. Called once from New.
func (c *Cluster) registerFamilies() {
	ids := c.NodeIDs()
	labels := make([]string, len(ids))
	for i, id := range ids {
		labels[i] = strconv.Itoa(id)
	}
	perNode := func(name, help string, kind obsv.Kind, get func(ln *liveNode) float64) {
		c.reg.Func(name, help, kind, []string{"node"}, func(emit func(float64, ...string)) {
			for i, id := range ids {
				emit(get(c.nodes[id]), labels[i])
			}
		})
	}
	perNode("hierdet_node_msgs_in_total", "Network messages handled by this node.", obsv.KindCounter,
		func(ln *liveNode) float64 { return float64(ln.m.msgsIn.Load()) })
	perNode("hierdet_node_msgs_out_total", "Network messages sent by this node.", obsv.KindCounter,
		func(ln *liveNode) float64 { return float64(ln.m.msgsOut.Load()) })
	perNode("hierdet_node_intervals_in_total", "Intervals accepted into the detector's queues.", obsv.KindCounter,
		func(ln *liveNode) float64 { return float64(ln.m.intervalsIn.Load()) })
	perNode("hierdet_node_detections_total", "Solution sets found at this node.", obsv.KindCounter,
		func(ln *liveNode) float64 { return float64(ln.m.detections.Load()) })
	perNode("hierdet_node_pruned_total", "Queue heads deleted by the repeated-detection rule (Eq. 10).", obsv.KindCounter,
		func(ln *liveNode) float64 { return float64(ln.m.pruned.Load()) })
	perNode("hierdet_node_eliminated_total", "Queue heads deleted by the elimination loop.", obsv.KindCounter,
		func(ln *liveNode) float64 { return float64(ln.m.eliminated.Load()) })
	perNode("hierdet_node_vec_comparisons_total", "Vector-clock comparisons enumerated by Algorithm 1 at this node.", obsv.KindCounter,
		func(ln *liveNode) float64 { return float64(ln.m.vecCmps.Load()) })
	perNode("hierdet_node_filtered_comparisons_total", "Comparisons refuted by the one-word digest guard without a clock scan.", obsv.KindCounter,
		func(ln *liveNode) float64 { return float64(ln.m.filteredCmps.Load()) })
	perNode("hierdet_node_memo_hits_total", "Comparisons answered from the cross-round verdict memo.", obsv.KindCounter,
		func(ln *liveNode) float64 { return float64(ln.m.memoHits.Load()) })
	perNode("hierdet_node_duplicates_total", "Reports discarded by resequencers as redeliveries.", obsv.KindCounter,
		func(ln *liveNode) float64 { return float64(ln.m.duplicates.Load()) })
	perNode("hierdet_node_stale_reports_total", "Reports dropped because the sender is no longer a child.", obsv.KindCounter,
		func(ln *liveNode) float64 { return float64(ln.m.stale.Load()) })
	perNode("hierdet_node_repairs_total", "Reattachments this node concluded as the orphan root.", obsv.KindCounter,
		func(ln *liveNode) float64 { return float64(ln.m.repairs.Load()) })
	perNode("hierdet_node_child_drops_total", "Child queues dropped after a confirmed death.", obsv.KindCounter,
		func(ln *liveNode) float64 { return float64(ln.m.childDrops.Load()) })
	perNode("hierdet_node_heartbeats_total", "Heartbeat messages handled (distributed mode).", obsv.KindCounter,
		func(ln *liveNode) float64 { return float64(ln.m.heartbeats.Load()) })
	perNode("hierdet_node_bad_frames_total", "Transport frames that failed wire decoding.", obsv.KindCounter,
		func(ln *liveNode) float64 { return float64(ln.m.badFrames.Load()) })
	perNode("hierdet_node_batch_flushes_total", "Batch-window flushes sent to the parent.", obsv.KindCounter,
		func(ln *liveNode) float64 { return float64(ln.m.batchFlushes.Load()) })
	perNode("hierdet_node_reseq_buffered", "Reports held back by resequencers awaiting a gap.", obsv.KindGauge,
		func(ln *liveNode) float64 { return float64(ln.m.reseqBuffered.Load()) })
	perNode("hierdet_node_reseq_high_water", "Deepest the node's resequencers have been.", obsv.KindGauge,
		func(ln *liveNode) float64 { return float64(ln.m.reseqHigh.Load()) })
	perNode("hierdet_node_mailbox_depth", "Current depth of the node's mailbox shard.", obsv.KindGauge,
		func(ln *liveNode) float64 { d, _ := ln.mb.depths(); return float64(d) })
	perNode("hierdet_node_mailbox_high_water", "Deepest the node's mailbox shard has been.", obsv.KindGauge,
		func(ln *liveNode) float64 { _, h := ln.mb.depths(); return float64(h) })
	perNode("hierdet_node_queue_depth", "Intervals currently resident across the detector's queues.", obsv.KindGauge,
		func(ln *liveNode) float64 { return float64(ln.m.queueDepth.Load()) })
	perNode("hierdet_node_queue_high_water", "Peak concurrent interval residency at this node (not the sum of per-queue peaks).", obsv.KindGauge,
		func(ln *liveNode) float64 { return float64(ln.m.queueHigh.Load()) })

	// Parallel detection engine: pool size is a fixed gauge; occupancy and
	// round/task traffic are func-backed reads of the pool's atomics. The
	// families exist only when the parallel engine is on, so a scrape of a
	// sequential-oracle cluster shows no parallel plane rather than zeros.
	if p := c.detectPool; p != nil {
		c.reg.Gauge("hierdet_detect_workers", "Comparison workers shared by the parallel detection engine.").Set(float64(p.Workers()))
		c.reg.Func("hierdet_detect_busy", "Comparison workers currently executing round work (parallel-drain occupancy).",
			obsv.KindGauge, nil, func(emit func(float64, ...string)) { emit(float64(p.Busy())) })
		c.reg.Func("hierdet_detect_fanout_rounds_total", "Comparison rounds partitioned across the pool.",
			obsv.KindCounter, nil, func(emit func(float64, ...string)) { emit(float64(p.Fanouts())) })
		c.reg.Func("hierdet_detect_inline_rounds_total", "Comparison rounds executed inline below the fanout threshold.",
			obsv.KindCounter, nil, func(emit func(float64, ...string)) { emit(float64(p.Inlines())) })
		c.reg.Func("hierdet_detect_tasks_total", "Comparison tasks executed through the pool, including the caller's share.",
			obsv.KindCounter, nil, func(emit func(float64, ...string)) { emit(float64(p.Tasks())) })
	}

	// Scheduler plane: pool size and bound are fixed gauges; occupancy and
	// throughput are func-backed reads of the pool's atomics.
	c.reg.Gauge("hierdet_sched_workers", "Size of the worker pool draining the mailbox shards.").Set(float64(c.workers))
	c.reg.Gauge("hierdet_sched_mailbox_bound", "Mailbox bound applied to external producers.").Set(float64(c.bound))
	c.reg.Func("hierdet_sched_workers_busy", "Workers currently draining a shard (utilization = busy/workers).",
		obsv.KindGauge, nil, func(emit func(float64, ...string)) { emit(float64(c.busyWorkers.Load())) })
	c.reg.Func("hierdet_sched_runq_depth", "Nodes queued for a worker.",
		obsv.KindGauge, nil, func(emit func(float64, ...string)) { emit(float64(c.sched.depth())) })
	c.reg.Func("hierdet_sched_drains_total", "Mailbox shard drains executed by the pool.",
		obsv.KindCounter, nil, func(emit func(float64, ...string)) { emit(float64(c.drains.Load())) })
	c.reg.Func("hierdet_sched_messages_handled_total", "Messages handled across all shard drains.",
		obsv.KindCounter, nil, func(emit func(float64, ...string)) { emit(float64(c.drained.Load())) })
	c.drainHist = c.reg.Histogram("hierdet_sched_drain_batch_size",
		"Messages handled per shard drain (batching efficiency of the pool).",
		obsv.ExponentialBuckets(1, 2, 10))

	// Observe→SolutionFound latency. Buckets span 1µs to ~2s: the floor is
	// below any real pipeline traversal and the ceiling absorbs a saturated
	// batched plane on a loaded box, so the p99 almost never clamps.
	c.latHist = c.reg.Histogram("hierdet_latency_observe_to_solution_seconds",
		"Latency from an interval entering the cluster (Observe) to the recording of the detection its cascade completed. In-process hops only: stamps do not cross a transport.",
		obsv.ExponentialBuckets(1e-6, 2, 22))

	// Timer wheel: lag is how far behind its deadline the last advance ran
	// — the single number that says whether delayed delivery is keeping up.
	c.reg.Gauge("hierdet_wheel_tick_seconds", "The wheel's quantization tick.").Set(c.wheel.tick.Seconds())
	c.reg.Func("hierdet_wheel_lag_seconds", "How far past its deadline the last wheel advance ran.",
		obsv.KindGauge, nil, func(emit func(float64, ...string)) {
			emit(float64(c.wheel.lagNanos.Load()) / 1e9)
		})
	c.reg.Func("hierdet_wheel_entries", "Timer entries currently queued on the wheel.",
		obsv.KindGauge, nil, func(emit func(float64, ...string)) { emit(float64(c.wheel.entries())) })
	c.reg.Func("hierdet_wheel_ticks_total", "Wheel advances processed.",
		obsv.KindCounter, nil, func(emit func(float64, ...string)) { emit(float64(c.wheel.ticksTotal.Load())) })

	// Lifecycle ledger.
	c.reg.Gauge("hierdet_cluster_nodes", "Detector nodes hosted by this cluster.").Set(float64(len(c.nodes)))
	c.reg.Func("hierdet_cluster_pending_credits", "Outstanding message credits (0 = quiescent).",
		obsv.KindGauge, nil, func(emit func(float64, ...string)) {
			c.mu.Lock()
			p := c.pending
			c.mu.Unlock()
			emit(float64(p))
		})
	c.reg.Func("hierdet_cluster_killed_processes", "Processes crash-stopped so far.",
		obsv.KindGauge, nil, func(emit func(float64, ...string)) {
			c.mu.Lock()
			k := len(c.killed)
			c.mu.Unlock()
			emit(float64(k))
		})

	// Per-kind event counts — maintained on every emitEvent whether or not
	// a sink is installed, so the exposition shows lifecycle volume even
	// for consumers that never subscribe.
	ev := c.reg.CounterVec("hierdet_events_total", "Lifecycle events emitted, by kind.", "kind")
	for _, k := range obsv.EventKinds() {
		c.evCounts[k] = ev.With(k.String())
	}
}
