package livenet

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hierdet/internal/core"
	"hierdet/internal/interval"
	"hierdet/internal/obsv"
	"hierdet/internal/repair"
	"hierdet/internal/tree"
)

// msgKind discriminates what flows through a node's mailbox.
type msgKind int

const (
	msgLocal       msgKind = iota // a completed local-predicate interval
	msgLocalBatch                 // a run of completed local intervals (ObserveBatch)
	msgReport                     // a child→parent aggregate report
	msgReportBatch                // a window's worth of reports, flushed as one message
	msgAttach                     // a reattachment-protocol message
	msgHeartbeat                  // a liveness beat with repair state (distributed mode)
	msgHbTick                     // the wheel's recurring heartbeat tick (uncredited)
	msgFlush                      // batch-window flush timer
	msgSeekTimeout                // per-candidate grant timeout (seq = reqID)
	msgSeekBackoff                // between-rounds pause (seq = round)
)

// hbInfo is the repair state riding on a distributed-mode heartbeat: the
// sender's covered set (meaningful child→parent) and whether its tree root
// is currently renegotiating a parent (meaningful parent→child). See
// wire.Heartbeat for why each direction needs its half.
type hbInfo struct {
	rootSeeking bool
	covered     []int
}

// message is one mailbox entry. Every message except the heartbeat tick
// holds one credit in the cluster's pending ledger from before it is sent
// until after it is handled (see creditedKind).
type message struct {
	kind  msgKind
	from  int
	seq   int // linkSeq (msgReport), reqID or round (timers)
	epoch int
	iv    interval.Interval
	ivs   []interval.Interval // msgLocalBatch payload
	reps  []repair.Report     // msgReportBatch payload
	att   repair.Msg
	hb    hbInfo
	// born is the Observe wall-clock stamp (UnixNano) of the observation
	// whose causal cascade this message belongs to — stamped at admission,
	// inherited by every report the handling of this message emits, and
	// consumed when a detection closes the chain (observe→SolutionFound
	// latency). Zero on timer/heartbeat kinds and on frames that crossed a
	// transport (the stamp is deliberately not wire-encoded: wall clocks of
	// different processes do not subtract meaningfully).
	born int64
}

// liveNode is one process: a detector node plus its links. All fields below
// mb are confined to the worker currently running the node (the mailbox's
// scheduled flag admits at most one at a time), so they need no locks;
// cross-goroutine state lives in the cluster (under mu) or in atomics.
type liveNode struct {
	c    *Cluster
	id   int
	mb   mailbox
	down atomic.Bool  // crashed: drain messages without handling, stop beating
	beat atomic.Int64 // liveness beacon: UnixNano of the last published beat

	// inbox replaces mb under Config.LegacyDelivery: the seed's per-node
	// channel, drained by a dedicated goroutine (runLegacy). Nil otherwise.
	inbox chan message

	node    *core.Node
	parent  int
	outSeq  int               // per-current-link counter for reports to parent
	lastAgg interval.Interval // most recent aggregate, for resend-on-adopt
	hasAgg  bool              // lastAgg holds a real aggregate

	// Report coalescing state. outBuf holds reports owed to the parent:
	// under Config.BatchWindow > 0 until the armed flush timer fires
	// (flushPending), under Config.AdaptiveFlush until the worker reaches the
	// end of the current mailbox drain (drainFlush — which also records that
	// the buffer holds one ledger credit, taken at first buffer and released
	// by runNode after the drain-end flush).
	outBuf       []repair.Report
	flushPending bool
	drainFlush   bool
	// born is the stamp of the message currently being handled (see
	// message.born); bufBorn carries the oldest stamp among the reports
	// sitting in outBuf, so a coalesced flush propagates the stamp of the
	// observation that has been waiting longest. Worker-confined.
	born    int64
	bufBorn int64

	ivScratch  []interval.Interval // reused batch-ingestion staging
	rdyScratch []repair.Report     // reused resequencer release staging

	reseq     map[int]*repair.Resequencer // child id → resequencer
	epochs    repair.Epochs               // value: the zero Epochs is ready to use
	seeker    *repair.Seeker
	adopter   *repair.Adopter
	suspected map[int]bool

	// Distributed-mode failure-detector state, maintained from heartbeat
	// messages (all worker-confined, like everything above): when each peer
	// was last heard, the covered set each child last reported, and whether
	// the parent said this tree's root is seeking.
	lastHeard     map[int]time.Time
	covered       map[int][]int
	rootSeekingHB bool

	// rng drives this node's delivery-delay jitter. PCG rather than the
	// classic rand.Source: seeding the latter costs ~20µs of warmup per
	// node, which at p≥512 turns into >10ms of pure startup overhead per
	// cluster.
	rng   *rand.Rand
	rngMu sync.Mutex

	m nodeMetrics
	// lastPruned is the detector's Pruned count as of the last syncCoreStats,
	// so the IntervalPruned event can carry the delta. Worker-confined.
	lastPruned int
}

// initLiveNode builds one process in place. The cluster allocates all its
// liveNodes as one slab and initializes each slot here — at 256 tenants on a
// shared substrate, per-node boxing was a visible slice of registration's
// allocation bill. ln must be zero-valued (its sync fields forbid assigning
// a fresh struct over it).
func initLiveNode(ln *liveNode, c *Cluster, id int) {
	coreCfg := core.Config{
		N: c.topo.N(), Strict: c.cfg.Strict, KeepMembers: c.cfg.KeepMembers,
		Parallel: c.detectPool != nil, Pool: c.detectPool,
		Clocks: c.clockArena(),
	}
	ln.c = c
	ln.id = id
	ln.node = core.NewNode(id, coreCfg, true)
	ln.parent = c.topo.Parent(id)
	ln.reseq = make(map[int]*repair.Resequencer)
	ln.rng = rand.New(rand.NewPCG(uint64(c.cfg.Seed), uint64(id)<<17|1))
	ln.mb.init()
	// The failure-detector maps (suspected, lastHeard, covered) and the
	// repair state machines (seeker, adopter) build lazily on first touch: a
	// healthy node never pays for them, which at hundreds of tenants is a
	// visible slice of registration's allocation bill. All of them are
	// worker-confined, so first-touch construction needs no lock.
	for _, child := range c.topo.Children(id) {
		ln.node.AddChild(child)
		ln.reseq[child] = repair.NewResequencer()
		if c.remote {
			// Seed each child's covered set from the initial topology (every
			// participant knows it); the child's heartbeats refresh it.
			ln.setCovered(child, c.topo.Subtree(child))
		}
	}
	ln.beat.Store(time.Now().UnixNano())
}

// runLegacy is the seed's node goroutine, preserved verbatim for the
// LegacyDelivery baseline: handle inbox messages one channel receive at a
// time, and — with heartbeats enabled — beat on a per-node ticker.
func (ln *liveNode) runLegacy() {
	defer ln.c.wg.Done()
	var tick <-chan time.Time
	if ln.c.cfg.HbEvery > 0 {
		t := time.NewTicker(ln.c.cfg.HbEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case msg, ok := <-ln.inbox:
			if !ok {
				return
			}
			// A crashed node keeps draining its inbox — the channel is the
			// wire, and messages to the dead are simply lost — but handles
			// nothing.
			if !ln.down.Load() {
				ln.handle(msg)
			}
			if creditedKind(msg.kind) {
				ln.c.done()
			}
		case <-tick:
			if !ln.down.Load() {
				ln.heartbeat()
			}
		}
	}
}

func (ln *liveNode) handle(msg message) {
	ln.born = msg.born
	switch msg.kind {
	case msgLocal:
		ln.c.emitEvent(obsv.Event{Kind: obsv.IntervalObserved, Node: ln.id, Peer: obsv.NoPeer, Count: 1})
		ln.deliver(ln.node.OnInterval(ln.id, msg.iv))
	case msgLocalBatch:
		ln.c.emitEvent(obsv.Event{Kind: obsv.IntervalObserved, Node: ln.id, Peer: obsv.NoPeer, Count: len(msg.ivs)})
		ln.deliver(ln.node.OnIntervals(ln.id, msg.ivs))
	case msgReport:
		ln.m.msgsIn.Add(1)
		rs, ok := ln.reseq[msg.from]
		if !ok {
			// Report from a process that is no longer our child (in flight
			// across a repair); it belongs to the new parent's stream now.
			ln.m.stale.Add(1)
			return
		}
		ln.c.emitEvent(obsv.Event{Kind: obsv.ReportRecv, Node: ln.id, Peer: msg.from, Seq: msg.seq, Count: 1})
		ln.rdyScratch = rs.AcceptInto(repair.Report{Iv: msg.iv, LinkSeq: msg.seq, Epoch: msg.epoch}, ln.rdyScratch[:0])
		ln.ingest(msg.from, ln.rdyScratch)
		ln.gaugeReseq()
	case msgReportBatch:
		ln.m.msgsIn.Add(1)
		rs, ok := ln.reseq[msg.from]
		if !ok {
			ln.m.stale.Add(int64(len(msg.reps)))
			return
		}
		ln.c.emitEvent(obsv.Event{Kind: obsv.ReportRecv, Node: ln.id, Peer: msg.from,
			Seq: msg.reps[0].LinkSeq, Count: len(msg.reps)})
		for _, pl := range msg.reps {
			ln.rdyScratch = rs.AcceptInto(pl, ln.rdyScratch[:0])
			ln.ingest(msg.from, ln.rdyScratch)
		}
		ln.gaugeReseq()
	case msgAttach:
		ln.m.msgsIn.Add(1)
		ln.onAttach(msg.from, msg.att)
	case msgHeartbeat:
		ln.m.heartbeats.Add(1)
		ln.heard(msg.from, time.Now())
		if msg.from == ln.parent {
			ln.rootSeekingHB = msg.hb.rootSeeking
		}
		if _, isChild := ln.reseq[msg.from]; isChild && msg.hb.covered != nil {
			ln.setCovered(msg.from, msg.hb.covered)
		}
	case msgHbTick:
		if ln.c.cfg.HbEvery > 0 {
			ln.heartbeat()
		}
	case msgFlush:
		ln.flushReports()
	case msgSeekTimeout:
		ln.getSeeker().OnTimeout(msg.seq)
	case msgSeekBackoff:
		ln.getSeeker().OnBackoff(msg.seq)
	}
}

// ingest feeds a resequencer's released run — in-order reports from one
// child — into the detector. Consecutive reports of one reconfiguration
// epoch go in as one batch (Algorithm 1 line 2: enqueue all, then detect
// per exposed head); an epoch advance in the middle of the run means the
// child's subtree changed and its stream restarted, so the queued remainder
// of the old stream is discarded before the new epoch's reports enter.
func (ln *liveNode) ingest(from int, ready []repair.Report) {
	for i := 0; i < len(ready); {
		if ln.epochs.Observe(from, ready[i].Epoch) {
			ln.node.ResetSource(from)
		}
		j := i + 1
		for j < len(ready) && ready[j].Epoch == ready[i].Epoch {
			j++
		}
		if j == i+1 {
			ln.deliver(ln.node.OnInterval(from, ready[i].Iv))
		} else {
			ivs := ln.ivScratch[:0]
			for k := i; k < j; k++ {
				ivs = append(ivs, ready[k].Iv)
			}
			ln.deliver(ln.node.OnIntervals(from, ivs))
			ln.ivScratch = ivs[:0]
		}
		i = j
	}
}

// deliver records a batch of detections and reports each aggregate upward,
// then mirrors the detector's counters into the scrape-safe atomics.
func (ln *liveNode) deliver(dets []core.Detection) {
	for _, det := range dets {
		atRoot := ln.parent == tree.None
		ln.m.detections.Add(1)
		if ln.born > 0 {
			ln.c.noteLatency(ln.born)
		}
		ln.c.record(Detection{Node: ln.id, AtRoot: atRoot, Det: det})
		if !atRoot {
			ln.report(det.Agg)
		}
	}
	ln.syncCoreStats()
}

// report ships an aggregate to the parent — immediately on a racing delayed
// path when batch windows are off, or into the window buffer when they are
// on. Reports to a crashed parent are lost (its mailbox drains unhandled),
// exactly like in-flight messages to a crashed process.
func (ln *liveNode) report(agg interval.Interval) {
	ln.lastAgg, ln.hasAgg = agg, true
	ln.emit(agg)
}

// resendLast re-reports the most recent aggregate to a newly adopted parent
// (paper §III-B / Figure 2(c)).
func (ln *liveNode) resendLast() {
	if !ln.hasAgg || ln.parent == tree.None {
		return
	}
	ln.emit(ln.lastAgg)
}

// emit assigns the next link sequence number and either sends the report or
// buffers it for a pending flush. Under AdaptiveFlush the buffer drains at
// the end of the current mailbox drain (runNode), covered by an explicit
// ledger credit taken at first buffer; under a batch window it drains when
// the armed flush timer fires — a credited wheel entry. Either way Drain and
// Stop cover buffered reports.
func (ln *liveNode) emit(agg interval.Interval) {
	pl := repair.Report{Iv: agg, LinkSeq: ln.outSeq, Epoch: ln.epochs.Stamp()}
	ln.outSeq++
	if ln.c.cfg.AdaptiveFlush {
		ln.bufferBorn()
		ln.outBuf = append(ln.outBuf, pl)
		if !ln.drainFlush && ln.c.takeFlushCredit() {
			ln.drainFlush = true
		}
		return
	}
	if ln.c.cfg.BatchWindow <= 0 {
		ln.m.msgsOut.Add(1)
		ln.c.emitEvent(obsv.Event{Kind: obsv.ReportSent, Node: ln.id, Peer: ln.parent, Seq: pl.LinkSeq, Count: 1})
		ln.c.send(ln.parent, message{kind: msgReport, from: ln.id, seq: pl.LinkSeq, epoch: pl.Epoch, iv: pl.Iv, born: ln.born}, ln.delay())
		return
	}
	ln.bufferBorn()
	ln.outBuf = append(ln.outBuf, pl)
	if !ln.flushPending {
		ln.flushPending = true
		ln.c.armTimer(ln, ln.c.cfg.BatchWindow, message{kind: msgFlush})
	}
}

// bufferBorn folds the current handle's observation stamp into the buffered
// flush's: a coalesced batch carries the oldest stamp among its reports, so
// latency attribution never flatters coalescing.
func (ln *liveNode) bufferBorn() {
	if ln.born > 0 && (ln.bufBorn == 0 || ln.born < ln.bufBorn) {
		ln.bufBorn = ln.born
	}
}

// flushReports sends the buffered window to the parent as one message (one
// wire frame in distributed mode). Runs on the node's worker from the flush
// timer, and synchronously before a parent switch — buffered sequence
// numbers belong to the old link, so they must go (or be lost) there.
func (ln *liveNode) flushReports() {
	ln.flushPending = false
	if len(ln.outBuf) == 0 {
		return
	}
	if ln.parent == tree.None {
		ln.outBuf = ln.outBuf[:0]
		return
	}
	batch := make([]repair.Report, len(ln.outBuf))
	copy(batch, ln.outBuf)
	ln.outBuf = ln.outBuf[:0]
	born := ln.bufBorn
	ln.bufBorn = 0
	ln.m.msgsOut.Add(1)
	ln.m.batchFlushes.Add(1)
	ln.c.emitEvent(obsv.Event{Kind: obsv.ReportSent, Node: ln.id, Peer: ln.parent,
		Seq: batch[0].LinkSeq, Count: len(batch)})
	ln.c.sendBatch(ln.parent, ln.id, batch, born, ln.delay())
}

// dropChild removes a dead or reassigned child's queue, returning the
// detections the removal unblocked.
func (ln *liveNode) dropChild(child int) []core.Detection {
	delete(ln.reseq, child)
	delete(ln.covered, child)
	delete(ln.lastHeard, child)
	ln.epochs.Forget(child)
	ln.epochs.Bump()
	ln.gaugeReseq()
	return ln.node.RemoveChild(child)
}

// heartbeat publishes this node's liveness beacon and checks the beacons of
// its tree neighbours (parent and children). In single-process mode beacons
// are atomic timestamps rather than messages: they model the paper's
// heartbeat exchange without entangling liveness traffic with the quiescence
// ledger, so an idle cluster can stop while heartbeats still flow. In
// distributed mode there is no shared memory to beat through, so beats
// become real heartbeat messages carrying the repair protocol's state.
func (ln *liveNode) heartbeat() {
	if ln.c.remote {
		ln.heartbeatRemote()
		return
	}
	now := time.Now().UnixNano()
	ln.beat.Store(now)
	staleAfter := ln.c.cfg.HbTimeout.Nanoseconds()
	for _, peer := range ln.watchPeers() {
		pn := ln.c.nodes[peer]
		if pn == nil || ln.suspected[peer] {
			continue
		}
		if now-pn.beat.Load() > staleAfter {
			ln.suspect(peer)
		}
	}
}

// heartbeatRemote sends one heartbeat message to every tree neighbour —
// carrying the node's covered set (fed upward into the parent's) and the
// root-seeking flag (propagated downward so a dangling tree refuses
// adoptions) — then suspects neighbours it has not heard from within the
// timeout. The first check after a peer appears only baselines its clock,
// and StartupGrace holds all suspicion back while a multi-process deployment
// is still launching.
func (ln *liveNode) heartbeatRemote() {
	c := ln.c
	beat := message{kind: msgHeartbeat, from: ln.id, epoch: ln.epochs.Peek(),
		hb: hbInfo{rootSeeking: ln.rootSeekingHB || ln.seeking(), covered: ln.ownCovered()}}
	for _, peer := range ln.watchPeers() {
		c.send(peer, beat, 0)
	}
	if time.Since(c.startAt) < c.cfg.StartupGrace {
		return
	}
	now := time.Now()
	for _, peer := range ln.watchPeers() {
		if ln.suspected[peer] {
			continue
		}
		last, heard := ln.lastHeard[peer]
		if !heard {
			ln.heard(peer, now)
			continue
		}
		if now.Sub(last) > c.cfg.HbTimeout {
			ln.suspect(peer)
		}
	}
}

// ownCovered returns this node's covered set: itself plus the last covered
// set each child reported (or the initial topology's subtree before a
// child's first beat). Distributed mode only; mirrors the simulator's
// distributed-repair bookkeeping.
func (ln *liveNode) ownCovered() []int {
	set := map[int]bool{ln.id: true}
	for _, cov := range ln.covered {
		for _, p := range cov {
			set[p] = true
		}
	}
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// watchPeers returns the neighbours whose liveness this node monitors: its
// parent and its current children, ascending.
func (ln *liveNode) watchPeers() []int {
	out := make([]int, 0, len(ln.reseq)+1)
	if ln.parent != tree.None {
		out = append(out, ln.parent)
	}
	for c := range ln.reseq {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// suspect handles a stale beacon or heartbeat silence. For a peer this
// cluster hosts, the suspicion is validated against the failure injector's
// record before acting: a node starved by the scheduler can miss beats
// without having crashed, and acting on a false suspicion would wrongly
// reconfigure the tree. (The check stands in for the perfect failure
// detector the paper's crash-stop model assumes.) A remote peer offers no
// such oracle — heartbeat silence is all the evidence there is, which is
// exactly the paper's model: the timeout plus crash-stop assumption makes
// the detector perfect, and Config.HbTimeout must absorb real network and
// scheduling jitter.
func (ln *liveNode) suspect(peer int) {
	c := ln.c
	if _, hosted := c.nodes[peer]; hosted {
		c.mu.Lock()
		dead := c.killed[peer]
		if dead && peer == ln.parent {
			c.seeking[ln.id] = true
		}
		c.mu.Unlock()
		if !dead {
			return
		}
	} else if peer == ln.parent {
		c.mu.Lock()
		c.seeking[ln.id] = true
		c.mu.Unlock()
	}
	if ln.suspected == nil {
		ln.suspected = make(map[int]bool)
	}
	ln.suspected[peer] = true
	ln.c.emitEvent(obsv.Event{Kind: obsv.NodeSuspected, Node: ln.id, Peer: peer, Count: 1})
	switch {
	case peer == ln.parent:
		// Our subtree is orphaned: renegotiate a parent (paper §III-F).
		ln.getSeeker().Start()
	case ln.node.HasSource(peer):
		// A child died: its whole subtree is gone from ours. Drop the queue;
		// the orphaned grandchildren reattach on their own.
		ln.m.childDrops.Add(1)
		ln.deliver(ln.dropChild(peer))
	}
}

// getSeeker returns the node's orphan-root state machine, building it on
// first use (see initLiveNode: repair state is lazy).
func (ln *liveNode) getSeeker() *repair.Seeker {
	if ln.seeker == nil {
		ln.seeker = repair.NewSeeker(ln.id, ln)
	}
	return ln.seeker
}

// getAdopter returns the node's candidate state machine, building it on
// first use.
func (ln *liveNode) getAdopter() *repair.Adopter {
	if ln.adopter == nil {
		ln.adopter = repair.NewAdopter(ln.id, ln)
	}
	return ln.adopter
}

// seeking reports whether this node is renegotiating a parent, without
// forcing the seeker into existence.
func (ln *liveNode) seeking() bool { return ln.seeker != nil && ln.seeker.Seeking() }

// heard stamps a peer's last-heartbeat time, building the map on first use.
func (ln *liveNode) heard(peer int, at time.Time) {
	if ln.lastHeard == nil {
		ln.lastHeard = make(map[int]time.Time)
	}
	ln.lastHeard[peer] = at
}

// setCovered records a child's covered set, building the map on first use.
func (ln *liveNode) setCovered(peer int, cov []int) {
	if ln.covered == nil {
		ln.covered = make(map[int][]int)
	}
	ln.covered[peer] = cov
}

// delay draws a random per-message delivery delay.
func (ln *liveNode) delay() time.Duration {
	ln.rngMu.Lock()
	d := time.Duration(ln.rng.Int64N(int64(ln.c.cfg.MaxDelay)))
	ln.rngMu.Unlock()
	return d
}
