package livenet

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hierdet/internal/core"
	"hierdet/internal/interval"
	"hierdet/internal/repair"
	"hierdet/internal/tree"
)

// msgKind discriminates what flows through a node's inbox.
type msgKind int

const (
	msgLocal       msgKind = iota // a completed local-predicate interval
	msgReport                     // a child→parent aggregate report
	msgAttach                     // a reattachment-protocol message
	msgHeartbeat                  // a liveness beat with repair state (distributed mode)
	msgSeekTimeout                // per-candidate grant timeout (seq = reqID)
	msgSeekBackoff                // between-rounds pause (seq = round)
)

// hbInfo is the repair state riding on a distributed-mode heartbeat: the
// sender's covered set (meaningful child→parent) and whether its tree root
// is currently renegotiating a parent (meaningful parent→child). See
// wire.Heartbeat for why each direction needs its half.
type hbInfo struct {
	rootSeeking bool
	covered     []int
}

// message is one inbox entry. Every message holds one credit in the
// cluster's pending ledger from before it is sent until after it is handled.
type message struct {
	kind  msgKind
	from  int
	seq   int // linkSeq (msgReport), reqID or round (timers)
	epoch int
	iv    interval.Interval
	att   repair.Msg
	hb    hbInfo
}

// liveNode is one process: a detector node plus its links. All fields below
// inbox are confined to the node's run goroutine (handle and beat both
// execute there), so they need no locks; cross-goroutine state lives in the
// cluster (under mu) or in atomics.
type liveNode struct {
	c     *Cluster
	id    int
	inbox chan message
	down  atomic.Bool  // crashed: drain messages without handling, stop beating
	beat  atomic.Int64 // liveness beacon: UnixNano of the last published beat

	node    *core.Node
	parent  int
	outSeq  int                // per-current-link counter for reports to parent
	lastAgg *interval.Interval // most recent aggregate, for resend-on-adopt

	reseq     map[int]*repair.Resequencer // child id → resequencer
	epochs    *repair.Epochs
	seeker    *repair.Seeker
	adopter   *repair.Adopter
	suspected map[int]bool

	// Distributed-mode failure-detector state, maintained from heartbeat
	// messages (all run-goroutine confined, like everything above):
	// when each peer was last heard, the covered set each child last
	// reported, and whether the parent said this tree's root is seeking.
	lastHeard     map[int]time.Time
	covered       map[int][]int
	rootSeekingHB bool

	rng   *rand.Rand
	rngMu sync.Mutex

	m nodeMetrics
}

func newLiveNode(c *Cluster, id int) *liveNode {
	coreCfg := core.Config{N: c.topo.N(), Strict: c.cfg.Strict, KeepMembers: c.cfg.KeepMembers}
	ln := &liveNode{
		c:         c,
		id:        id,
		inbox:     make(chan message, 256),
		node:      core.NewNode(id, coreCfg, true),
		parent:    c.topo.Parent(id),
		reseq:     make(map[int]*repair.Resequencer),
		epochs:    repair.NewEpochs(),
		suspected: make(map[int]bool),
		lastHeard: make(map[int]time.Time),
		covered:   make(map[int][]int),
		rng:       rand.New(rand.NewSource(c.cfg.Seed ^ int64(id)<<17)),
	}
	ln.seeker = repair.NewSeeker(id, ln)
	ln.adopter = repair.NewAdopter(id, ln)
	for _, child := range c.topo.Children(id) {
		ln.node.AddChild(child)
		ln.reseq[child] = repair.NewResequencer()
		if c.remote {
			// Seed each child's covered set from the initial topology (every
			// participant knows it); the child's heartbeats refresh it.
			ln.covered[child] = c.topo.Subtree(child)
		}
	}
	ln.beat.Store(time.Now().UnixNano())
	return ln
}

// run is the node's goroutine: handle inbox messages, and — with heartbeats
// enabled — publish and check liveness beacons on the heartbeat period.
func (ln *liveNode) run() {
	defer ln.c.wg.Done()
	var tick <-chan time.Time
	if ln.c.cfg.HbEvery > 0 {
		t := time.NewTicker(ln.c.cfg.HbEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case msg, ok := <-ln.inbox:
			if !ok {
				return
			}
			// A crashed node keeps draining its inbox — the channel is the
			// wire, and messages to the dead are simply lost — but handles
			// nothing.
			if !ln.down.Load() {
				ln.handle(msg)
			}
			ln.c.done()
		case <-tick:
			if !ln.down.Load() {
				ln.heartbeat()
			}
		}
	}
}

func (ln *liveNode) handle(msg message) {
	switch msg.kind {
	case msgLocal:
		ln.deliver(ln.node.OnInterval(ln.id, msg.iv))
	case msgReport:
		ln.m.msgsIn.Add(1)
		rs, ok := ln.reseq[msg.from]
		if !ok {
			// Report from a process that is no longer our child (in flight
			// across a repair); it belongs to the new parent's stream now.
			ln.m.stale.Add(1)
			return
		}
		ready := rs.Accept(repair.Report{Iv: msg.iv, LinkSeq: msg.seq, Epoch: msg.epoch})
		ln.gaugeReseq()
		for _, r := range ready {
			// In-order now; check the sender's reconfiguration epoch. An
			// advance means the child's subtree changed and its stream
			// restarted: the queued remainder of the old stream must go.
			if ln.epochs.Observe(msg.from, r.Epoch) {
				ln.node.ResetSource(msg.from)
			}
			ln.deliver(ln.node.OnInterval(msg.from, r.Iv))
		}
	case msgAttach:
		ln.m.msgsIn.Add(1)
		ln.onAttach(msg.from, msg.att)
	case msgHeartbeat:
		ln.m.heartbeats.Add(1)
		ln.lastHeard[msg.from] = time.Now()
		if msg.from == ln.parent {
			ln.rootSeekingHB = msg.hb.rootSeeking
		}
		if _, isChild := ln.reseq[msg.from]; isChild && msg.hb.covered != nil {
			ln.covered[msg.from] = msg.hb.covered
		}
	case msgSeekTimeout:
		ln.seeker.OnTimeout(msg.seq)
	case msgSeekBackoff:
		ln.seeker.OnBackoff(msg.seq)
	}
}

// deliver records a batch of detections and reports each aggregate upward.
func (ln *liveNode) deliver(dets []core.Detection) {
	for _, det := range dets {
		atRoot := ln.parent == tree.None
		ln.m.detections.Add(1)
		ln.c.record(Detection{Node: ln.id, AtRoot: atRoot, Det: det})
		if !atRoot {
			ln.report(det.Agg)
		}
	}
}

// report ships an aggregate to the parent on its own goroutine after a
// random delay — deliberately unordered with respect to other reports on the
// same link. Reports to a crashed parent are lost (its goroutine drains
// them unhandled), exactly like in-flight messages to a crashed process.
func (ln *liveNode) report(agg interval.Interval) {
	cp := agg
	ln.lastAgg = &cp
	msg := message{kind: msgReport, from: ln.id, seq: ln.outSeq, epoch: ln.epochs.Stamp(), iv: agg}
	ln.outSeq++
	ln.m.msgsOut.Add(1)
	ln.c.send(ln.parent, msg, ln.delay())
}

// resendLast re-reports the most recent aggregate to a newly adopted parent
// (paper §III-B / Figure 2(c)).
func (ln *liveNode) resendLast() {
	if ln.lastAgg == nil || ln.parent == tree.None {
		return
	}
	msg := message{kind: msgReport, from: ln.id, seq: ln.outSeq, epoch: ln.epochs.Stamp(), iv: *ln.lastAgg}
	ln.outSeq++
	ln.m.msgsOut.Add(1)
	ln.c.send(ln.parent, msg, ln.delay())
}

// dropChild removes a dead or reassigned child's queue, returning the
// detections the removal unblocked.
func (ln *liveNode) dropChild(child int) []core.Detection {
	delete(ln.reseq, child)
	delete(ln.covered, child)
	delete(ln.lastHeard, child)
	ln.epochs.Forget(child)
	ln.epochs.Bump()
	ln.gaugeReseq()
	return ln.node.RemoveChild(child)
}

// heartbeat publishes this node's liveness beacon and checks the beacons of
// its tree neighbours (parent and children). In single-process mode beacons
// are atomic timestamps rather than messages: they model the paper's
// heartbeat exchange without entangling liveness traffic with the quiescence
// ledger, so an idle cluster can stop while heartbeats still flow. In
// distributed mode there is no shared memory to beat through, so beats
// become real heartbeat messages carrying the repair protocol's state.
func (ln *liveNode) heartbeat() {
	if ln.c.remote {
		ln.heartbeatRemote()
		return
	}
	now := time.Now().UnixNano()
	ln.beat.Store(now)
	staleAfter := ln.c.cfg.HbTimeout.Nanoseconds()
	for _, peer := range ln.watchPeers() {
		pn := ln.c.nodes[peer]
		if pn == nil || ln.suspected[peer] {
			continue
		}
		if now-pn.beat.Load() > staleAfter {
			ln.suspect(peer)
		}
	}
}

// heartbeatRemote sends one heartbeat message to every tree neighbour —
// carrying the node's covered set (fed upward into the parent's) and the
// root-seeking flag (propagated downward so a dangling tree refuses
// adoptions) — then suspects neighbours it has not heard from within the
// timeout. The first check after a peer appears only baselines its clock,
// and StartupGrace holds all suspicion back while a multi-process deployment
// is still launching.
func (ln *liveNode) heartbeatRemote() {
	c := ln.c
	beat := message{kind: msgHeartbeat, from: ln.id, epoch: ln.epochs.Peek(),
		hb: hbInfo{rootSeeking: ln.rootSeekingHB || ln.seeker.Seeking(), covered: ln.ownCovered()}}
	for _, peer := range ln.watchPeers() {
		c.send(peer, beat, 0)
	}
	if time.Since(c.startAt) < c.cfg.StartupGrace {
		return
	}
	now := time.Now()
	for _, peer := range ln.watchPeers() {
		if ln.suspected[peer] {
			continue
		}
		last, heard := ln.lastHeard[peer]
		if !heard {
			ln.lastHeard[peer] = now
			continue
		}
		if now.Sub(last) > c.cfg.HbTimeout {
			ln.suspect(peer)
		}
	}
}

// ownCovered returns this node's covered set: itself plus the last covered
// set each child reported (or the initial topology's subtree before a
// child's first beat). Distributed mode only; mirrors the simulator's
// distributed-repair bookkeeping.
func (ln *liveNode) ownCovered() []int {
	set := map[int]bool{ln.id: true}
	for _, cov := range ln.covered {
		for _, p := range cov {
			set[p] = true
		}
	}
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// watchPeers returns the neighbours whose liveness this node monitors: its
// parent and its current children, ascending.
func (ln *liveNode) watchPeers() []int {
	out := make([]int, 0, len(ln.reseq)+1)
	if ln.parent != tree.None {
		out = append(out, ln.parent)
	}
	for c := range ln.reseq {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// suspect handles a stale beacon or heartbeat silence. For a peer this
// cluster hosts, the suspicion is validated against the failure injector's
// record before acting: a goroutine starved by the scheduler can miss beats
// without having crashed, and acting on a false suspicion would wrongly
// reconfigure the tree. (The check stands in for the perfect failure
// detector the paper's crash-stop model assumes.) A remote peer offers no
// such oracle — heartbeat silence is all the evidence there is, which is
// exactly the paper's model: the timeout plus crash-stop assumption makes
// the detector perfect, and Config.HbTimeout must absorb real network and
// scheduling jitter.
func (ln *liveNode) suspect(peer int) {
	c := ln.c
	if _, hosted := c.nodes[peer]; hosted {
		c.mu.Lock()
		dead := c.killed[peer]
		if dead && peer == ln.parent {
			c.seeking[ln.id] = true
		}
		c.mu.Unlock()
		if !dead {
			return
		}
	} else if peer == ln.parent {
		c.mu.Lock()
		c.seeking[ln.id] = true
		c.mu.Unlock()
	}
	ln.suspected[peer] = true
	switch {
	case peer == ln.parent:
		// Our subtree is orphaned: renegotiate a parent (paper §III-F).
		ln.seeker.Start()
	case ln.node.HasSource(peer):
		// A child died: its whole subtree is gone from ours. Drop the queue;
		// the orphaned grandchildren reattach on their own.
		ln.m.childDrops.Add(1)
		ln.deliver(ln.dropChild(peer))
	}
}

// delay draws a random per-message delivery delay.
func (ln *liveNode) delay() time.Duration {
	ln.rngMu.Lock()
	d := time.Duration(ln.rng.Int63n(int64(ln.c.cfg.MaxDelay)))
	ln.rngMu.Unlock()
	return d
}
