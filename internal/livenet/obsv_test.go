package livenet

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"hierdet/internal/obsv"
	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// eventLog collects a cluster's event stream for post-run assertions. The
// sink runs concurrently (events of different nodes interleave), so every
// access locks.
type eventLog struct {
	mu     sync.Mutex
	events []obsv.Event
}

func (l *eventLog) sink(e obsv.Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *eventLog) ofKind(k obsv.EventKind) []obsv.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []obsv.Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// TestEventsSubsumeCallbacks runs one failover workload with the deprecated
// OnDetect/OnRepair callbacks AND the Events sink installed, and checks the
// stream carries everything the callbacks saw: one SolutionFound per
// OnDetect with the same node, root flag and aggregate; one RepairConcluded
// per OnRepair with the same orphan and adopter.
func TestEventsSubsumeCallbacks(t *testing.T) {
	const phase1, phase2, victim = 6, 6, 1
	topo := tree.Balanced(2, 2)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: phase1 + phase2, Seed: 8, PGlobal: 1})

	var log eventLog
	var cbMu sync.Mutex
	var cbDets []Detection
	var cbRepairs []RepairEvent
	repaired := make(chan int, 8)
	c := New(Config{
		Topology: topo, Seed: 13, Strict: true, KeepMembers: true,
		HbEvery: 300 * time.Microsecond,
		Events:  log.sink,
		OnDetect: func(d Detection) {
			cbMu.Lock()
			cbDets = append(cbDets, d)
			cbMu.Unlock()
		},
		OnRepair: func(orphan, newParent int) {
			cbMu.Lock()
			cbRepairs = append(cbRepairs, RepairEvent{Orphan: orphan, NewParent: newParent})
			cbMu.Unlock()
			repaired <- orphan
		},
	})
	feedRange(c, e, 0, phase1)
	c.Drain()
	orphans := c.Kill(victim)
	awaitRepairs(t, repaired, orphans)
	c.Drain()
	feedRange(c, e, phase1, phase1+phase2)
	c.Stop()

	found := log.ofKind(obsv.SolutionFound)
	if len(found) != len(cbDets) {
		t.Fatalf("SolutionFound events = %d, OnDetect calls = %d", len(found), len(cbDets))
	}
	// Both are appended from the same worker call sites, so they pair up in
	// order for a single-node view; across nodes order can differ, so match
	// as multisets keyed by the full payload.
	type detKey struct {
		node, seq, span int
		atRoot          bool
	}
	count := map[detKey]int{}
	for _, d := range cbDets {
		count[detKey{d.Node, d.Det.Agg.Seq, len(d.Det.Agg.Span), d.AtRoot}]++
	}
	for _, ev := range found {
		k := detKey{ev.Node, ev.Agg.Seq, len(ev.Agg.Span), ev.AtRoot}
		if count[k] == 0 {
			t.Fatalf("SolutionFound %+v has no matching OnDetect call", k)
		}
		count[k]--
		if ev.Seq != ev.Agg.Seq || ev.Count != 1 || ev.Peer != obsv.NoPeer {
			t.Fatalf("SolutionFound payload malformed: %+v", ev)
		}
		if len(ev.Set) == 0 {
			t.Fatal("SolutionFound missing solution set with KeepMembers on")
		}
	}

	reps := log.ofKind(obsv.RepairConcluded)
	if len(reps) != len(cbRepairs) {
		t.Fatalf("RepairConcluded events = %d, OnRepair calls = %d", len(reps), len(cbRepairs))
	}
	repCount := map[RepairEvent]int{}
	for _, r := range cbRepairs {
		repCount[r]++
	}
	for _, ev := range reps {
		r := RepairEvent{Orphan: ev.Node, NewParent: ev.Peer}
		if repCount[r] == 0 {
			t.Fatalf("RepairConcluded %+v has no matching OnRepair call", r)
		}
		repCount[r]--
	}
	if len(log.ofKind(obsv.NodeSuspected)) == 0 {
		t.Error("no NodeSuspected events despite a kill")
	}
}

// TestEventStreamPerNodeOrder checks the per-node causal-order guarantee on
// a failure-free run: each node's ReportSent sequence numbers arrive
// strictly ascending from zero (one link, no repair, so any inversion or gap
// would mean the stream reordered one node's events), and the observed and
// solution counts reconcile with the workload.
func TestEventStreamPerNodeOrder(t *testing.T) {
	const rounds = 12
	topo := tree.Balanced(2, 2)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: rounds, Seed: 4, PGlobal: 1})

	var log eventLog
	c := New(Config{Topology: topo, Seed: 9, Strict: true, KeepMembers: true, Events: log.sink})
	feed(c, e, topo)
	dets := c.Stop()

	nextSeq := map[int]int{}
	for _, ev := range log.ofKind(obsv.ReportSent) {
		if ev.Seq != nextSeq[ev.Node] {
			t.Fatalf("node %d ReportSent seq %d out of order (want %d)", ev.Node, ev.Seq, nextSeq[ev.Node])
		}
		nextSeq[ev.Node] += ev.Count
		if ev.Peer != topo.Parent(ev.Node) {
			t.Fatalf("node %d reported to %d, parent is %d", ev.Node, ev.Peer, topo.Parent(ev.Node))
		}
	}

	observed := 0
	for _, ev := range log.ofKind(obsv.IntervalObserved) {
		observed += ev.Count
	}
	if want := rounds * topo.N(); observed != want {
		t.Errorf("IntervalObserved total = %d, want %d", observed, want)
	}
	if got := len(log.ofKind(obsv.SolutionFound)); got != len(dets) {
		t.Errorf("SolutionFound events = %d, detections = %d", got, len(dets))
	}

	// Every sent report was received: the sums agree once the run drained.
	sent, recv := 0, 0
	for _, ev := range log.ofKind(obsv.ReportSent) {
		sent += ev.Count
	}
	for _, ev := range log.ofKind(obsv.ReportRecv) {
		recv += ev.Count
	}
	if sent != recv {
		t.Errorf("reports sent %d != received %d on a lossless run", sent, recv)
	}
}

// TestMetricsSnapshotsDuringFailover hammers every snapshot surface —
// Metrics, MetricsByNode, ClusterMetrics, the Prometheus exposition — from
// scraper goroutines while the cluster feeds, kills, repairs and stops.
// Run under -race this is the concurrent-scrape guarantee; the final checks
// pin the aggregates to the per-node truth.
func TestMetricsSnapshotsDuringFailover(t *testing.T) {
	const phase1, phase2, victim = 6, 6, 1
	topo := tree.Balanced(2, 2)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: phase1 + phase2, Seed: 21, PGlobal: 1})

	repaired := make(chan int, 8)
	c := New(Config{
		Topology: topo, Seed: 31, Strict: true, KeepMembers: true,
		HbEvery:  300 * time.Microsecond,
		OnRepair: func(orphan, newParent int) { repaired <- orphan },
	})

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 3; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = c.Metrics()
				_ = c.MetricsByNode()
				_ = c.ClusterMetrics()
				var sb strings.Builder
				if err := c.Registry().WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	feedRange(c, e, 0, phase1)
	c.Drain()
	orphans := c.Kill(victim)
	awaitRepairs(t, repaired, orphans)
	c.Drain()
	feedRange(c, e, phase1, phase1+phase2)
	dets := c.Stop()
	close(stop)
	scrapers.Wait()

	cm := c.ClusterMetrics()
	if cm.Nodes != topo.N() {
		t.Fatalf("Nodes = %d, want %d", cm.Nodes, topo.N())
	}
	if cm.Detections != int64(len(dets)) {
		t.Errorf("ClusterMetrics.Detections = %d, Stop returned %d", cm.Detections, len(dets))
	}
	if cm.KilledProcesses != 1 || cm.Repairs != int64(orphans) {
		t.Errorf("killed = %d repairs = %d, want 1 and %d", cm.KilledProcesses, cm.Repairs, orphans)
	}
	if cm.PendingCredits != 0 {
		t.Errorf("PendingCredits = %d after Stop, want 0", cm.PendingCredits)
	}
	if cm.Events["solution_found"] != int64(len(dets)) {
		t.Errorf("events[solution_found] = %d, want %d", cm.Events["solution_found"], len(dets))
	}
	if cm.IntervalsIn == 0 || cm.MsgsIn == 0 || cm.Drains == 0 {
		t.Errorf("aggregate counters suspiciously zero: %+v", cm)
	}

	// The per-node slice is id-ascending and sums to the aggregate.
	byNode := c.MetricsByNode()
	var sumDet int64
	for i, nm := range byNode {
		if i > 0 && byNode[i-1].ID >= nm.ID {
			t.Fatalf("MetricsByNode not id-ascending: %d then %d", byNode[i-1].ID, nm.ID)
		}
		sumDet += int64(nm.Detections)
	}
	if sumDet != cm.Detections {
		t.Errorf("per-node detections sum %d != aggregate %d", sumDet, cm.Detections)
	}
}

// TestClusterMetricsJSONStable pins the aggregate snapshot's JSON encoding:
// every field appears under its documented key, so dashboards and scripts
// can rely on the document shape.
func TestClusterMetricsJSONStable(t *testing.T) {
	topo := tree.Balanced(2, 1)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: 3, Seed: 2, PGlobal: 1})
	c := New(Config{Topology: topo, Seed: 7})
	feed(c, e, topo)
	c.Stop()

	raw, err := json.Marshal(c.ClusterMetrics())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"nodes", "workers", "msgsIn", "msgsOut", "intervalsIn", "detections",
		"pruned", "eliminated", "duplicates", "staleReports", "repairs",
		"childDrops", "heartbeats", "badFrames", "batchFlushes",
		"reseqBuffered", "reseqHighWater", "mailboxDepth", "mailboxHighWater",
		"workersBusy", "runqDepth", "drains", "messagesDrained",
		"wheelEntries", "wheelLagNanos", "pendingCredits", "killedProcesses",
		"events",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("ClusterMetrics JSON missing key %q", key)
		}
	}
	events, ok := doc["events"].(map[string]any)
	if !ok {
		t.Fatal("events is not an object")
	}
	for _, k := range obsv.EventKinds() {
		if _, ok := events[k.String()]; !ok {
			t.Errorf("events missing kind %q", k.String())
		}
	}

	// Per-node JSON: the id rides inside the object, all counters tagged.
	nodeRaw, err := json.Marshal(c.MetricsByNode())
	if err != nil {
		t.Fatal(err)
	}
	var nodes []map[string]any
	if err := json.Unmarshal(nodeRaw, &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != topo.N() {
		t.Fatalf("node snapshots = %d, want %d", len(nodes), topo.N())
	}
	for _, key := range []string{"id", "msgsIn", "intervalsIn", "mailboxDepth", "detections"} {
		if _, ok := nodes[0][key]; !ok {
			t.Errorf("NodeMetrics JSON missing key %q", key)
		}
	}
}

// TestPrometheusExpositionCoversPlanes scrapes one run's registry and checks
// the family names the CI smoke test greps for: the node, scheduler, wheel,
// cluster and event planes all present, with per-node series labelled.
func TestPrometheusExpositionCoversPlanes(t *testing.T) {
	topo := tree.Balanced(2, 2)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: 8, Seed: 3, PGlobal: 1})
	c := New(Config{Topology: topo, Seed: 12, BatchWindow: 200 * time.Microsecond})
	feed(c, e, topo)
	c.Stop()

	var sb strings.Builder
	if err := c.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE hierdet_node_msgs_in_total counter",
		"# TYPE hierdet_node_intervals_in_total counter",
		"# TYPE hierdet_node_mailbox_depth gauge",
		`hierdet_node_detections_total{node="0"}`,
		"# TYPE hierdet_sched_workers gauge",
		"hierdet_sched_drains_total",
		"hierdet_sched_drain_batch_size_bucket",
		"hierdet_wheel_tick_seconds",
		"hierdet_wheel_ticks_total",
		"hierdet_cluster_nodes 7",
		"hierdet_cluster_pending_credits 0",
		`hierdet_events_total{kind="interval_observed"}`,
		`hierdet_events_total{kind="report_sent"}`,
		`hierdet_events_total{kind="solution_found"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
