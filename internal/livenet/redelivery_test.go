package livenet

import (
	"math/rand"
	"testing"
	"time"

	"hierdet/internal/interval"
	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// TestLiveClusterRedelivery plays a duplicating network against the root:
// the leaves' report streams are injected directly into the delivery path,
// every report twice, both copies racing each other. The resequencer must
// deliver each link's stream exactly once and in order — duplicates of
// already-delivered reports and duplicates still buffered behind a gap are
// both dropped (the seed's resequencer overwrote the buffered copy and
// could re-deliver). Detection counts and Strict succession checking prove
// the streams stayed clean.
func TestLiveClusterRedelivery(t *testing.T) {
	topo := tree.Balanced(2, 1) // root 0, leaves 1 and 2
	const rounds = 12
	e := workload.Generate(workload.Config{Topology: topo, Rounds: rounds, Seed: 9, PGlobal: 1})
	c := New(Config{Topology: topo, Seed: 13, Strict: true, KeepMembers: true,
		MaxDelay: time.Millisecond})
	rng := rand.New(rand.NewSource(31))
	delay := func() time.Duration { return time.Duration(rng.Int63n(int64(time.Millisecond))) }

	for k := 0; k < rounds; k++ {
		c.Observe(0, e.Streams[0][k])
		for _, leaf := range []int{1, 2} {
			// A leaf's aggregate is its own interval; linkSeq is the round.
			msg := message{kind: msgReport, from: leaf, seq: k, iv: e.Streams[leaf][k]}
			c.post(0, msg, delay())
			c.post(0, msg, delay())
		}
	}
	dets := c.Stop()

	roots := 0
	for _, d := range dets {
		if d.AtRoot {
			roots++
			if !interval.OverlapAll(interval.BaseIntervals(d.Det.Agg)) {
				t.Fatal("false detection")
			}
		}
	}
	if roots != rounds {
		t.Fatalf("root detections = %d, want %d (duplicates leaked or were lost)", roots, rounds)
	}
	m := c.Metrics()[0]
	if m.Duplicates != 2*rounds {
		t.Errorf("duplicates dropped = %d, want %d", m.Duplicates, 2*rounds)
	}
	if m.MsgsIn != 4*rounds {
		t.Errorf("messages in = %d, want %d", m.MsgsIn, 4*rounds)
	}
}
