package livenet

import (
	"fmt"
	"sort"
	"time"

	"hierdet/internal/repair"
	"hierdet/internal/tree"
)

// This file adapts the shared reattachment protocol of internal/repair to
// the live runtime: the orphan-root and candidate state machines run on the
// node's goroutine (driven from handle), messages travel through the same
// racing delayed channels as reports — or over the transport in distributed
// mode — and timers are real timers holding quiescence credits.
//
// The host methods are mode-split. In single-process mode the cluster's
// topology mirror is exact under the cluster mutex (Kill and TryAttach keep
// it so), and validation and the attach share one lock hold, so no
// interleaving can slip a cycle in between them. Distributed mode has no
// exact mirror: like the simulator's distributed-repair mode, covered sets
// ride on heartbeats and lag by up to one period, so validation uses local
// knowledge only and cycle freedom rests on the protocol's own guards (the
// covered-set test, the root-seeking flag, the smaller-id-anchors
// tie-break). That is the honest distributed setting the paper's §III-F
// assumes; a production protocol would add epoch validation in its messages.

// onAttach dispatches an attach-protocol message to the shared state
// machines.
func (ln *liveNode) onAttach(from int, msg repair.Msg) {
	switch msg.Type {
	case repair.Req:
		c := ln.c
		var rootSeeking bool
		if c.remote {
			// Heartbeat-fed, like the simulator: the parent's beats say
			// whether this tree's root is still renegotiating a parent.
			rootSeeking = ln.rootSeekingHB
		} else {
			c.mu.Lock()
			rootSeeking = c.rootSeekingLocked(ln.id)
			c.mu.Unlock()
		}
		ln.getAdopter().OnRequest(from, msg, ln.seeking(), rootSeeking)
	case repair.Grant:
		ln.getSeeker().OnGrant(from, msg)
	case repair.Confirm:
		ln.getAdopter().OnConfirm(msg)
	case repair.Abort:
		ln.getAdopter().OnAbort(msg)
	default:
		panic(fmt.Sprintf("livenet: node %d got unknown attach type %v", ln.id, msg.Type))
	}
}

// --- repair.SeekerHost / repair.AdopterHost ---

// Candidates returns the live neighbours outside this node's subtree,
// ascending. The neighbour pool comes from the static communication graph;
// the subtree comes from the mirror in single-process mode and from the
// heartbeat-fed covered sets in distributed mode, where suspicion (not the
// killed record, which only covers local nodes) excludes dead peers.
func (ln *liveNode) Candidates() []int {
	c := ln.c
	covered := make(map[int]bool)
	if c.remote {
		for _, p := range ln.ownCovered() {
			covered[p] = true
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.remote {
		for _, p := range c.topo.Subtree(ln.id) {
			covered[p] = true
		}
	}
	var out []int
	for _, nb := range c.topo.Neighbors(ln.id) {
		if !covered[nb] && !c.killed[nb] && !ln.suspected[nb] {
			out = append(out, nb)
		}
	}
	sort.Ints(out)
	return out
}

// Covered returns this node's current subtree — per the mirror in
// single-process mode, per the heartbeat-fed sets in distributed mode —
// sorted.
func (ln *liveNode) Covered() []int {
	c := ln.c
	if c.remote {
		return ln.ownCovered()
	}
	c.mu.Lock()
	cov := c.topo.Subtree(ln.id)
	c.mu.Unlock()
	sort.Ints(cov)
	return cov
}

// NextReqID implements repair.SeekerHost. Request ids must never repeat
// across the whole deployment (a candidate blacklists aborted ids), and in
// distributed mode the participants share no counter — so the cluster-local
// sequence is qualified with the seeking node's id, which is globally unique
// by construction. Kept to 32 bits so the id survives the wire encoding.
func (ln *liveNode) NextReqID() int {
	c := ln.c
	c.mu.Lock()
	c.reqSeq++
	seq := c.reqSeq
	c.mu.Unlock()
	return seq<<16 | (ln.id & 0xffff)
}

// Send ships a protocol message over a racing delayed channel — or the
// transport — like any other message.
func (ln *liveNode) Send(to int, m repair.Msg) {
	ln.m.msgsOut.Add(1)
	ln.c.send(to, message{kind: msgAttach, from: ln.id, att: m}, ln.delay())
}

// ArmTimeout schedules the per-candidate grant timeout.
func (ln *liveNode) ArmTimeout(reqID int) {
	ln.c.armTimer(ln, ln.c.cfg.SeekTimeout, message{kind: msgSeekTimeout, seq: reqID})
}

// ArmBackoff schedules the between-rounds pause.
func (ln *liveNode) ArmBackoff(round int) {
	ln.c.armTimer(ln, ln.c.cfg.SeekTimeout, message{kind: msgSeekBackoff, seq: round})
}

// TryAttach validates a grant and performs the adoption. Single-process
// mode asks the topology mirror under one lock hold: the granter must still
// be alive and outside this node's subtree when the parent pointer flips, so
// concurrent repairs cannot close a cycle between the check and the attach.
// Distributed mode validates with local knowledge — the granter is not
// suspected dead and not in this node's own covered set — and does not touch
// the mirror, which no longer tracks remote reattachments.
func (ln *liveNode) TryAttach(granter int) bool {
	c := ln.c
	if c.remote {
		if ln.suspected[granter] {
			return false
		}
		for _, p := range ln.ownCovered() {
			if p == granter {
				return false
			}
		}
		c.mu.Lock()
		if c.killed[granter] { // co-hosted granter crashed after granting
			c.mu.Unlock()
			return false
		}
		delete(c.seeking, ln.id)
		c.mu.Unlock()
		ln.flushReports() // buffered sequence numbers belong to the old link
		ln.parent = granter
		ln.outSeq = 0
		ln.rootSeekingHB = false // refreshed by the new parent's beats
		ln.heard(granter, time.Now())
		ln.m.repairs.Add(1)
		return true
	}
	c.mu.Lock()
	if c.killed[granter] || c.topo.InSubtree(granter, ln.id) {
		c.mu.Unlock()
		return false
	}
	c.topo.SetParent(ln.id, granter)
	delete(c.seeking, ln.id)
	c.mu.Unlock()
	ln.flushReports() // buffered sequence numbers belong to the old link
	ln.parent = granter
	ln.outSeq = 0
	ln.m.repairs.Add(1)
	return true
}

// Attached runs after the adoption was confirmed to the granter.
func (ln *liveNode) Attached(granter int) {
	if ln.c.cfg.ResendLastOnAdopt {
		ln.resendLast()
	}
	ln.c.notifyRepair(ln.id, granter)
}

// Partitioned makes the node a standalone root: detection of the partial
// predicate over its own subtree continues (paper §III-F).
func (ln *liveNode) Partitioned() {
	c := ln.c
	c.mu.Lock()
	delete(c.seeking, ln.id)
	c.mu.Unlock()
	ln.flushReports() // to the old (dead) parent; a root buffers nothing
	ln.parent = tree.None
	ln.rootSeekingHB = false // this node is the root now, and it is done seeking
	ln.m.repairs.Add(1)
	c.notifyRepair(ln.id, tree.None)
}

// HasSource implements repair.AdopterHost.
func (ln *liveNode) HasSource(child int) bool { return ln.node.HasSource(child) }

// Adopt reserves the child queue backing a grant. In distributed mode the
// request's declared covered set seeds the failure detector's bookkeeping
// for the new child (its own heartbeats refresh both entries).
func (ln *liveNode) Adopt(child int, covered []int) {
	ln.node.AddChild(child)
	ln.reseq[child] = repair.NewResequencer()
	if ln.c.remote {
		ln.setCovered(child, covered)
		ln.heard(child, time.Now())
	}
	ln.epochs.Forget(child)
	ln.epochs.Bump()
}

// Unadopt releases an aborted reservation, delivering any detections the
// queue removal unblocked.
func (ln *liveNode) Unadopt(child int) {
	ln.deliver(ln.dropChild(child))
}
