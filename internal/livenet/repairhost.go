package livenet

import (
	"fmt"
	"sort"

	"hierdet/internal/repair"
	"hierdet/internal/tree"
)

// This file adapts the shared reattachment protocol of internal/repair to
// the live runtime: the orphan-root and candidate state machines run on the
// node's goroutine (driven from handle), messages travel through the same
// racing delayed channels as reports, and timers are real timers holding
// quiescence credits. Where the simulator's covered sets ride on heartbeats
// and lag, the live runtime asks the cluster's topology mirror, which Kill
// and TryAttach keep exact under the cluster mutex — validation and the
// attach itself share one lock hold, so no interleaving can slip a cycle in
// between them.

// onAttach dispatches an attach-protocol message to the shared state
// machines.
func (ln *liveNode) onAttach(from int, msg repair.Msg) {
	switch msg.Type {
	case repair.Req:
		c := ln.c
		c.mu.Lock()
		rootSeeking := c.rootSeekingLocked(ln.id)
		c.mu.Unlock()
		ln.adopter.OnRequest(from, msg, ln.seeker.Seeking(), rootSeeking)
	case repair.Grant:
		ln.seeker.OnGrant(from, msg)
	case repair.Confirm:
		ln.adopter.OnConfirm(msg)
	case repair.Abort:
		ln.adopter.OnAbort(msg)
	default:
		panic(fmt.Sprintf("livenet: node %d got unknown attach type %v", ln.id, msg.Type))
	}
}

// --- repair.SeekerHost / repair.AdopterHost ---

// Candidates returns the live neighbours outside this node's subtree,
// ascending.
func (ln *liveNode) Candidates() []int {
	c := ln.c
	c.mu.Lock()
	defer c.mu.Unlock()
	covered := make(map[int]bool)
	for _, p := range c.topo.Subtree(ln.id) {
		covered[p] = true
	}
	var out []int
	for _, nb := range c.topo.Neighbors(ln.id) {
		if !covered[nb] && !c.killed[nb] && !ln.suspected[nb] {
			out = append(out, nb)
		}
	}
	return out
}

// Covered returns this node's current subtree per the mirror, sorted.
func (ln *liveNode) Covered() []int {
	c := ln.c
	c.mu.Lock()
	cov := c.topo.Subtree(ln.id)
	c.mu.Unlock()
	sort.Ints(cov)
	return cov
}

// NextReqID implements repair.SeekerHost with a cluster-wide counter.
func (ln *liveNode) NextReqID() int {
	c := ln.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reqSeq++
	return c.reqSeq
}

// Send ships a protocol message over a racing delayed channel, like any
// other message.
func (ln *liveNode) Send(to int, m repair.Msg) {
	ln.m.msgsOut.Add(1)
	ln.c.post(to, message{kind: msgAttach, from: ln.id, att: m}, ln.delay())
}

// ArmTimeout schedules the per-candidate grant timeout.
func (ln *liveNode) ArmTimeout(reqID int) {
	ln.c.armTimer(ln, ln.c.cfg.SeekTimeout, message{kind: msgSeekTimeout, seq: reqID})
}

// ArmBackoff schedules the between-rounds pause.
func (ln *liveNode) ArmBackoff(round int) {
	ln.c.armTimer(ln, ln.c.cfg.SeekTimeout, message{kind: msgSeekBackoff, seq: round})
}

// TryAttach validates the grant against the topology mirror and performs
// the adoption under one lock hold: the granter must still be alive and
// outside this node's subtree when the parent pointer flips, so concurrent
// repairs cannot close a cycle between the check and the attach.
func (ln *liveNode) TryAttach(granter int) bool {
	c := ln.c
	c.mu.Lock()
	if c.killed[granter] || c.topo.InSubtree(granter, ln.id) {
		c.mu.Unlock()
		return false
	}
	c.topo.SetParent(ln.id, granter)
	delete(c.seeking, ln.id)
	c.mu.Unlock()
	ln.parent = granter
	ln.outSeq = 0
	ln.m.repairs.Add(1)
	return true
}

// Attached runs after the adoption was confirmed to the granter.
func (ln *liveNode) Attached(granter int) {
	if ln.c.cfg.ResendLastOnAdopt {
		ln.resendLast()
	}
	ln.c.notifyRepair(ln.id, granter)
}

// Partitioned makes the node a standalone root: detection of the partial
// predicate over its own subtree continues (paper §III-F).
func (ln *liveNode) Partitioned() {
	c := ln.c
	c.mu.Lock()
	delete(c.seeking, ln.id)
	c.mu.Unlock()
	ln.parent = tree.None
	ln.m.repairs.Add(1)
	c.notifyRepair(ln.id, tree.None)
}

// HasSource implements repair.AdopterHost.
func (ln *liveNode) HasSource(child int) bool { return ln.node.HasSource(child) }

// Adopt reserves the child queue backing a grant.
func (ln *liveNode) Adopt(child int) {
	ln.node.AddChild(child)
	ln.reseq[child] = repair.NewResequencer()
	ln.epochs.Forget(child)
	ln.epochs.Bump()
}

// Unadopt releases an aborted reservation, delivering any detections the
// queue removal unblocked.
func (ln *liveNode) Unadopt(child int) {
	ln.deliver(ln.dropChild(child))
}
