package livenet

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// BenchmarkLiveScale runs full balanced trees through the live runtime at
// p ∈ {127, 511, 1023} in three lanes:
//
//	legacy   the seed delivery plane in full (Config.LegacyDelivery): one
//	         goroutine + inbox channel per node, one sleeping goroutine per
//	         delayed message, fed one Observe call per interval — the
//	         pre-change baseline
//	sharded  the rebuilt plane (mailbox shards + worker pool + timer wheel),
//	         same per-interval feeding — isolates the delivery-plane gain
//	batched  the rebuilt plane driven the way it is meant to be at scale:
//	         ObserveBatch ingestion, batch-window report coalescing —
//	         pinned to the sequential detection oracle so it keeps
//	         measuring exactly what it measured when it was the headline
//	         lane
//	parallel ObserveBatch ingestion, drain-end adaptive report coalescing
//	         (Config.AdaptiveFlush) and the parallel detection engine with
//	         its comparison-pruning layer: partitioned comparison rounds,
//	         digest-guarded and memoized verdicts, flat aggregate storage,
//	         slab-carved solution sets — the full current path
//
// Each iteration builds a cluster, feeds every process's stream at full
// speed, and drains via Stop. Reported metrics:
//
//	intervals/sec   end-to-end ingestion throughput (observed locals / wall)
//	peak-goroutines high-water goroutine count during the run — the new
//	                plane must stay O(p); the legacy plane scales with
//	                in-flight messages
//	detections/op   sanity: every lane must detect every round at the root
//	worst-node-cmps/run  the busiest detector's enumerated comparisons —
//	                the hot-spot the hierarchy is supposed to flatten
//	cmps/interval   fleet-wide enumerated comparisons per observed interval;
//	                the enumeration ledger is engine-independent, so the
//	                sequential lanes' value doubles as the pre-pruning-layer
//	                baseline
//	digest-filter-rate / memo-hit-rate  the comparison-pruning layer's
//	                share of enumerated comparisons answered by the one-word
//	                digest guard / the cross-round verdict memo (zero on the
//	                sequential lanes)
//	latency-p50-ms / latency-p99-ms  observe→SolutionFound latency quantiles
//	                (ClusterMetrics.LatencyP50/P99, averaged over iterations)
//	                — how long an interval's cascade takes to conclude, the
//	                number the batch window and adaptive flush trade
//	                throughput against
//
// The scale lane (make bench-scale / cmd/benchjson -suite scale) records
// these into BENCH_scale.json; the p=1023 parallel-vs-batched ratio is the
// current acceptance headline (batched-vs-legacy was the PR 4 one).
func BenchmarkLiveScale(b *testing.B) {
	for _, h := range []int{6, 8, 9} { // 127, 511, 1023 nodes
		topo := tree.Balanced(2, h)
		p := topo.N()
		rounds := 8
		if p >= 1000 {
			rounds = 6 // keep the legacy lane's goroutine storm affordable
		}
		e := workload.Generate(workload.Config{Topology: topo, Rounds: rounds, Seed: 42, PGlobal: 1})
		total := 0
		for _, s := range e.Streams {
			total += len(s)
		}
		for _, mode := range []benchMode{
			{name: "legacy", legacy: true, sequential: true},
			{name: "sharded", sequential: true},
			{name: "batched", batchFeed: true, window: 200 * time.Microsecond, sequential: true},
			{name: "parallel", batchFeed: true, adaptive: true},
		} {
			b.Run(fmt.Sprintf("p=%d/%s", p, mode.name), func(b *testing.B) {
				benchLiveScale(b, topo, e, total, rounds, mode)
			})
		}
	}
}

// benchMode selects one lane's plane and engine. The sharded/batched lanes
// pin SequentialDetect so they keep measuring the PR 4 configuration; the
// parallel lane is the full current path — adaptive drain-end coalescing
// instead of the batched lane's fixed window, plus the pruning engine.
type benchMode struct {
	name       string
	legacy     bool
	batchFeed  bool
	window     time.Duration
	adaptive   bool
	sequential bool
}

func benchLiveScale(b *testing.B, topo *tree.Topology, e *workload.Execution, total, rounds int, mode benchMode) {
	peak := 0
	roots := 0
	var worstCmps, vecCmps, filtered, memo, latObs int64
	var latP50, latP99 float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(Config{
			Topology:         topo,
			Seed:             int64(i + 1),
			MaxDelay:         500 * time.Microsecond,
			LegacyDelivery:   mode.legacy,
			BatchWindow:      mode.window,
			AdaptiveFlush:    mode.adaptive,
			SequentialDetect: mode.sequential,
		})

		stop := make(chan struct{})
		sampled := make(chan struct{})
		go func() {
			defer close(sampled)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if n := runtime.NumGoroutine(); n > peak {
					peak = n
				}
				time.Sleep(100 * time.Microsecond)
			}
		}()

		if mode.batchFeed {
			for p := range e.Streams {
				c.ObserveBatch(p, e.Streams[p])
			}
		} else {
			var wg sync.WaitGroup
			for p := range e.Streams {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for _, iv := range e.Streams[p] {
						c.Observe(p, iv)
					}
				}(p)
			}
			wg.Wait()
		}
		dets := c.Stop()
		close(stop)
		<-sampled
		for _, d := range dets {
			if d.AtRoot {
				roots++
			}
		}
		cm := c.ClusterMetrics()
		worstCmps += cm.WorstNodeCmps
		vecCmps += cm.VecComparisons
		filtered += cm.FilteredComparisons
		memo += cm.MemoHits
		latObs += cm.LatencyCount
		latP50 += cm.LatencyP50
		latP99 += cm.LatencyP99
	}
	b.StopTimer()
	if roots != rounds*b.N {
		b.Fatalf("root detections = %d, want %d — the plane under test is broken", roots, rounds*b.N)
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "intervals/sec")
	b.ReportMetric(float64(peak), "peak-goroutines")
	b.ReportMetric(float64(roots)/float64(b.N), "detections/op")
	b.ReportMetric(float64(worstCmps)/float64(b.N), "worst-node-cmps/run")
	if vecCmps > 0 {
		b.ReportMetric(float64(vecCmps)/float64(b.N)/float64(total), "cmps/interval")
		b.ReportMetric(float64(filtered)/float64(vecCmps), "digest-filter-rate")
		b.ReportMetric(float64(memo)/float64(vecCmps), "memo-hit-rate")
	}
	if latObs > 0 {
		b.ReportMetric(latP50/float64(b.N)*1e3, "latency-p50-ms")
		b.ReportMetric(latP99/float64(b.N)*1e3, "latency-p99-ms")
	}
}
