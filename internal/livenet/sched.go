package livenet

import "sync"

// sched.go — the delivery plane's mailbox shards and worker pool.
//
// Every node owns one bounded mailbox shard: a mutex-guarded slice the
// producers append to and a worker drains in one swap. A node is "scheduled"
// while its shard is non-empty and at most one worker runs a node at a time,
// so all per-node detector state stays single-writer exactly as it was when
// each node had its own goroutine — but the steady-state goroutine count is
// now the worker pool plus the timer wheel, independent of both p and the
// number of in-flight messages.
//
// Backpressure is asymmetric on purpose. External producers (Observe,
// ObserveBatch) block while the destination shard is at its bound — the
// cluster pushes back on the workload instead of buffering it without limit.
// Internal cascade traffic never blocks: a worker that blocked appending to
// a sibling's full shard could deadlock the pool, and cascade volume is
// bounded by the detection math (each accepted interval triggers a bounded
// report cascade), so the shards stay near the bound even under stress.

// runQueue is where enqueue puts a newly scheduled node for a worker to
// pick up. A standalone cluster's queue is its private channel drained by
// its private pool (chanQueue, exactly the pre-substrate behaviour); a
// cluster on a shared scheduler submits into the substrate's deficit-
// round-robin queue instead (schedClient in shared.go).
type runQueue interface {
	submit(ln *liveNode)
	depth() int
}

// chanQueue is the private run queue: the cluster-owned channel its own
// worker pool ranges over.
type chanQueue struct{ ch chan *liveNode }

func (q chanQueue) submit(ln *liveNode) { q.ch <- ln }
func (q chanQueue) depth() int          { return len(q.ch) }

// mailbox is one node's delivery shard.
type mailbox struct {
	mu        sync.Mutex
	notFull   sync.Cond
	buf       []message
	spare     []message // worker-owned swap buffer, recycled every drain
	scheduled bool
	high      int // high-water mark of len(buf), for Metrics
}

func (mb *mailbox) init() { mb.notFull.L = &mb.mu }

// enqueue appends msg to ln's shard and schedules the node on the run queue
// if it was idle. external marks producer traffic subject to the bound.
func (c *Cluster) enqueue(ln *liveNode, msg message, external bool) {
	if c.cfg.LegacyDelivery {
		// The seed's channel send: per-message handoff to the node goroutine,
		// backpressure from the channel capacity.
		ln.inbox <- msg
		return
	}
	mb := &ln.mb
	mb.mu.Lock()
	if external {
		for len(mb.buf) >= c.bound {
			mb.notFull.Wait()
		}
	}
	mb.buf = append(mb.buf, msg)
	if len(mb.buf) > mb.high {
		mb.high = len(mb.buf)
	}
	schedule := !mb.scheduled
	mb.scheduled = true
	mb.mu.Unlock()
	if schedule {
		c.sched.submit(ln)
	}
}

// worker is one pool goroutine: pop a scheduled node, drain its shard once,
// re-queue it if producers kept it non-empty. One drain per pop keeps the
// pool fair across nodes while still handing the detector whole batches. A
// nil pop is Stop's sentinel: the queue is never closed (late requeues must
// stay legal), each worker instead consumes exactly one sentinel and exits.
func (c *Cluster) worker() {
	defer c.wg.Done()
	for ln := range c.runq {
		if ln == nil {
			return
		}
		c.runNode(ln)
	}
}

// runNode drains one swap of ln's mailbox, returning the number of messages
// handled (the shared substrate charges the drain against the cluster's
// round-robin deficit). The scheduled flag stays set from the pop until the
// shard is observed empty, so no second worker can claim the node
// concurrently.
func (c *Cluster) runNode(ln *liveNode) int {
	c.busyWorkers.Add(1)
	defer c.busyWorkers.Add(-1)
	mb := &ln.mb
	mb.mu.Lock()
	batch := mb.buf
	mb.buf = mb.spare[:0]
	mb.spare = nil
	mb.mu.Unlock()
	mb.notFull.Broadcast()
	c.drains.Add(1)
	c.drained.Add(int64(len(batch)))
	c.drainHist.Observe(float64(len(batch)))

	// After the ledger drained and the state reached stopped, the only
	// messages left are uncredited heartbeat ticks from the wheel's last
	// turns; dropping them keeps post-Stop callbacks (child drops, repairs,
	// detections) from firing into a cluster the caller believes final.
	c.mu.Lock()
	stopped := c.state == clusterStopped
	c.mu.Unlock()

	down := ln.down.Load()
	for i := range batch {
		if !down && !stopped {
			ln.handle(batch[i])
		}
		if creditedKind(batch[i].kind) {
			c.done()
		}
		batch[i] = message{} // release interval/clock references
		down = ln.down.Load()
	}

	// AdaptiveFlush: the drain boundary is the coalescing edge. Everything
	// this drain's handlers emitted leaves as one batch now — the report
	// burst of one delivery batch, with no timer and no added latency — and
	// the buffer's ledger credit (taken at first buffer in emit) returns. A
	// node that crashed mid-drain loses its buffer, like any of its in-flight
	// messages.
	if ln.drainFlush {
		ln.drainFlush = false
		if down || stopped {
			ln.outBuf = ln.outBuf[:0]
		} else {
			ln.flushReports()
		}
		c.done()
	}

	mb.mu.Lock()
	if mb.spare == nil || cap(batch) > cap(mb.spare) {
		mb.spare = batch[:0]
	}
	requeue := len(mb.buf) > 0
	if !requeue {
		mb.scheduled = false
	}
	mb.mu.Unlock()
	if requeue {
		c.sched.submit(ln)
	}
	return len(batch)
}

// creditedKind reports whether a message kind holds a ledger credit. Only
// heartbeat ticks are uncredited: they are periodic background work that
// must not keep an idle cluster from stopping (the seed runtime used a
// per-node ticker for the same reason).
func creditedKind(k msgKind) bool { return k != msgHbTick }

// depths reads the shard's current depth and its high-water mark.
func (mb *mailbox) depths() (current, highWater int) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.buf), mb.high
}
