package livenet

import (
	"runtime"
	"testing"
	"time"

	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// goroutinesSettleTo polls until the process goroutine count drops to at
// most want, failing after two seconds — long enough for any straggler the
// runtime still has to park, far shorter than a leaked sleep.
func goroutinesSettleTo(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines = %d, want <= %d after Stop; dump:\n%s",
				n, want, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStopCancelsDelayedDeliveries is the regression test for the seed's
// sleep-goroutine leak window: with a delivery delay far longer than the
// test, the seed design left one sleeping goroutine per in-flight message
// alive after Stop returned. The wheel must instead drain everything before
// Stop (credits cover delayed messages) and cancel cleanly, leaving the
// goroutine count where it started.
func TestStopCancelsDelayedDeliveries(t *testing.T) {
	base := runtime.NumGoroutine()
	topo := tree.Balanced(2, 3)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: 8, Seed: 11, PGlobal: 1})
	c := New(Config{
		Topology: topo, Seed: 7, Strict: true, KeepMembers: true,
		MaxDelay:  30 * time.Millisecond, // every report outlives the feed
		HbEvery:   500 * time.Microsecond,
		HbTimeout: time.Hour, // beats flow, suspicion never fires
	})
	feed(c, e, topo)
	dets := c.Stop()
	roots := 0
	for _, d := range dets {
		if d.AtRoot {
			roots++
		}
	}
	if roots != 8 {
		t.Fatalf("root detections = %d, want 8", roots)
	}
	goroutinesSettleTo(t, base)
}

// TestStopCancelsRepairTimers: armed seek timeouts are credited wheel
// entries, so a Stop racing a repair in progress must wait the repair out
// and still cancel cleanly.
func TestStopCancelsRepairTimers(t *testing.T) {
	base := runtime.NumGoroutine()
	topo := tree.Balanced(2, 2)
	c := New(Config{
		Topology: topo, Seed: 3, Strict: true, KeepMembers: true,
		HbEvery: 200 * time.Microsecond,
	})
	c.Kill(1) // orphans 3 and 4; each arms seek timeouts while reattaching
	c.Drain()
	c.Stop()
	goroutinesSettleTo(t, base)
}

// TestSteadyStateGoroutinesBounded: under heavy in-flight load at p=127 the
// delivery plane must hold the goroutine count at pool + wheel + feeders —
// not O(in-flight messages), which under the seed design reached thousands
// on this workload (every report sleeps 5ms while the feeders keep going).
func TestSteadyStateGoroutinesBounded(t *testing.T) {
	base := runtime.NumGoroutine()
	topo := tree.Balanced(2, 6) // 127 nodes
	e := workload.Generate(workload.Config{Topology: topo, Rounds: 6, Seed: 2, PGlobal: 1})
	c := New(Config{Topology: topo, Seed: 1, Strict: true, KeepMembers: true,
		MaxDelay: 5 * time.Millisecond})

	peak := 0
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	feed(c, e, topo)
	c.Drain()
	close(stop)
	<-sampled
	c.Stop()

	// Pool + wheel + 127 feeder goroutines + the sampler + slack. The point
	// is the order of magnitude: tens, not thousands.
	budget := base + c.workers + 1 + topo.N() + 1 + 16
	if peak > budget {
		t.Fatalf("peak goroutines = %d, budget %d (delivery plane must not scale with in-flight messages)", peak, budget)
	}
}

// TestBatchWindowMatchesUnbatched: batch-window coalescing may delay reports
// but must not change what is detected. Verify against the unbatched run on
// the same workload, and confirm coalescing actually happened.
func TestBatchWindowMatchesUnbatched(t *testing.T) {
	topo := tree.Balanced(2, 2)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: 12, Seed: 4, PGlobal: 1})

	run := func(window time.Duration) (map[int]int, map[int]Metrics) {
		c := New(Config{Topology: topo, Seed: 6, Strict: true, KeepMembers: true, BatchWindow: window})
		feed(c, e, topo)
		dets := c.Stop()
		perNode := map[int]int{}
		for _, d := range dets {
			perNode[d.Node]++
		}
		return perNode, c.Metrics()
	}

	plain, _ := run(0)
	batched, m := run(300 * time.Microsecond)
	for node, want := range plain {
		if batched[node] != want {
			t.Errorf("node %d: batched %d detections, unbatched %d", node, batched[node], want)
		}
	}
	flushes, out := 0, 0
	for _, nm := range m {
		flushes += nm.BatchFlushes
		out += nm.MsgsOut
	}
	if flushes == 0 {
		t.Fatal("BatchWindow run recorded no batch flushes")
	}
	if out > flushes {
		t.Fatalf("MsgsOut = %d > BatchFlushes = %d: non-root reports bypassed the window", out, flushes)
	}
}

// TestAdaptiveFlushMatchesUnbatched: drain-end coalescing must not change
// what is detected — same per-node detection counts as the per-report run on
// the same workload — while actually coalescing: every non-root report leaves
// inside a flush (never as an individual message), and batch feeding makes
// flushes strictly fewer than the reports they carry. The Stop at the end
// also exercises the flush credit: a buffered report that did not hold a
// ledger credit could be stranded, and the detection counts would diverge.
func TestAdaptiveFlushMatchesUnbatched(t *testing.T) {
	topo := tree.Balanced(2, 2)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: 12, Seed: 4, PGlobal: 1})

	run := func(adaptive bool) (map[int]int, map[int]Metrics) {
		c := New(Config{Topology: topo, Seed: 6, Strict: true, KeepMembers: true, AdaptiveFlush: adaptive})
		for p := range e.Streams {
			c.ObserveBatch(p, e.Streams[p])
		}
		dets := c.Stop()
		perNode := map[int]int{}
		for _, d := range dets {
			perNode[d.Node]++
		}
		return perNode, c.Metrics()
	}

	plain, _ := run(false)
	adaptive, m := run(true)
	nonRoot := 0
	for node, want := range plain {
		if adaptive[node] != want {
			t.Errorf("node %d: adaptive %d detections, unbatched %d", node, adaptive[node], want)
		}
		if topo.Parent(node) != tree.None {
			nonRoot += want
		}
	}
	flushes, out := 0, 0
	for _, nm := range m {
		flushes += nm.BatchFlushes
		out += nm.MsgsOut
	}
	if flushes == 0 {
		t.Fatal("AdaptiveFlush run recorded no flushes")
	}
	if out > flushes {
		t.Fatalf("MsgsOut = %d > flushes = %d: reports bypassed drain-end coalescing", out, flushes)
	}
	if flushes >= nonRoot {
		t.Fatalf("flushes = %d for %d non-root reports: drain-end flush never coalesced a burst", flushes, nonRoot)
	}
}

// TestObserveBatchMatchesObserve: feeding each process's stream in one
// ObserveBatch call detects exactly what per-interval Observe calls do.
func TestObserveBatchMatchesObserve(t *testing.T) {
	topo := tree.Balanced(2, 2)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: 10, Seed: 8, PGlobal: 1})

	counts := func(batch bool) map[int]int {
		c := New(Config{Topology: topo, Seed: 2, Strict: true, KeepMembers: true})
		if batch {
			for p := range e.Streams {
				c.ObserveBatch(p, e.Streams[p])
			}
		} else {
			feed(c, e, topo)
		}
		perNode := map[int]int{}
		for _, d := range c.Stop() {
			perNode[d.Node]++
		}
		return perNode
	}

	one, many := counts(false), counts(true)
	for node := 0; node < topo.N(); node++ {
		if one[node] != many[node] {
			t.Errorf("node %d: ObserveBatch %d detections, Observe %d", node, many[node], one[node])
		}
	}
}

// TestLegacyDeliveryStillCorrect keeps the benchmark baseline honest: the
// goroutine-per-message path must remain semantically identical to the
// wheel, or scale comparisons against it measure a broken runtime.
func TestLegacyDeliveryStillCorrect(t *testing.T) {
	topo := tree.Balanced(2, 2)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: 10, Seed: 5, PGlobal: 1})
	c := New(Config{Topology: topo, Seed: 4, Strict: true, KeepMembers: true, LegacyDelivery: true})
	feed(c, e, topo)
	roots := 0
	for _, d := range c.Stop() {
		if d.AtRoot {
			roots++
		}
	}
	if roots != 10 {
		t.Fatalf("root detections = %d, want 10", roots)
	}
}

// TestMailboxBackpressure: a bound of 1 forces Observe to block and hand
// work over one message at a time; the cluster must neither deadlock nor
// drop anything.
func TestMailboxBackpressure(t *testing.T) {
	topo := tree.Balanced(2, 2)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: 10, Seed: 9, PGlobal: 1})
	c := New(Config{Topology: topo, Seed: 8, Strict: true, KeepMembers: true, MailboxBound: 1})
	feed(c, e, topo)
	roots := 0
	for _, d := range c.Stop() {
		if d.AtRoot {
			roots++
		}
	}
	if roots != 10 {
		t.Fatalf("root detections = %d, want 10", roots)
	}
	for _, m := range c.Metrics() {
		if m.MailboxHighWater == 0 {
			t.Fatal("mailbox high-water mark never recorded")
		}
		break
	}
}
