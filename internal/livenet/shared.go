package livenet

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hierdet/internal/core"
	"hierdet/internal/vclock"
)

// shared.go — the shared scheduler substrate. One worker pool, one timer
// wheel, one comparison pool and one clock arena serve any number of
// clusters, so a tenant plane's steady-state goroutine count is the pool
// plus the wheel — independent of the tenant count, the same collapse the
// sharded delivery plane performed for the process count inside one cluster.
//
// Fairness is deficit round robin over clusters: each cluster with scheduled
// nodes is one client on an active ring, a worker serves the ring head while
// its deficit lasts and rotates it to the back when the quantum is spent, and
// each drain's message count is charged against the deficit. A hot tenant
// flooding its mailboxes therefore costs a quiet tenant at most one ring
// rotation of latency, not a starvation wait behind the hot tenant's entire
// backlog — the multiplexed analogue of the per-cluster pool the clusters
// gave up.

// SharedSchedulerConfig parameterizes a substrate.
type SharedSchedulerConfig struct {
	// Workers sizes the shared worker pool (default GOMAXPROCS).
	Workers int
	// Tick is the shared wheel's quantization tick, clamped to [20µs, 1ms]
	// (default 25µs — the tick a standalone cluster derives from the
	// default MaxDelay).
	Tick time.Duration
	// Quantum is the DRR quantum in messages: how many messages one cluster
	// may drain before the ring rotates past it (default 256).
	Quantum int
	// DetectWorkers sizes the shared comparison pool clusters running the
	// parallel detection engine draw on (default GOMAXPROCS).
	DetectWorkers int
	// WheelLagSink, when set, receives each wheel advance's lag in seconds
	// (the tenant plane feeds its lag histogram through this).
	WheelLagSink func(float64)
}

// SharedScheduler is one substrate instance. Create with NewSharedScheduler,
// hand it to any number of clusters via Config.Scheduler, and Close it after
// every client cluster has stopped.
type SharedScheduler struct {
	workers int
	quantum int
	wheel   *wheel
	detect  *core.Pool
	arena   *vclock.Arena

	mu       sync.Mutex
	workCond *sync.Cond // workers wait here for ring work
	idleCond *sync.Cond // detach waits here for a dead client's drains
	active   []*schedClient
	closed   bool
	clients  int

	wg   sync.WaitGroup
	busy atomic.Int64
}

// schedClient is one cluster's seat on the substrate: its FIFO of scheduled
// nodes and its round-robin deficit. It implements runQueue, so a cluster
// submits into it exactly where a standalone cluster submits into its
// private channel. All fields are guarded by the scheduler's mutex.
type schedClient struct {
	s       *SharedScheduler
	nodes   []*liveNode
	head    int // pop index; compacted when the queue empties
	deficit int
	queued  bool // on the active ring
	running int  // drains in flight on workers
	dead    bool // detached: submits are dropped
}

func (cl *schedClient) submit(ln *liveNode) { cl.s.submit(cl, ln) }

func (cl *schedClient) depth() int {
	cl.s.mu.Lock()
	defer cl.s.mu.Unlock()
	return len(cl.nodes) - cl.head
}

// NewSharedScheduler builds and starts a substrate: Workers pool goroutines
// plus one wheel goroutine, all of them shared by every client cluster.
func NewSharedScheduler(cfg SharedSchedulerConfig) *SharedScheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 25 * time.Microsecond
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 256
	}
	dw := cfg.DetectWorkers
	if dw <= 0 {
		dw = runtime.GOMAXPROCS(0)
	}
	s := &SharedScheduler{
		workers: cfg.Workers,
		quantum: cfg.Quantum,
		wheel:   newWheel(cfg.Tick),
		detect:  core.NewPool(dw),
		arena:   vclock.NewArena(),
	}
	s.wheel.lagObserve = cfg.WheelLagSink
	s.workCond = sync.NewCond(&s.mu)
	s.idleCond = sync.NewCond(&s.mu)
	go s.wheel.run()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Workers returns the shared pool size.
func (s *SharedScheduler) Workers() int { return s.workers }

// Busy returns how many shared workers are currently draining a shard.
func (s *SharedScheduler) Busy() int { return int(s.busy.Load()) }

// Clients returns how many clusters are currently attached.
func (s *SharedScheduler) Clients() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clients
}

// WheelEntries returns the shared wheel's live entry count.
func (s *SharedScheduler) WheelEntries() int { return s.wheel.entries() }

// WheelTick returns the shared wheel's quantization tick.
func (s *SharedScheduler) WheelTick() time.Duration { return s.wheel.tick }

// WheelLagNanos returns how far past its deadline the last advance ran.
func (s *SharedScheduler) WheelLagNanos() int64 { return s.wheel.lagNanos.Load() }

// WheelTicks returns total wheel advances processed.
func (s *SharedScheduler) WheelTicks() int64 { return s.wheel.ticksTotal.Load() }

// register attaches a cluster, returning its run-queue seat. Called from New.
func (s *SharedScheduler) register() *schedClient {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		panic("livenet: cluster attached to a closed SharedScheduler")
	}
	s.clients++
	return &schedClient{s: s}
}

// submit queues a scheduled node under its cluster's seat and activates the
// seat on the ring if it was idle.
func (s *SharedScheduler) submit(cl *schedClient, ln *liveNode) {
	s.mu.Lock()
	if cl.dead || s.closed {
		s.mu.Unlock()
		return
	}
	cl.nodes = append(cl.nodes, ln)
	if !cl.queued {
		cl.queued = true
		cl.deficit = s.quantum
		s.active = append(s.active, cl)
	}
	s.workCond.Signal()
	s.mu.Unlock()
}

// next pops the node a worker should drain, blocking while the ring is
// empty. The ring head serves while its deficit lasts; a spent head gets a
// fresh quantum added and rotates to the back, so every pass over the ring
// grows each client's claim until it is served — the DRR guarantee that a
// backlogged client cannot push the others' deficits to zero.
func (s *SharedScheduler) next() (*schedClient, *liveNode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, nil
		}
		if len(s.active) == 0 {
			s.workCond.Wait()
			continue
		}
		cl := s.active[0]
		if cl.deficit <= 0 {
			cl.deficit += s.quantum
			copy(s.active, s.active[1:])
			s.active[len(s.active)-1] = cl
			continue
		}
		ln := cl.nodes[cl.head]
		cl.nodes[cl.head] = nil
		cl.head++
		if cl.head == len(cl.nodes) {
			cl.nodes = cl.nodes[:0]
			cl.head = 0
			cl.queued = false
			s.active = s.active[1:]
			if len(s.active) == 0 {
				s.active = nil
			}
		}
		cl.running++
		return cl, ln
	}
}

// charge settles a finished drain: the handled message count comes off the
// client's deficit, and a detaching cluster waiting for its in-flight drains
// is woken when the last one lands.
func (s *SharedScheduler) charge(cl *schedClient, msgs int) {
	s.mu.Lock()
	cl.deficit -= msgs
	cl.running--
	if cl.dead && cl.running == 0 {
		s.idleCond.Broadcast()
	}
	s.mu.Unlock()
}

// detach removes a stopping cluster's seat: queued nodes are discarded (its
// ledger has drained, so their mailboxes hold only uncredited ticks), new
// submits are dropped, and detach returns only once no worker is still
// inside one of the cluster's drains.
func (s *SharedScheduler) detach(cl *schedClient) {
	s.mu.Lock()
	cl.dead = true
	if cl.queued {
		cl.queued = false
		for i, a := range s.active {
			if a == cl {
				s.active = append(s.active[:i], s.active[i+1:]...)
				break
			}
		}
	}
	cl.nodes, cl.head = nil, 0
	for cl.running > 0 {
		s.idleCond.Wait()
	}
	s.clients--
	s.mu.Unlock()
}

// worker is one shared pool goroutine: pop a node off the DRR ring, drain it
// through its own cluster, charge the drain.
func (s *SharedScheduler) worker() {
	defer s.wg.Done()
	for {
		cl, ln := s.next()
		if ln == nil {
			return
		}
		s.busy.Add(1)
		msgs := ln.c.runNode(ln)
		s.busy.Add(-1)
		s.charge(cl, msgs)
	}
}

// clockArena is the chunk arena newLiveNode threads into core.Config: the
// substrate's shared slabs when the cluster rides one, nil (per-store chunks)
// otherwise.
func (c *Cluster) clockArena() *vclock.Arena {
	if c.shared != nil {
		return c.shared.arena
	}
	return nil
}

// Close tears the substrate down: the wheel goroutine, then the workers,
// then the comparison pool. Every client cluster must have stopped first —
// Stop detaches a cluster, so by here the wheel holds no credited entries
// and the ring is empty.
func (s *SharedScheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.workCond.Broadcast()
	s.mu.Unlock()
	s.wheel.stop()
	<-s.wheel.done
	s.wg.Wait()
	s.detect.Close()
}
