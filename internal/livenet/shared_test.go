package livenet

import (
	"runtime"
	"testing"
	"time"

	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// TestSharedSchedulerParity: a cluster riding the shared substrate must
// detect exactly what a standalone cluster detects on the same workload —
// the substrate changes who drains the mailboxes and carries the timers,
// never what the detectors compute.
func TestSharedSchedulerParity(t *testing.T) {
	topo := tree.Balanced(2, 3)
	e := workload.Generate(workload.Config{Topology: topo, Rounds: 12, Seed: 21, PGlobal: 1})

	run := func(s *SharedScheduler) int {
		c := New(Config{Topology: topo, Seed: 4, Strict: true, KeepMembers: true, Scheduler: s})
		feed(c, e, topo)
		roots := 0
		for _, d := range c.Stop() {
			if d.AtRoot {
				roots++
			}
		}
		return roots
	}

	private := run(nil)
	s := NewSharedScheduler(SharedSchedulerConfig{})
	defer s.Close()
	shared := run(s)
	if private != 12 || shared != 12 {
		t.Fatalf("root detections: private=%d shared=%d, want 12 both", private, shared)
	}
}

// TestSharedSchedulerManyClusters: many clusters on one substrate all detect
// correctly, concurrently, and the goroutine count is the substrate's pool
// plus wheel — independent of the cluster count (the tentpole property: no
// per-tenant delivery goroutines).
func TestSharedSchedulerManyClusters(t *testing.T) {
	base := runtime.NumGoroutine()
	s := NewSharedScheduler(SharedSchedulerConfig{Workers: 2})
	const clusters = 24
	topo := tree.Balanced(2, 2)

	cs := make([]*Cluster, clusters)
	for i := range cs {
		cs[i] = New(Config{Topology: topo, Seed: int64(i + 1), Strict: true, KeepMembers: true, Scheduler: s})
	}
	// Substrate: 2 workers + 1 wheel. Everything else is feeders and slack.
	if got := runtime.NumGoroutine(); got > base+2+1+4 {
		t.Fatalf("goroutines after %d clusters = %d (base %d): per-cluster goroutines leaked onto the substrate", clusters, got, base)
	}
	if s.Clients() != clusters {
		t.Fatalf("Clients() = %d, want %d", s.Clients(), clusters)
	}

	for i, c := range cs {
		e := workload.Generate(workload.Config{Topology: topo, Rounds: 5, Seed: int64(100 + i), PGlobal: 1})
		feed(c, e, topo)
	}
	for i, c := range cs {
		roots := 0
		for _, d := range c.Stop() {
			if d.AtRoot {
				roots++
			}
		}
		if roots != 5 {
			t.Fatalf("cluster %d: root detections = %d, want 5", i, roots)
		}
	}
	if s.Clients() != 0 {
		t.Fatalf("Clients() after stops = %d, want 0", s.Clients())
	}
	s.Close()
	goroutinesSettleTo(t, base)
}

// TestSharedSchedulerStopIsolation: stopping one cluster must not disturb a
// sibling mid-flight on the same substrate — the sibling's timers stay on
// the shared wheel and its detections keep flowing.
func TestSharedSchedulerStopIsolation(t *testing.T) {
	s := NewSharedScheduler(SharedSchedulerConfig{})
	defer s.Close()
	topo := tree.Balanced(2, 2)

	victim := New(Config{Topology: topo, Seed: 1, Strict: true, KeepMembers: true,
		Scheduler: s, HbEvery: 200 * time.Microsecond})
	survivor := New(Config{Topology: topo, Seed: 2, Strict: true, KeepMembers: true,
		Scheduler: s, HbEvery: 200 * time.Microsecond})

	e := workload.Generate(workload.Config{Topology: topo, Rounds: 4, Seed: 31, PGlobal: 1})
	feed(victim, e, topo)
	victim.Stop()

	// The survivor must still detect — including work fed entirely after the
	// victim's wheel entries were cancelled out from under the shared wheel.
	e2 := workload.Generate(workload.Config{Topology: topo, Rounds: 6, Seed: 32, PGlobal: 1})
	feed(survivor, e2, topo)
	roots := 0
	for _, d := range survivor.Stop() {
		if d.AtRoot {
			roots++
		}
	}
	if roots != 6 {
		t.Fatalf("survivor root detections = %d, want 6", roots)
	}
}

// TestSharedSchedulerFailover: the §III-F repair protocol — heartbeat ticks,
// suspicion, seek timeouts — runs entirely on the shared wheel, so a crash
// under the substrate must repair exactly as it does on a private plane.
func TestSharedSchedulerFailover(t *testing.T) {
	s := NewSharedScheduler(SharedSchedulerConfig{})
	defer s.Close()
	topo := tree.Balanced(2, 2)
	repaired := make(chan int, 8)
	c := New(Config{Topology: topo, Seed: 3, Strict: true, KeepMembers: true,
		Scheduler: s, HbEvery: 200 * time.Microsecond,
		OnRepair: func(orphan, newParent int) { repaired <- orphan }})
	orphans := c.Kill(1)
	if orphans != 2 {
		t.Fatalf("Kill(1) orphans = %d, want 2", orphans)
	}
	for i := 0; i < orphans; i++ {
		select {
		case <-repaired:
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for repair %d/%d", i+1, orphans)
		}
	}
	c.Drain()
	reps := c.Repairs()
	c.Stop()
	if len(reps) != 2 {
		t.Fatalf("repairs = %d, want 2", len(reps))
	}
	for _, r := range reps {
		if r.NewParent == tree.None {
			t.Fatalf("orphan %d partitioned; want reattachment", r.Orphan)
		}
	}
}

// TestSharedSchedulerRejectsLegacy: the seed delivery plane cannot ride the
// substrate — it has no mailbox shards to drain.
func TestSharedSchedulerRejectsLegacy(t *testing.T) {
	s := NewSharedScheduler(SharedSchedulerConfig{})
	defer s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Scheduler+LegacyDelivery did not panic")
		}
	}()
	New(Config{Topology: tree.Balanced(2, 1), Scheduler: s, LegacyDelivery: true})
}
