package livenet

import (
	"sync"
	"sync/atomic"
	"time"
)

// wheel is the cluster's single hashed timer wheel: every delayed message,
// repair timeout and heartbeat tick in the cluster is one entry in one wheel
// driven by one goroutine. The seed design slept a fresh goroutine per
// delayed message and armed a time.AfterFunc per repair timer, so the
// goroutine count scaled with the number of in-flight messages; the wheel
// caps the delivery plane at a single goroutine regardless of load, which is
// what lets the scale benchmarks run p ≥ 512 trees without drowning the
// scheduler.
//
// Layout: a power-of-two ring of slots, each a linked list of entries. An
// entry due in d is placed ceil(d/tick)-1 slots ahead of the cursor, with a
// rounds counter absorbing delays longer than one rotation. The goroutine
// sleeps until the next slot boundary (absolute deadlines against the wheel
// epoch, so processing jitter never accumulates), expires the slot, and
// re-arms recurring entries. When the wheel empties it parks on a channel
// and the epoch restarts on the next insert — an idle cluster burns no
// timer wakeups at all.
//
// Lifecycle: entries that deliver credited messages hold their ledger credit
// from insertion (the caller takes it) until the delivery is handled, so
// Cluster.Stop's drain covers everything the wheel still owes. stop() runs
// after the drain: by then only uncredited recurring entries (heartbeat
// ticks) remain, and they are discarded without firing — the clean
// cancellation the seed's sleeping goroutines could not offer.
type wheel struct {
	c    *Cluster
	tick time.Duration

	mu     sync.Mutex
	slots  []*wheelEntry
	mask   int
	cursor int       // slot the next advance will expire
	count  int       // live entries across all slots
	epoch  time.Time // time of tick 0 of the current busy period
	ticked int64     // advances processed this busy period
	parked bool      // goroutine is waiting on kick

	kick    chan struct{} // insert-into-empty-wheel wakeup (capacity 1)
	stopped chan struct{}
	done    chan struct{} // closed when the wheel goroutine has exited

	// Scrape-safe observability mirrors: how far past its deadline the last
	// advance ran, and total advances across all busy periods.
	lagNanos   atomic.Int64
	ticksTotal atomic.Int64
}

// wheelEntry is one scheduled delivery. Entries are owned by the wheel while
// queued and never shared, so they need no locks of their own.
type wheelEntry struct {
	ln     *liveNode
	msg    message
	rounds int
	// period re-arms the entry after each fire (heartbeat ticks). Recurring
	// entries are uncredited and die with the wheel — or earlier, when their
	// node is down.
	period time.Duration
	next   *wheelEntry
}

// wheelSlots is the ring size. Delays land within one rotation as long as
// they are under wheelSlots×tick; longer ones (repair timeouts against a
// microsecond tick) ride the rounds counter.
const wheelSlots = 512

func newWheel(c *Cluster, tick time.Duration) *wheel {
	if tick < 20*time.Microsecond {
		tick = 20 * time.Microsecond
	}
	if tick > time.Millisecond {
		tick = time.Millisecond
	}
	return &wheel{
		c:       c,
		tick:    tick,
		slots:   make([]*wheelEntry, wheelSlots),
		mask:    wheelSlots - 1,
		parked:  true,
		kick:    make(chan struct{}, 1),
		stopped: make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// schedule inserts a one-shot or recurring (period > 0) entry due in d. The
// caller has already taken the entry's ledger credit if its message carries
// one.
func (w *wheel) schedule(ln *liveNode, msg message, d, period time.Duration) {
	e := &wheelEntry{ln: ln, msg: msg, period: period}
	w.mu.Lock()
	w.insertLocked(e, d)
	wake := w.parked
	w.mu.Unlock()
	if wake {
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
}

// insertLocked places e due in d ticks from now. Caller holds mu.
func (w *wheel) insertLocked(e *wheelEntry, d time.Duration) {
	if w.count == 0 {
		// Empty wheel: restart the epoch so the loop does not spin through
		// the ticks that elapsed while it was parked.
		w.epoch = time.Now()
		w.ticked = 0
	}
	ticks := int((d + w.tick - 1) / w.tick)
	if ticks < 1 {
		ticks = 1
	}
	idx := (w.cursor + ticks - 1) & w.mask
	e.rounds = (ticks - 1) / wheelSlots
	e.next = w.slots[idx]
	w.slots[idx] = e
	w.count++
}

// run is the wheel goroutine. It signals exit on its own done channel (not
// the cluster's worker WaitGroup): Stop must know the wheel is fully gone
// before it sends the workers their stop sentinels, because an advancing
// wheel pushes nodes onto the run queue.
func (w *wheel) run() {
	defer close(w.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		w.mu.Lock()
		if w.count == 0 {
			w.parked = true
			w.mu.Unlock()
			select {
			case <-w.kick:
				continue
			case <-w.stopped:
				return
			}
		}
		w.parked = false
		deadline := w.epoch.Add(time.Duration(w.ticked+1) * w.tick)
		w.mu.Unlock()

		if wait := time.Until(deadline); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-w.stopped:
				w.drain()
				return
			}
		}
		w.lagNanos.Store(int64(time.Since(deadline)))
		w.advance()
	}
}

// advance expires the cursor slot: due entries are collected under the lock
// and delivered outside it (delivery takes mailbox locks), not-yet-due
// entries decrement rounds and stay, recurring entries re-arm after firing.
func (w *wheel) advance() {
	var due *wheelEntry
	w.mu.Lock()
	var keep *wheelEntry
	for e := w.slots[w.cursor]; e != nil; {
		next := e.next
		if e.rounds > 0 {
			e.rounds--
			e.next = keep
			keep = e
		} else {
			w.count--
			e.next = due
			due = e
		}
		e = next
	}
	w.slots[w.cursor] = keep
	w.cursor = (w.cursor + 1) & w.mask
	w.ticked++
	w.mu.Unlock()
	w.ticksTotal.Add(1)

	for e := due; e != nil; e = e.next {
		if e.msg.kind == msgHbTick && !e.ln.down.Load() && !w.c.remote {
			// Publish the single-process liveness beacon at fire time, not
			// handle time: a node whose mailbox is backed up with work is
			// busy, not dead, and must not be suspected for it.
			e.ln.beat.Store(time.Now().UnixNano())
		}
		w.c.enqueue(e.ln, e.msg, false)
		if e.period > 0 && !e.ln.down.Load() {
			w.mu.Lock()
			w.insertLocked(&wheelEntry{ln: e.ln, msg: e.msg, period: e.period}, e.period)
			w.mu.Unlock()
		}
	}
}

// entries reads the wheel's live entry count.
func (w *wheel) entries() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// stop cancels the wheel. It runs after the cluster's ledger drained, so the
// surviving entries are uncredited (recurring ticks); credited strays —
// impossible by the drain argument, but cheap to honor — have their credits
// returned so no ledger accounting is ever lost.
func (w *wheel) stop() {
	close(w.stopped)
}

// drain discards every queued entry on the way out, returning stray credits.
func (w *wheel) drain() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.slots {
		for e := w.slots[i]; e != nil; e = e.next {
			if e.period == 0 && creditedKind(e.msg.kind) {
				w.c.done()
			}
			w.count--
		}
		w.slots[i] = nil
	}
}
