package livenet

import (
	"sync"
	"sync/atomic"
	"time"
)

// wheel is a hashed timer wheel: every delayed message, repair timeout and
// heartbeat tick it carries is one entry in one ring driven by one goroutine.
// The seed design slept a fresh goroutine per delayed message and armed a
// time.AfterFunc per repair timer, so the goroutine count scaled with the
// number of in-flight messages; the wheel caps the delivery plane at a single
// goroutine regardless of load, which is what lets the scale benchmarks run
// p ≥ 512 trees without drowning the scheduler.
//
// A wheel is not tied to one cluster: each entry remembers its node, and a
// node knows its cluster, so one wheel can serve a whole tenant plane (the
// shared scheduler substrate) exactly as it serves a standalone cluster's
// private instance. cancel(c) surgically removes one cluster's entries when
// that cluster stops underneath a shared wheel that keeps running.
//
// Layout: a power-of-two ring of slots, each a linked list of entries. An
// entry due in d is placed ceil(d/tick)-1 slots ahead of the cursor, with a
// rounds counter absorbing delays longer than one rotation. The goroutine
// sleeps until the next slot boundary (absolute deadlines against the wheel
// epoch, so processing jitter never accumulates), expires the slot, and
// re-arms recurring entries. When the wheel empties it parks on a channel
// and the epoch restarts on the next insert — an idle cluster burns no
// timer wakeups at all.
//
// Lifecycle: entries that deliver credited messages hold their ledger credit
// from insertion (the caller takes it) until the delivery is handled, so
// Cluster.Stop's drain covers everything the wheel still owes. stop() — or,
// for one cluster under a shared wheel, cancel(c) — runs after the drain: by
// then only uncredited recurring entries (heartbeat ticks) remain, and they
// are discarded without firing — the clean cancellation the seed's sleeping
// goroutines could not offer.
type wheel struct {
	tick time.Duration

	mu     sync.Mutex
	slots  []*wheelEntry
	mask   int
	cursor int       // slot the next advance will expire
	count  int       // live entries across all slots
	epoch  time.Time // time of tick 0 of the current busy period
	ticked int64     // advances processed this busy period
	parked bool      // goroutine is waiting on kick
	// free is the entry freelist: expired one-shot and cancelled entries
	// recycle here instead of churning the allocator — at scale the wheel
	// turns over one entry per delayed message, the hottest allocation site
	// of the whole delivery plane.
	free *wheelEntry

	kick    chan struct{} // insert-into-empty-wheel wakeup (capacity 1)
	stopped chan struct{}
	done    chan struct{} // closed when the wheel goroutine has exited

	// lagObserve, when set before the goroutine starts, receives each
	// advance's lag in seconds (the shared substrate feeds a histogram).
	lagObserve func(float64)

	// Scrape-safe observability mirrors: how far past its deadline the last
	// advance ran, and total advances across all busy periods.
	lagNanos   atomic.Int64
	ticksTotal atomic.Int64
}

// wheelEntry is one scheduled delivery. Entries are owned by the wheel while
// queued and never shared, so they need no locks of their own.
type wheelEntry struct {
	ln     *liveNode
	msg    message
	rounds int
	// period re-arms the entry after each fire (heartbeat ticks). Recurring
	// entries are uncredited and die with the wheel — or earlier, when their
	// node is down or their cluster halted.
	period time.Duration
	next   *wheelEntry
}

// wheelSlots is the ring size. Delays land within one rotation as long as
// they are under wheelSlots×tick; longer ones (repair timeouts against a
// microsecond tick) ride the rounds counter.
const wheelSlots = 512

func newWheel(tick time.Duration) *wheel {
	if tick < 20*time.Microsecond {
		tick = 20 * time.Microsecond
	}
	if tick > time.Millisecond {
		tick = time.Millisecond
	}
	return &wheel{
		tick:    tick,
		slots:   make([]*wheelEntry, wheelSlots),
		mask:    wheelSlots - 1,
		parked:  true,
		kick:    make(chan struct{}, 1),
		stopped: make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// schedule inserts a one-shot or recurring (period > 0) entry due in d. The
// caller has already taken the entry's ledger credit if its message carries
// one.
func (w *wheel) schedule(ln *liveNode, msg message, d, period time.Duration) {
	w.mu.Lock()
	e := w.free
	if e != nil {
		w.free = e.next
		e.ln, e.msg, e.period, e.next = ln, msg, period, nil
	} else {
		e = &wheelEntry{ln: ln, msg: msg, period: period}
	}
	w.insertLocked(e, d)
	wake := w.parked
	w.mu.Unlock()
	if wake {
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
}

// insertLocked places e due in d ticks from now. Caller holds mu.
func (w *wheel) insertLocked(e *wheelEntry, d time.Duration) {
	if w.count == 0 {
		// Empty wheel: restart the epoch so the loop does not spin through
		// the ticks that elapsed while it was parked.
		w.epoch = time.Now()
		w.ticked = 0
	}
	ticks := int((d + w.tick - 1) / w.tick)
	if ticks < 1 {
		ticks = 1
	}
	idx := (w.cursor + ticks - 1) & w.mask
	e.rounds = (ticks - 1) / wheelSlots
	e.next = w.slots[idx]
	w.slots[idx] = e
	w.count++
}

// releaseLocked recycles an entry that is out of every slot list. Caller
// holds mu.
func (w *wheel) releaseLocked(e *wheelEntry) {
	*e = wheelEntry{next: w.free} // release interval/clock references
	w.free = e
}

// run is the wheel goroutine. It signals exit on its own done channel (not
// any cluster's worker WaitGroup): Stop must know the wheel is fully gone
// before it sends the workers their stop sentinels, because an advancing
// wheel pushes nodes onto the run queue.
func (w *wheel) run() {
	defer close(w.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		w.mu.Lock()
		if w.count == 0 {
			w.parked = true
			w.mu.Unlock()
			select {
			case <-w.kick:
				continue
			case <-w.stopped:
				return
			}
		}
		w.parked = false
		deadline := w.epoch.Add(time.Duration(w.ticked+1) * w.tick)
		w.mu.Unlock()

		if wait := time.Until(deadline); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-w.stopped:
				w.drain()
				return
			}
		}
		lag := time.Since(deadline)
		w.lagNanos.Store(int64(lag))
		if w.lagObserve != nil {
			w.lagObserve(lag.Seconds())
		}
		w.advance()
	}
}

// advance expires the cursor slot: due entries are collected under the lock
// and delivered outside it (delivery takes mailbox locks), not-yet-due
// entries decrement rounds and stay, recurring entries re-arm after firing.
// Delivery routes through each entry's own cluster, so one wheel can carry
// many clusters' timers.
func (w *wheel) advance() {
	var due *wheelEntry
	w.mu.Lock()
	var keep *wheelEntry
	for e := w.slots[w.cursor]; e != nil; {
		next := e.next
		if e.rounds > 0 {
			e.rounds--
			e.next = keep
			keep = e
		} else {
			w.count--
			e.next = due
			due = e
		}
		e = next
	}
	w.slots[w.cursor] = keep
	w.cursor = (w.cursor + 1) & w.mask
	w.ticked++
	w.mu.Unlock()
	w.ticksTotal.Add(1)

	var rearm, spent *wheelEntry
	for e := due; e != nil; {
		next := e.next
		c := e.ln.c
		if e.msg.kind == msgHbTick && !e.ln.down.Load() && !c.remote {
			// Publish the single-process liveness beacon at fire time, not
			// handle time: a node whose mailbox is backed up with work is
			// busy, not dead, and must not be suspected for it.
			e.ln.beat.Store(time.Now().UnixNano())
		}
		c.enqueue(e.ln, e.msg, false)
		if e.period > 0 && !e.ln.down.Load() && !c.halted.Load() {
			e.next = rearm
			rearm = e
		} else {
			e.next = spent
			spent = e
		}
		e = next
	}
	if rearm != nil || spent != nil {
		w.mu.Lock()
		for e := rearm; e != nil; {
			next := e.next
			w.insertLocked(e, e.period)
			e = next
		}
		for e := spent; e != nil; {
			next := e.next
			w.releaseLocked(e)
			e = next
		}
		w.mu.Unlock()
	}
}

// entries reads the wheel's live entry count.
func (w *wheel) entries() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// stop cancels the wheel. It runs after the owning cluster's ledger drained
// (or, for a shared wheel, after every client cluster detached), so the
// surviving entries are uncredited (recurring ticks); credited strays —
// impossible by the drain argument, but cheap to honor — have their credits
// returned so no ledger accounting is ever lost.
func (w *wheel) stop() {
	close(w.stopped)
}

// cancel removes every entry belonging to one cluster — the shared-wheel
// counterpart of stop, run by Cluster.Stop after that cluster's ledger
// drained while other clusters' timers keep running. Credited strays return
// their credits, same argument as drain.
func (w *wheel) cancel(c *Cluster) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.slots {
		var keep *wheelEntry
		for e := w.slots[i]; e != nil; {
			next := e.next
			if e.ln.c == c {
				if e.period == 0 && creditedKind(e.msg.kind) {
					c.done()
				}
				w.count--
				w.releaseLocked(e)
			} else {
				e.next = keep
				keep = e
			}
			e = next
		}
		w.slots[i] = keep
	}
}

// drain discards every queued entry on the way out, returning stray credits.
func (w *wheel) drain() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.slots {
		for e := w.slots[i]; e != nil; e = e.next {
			if e.period == 0 && creditedKind(e.msg.kind) {
				e.ln.c.done()
			}
			w.count--
		}
		w.slots[i] = nil
	}
}
