package monitor

import (
	"fmt"
	"sort"

	"hierdet/internal/core"
	"hierdet/internal/interval"
	"hierdet/internal/repair"
	"hierdet/internal/simnet"
	"hierdet/internal/tree"
)

// ivlPayload is one hierarchical child→parent report: the shared
// repair.Report. LinkSeq is a per-link counter (restarting at zero on every
// adoption) that lets the receiver resequence the non-FIFO channel; Epoch
// counts the sender's subtree reconfigurations (see repair.Epochs for why
// the receiver must reset the stream on an epoch advance).
type ivlPayload = repair.Report

// ivlBatch is the wire payload of a KindIvl message: one or more reports.
// Without batching every message carries exactly one; with
// Config.BatchWindow > 0 a node buffers reports per link and flushes them
// as a single message — an optimization beyond the paper that trades
// detection latency (up to one window) for per-message overhead.
type ivlBatch []ivlPayload

// agent runs one process of the hierarchical detector: its core.Node, its
// tree links, per-child resequencers and heartbeats.
type agent struct {
	r      *Runner
	id     int
	node   *core.Node
	parent int
	outSeq int // per-current-link counter for reports to parent

	reseq     map[int]*repair.Resequencer // child id → resequencer
	lastHeard map[int]simnet.Time         // peer id → last heartbeat time
	lastAgg   *interval.Interval          // most recent aggregate, for resend-on-adopt
	staleIvls int                         // reports from ex-children, dropped

	// Batching state (Config.BatchWindow > 0): reports buffered for the
	// current parent and whether a flush timer is pending.
	outBuf       ivlBatch
	flushPending bool

	ivScratch []interval.Interval // reused batch-ingestion staging

	// epochs stamps outgoing reports and tracks each child stream's last
	// seen epoch (shared with the live runtime; see repair.Epochs).
	epochs *repair.Epochs

	// Distributed-repair state: the shared attach-protocol state machines
	// (the agent implements their host interfaces in attach.go) plus the
	// heartbeat-fed bookkeeping they draw on.
	seeker        *repair.Seeker
	adopter       *repair.Adopter
	covered       map[int][]int // child → covered set it last reported
	rootSeeking   bool          // this tree's root is currently seeking (via parent hb)
	suspectedDead map[int]bool
}

func (r *Runner) buildHierarchical() {
	coreCfg := core.Config{N: r.topo.N(), Strict: r.cfg.Strict, KeepMembers: r.cfg.KeepMembers}
	for _, id := range r.topo.AliveNodes() {
		a := &agent{
			r:             r,
			id:            id,
			node:          core.NewNode(id, coreCfg, true),
			parent:        r.topo.Parent(id),
			reseq:         make(map[int]*repair.Resequencer),
			lastHeard:     make(map[int]simnet.Time),
			covered:       make(map[int][]int),
			suspectedDead: make(map[int]bool),
			epochs:        repair.NewEpochs(),
		}
		a.seeker = repair.NewSeeker(id, a)
		a.adopter = repair.NewAdopter(id, a)
		for _, c := range r.topo.Children(id) {
			a.node.AddChild(c)
			a.reseq[c] = repair.NewResequencer()
			a.covered[c] = r.topo.Subtree(c)
		}
		r.agents[id] = a
		r.sim.Register(id, a)
	}
	if r.cfg.HbEvery > 0 {
		for _, id := range r.topo.AliveNodes() {
			// Stagger first beats so the network does not pulse in lockstep.
			r.sim.After(id, 1+simnet.Time(r.rng.Int63n(int64(r.cfg.HbEvery))), "hb", nil)
			r.sim.After(id, r.cfg.HbTimeout, "hbcheck", nil)
		}
	}
}

// scheduleLocalIntervals converts the recorded execution into timed
// completion events: process p's round-k interval completes at
// (k+1)·Spacing plus per-event jitter, preserving per-process order.
func (r *Runner) scheduleLocalIntervals() {
	jitterSpan := int64(r.cfg.Spacing / 2)
	for p, stream := range r.cfg.Exec.Streams {
		if !r.topo.Alive(p) {
			continue
		}
		for k, iv := range stream {
			jitter := simnet.Time(0)
			if jitterSpan > 0 {
				jitter = simnet.Time(r.rng.Int63n(jitterSpan))
			}
			at := simnet.Time(k+1)*r.cfg.Spacing + jitter
			r.sim.After(p, at, "local", iv)
		}
	}
}

// OnMessage implements simnet.Handler.
func (a *agent) OnMessage(at simnet.Time, msg simnet.Message) {
	switch msg.Kind {
	case KindIvl:
		batch := msg.Payload.(ivlBatch)
		rs, ok := a.reseq[msg.From]
		if !ok {
			// Report from a process that is no longer our child (in flight
			// across a repair); it belongs to the new parent's stream now.
			a.staleIvls += len(batch)
			return
		}
		for _, pl := range batch {
			a.ingest(at, msg.From, rs.Accept(pl))
		}
	case KindHb:
		a.lastHeard[msg.From] = at
		if pl, ok := msg.Payload.(hbPayload); ok {
			if msg.From == a.parent {
				a.rootSeeking = pl.RootSeeking
			}
			if _, isChild := a.reseq[msg.From]; isChild && pl.Covered != nil {
				a.covered[msg.From] = pl.Covered
			}
		}
	case KindAttach:
		a.onAttach(at, msg.From, msg.Payload.(repair.Msg))
	default:
		panic(fmt.Sprintf("monitor: agent %d got unknown message kind %q", a.id, msg.Kind))
	}
}

// ingest feeds a resequencer's released run — in-order reports from one
// child — into the detector. Consecutive reports of one reconfiguration
// epoch enter as a single batch (Algorithm 1 line 2 amortized over the run,
// via core's OnIntervals); an epoch advance inside the run means the child's
// subtree changed and its stream restarted, so the queued remainder of the
// old stream is discarded — and our own output stream restarts in turn —
// before the new epoch's reports enter.
func (a *agent) ingest(at simnet.Time, from int, ready []ivlPayload) {
	for i := 0; i < len(ready); {
		if a.epochs.Observe(from, ready[i].Epoch) {
			a.node.ResetSource(from)
		}
		j := i + 1
		for j < len(ready) && ready[j].Epoch == ready[i].Epoch {
			j++
		}
		if j == i+1 {
			a.r.record(at, a.node.OnInterval(from, ready[i].Iv), a.id)
		} else {
			ivs := a.ivScratch[:0]
			for k := i; k < j; k++ {
				ivs = append(ivs, ready[k].Iv)
			}
			a.r.record(at, a.node.OnIntervals(from, ivs), a.id)
			a.ivScratch = ivs[:0]
		}
		i = j
	}
}

// OnTimer implements simnet.Handler.
func (a *agent) OnTimer(at simnet.Time, kind simnet.Kind, data any) {
	switch kind {
	case "local":
		a.r.record(at, a.node.OnInterval(a.id, data.(interval.Interval)), a.id)
	case "hb":
		rootSeeking := a.rootSeeking || a.seeker.Seeking()
		var ownCov []int
		if a.r.cfg.DistributedRepair {
			ownCov = a.ownCovered()
		}
		for _, peer := range a.peers() {
			a.r.sim.Send(a.id, peer, KindHb, hbPayload{Covered: ownCov, RootSeeking: rootSeeking})
		}
		if at < a.r.horizon {
			a.r.sim.After(a.id, a.r.cfg.HbEvery, "hb", nil)
		}
	case "hbcheck":
		for _, peer := range a.peers() {
			last := a.lastHeard[peer]
			if at-last > a.r.cfg.HbTimeout {
				a.r.suspect(at, a.id, peer)
			}
		}
		if at < a.r.horizon {
			a.r.sim.After(a.id, a.r.cfg.HbEvery, "hbcheck", nil)
		}
	case "ivlflush":
		a.flushBatch()
	case "seekTimeout":
		a.seeker.OnTimeout(data.(int))
	case "seekBackoff":
		a.seeker.OnBackoff(data.(int))
	default:
		panic(fmt.Sprintf("monitor: agent %d got unknown timer %q", a.id, kind))
	}
}

// peers returns the agent's current tree neighbours (parent first, then
// children ascending). The order is deterministic on purpose: peers drive
// message sends, and every send draws from the seeded delay stream, so map
// iteration order here would make whole runs irreproducible.
func (a *agent) peers() []int {
	out := make([]int, 0, len(a.reseq)+1)
	if a.parent != tree.None {
		out = append(out, a.parent)
	}
	kids := make([]int, 0, len(a.reseq))
	for c := range a.reseq {
		kids = append(kids, c)
	}
	sort.Ints(kids)
	return append(out, kids...)
}

// sendAggregate ships one aggregate to the current parent, immediately or —
// with batching enabled — buffered until the window's flush.
func (a *agent) sendAggregate(at simnet.Time, agg interval.Interval) {
	cp := agg
	a.lastAgg = &cp
	a.r.res.AggSentByDepth[a.r.topo.Depth(a.id)]++
	pl := ivlPayload{Iv: agg, LinkSeq: a.outSeq, Epoch: a.epochs.Stamp()}
	a.outSeq++
	if a.r.cfg.BatchWindow <= 0 {
		a.r.sim.Send(a.id, a.parent, KindIvl, ivlBatch{pl})
		return
	}
	a.outBuf = append(a.outBuf, pl)
	if !a.flushPending {
		a.flushPending = true
		a.r.sim.After(a.id, a.r.cfg.BatchWindow, "ivlflush", nil)
	}
}

// flushBatch sends every buffered report as one message.
func (a *agent) flushBatch() {
	a.flushPending = false
	if len(a.outBuf) == 0 || a.parent == tree.None {
		a.outBuf = nil
		return
	}
	a.r.sim.Send(a.id, a.parent, KindIvl, a.outBuf)
	a.outBuf = nil
}

// resendLast re-reports the most recent aggregate to a newly adopted parent
// (paper §III-B / Figure 2(c)): reports in flight to the dead parent are
// lost, but the latest solution the subtree found is not.
func (a *agent) resendLast(at simnet.Time) {
	if a.lastAgg == nil || a.parent == tree.None {
		return
	}
	a.r.sim.Send(a.id, a.parent, KindIvl, ivlBatch{{Iv: *a.lastAgg, LinkSeq: a.outSeq, Epoch: a.epochs.Stamp()}})
	a.outSeq++
}

// removeChild drops a failed or re-parented child. The node's own source
// set changed, so its output stream starts a new reconfiguration epoch.
func (a *agent) removeChild(child int) []core.Detection {
	delete(a.reseq, child)
	delete(a.lastHeard, child)
	delete(a.covered, child)
	a.epochs.Forget(child)
	a.epochs.Bump()
	return a.node.RemoveChild(child)
}

// addChild adopts a new child subtree; like removeChild, it bumps the
// node's own output epoch.
func (a *agent) addChild(child int) {
	a.node.AddChild(child)
	a.reseq[child] = repair.NewResequencer()
	a.lastHeard[child] = a.r.sim.Now()
	a.covered[child] = a.r.topo.Subtree(child)
	a.epochs.Forget(child)
	a.epochs.Bump()
}

// setParent repoints the agent at a new parent, restarting the link counter.
// Reports still buffered for the old link are flushed to it first (they
// carry the old link's sequence numbers; if the old parent is dead they are
// dropped, the same fate as in-flight messages).
func (a *agent) setParent(p int) {
	if len(a.outBuf) > 0 && a.parent != tree.None {
		a.flushBatch()
	}
	a.outBuf = nil
	a.parent = p
	a.outSeq = 0
	if p != tree.None {
		a.lastHeard[p] = a.r.sim.Now()
	}
}
