package monitor

import (
	"fmt"
	"sort"

	"hierdet/internal/repair"
	"hierdet/internal/simnet"
	"hierdet/internal/tree"
)

// This file adapts the distributed reattachment protocol of internal/repair
// (used when Config.DistributedRepair is set) to the simulated network:
// instead of the topology oracle deciding which live neighbour adopts each
// orphan subtree, the orphans negotiate it over the network, which is what
// the paper's §III-F assumes happens ("[each subtree] will reconnect itself
// … by establishing a link between a node in the subtree and its neighbor
// which is still in the spanning tree") without giving a protocol. The
// protocol itself — request/grant/confirm/abort, seek rounds, the
// smallest-orphan-anchors tie-break — lives in internal/repair and is shared
// with the live runtime (internal/livenet); this file supplies its host
// interfaces: simnet transport, virtual-time timers, and the covered-set and
// root-seeking bookkeeping that ride on heartbeats.
//
// The covered sets that drive the inside-my-subtree test are maintained
// distributedly: each child piggybacks its covered set on heartbeats to its
// parent. Because they lag by up to one heartbeat period, the seeker
// re-validates against the topology mirror before finalizing an adoption
// and aborts instead of forming a cycle — the stand-in for the epoch
// validation a production protocol would carry in its messages.

// KindAttach labels attach-protocol messages on the simulated network.
const KindAttach simnet.Kind = "attach"

// hbPayload rides on every heartbeat. Covered is meaningful on child→parent
// beats, RootSeeking on parent→child beats; carrying both keeps the beat
// logic direction-agnostic.
type hbPayload struct {
	Covered     []int
	RootSeeking bool
}

// onAttach dispatches an attach-protocol message to the shared state
// machines.
func (a *agent) onAttach(at simnet.Time, from int, msg repair.Msg) {
	switch msg.Type {
	case repair.Req:
		a.adopter.OnRequest(from, msg, a.seeker.Seeking(), a.rootSeeking)
	case repair.Grant:
		a.seeker.OnGrant(from, msg)
	case repair.Confirm:
		a.adopter.OnConfirm(msg)
	case repair.Abort:
		a.adopter.OnAbort(msg)
	default:
		panic(fmt.Sprintf("monitor: agent %d got unknown attach type %v", a.id, msg.Type))
	}
}

// --- repair.SeekerHost / repair.AdopterHost ---

// Candidates returns the live neighbours outside the agent's own subtree,
// ascending.
func (a *agent) Candidates() []int {
	covered := make(map[int]bool)
	for _, p := range a.ownCovered() {
		covered[p] = true
	}
	var out []int
	for _, nb := range a.r.topo.Neighbors(a.id) {
		if !covered[nb] && !a.suspectedDead[nb] {
			out = append(out, nb)
		}
	}
	sort.Ints(out)
	return out
}

// Covered returns this node's current covered set: itself plus the last
// covered set each child reported on heartbeats.
func (a *agent) Covered() []int { return a.ownCovered() }

// NextReqID implements repair.SeekerHost with a runner-wide counter.
func (a *agent) NextReqID() int { return a.r.nextAttachReq() }

// Send ships a protocol message over the simulated network.
func (a *agent) Send(to int, m repair.Msg) {
	a.r.sim.Send(a.id, to, KindAttach, m)
}

// ArmTimeout schedules the per-candidate grant timeout.
func (a *agent) ArmTimeout(reqID int) {
	a.r.sim.After(a.id, a.r.seekTimeout(), "seekTimeout", reqID)
}

// ArmBackoff schedules the between-rounds pause.
func (a *agent) ArmBackoff(round int) {
	a.r.sim.After(a.id, a.r.seekTimeout(), "seekBackoff", round)
}

// TryAttach re-validates against the topology mirror and performs the
// adoption: the covered sets in requests lag by a heartbeat period, so a
// racing grant could close a cycle. A production protocol would detect this
// with epoch numbers; the simulator asks the mirror and aborts identically.
func (a *agent) TryAttach(granter int) bool {
	if a.r.topo.InSubtree(granter, a.id) {
		return false
	}
	a.r.topo.SetParent(a.id, granter)
	a.setParent(granter)
	return true
}

// Attached runs after the adoption was confirmed to the granter.
func (a *agent) Attached(granter int) {
	if a.r.cfg.ResendLastOnAdopt {
		a.resendLast(a.r.sim.Now())
	}
}

// Partitioned makes the agent a standalone root: detection of the partial
// predicate over its own subtree continues (paper §III-F).
func (a *agent) Partitioned() {
	a.setParent(tree.None)
}

// HasSource implements repair.AdopterHost.
func (a *agent) HasSource(child int) bool { return a.node.HasSource(child) }

// Adopt reserves the child queue backing a grant. The request's covered set
// is ignored here: the simulator's addChild seeds the covered bookkeeping
// from the topology oracle, which is exact (and keeps runs deterministic);
// the live runtime, with no oracle, seeds from the declared set instead.
func (a *agent) Adopt(child int, _ []int) { a.addChild(child) }

// Unadopt releases an aborted reservation, delivering any detections the
// queue removal unblocked.
func (a *agent) Unadopt(child int) {
	a.r.record(a.r.sim.Now(), a.removeChild(child), a.id)
}

// ownCovered returns this node's current covered set: itself plus the last
// covered set each child reported.
func (a *agent) ownCovered() []int {
	set := map[int]bool{a.id: true}
	for _, cov := range a.covered {
		for _, p := range cov {
			set[p] = true
		}
	}
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// seekTimeout is how long a seeker waits for a grant: enough for a request
// and its grant to cross the network.
func (r *Runner) seekTimeout() simnet.Time {
	t := 4*r.maxDelay() + 10
	if r.cfg.HbEvery > 0 && r.cfg.HbEvery > t {
		t = r.cfg.HbEvery
	}
	return t
}

func (r *Runner) nextAttachReq() int {
	r.attachReqSeq++
	return r.attachReqSeq
}

// distSuspect handles a heartbeat-timeout suspicion in distributed-repair
// mode: confirm and mirror the crash, then act locally — drop a dead
// child's queue, or start seeking when the parent died.
func (r *Runner) distSuspect(at simnet.Time, reporter, peer int) {
	if !r.sim.Crashed(peer) {
		panic(fmt.Sprintf("monitor: false suspicion of %d by %d (heartbeat timeout too small for the delay window)", peer, reporter))
	}
	if !r.repaired[peer] {
		r.repaired[peer] = true
		r.res.Repairs = append(r.res.Repairs, Repair{At: at, Node: peer})
		r.topo.MarkFailed(peer)
	}
	a := r.agents[reporter]
	if a.suspectedDead[peer] {
		return
	}
	a.suspectedDead[peer] = true
	switch {
	case peer == a.parent:
		a.seeker.Start()
	case a.node.HasSource(peer):
		r.record(at, a.removeChild(peer), reporter)
	}
}
