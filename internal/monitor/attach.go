package monitor

import (
	"fmt"
	"sort"

	"hierdet/internal/simnet"
	"hierdet/internal/tree"
)

// This file implements the distributed reattachment protocol used when
// Config.DistributedRepair is set: instead of the topology oracle deciding
// which live neighbour adopts each orphan subtree, the orphans negotiate it
// over the network, which is what the paper's §III-F assumes happens
// ("[each subtree] will reconnect itself … by establishing a link between a
// node in the subtree and its neighbor which is still in the spanning
// tree") without giving a protocol.
//
// Protocol (three-way, one outstanding request per seeker):
//
//	seeker   → candidate : attachReq{reqID, covered}
//	candidate→ seeker    : attachGrant{reqID}   (candidate reserves a queue)
//	seeker   → candidate : attachConfirm{reqID} (adoption final)
//	seeker   → candidate : attachAbort{reqID}   (timeout/stale grant: undo)
//
// A candidate rejects (by silence — the seeker's timeout advances it) when:
//   - it lies inside the seeker's subtree (it appears in req.covered), or
//   - its own tree root is currently seeking (flag propagated parent→child
//     on heartbeats), which prevents two orphan subtrees from adopting into
//     each other and forming a cycle, or
//   - it is itself seeking and has the larger id — among simultaneous
//     seekers, grants always point from larger to smaller id, so the "grant
//     graph" is acyclic and the smallest orphan anchors the rest.
//
// A seeker cycles through its live neighbours (ascending id), waits
// seekTimeout per candidate, and after maxSeekRounds full passes declares
// itself a partition root and continues detecting the partial predicate
// over its own subtree.
//
// Abort/req reordering over the non-FIFO links is handled with request ids:
// a candidate remembers aborted ids and rejects their late requests.
//
// The covered sets that drive the inside-my-subtree test are maintained
// distributedly: each child piggybacks its covered set on heartbeats to its
// parent. Because they lag by up to one heartbeat period, the seeker
// re-validates against the topology mirror before finalizing an adoption
// and aborts instead of forming a cycle — the stand-in for the epoch
// validation a production protocol would carry in its messages.

// KindAttach labels attach-protocol messages on the simulated network.
const KindAttach simnet.Kind = "attach"

const maxSeekRounds = 3

type attachType int

const (
	attachReq attachType = iota
	attachGrant
	attachConfirm
	attachAbort
)

func (t attachType) String() string {
	switch t {
	case attachReq:
		return "req"
	case attachGrant:
		return "grant"
	case attachConfirm:
		return "confirm"
	case attachAbort:
		return "abort"
	default:
		return fmt.Sprintf("attachType(%d)", int(t))
	}
}

type attachMsg struct {
	Type    attachType
	ReqID   int
	Covered []int // attachReq only: the seeker's subtree
}

// hbPayload rides on every heartbeat. Covered is meaningful on child→parent
// beats, RootSeeking on parent→child beats; carrying both keeps the beat
// logic direction-agnostic.
type hbPayload struct {
	Covered     []int
	RootSeeking bool
}

// seekState tracks an in-progress reattachment at an orphan subtree root.
type seekState struct {
	reqID      int
	candidates []int
	idx        int
	round      int
	current    int // candidate the outstanding request went to
}

// startSeeking begins the reattachment protocol after the agent's parent
// was confirmed dead.
func (a *agent) startSeeking(at simnet.Time) {
	if a.seeking != nil {
		return
	}
	a.seeking = &seekState{reqID: -1, current: tree.None}
	a.seekNext(at)
}

// seekCandidates returns the live neighbours outside the agent's own
// subtree, ascending.
func (a *agent) seekCandidates() []int {
	covered := make(map[int]bool)
	for _, p := range a.ownCovered() {
		covered[p] = true
	}
	var out []int
	for _, nb := range a.r.topo.Neighbors(a.id) {
		if !covered[nb] && !a.suspectedDead[nb] {
			out = append(out, nb)
		}
	}
	sort.Ints(out)
	return out
}

// seekNext sends the next attach request, or handles list/round exhaustion.
func (a *agent) seekNext(at simnet.Time) {
	s := a.seeking
	if s.idx == 0 {
		s.candidates = a.seekCandidates()
	}
	if s.idx >= len(s.candidates) {
		s.round++
		s.idx = 0
		if s.round >= maxSeekRounds {
			// No one can adopt this subtree: operate as a partition root
			// and keep detecting the partial predicate (paper §III-F).
			a.seeking = nil
			a.setParent(tree.None)
			return
		}
		// Back off one timeout and re-scan: anchored adopters may appear as
		// other seekers finish.
		a.r.sim.After(a.id, a.r.seekTimeout(), "seekBackoff", s.round)
		return
	}
	s.reqID = a.r.nextAttachReq()
	s.current = s.candidates[s.idx]
	s.idx++
	a.r.sim.Send(a.id, s.current, KindAttach, attachMsg{
		Type: attachReq, ReqID: s.reqID, Covered: a.ownCovered(),
	})
	a.r.sim.After(a.id, a.r.seekTimeout(), "seekTimeout", s.reqID)
}

// onAttach dispatches an attach-protocol message.
func (a *agent) onAttach(at simnet.Time, from int, msg attachMsg) {
	switch msg.Type {
	case attachReq:
		a.onAttachReq(at, from, msg)
	case attachGrant:
		a.onAttachGrant(at, from, msg)
	case attachConfirm:
		delete(a.reservations, msg.ReqID)
	case attachAbort:
		a.abortedReqs[msg.ReqID] = true
		if child, ok := a.reservations[msg.ReqID]; ok {
			delete(a.reservations, msg.ReqID)
			a.r.record(at, a.removeChild(child), a.id)
		}
	default:
		panic(fmt.Sprintf("monitor: agent %d got unknown attach type %v", a.id, msg.Type))
	}
}

// onAttachReq decides whether this node can adopt the seeker's subtree.
// Rejection is by silence; the seeker's timeout moves it along.
func (a *agent) onAttachReq(at simnet.Time, seeker int, msg attachMsg) {
	if a.abortedReqs[msg.ReqID] {
		return // the request's abort overtook it on the non-FIFO link
	}
	for _, p := range msg.Covered {
		if p == a.id {
			return // adopting my own ancestor would close a cycle
		}
	}
	if a.rootSeeking {
		return // my whole tree is dangling; adopting now could cycle
	}
	if a.seeking != nil && a.id > seeker {
		return // among seekers, only the smaller id anchors the larger
	}
	if a.node.HasSource(seeker) {
		return // duplicate request; the reservation already exists
	}
	a.addChild(seeker)
	a.reservations[msg.ReqID] = seeker
	a.r.sim.Send(a.id, seeker, KindAttach, attachMsg{Type: attachGrant, ReqID: msg.ReqID})
}

// onAttachGrant finalizes (or aborts) an adoption at the seeker.
func (a *agent) onAttachGrant(at simnet.Time, granter int, msg attachMsg) {
	s := a.seeking
	if s == nil || msg.ReqID != s.reqID {
		// Stale grant from a timed-out attempt: release the reservation.
		a.r.sim.Send(a.id, granter, KindAttach, attachMsg{Type: attachAbort, ReqID: msg.ReqID})
		return
	}
	// Re-validate against the topology mirror: the covered sets in requests
	// lag by a heartbeat period, so a racing grant could close a cycle. A
	// production protocol would detect this with epoch numbers; the
	// simulator asks the mirror and aborts identically.
	if a.r.topo.InSubtree(granter, a.id) {
		a.r.sim.Send(a.id, granter, KindAttach, attachMsg{Type: attachAbort, ReqID: msg.ReqID})
		a.seekNext(at)
		return
	}
	a.r.topo.SetParent(a.id, granter)
	a.setParent(granter)
	a.seeking = nil
	a.r.sim.Send(a.id, granter, KindAttach, attachMsg{Type: attachConfirm, ReqID: msg.ReqID})
	if a.r.cfg.ResendLastOnAdopt {
		a.resendLast(at)
	}
}

// onSeekTimeout advances the seeker past an unresponsive candidate.
func (a *agent) onSeekTimeout(at simnet.Time, reqID int) {
	s := a.seeking
	if s == nil || reqID != s.reqID {
		return // the attempt already concluded
	}
	a.r.sim.Send(a.id, s.current, KindAttach, attachMsg{Type: attachAbort, ReqID: reqID})
	a.seekNext(at)
}

// ownCovered returns this node's current covered set: itself plus the last
// covered set each child reported.
func (a *agent) ownCovered() []int {
	set := map[int]bool{a.id: true}
	for _, cov := range a.covered {
		for _, p := range cov {
			set[p] = true
		}
	}
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// seekTimeout is how long a seeker waits for a grant: enough for a request
// and its grant to cross the network.
func (r *Runner) seekTimeout() simnet.Time {
	t := 4*r.maxDelay() + 10
	if r.cfg.HbEvery > 0 && r.cfg.HbEvery > t {
		t = r.cfg.HbEvery
	}
	return t
}

func (r *Runner) nextAttachReq() int {
	r.attachReqSeq++
	return r.attachReqSeq
}

// distSuspect handles a heartbeat-timeout suspicion in distributed-repair
// mode: confirm and mirror the crash, then act locally — drop a dead
// child's queue, or start seeking when the parent died.
func (r *Runner) distSuspect(at simnet.Time, reporter, peer int) {
	if !r.sim.Crashed(peer) {
		panic(fmt.Sprintf("monitor: false suspicion of %d by %d (heartbeat timeout too small for the delay window)", peer, reporter))
	}
	if !r.repaired[peer] {
		r.repaired[peer] = true
		r.res.Repairs = append(r.res.Repairs, Repair{At: at, Node: peer})
		r.topo.MarkFailed(peer)
	}
	a := r.agents[reporter]
	if a.suspectedDead[peer] {
		return
	}
	a.suspectedDead[peer] = true
	switch {
	case peer == a.parent:
		a.startSeeking(at)
	case a.node.HasSource(peer):
		r.record(at, a.removeChild(peer), reporter)
	}
}
