package monitor

import (
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

func distCfg(topo *tree.Topology, e *workload.Execution, seed int64) Config {
	return Config{
		Mode: Hierarchical, Topology: topo, Exec: e,
		Seed: seed, Strict: true, KeepMembers: true,
		Spacing: 1000, MinDelay: 1, MaxDelay: 10,
		HbEvery: 100, HbTimeout: 400,
		DistributedRepair: true,
	}
}

func soundAll(t *testing.T, res *Result) {
	t.Helper()
	for _, d := range res.Detections {
		if !interval.OverlapAll(interval.BaseIntervals(d.Det.Agg)) {
			t.Fatalf("false detection at node %d", d.Node)
		}
	}
}

func validTopo(t *testing.T, topo *tree.Topology) {
	t.Helper()
	if err := topo.Validate(); err != nil {
		t.Fatalf("topology invalid after repair: %v", err)
	}
}

// TestDistributedRepairLeafParent: an inner node dies; its leaf children
// negotiate adoption over the network and detection continues.
func TestDistributedRepairLeafParent(t *testing.T) {
	const rounds = 14
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e := workload.Generate(workload.Config{Topology: build(), Rounds: rounds, Seed: 1, PGlobal: 1})
	topo := build()
	r := NewRunner(distCfg(topo, e, 21))
	r.ScheduleFailure(5500, 1) // children 3 and 4 must find new parents
	res := r.Run()
	soundAll(t, res)
	validTopo(t, topo)

	// Attach-protocol traffic happened.
	if res.Net.Sent[KindAttach] == 0 {
		t.Fatal("no attach messages despite a repair")
	}
	// Both orphans were adopted somewhere valid: one surviving tree.
	if roots := topo.Roots(); len(roots) != 1 {
		t.Fatalf("roots = %v, want a single tree", roots)
	}
	// Late rounds (well after suspicion + negotiation) detect 6 survivors.
	late := 0
	for _, d := range res.RootDetections() {
		if d.Time > 9000 && len(d.Det.Agg.Span) == 6 {
			late++
		}
	}
	if late < 4 {
		t.Fatalf("late survivor detections = %d, want ≥ 4", late)
	}
}

// TestDistributedRepairRootFailure: the root dies; its children are all
// seekers. The smallest-id rule anchors the cluster and everyone reattaches
// into one tree (complete communication graph).
func TestDistributedRepairRootFailure(t *testing.T) {
	const rounds = 16
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e := workload.Generate(workload.Config{Topology: build(), Rounds: rounds, Seed: 2, PGlobal: 1})
	topo := build()
	r := NewRunner(distCfg(topo, e, 23))
	r.ScheduleFailure(5500, 0)
	res := r.Run()
	soundAll(t, res)
	validTopo(t, topo)

	roots := topo.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots after root failure = %v, want 1", roots)
	}
	// The new tree spans all 6 survivors and keeps detecting.
	if got := len(topo.Subtree(roots[0])); got != 6 {
		t.Fatalf("surviving tree size = %d, want 6", got)
	}
	late := 0
	for _, d := range res.RootDetections() {
		if d.Time > 10000 && len(d.Det.Agg.Span) == 6 {
			late++
		}
	}
	if late < 4 {
		t.Fatalf("late survivor detections = %d, want ≥ 4", late)
	}
}

// TestDistributedRepairPartition: with tree-only links, a failure splits the
// network; the stranded subtree exhausts its seek rounds, declares itself a
// partition root, and keeps detecting its own span.
func TestDistributedRepairPartition(t *testing.T) {
	const rounds = 16
	build := func() *tree.Topology {
		tp := tree.Chain(4) // 0→1→2→3, links only along the chain
		tp.UseTreeLinksOnly()
		return tp
	}
	e := workload.Generate(workload.Config{Topology: build(), Rounds: rounds, Seed: 3, PGlobal: 1})
	topo := build()
	r := NewRunner(distCfg(topo, e, 29))
	r.ScheduleFailure(5500, 1) // strands {2,3}
	res := r.Run()
	soundAll(t, res)
	validTopo(t, topo)

	roots := topo.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots = %v, want 2 partitions", roots)
	}
	// Both partitions keep detecting their partial predicates late in the
	// run: {0} alone and {2,3} together.
	pairDets := 0
	for _, d := range res.RootDetections() {
		if d.Time > 12000 && len(d.Det.Agg.Span) == 2 {
			pairDets++
		}
	}
	if pairDets < 3 {
		t.Fatalf("stranded-pair detections = %d, want ≥ 3", pairDets)
	}
}

// TestDistributedRepairMatchesOracleCounts: on the same failure scenario,
// the distributed protocol converges to detection behaviour equivalent to
// the oracle's — same steady-state survivor detections.
func TestDistributedRepairMatchesOracleCounts(t *testing.T) {
	const rounds = 18
	build := func() *tree.Topology { return tree.Balanced(3, 2) } // 13 nodes
	e := workload.Generate(workload.Config{Topology: build(), Rounds: rounds, Seed: 4, PGlobal: 1})

	run := func(distributed bool) int {
		topo := build()
		cfg := distCfg(topo, e, 31)
		cfg.DistributedRepair = distributed
		r := NewRunner(cfg)
		r.ScheduleFailure(5500, 2)
		res := r.Run()
		soundAll(t, res)
		validTopo(t, topo)
		late := 0
		for _, d := range res.RootDetections() {
			if d.Time > 10000 && len(d.Det.Agg.Span) == 12 {
				late++
			}
		}
		return late
	}
	oracle, dist := run(false), run(true)
	if oracle == 0 || dist == 0 {
		t.Fatalf("no late detections: oracle=%d dist=%d", oracle, dist)
	}
	if oracle != dist {
		t.Fatalf("steady-state detections differ: oracle=%d dist=%d", oracle, dist)
	}
}

// TestDistributedRepairSequentialFailures drives three failures through the
// protocol one after another.
func TestDistributedRepairSequentialFailures(t *testing.T) {
	const rounds = 24
	build := func() *tree.Topology { return tree.Balanced(2, 3) } // 15 nodes
	e := workload.Generate(workload.Config{Topology: build(), Rounds: rounds, Seed: 5, PGlobal: 1})
	topo := build()
	r := NewRunner(distCfg(topo, e, 37))
	r.ScheduleFailure(5500, 1)
	r.ScheduleFailure(11500, 6)
	r.ScheduleFailure(17500, 2)
	res := r.Run()
	soundAll(t, res)
	validTopo(t, topo)
	if len(res.Failed) != 3 {
		t.Fatalf("Failed = %v", res.Failed)
	}
	if roots := topo.Roots(); len(roots) != 1 {
		t.Fatalf("roots = %v, want 1 (complete graph keeps everyone attached)", roots)
	}
	late := 0
	for _, d := range res.RootDetections() {
		if d.Time > 20000 && len(d.Det.Agg.Span) == 12 {
			late++
		}
	}
	if late < 2 {
		t.Fatalf("12-survivor detections after all failures = %d, want ≥ 2", late)
	}
}

// TestDistributedRepairStarRootFailure is the protocol's hardest symmetric
// case: the hub of a star dies and every survivor becomes a seeker at once.
// The id-ordered anchor rule must converge them into a single tree.
func TestDistributedRepairStarRootFailure(t *testing.T) {
	const n, rounds = 12, 16
	build := func() *tree.Topology { return tree.Star(n) }
	e := workload.Generate(workload.Config{Topology: build(), Rounds: rounds, Seed: 8, PGlobal: 1})
	topo := build()
	r := NewRunner(distCfg(topo, e, 41))
	r.ScheduleFailure(5500, 0)
	res := r.Run()
	soundAll(t, res)
	validTopo(t, topo)

	roots := topo.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %v, want all %d survivors in one tree", roots, n-1)
	}
	if got := len(topo.Subtree(roots[0])); got != n-1 {
		t.Fatalf("tree size = %d, want %d", got, n-1)
	}
	// The survivors' predicate keeps being detected once the storm settles.
	late := 0
	for _, d := range res.RootDetections() {
		if len(d.Det.Agg.Span) == n-1 {
			late++
		}
	}
	if late < 3 {
		t.Fatalf("survivor detections = %d, want ≥ 3", late)
	}
}

func TestDistributedRepairValidation(t *testing.T) {
	e := workload.Generate(workload.Config{Topology: tree.Balanced(2, 1), Rounds: 1, PGlobal: 1})
	for name, f := range map[string]func(){
		"needs-heartbeats": func() {
			NewRunner(Config{Mode: Hierarchical, Topology: tree.Balanced(2, 1), Exec: e, DistributedRepair: true})
		},
		"needs-hier": func() {
			NewRunner(Config{Mode: Centralized, Topology: tree.Balanced(2, 1), Exec: e, HbEvery: 100, DistributedRepair: true})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
