package monitor

import (
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/simnet"
	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// TestBatchingReducesMessagesNotDetections: with the batch window enabled,
// the same workload produces the same detections with fewer messages (and
// the same ordering guarantees — sequence numbers ride inside the batch).
func TestBatchingReducesMessagesNotDetections(t *testing.T) {
	const rounds = 20
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e := workload.Generate(workload.Config{Topology: build(), Rounds: rounds, Seed: 5, PGlobal: 1})

	// Rounds complete every 100 ticks; a 500-tick batch window therefore
	// spans several rounds' reports per link — the duty-cycled-radio
	// scenario where batching pays.
	run := func(window simnet.Time) *Result {
		return NewRunner(Config{
			Mode: Hierarchical, Topology: build(), Exec: e,
			Seed: 17, Strict: true, KeepMembers: true,
			Spacing: 100, MinDelay: 1, MaxDelay: 10,
			BatchWindow: window,
		}).Run()
	}
	plain := run(0)
	batched := run(500)

	if got, want := len(batched.RootDetections()), len(plain.RootDetections()); got != want {
		t.Fatalf("batched detections = %d, plain = %d", got, want)
	}
	if batched.Net.Sent[KindIvl] >= plain.Net.Sent[KindIvl] {
		t.Fatalf("batched messages = %d, plain = %d — batching saved nothing",
			batched.Net.Sent[KindIvl], plain.Net.Sent[KindIvl])
	}
	// Interval payload bytes are identical — only message count drops.
	if batched.Net.Bytes[KindIvl] != plain.Net.Bytes[KindIvl] {
		t.Fatalf("batched bytes = %d, plain = %d", batched.Net.Bytes[KindIvl], plain.Net.Bytes[KindIvl])
	}
	for _, d := range batched.Detections {
		if !interval.OverlapAll(interval.BaseIntervals(d.Det.Agg)) {
			t.Fatal("batching produced a false detection")
		}
	}
}

// TestBatchingUnderFailure: buffered reports survive repair sanely — the
// run completes, detections are sound, and the tree is valid.
func TestBatchingUnderFailure(t *testing.T) {
	const rounds = 14
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e := workload.Generate(workload.Config{Topology: build(), Rounds: rounds, Seed: 6, PGlobal: 1})
	topo := build()
	r := NewRunner(Config{
		Mode: Hierarchical, Topology: topo, Exec: e,
		Seed: 19, Strict: true, KeepMembers: true,
		Spacing: 1000, MinDelay: 1, MaxDelay: 10,
		BatchWindow: 50,
	})
	r.ScheduleFailure(5500, 1)
	res := r.Run()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Detections {
		if !interval.OverlapAll(interval.BaseIntervals(d.Det.Agg)) {
			t.Fatal("false detection")
		}
	}
	late := 0
	for _, d := range res.RootDetections() {
		if d.Time > 9000 && len(d.Det.Agg.Span) == 6 {
			late++
		}
	}
	if late < 4 {
		t.Fatalf("late survivor detections = %d, want ≥ 4", late)
	}
}
