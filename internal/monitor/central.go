package monitor

import (
	"fmt"

	"hierdet/internal/centralized"
	"hierdet/internal/core"
	"hierdet/internal/interval"
	"hierdet/internal/repair"
	"hierdet/internal/simnet"
)

// fwdPayload is one raw interval being routed toward the sink. Each tree-edge
// hop is a separate message — the cost model of paper Eq. 12, where an
// interval generated at level i costs h−i messages.
type fwdPayload struct {
	Iv interval.Interval
}

// centRuntime holds the centralized baseline's state: the sink detector plus
// per-origin resequencers (multi-hop routes over a non-FIFO network reorder
// intervals even from a single origin).
type centRuntime struct {
	sink      *centralized.Sink
	sinkAgent *centAgent
	reseq     map[int]*repair.Resequencer
	removed   map[int]bool
	// undeliverable counts intervals dropped because the network partitioned
	// and no route to the sink remained.
	undeliverable int
}

// centAgent is one process in centralized mode: it originates its own
// intervals and relays others' toward the sink.
type centAgent struct {
	r      *Runner
	id     int
	isSink bool
}

func (r *Runner) buildCentralized() {
	sinkID := r.cfg.SinkID
	if !r.topo.Alive(sinkID) {
		panic(fmt.Sprintf("monitor: sink %d is not alive", sinkID))
	}
	participants := r.topo.AliveNodes()
	sink := centralized.NewSink(sinkID, core.Config{
		N:           r.topo.N(),
		Strict:      r.cfg.Strict,
		KeepMembers: r.cfg.KeepMembers,
	}, participants)
	r.cent = &centRuntime{
		sink:    sink,
		reseq:   make(map[int]*repair.Resequencer),
		removed: make(map[int]bool),
	}
	for _, p := range participants {
		r.cent.reseq[p] = repair.NewResequencer()
	}
	for _, id := range participants {
		a := &centAgent{r: r, id: id, isSink: id == sinkID}
		if a.isSink {
			r.cent.sinkAgent = a
		}
		r.sim.Register(id, a)
	}
}

// OnTimer implements simnet.Handler: a process's local interval completed.
func (a *centAgent) OnTimer(at simnet.Time, kind simnet.Kind, data any) {
	switch kind {
	case "local":
		iv := data.(interval.Interval)
		if a.isSink {
			a.r.cent.deliver(a.r, at, iv)
			return
		}
		a.forward(at, iv)
	default:
		panic(fmt.Sprintf("monitor: centralized agent %d got unknown timer %q", a.id, kind))
	}
}

// OnMessage implements simnet.Handler: relay or, at the sink, deliver.
func (a *centAgent) OnMessage(at simnet.Time, msg simnet.Message) {
	switch msg.Kind {
	case KindFwd:
		iv := msg.Payload.(fwdPayload).Iv
		if a.isSink {
			a.r.cent.deliver(a.r, at, iv)
			return
		}
		a.forward(at, iv)
	default:
		panic(fmt.Sprintf("monitor: centralized agent %d got unknown message kind %q", a.id, msg.Kind))
	}
}

// forward sends the interval one hop along the current tree route to the
// sink. If the network has partitioned away from the sink the interval is
// dropped — the centralized algorithm has no answer to that (the paper's
// point).
func (a *centAgent) forward(at simnet.Time, iv interval.Interval) {
	route := a.r.topo.Route(a.id, a.r.cent.sink.ID())
	if len(route) < 2 {
		a.r.cent.undeliverable++
		return
	}
	a.r.sim.Send(a.id, route[1], KindFwd, fwdPayload{Iv: iv})
}

// deliver resequences per origin and feeds the sink detector in order.
func (c *centRuntime) deliver(r *Runner, at simnet.Time, iv interval.Interval) {
	if c.removed[iv.Origin] {
		return // stale traffic from a process already declared failed
	}
	rs := c.reseq[iv.Origin]
	if rs == nil {
		panic(fmt.Sprintf("monitor: interval from unknown origin %d at sink", iv.Origin))
	}
	for _, ready := range rs.Accept(ivlPayload{Iv: iv, LinkSeq: iv.Seq}) {
		r.record(at, c.sink.OnInterval(ready.Iv.Origin, ready.Iv), c.sink.ID())
	}
}
