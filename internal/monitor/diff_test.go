package monitor

import (
	"testing"

	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// TestDiffTimestampAccounting measures the Singhal–Kshemkalyani differential
// encoding's effect on the paper's O(n)-per-message size: group-round
// workloads, whose reports mostly advance their own subtree's components,
// shrink substantially; the detection outcome is untouched (accounting-only
// ablation).
func TestDiffTimestampAccounting(t *testing.T) {
	const rounds = 30
	build := func() *tree.Topology { return tree.Balanced(2, 3) } // 15 nodes
	e := workload.Generate(workload.Config{
		Topology: build(), Rounds: rounds, Seed: 7, PGlobal: 0.2, PGroup: 0.6,
	})
	run := func(diff bool) *Result {
		return NewRunner(Config{
			Mode: Hierarchical, Topology: build(), Exec: e,
			Seed: 23, Strict: true, FIFO: true,
			DiffTimestamps: diff,
		}).Run()
	}
	full := run(false)
	diff := run(true)

	if len(full.Detections) != len(diff.Detections) {
		t.Fatalf("accounting changed behaviour: %d vs %d detections",
			len(full.Detections), len(diff.Detections))
	}
	if full.Net.Sent[KindIvl] != diff.Net.Sent[KindIvl] {
		t.Fatal("accounting changed message counts")
	}
	fb, db := full.Net.Bytes[KindIvl], diff.Net.Bytes[KindIvl]
	if db >= fb {
		t.Fatalf("differential bytes %d ≥ full bytes %d", db, fb)
	}
	saving := 1 - float64(db)/float64(fb)
	if saving < 0.10 {
		t.Fatalf("saving only %.1f%%, expected at least 10%% on group-heavy traffic", saving*100)
	}
	t.Logf("interval-report bytes: full %d, differential %d (%.1f%% saved)", fb, db, saving*100)
}

func TestDiffTimestampsRequireFIFO(t *testing.T) {
	e := workload.Generate(workload.Config{Topology: tree.Balanced(2, 1), Rounds: 1, PGlobal: 1})
	defer func() {
		if recover() == nil {
			t.Error("DiffTimestamps without FIFO accepted")
		}
	}()
	NewRunner(Config{
		Mode: Hierarchical, Topology: tree.Balanced(2, 1), Exec: e,
		DiffTimestamps: true,
	})
}
