package monitor

import (
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// TestLossyChannelsMissButNeverFalsify documents the reliable-channel
// assumption: with 10% message loss, the hierarchical detector misses
// occurrences (a lost report stalls its link's resequencer for good), but
// every detection it does report is still a genuine Definitely occurrence —
// safety does not depend on the channel assumption, only liveness does.
func TestLossyChannelsMissButNeverFalsify(t *testing.T) {
	const rounds = 30
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e := workload.Generate(workload.Config{Topology: build(), Rounds: rounds, Seed: 3, PGlobal: 1})
	res := NewRunner(Config{
		Mode: Hierarchical, Topology: build(), Exec: e,
		Seed: 9, Strict: true, KeepMembers: true,
		LossProb: 0.1,
	}).Run()

	if res.Net.Lost == 0 {
		t.Fatal("no messages lost at 10% loss")
	}
	got := len(res.RootDetections())
	if got >= rounds {
		t.Fatalf("root detections = %d despite %d lost messages", got, res.Net.Lost)
	}
	// The stall mechanism is visible: resequencers hold reports behind the
	// gaps the lost messages left.
	if res.BufferedReports == 0 {
		t.Fatal("no reports stuck behind loss-induced gaps")
	}
	for _, d := range res.Detections {
		if !interval.OverlapAll(interval.BaseIntervals(d.Det.Agg)) {
			t.Fatal("loss produced a false detection")
		}
	}
}

func TestLossWithHeartbeatsRejected(t *testing.T) {
	e := workload.Generate(workload.Config{Topology: tree.Balanced(2, 1), Rounds: 1, PGlobal: 1})
	defer func() {
		if recover() == nil {
			t.Error("LossProb + heartbeats accepted")
		}
	}()
	NewRunner(Config{
		Mode: Hierarchical, Topology: tree.Balanced(2, 1), Exec: e,
		HbEvery: 100, LossProb: 0.1,
	})
}

// TestSimultaneousAdjacentFailures crashes a parent and its child at the
// same instant — the repair must still converge, with both repair
// strategies.
func TestSimultaneousAdjacentFailures(t *testing.T) {
	const rounds = 16
	for _, distributed := range []bool{false, true} {
		build := func() *tree.Topology { return tree.Balanced(2, 3) } // 15 nodes
		e := workload.Generate(workload.Config{Topology: build(), Rounds: rounds, Seed: 4, PGlobal: 1})
		topo := build()
		cfg := Config{
			Mode: Hierarchical, Topology: topo, Exec: e,
			Seed: 13, Strict: true, KeepMembers: true,
			Spacing: 1000, MinDelay: 1, MaxDelay: 10,
			HbEvery: 100, HbTimeout: 400,
			DistributedRepair: distributed,
		}
		r := NewRunner(cfg)
		r.ScheduleFailure(5500, 1) // parent...
		r.ScheduleFailure(5500, 3) // ...and its child, same instant
		res := r.Run()
		if err := topo.Validate(); err != nil {
			t.Fatalf("distributed=%v: %v", distributed, err)
		}
		for _, d := range res.Detections {
			if !interval.OverlapAll(interval.BaseIntervals(d.Det.Agg)) {
				t.Fatalf("distributed=%v: false detection", distributed)
			}
		}
		// 13 survivors keep being detected after both repairs settle.
		late := 0
		for _, d := range res.RootDetections() {
			if d.Time > 10000 && len(d.Det.Agg.Span) == 13 {
				late++
			}
		}
		if late < 3 {
			t.Fatalf("distributed=%v: late survivor detections = %d, want ≥ 3", distributed, late)
		}
	}
}
