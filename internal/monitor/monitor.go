// Package monitor is the runtime that deploys the detectors onto the
// simulated network: it turns a recorded execution (internal/workload) into
// timed local-interval completions at each process, ships aggregates up the
// spanning tree (hierarchical mode) or raw intervals hop-by-hop to a sink
// (centralized mode, the baseline [12]), detects node failures through
// heartbeats, and repairs the tree so detection of the partial predicate
// continues — the end-to-end system of the paper.
//
// Everything runs on internal/simnet's deterministic event loop: a seed
// fixes the whole run, including message reordering and failure timing.
//
// Two protocol details the paper leaves implicit are made explicit here:
//
//   - Non-FIFO channels versus queue order: Algorithm 1's queues require
//     intervals from one sender to arrive in generation order. Every
//     child→parent link therefore carries a per-link sequence number and the
//     receiver resequences (buffering out-of-order arrivals). A link's
//     counter restarts at zero when the tree is repaired, so adoption needs
//     no handshake.
//   - Failure detection and repair: processes exchange heartbeats with their
//     tree neighbours and suspect a peer after a silence of HbTimeout. The
//     repair itself (who adopts which orphan subtree) is arbitrated by the
//     topology manager with global knowledge — a simulator substitution for
//     the distributed reattachment protocol the paper assumes exists but
//     does not specify (§III-F); the information it uses (liveness plus the
//     neighbour graph) is exactly what that protocol would gather.
package monitor

import (
	"fmt"
	"math/rand"

	"hierdet/internal/core"
	"hierdet/internal/interval"
	"hierdet/internal/repair"
	"hierdet/internal/simnet"
	"hierdet/internal/tree"
	"hierdet/internal/vclock"
	"hierdet/internal/wire"
	"hierdet/internal/workload"
)

// Message kinds on the simulated network.
const (
	// KindIvl is a hierarchical child→parent aggregate report (one hop).
	KindIvl simnet.Kind = "ivl"
	// KindFwd is a centralized raw-interval forward (one hop of a route).
	KindFwd simnet.Kind = "fwd"
	// KindHb is a heartbeat.
	KindHb simnet.Kind = "hb"
)

// Mode selects the algorithm under test.
type Mode int

const (
	// Hierarchical runs Algorithm 1 (this paper).
	Hierarchical Mode = iota
	// Centralized runs the repeated-detection baseline [12]: one sink, all
	// intervals routed to it over the tree.
	Centralized
)

// Config parameterizes a run.
type Config struct {
	Mode     Mode
	Topology *tree.Topology
	Exec     *workload.Execution

	// Seed drives message delays and local-completion jitter.
	Seed int64
	// MinDelay/MaxDelay bound per-hop message delay (simnet defaults apply
	// when both are zero).
	MinDelay, MaxDelay simnet.Time
	// FIFO forces per-link in-order delivery (ablation; default non-FIFO).
	FIFO bool
	// LossProb drops messages with the given probability — a deliberate
	// violation of the model's reliable channels, to demonstrate the
	// consequence: a lost report permanently stalls its link's resequencer,
	// so detections are missed (never falsified). Incompatible with
	// heartbeats (lost beats would look like crashes).
	LossProb float64

	// Spacing is the virtual time between successive rounds' interval
	// completions (default 1000 ticks). It must exceed MaxDelay for the
	// detection pipeline to drain between rounds under failures.
	Spacing simnet.Time

	// BatchWindow, when positive, buffers a node's reports to its parent
	// and flushes them as one message after the window elapses — an
	// optimization beyond the paper that trades up to one window of
	// detection latency for per-message overhead (hierarchical mode only).
	BatchWindow simnet.Time

	// DiffTimestamps accounts interval-report bytes as if the vector
	// timestamps were encoded differentially per link (the Singhal–
	// Kshemkalyani technique, wire.DiffEncoder): only components changed
	// since the link's previous report are charged. Requires FIFO links —
	// the differential stream is order-sensitive. Accounting-only ablation;
	// the detection logic is unchanged.
	DiffTimestamps bool

	// HbEvery enables heartbeats at the given period; HbTimeout is the
	// silence after which a neighbour is suspected. Zero disables heartbeats
	// (failures are then repaired immediately at crash time).
	HbEvery, HbTimeout simnet.Time

	// DistributedRepair replaces the topology oracle with the message-driven
	// reattachment protocol of attach.go: orphan subtree roots negotiate
	// adoption with live neighbours over the network (requires heartbeats;
	// hierarchical mode only). The topology object then merely mirrors the
	// protocol's decisions.
	DistributedRepair bool

	// SinkID is the sink process for Centralized mode (default: the tree
	// root).
	SinkID int

	// OnDetection, if non-nil, is invoked synchronously (on the simulation
	// goroutine) for every detection at every level as it happens — the
	// subscription hook a continuous monitoring application uses instead of
	// post-hoc Result inspection.
	OnDetection func(Detection)

	// Strict enables succession checking inside the detectors (tests).
	Strict bool
	// KeepMembers retains solution sets on aggregates for verification.
	KeepMembers bool
	// ResendLastOnAdopt makes a child whose parent died resend its most
	// recent aggregate to its new parent (the paper's Figure 2(c) behaviour,
	// where P2 reports the already-generated ⊓{x1,x3} to P4). It recovers
	// reports lost in flight to the dead parent at the cost of occasionally
	// re-detecting, at the new parent, an occurrence the dead parent had
	// already consumed. Off by default.
	ResendLastOnAdopt bool
}

// Repair records the start of one failure's tree repair.
type Repair struct {
	At   simnet.Time
	Node int
}

// Detection is one predicate satisfaction observed during the run.
type Detection struct {
	Time simnet.Time
	Node int
	// AtRoot reports whether Node was a tree root at detection time — a
	// root detection covers the whole (remaining) network.
	AtRoot bool
	Det    core.Detection
}

// Result aggregates everything a run produced.
type Result struct {
	// Detections holds every detection at every level, in virtual-time order.
	Detections []Detection
	// Net is the traffic statistics (message complexity).
	Net simnet.Stats
	// NodeStats maps process id → detector work counters.
	NodeStats map[int]core.Stats
	// AggSentByDepth counts hierarchical aggregate sends by the sender's
	// depth at send time (for measuring the per-level aggregation ratio α).
	AggSentByDepth map[int]int
	// ResidentHighWater sums each node's queue high-water mark — the
	// measured space complexity, per node and total.
	ResidentHighWater map[int]int
	// Failed lists processes crashed during the run, in order.
	Failed []int
	// Repairs records when each failure's tree repair began (for heartbeat
	// mode, that is when the first neighbour's suspicion confirmed) — the
	// failure-detection latency is Repairs[i].At − the crash time.
	Repairs []Repair
	// EndTime is the virtual time when the run went idle.
	EndTime simnet.Time
	// Spacing echoes the configured round spacing, for latency analysis.
	Spacing simnet.Time
	// StaleReports counts reports that arrived at a node which no longer
	// (or never) had the sender as a child — in-flight traffic across
	// repairs. Zero in failure-free runs.
	StaleReports int
	// BufferedReports counts reports still held by resequencers at the end
	// of the run — nonzero only when a gap never filled (message loss or a
	// sender's death mid-stream).
	BufferedReports int
	// WireBytesV1 and WireBytesV2 total the run's traffic under the two wire
	// framings: fixed-width v1 frames, and v2 delta-varint frames with
	// per-link basis chaining (each report's Lo charged against the previous
	// report's Hi on the same link, as the TCP transport encodes them).
	// Heartbeats and attach frames cost the same in both. These are parallel
	// accountings of the same message sequence — Net.Bytes remains the
	// simulator's configured charging (v1, or the differential encoding when
	// DiffTimestamps is set).
	WireBytesV1, WireBytesV2 int
}

// RootLatencies returns, for each root detection whose solution set was
// retained (KeepMembers), the delay between the detected round's completion
// (its base intervals' round index times the round spacing) and the
// detection time. It measures the pipeline depth of the hierarchy.
func (r *Result) RootLatencies() []simnet.Time {
	var out []simnet.Time
	for _, d := range r.RootDetections() {
		round := -1
		for _, b := range interval.BaseIntervals(d.Det.Agg) {
			if b.Agg {
				round = -1
				break
			}
			if b.Seq > round {
				round = b.Seq
			}
		}
		if round < 0 {
			continue
		}
		if lat := d.Time - simnet.Time(round+1)*r.Spacing; lat >= 0 {
			out = append(out, lat)
		}
	}
	return out
}

// RootDetections filters detections observed at a tree root.
func (r *Result) RootDetections() []Detection {
	var out []Detection
	for _, d := range r.Detections {
		if d.AtRoot {
			out = append(out, d)
		}
	}
	return out
}

// DetectionsAt filters detections observed at one node.
func (r *Result) DetectionsAt(node int) []Detection {
	var out []Detection
	for _, d := range r.Detections {
		if d.Node == node {
			out = append(out, d)
		}
	}
	return out
}

// Runner owns one configured run. Build with NewRunner, optionally schedule
// failures, then call Run once.
type Runner struct {
	cfg          Config
	sim          *simnet.Sim
	topo         *tree.Topology
	rng          *rand.Rand
	agents       map[int]*agent
	cent         *centRuntime
	res          Result
	repaired     map[int]bool
	ran          bool
	horizon      simnet.Time
	attachReqSeq int
}

// managerID is the reserved simnet id for the runner's control timers.
const managerID = -1

// NewRunner builds a runner. The topology is mutated during the run (failure
// repair); pass a fresh one per run.
func NewRunner(cfg Config) *Runner {
	if cfg.Topology == nil || cfg.Exec == nil {
		panic("monitor: Topology and Exec are required")
	}
	if cfg.Exec.N != cfg.Topology.N() {
		panic(fmt.Sprintf("monitor: execution over %d processes, topology over %d", cfg.Exec.N, cfg.Topology.N()))
	}
	if cfg.Spacing == 0 {
		cfg.Spacing = 1000
	}
	if cfg.HbEvery != 0 && cfg.HbTimeout == 0 {
		cfg.HbTimeout = 3 * cfg.HbEvery
	}
	if cfg.DistributedRepair {
		if cfg.Mode != Hierarchical {
			panic("monitor: DistributedRepair requires hierarchical mode")
		}
		if cfg.HbEvery == 0 {
			panic("monitor: DistributedRepair requires heartbeats (set HbEvery)")
		}
	}
	if cfg.LossProb > 0 && cfg.HbEvery > 0 {
		panic("monitor: LossProb cannot be combined with heartbeats (lost beats read as crashes)")
	}
	if cfg.DiffTimestamps && !cfg.FIFO {
		panic("monitor: DiffTimestamps requires FIFO links (the differential stream is order-sensitive)")
	}
	if cfg.DiffTimestamps && cfg.LossProb > 0 {
		panic("monitor: DiffTimestamps requires lossless links")
	}
	topo := cfg.Topology
	r := &Runner{
		cfg:      cfg,
		topo:     topo,
		rng:      rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		agents:   make(map[int]*agent),
		repaired: make(map[int]bool),
	}
	r.sim = simnet.New(simnet.Config{
		Seed:     cfg.Seed,
		MinDelay: cfg.MinDelay,
		MaxDelay: cfg.MaxDelay,
		FIFO:     cfg.FIFO,
		LossProb: cfg.LossProb,
		// Account wire bytes with the real encoding sizes: interval reports
		// carry two O(n) vector-timestamp cuts plus the span (the paper's
		// "each message has size O(n)"); heartbeats are constant-size. With
		// DiffTimestamps the two cuts are charged at their differential
		// encoding size per link instead.
		PayloadBytes: r.payloadBytes(),
	})
	r.sim.Register(managerID, managerHandler{r})
	r.res.NodeStats = make(map[int]core.Stats)
	r.res.AggSentByDepth = make(map[int]int)
	r.res.ResidentHighWater = make(map[int]int)

	rounds := 0
	for _, s := range cfg.Exec.Streams {
		if len(s) > rounds {
			rounds = len(s)
		}
	}
	r.horizon = simnet.Time(rounds+5)*cfg.Spacing + 200*r.maxDelay()

	switch cfg.Mode {
	case Hierarchical:
		r.buildHierarchical()
	case Centralized:
		r.buildCentralized()
	default:
		panic(fmt.Sprintf("monitor: unknown mode %d", cfg.Mode))
	}
	r.scheduleLocalIntervals()
	return r
}

func (r *Runner) maxDelay() simnet.Time {
	if r.cfg.MaxDelay == 0 {
		return 10 // simnet default
	}
	return r.cfg.MaxDelay
}

// ScheduleFailure crashes node at virtual time at. Call before Run.
func (r *Runner) ScheduleFailure(at simnet.Time, node int) {
	if r.ran {
		panic("monitor: ScheduleFailure after Run")
	}
	r.sim.After(managerID, at, "crash", node)
}

// Run executes the whole schedule and returns the result. It can be called
// once.
func (r *Runner) Run() *Result {
	if r.ran {
		panic("monitor: Run called twice")
	}
	r.ran = true
	r.sim.RunUntilIdle()
	r.res.Net = r.sim.Stats()
	r.res.EndTime = r.sim.Now()
	r.res.Spacing = r.cfg.Spacing
	for id, a := range r.agents {
		r.res.NodeStats[id] = a.node.Stats()
		_, hw := a.node.QueueSizes()
		r.res.ResidentHighWater[id] = hw
		r.res.StaleReports += a.staleIvls
		for _, rs := range a.reseq {
			r.res.BufferedReports += rs.Buffered()
		}
	}
	if r.cent != nil {
		for _, rs := range r.cent.reseq {
			r.res.BufferedReports += rs.Buffered()
		}
		r.res.NodeStats[r.cent.sink.ID()] = r.cent.sink.Stats()
		_, hw := r.cent.sink.QueueSizes()
		r.res.ResidentHighWater[r.cent.sink.ID()] = hw
	}
	return &r.res
}

// payloadBytes builds the byte-accounting function for the simulated
// network: real wire-format sizes, optionally with differential
// vector-timestamp encoding per link (Config.DiffTimestamps).
func (r *Runner) payloadBytes() func(from, to int, kind simnet.Kind, payload any) int {
	n := r.topo.N()
	type linkClocks struct{ lo, hi vclock.VC }
	diffState := make(map[[2]int]*linkClocks)
	v2Basis := make(map[[2]int]vclock.VC) // per-link previous Hi, as the TCP transport chains

	// reportBytes charges one report at its configured framing size and, on
	// the side, accumulates the parallel v1/v2 accountings (Result
	// .WireBytesV1/V2) for the byte-volume experiments.
	reportBytes := func(from, to int, rep wire.Report) int {
		iv := rep.Iv
		v1 := wire.ReportSize(n, len(iv.Span))
		key := [2]int{from, to}
		r.res.WireBytesV1 += v1
		r.res.WireBytesV2 += wire.ReportSizeV2(rep, v2Basis[key])
		v2Basis[key] = append(v2Basis[key][:0], iv.Hi...)
		if !r.cfg.DiffTimestamps {
			return v1
		}
		st := diffState[key]
		if st == nil {
			st = &linkClocks{}
			diffState[key] = st
		}
		nonClock := v1 - 2*vclock.WireSize(n)
		size := nonClock +
			wire.DiffSize(wire.ChangedComponents(st.lo, iv.Lo)) +
			wire.DiffSize(wire.ChangedComponents(st.hi, iv.Hi))
		st.lo, st.hi = iv.Lo.Clone(), iv.Hi.Clone()
		return size
	}

	constBytes := func(size int) int {
		// Heartbeats and attach frames cost the same under both framings.
		r.res.WireBytesV1 += size
		r.res.WireBytesV2 += size
		return size
	}

	return func(from, to int, kind simnet.Kind, payload any) int {
		switch kind {
		case KindIvl:
			size := 0
			for _, pl := range payload.(ivlBatch) {
				size += reportBytes(from, to, wire.Report{Iv: pl.Iv, LinkSeq: pl.LinkSeq, Epoch: pl.Epoch})
			}
			return size
		case KindFwd:
			return reportBytes(from, to, wire.Report{Iv: payload.(fwdPayload).Iv})
		case KindHb:
			if pl, ok := payload.(hbPayload); ok {
				return constBytes(wire.HeartbeatWireSize(len(pl.Covered)))
			}
			return constBytes(wire.HeartbeatSize)
		case KindAttach:
			return constBytes(wire.AttachWireSize(len(payload.(repair.Msg).Covered)))
		default:
			return 0
		}
	}
}

// managerHandler funnels control timers (failure injection) to the runner.
type managerHandler struct{ r *Runner }

func (m managerHandler) OnMessage(at simnet.Time, msg simnet.Message) {
	panic("monitor: manager received a network message")
}

func (m managerHandler) OnTimer(at simnet.Time, kind simnet.Kind, data any) {
	switch kind {
	case "crash":
		m.r.crash(at, data.(int))
	default:
		panic(fmt.Sprintf("monitor: unknown manager timer %q", kind))
	}
}

// crash injects a crash-stop failure. With heartbeats enabled the neighbours
// discover it and trigger repair; otherwise repair is immediate.
func (r *Runner) crash(at simnet.Time, node int) {
	if r.sim.Crashed(node) {
		return
	}
	r.sim.Crash(node)
	r.res.Failed = append(r.res.Failed, node)
	if r.cfg.HbEvery == 0 {
		r.repair(at, node)
	}
}

// suspect is called by an agent whose neighbour went silent past HbTimeout.
func (r *Runner) suspect(at simnet.Time, reporter, peer int) {
	if r.cfg.DistributedRepair {
		r.distSuspect(at, reporter, peer)
		return
	}
	if !r.sim.Crashed(peer) {
		panic(fmt.Sprintf("monitor: false suspicion of %d by %d (heartbeat timeout too small for the delay window)", peer, reporter))
	}
	r.repair(at, peer)
}

// repair applies the topology surgery for a confirmed failure and replays it
// onto the detector agents.
func (r *Runner) repair(at simnet.Time, failed int) {
	if r.repaired[failed] {
		return
	}
	r.repaired[failed] = true
	r.res.Repairs = append(r.res.Repairs, Repair{At: at, Node: failed})

	if r.cfg.Mode == Centralized {
		if failed == r.cent.sink.ID() {
			// The sink died: the centralized algorithm is over — the paper's
			// single point of failure. Nothing to repair toward.
			return
		}
		r.topo.Fail(failed)
		r.cent.removed[failed] = true
		r.record(at, r.cent.sink.RemoveProcess(failed), r.cent.sinkAgent.id)
		return
	}

	cs := r.topo.Fail(failed)
	if p := cs.ParentOfFailed; p != tree.None && !r.sim.Crashed(p) {
		if a := r.agents[p]; a != nil {
			r.record(at, a.removeChild(failed), p)
		}
	}
	for _, rp := range cs.Reparented {
		if rp.OldParent != tree.None && rp.OldParent != failed && !r.sim.Crashed(rp.OldParent) {
			r.record(at, r.agents[rp.OldParent].removeChild(rp.Node), rp.OldParent)
		}
		child := r.agents[rp.Node]
		parentDied := rp.OldParent == failed
		child.setParent(rp.NewParent)
		if rp.NewParent != tree.None {
			r.agents[rp.NewParent].addChild(rp.Node)
			if r.cfg.ResendLastOnAdopt && parentDied {
				child.resendLast(at)
			}
		}
	}
}

// record logs detections made by node and forwards their aggregates upward.
func (r *Runner) record(at simnet.Time, dets []core.Detection, node int) {
	a := r.agents[node]
	for _, det := range dets {
		atRoot := a == nil || a.parent == tree.None
		d := Detection{Time: at, Node: node, AtRoot: atRoot, Det: det}
		r.res.Detections = append(r.res.Detections, d)
		if r.cfg.OnDetection != nil {
			r.cfg.OnDetection(d)
		}
		if a != nil && a.parent != tree.None {
			a.sendAggregate(at, det.Agg)
		}
	}
}
