package monitor

import (
	"sort"
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// genExec builds a workload over a fresh topology identical in shape to the
// one the runner will mutate.
func genExec(t *testing.T, build func() *tree.Topology, rounds int, seed int64, pGlobal, pGroup float64) (*workload.Execution, *tree.Topology) {
	t.Helper()
	shape := build()
	e := workload.Generate(workload.Config{
		Topology: shape, Rounds: rounds, Seed: seed, PGlobal: pGlobal, PGroup: pGroup,
	})
	return e, build()
}

func sortedSpan(t *tree.Topology, node int) []int {
	s := t.Subtree(node)
	sort.Ints(s)
	return s
}

func TestHierarchicalDetectsAllGlobalPulses(t *testing.T) {
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e, topo := genExec(t, build, 20, 1, 1, 0)
	res := NewRunner(Config{
		Mode: Hierarchical, Topology: topo, Exec: e,
		Seed: 7, Strict: true, KeepMembers: true,
	}).Run()
	roots := res.RootDetections()
	if len(roots) != 20 {
		t.Fatalf("root detections = %d, want 20", len(roots))
	}
	for i, d := range roots {
		if got := d.Det.Agg.Span; len(got) != 7 {
			t.Fatalf("detection %d span = %v, want all 7", i, got)
		}
		bases := interval.BaseIntervals(d.Det.Agg)
		if len(bases) != 7 || !interval.OverlapAll(bases) {
			t.Fatalf("detection %d is not a genuine Definitely occurrence", i)
		}
	}
}

func TestEveryLevelMatchesGroundTruth(t *testing.T) {
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e, topo := genExec(t, build, 40, 2, 0.3, 0.4)
	shape := build() // immutable reference for spans
	res := NewRunner(Config{
		Mode: Hierarchical, Topology: topo, Exec: e,
		Seed: 11, Strict: true, KeepMembers: true,
	}).Run()
	for node := 0; node < shape.N(); node++ {
		span := sortedSpan(shape, node)
		want := e.ExpectedDetections(span)
		got := len(res.DetectionsAt(node))
		if got != want {
			t.Errorf("node %d (span %v): detections = %d, want %d", node, span, got, want)
		}
	}
	// Soundness of every detection at every level.
	for _, d := range res.Detections {
		bases := interval.BaseIntervals(d.Det.Agg)
		if !interval.OverlapAll(bases) {
			t.Fatalf("node %d reported a false detection", d.Node)
		}
	}
}

func TestCentralizedMatchesHierarchicalRootCounts(t *testing.T) {
	build := func() *tree.Topology { return tree.Balanced(3, 2) } // 13 nodes
	e, topoH := genExec(t, build, 30, 3, 0.4, 0.3)
	topoC := build()
	hier := NewRunner(Config{
		Mode: Hierarchical, Topology: topoH, Exec: e,
		Seed: 5, Strict: true, KeepMembers: true,
	}).Run()
	cent := NewRunner(Config{
		Mode: Centralized, Topology: topoC, Exec: e,
		Seed: 5, Strict: true, KeepMembers: true,
	}).Run()
	wantGlobals := e.ExpectedDetections(sortedSpan(build(), 0))
	if got := len(hier.RootDetections()); got != wantGlobals {
		t.Errorf("hierarchical root detections = %d, want %d", got, wantGlobals)
	}
	if got := len(cent.RootDetections()); got != wantGlobals {
		t.Errorf("centralized detections = %d, want %d", got, wantGlobals)
	}
}

func TestResequencingUnderHeavyReordering(t *testing.T) {
	// Delays several times the round spacing force massive cross-round
	// reordering on every link; per-link resequencing plus Strict mode
	// verifies order is fully restored.
	build := func() *tree.Topology { return tree.Balanced(2, 3) } // 15 nodes
	e, topo := genExec(t, build, 15, 4, 1, 0)
	res := NewRunner(Config{
		Mode: Hierarchical, Topology: topo, Exec: e,
		Seed: 13, Strict: true, KeepMembers: true,
		Spacing: 100, MinDelay: 1, MaxDelay: 350,
	}).Run()
	if got := len(res.RootDetections()); got != 15 {
		t.Fatalf("root detections = %d, want 15", got)
	}
}

func TestDeterministicRuns(t *testing.T) {
	// Determinism must hold with every subsystem active: heartbeats,
	// failures, distributed repair — any map-order dependence in message
	// sending perturbs the seeded delay stream and shows up here.
	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"plain", func(c *Config) {}},
		{"heartbeats", func(c *Config) { c.HbEvery, c.HbTimeout = 100, 400 }},
		{"distrepair", func(c *Config) {
			c.HbEvery, c.HbTimeout = 100, 400
			c.DistributedRepair = true
		}},
	}
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			run := func() *Result {
				e, topo := genExec(t, build, 25, 6, 0.5, 0.2)
				cfg := Config{
					Mode: Hierarchical, Topology: topo, Exec: e,
					Seed: 21, Strict: true,
					Spacing: 1000, MinDelay: 1, MaxDelay: 10,
				}
				v.mut(&cfg)
				r := NewRunner(cfg)
				if v.name != "plain" {
					r.ScheduleFailure(7500, 1)
				}
				return r.Run()
			}
			a, b := run(), run()
			if len(a.Detections) != len(b.Detections) {
				t.Fatalf("detection counts differ: %d vs %d", len(a.Detections), len(b.Detections))
			}
			for i := range a.Detections {
				if a.Detections[i].Time != b.Detections[i].Time || a.Detections[i].Node != b.Detections[i].Node {
					t.Fatal("detection schedules differ across identical runs")
				}
			}
			if a.Net.TotalSent != b.Net.TotalSent {
				t.Fatalf("message counts differ: %d vs %d", a.Net.TotalSent, b.Net.TotalSent)
			}
			if a.EndTime != b.EndTime {
				t.Fatal("end times differ")
			}
		})
	}
}

func TestExactMessageCounts(t *testing.T) {
	// Global pulses only, no failures: every node detects every round, so
	// hierarchical traffic is exactly (n−1)·rounds one-hop reports, while
	// centralized traffic is rounds·Σ_p depth(p) — the Eq. 11 vs Eq. 12
	// comparison, measured.
	const rounds = 12
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e, topoH := genExec(t, build, rounds, 8, 1, 0)
	topoC := build()
	hier := NewRunner(Config{Mode: Hierarchical, Topology: topoH, Exec: e, Seed: 3, Strict: true}).Run()
	cent := NewRunner(Config{Mode: Centralized, Topology: topoC, Exec: e, Seed: 3, Strict: true}).Run()

	if got, want := hier.Net.Sent[KindIvl], 6*rounds; got != want {
		t.Errorf("hierarchical messages = %d, want %d", got, want)
	}
	shape := build()
	sumDepth := 0
	for i := 0; i < shape.N(); i++ {
		sumDepth += shape.Depth(i)
	}
	if got, want := cent.Net.Sent[KindFwd], sumDepth*rounds; got != want {
		t.Errorf("centralized messages = %d, want %d", got, want)
	}
	// The headline claim: strictly fewer messages hierarchically.
	if hier.Net.Sent[KindIvl] >= cent.Net.Sent[KindFwd] {
		t.Error("hierarchical should use fewer messages than centralized")
	}
	// α accounting: leaves are depth 2 (4 nodes), inner depth 1 (2 nodes).
	if hier.AggSentByDepth[2] != 4*rounds || hier.AggSentByDepth[1] != 2*rounds {
		t.Errorf("AggSentByDepth = %v", hier.AggSentByDepth)
	}
}

func TestLeafFailureImmediateRepair(t *testing.T) {
	// Fail leaf 6 between rounds 5 and 6 (spacing 1000, delays ≤ 10, so all
	// earlier traffic has drained). Root detections: full span for rounds
	// 0–5, survivor span afterwards.
	const rounds = 12
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e, topo := genExec(t, build, rounds, 9, 1, 0)
	r := NewRunner(Config{
		Mode: Hierarchical, Topology: topo, Exec: e,
		Seed: 17, Strict: true, KeepMembers: true,
		Spacing: 1000, MinDelay: 1, MaxDelay: 10,
	})
	r.ScheduleFailure(6500, 6)
	res := r.Run()
	roots := res.RootDetections()
	if len(roots) != rounds {
		t.Fatalf("root detections = %d, want %d", len(roots), rounds)
	}
	for i, d := range roots {
		want := 7
		if i >= 6 {
			want = 6 // leaf 6 gone
		}
		if got := len(d.Det.Agg.Span); got != want {
			t.Fatalf("detection %d span size = %d, want %d (span %v)", i, got, want, d.Det.Agg.Span)
		}
	}
	if len(res.Failed) != 1 || res.Failed[0] != 6 {
		t.Fatalf("Failed = %v", res.Failed)
	}
}

func TestInternalFailureReattachesSubtrees(t *testing.T) {
	// Fail inner node 1 of a 7-node binary tree: leaves 3 and 4 must be
	// adopted (complete graph → by the root) and detection continues with
	// 6 survivors.
	const rounds = 10
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e, topo := genExec(t, build, rounds, 10, 1, 0)
	r := NewRunner(Config{
		Mode: Hierarchical, Topology: topo, Exec: e,
		Seed: 19, Strict: true, KeepMembers: true,
		Spacing: 1000, MinDelay: 1, MaxDelay: 10,
	})
	r.ScheduleFailure(4500, 1)
	res := r.Run()
	// Full-span detections for the rounds before the failure, survivor-span
	// detections after. The repair window may add one legitimate
	// partial-span detection: between dropping the dead child's queue and
	// adopting its orphans, the root's subtree is transiently smaller, and
	// the predicate genuinely held for that span — the paper's
	// partial-predicate capability.
	full, survivor, partial := 0, 0, 0
	for _, d := range res.RootDetections() {
		switch len(d.Det.Agg.Span) {
		case 7:
			full++
		case 6:
			survivor++
		default:
			partial++
		}
		if !interval.OverlapAll(interval.BaseIntervals(d.Det.Agg)) {
			t.Fatal("false detection")
		}
	}
	if full < 3 || survivor != rounds-4 || partial > 2 {
		t.Fatalf("full=%d survivor=%d partial=%d (rounds=%d)", full, survivor, partial, rounds)
	}
	// The repaired tree must have the orphans under the root.
	if topo.Parent(3) != 0 || topo.Parent(4) != 0 {
		t.Fatalf("orphans not adopted by root: parents %d, %d", topo.Parent(3), topo.Parent(4))
	}
}

func TestRootFailurePromotesNewRoot(t *testing.T) {
	const rounds = 10
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e, topo := genExec(t, build, rounds, 11, 1, 0)
	r := NewRunner(Config{
		Mode: Hierarchical, Topology: topo, Exec: e,
		Seed: 23, Strict: true, KeepMembers: true,
		Spacing: 1000, MinDelay: 1, MaxDelay: 10,
	})
	r.ScheduleFailure(4500, 0)
	res := r.Run()
	// After the root dies, detections of the 6 survivors appear at the new
	// root for rounds 4+.
	survivors := 0
	for _, d := range res.RootDetections() {
		if len(d.Det.Agg.Span) == 6 {
			survivors++
		}
	}
	if survivors != rounds-4 {
		t.Fatalf("survivor-span root detections = %d, want %d", survivors, rounds-4)
	}
	if roots := topo.Roots(); len(roots) != 1 || roots[0] == 0 {
		t.Fatalf("roots after repair = %v", roots)
	}
}

func TestHeartbeatDrivenFailureDetection(t *testing.T) {
	const rounds = 12
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e, topo := genExec(t, build, rounds, 12, 1, 0)
	r := NewRunner(Config{
		Mode: Hierarchical, Topology: topo, Exec: e,
		Seed: 29, Strict: true, KeepMembers: true,
		Spacing: 1000, MinDelay: 1, MaxDelay: 10,
		HbEvery: 100, HbTimeout: 400,
	})
	r.ScheduleFailure(5500, 2)
	res := r.Run()
	if res.Net.Sent[KindHb] == 0 {
		t.Fatal("no heartbeats sent")
	}
	// Node 2 (inner, children 5 and 6) dies at 5500; suspicion lands by
	// ~5900; rounds from 7 on (completing ≥ 8000) must be detected with the
	// 6 survivors.
	late := 0
	for _, d := range res.RootDetections() {
		if len(d.Det.Agg.Span) == 6 {
			late++
		}
	}
	if late < rounds-7 {
		t.Fatalf("survivor detections = %d, want ≥ %d", late, rounds-7)
	}
}

func TestCentralizedSinkFailureIsFatal(t *testing.T) {
	// The paper's single-point-of-failure claim, measured: kill the sink
	// mid-run; the centralized algorithm reports nothing afterwards, while
	// the hierarchical one (same workload, same failure) keeps detecting the
	// survivors' predicate.
	const rounds = 12
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e, topoC := genExec(t, build, rounds, 13, 1, 0)
	topoH := build()

	cent := NewRunner(Config{
		Mode: Centralized, Topology: topoC, Exec: e,
		Seed: 31, Strict: true,
		Spacing: 1000, MinDelay: 1, MaxDelay: 10,
	})
	cent.ScheduleFailure(5500, 0) // sink = root = 0
	centRes := cent.Run()
	for _, d := range centRes.Detections {
		if d.Time > 5500 {
			t.Fatalf("centralized detection at %d after sink death", d.Time)
		}
	}

	hier := NewRunner(Config{
		Mode: Hierarchical, Topology: topoH, Exec: e,
		Seed: 31, Strict: true,
		Spacing: 1000, MinDelay: 1, MaxDelay: 10,
	})
	hier.ScheduleFailure(5500, 0)
	hierRes := hier.Run()
	after := 0
	for _, d := range hierRes.RootDetections() {
		if d.Time > 5500 {
			after++
		}
	}
	if after == 0 {
		t.Fatal("hierarchical made no detections after the root failure")
	}
}

func TestResendLastOnAdoptRecoversInFlightReport(t *testing.T) {
	// With resend enabled, a child whose parent died re-reports its latest
	// aggregate, so a solution generated just before the failure is not
	// lost (paper Figure 2(c)).
	const rounds = 8
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e, topo := genExec(t, build, rounds, 14, 1, 0)
	r := NewRunner(Config{
		Mode: Hierarchical, Topology: topo, Exec: e,
		Seed: 37, Strict: true, KeepMembers: true,
		Spacing: 1000, MinDelay: 1, MaxDelay: 10,
		ResendLastOnAdopt: true,
	})
	r.ScheduleFailure(4500, 1)
	res := r.Run()
	if got := len(res.RootDetections()); got < rounds {
		t.Fatalf("root detections = %d, want ≥ %d", got, rounds)
	}
	// Soundness still holds for every (possibly duplicate) detection.
	for _, d := range res.Detections {
		if !interval.OverlapAll(interval.BaseIntervals(d.Det.Agg)) {
			t.Fatal("resend produced a false detection")
		}
	}
}

func TestRunnerValidation(t *testing.T) {
	tp := tree.Balanced(2, 1)
	e := workload.Generate(workload.Config{Topology: tree.Balanced(2, 1), Rounds: 1, PGlobal: 1})
	bad := workload.Generate(workload.Config{Topology: tree.Balanced(2, 2), Rounds: 1, PGlobal: 1})
	for name, f := range map[string]func(){
		"nil":      func() { NewRunner(Config{}) },
		"mismatch": func() { NewRunner(Config{Topology: tp, Exec: bad}) },
		"twice": func() {
			r := NewRunner(Config{Topology: tree.Balanced(2, 1), Exec: e})
			r.Run()
			r.Run()
		},
		"late-failure": func() {
			r := NewRunner(Config{Topology: tree.Balanced(2, 1), Exec: e})
			r.Run()
			r.ScheduleFailure(1, 0)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
