package monitor

import (
	"testing"

	"hierdet/internal/tree"
	"hierdet/internal/wire"
	"hierdet/internal/workload"
)

// TestPartitionedTreesKeepDetecting: with a sparse communication graph, a
// failure can split the network. Each partition must keep running as an
// independent detection tree, reporting the partial predicate over its own
// members — the strongest form of the paper's fault-tolerance claim.
func TestPartitionedTreesKeepDetecting(t *testing.T) {
	// Chain 0→1→2→3→4 with tree-only links: failing node 2 splits the
	// network into {0,1} and {3,4}.
	build := func() *tree.Topology {
		tp := tree.Chain(5)
		tp.UseTreeLinksOnly()
		return tp
	}
	shape := build()
	e := workload.Generate(workload.Config{Topology: shape, Rounds: 10, Seed: 1, PGlobal: 1})
	topo := build()
	r := NewRunner(Config{
		Mode: Hierarchical, Topology: topo, Exec: e,
		Seed: 3, Strict: true, KeepMembers: true,
		Spacing: 1000, MinDelay: 1, MaxDelay: 10,
	})
	r.ScheduleFailure(4500, 2)
	res := r.Run()

	if roots := topo.Roots(); len(roots) != 2 {
		t.Fatalf("roots after partition = %v, want 2", roots)
	}
	// Rounds 4..9 complete after the split; each partition's root must
	// detect its own span for each of them.
	spanCount := map[int]int{}
	for _, d := range res.RootDetections() {
		if d.Time > 4600 {
			spanCount[len(d.Det.Agg.Span)]++
		}
	}
	if spanCount[2] < 12 { // two partitions × ≥6 rounds each
		t.Fatalf("2-process partition detections = %d, want ≥ 12 (both partitions × rounds 4..9); all: %v",
			spanCount[2], spanCount)
	}
}

// TestDoubleFailure exercises two sequential failures with heartbeats.
func TestDoubleFailure(t *testing.T) {
	build := func() *tree.Topology { return tree.Balanced(2, 3) } // 15 nodes
	shape := build()
	e := workload.Generate(workload.Config{Topology: shape, Rounds: 14, Seed: 2, PGlobal: 1})
	topo := build()
	r := NewRunner(Config{
		Mode: Hierarchical, Topology: topo, Exec: e,
		Seed: 7, Strict: true, KeepMembers: true,
		Spacing: 1000, MinDelay: 1, MaxDelay: 10,
		HbEvery: 100, HbTimeout: 400,
	})
	r.ScheduleFailure(4500, 1) // inner node (children 3,4)
	r.ScheduleFailure(9500, 2) // the other inner node
	res := r.Run()
	if len(res.Failed) != 2 {
		t.Fatalf("Failed = %v", res.Failed)
	}
	// Rounds completing after both repairs must be detected with 13
	// survivors.
	late := 0
	for _, d := range res.RootDetections() {
		if d.Time > 11000 && len(d.Det.Agg.Span) == 13 {
			late++
		}
	}
	if late < 3 {
		t.Fatalf("13-survivor detections after both failures = %d, want ≥ 3", late)
	}
}

// TestFailureOfLeafParentChainsAdoption: the failed node's child itself has
// children — the whole orphan subtree must move intact.
func TestSubtreeAdoptionKeepsDescendants(t *testing.T) {
	build := func() *tree.Topology { return tree.Balanced(2, 3) }
	shape := build()
	e := workload.Generate(workload.Config{Topology: shape, Rounds: 10, Seed: 3, PGlobal: 1})
	topo := build()
	r := NewRunner(Config{
		Mode: Hierarchical, Topology: topo, Exec: e,
		Seed: 9, Strict: true, KeepMembers: true,
		Spacing: 1000, MinDelay: 1, MaxDelay: 10,
	})
	r.ScheduleFailure(4500, 1) // orphans subtrees rooted at 3 and 4
	res := r.Run()
	// Node 3 keeps its children 7 and 8 wherever it lands.
	if got := topo.Children(3); len(got) != 2 {
		t.Fatalf("node 3 lost its children during adoption: %v", got)
	}
	late := 0
	for _, d := range res.RootDetections() {
		if len(d.Det.Agg.Span) == 14 {
			late++
		}
	}
	if late < 5 {
		t.Fatalf("14-survivor detections = %d, want ≥ 5", late)
	}
}

// TestByteAccounting pins the wire-size bookkeeping: leaf reports carry
// span-1 intervals, inner aggregates carry their subtree spans, heartbeats
// are constant size.
func TestByteAccounting(t *testing.T) {
	const rounds = 5
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	shape := build()
	e := workload.Generate(workload.Config{Topology: shape, Rounds: rounds, Seed: 4, PGlobal: 1})
	res := NewRunner(Config{
		Mode: Hierarchical, Topology: build(), Exec: e,
		Seed: 5, Strict: true,
	}).Run()
	// 4 leaves send span-1 reports, 2 inner nodes send span-3 aggregates,
	// once per round each.
	want := rounds * (4*wire.ReportSize(7, 1) + 2*wire.ReportSize(7, 3))
	if got := res.Net.Bytes[KindIvl]; got != want {
		t.Fatalf("interval bytes = %d, want %d", got, want)
	}
	if res.Net.TotalBytes != res.Net.Bytes[KindIvl] {
		t.Fatalf("TotalBytes = %d, want %d (no heartbeats configured)",
			res.Net.TotalBytes, res.Net.Bytes[KindIvl])
	}
}
