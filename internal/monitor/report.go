package monitor

import (
	"fmt"
	"io"
	"sort"

	"hierdet/internal/simnet"
)

// WriteSummary renders a human-readable report of the run: detection
// counts by level, traffic by message kind (counts and bytes), work and
// space distribution across nodes, and failure history. cmd/hdmon prints it;
// tests use it to keep Result fields honest.
func (r *Result) WriteSummary(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	roots := r.RootDetections()
	p("detections: %d total, %d at a tree root\n", len(r.Detections), len(roots))
	bySpan := make(map[int]int)
	for _, d := range roots {
		bySpan[len(d.Det.Agg.Span)]++
	}
	spans := make([]int, 0, len(bySpan))
	for s := range bySpan {
		spans = append(spans, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(spans)))
	for _, s := range spans {
		p("  root detections covering %d processes: %d\n", s, bySpan[s])
	}

	p("traffic: %d messages", r.Net.TotalSent)
	if r.Net.TotalBytes > 0 {
		p(" (%d bytes)", r.Net.TotalBytes)
	}
	p("\n")
	kinds := make([]simnet.Kind, 0, len(r.Net.Sent))
	for k := range r.Net.Sent {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		p("  %-8s %6d msgs", k, r.Net.Sent[k])
		if b := r.Net.Bytes[k]; b > 0 {
			p("  %8d bytes", b)
		}
		p("\n")
	}
	if r.Net.DroppedDead > 0 {
		p("  %d messages dropped at crashed receivers\n", r.Net.DroppedDead)
	}
	if r.Net.Lost > 0 {
		p("  %d messages lost on lossy channels\n", r.Net.Lost)
	}
	if r.StaleReports > 0 {
		p("  %d stale reports (in flight across repairs)\n", r.StaleReports)
	}
	if r.BufferedReports > 0 {
		p("  %d reports stuck behind resequencer gaps\n", r.BufferedReports)
	}

	totalCmp, worstCmp, worstCmpNode := 0, 0, -1
	for id, st := range r.NodeStats {
		totalCmp += st.VecComparisons
		if st.VecComparisons > worstCmp {
			worstCmp, worstCmpNode = st.VecComparisons, id
		}
	}
	p("work: %d vector comparisons; worst node %d did %d (%.1f%%)\n",
		totalCmp, worstCmpNode, worstCmp, pct(worstCmp, totalCmp))

	totalHW, worstHW, worstHWNode := 0, 0, -1
	for id, hw := range r.ResidentHighWater {
		totalHW += hw
		if hw > worstHW {
			worstHW, worstHWNode = hw, id
		}
	}
	p("space: %d peak resident intervals; worst node %d held %d (%.1f%%)\n",
		totalHW, worstHWNode, worstHW, pct(worstHW, totalHW))

	if len(r.Failed) > 0 {
		p("failures: %v\n", r.Failed)
	}
	p("virtual end time: %d\n", r.EndTime)
	return err
}

func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
