package monitor

import (
	"strings"
	"testing"

	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

func TestWriteSummary(t *testing.T) {
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	e := workload.Generate(workload.Config{Topology: build(), Rounds: 8, Seed: 1, PGlobal: 1})
	topo := build()
	r := NewRunner(Config{
		Mode: Hierarchical, Topology: topo, Exec: e,
		Seed: 1, Strict: true,
		HbEvery: 100, HbTimeout: 400,
	})
	r.ScheduleFailure(4500, 6)
	res := r.Run()

	var b strings.Builder
	if err := res.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"detections:",
		"root detections covering 7 processes",
		"root detections covering 6 processes",
		"traffic:",
		"ivl",
		"hb",
		"bytes",
		"work:",
		"space:",
		"failures: [6]",
		"virtual end time:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestOnDetectionHook(t *testing.T) {
	build := func() *tree.Topology { return tree.Balanced(2, 1) }
	e := workload.Generate(workload.Config{Topology: build(), Rounds: 5, Seed: 2, PGlobal: 1})
	var streamed []Detection
	res := NewRunner(Config{
		Mode: Hierarchical, Topology: build(), Exec: e,
		Seed: 2, Strict: true,
		OnDetection: func(d Detection) { streamed = append(streamed, d) },
	}).Run()
	if len(streamed) != len(res.Detections) {
		t.Fatalf("streamed %d, recorded %d", len(streamed), len(res.Detections))
	}
	for i := range streamed {
		if streamed[i].Node != res.Detections[i].Node || streamed[i].Time != res.Detections[i].Time {
			t.Fatal("streamed order differs from recorded order")
		}
	}
}
