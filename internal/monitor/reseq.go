package monitor

// resequencer restores per-sender order over the non-FIFO network: reports
// carry consecutive LinkSeq numbers starting at zero; out-of-order arrivals
// are buffered and released in order, each with its own metadata (epoch).
// Sequence numbers below the delivery frontier (duplicates) are dropped.
type resequencer struct {
	next    int
	pending map[int]ivlPayload
}

func newResequencer() *resequencer {
	return &resequencer{pending: make(map[int]ivlPayload)}
}

// accept ingests one report and returns the (possibly empty) batch now
// deliverable in order.
func (q *resequencer) accept(pl ivlPayload) []ivlPayload {
	if pl.LinkSeq < q.next {
		return nil
	}
	q.pending[pl.LinkSeq] = pl
	var out []ivlPayload
	for {
		next, ok := q.pending[q.next]
		if !ok {
			return out
		}
		delete(q.pending, q.next)
		q.next++
		out = append(out, next)
	}
}

// buffered returns the number of reports held back waiting for a gap.
func (q *resequencer) buffered() int { return len(q.pending) }
