package monitor

import (
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/simnet"
	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// TestAgentRedelivery drives a duplicating, reordering link straight into an
// agent's message handler: each leaf report is delivered twice, with the
// pairs arriving ahead of the frontier (so the duplicate hits the buffered
// copy) and then behind it (so the duplicate hits the already-delivered
// frontier). The per-link resequencer must deliver each stream exactly once
// and in order: one detection per round, Strict succession intact, and every
// duplicate accounted as dropped.
func TestAgentRedelivery(t *testing.T) {
	topo := tree.Balanced(2, 1) // root 0, leaves 1 and 2
	const rounds = 8
	e := workload.Generate(workload.Config{Topology: topo, Rounds: rounds, Seed: 7, PGlobal: 1})
	r := NewRunner(Config{Mode: Hierarchical, Topology: topo, Exec: e,
		Seed: 3, Strict: true, KeepMembers: true})
	a := r.agents[0]

	deliver := func(leaf, seq int) {
		batch := ivlBatch{{Iv: e.Streams[leaf][seq], LinkSeq: seq}}
		a.OnMessage(simnet.Time(seq), simnet.Message{From: leaf, To: 0, Kind: KindIvl, Payload: batch})
	}
	for k := 0; k < rounds; k += 2 {
		a.OnTimer(simnet.Time(k), "local", e.Streams[0][k])
		a.OnTimer(simnet.Time(k), "local", e.Streams[0][k+1])
		for _, leaf := range []int{1, 2} {
			deliver(leaf, k+1) // buffered behind the gap at k
			deliver(leaf, k+1) // duplicate of a buffered report
			deliver(leaf, k)   // fills the gap, releases k and k+1
			deliver(leaf, k)   // duplicate below the delivery frontier
		}
	}

	dets := 0
	for _, d := range r.res.Detections {
		if d.Node != 0 {
			continue
		}
		dets++
		if !interval.OverlapAll(interval.BaseIntervals(d.Det.Agg)) {
			t.Fatal("false detection")
		}
	}
	if dets != rounds {
		t.Fatalf("detections = %d, want %d (a duplicate leaked or a report was lost)", dets, rounds)
	}
	for _, leaf := range []int{1, 2} {
		if got := a.reseq[leaf].Dropped(); got != rounds {
			t.Errorf("leaf %d duplicates dropped = %d, want %d", leaf, got, rounds)
		}
		if got := a.reseq[leaf].Buffered(); got != 0 {
			t.Errorf("leaf %d reports still buffered = %d", leaf, got)
		}
	}
}
