package monitor

import (
	"testing"

	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// TestLargeScaleSmoke runs the full system at the "large-scale network"
// sizes the paper targets: a 1023-node binary tree (10 levels) and a
// 1365-node 4-ary tree. Guarded by -short.
func TestLargeScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale smoke test skipped in -short mode")
	}
	shapes := []struct {
		name string
		d, h int
	}{
		{"binary-1023", 2, 9},
		{"quaternary-1365", 4, 5},
	}
	for _, s := range shapes {
		t.Run(s.name, func(t *testing.T) {
			const rounds = 5
			build := func() *tree.Topology { return tree.Balanced(s.d, s.h) }
			shape := build()
			e := workload.Generate(workload.Config{Topology: shape, Rounds: rounds, Seed: 1, PGlobal: 1})
			res := NewRunner(Config{
				Mode: Hierarchical, Topology: build(), Exec: e,
				Seed: 1, Strict: true,
			}).Run()
			if got := len(res.RootDetections()); got != rounds {
				t.Fatalf("root detections = %d, want %d", got, rounds)
			}
			// One report per non-root node per round, one hop each.
			want := (shape.N() - 1) * rounds
			if got := res.Net.Sent[KindIvl]; got != want {
				t.Fatalf("messages = %d, want %d", got, want)
			}
		})
	}
}

// TestQueueResidencyBounded guards against queue leaks: on long mixed
// workloads, elimination and pruning must keep every node's queues small —
// heads that can never join a solution are provably discarded, so residency
// stays bounded by a few rounds' worth, not by the execution length.
func TestQueueResidencyBounded(t *testing.T) {
	const rounds = 200
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	shape := build()
	e := workload.Generate(workload.Config{
		Topology: shape, Rounds: rounds, Seed: 7, PGlobal: 0.3, PGroup: 0.4,
	})
	res := NewRunner(Config{
		Mode: Hierarchical, Topology: build(), Exec: e,
		Seed: 7, Strict: true,
	}).Run()
	for node, hw := range res.ResidentHighWater {
		// Each node has ≤ 3 queues here; transit skew is a couple of rounds.
		// A leak would show up as residency tracking the 200-round length.
		if hw > 30 {
			t.Errorf("node %d high-water residency = %d — queues are leaking", node, hw)
		}
	}
	want := e.ExpectedDetections(shape.Subtree(0))
	if got := len(res.RootDetections()); got != want {
		t.Fatalf("root detections = %d, want %d", got, want)
	}
}
