package monitor

import (
	"math/rand"
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/simnet"
	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// TestRepairStress fuzzes the fault-tolerance machinery: random tree shapes,
// random workload mixes, one to three failures at random times and victims,
// both repair strategies. Invariants checked on every run: no panic (Strict
// mode is armed throughout), every detection sound, topology valid, and the
// system still detecting at the end (unless everything died).
func TestRepairStress(t *testing.T) {
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		trial := trial
		r := rand.New(rand.NewSource(int64(trial) * 7919))

		n := 6 + r.Intn(15)
		degree := 2 + r.Intn(3)
		build := func() *tree.Topology { return tree.Random(n, degree, int64(trial)) }

		rounds := 12 + r.Intn(8)
		e := workload.Generate(workload.Config{
			Topology: build(), Rounds: rounds, Seed: int64(trial),
			PGlobal: 0.5, PGroup: 0.25,
		})

		distributed := trial%2 == 0
		topo := build()
		cfg := Config{
			Mode: Hierarchical, Topology: topo, Exec: e,
			Seed: int64(trial) + 100, Strict: true, KeepMembers: true,
			Spacing: 1000, MinDelay: 1, MaxDelay: 20,
			HbEvery: 100, HbTimeout: 500,
			DistributedRepair: distributed,
			ResendLastOnAdopt: trial%4 == 0,
		}
		runner := NewRunner(cfg)

		failures := 1 + r.Intn(3)
		victims := map[int]bool{}
		for f := 0; f < failures; f++ {
			victim := r.Intn(n)
			if victims[victim] {
				continue
			}
			victims[victim] = true
			at := 2000 + r.Int63n(int64(rounds)*900)
			runner.ScheduleFailure(simnet.Time(at), victim)
		}

		res := runner.Run()

		if err := topo.Validate(); err != nil {
			t.Fatalf("trial %d (dist=%v): %v", trial, distributed, err)
		}
		for _, d := range res.Detections {
			if !interval.OverlapAll(interval.BaseIntervals(d.Det.Agg)) {
				t.Fatalf("trial %d (dist=%v): false detection at node %d", trial, distributed, d.Node)
			}
		}
		// Survivors still form trees covering everyone alive.
		covered := 0
		for _, root := range topo.Roots() {
			covered += len(topo.Subtree(root))
		}
		if covered != len(topo.AliveNodes()) {
			t.Fatalf("trial %d: %d covered of %d alive", trial, covered, len(topo.AliveNodes()))
		}
	}
}
