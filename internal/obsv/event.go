package obsv

import "hierdet/internal/interval"

// EventKind discriminates the detection-lifecycle events the runtime emits.
type EventKind uint8

const (
	// IntervalObserved: Count completed local-predicate intervals of
	// process Node entered the detector (Observe or ObserveBatch).
	IntervalObserved EventKind = iota + 1
	// ReportSent: Node shipped one report message to its parent Peer
	// carrying Count aggregates (1 without batch windows). Seq is the link
	// sequence number of the first report on the message.
	ReportSent
	// ReportRecv: Node accepted one report message from child Peer carrying
	// Count aggregates.
	ReportRecv
	// SolutionFound: Node detected a satisfaction of the predicate over its
	// subtree. AtRoot marks tree (or partition) roots; Agg is the
	// ⊓-aggregate, Set the solution set when member retention is on, and
	// Seq the aggregate's sequence number at Node.
	SolutionFound
	// IntervalPruned: detection at Node deleted Count queue heads under the
	// repeated-detection rule (Eq. 10, or Eq. 9 with ExactPrune).
	IntervalPruned
	// NodeSuspected: Node's failure detector concluded tree neighbour Peer
	// is dead (heartbeat silence past the timeout).
	NodeSuspected
	// RepairConcluded: orphan root Node finished reattachment — adopted by
	// Peer, or NoPeer when it exhausted its candidates and continues as a
	// partition root (paper §III-F).
	RepairConcluded
	// TransportRedial: the transport re-established the outbound connection
	// to peer process Node after a failure (the redelivery window replays
	// behind it). Emitted from the transport's writer goroutine, so it is
	// ordered per peer link rather than per detector node.
	TransportRedial
	// TenantRegistered: the tenant plane instantiated a detection tree for
	// Tenant (Node is its ownership bucket). Emitted by a Multiplexer, not
	// by clusters.
	TenantRegistered
	// TenantEvicted: the tenant plane stopped and unregistered Tenant's
	// detection tree (Node is its ownership bucket).
	TenantEvicted
	// LeaseAcquired: Monitor took the lease on ownership bucket Node.
	LeaseAcquired
	// LeaseLost: Monitor released, lost or was rebalanced off the lease on
	// ownership bucket Node.
	LeaseLost
)

// NumEventKinds is one past the largest valid EventKind — the size of any
// array indexed by kind.
const NumEventKinds = int(LeaseLost) + 1

// NoPeer marks an absent counterparty (it equals tree.None, so a
// RepairConcluded with Peer == NoPeer is a partition give-up).
const NoPeer = -1

// eventKindNames indexes EventKind strings; index 0 is the invalid zero kind.
var eventKindNames = [...]string{
	"invalid",
	"interval_observed",
	"report_sent",
	"report_recv",
	"solution_found",
	"interval_pruned",
	"node_suspected",
	"repair_concluded",
	"transport_redial",
	"tenant_registered",
	"tenant_evicted",
	"lease_acquired",
	"lease_lost",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "invalid"
}

// EventKinds lists every valid kind, in declaration order — the stable
// iteration order for per-kind accounting.
func EventKinds() []EventKind {
	out := make([]EventKind, 0, NumEventKinds-1)
	for k := IntervalObserved; k <= LeaseLost; k++ {
		out = append(out, k)
	}
	return out
}

// Event is one entry of the runtime's lifecycle stream. A single sink
// receives every event of a cluster; events concerning one detector node are
// delivered in that node's causal order (they are emitted from the node's
// single-writer execution), while events of different nodes — and transport
// events, which ride connection goroutines — interleave arbitrarily. The
// sink is called synchronously on runtime goroutines: it must be quick,
// safe for concurrent calls, and must not call back into the cluster's
// lifecycle (Stop in particular).
type Event struct {
	// Kind says what happened; the fields below it are meaningful per kind
	// (see the kind constants).
	Kind EventKind
	// Node is the detector node the event concerns (the peer process for
	// TransportRedial).
	Node int
	// Peer is the counterparty — parent for ReportSent, child for
	// ReportRecv, suspect for NodeSuspected, adopter for RepairConcluded —
	// or NoPeer when there is none.
	Peer int
	// Seq is a per-link or per-node sequence number where the kind has one.
	Seq int
	// Count is the event's multiplicity (intervals observed, reports on a
	// message, heads pruned); at least 1.
	Count int
	// AtRoot marks SolutionFound events at a tree or partition root.
	AtRoot bool
	// Agg is SolutionFound's ⊓-aggregate (zero value otherwise).
	Agg interval.Interval
	// Set is SolutionFound's solution set when member retention
	// (Verify/KeepMembers) is on; nil otherwise. The slice is shared with
	// the detection record — sinks must not modify it.
	Set []interval.Interval
	// Tenant names the detection tree the event belongs to when the emitter
	// is a tenant plane: set on Tenant* events and on every per-tenant
	// cluster event a Multiplexer forwards. Empty for a bare cluster.
	Tenant string
	// Monitor identifies the fleet monitor acting on Lease* events.
	Monitor string
}
