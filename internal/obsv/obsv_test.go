package obsv

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Re-registering the same name returns the same series.
	if got := r.Counter("c_total", "a counter").Value(); got != 42 {
		t.Fatalf("re-registered counter = %d, want 42", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestVecSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("msgs_total", "by direction", "node", "dir")
	v.With("3", "in").Add(5)
	v.With("3", "out").Add(7)
	v.With("4", "in").Add(1)
	if got := v.With("3", "in").Value(); got != 5 {
		t.Fatalf(`series {3,in} = %d, want 5`, got)
	}
	if got := v.With("3", "out").Value(); got != 7 {
		t.Fatalf(`series {3,out} = %d, want 7`, got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,  // 0.5 and 1 (le is inclusive)
		`lat_bucket{le="5"} 3`,  // + 3
		`lat_bucket{le="10"} 4`, // + 7
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 111.5`,
		`lat_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRedefinitionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("redefining x as a gauge did not panic")
		}
	}()
	r.Gauge("x", "second")
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "help with \\ backslash\nand newline").Add(3)
	v := r.GaugeVec("a_gauge", "labeled", "node")
	v.With("1").Set(0.25)
	v.With(`we"ird`).Set(math.Inf(1))
	r.Func("z_func", "func backed", KindGauge, []string{"shard"}, func(emit func(float64, ...string)) {
		emit(9, "s1")
		emit(4, "s0")
	})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Families sorted by name: a_gauge before b_total before z_func.
	if !(strings.Index(out, "a_gauge") < strings.Index(out, "b_total") &&
		strings.Index(out, "b_total") < strings.Index(out, "z_func")) {
		t.Fatalf("families not sorted:\n%s", out)
	}
	for _, want := range []string{
		"# HELP b_total help with \\\\ backslash\\nand newline",
		"# TYPE b_total counter",
		"b_total 3",
		"# TYPE a_gauge gauge",
		`a_gauge{node="1"} 0.25`,
		`a_gauge{node="we\"ird"} +Inf`,
		`z_func{shard="s0"} 4`,
		`z_func{shard="s1"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Func family series sorted by label value.
	if strings.Index(out, `z_func{shard="s0"}`) > strings.Index(out, `z_func{shard="s1"}`) {
		t.Fatalf("func samples not sorted:\n%s", out)
	}
}

func TestHandlerServesScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "served_total 1") {
		t.Fatalf("scrape body missing counter:\n%s", rec.Body.String())
	}
}

// TestConcurrentScrapeAndUpdate exercises every instrument from many
// goroutines while scraping — the -race guarantee the runtime leans on when
// /metrics is hit mid-run.
func TestConcurrentScrapeAndUpdate(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("ops_total", "x", "kind")
	g := r.Gauge("depth", "x")
	h := r.Histogram("size", "x", []float64{1, 10, 100})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				c.With("a").Inc()
				c.With("b").Add(2)
				g.Set(float64(j))
				h.Observe(float64(j % 200))
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestEventKindStrings(t *testing.T) {
	kinds := EventKinds()
	if len(kinds) != NumEventKinds-1 {
		t.Fatalf("got %d kinds, want %d", len(kinds), NumEventKinds-1)
	}
	if len(kinds) != 12 {
		t.Fatalf("got %d kinds, want 12", len(kinds))
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "invalid" || seen[s] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(0).String() != "invalid" || EventKind(200).String() != "invalid" {
		t.Fatal("out-of-range kinds must stringify as invalid")
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 5, 3)
	if lin[0] != 0 || lin[1] != 5 || lin[2] != 10 {
		t.Fatalf("linear = %v", lin)
	}
	exp := ExponentialBuckets(1, 4, 3)
	if exp[0] != 1 || exp[1] != 4 || exp[2] != 16 {
		t.Fatalf("exponential = %v", exp)
	}
}
