package obsv

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label values,
// HELP strings and label values escaped per the format. It is safe to call at
// any time, concurrently with every instrument update.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry as a Prometheus
// scrape target (the conventional /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// sample is one exposition line's worth of data, collected under the family
// lock and formatted outside it.
type sample struct {
	labelValues []string
	value       float64

	// histogram series carry their full state instead of a single value.
	hist    bool
	buckets []int64 // cumulative, one per bound
	inf     int64   // the +Inf bucket (== count)
	sum     float64
}

func (f *family) write(w *bufio.Writer) error {
	f.mu.Lock()
	var samples []sample
	if f.collect != nil {
		f.collect(func(value float64, labelValues ...string) {
			if len(labelValues) != len(f.labelNames) {
				panic(fmt.Sprintf("obsv: func metric %q emitted %d label values, want %d",
					f.name, len(labelValues), len(f.labelNames)))
			}
			samples = append(samples, sample{labelValues: append([]string(nil), labelValues...), value: value})
		})
	} else {
		for _, s := range f.series {
			samples = append(samples, f.sampleOf(s))
		}
	}
	f.mu.Unlock()
	if len(samples) == 0 {
		return nil
	}
	sort.Slice(samples, func(i, j int) bool {
		return lessStrings(samples[i].labelValues, samples[j].labelValues)
	})

	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range samples {
		if !s.hist {
			w.WriteString(f.name)
			writeLabels(w, f.labelNames, s.labelValues, "", "")
			w.WriteByte(' ')
			w.WriteString(formatValue(s.value))
			w.WriteByte('\n')
			continue
		}
		cum := int64(0)
		for i, bound := range f.buckets {
			cum += s.buckets[i]
			w.WriteString(f.name + "_bucket")
			writeLabels(w, f.labelNames, s.labelValues, "le", formatValue(bound))
			fmt.Fprintf(w, " %d\n", cum)
		}
		w.WriteString(f.name + "_bucket")
		writeLabels(w, f.labelNames, s.labelValues, "le", "+Inf")
		fmt.Fprintf(w, " %d\n", s.inf)
		w.WriteString(f.name + "_sum")
		writeLabels(w, f.labelNames, s.labelValues, "", "")
		fmt.Fprintf(w, " %s\n", formatValue(s.sum))
		w.WriteString(f.name + "_count")
		writeLabels(w, f.labelNames, s.labelValues, "", "")
		fmt.Fprintf(w, " %d\n", s.inf)
	}
	return nil
}

// sampleOf snapshots one stored series. Caller holds f.mu (which only guards
// the series map — the values themselves are atomics).
func (f *family) sampleOf(s *series) sample {
	switch f.kind {
	case KindCounter:
		return sample{labelValues: s.labelValues, value: float64(s.count.Load())}
	case KindGauge:
		return sample{labelValues: s.labelValues, value: math.Float64frombits(s.gauge.Load())}
	default: // KindHistogram
		out := sample{labelValues: s.labelValues, hist: true,
			buckets: make([]int64, len(f.buckets)),
			sum:     math.Float64frombits(s.hsum.Load()),
		}
		total := int64(0)
		for i := range s.bucketCounts {
			n := s.bucketCounts[i].Load()
			total += n
			if i < len(f.buckets) {
				out.buckets[i] = n
			}
		}
		out.inf = total
		return out
	}
}

// writeLabels writes {k="v",...}, appending the optional extra pair (used for
// the histogram "le" label). Nothing is written when there are no pairs.
func writeLabels(w *bufio.Writer, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	w.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(n)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(values[i]))
		w.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(extraName)
		w.WriteString(`="`)
		w.WriteString(extraValue)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// formatValue renders a float the way Prometheus expects: integral values
// without an exponent, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

func lessStrings(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
