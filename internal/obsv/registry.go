// Package obsv is the runtime's unified observability layer: a
// dependency-free metrics registry (atomic counters, gauges and histograms,
// optionally labeled, plus scrape-time func-backed families), Prometheus
// text exposition over any io.Writer or http handler, and the typed event
// stream every plane of the detector reports its lifecycle through.
//
// The registry is built for the detector's concurrency model: instruments
// are plain atomics (an Add on a hot path costs one uncontended atomic
// add), families registered with Func are sampled only at scrape time (so
// state that already lives in the runtime's own atomics — per-node
// counters, mailbox depths, wheel lag — is exposed without double
// bookkeeping on the hot path), and every read path is safe concurrently
// with every write path, including while the cluster is being killed,
// repaired or stopped.
package obsv

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's exposition type.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Registry holds metric families. The zero value is not usable; create with
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric: help, type and its labeled series.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histograms only, sorted ascending, +Inf implicit

	mu     sync.Mutex
	series map[string]*series

	// collect, when set, makes this a func-backed family: at scrape time it
	// is invoked with an emit callback instead of reading stored series.
	collect func(emit func(value float64, labelValues ...string))
}

// series is one labeled instance of a family. Counters store int64 counts;
// gauges store float64 bits; histograms use the bucket arrays.
type series struct {
	labelValues []string
	count       atomic.Int64  // counters
	gauge       atomic.Uint64 // gauges: math.Float64bits

	// histograms: per-bucket cumulative-at-scrape counts (stored
	// non-cumulative, summed at exposition), observation count and sum.
	bucketCounts []atomic.Int64
	hcount       atomic.Int64
	hsum         atomic.Uint64 // math.Float64bits, CAS-added
}

const seriesKeySep = "\x1f"

// lookup returns (creating if needed) the family name with the given shape,
// panicking on a redefinition with a different shape — mixed types under one
// name would corrupt the exposition.
func (r *Registry) lookup(name, help string, kind Kind, labelNames []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("obsv: metric %q redefined with a different type or label set", name))
		}
		for i := range labelNames {
			if f.labelNames[i] != labelNames[i] {
				panic(fmt.Sprintf("obsv: metric %q redefined with a different label set", name))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		series:     make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// with returns (creating if needed) the series for the given label values.
func (f *family) with(labelValues []string) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("obsv: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, seriesKeySep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), labelValues...)}
	if f.kind == KindHistogram {
		s.bucketCounts = make([]atomic.Int64, len(f.buckets)+1)
	}
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing count.
type Counter struct{ s *series }

// Add increments the counter by n (n must be ≥ 0).
func (c *Counter) Add(n int64) { c.s.count.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.s.count.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.s.count.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.gauge.Store(math.Float64bits(v)) }

// Add adds d (negative to subtract) with a CAS loop.
func (g *Gauge) Add(d float64) {
	for {
		old := g.s.gauge.Load()
		if g.s.gauge.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.gauge.Load()) }

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	f *family
	s *series
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.f.buckets, v) // first bucket with bound ≥ v
	h.s.bucketCounts[i].Add(1)
	h.s.hcount.Add(1)
	for {
		old := h.s.hsum.Load()
		if h.s.hsum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.s.hcount.Load() }

// Sum returns the running sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.s.hsum.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts with
// Prometheus-style linear interpolation inside the target bucket. The first
// bucket interpolates from zero; a rank landing in the +Inf bucket returns
// the largest finite bound (the histogram cannot resolve beyond it). Returns
// NaN when the histogram is empty. The estimate reads the per-bucket atomics
// without a snapshot barrier, so concurrent Observe calls can skew a live
// read by a few observations — the same contract a Prometheus scrape has.
func (h *Histogram) Quantile(q float64) float64 {
	total := int64(0)
	counts := make([]int64, len(h.s.bucketCounts))
	for i := range h.s.bucketCounts {
		counts[i] = h.s.bucketCounts[i].Load()
		total += counts[i]
	}
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.f.buckets) { // +Inf bucket: clamp to last finite bound
			if len(h.f.buckets) == 0 {
				return math.NaN()
			}
			return h.f.buckets[len(h.f.buckets)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.f.buckets[i-1]
		}
		hi := h.f.buckets[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.f.buckets[len(h.f.buckets)-1]
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, KindCounter, nil, nil)
	return &Counter{s: f.with(nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, KindGauge, nil, nil)
	return &Gauge{s: f.with(nil)}
}

// Histogram registers (or finds) an unlabeled histogram with the given
// ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.lookup(name, help, KindHistogram, nil, buckets)
	return &Histogram{f: f, s: f.with(nil)}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, KindCounter, labelNames, nil)}
}

// With returns the counter for the given label values (created on first use).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{s: v.f.with(labelValues)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, KindGauge, labelNames, nil)}
}

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{s: v.f.with(labelValues)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.lookup(name, help, KindHistogram, labelNames, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{f: v.f, s: v.f.with(labelValues)}
}

// Func registers a scrape-time family: at every exposition collect is called
// with an emit callback and contributes one sample per emit call. This is how
// state that already lives in the runtime's own atomics (per-node counters,
// queue depths, wheel lag) is exposed without any hot-path double
// bookkeeping. kind must be KindCounter or KindGauge; collect must be safe to
// call from any goroutine at any time.
func (r *Registry) Func(name, help string, kind Kind, labelNames []string, collect func(emit func(value float64, labelValues ...string))) {
	if kind == KindHistogram {
		panic("obsv: func-backed histograms are not supported")
	}
	f := r.lookup(name, help, kind, labelNames, nil)
	f.mu.Lock()
	f.collect = collect
	f.mu.Unlock()
}

// LinearBuckets returns count ascending bounds starting at start, step apart.
func LinearBuckets(start, step float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// ExponentialBuckets returns count ascending bounds starting at start, each
// factor times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
