// Package oneshot implements the classical one-time conjunctive predicate
// detectors the paper surveys: Garg & Waldecker's centralized detection of
// Definitely(Φ) ("strong unstable predicates", 1996, reference [7]) and of
// Possibly(Φ) ("weak unstable predicates", 1994, reference [8]).
//
// Both maintain one interval queue per process at a checker process and
// eliminate queue heads that can never participate in a satisfying set. They
// stop at the first detection. As the paper's §I (and [12]) observe, these
// algorithms "can detect predicates only once and will hang after the
// initial detection" — rerunning them is not equivalent to repeated
// detection, because the queues' contents after the first solution are not a
// valid starting state for finding the next one. The repository includes
// them as baselines to demonstrate exactly that limitation (see the
// TestOneShotMissesLaterOccurrences tests and EXPERIMENTS.md).
package oneshot

import (
	"fmt"

	"hierdet/internal/interval"
)

// DefinitelyDetector is the one-shot Definitely(Φ) checker of [7].
type DefinitelyDetector struct {
	queues map[int]*interval.Queue
	order  []int
	done   bool
	sol    []interval.Interval
}

// NewDefinitely returns a detector over the given participant processes.
func NewDefinitely(participants []int) *DefinitelyDetector {
	if len(participants) == 0 {
		panic("oneshot: no participants")
	}
	d := &DefinitelyDetector{queues: make(map[int]*interval.Queue)}
	for _, p := range participants {
		if _, dup := d.queues[p]; dup {
			panic(fmt.Sprintf("oneshot: duplicate participant %d", p))
		}
		d.queues[p] = interval.NewQueue()
		d.order = append(d.order, p)
	}
	return d
}

// Done reports whether the predicate has been detected; after that the
// detector ignores further input (it "hangs", faithfully).
func (d *DefinitelyDetector) Done() bool { return d.done }

// Solution returns the detected solution set, or nil.
func (d *DefinitelyDetector) Solution() []interval.Interval {
	return append([]interval.Interval(nil), d.sol...)
}

// OnInterval feeds the next interval from process p. It returns true exactly
// once — on the call that completes the first solution set.
func (d *DefinitelyDetector) OnInterval(p int, iv interval.Interval) bool {
	if d.done {
		return false
	}
	q, ok := d.queues[p]
	if !ok {
		panic(fmt.Sprintf("oneshot: interval from unknown process %d", p))
	}
	q.Enqueue(iv)
	if q.Len() != 1 {
		return false
	}
	d.eliminateDefinitely([]int{p})
	if sol, ok := d.heads(); ok {
		d.sol = sol
		d.done = true
		return true
	}
	return false
}

// eliminateDefinitely is the same fixed-point head elimination as Algorithm 1
// lines 4–17 (which [12] and this paper inherit from [7]).
func (d *DefinitelyDetector) eliminateDefinitely(updated []int) {
	for len(updated) > 0 {
		var next []int
		add := func(s int) {
			for _, t := range next {
				if t == s {
					return
				}
			}
			next = append(next, s)
		}
		for _, a := range updated {
			qa := d.queues[a]
			if qa.Empty() {
				continue
			}
			x := qa.Head()
			for _, b := range d.order {
				if b == a || d.queues[b].Empty() {
					continue
				}
				y := d.queues[b].Head()
				if !x.Lo.Less(y.Hi) {
					add(b)
				}
				if !y.Lo.Less(x.Hi) {
					add(a)
				}
			}
		}
		for _, c := range next {
			if q := d.queues[c]; !q.Empty() {
				q.DeleteHead()
			}
		}
		updated = next
	}
}

func (d *DefinitelyDetector) heads() ([]interval.Interval, bool) {
	sol := make([]interval.Interval, 0, len(d.order))
	for _, p := range d.order {
		q := d.queues[p]
		if q.Empty() {
			return nil, false
		}
		sol = append(sol, q.Head())
	}
	return sol, true
}

// PossiblyDetector is the one-shot Possibly(Φ) checker of [8]. Possibly(Φ)
// holds for a set X of intervals iff no interval wholly precedes another
// (paper Eq. 1, "∀ x_i, x_j ∈ X: max(x_i) ⊀ min(x_j)"). The precedence test
// here uses each interval's falsifying event (Interval.Term) rather than its
// last true event as the end boundary, because the local state "predicate
// holds" persists between those two events; see wholeBefore. The
// global-state-lattice detector (internal/lattice) cross-validates this
// boundary choice on random executions.
type PossiblyDetector struct {
	queues map[int]*interval.Queue
	order  []int
	done   bool
	sol    []interval.Interval
}

// NewPossibly returns a Possibly(Φ) detector over the given processes.
func NewPossibly(participants []int) *PossiblyDetector {
	if len(participants) == 0 {
		panic("oneshot: no participants")
	}
	d := &PossiblyDetector{queues: make(map[int]*interval.Queue)}
	for _, p := range participants {
		if _, dup := d.queues[p]; dup {
			panic(fmt.Sprintf("oneshot: duplicate participant %d", p))
		}
		d.queues[p] = interval.NewQueue()
		d.order = append(d.order, p)
	}
	return d
}

// Done reports whether Possibly(Φ) has been detected.
func (d *PossiblyDetector) Done() bool { return d.done }

// Solution returns the detected witness set, or nil.
func (d *PossiblyDetector) Solution() []interval.Interval {
	return append([]interval.Interval(nil), d.sol...)
}

// OnInterval feeds the next interval from process p; true on first detection.
func (d *PossiblyDetector) OnInterval(p int, iv interval.Interval) bool {
	if d.done {
		return false
	}
	q, ok := d.queues[p]
	if !ok {
		panic(fmt.Sprintf("oneshot: interval from unknown process %d", p))
	}
	q.Enqueue(iv)
	if q.Len() != 1 {
		return false
	}
	d.eliminatePossibly([]int{p})
	if sol, ok := d.heads2(); ok {
		d.sol = sol
		d.done = true
		return true
	}
	return false
}

// wholeBefore reports that interval x's truth provably ended before y's
// began in every observation: the event that falsified x's predicate
// causally precedes y's first true event. The falsifying event (Term), not
// the last true event (Hi), is the right boundary — the local state
// "predicate holds" persists after max(x) until Term(x), so x and y can
// coexist whenever Term(x) ⊀ min(y) even if max(x) ≺ min(y) (e.g. a message
// sent at x's last true event and received at y's first). Intervals with no
// falsifying event (end of trace) persist forever and precede nothing.
func wholeBefore(x, y interval.Interval) bool {
	if x.Term == nil {
		return false
	}
	return x.Term.Less(y.Lo)
}

// eliminatePossibly deletes head x whenever some head y satisfies
// wholeBefore(x, y): x can never be simultaneous with y or any of y's
// successors — x is useless for Possibly.
func (d *PossiblyDetector) eliminatePossibly(updated []int) {
	for len(updated) > 0 {
		var next []int
		add := func(s int) {
			for _, t := range next {
				if t == s {
					return
				}
			}
			next = append(next, s)
		}
		for _, a := range updated {
			qa := d.queues[a]
			if qa.Empty() {
				continue
			}
			x := qa.Head()
			for _, b := range d.order {
				if b == a || d.queues[b].Empty() {
					continue
				}
				y := d.queues[b].Head()
				if wholeBefore(x, y) {
					add(a)
				}
				if wholeBefore(y, x) {
					add(b)
				}
			}
		}
		for _, c := range next {
			if q := d.queues[c]; !q.Empty() {
				q.DeleteHead()
			}
		}
		updated = next
	}
}

func (d *PossiblyDetector) heads2() ([]interval.Interval, bool) {
	sol := make([]interval.Interval, 0, len(d.order))
	for _, p := range d.order {
		q := d.queues[p]
		if q.Empty() {
			return nil, false
		}
		sol = append(sol, q.Head())
	}
	// All queues non-empty and the elimination fixed point guarantees no
	// head wholly precedes another: Eq. 1 holds.
	return sol, true
}
