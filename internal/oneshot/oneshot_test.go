package oneshot

import (
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
)

func pulse(n, p int) []interval.Interval {
	base := uint32(p * 10)
	out := make([]interval.Interval, n)
	for i := 0; i < n; i++ {
		lo := make(vclock.VC, n)
		hi := make(vclock.VC, n)
		for c := 0; c < n; c++ {
			lo[c] = base + 1
			hi[c] = base + 5
		}
		lo[i] = base + 2
		hi[i] = base + 6
		out[i] = interval.New(i, p, lo, hi)
	}
	return out
}

func TestDefinitelyDetectsFirstOccurrence(t *testing.T) {
	d := NewDefinitely([]int{0, 1, 2})
	fired := 0
	for _, iv := range pulse(3, 0) {
		if d.OnInterval(iv.Origin, iv) {
			fired++
		}
	}
	if fired != 1 || !d.Done() {
		t.Fatalf("fired = %d, done = %v", fired, d.Done())
	}
	if sol := d.Solution(); len(sol) != 3 || !interval.OverlapAll(sol) {
		t.Fatalf("bad solution: %v", sol)
	}
}

// TestOneShotMissesLaterOccurrences demonstrates the limitation motivating
// the paper (§I): the one-shot detector reports the first satisfaction and
// then ignores the k−1 that follow.
func TestOneShotMissesLaterOccurrences(t *testing.T) {
	const k = 5
	d := NewDefinitely([]int{0, 1, 2})
	fired := 0
	for p := 0; p < k; p++ {
		for _, iv := range pulse(3, p) {
			if d.OnInterval(iv.Origin, iv) {
				fired++
			}
		}
	}
	if fired != 1 {
		t.Fatalf("one-shot fired %d times, want exactly 1 (k = %d occurrences)", fired, k)
	}
}

func TestDefinitelyElimination(t *testing.T) {
	d := NewDefinitely([]int{0, 1})
	// x0 wholly precedes x1: no Definitely.
	if d.OnInterval(0, interval.New(0, 0, vclock.Of(1, 0), vclock.Of(2, 0))) {
		t.Fatal("premature detection")
	}
	if d.OnInterval(1, interval.New(1, 0, vclock.Of(3, 1), vclock.Of(3, 2))) {
		t.Fatal("false detection of sequential intervals")
	}
	// A later interval at P0 that interleaves with a second at P1.
	if d.OnInterval(0, interval.New(0, 1, vclock.Of(4, 3), vclock.Of(6, 5))) {
		t.Fatal("premature detection")
	}
	if !d.OnInterval(1, interval.New(1, 1, vclock.Of(5, 4), vclock.Of(7, 6))) {
		t.Fatal("missed genuine Definitely")
	}
}

func TestPossiblyDetection(t *testing.T) {
	d := NewPossibly([]int{0, 1})
	// Concurrent intervals: Possibly holds (they can be observed together).
	if d.OnInterval(0, interval.New(0, 0, vclock.Of(1, 0), vclock.Of(2, 0))) {
		t.Fatal("premature")
	}
	if !d.OnInterval(1, interval.New(1, 0, vclock.Of(0, 1), vclock.Of(0, 2))) {
		t.Fatal("missed Possibly for concurrent intervals")
	}
	sol := d.Solution()
	if len(sol) != 2 {
		t.Fatalf("solution size = %d", len(sol))
	}
	// Eq. 1: no member wholly precedes another.
	for i := range sol {
		for j := range sol {
			if i != j && sol[i].Hi.Less(sol[j].Lo) {
				t.Fatal("witness violates Eq. 1")
			}
		}
	}
}

func TestPossiblyEliminatesPrecedingInterval(t *testing.T) {
	d := NewPossibly([]int{0, 1})
	// x0's predicate fell false at [3 0], and P1's interval begins at [3 1]
	// — causally after the falsification (P1 heard of 3 events of P0), so
	// they can never coexist: x0 must be eliminated, no detection yet.
	x0 := interval.New(0, 0, vclock.Of(1, 0), vclock.Of(2, 0))
	x0.Term = vclock.Of(3, 0)
	d.OnInterval(0, x0)
	if d.OnInterval(1, interval.New(1, 0, vclock.Of(3, 1), vclock.Of(3, 2))) {
		t.Fatal("false Possibly for sequential intervals")
	}
	// A fresh x0 concurrent with x1's still-queued interval completes it.
	if !d.OnInterval(0, interval.New(0, 1, vclock.Of(4, 0), vclock.Of(5, 0))) {
		t.Fatal("missed Possibly")
	}
}

// TestPossiblyStatePersistsPastLastTrueEvent pins the boundary case that
// distinguishes Term from Hi: P0's last true event *sends* a message that
// P1 receives at its first true event. max(x0) ≺ min(x1), yet the two truths
// coexist (P0's state stays true until its next event), so Possibly holds.
func TestPossiblyStatePersistsPastLastTrueEvent(t *testing.T) {
	d := NewPossibly([]int{0, 1})
	x0 := interval.New(0, 0, vclock.Of(1, 0), vclock.Of(2, 0)) // event 2 = send
	x0.Term = vclock.Of(3, 2)                                  // falsified much later
	d.OnInterval(0, x0)
	// P1 true at the receive of that send: min = [2 1].
	x1 := interval.New(1, 0, vclock.Of(2, 1), vclock.Of(2, 2))
	x1.Term = vclock.Of(2, 3)
	if !d.OnInterval(1, x1) {
		t.Fatal("missed Possibly: state persists past the last true event")
	}
}

// TestPossiblyOpenIntervalNeverPrecedes: an interval with no falsifying
// event (predicate true through end of trace) can coexist with everything
// later.
func TestPossiblyOpenIntervalNeverPrecedes(t *testing.T) {
	d := NewPossibly([]int{0, 1})
	open := interval.New(0, 0, vclock.Of(1, 0), vclock.Of(1, 0)) // Term nil
	d.OnInterval(0, open)
	late := interval.New(1, 0, vclock.Of(1, 5), vclock.Of(1, 6))
	if !d.OnInterval(1, late) {
		t.Fatal("open interval should coexist with any later interval")
	}
}

// TestPossiblyWeakerThanDefinitely: Definitely(Φ) ⇒ Possibly(Φ), and there
// are executions where Possibly holds but Definitely does not (concurrent
// but non-overlapping-in-the-Eq.2-sense intervals).
func TestPossiblyWeakerThanDefinitely(t *testing.T) {
	// Two concurrent intervals with incomparable bounds in both directions:
	// Possibly holds; Definitely needs min(x) < max(y) strictly both ways.
	x := interval.New(0, 0, vclock.Of(1, 0), vclock.Of(2, 0))
	y := interval.New(1, 0, vclock.Of(0, 1), vclock.Of(0, 2))

	dp := NewPossibly([]int{0, 1})
	dp.OnInterval(0, x)
	if !dp.OnInterval(1, y) {
		t.Fatal("Possibly should hold")
	}
	dd := NewDefinitely([]int{0, 1})
	dd.OnInterval(0, x)
	if dd.OnInterval(1, y) {
		t.Fatal("Definitely should not hold for fully concurrent intervals")
	}
}

func TestOneShotValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"def-empty":   func() { NewDefinitely(nil) },
		"def-dup":     func() { NewDefinitely([]int{1, 1}) },
		"def-unknown": func() { NewDefinitely([]int{0}).OnInterval(5, interval.Interval{}) },
		"pos-empty":   func() { NewPossibly(nil) },
		"pos-dup":     func() { NewPossibly([]int{2, 2}) },
		"pos-unknown": func() { NewPossibly([]int{0}).OnInterval(5, interval.Interval{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDoneDetectorsIgnoreInput(t *testing.T) {
	d := NewDefinitely([]int{0})
	if !d.OnInterval(0, interval.New(0, 0, vclock.Of(1), vclock.Of(2))) {
		t.Fatal("singleton conjunction should detect immediately")
	}
	if d.OnInterval(0, interval.New(0, 1, vclock.Of(3), vclock.Of(4))) {
		t.Fatal("done detector fired again")
	}
	p := NewPossibly([]int{0})
	if !p.OnInterval(0, interval.New(0, 0, vclock.Of(1), vclock.Of(2))) {
		t.Fatal("singleton Possibly should detect immediately")
	}
	if p.OnInterval(0, interval.New(0, 1, vclock.Of(3), vclock.Of(4))) {
		t.Fatal("done Possibly fired again")
	}
}
