// Package procsim simulates the application processes whose execution the
// detectors observe. Each Process executes internal, send and receive events,
// maintains its vector clock by the three update rules of the system model
// (§II-A), and tracks its local predicate: every maximal run of events during
// which the predicate holds becomes one interval, bounded by the vector
// timestamps of the run's first and last events (min(x) and max(x), §II-B).
//
// Process is transport-agnostic: PrepareSend returns the timestamp to
// piggyback on an outgoing message, Receive consumes the timestamp of an
// incoming one. Drivers (internal/workload) sequence events either directly
// (scripted, deterministic executions for tests and benchmarks) or over
// internal/simnet.
package procsim

import (
	"fmt"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
)

// Process is one simulated application process. Not safe for concurrent use;
// a process's events are serialized by definition.
type Process struct {
	id int
	vc vclock.VC

	pred       bool      // current truth of the local predicate variable
	inInterval bool      // an interval is open
	lo         vclock.VC // timestamp of the open interval's first event
	lastTrue   vclock.VC // timestamp of the last event at which pred held
	seq        int       // intervals emitted so far

	emit   func(interval.Interval)
	events int

	value float64
	hook  func(vc vclock.VC, pred bool, value float64)
}

// New returns a process with identifier id in an n-process system. emit is
// called synchronously each time a local-predicate interval completes; nil
// discards intervals (useful when only the clocks matter).
func New(id, n int, emit func(interval.Interval)) *Process {
	if id < 0 || id >= n {
		panic(fmt.Sprintf("procsim: id %d out of range [0,%d)", id, n))
	}
	return &Process{id: id, vc: vclock.New(n), emit: emit}
}

// ID returns the process identifier.
func (p *Process) ID() int { return p.id }

// Clock returns a copy of the current vector clock.
func (p *Process) Clock() vclock.VC { return p.vc.Clone() }

// Events returns the number of events executed.
func (p *Process) Events() int { return p.events }

// Intervals returns the number of completed intervals.
func (p *Process) Intervals() int { return p.seq }

// SetPredicate updates the local predicate variable. The change is observed
// at the next event — predicate truth is a property of events, so an
// interval's bounds are always event timestamps.
func (p *Process) SetPredicate(v bool) { p.pred = v }

// SetValue updates the process's application variable (used by relational
// predicates); like the predicate, it is observed at the next event.
func (p *Process) SetValue(v float64) { p.value = v }

// Value returns the current application variable.
func (p *Process) Value() float64 { return p.value }

// SetEventHook registers f to run after every event with the event's
// timestamp and the local state at that event. internal/lattice's Recorder
// uses it to capture full executions for global-state-lattice detection.
func (p *Process) SetEventHook(f func(vc vclock.VC, pred bool, value float64)) {
	p.hook = f
}

// Predicate returns the current value of the local predicate variable.
func (p *Process) Predicate() bool { return p.pred }

// Internal executes an internal event (update rule 1).
func (p *Process) Internal() {
	p.vc.Tick(p.id)
	p.events++
	p.observe()
}

// PrepareSend executes a send event (update rule 2) and returns the
// timestamp to piggyback on the message.
func (p *Process) PrepareSend() vclock.VC {
	p.vc.Tick(p.id)
	p.events++
	p.observe()
	return p.vc.Clone()
}

// Receive executes a receive event for a message carrying timestamp stamp
// (update rule 3): component-wise max, then tick the local component.
func (p *Process) Receive(stamp vclock.VC) {
	p.vc.MergeMax(stamp)
	p.vc.Tick(p.id)
	p.events++
	p.observe()
}

// Finish closes an interval left open at the end of the execution, emitting
// it with the last true event as its upper bound and no falsifying event
// (Interval.Term stays nil). Idempotent.
func (p *Process) Finish() {
	if !p.inInterval {
		return
	}
	p.inInterval = false
	p.complete(nil)
}

// observe evaluates the predicate at the event just executed and maintains
// the open interval.
func (p *Process) observe() {
	if p.hook != nil {
		p.hook(p.vc.Clone(), p.pred, p.value)
	}
	switch {
	case p.pred && !p.inInterval:
		p.inInterval = true
		p.lo = p.vc.Clone()
		p.lastTrue = p.vc.Clone()
	case p.pred && p.inInterval:
		p.lastTrue = p.vc.Clone()
	case !p.pred && p.inInterval:
		p.inInterval = false
		p.complete(p.vc.Clone()) // the current event falsified the predicate
	}
}

func (p *Process) complete(term vclock.VC) {
	iv := interval.New(p.id, p.seq, p.lo, p.lastTrue)
	iv.Term = term
	p.seq++
	p.lo, p.lastTrue = nil, nil
	if p.emit != nil {
		p.emit(iv)
	}
}
