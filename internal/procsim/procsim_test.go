package procsim

import (
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
)

func TestClockRules(t *testing.T) {
	p0 := New(0, 2, nil)
	p1 := New(1, 2, nil)

	p0.Internal()
	if !p0.Clock().Equal(vclock.Of(1, 0)) {
		t.Fatalf("after internal: %v", p0.Clock())
	}
	stamp := p0.PrepareSend()
	if !stamp.Equal(vclock.Of(2, 0)) {
		t.Fatalf("send stamp: %v", stamp)
	}
	p1.Receive(stamp)
	if !p1.Clock().Equal(vclock.Of(2, 1)) {
		t.Fatalf("after receive: %v", p1.Clock())
	}
	if p0.Events() != 2 || p1.Events() != 1 {
		t.Fatalf("event counts: %d, %d", p0.Events(), p1.Events())
	}
}

func TestIntervalBounds(t *testing.T) {
	var got []interval.Interval
	p := New(0, 1, func(iv interval.Interval) { got = append(got, iv) })

	p.Internal() // vc=[1], pred false
	p.SetPredicate(true)
	p.Internal() // [2] first true event
	p.Internal() // [3]
	p.Internal() // [4] last true event
	p.SetPredicate(false)
	p.Internal() // [5] emits

	if len(got) != 1 {
		t.Fatalf("intervals = %d, want 1", len(got))
	}
	iv := got[0]
	if !iv.Lo.Equal(vclock.Of(2)) || !iv.Hi.Equal(vclock.Of(4)) {
		t.Fatalf("bounds %v..%v, want [2]..[4]", iv.Lo, iv.Hi)
	}
	if iv.Origin != 0 || iv.Seq != 0 {
		t.Fatalf("identity: %+v", iv)
	}
}

func TestSuccessiveIntervalsSatisfySucc(t *testing.T) {
	var got []interval.Interval
	p := New(0, 3, func(iv interval.Interval) { got = append(got, iv) })
	for i := 0; i < 5; i++ {
		p.SetPredicate(true)
		p.Internal()
		p.Internal()
		p.SetPredicate(false)
		p.Internal()
	}
	if len(got) != 5 {
		t.Fatalf("intervals = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !got[i-1].Hi.Less(got[i].Lo) {
			t.Fatalf("succ violated between intervals %d and %d", i-1, i)
		}
		if got[i].Seq != i {
			t.Fatalf("Seq = %d, want %d", got[i].Seq, i)
		}
	}
}

func TestSingleEventInterval(t *testing.T) {
	var got []interval.Interval
	p := New(0, 1, func(iv interval.Interval) { got = append(got, iv) })
	p.SetPredicate(true)
	p.Internal()
	p.SetPredicate(false)
	p.Internal()
	if len(got) != 1 {
		t.Fatalf("intervals = %d", len(got))
	}
	if !got[0].Lo.Equal(got[0].Hi) {
		t.Fatalf("single-event interval bounds differ: %v", got[0])
	}
}

func TestFinishClosesOpenInterval(t *testing.T) {
	var got []interval.Interval
	p := New(0, 1, func(iv interval.Interval) { got = append(got, iv) })
	p.SetPredicate(true)
	p.Internal()
	p.Finish()
	p.Finish() // idempotent
	if len(got) != 1 {
		t.Fatalf("intervals = %d, want 1", len(got))
	}
	if p.Intervals() != 1 {
		t.Fatalf("Intervals() = %d", p.Intervals())
	}
}

func TestPredicateChangeWithoutEventNotObserved(t *testing.T) {
	var got []interval.Interval
	p := New(0, 1, func(iv interval.Interval) { got = append(got, iv) })
	// Toggling the variable without events produces no interval: truth is
	// sampled at events only.
	p.SetPredicate(true)
	p.SetPredicate(false)
	p.Internal()
	p.Finish()
	if len(got) != 0 {
		t.Fatalf("intervals = %d, want 0", len(got))
	}
}

func TestCausalIntervalOverlapViaMessages(t *testing.T) {
	// Reproduce the synchronization pattern the workload generator uses for
	// a pulse: both processes start intervals, exchange acknowledgements
	// through a coordinator, then end — the intervals must overlap (Eq. 2).
	var ivs []interval.Interval
	emit := func(iv interval.Interval) { ivs = append(ivs, iv) }
	a := New(0, 2, emit)
	b := New(1, 2, emit)

	a.SetPredicate(true)
	a.Internal()
	b.SetPredicate(true)
	b.Internal()
	// Cross acknowledgements.
	sa := a.PrepareSend()
	sb := b.PrepareSend()
	a.Receive(sb)
	b.Receive(sa)
	a.SetPredicate(false)
	a.Internal()
	b.SetPredicate(false)
	b.Internal()

	if len(ivs) != 2 {
		t.Fatalf("intervals = %d", len(ivs))
	}
	if !interval.OverlapAll(ivs) {
		t.Fatalf("pulse intervals do not overlap: %v", ivs)
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range [][2]int{{-1, 3}, {3, 3}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			New(bad[0], bad[1], nil)
		}()
	}
}
