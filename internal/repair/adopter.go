package repair

// AdopterHost is the candidate-side runtime surface: queue surgery on the
// node's detector plus the shared transport.
type AdopterHost interface {
	// HasSource reports whether the node already maintains a queue for child
	// (a duplicate request must not create a second one).
	HasSource(child int) bool
	// Adopt creates the child's queue (core.Node.AddChild, fresh
	// resequencer, epoch bump) — the reservation backing a Grant. covered is
	// the subtree the request declared: a runtime with no global view seeds
	// its covered-set bookkeeping from it (the child's own heartbeats
	// refresh it); runtimes with an exact mirror may ignore it.
	Adopt(child int, covered []int)
	// Unadopt undoes a reservation whose request was aborted: drop the
	// child's queue again (core.Node.RemoveChild) and deliver any
	// detections the removal unblocked.
	Unadopt(child int)
	// Send ships a protocol message to a peer.
	Send(to int, m Msg)
}

// Adopter is the candidate side of the attach protocol: it decides adoption
// requests and tracks reservations until they confirm or abort. Like Seeker
// it is a plain state machine serialized by its host.
type Adopter struct {
	id           int
	host         AdopterHost
	reservations map[int]int  // reqID → reserved child
	aborted      map[int]bool // request ids whose abort overtook the request
}

// NewAdopter returns an adopter for node id.
func NewAdopter(id int, host AdopterHost) *Adopter {
	return &Adopter{
		id:           id,
		host:         host,
		reservations: make(map[int]int),
		aborted:      make(map[int]bool),
	}
}

// OnRequest decides whether this node can adopt the seeker's subtree and, if
// so, reserves the queue and grants. Rejection is by silence; the seeker's
// timeout moves it along. selfSeeking is whether this node is itself seeking
// a parent; rootSeeking whether the root of its current tree is (the flag a
// runtime propagates root-ward→leaf-ward, however it maintains it).
func (ad *Adopter) OnRequest(seeker int, m Msg, selfSeeking, rootSeeking bool) {
	if ad.aborted[m.ReqID] {
		return // the request's abort overtook it on the non-FIFO link
	}
	for _, p := range m.Covered {
		if p == ad.id {
			return // adopting my own ancestor would close a cycle
		}
	}
	if rootSeeking {
		return // my whole tree is dangling; adopting now could cycle
	}
	if selfSeeking && ad.id > seeker {
		return // among seekers, only the smaller id anchors the larger
	}
	if ad.host.HasSource(seeker) {
		return // duplicate request; the reservation already exists
	}
	ad.host.Adopt(seeker, m.Covered)
	ad.reservations[m.ReqID] = seeker
	ad.host.Send(seeker, Msg{Type: Grant, ReqID: m.ReqID})
}

// OnConfirm finalizes a reservation: the child is attached for good.
func (ad *Adopter) OnConfirm(m Msg) {
	delete(ad.reservations, m.ReqID)
}

// OnAbort releases a reservation (or blacklists a request id whose abort
// arrived first).
func (ad *Adopter) OnAbort(m Msg) {
	ad.aborted[m.ReqID] = true
	if child, ok := ad.reservations[m.ReqID]; ok {
		delete(ad.reservations, m.ReqID)
		ad.host.Unadopt(child)
	}
}

// Reserved returns the number of outstanding (granted, unconfirmed)
// reservations — a runtime metric.
func (ad *Adopter) Reserved() int { return len(ad.reservations) }
