package repair

// Epochs tracks reconfiguration epochs on a node's report streams. Theorem
// 2's succession guarantee (each aggregate starts causally after the previous
// one ended) holds only while the sender's source set is fixed, so after a
// repair changes it the sender bumps its outgoing epoch and the receiver
// resets the stream's queue and succession baseline — a correctness
// requirement the paper's §III-F leaves implicit, surfaced by this
// repository's randomized repair stress test.
//
// One Epochs instance serves both directions at a node: Stamp/Bump manage
// the epoch written on outgoing reports, Observe/Forget track the last seen
// epoch per child stream.
type Epochs struct {
	out         int
	bumpPending bool
	in          map[int]int
}

// NewEpochs returns a zeroed tracker. The zero Epochs value is also ready to
// use: the inbound map builds lazily on the first observed report.
func NewEpochs() *Epochs {
	return &Epochs{}
}

// Bump marks that this node's own source set changed (a child was added or
// removed): the next outgoing report starts a new epoch. Deferring the
// increment to Stamp coalesces repeated reconfigurations between reports.
func (e *Epochs) Bump() { e.bumpPending = true }

// Stamp returns the epoch to write on the next outgoing report, applying
// any pending bump first.
func (e *Epochs) Stamp() int {
	if e.bumpPending {
		e.out++
		e.bumpPending = false
	}
	return e.out
}

// Peek returns the epoch the next outgoing report will carry, without
// consuming a pending bump. Heartbeats carry the epoch for observability but
// must not perturb when the bump lands on the report stream, so they peek
// where reports stamp.
func (e *Epochs) Peek() int {
	if e.bumpPending {
		return e.out + 1
	}
	return e.out
}

// Observe ingests the epoch of an in-order report from src and reports
// whether the sender's stream restarted. When it returns true the caller
// must discard the queued remainder of the old stream
// (core.Node.ResetSource); this node's own output stream restarts in turn —
// Observe records the bump itself.
func (e *Epochs) Observe(src, epoch int) (restarted bool) {
	last, seen := e.in[src]
	if e.in == nil {
		e.in = make(map[int]int)
	}
	e.in[src] = epoch
	if seen && epoch > last {
		e.bumpPending = true
		return true
	}
	return false
}

// Forget drops the inbound tracking state of a removed (or freshly
// re-adopted) source: the next report from it becomes the new baseline.
func (e *Epochs) Forget(src int) { delete(e.in, src) }
