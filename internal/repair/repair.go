// Package repair holds the runtime-independent half of the paper's §III-F
// fault-tolerance machinery: the three-way orphan-reattachment protocol
// (request → grant → confirm, with aborts for timeouts and stale grants),
// the reconfiguration-epoch bookkeeping that keeps Theorem 2's succession
// guarantee across tree repairs, and the per-link resequencer that restores
// queue order over non-FIFO channels.
//
// Two runtimes drive this package: internal/monitor runs it over the
// deterministic discrete-event simulator, internal/livenet over real
// goroutines and channels. Both implement the small host interfaces below
// and route protocol messages through their own transport; the decisions —
// who adopts whom, when a stream restarts, which core.Node queues are
// created, reset and dropped — come from here, so the two runtimes cannot
// drift apart.
//
// Protocol (one outstanding request per seeker):
//
//	seeker   → candidate : Msg{Req, reqID, covered}
//	candidate→ seeker    : Msg{Grant, reqID}    (candidate reserves a queue)
//	seeker   → candidate : Msg{Confirm, reqID}  (adoption final)
//	seeker   → candidate : Msg{Abort, reqID}    (timeout/stale grant: undo)
//
// A candidate rejects (by silence — the seeker's timeout advances it) when:
//   - it lies inside the seeker's subtree (it appears in Msg.Covered), or
//   - its own tree root is currently seeking, which prevents two orphan
//     subtrees from adopting into each other and forming a cycle, or
//   - it is itself seeking and has the larger id — among simultaneous
//     seekers, grants always point from larger to smaller id, so the "grant
//     graph" is acyclic and the smallest orphan anchors the rest.
//
// A seeker cycles through its live neighbours (ascending id), waits one
// timeout per candidate, and after MaxSeekRounds full passes declares itself
// a partition root and continues detecting the partial predicate over its
// own subtree.
//
// Abort/request reordering over the non-FIFO links is handled with request
// ids: a candidate remembers aborted ids and rejects their late requests.
package repair

import "fmt"

// MaxSeekRounds is how many full passes over its candidate list a seeker
// makes before declaring itself a partition root.
const MaxSeekRounds = 3

// MsgType labels an attach-protocol message.
type MsgType int

const (
	// Req asks a candidate to adopt the seeker's subtree.
	Req MsgType = iota
	// Grant reserves the adoption at the candidate.
	Grant
	// Confirm finalizes the adoption.
	Confirm
	// Abort undoes a reservation (timeout or stale grant).
	Abort
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case Req:
		return "req"
	case Grant:
		return "grant"
	case Confirm:
		return "confirm"
	case Abort:
		return "abort"
	default:
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
}

// Msg is one attach-protocol message.
type Msg struct {
	Type  MsgType
	ReqID int
	// Covered is the seeker's subtree (Req only): a candidate inside it must
	// not adopt, or the tree would close a cycle.
	Covered []int
}
