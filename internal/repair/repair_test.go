package repair

import (
	"reflect"
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
)

// --- Resequencer ---

func rep(seq int) Report {
	lo, hi := vclock.New(1), vclock.New(1)
	return Report{Iv: interval.New(0, seq, lo, hi), LinkSeq: seq}
}

func seqs(rs []Report) []int {
	out := []int{}
	for _, r := range rs {
		out = append(out, r.LinkSeq)
	}
	return out
}

func TestResequencerOrdersAndFillsGaps(t *testing.T) {
	q := NewResequencer()
	if got := seqs(q.Accept(rep(2))); len(got) != 0 {
		t.Fatalf("early 2 delivered %v", got)
	}
	if got := seqs(q.Accept(rep(0))); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("0 delivered %v", got)
	}
	if got := seqs(q.Accept(rep(1))); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("1 delivered %v, want [1 2]", got)
	}
	if q.Buffered() != 0 {
		t.Fatalf("buffered = %d", q.Buffered())
	}
}

func TestResequencerDropsDuplicates(t *testing.T) {
	q := NewResequencer()
	// Duplicate of a buffered (not yet delivered) report: seq >= next.
	q.Accept(rep(1))
	if got := seqs(q.Accept(rep(1))); len(got) != 0 {
		t.Fatalf("buffered duplicate delivered %v", got)
	}
	if q.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", q.Dropped())
	}
	// Filling the gap delivers each seq exactly once.
	if got := seqs(q.Accept(rep(0))); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("delivered %v, want [0 1]", got)
	}
	// Duplicate below the frontier.
	if got := seqs(q.Accept(rep(1))); len(got) != 0 {
		t.Fatalf("late duplicate delivered %v", got)
	}
	if q.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", q.Dropped())
	}
}

// TestResequencerRedeliveryStream hammers a random redelivery pattern and
// asserts the delivered stream is exactly 0..n-1, duplicate-free, in order.
func TestResequencerRedeliveryStream(t *testing.T) {
	q := NewResequencer()
	// Every seq delivered twice, second copies interleaved out of order.
	arrivals := []int{1, 1, 0, 0, 3, 2, 3, 2, 4, 4, 1, 0}
	var delivered []int
	for _, s := range arrivals {
		delivered = append(delivered, seqs(q.Accept(rep(s)))...)
	}
	if !reflect.DeepEqual(delivered, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("delivered %v, want [0 1 2 3 4]", delivered)
	}
}

// --- Epochs ---

func TestEpochsStampAndBump(t *testing.T) {
	e := NewEpochs()
	if e.Stamp() != 0 {
		t.Fatal("fresh tracker should stamp epoch 0")
	}
	e.Bump()
	e.Bump() // coalesces
	if e.Stamp() != 1 {
		t.Fatal("one reconfiguration burst should advance the epoch once")
	}
	if e.Stamp() != 1 {
		t.Fatal("stamp must be stable between reconfigurations")
	}
}

func TestEpochsObserve(t *testing.T) {
	e := NewEpochs()
	if e.Observe(7, 0) {
		t.Fatal("first report from a source is the baseline, not a restart")
	}
	if e.Observe(7, 0) {
		t.Fatal("same epoch is not a restart")
	}
	if !e.Observe(7, 1) {
		t.Fatal("epoch advance must report a restart")
	}
	// The restart bumps this node's own output epoch.
	if e.Stamp() != 1 {
		t.Fatal("observed restart must cascade into the output epoch")
	}
	e.Forget(7)
	if e.Observe(7, 5) {
		t.Fatal("after Forget the next epoch is a fresh baseline")
	}
}

// --- Seeker/Adopter over an in-memory host ---

// memNet wires Seekers and Adopters of a toy node set directly to each
// other, recording timer requests instead of scheduling them, so tests
// single-step the protocol deterministically.
type memNet struct {
	t     *testing.T
	nodes map[int]*memNode
	reqID int
}

type memNode struct {
	net     *memNet
	id      int
	seeker  *Seeker
	adopter *Adopter

	parent      int // -1 = root
	children    map[int]bool
	candidates  []int
	covered     []int
	timeouts    []int // armed reqIDs, in order
	backoffs    []int
	attached    []int // granters successfully attached to
	partitioned bool
	cycleWith   map[int]bool // granters TryAttach must refuse
	rootSeeking bool
}

func newMemNet(t *testing.T, ids ...int) *memNet {
	n := &memNet{t: t, nodes: make(map[int]*memNode)}
	for _, id := range ids {
		mn := &memNode{net: n, id: id, parent: -1, children: make(map[int]bool), cycleWith: make(map[int]bool)}
		mn.seeker = NewSeeker(id, mn)
		mn.adopter = NewAdopter(id, mn)
		n.nodes[id] = mn
	}
	return n
}

func (m *memNode) Candidates() []int { return m.candidates }
func (m *memNode) Covered() []int    { return m.covered }
func (m *memNode) NextReqID() int    { m.net.reqID++; return m.net.reqID }
func (m *memNode) ArmTimeout(reqID int) {
	m.timeouts = append(m.timeouts, reqID)
}
func (m *memNode) ArmBackoff(round int) {
	m.backoffs = append(m.backoffs, round)
}
func (m *memNode) TryAttach(granter int) bool {
	if m.cycleWith[granter] {
		return false
	}
	m.parent = granter
	return true
}
func (m *memNode) Attached(granter int)     { m.attached = append(m.attached, granter) }
func (m *memNode) Partitioned()             { m.partitioned = true }
func (m *memNode) HasSource(child int) bool { return m.children[child] }
func (m *memNode) Adopt(child int, _ []int) { m.children[child] = true }
func (m *memNode) Unadopt(child int)        { delete(m.children, child) }

// Send delivers synchronously — the protocol must tolerate that degenerate
// (zero-delay, FIFO) schedule too.
func (m *memNode) Send(to int, msg Msg) {
	dst := m.net.nodes[to]
	if dst == nil {
		return
	}
	switch msg.Type {
	case Req:
		dst.adopter.OnRequest(m.id, msg, dst.seeker.Seeking(), dst.rootSeeking)
	case Grant:
		dst.seeker.OnGrant(m.id, msg)
	case Confirm:
		dst.adopter.OnConfirm(msg)
	case Abort:
		dst.adopter.OnAbort(msg)
	}
}

func TestSeekerAdoptsFirstWillingCandidate(t *testing.T) {
	net := newMemNet(t, 1, 2)
	s, c := net.nodes[1], net.nodes[2]
	s.candidates = []int{2}
	s.covered = []int{1}
	s.seeker.Start()
	if s.parent != 2 || len(s.attached) != 1 {
		t.Fatalf("seeker did not attach: parent=%d attached=%v", s.parent, s.attached)
	}
	if !c.children[1] {
		t.Fatal("candidate did not keep the adopted child")
	}
	if c.adopter.Reserved() != 0 {
		t.Fatal("confirm must clear the reservation")
	}
	if s.seeker.Seeking() {
		t.Fatal("seeker still seeking after adoption")
	}
}

func TestCandidateInsideCoveredSetRefuses(t *testing.T) {
	net := newMemNet(t, 1, 2)
	s, c := net.nodes[1], net.nodes[2]
	s.candidates = []int{2}
	s.covered = []int{1, 2} // candidate is in the seeker's own subtree
	s.seeker.Start()
	if s.parent != -1 || c.children[1] {
		t.Fatal("covered candidate must reject by silence")
	}
	if len(s.timeouts) != 1 {
		t.Fatalf("timeouts armed = %v, want one", s.timeouts)
	}
	// The timeout advances the seeker; the list is exhausted → backoff.
	s.seeker.OnTimeout(s.timeouts[0])
	if len(s.backoffs) != 1 {
		t.Fatalf("backoffs = %v, want one", s.backoffs)
	}
}

func TestSeekerPartitionsAfterMaxRounds(t *testing.T) {
	net := newMemNet(t, 1)
	s := net.nodes[1]
	s.candidates = nil // nobody to ask
	s.seeker.Start()
	for i := 0; !s.partitioned; i++ {
		if i > 2*MaxSeekRounds {
			t.Fatal("seeker never partitioned")
		}
		if len(s.backoffs) == 0 {
			t.Fatal("no backoff armed while not partitioned")
		}
		round := s.backoffs[len(s.backoffs)-1]
		s.seeker.OnBackoff(round)
	}
	if s.seeker.Seeking() {
		t.Fatal("partitioned seeker still seeking")
	}
}

func TestSimultaneousSeekersSmallestAnchors(t *testing.T) {
	net := newMemNet(t, 1, 2)
	a, b := net.nodes[1], net.nodes[2]
	a.candidates, a.covered = []int{2}, []int{1}
	b.candidates, b.covered = []int{1}, []int{2}
	// Both orphans seek: mark both seeking before any request lands by
	// starting with empty candidate lists... instead, start b first so its
	// request reaches a while a is idle, then start a.
	// To model *simultaneous* seeking, force both into seeking state:
	a.seeker.Start() // a asks 2: b not yet seeking, b adopts a? No — start order matters.
	// a attached under b already (b was idle). Reset and do the real check:
	// a seeking, then b seeking, then b's request hits a.
	net = newMemNet(t, 1, 2)
	a, b = net.nodes[1], net.nodes[2]
	a.candidates, a.covered = []int{9}, []int{1} // 9 does not exist: a stays seeking
	b.candidates, b.covered = []int{1}, []int{2}
	a.seeker.Start()
	if !a.seeker.Seeking() {
		t.Fatal("a should be stuck seeking")
	}
	b.seeker.Start() // b asks a; a seeking with smaller id ⇒ a adopts b
	if b.parent != 1 {
		t.Fatalf("b.parent = %d, want 1 (smallest orphan anchors)", b.parent)
	}
	// Mirror case: the larger-id seeker must refuse.
	net = newMemNet(t, 1, 2)
	a, b = net.nodes[1], net.nodes[2]
	a.candidates, a.covered = []int{2}, []int{1}
	b.candidates, b.covered = []int{9}, []int{2}
	b.seeker.Start()
	a.seeker.Start() // a asks b; b seeking with larger id ⇒ silence
	if a.parent != -1 {
		t.Fatalf("a attached under %d; larger-id seeker must refuse", a.parent)
	}
}

func TestRootSeekingCandidateRefuses(t *testing.T) {
	net := newMemNet(t, 1, 2)
	s, c := net.nodes[1], net.nodes[2]
	s.candidates, s.covered = []int{2}, []int{1}
	c.rootSeeking = true
	s.seeker.Start()
	if s.parent != -1 || c.children[1] {
		t.Fatal("candidate in a dangling tree must refuse")
	}
}

func TestStaleGrantAborted(t *testing.T) {
	net := newMemNet(t, 1, 2)
	s, c := net.nodes[1], net.nodes[2]
	c.adopter.OnRequest(1, Msg{Type: Req, ReqID: 42, Covered: []int{1}}, false, false)
	// The grant was sent synchronously to node 1, whose seeker is idle — a
	// stale grant. It must have been answered with an abort that released
	// the reservation.
	if c.adopter.Reserved() != 0 {
		t.Fatal("stale grant's reservation not released")
	}
	if c.children[1] {
		t.Fatal("aborted adoption left the child queue behind")
	}
	_ = s
}

func TestAbortOvertakesRequest(t *testing.T) {
	net := newMemNet(t, 1, 2)
	c := net.nodes[2]
	c.adopter.OnAbort(Msg{Type: Abort, ReqID: 7})
	c.adopter.OnRequest(1, Msg{Type: Req, ReqID: 7, Covered: []int{1}}, false, false)
	if c.children[1] || c.adopter.Reserved() != 0 {
		t.Fatal("request whose abort overtook it must be rejected")
	}
}

func TestCycleValidationAbortsAndMovesOn(t *testing.T) {
	net := newMemNet(t, 1, 2, 3)
	s := net.nodes[1]
	s.candidates, s.covered = []int{2, 3}, []int{1}
	s.cycleWith[2] = true // the mirror says attaching under 2 would cycle
	s.seeker.Start()
	if s.parent != 3 {
		t.Fatalf("seeker attached under %d, want 3 after aborting the cyclic grant", s.parent)
	}
	if net.nodes[2].children[1] {
		t.Fatal("aborted granter kept the child queue")
	}
	if !net.nodes[3].children[1] {
		t.Fatal("second candidate lost the child queue")
	}
}
