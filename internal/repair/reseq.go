package repair

import "hierdet/internal/interval"

// Report is one resequenced child→parent aggregate report. LinkSeq is a
// per-link counter (restarting at zero on every adoption) that lets the
// receiver restore queue order over a non-FIFO channel; Epoch counts the
// sender's subtree reconfigurations (see Epochs).
type Report struct {
	Iv      interval.Interval
	LinkSeq int
	Epoch   int
}

// Resequencer restores per-sender order over a non-FIFO link: reports carry
// consecutive LinkSeq numbers starting at zero; out-of-order arrivals are
// buffered and released in order, each with its own metadata (epoch).
// Duplicates — sequence numbers below the delivery frontier, or already
// buffered — are dropped, so redelivery (e.g. a transport retry) can never
// deliver a report twice or out of order.
type Resequencer struct {
	next    int
	pending map[int]Report
	dropped int
}

// NewResequencer returns an empty resequencer expecting sequence 0. The
// pending map builds lazily on the first out-of-order arrival — an in-order
// link never allocates it.
func NewResequencer() *Resequencer {
	return &Resequencer{}
}

// Accept ingests one report and returns the (possibly empty) batch now
// deliverable in order.
func (q *Resequencer) Accept(r Report) []Report {
	return q.AcceptInto(r, nil)
}

// AcceptInto is Accept with a caller-owned result buffer: deliverable
// reports are appended to out and the extended slice returned. The steady
// state is in-order arrival releasing exactly one report per call, so the
// hot path reuses one scratch slice per link instead of allocating a
// single-element slice per report, and skips the pending map entirely when
// nothing is buffered.
func (q *Resequencer) AcceptInto(r Report, out []Report) []Report {
	if r.LinkSeq < q.next {
		q.dropped++
		return out // duplicate: already delivered
	}
	if r.LinkSeq == q.next && len(q.pending) == 0 {
		q.next++ // in order, nothing buffered: deliver without touching the map
		return append(out, r)
	}
	if _, dup := q.pending[r.LinkSeq]; dup {
		q.dropped++
		return out // duplicate: already buffered, keep the first copy
	}
	if q.pending == nil {
		q.pending = make(map[int]Report)
	}
	q.pending[r.LinkSeq] = r
	for {
		next, ok := q.pending[q.next]
		if !ok {
			return out
		}
		delete(q.pending, q.next)
		q.next++
		out = append(out, next)
	}
}

// Buffered returns the number of reports held back waiting for a gap.
func (q *Resequencer) Buffered() int { return len(q.pending) }

// Dropped returns the number of duplicate reports discarded.
func (q *Resequencer) Dropped() int { return q.dropped }
