package repair

// SeekerHost is what a runtime provides to a Seeker. All methods are invoked
// synchronously from the Seeker entry points, on whatever goroutine (or
// simulated process) drives them; the host owns transport, timers and the
// actual tree surgery.
type SeekerHost interface {
	// Candidates returns the node's live neighbours outside its own subtree,
	// ascending. Called at the start of every pass over the candidate list.
	Candidates() []int
	// Covered returns the node's current subtree (itself included), sorted.
	// It rides on every request so candidates inside the subtree can refuse.
	Covered() []int
	// NextReqID returns a fresh, never-reused request id.
	NextReqID() int
	// Send ships a protocol message to a peer.
	Send(to int, m Msg)
	// ArmTimeout schedules a call to Seeker.OnTimeout(reqID) after the
	// runtime's seek timeout.
	ArmTimeout(reqID int)
	// ArmBackoff schedules a call to Seeker.OnBackoff(round) after one seek
	// timeout — the pause between full passes over the candidate list.
	ArmBackoff(round int)
	// TryAttach validates a grant and, if the adoption is still safe,
	// performs it: repoint the node's parent at granter and restart the
	// report link. It returns false when attaching would close a cycle (the
	// covered sets in requests can lag behind concurrent repairs) or the
	// granter has died; the seeker then aborts the grant and moves on.
	TryAttach(granter int) bool
	// Attached runs after a successful adoption was confirmed to the
	// granter: resend-last-aggregate recovery, repair callbacks.
	Attached(granter int)
	// Partitioned runs when every pass failed: the node stays a root and
	// keeps detecting the partial predicate over its own subtree.
	Partitioned()
}

// seekState tracks one in-progress reattachment.
type seekState struct {
	reqID      int
	candidates []int
	idx        int
	round      int
	current    int // candidate the outstanding request went to
}

// Seeker is the orphan-subtree-root side of the attach protocol. It is a
// plain state machine: the host calls Start when the node's parent was
// confirmed dead, routes incoming Grant messages to OnGrant, and fires
// OnTimeout/OnBackoff from the timers it armed. Not safe for concurrent use;
// the host serializes calls (the simulator by construction, livenet on the
// node's goroutine).
type Seeker struct {
	id   int
	host SeekerHost
	s    *seekState
}

// NewSeeker returns a seeker for node id.
func NewSeeker(id int, host SeekerHost) *Seeker {
	return &Seeker{id: id, host: host}
}

// Seeking reports whether a reattachment is in progress.
func (k *Seeker) Seeking() bool { return k.s != nil }

// Start begins the reattachment protocol. It is a no-op when one is already
// in progress.
func (k *Seeker) Start() {
	if k.s != nil {
		return
	}
	k.s = &seekState{reqID: -1, current: -1}
	k.next()
}

// next sends the next attach request, or handles list/round exhaustion.
func (k *Seeker) next() {
	s := k.s
	if s.idx == 0 {
		s.candidates = k.host.Candidates()
	}
	if s.idx >= len(s.candidates) {
		s.round++
		s.idx = 0
		if s.round >= MaxSeekRounds {
			// No one can adopt this subtree: operate as a partition root
			// and keep detecting the partial predicate (paper §III-F).
			k.s = nil
			k.host.Partitioned()
			return
		}
		// Back off one timeout and re-scan: anchored adopters may appear as
		// other seekers finish.
		k.host.ArmBackoff(s.round)
		return
	}
	s.reqID = k.host.NextReqID()
	s.current = s.candidates[s.idx]
	s.idx++
	k.host.Send(s.current, Msg{Type: Req, ReqID: s.reqID, Covered: k.host.Covered()})
	k.host.ArmTimeout(s.reqID)
}

// OnGrant finalizes (or aborts) an adoption at the seeker.
func (k *Seeker) OnGrant(granter int, m Msg) {
	s := k.s
	if s == nil || m.ReqID != s.reqID {
		// Stale grant from a timed-out attempt: release the reservation.
		k.host.Send(granter, Msg{Type: Abort, ReqID: m.ReqID})
		return
	}
	if !k.host.TryAttach(granter) {
		k.host.Send(granter, Msg{Type: Abort, ReqID: m.ReqID})
		k.next()
		return
	}
	k.s = nil
	k.host.Send(granter, Msg{Type: Confirm, ReqID: m.ReqID})
	k.host.Attached(granter)
}

// OnTimeout advances the seeker past an unresponsive candidate.
func (k *Seeker) OnTimeout(reqID int) {
	s := k.s
	if s == nil || reqID != s.reqID {
		return // the attempt already concluded
	}
	k.host.Send(s.current, Msg{Type: Abort, ReqID: reqID})
	k.next()
}

// OnBackoff resumes scanning after a between-rounds pause. Stale backoffs
// (the seeker concluded, or already moved on) are ignored.
func (k *Seeker) OnBackoff(round int) {
	if s := k.s; s != nil && s.round == round {
		k.next()
	}
}
