package replay

// Binary trace codec. The format follows the internal/wire conventions:
// magic-then-version framing, little-endian varints, zig-zag for signed
// fields, explicit pre-allocation caps on every count a frame claims, and
// every decode error wrapping wire.ErrCorrupt or wire.ErrTruncated so
// callers (and the fuzz harness) can classify failures without string
// matching.
//
// Layout, all fields in order:
//
//	trace := magic "HDTR" | version u8 (1) |
//	         nNodes uv | parent zz[nNodes] | flags u8 |
//	         planeLen uv | plane bytes |
//	         rounds uv | wlSeed zz | pGlobal f64 | pGroup f64 | pSubset f64 |
//	         maxDelay uv | hbEvery uv | hbTimeout uv | seekTimeout uv |
//	         deliverySeed zz |
//	         nSteps uv | step[nSteps] |
//	         nEvents uv | event[nEvents] |
//	         nDetections uv | outcomeLen uv | outcome bytes
//
//	step  := kind u8 | (observe: lo uv, hi−lo uv) (kill: node uv) | Δat zz
//	event := kind u8 | node zz | peer zz | seq zz | count zz | atRoot u8 | Δat zz
//
// Durations and probabilities travel as uvarint nanoseconds and IEEE-754
// bits respectively; Δat is the zig-zag delta from the previous entry's At
// (the streams are near-monotone, so deltas stay short). The codec is
// self-contained per trace — no cross-trace state, unlike the wire
// package's basis-relative report chaining.

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"time"

	"hierdet/internal/tree"
	"hierdet/internal/wire"
)

// traceMagic opens every trace file; traceVersion is the current format.
var traceMagic = [4]byte{'H', 'D', 'T', 'R'}

const traceVersion = 1

// Format caps: decoders refuse counts beyond these before allocating, so a
// corrupt or adversarial header cannot demand gigabytes (the wire.MaxSpan
// discipline).
const (
	maxTraceNodes  = 1 << 20
	maxTraceSteps  = 1 << 20
	maxTraceEvents = 1 << 26
	maxTracePlane  = 64
	maxOutcomeLen  = 1 << 28
)

// AppendTrace appends the binary encoding of t to dst and returns the
// extended buffer.
func AppendTrace(dst []byte, t *Trace) []byte {
	dst = append(dst, traceMagic[:]...)
	dst = append(dst, traceVersion)
	dst = binary.AppendUvarint(dst, uint64(len(t.Parents)))
	for _, p := range t.Parents {
		dst = binary.AppendVarint(dst, int64(p))
	}
	var flags byte
	if t.TreeLinksOnly {
		flags |= 1 << 0
	}
	if t.Deterministic {
		flags |= 1 << 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(t.Plane)))
	dst = append(dst, t.Plane...)
	dst = binary.AppendUvarint(dst, uint64(t.Workload.Rounds))
	dst = binary.AppendVarint(dst, t.Workload.Seed)
	for _, p := range [3]float64{t.Workload.PGlobal, t.Workload.PGroup, t.Workload.PSubset} {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p))
	}
	for _, d := range [4]time.Duration{t.MaxDelay, t.HbEvery, t.HbTimeout, t.SeekTimeout} {
		dst = binary.AppendUvarint(dst, uint64(d))
	}
	dst = binary.AppendVarint(dst, t.DeliverySeed)
	dst = binary.AppendUvarint(dst, uint64(len(t.Schedule)))
	prev := int64(0)
	for _, s := range t.Schedule {
		dst = append(dst, byte(s.Kind))
		switch s.Kind {
		case StepObserve:
			dst = binary.AppendUvarint(dst, uint64(s.Lo))
			dst = binary.AppendUvarint(dst, uint64(s.Hi-s.Lo))
		case StepKill:
			dst = binary.AppendUvarint(dst, uint64(s.Node))
		}
		dst = binary.AppendVarint(dst, s.At-prev)
		prev = s.At
	}
	dst = binary.AppendUvarint(dst, uint64(len(t.Events)))
	prev = 0
	for _, e := range t.Events {
		dst = append(dst, e.Kind)
		dst = binary.AppendVarint(dst, int64(e.Node))
		dst = binary.AppendVarint(dst, int64(e.Peer))
		dst = binary.AppendVarint(dst, int64(e.Seq))
		dst = binary.AppendVarint(dst, int64(e.Count))
		if e.AtRoot {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = binary.AppendVarint(dst, e.At-prev)
		prev = e.At
	}
	dst = binary.AppendUvarint(dst, uint64(t.Detections))
	dst = binary.AppendUvarint(dst, uint64(len(t.Outcome)))
	dst = append(dst, t.Outcome...)
	return dst
}

// DecodeTrace parses a binary trace. Every error wraps wire.ErrCorrupt or
// wire.ErrTruncated.
func DecodeTrace(data []byte) (*Trace, error) {
	d := decoder{rest: data}
	if len(d.rest) < len(traceMagic)+1 {
		return nil, fmt.Errorf("replay: trace header: %w", wire.ErrTruncated)
	}
	if [4]byte(d.rest[:4]) != traceMagic {
		return nil, fmt.Errorf("replay: bad trace magic %q: %w", d.rest[:4], wire.ErrCorrupt)
	}
	if v := d.rest[4]; v != traceVersion {
		return nil, fmt.Errorf("replay: trace version %d (have %d): %w", v, traceVersion, wire.ErrCorrupt)
	}
	d.rest = d.rest[5:]

	t := &Trace{}
	n := d.count("node count", maxTraceNodes)
	if d.err == nil && n > 0 {
		t.Parents = make([]int, n)
		for i := range t.Parents {
			p := d.zigzag("parent")
			if d.err == nil && (p < tree.None || p >= int64(n) || p == int64(i)) {
				d.fail("parent %d of node %d in a %d-node tree: %w", p, i, n, wire.ErrCorrupt)
			}
			t.Parents[i] = int(p)
		}
	}
	flags := d.byte("flags")
	if d.err == nil && flags&^byte(0b11) != 0 {
		d.fail("trace flags 0x%02x: %w", flags, wire.ErrCorrupt)
	}
	t.TreeLinksOnly = flags&(1<<0) != 0
	t.Deterministic = flags&(1<<1) != 0

	planeLen := d.count("plane name length", maxTracePlane)
	if d.err == nil {
		if len(d.rest) < int(planeLen) {
			d.fail("plane name: %w", wire.ErrTruncated)
		} else {
			t.Plane = string(d.rest[:planeLen])
			d.rest = d.rest[planeLen:]
		}
	}

	t.Workload.Rounds = int(d.count("round count", maxTraceSteps))
	t.Workload.Seed = d.zigzag("workload seed")
	probs := [3]*float64{&t.Workload.PGlobal, &t.Workload.PGroup, &t.Workload.PSubset}
	sum := 0.0
	for i, p := range probs {
		*p = d.float("workload probability")
		if d.err == nil && (math.IsNaN(*p) || *p < 0 || *p > 1) {
			d.fail("workload probability %d = %v: %w", i, *p, wire.ErrCorrupt)
		}
		sum += *p
	}
	if d.err == nil && sum > 1 {
		d.fail("workload probabilities sum to %v: %w", sum, wire.ErrCorrupt)
	}
	for _, dur := range [4]*time.Duration{&t.MaxDelay, &t.HbEvery, &t.HbTimeout, &t.SeekTimeout} {
		*dur = time.Duration(d.duration("delivery knob"))
	}
	t.DeliverySeed = d.zigzag("delivery seed")

	nSteps := d.count("step count", maxTraceSteps)
	if d.err == nil && nSteps > uint64(len(d.rest)) {
		d.fail("%d steps in %d bytes: %w", nSteps, len(d.rest), wire.ErrTruncated)
	}
	if d.err == nil && nSteps > 0 {
		t.Schedule = make([]Step, 0, nSteps)
		at := int64(0)
		for i := uint64(0); i < nSteps && d.err == nil; i++ {
			s := Step{Kind: StepKind(d.byte("step kind"))}
			switch s.Kind {
			case StepObserve:
				s.Lo = int(d.count("step lo", maxTraceSteps))
				s.Hi = s.Lo + int(d.count("step span", maxTraceSteps))
				if d.err == nil && s.Hi > t.Workload.Rounds {
					d.fail("observe step [%d,%d) of %d rounds: %w", s.Lo, s.Hi, t.Workload.Rounds, wire.ErrCorrupt)
				}
			case StepKill:
				s.Node = int(d.count("kill victim", maxTraceNodes))
				if d.err == nil && s.Node >= int(n) {
					d.fail("kill of node %d in a %d-node tree: %w", s.Node, n, wire.ErrCorrupt)
				}
			default:
				if d.err == nil {
					d.fail("step kind %d: %w", s.Kind, wire.ErrCorrupt)
				}
			}
			at += d.zigzag("step offset")
			s.At = at
			t.Schedule = append(t.Schedule, s)
		}
	}

	nEvents := d.count("event count", maxTraceEvents)
	if d.err == nil && nEvents > uint64(len(d.rest)) {
		d.fail("%d events in %d bytes: %w", nEvents, len(d.rest), wire.ErrTruncated)
	}
	if d.err == nil && nEvents > 0 {
		t.Events = make([]EventRec, 0, nEvents)
		at := int64(0)
		for i := uint64(0); i < nEvents && d.err == nil; i++ {
			e := EventRec{Kind: d.byte("event kind")}
			if d.err == nil && (e.Kind == 0 || int(e.Kind) >= 1<<7) {
				d.fail("event kind %d: %w", e.Kind, wire.ErrCorrupt)
			}
			e.Node = int(d.zigzag("event node"))
			e.Peer = int(d.zigzag("event peer"))
			e.Seq = int(d.zigzag("event seq"))
			e.Count = int(d.zigzag("event count"))
			switch d.byte("event atRoot") {
			case 0:
			case 1:
				e.AtRoot = true
			default:
				if d.err == nil {
					d.fail("event atRoot byte: %w", wire.ErrCorrupt)
				}
			}
			at += d.zigzag("event offset")
			e.At = at
			t.Events = append(t.Events, e)
		}
	}

	t.Detections = int(d.count("detection count", maxTraceEvents))
	outLen := d.count("outcome length", maxOutcomeLen)
	if d.err == nil {
		if len(d.rest) < int(outLen) {
			d.fail("outcome blob: %w", wire.ErrTruncated)
		} else {
			if outLen > 0 {
				t.Outcome = append([]byte(nil), d.rest[:outLen]...)
			}
			d.rest = d.rest[outLen:]
		}
	}
	if d.err == nil && len(d.rest) != 0 {
		d.fail("%d trailing bytes: %w", len(d.rest), wire.ErrCorrupt)
	}
	if d.err != nil {
		return nil, d.err
	}
	return t, nil
}

// WriteFile atomically writes t's encoding to path (write to a sibling temp
// file, then rename), so a crashed recorder never leaves a half trace where
// a soak harness would try to replay it.
func WriteFile(path string, t *Trace) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, AppendTrace(nil, t), 0o644); err != nil {
		return fmt.Errorf("replay: write trace: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("replay: write trace: %w", err)
	}
	return nil
}

// ReadFile reads and decodes a trace file written by WriteFile.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("replay: read trace: %w", err)
	}
	return DecodeTrace(data)
}

// decoder carries the cursor and the first error through a decode, so the
// field readers stay one-liners at the call sites.
type decoder struct {
	rest []byte
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("replay: "+format, args...)
	}
}

func (d *decoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.rest) == 0 {
		d.fail("%s: %w", what, wire.ErrTruncated)
		return 0
	}
	b := d.rest[0]
	d.rest = d.rest[1:]
	return b
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, sz := binary.Uvarint(d.rest)
	if sz <= 0 {
		if sz == 0 {
			d.fail("%s: %w", what, wire.ErrTruncated)
		} else {
			d.fail("%s overflows varint: %w", what, wire.ErrCorrupt)
		}
		return 0
	}
	d.rest = d.rest[sz:]
	return v
}

// count reads a uvarint that sizes an allocation and enforces its cap.
func (d *decoder) count(what string, limit uint64) uint64 {
	v := d.uvarint(what)
	if d.err == nil && v > limit {
		d.fail("%s %d exceeds cap %d: %w", what, v, limit, wire.ErrCorrupt)
		return 0
	}
	return v
}

func (d *decoder) zigzag(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, sz := binary.Varint(d.rest)
	if sz <= 0 {
		if sz == 0 {
			d.fail("%s: %w", what, wire.ErrTruncated)
		} else {
			d.fail("%s overflows varint: %w", what, wire.ErrCorrupt)
		}
		return 0
	}
	d.rest = d.rest[sz:]
	return v
}

// duration reads a uvarint nanosecond count that must fit time.Duration.
func (d *decoder) duration(what string) int64 {
	v := d.uvarint(what)
	if d.err == nil && v > math.MaxInt64 {
		d.fail("%s of %d ns overflows a duration: %w", what, v, wire.ErrCorrupt)
		return 0
	}
	return int64(v)
}

func (d *decoder) float(what string) float64 {
	if d.err != nil {
		return 0
	}
	if len(d.rest) < 8 {
		d.fail("%s: %w", what, wire.ErrTruncated)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.rest))
	d.rest = d.rest[8:]
	return v
}
