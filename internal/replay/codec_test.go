package replay

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"hierdet/internal/tree"
	"hierdet/internal/wire"
)

// sampleTrace exercises every field of the format: a five-node tree, both
// flag bits, both step kinds, several event kinds with negative peers, and
// an outcome blob.
func sampleTrace() *Trace {
	return &Trace{
		Parents:       []int{tree.None, 0, 0, 1, 1},
		TreeLinksOnly: true,
		Deterministic: true,
		Plane:         PlaneSharded,
		Workload:      WorkloadSpec{Rounds: 12, Seed: -7, PGlobal: 0.5, PGroup: 0.25, PSubset: 0.1},
		MaxDelay:      150 * time.Microsecond,
		HbEvery:       2 * time.Millisecond,
		HbTimeout:     16 * time.Millisecond,
		SeekTimeout:   40 * time.Millisecond,
		DeliverySeed:  -3,
		Schedule: []Step{
			{Kind: StepObserve, Lo: 0, Hi: 6, At: 1000},
			{Kind: StepKill, Node: 3, At: 250_000},
			{Kind: StepObserve, Lo: 6, Hi: 12, At: 300_000},
		},
		Events: []EventRec{
			{Kind: 1, Node: 4, Peer: -1, Seq: 0, Count: 6, At: 1100},
			{Kind: 4, Node: 0, Peer: -1, Seq: 2, Count: 1, AtRoot: true, At: 2200},
			{Kind: 7, Node: 3, Peer: -1, Seq: 0, Count: 1, At: 260_000},
		},
		Outcome:    []byte{0x01, 0x02, 0x03},
		Detections: 1,
	}
}

func TestTraceRoundTrip(t *testing.T) {
	for name, tr := range map[string]*Trace{
		"full": sampleTrace(),
		"minimal": {
			Parents:  []int{tree.None},
			Plane:    PlaneLegacy,
			Workload: WorkloadSpec{Rounds: 1, Seed: 1},
		},
	} {
		t.Run(name, func(t *testing.T) {
			enc := AppendTrace(nil, tr)
			got, err := DecodeTrace(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, tr) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
			}
			if re := AppendTrace(nil, got); !bytes.Equal(re, enc) {
				t.Fatalf("re-encoding differs: %d vs %d bytes", len(re), len(enc))
			}
		})
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/run.hdtr"
	want := sampleTrace()
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("file round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeTraceErrors(t *testing.T) {
	good := AppendTrace(nil, sampleTrace())
	cases := map[string]struct {
		mut  func([]byte) []byte
		want error
	}{
		"empty":          {func(b []byte) []byte { return b[:0] }, wire.ErrTruncated},
		"bad magic":      {func(b []byte) []byte { b[0] = 'X'; return b }, wire.ErrCorrupt},
		"bad version":    {func(b []byte) []byte { b[4] = 99; return b }, wire.ErrCorrupt},
		"header only":    {func(b []byte) []byte { return b[:5] }, wire.ErrTruncated},
		"truncated tail": {func(b []byte) []byte { return b[:len(b)-2] }, wire.ErrTruncated},
		"trailing bytes": {func(b []byte) []byte { return append(b, 0xEE) }, wire.ErrCorrupt},
		"bad flags":      {func(b []byte) []byte { b[11] = 0xF0; return b }, wire.ErrCorrupt},
		"self parent":    {func(b []byte) []byte { b[6] = 0x00; return b }, wire.ErrCorrupt},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			data := tc.mut(append([]byte(nil), good...))
			_, err := DecodeTrace(data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want wrapping %v", err, tc.want)
			}
		})
	}
}

// The flags byte position asserted above ("bad flags", "self parent") is
// structural: magic(4) + version(1) + nNodes(1) + 5 one-byte parents puts
// flags at offset 11 and node 1's parent at offset 6. Pin it so the cases
// fail loudly if the sample or format shifts.
func TestSampleLayoutAnchors(t *testing.T) {
	enc := AppendTrace(nil, sampleTrace())
	if enc[5] != 5 {
		t.Fatalf("node-count byte = %d, want 5 (sample changed; update TestDecodeTraceErrors offsets)", enc[5])
	}
	if enc[11] != 0b11 {
		t.Fatalf("flags byte = %#x at offset 11, want 0b11", enc[11])
	}
}

func FuzzDecodeTrace(f *testing.F) {
	f.Add(AppendTrace(nil, sampleTrace()))
	f.Add(AppendTrace(nil, &Trace{
		Parents:  []int{tree.None, 0},
		Plane:    PlaneParallel,
		Workload: WorkloadSpec{Rounds: 3},
		Schedule: []Step{{Kind: StepObserve, Lo: 0, Hi: 3}},
	}))
	f.Add([]byte("HDTR\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace(data)
		if err != nil {
			if !errors.Is(err, wire.ErrCorrupt) && !errors.Is(err, wire.ErrTruncated) {
				t.Fatalf("decode error %v wraps neither ErrCorrupt nor ErrTruncated", err)
			}
			return
		}
		// Whatever decodes must re-encode canonically: encode → decode is
		// the identity on decoded traces.
		enc := AppendTrace(nil, tr)
		tr2, err := DecodeTrace(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("canonical round trip diverged:\n first %+v\nsecond %+v", tr, tr2)
		}
		if enc2 := AppendTrace(nil, tr2); !bytes.Equal(enc, enc2) {
			t.Fatal("canonical encoding is not a fixed point")
		}
		// A decoded trace must never panic topology reconstruction — a
		// hostile parent array comes back as an error, not a crash.
		_, _ = TopologyOf(tr)
	})
}
