package replay

// Canonical outcome encoding: the byte string two executions must agree on
// for the replayer to declare parity. It covers exactly the
// delivery-order-independent projection of a detection list — node,
// root-ness, aggregate identity (origin, sequence), span and the aggregate's
// clocks — sorted by (Node, Agg.Seq), which is a total order because a
// node's aggregates are numbered by a single writer. Detection.Set is
// deliberately excluded: the members backing a solution depend on which
// queue heads were resident when the cascade fired, which is delivery-order
// state, not predicate truth.

import (
	"encoding/binary"
	"sort"

	"hierdet/internal/livenet"
	"hierdet/internal/vclock"
	"hierdet/internal/wire"
)

// AppendOutcome appends the canonical encoding of dets to dst and returns
// the extended buffer along with the number of detections encoded. The
// input is re-sorted into canonical order in place.
func AppendOutcome(dst []byte, dets []livenet.Detection) ([]byte, int) {
	sortDetections(dets)
	for _, d := range dets {
		dst = binary.AppendUvarint(dst, uint64(d.Node))
		if d.AtRoot {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = binary.AppendUvarint(dst, uint64(d.Det.Agg.Origin))
		dst = binary.AppendUvarint(dst, uint64(d.Det.Agg.Seq))
		dst = binary.AppendUvarint(dst, uint64(len(d.Det.Agg.Span)))
		for _, p := range d.Det.Agg.Span {
			dst = binary.AppendUvarint(dst, uint64(p))
		}
		dst = appendClock(dst, d.Det.Agg.Lo)
		dst = appendClock(dst, d.Det.Agg.Hi)
	}
	return dst, len(dets)
}

// MergeDetections concatenates the per-participant detection lists of a
// deployment into one canonically ordered list.
func MergeDetections(parts ...[]livenet.Detection) []livenet.Detection {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]livenet.Detection, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	sortDetections(out)
	return out
}

// sortDetections orders by (Node, Agg.Seq) — each cluster already returns
// its detections in this order (Stop sorts), so merging participants is the
// only case with real work to do.
func sortDetections(dets []livenet.Detection) {
	sort.Slice(dets, func(i, j int) bool {
		if dets[i].Node != dets[j].Node {
			return dets[i].Node < dets[j].Node
		}
		return dets[i].Det.Agg.Seq < dets[j].Det.Agg.Seq
	})
}

func appendClock(dst []byte, vc vclock.VC) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vc)))
	for _, c := range vc {
		dst = binary.AppendUvarint(dst, uint64(c))
	}
	return dst
}

// OutcomeRec is one decoded entry of a canonical outcome blob — the
// projection AppendOutcome encodes, in a printable form for parity-failure
// triage (which detection diverged, and in which field).
type OutcomeRec struct {
	Node   int
	AtRoot bool
	Origin int
	Seq    int
	Span   []int
	Lo, Hi []int
}

// DecodeOutcome parses a canonical outcome blob (Trace.Outcome or
// Result.Outcome). Errors wrap wire.ErrCorrupt or wire.ErrTruncated.
func DecodeOutcome(data []byte) ([]OutcomeRec, error) {
	d := decoder{rest: data}
	var out []OutcomeRec
	for len(d.rest) > 0 && d.err == nil {
		var r OutcomeRec
		r.Node = int(d.count("outcome node", maxTraceNodes))
		switch d.byte("outcome atRoot") {
		case 0:
		case 1:
			r.AtRoot = true
		default:
			if d.err == nil {
				d.fail("outcome atRoot byte: %w", wire.ErrCorrupt)
			}
		}
		r.Origin = int(d.count("outcome origin", maxTraceNodes))
		r.Seq = int(d.count("outcome seq", maxOutcomeLen))
		r.Span = d.intSlice("outcome span")
		r.Lo = d.intSlice("outcome lo clock")
		r.Hi = d.intSlice("outcome hi clock")
		if d.err == nil {
			out = append(out, r)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return out, nil
}

// intSlice reads a uvarint-counted list of uvarint values.
func (d *decoder) intSlice(what string) []int {
	n := d.count(what+" length", maxTraceNodes)
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.rest)) {
		d.fail("%s of %d entries in %d bytes: %w", what, n, len(d.rest), wire.ErrTruncated)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.count(what, 1<<62))
	}
	return out
}
