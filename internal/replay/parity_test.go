package replay

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"hierdet/internal/core"
	"hierdet/internal/obsv"
	"hierdet/internal/trace"
	"hierdet/internal/tree"
)

// offScriptCounts tallies the recorded node_suspected and repair_concluded
// events — used to tell a legitimate off-script downgrade (heartbeats stalled
// under load, extra failure-detector activity) apart from a
// determinism-classifier bug.
func offScriptCounts(tr *Trace) (sus, rep int) {
	for _, e := range tr.Events {
		switch obsv.EventKind(e.Kind) {
		case obsv.NodeSuspected:
			sus++
		case obsv.RepairConcluded:
			rep++
		}
	}
	return sus, rep
}

// checkSound runs the ground-truth checker over a detection list (recordings
// run with KeepMembers, so aggregates expand to base intervals).
func checkSound(t *testing.T, r *Result) {
	t.Helper()
	dets := make([]core.Detection, len(r.Detections))
	for i, d := range r.Detections {
		dets[i] = d.Det
	}
	if err := trace.CheckAll(dets); err != nil {
		t.Fatalf("replayed detections unsound: %v", err)
	}
}

// replayOn decodes-and-replays a trace on one plane and asserts byte parity.
func replayOn(t *testing.T, tr *Trace, plane string) {
	t.Helper()
	rp, err := NewReplayer(tr, ReplayerConfig{Plane: plane})
	if err != nil {
		t.Fatalf("NewReplayer(%s): %v", plane, err)
	}
	res, err := rp.Run()
	if err != nil {
		rp.Close()
		t.Fatalf("replay on %s: %v", plane, err)
	}
	if !res.Match {
		if !res.Deterministic {
			// The replay itself went off-script (a heartbeat stalled under
			// load and a live subtree was spuriously detached) — parity is
			// not a verdict on such a run.
			t.Logf("replay on %s went off-script; parity skipped", plane)
		} else {
			t.Fatalf("replay on %s diverged: recorded %d detections (%d bytes), replayed %d (%d bytes)",
				plane, tr.Detections, len(tr.Outcome), len(res.Detections), len(res.Outcome))
		}
	}
	checkSound(t, res)
}

// TestRecordReplayParity is the tentpole property: a chaotic live run — a
// three-participant TCP deployment, a leaf crash-stop mid-run — recorded
// once, then replayed byte-identically through every delivery plane from
// the decoded trace alone.
func TestRecordReplayParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live recording")
	}
	topo := tree.Balanced(2, 2) // 7 nodes: 0 root, 1-2 inner, 3-6 leaves
	victim := -1
	for i := 0; i < topo.N(); i++ {
		if topo.IsLeaf(i) {
			victim = i
			break
		}
	}
	rec, err := NewRecorder(RecorderConfig{
		Topology: topo,
		Workload: WorkloadSpec{Rounds: 8, Seed: 41, PGlobal: 1},
		Schedule: []Step{
			{Kind: StepObserve, Lo: 0, Hi: 3},
			{Kind: StepKill, Node: victim},
			{Kind: StepObserve, Lo: 3, Hi: 8},
		},
		Plane:        PlaneSharded,
		Delivery:     DeliveryOptions{Seed: 17},
		Failure:      FailureOptions{HbEvery: 2 * time.Millisecond},
		Participants: [][]int{{0, 1, 2}, {3, 4}, {5, 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Run()
	if err != nil {
		rec.Close()
		t.Fatal(err)
	}
	if !tr.Deterministic {
		// A leaf kill expects exactly one suspicion (the parent's) and no
		// repairs; more means the run went off-script and the downgrade is
		// legitimate.
		if sus, rep := offScriptCounts(tr); sus > 1 || rep > 0 {
			t.Skipf("recording went off-script (%d suspicions, %d repairs for a leaf kill); determinism legitimately downgraded", sus, rep)
		}
		t.Fatal("leaf-kill schedule classified nondeterministic")
	}
	if tr.Detections == 0 {
		t.Fatal("recording produced no detections")
	}
	if len(tr.Events) == 0 {
		t.Fatal("recording captured no events")
	}

	// The trace must survive its own codec before replay trusts it.
	decoded, err := DecodeTrace(AppendTrace(nil, tr))
	if err != nil {
		t.Fatalf("recorded trace does not decode: %v", err)
	}
	if !bytes.Equal(decoded.Outcome, tr.Outcome) {
		t.Fatal("outcome corrupted by codec round trip")
	}
	for _, plane := range Planes() {
		plane := plane
		t.Run(plane, func(t *testing.T) { replayOn(t, decoded, plane) })
	}
}

// TestRecordReplayPartitionKill covers the other deterministic kill class:
// on a tree-links-only topology an orphaned subtree has no candidates and
// deterministically continues as a partition root.
func TestRecordReplayPartitionKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live recording")
	}
	topo := tree.Balanced(2, 2)
	topo.UseTreeLinksOnly()
	rec, err := NewRecorder(RecorderConfig{
		Topology: topo,
		Workload: WorkloadSpec{Rounds: 6, Seed: 5, PGlobal: 1},
		Schedule: []Step{
			{Kind: StepObserve, Lo: 0, Hi: 3},
			{Kind: StepKill, Node: 1}, // inner node: orphans its two children
			{Kind: StepObserve, Lo: 3, Hi: 6},
		},
		Plane:   PlaneParallel,
		Failure: FailureOptions{HbEvery: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Run()
	if err != nil {
		rec.Close()
		t.Fatal(err)
	}
	if !tr.TreeLinksOnly {
		t.Fatal("tree-links-only topology not recorded as such")
	}
	if !tr.Deterministic {
		// Killing node 1 expects three suspicions (its two orphans' plus the
		// root's) and two repairs; more means the run went off-script.
		if sus, rep := offScriptCounts(tr); sus > 3 || rep > 2 {
			t.Skipf("recording went off-script (%d suspicions, %d repairs); determinism legitimately downgraded", sus, rep)
		}
		t.Fatal("partition kill on tree links classified nondeterministic")
	}
	replayOn(t, tr, PlaneSharded)
	replayOn(t, tr, PlaneLegacy)
}

// TestAdoptionKillClassifiedNondeterministic: killing an inner node on a
// complete graph lets orphans race for adopters — the recorder must mark
// the trace nondeterministic, and replay must still run and stay sound.
func TestAdoptionKillClassifiedNondeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live recording")
	}
	rec, err := NewRecorder(RecorderConfig{
		Topology: tree.Balanced(2, 2),
		Workload: WorkloadSpec{Rounds: 4, Seed: 3, PGlobal: 1},
		Schedule: []Step{
			{Kind: StepObserve, Lo: 0, Hi: 2},
			{Kind: StepKill, Node: 1},
			{Kind: StepObserve, Lo: 2, Hi: 4},
		},
		Plane:   PlaneSharded,
		Failure: FailureOptions{HbEvery: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Run()
	if err != nil {
		rec.Close()
		t.Fatal(err)
	}
	if tr.Deterministic {
		t.Fatal("adoption-class kill wrongly classified deterministic")
	}
	rp, err := NewReplayer(tr, ReplayerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rp.Run()
	if err != nil {
		rp.Close()
		t.Fatal(err)
	}
	checkSound(t, res) // soundness must hold even where parity cannot
}

// TestReplaySpeedPacing: a paced replay honours the recorded step offsets.
func TestReplaySpeedPacing(t *testing.T) {
	tr := recordQuick(t)
	// Stretch the recorded offsets so pacing is measurable, then replay at
	// 2×: the run must take at least half the final offset.
	last := len(tr.Schedule) - 1
	tr.Schedule[last].At = int64(200 * time.Millisecond)
	rp, err := NewReplayer(tr, ReplayerConfig{Speed: 2})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := rp.Run()
	if err != nil {
		rp.Close()
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("2× replay of a 200ms schedule finished in %v", elapsed)
	}
	if !res.Match {
		t.Fatal("paced replay diverged")
	}
}

// recordQuick records a small kill-free single-cluster run.
func recordQuick(t *testing.T) *Trace {
	t.Helper()
	rec, err := NewRecorder(RecorderConfig{
		Topology: tree.Star(4),
		Workload: WorkloadSpec{Rounds: 3, Seed: 9, PGlobal: 1},
		Schedule: []Step{{Kind: StepObserve, Lo: 0, Hi: 3}},
		Plane:    PlaneSharded,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Run()
	if err != nil {
		rec.Close()
		t.Fatal(err)
	}
	return tr
}

// TestRecorderValidation pins the typed misuse errors.
func TestRecorderValidation(t *testing.T) {
	base := func() RecorderConfig {
		return RecorderConfig{
			Topology: tree.Star(3),
			Workload: WorkloadSpec{Rounds: 2, Seed: 1, PGlobal: 1},
			Schedule: []Step{{Kind: StepObserve, Lo: 0, Hi: 2}},
			Plane:    PlaneSharded,
		}
	}
	cases := map[string]struct {
		mut   func(*RecorderConfig)
		field string
	}{
		"nil topology": {func(c *RecorderConfig) { c.Topology = nil }, "Topology"},
		"custom links": {func(c *RecorderConfig) {
			c.Topology = tree.Star(4)
			c.Topology.UseTreeLinksOnly()
			c.Topology.AddLink(1, 2)
		}, "Topology"},
		"bad plane":     {func(c *RecorderConfig) { c.Plane = "warp" }, "Plane"},
		"no rounds":     {func(c *RecorderConfig) { c.Workload.Rounds = 0 }, "Workload.Rounds"},
		"bad mix":       {func(c *RecorderConfig) { c.Workload.PGlobal, c.Workload.PGroup = 0.8, 0.8 }, "Workload"},
		"step past end": {func(c *RecorderConfig) { c.Schedule = []Step{{Kind: StepObserve, Lo: 0, Hi: 5}} }, "Schedule"},
		"kill no hb":    {func(c *RecorderConfig) { c.Schedule = append(c.Schedule, Step{Kind: StepKill, Node: 1}) }, "Failure.HbEvery"},
		"double kill": {func(c *RecorderConfig) {
			c.Failure.HbEvery = time.Millisecond
			c.Schedule = append(c.Schedule, Step{Kind: StepKill, Node: 1}, Step{Kind: StepKill, Node: 1})
		}, "Schedule"},
		"partial hosting": {func(c *RecorderConfig) { c.Participants = [][]int{{0, 1}} }, "Participants"},
		"doubled hosting": {func(c *RecorderConfig) { c.Participants = [][]int{{0, 1}, {1, 2}} }, "Participants"},
		"unknown step":    {func(c *RecorderConfig) { c.Schedule = []Step{{Kind: 9}} }, "Schedule"},
		"victim of range": {func(c *RecorderConfig) {
			c.Failure.HbEvery = time.Millisecond
			c.Schedule = append(c.Schedule, Step{Kind: StepKill, Node: 7})
		}, "Schedule"},
		"negative prob": {func(c *RecorderConfig) { c.Workload.PGlobal = -0.5 }, "Workload"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			_, err := NewRecorder(cfg)
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error = %v (%T), want *ConfigError", err, err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
		})
	}
	// Replayer misuse is typed the same way.
	if _, err := NewReplayer(nil, ReplayerConfig{}); err == nil || !errors.As(err, new(*ConfigError)) {
		t.Fatalf("NewReplayer(nil) error = %v, want *ConfigError", err)
	}
	tr := &Trace{Parents: []int{tree.None}, Plane: PlaneSharded, Workload: WorkloadSpec{Rounds: 1}}
	if _, err := NewReplayer(tr, ReplayerConfig{Speed: -1}); err == nil || !errors.As(err, new(*ConfigError)) {
		t.Fatalf("negative speed error = %v, want *ConfigError", err)
	}
}

// TestRecorderShutdownLifecycle: Shutdown with an expired context leaves
// the deployment running (retryable), Close still releases it.
func TestRecorderLifecycle(t *testing.T) {
	rec, err := NewRecorder(RecorderConfig{
		Topology: tree.Star(3),
		Workload: WorkloadSpec{Rounds: 2, Seed: 2, PGlobal: 1},
		Schedule: []Step{{Kind: StepObserve, Lo: 0, Hi: 2}},
		Plane:    PlaneSharded,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close after Shutdown: %v", err)
	}
}

// TestOutcomeCanonicalOrder: merging participant lists in any order yields
// one canonical encoding.
func TestOutcomeCanonicalOrder(t *testing.T) {
	tr := recordQuick(t)
	dec, err := DecodeTrace(AppendTrace(nil, tr))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplayer(dec, ReplayerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rp.Run()
	if err != nil {
		rp.Close()
		t.Fatal(err)
	}
	// Shuffle then re-encode: canonical order must absorb any permutation.
	dets := append(res.Detections[:0:0], res.Detections...)
	for i, j := 0, len(dets)-1; i < j; i, j = i+1, j-1 {
		dets[i], dets[j] = dets[j], dets[i]
	}
	reEnc, n := AppendOutcome(nil, dets)
	if n != len(dets) || !bytes.Equal(reEnc, res.Outcome) {
		t.Fatal("outcome encoding depends on input order")
	}
}
