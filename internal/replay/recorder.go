package replay

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hierdet/internal/livenet"
	"hierdet/internal/obsv"
	"hierdet/internal/tree"
)

// DeliveryOptions groups the message-plane knobs of a recording (grouped
// options rather than a flat field soup — the facade's Config style).
type DeliveryOptions struct {
	// MaxDelay bounds the random per-message delivery delay (livenet
	// default 200µs when zero).
	MaxDelay time.Duration
	// Seed drives the delay distribution.
	Seed int64
}

// FailureOptions groups the failure-handling knobs. HbEvery must be set for
// schedules containing kills.
type FailureOptions struct {
	HbEvery     time.Duration
	HbTimeout   time.Duration // default 8×HbEvery
	SeekTimeout time.Duration // default per livenet
}

// RecorderConfig declares a recording session.
type RecorderConfig struct {
	// Topology is the initial spanning tree; every node must be alive. Its
	// link graph must be either complete (the default) or tree-links-only —
	// the trace format reconstructs the graph from the parent array alone,
	// so custom AddLink graphs are rejected by Validate.
	Topology *tree.Topology
	// Workload regenerates the interval streams (one interval per process
	// per round).
	Workload WorkloadSpec
	// Schedule is the step sequence to execute. Step.At is ignored on
	// input; the recorder stamps actual offsets.
	Schedule []Step
	// Plane names the delivery plane (PlaneLegacy … PlaneParallel).
	Plane string
	// Delivery and Failure group the runtime knobs.
	Delivery DeliveryOptions
	Failure  FailureOptions
	// Participants, when set, splits the deployment into one cluster per
	// entry (hosting exactly those nodes) wired over loopback TCP. The
	// entries must partition the topology's nodes. Nil runs a single
	// in-process cluster.
	Participants [][]int
	// Events, when set, receives every lifecycle event as it is recorded —
	// a live tap on the stream that ends up in the trace.
	Events func(obsv.Event)
}

// Validate checks the configuration and returns a *ConfigError naming the
// offending field, or nil.
func (cfg *RecorderConfig) Validate() error {
	if cfg.Topology == nil {
		return &ConfigError{Field: "Topology", Reason: "required"}
	}
	n := cfg.Topology.N()
	if n > maxTraceNodes {
		return &ConfigError{Field: "Topology", Reason: fmt.Sprintf("%d nodes exceeds the trace format's cap %d", n, maxTraceNodes)}
	}
	if err := cfg.Topology.Validate(); err != nil {
		return &ConfigError{Field: "Topology", Reason: err.Error()}
	}
	if len(cfg.Topology.AliveNodes()) != n {
		return &ConfigError{Field: "Topology", Reason: "every node must be alive at the start of a recording"}
	}
	if _, err := classifyLinks(cfg.Topology); err != nil {
		return err
	}
	if cfg.Workload.Rounds <= 0 || cfg.Workload.Rounds > maxTraceSteps {
		return &ConfigError{Field: "Workload.Rounds", Reason: fmt.Sprintf("%d outside [1, %d]", cfg.Workload.Rounds, maxTraceSteps)}
	}
	for _, p := range [3]float64{cfg.Workload.PGlobal, cfg.Workload.PGroup, cfg.Workload.PSubset} {
		if p < 0 || p > 1 {
			return &ConfigError{Field: "Workload", Reason: fmt.Sprintf("probability %v outside [0,1]", p)}
		}
	}
	if cfg.Workload.PGlobal+cfg.Workload.PGroup+cfg.Workload.PSubset > 1 {
		return &ConfigError{Field: "Workload", Reason: "probabilities sum past 1"}
	}
	if _, _, err := planePreset(cfg.Plane); err != nil {
		return err
	}
	if len(cfg.Schedule) > maxTraceSteps {
		return &ConfigError{Field: "Schedule", Reason: fmt.Sprintf("%d steps exceeds the trace format's cap %d", len(cfg.Schedule), maxTraceSteps)}
	}
	mirror := cfg.Topology.Clone()
	for i, s := range cfg.Schedule {
		switch s.Kind {
		case StepObserve:
			if s.Lo < 0 || s.Hi < s.Lo || s.Hi > cfg.Workload.Rounds {
				return &ConfigError{Field: "Schedule", Reason: fmt.Sprintf("step %d observes rounds [%d,%d) of %d", i, s.Lo, s.Hi, cfg.Workload.Rounds)}
			}
		case StepKill:
			if cfg.Failure.HbEvery <= 0 {
				return &ConfigError{Field: "Failure.HbEvery", Reason: "kill steps require heartbeats"}
			}
			if s.Node < 0 || s.Node >= n {
				return &ConfigError{Field: "Schedule", Reason: fmt.Sprintf("step %d kills unknown node %d", i, s.Node)}
			}
			if !mirror.Alive(s.Node) {
				return &ConfigError{Field: "Schedule", Reason: fmt.Sprintf("step %d kills node %d twice", i, s.Node)}
			}
			mirror.MarkFailed(s.Node)
		default:
			return &ConfigError{Field: "Schedule", Reason: fmt.Sprintf("step %d has kind %d", i, s.Kind)}
		}
	}
	if len(cfg.Participants) > 0 {
		seen := make(map[int]bool, n)
		for i, nodes := range cfg.Participants {
			if len(nodes) == 0 {
				return &ConfigError{Field: "Participants", Reason: fmt.Sprintf("participant %d hosts no nodes", i)}
			}
			for _, id := range nodes {
				if id < 0 || id >= n {
					return &ConfigError{Field: "Participants", Reason: fmt.Sprintf("participant %d hosts unknown node %d", i, id)}
				}
				if seen[id] {
					return &ConfigError{Field: "Participants", Reason: fmt.Sprintf("node %d hosted twice", id)}
				}
				seen[id] = true
			}
		}
		if len(seen) != n {
			return &ConfigError{Field: "Participants", Reason: fmt.Sprintf("%d of %d nodes hosted", len(seen), n)}
		}
	}
	return nil
}

// classifyLinks decides whether a topology's link graph is the complete
// graph or exactly the tree edges — the only two shapes the trace format
// can reconstruct from the parent array.
func classifyLinks(t *tree.Topology) (treeOnly bool, err error) {
	n := t.N()
	complete, treeExact := true, true
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			linked := t.Linked(a, b)
			edge := t.Parent(a) == b || t.Parent(b) == a
			if !linked {
				complete = false
			}
			if linked != edge {
				treeExact = false
			}
		}
	}
	switch {
	case complete:
		return false, nil
	case treeExact:
		return true, nil
	default:
		return false, &ConfigError{Field: "Topology", Reason: "link graph is neither complete nor tree-links-only; the trace format cannot represent it"}
	}
}

// Recorder drives a live deployment through a schedule and captures the
// trace. Build with NewRecorder (the clusters start immediately), execute
// with Run, release with Close or Shutdown (Run does so itself on the happy
// path).
type Recorder struct {
	cfg      RecorderConfig
	treeOnly bool
	sess     *session
	t0       time.Time

	mu     sync.Mutex
	events []EventRec
}

// NewRecorder validates the configuration and starts the deployment.
func NewRecorder(cfg RecorderConfig) (*Recorder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	treeOnly, _ := classifyLinks(cfg.Topology)
	r := &Recorder{cfg: cfg, treeOnly: treeOnly}
	sess, err := startSession(sessionSpec{
		topo:         cfg.Topology,
		treeOnly:     treeOnly,
		plane:        cfg.Plane,
		workload:     cfg.Workload,
		maxDelay:     cfg.Delivery.MaxDelay,
		deliverySeed: cfg.Delivery.Seed,
		hbEvery:      cfg.Failure.HbEvery,
		hbTimeout:    cfg.Failure.HbTimeout,
		seekTimeout:  cfg.Failure.SeekTimeout,
		participants: cfg.Participants,
		events:       r.recordEvent,
	})
	if err != nil {
		return nil, err
	}
	r.sess = sess
	r.t0 = time.Now()
	return r, nil
}

// recordEvent is the Events sink wired into every cluster: append under a
// mutex (events of different nodes genuinely race; per-node order is
// preserved because each node emits from a single writer), then forward to
// the user's tap.
func (r *Recorder) recordEvent(e obsv.Event) {
	rec := EventRec{
		Kind:   uint8(e.Kind),
		Node:   e.Node,
		Peer:   e.Peer,
		Seq:    e.Seq,
		Count:  e.Count,
		AtRoot: e.AtRoot,
		At:     int64(time.Since(r.t0)),
	}
	r.mu.Lock()
	r.events = append(r.events, rec)
	r.mu.Unlock()
	if r.cfg.Events != nil {
		r.cfg.Events(e)
	}
}

// Run executes the schedule, tears the deployment down and returns the
// recorded trace. On error the deployment may still be live — call Close
// (or Shutdown) to release it.
func (r *Recorder) Run() (*Trace, error) {
	schedule := make([]Step, len(r.cfg.Schedule))
	copy(schedule, r.cfg.Schedule)
	// The pace hook runs as each step starts — the recorder uses it to
	// stamp the step's actual offset instead of to sleep.
	err := r.sess.run(schedule, func(i int) { schedule[i].At = int64(time.Since(r.t0)) }, nil)
	if err != nil {
		return nil, err
	}
	// Sampled at the final barrier: a suspicion the schedule never asked for
	// (heartbeat stalled under load) detached a live subtree mid-run, which
	// takes this recording out of the byte-reproducible class.
	if r.sess.offScript() {
		r.sess.deterministic = false
	}
	dets := r.sess.close()
	r.mu.Lock()
	events := r.events
	r.mu.Unlock()
	if len(events) > maxTraceEvents {
		return nil, fmt.Errorf("replay: recording produced %d events, past the trace format's cap %d", len(events), maxTraceEvents)
	}

	n := r.cfg.Topology.N()
	t := &Trace{
		Parents:       make([]int, n),
		TreeLinksOnly: r.treeOnly,
		Deterministic: r.sess.deterministic,
		Plane:         r.cfg.Plane,
		Workload:      r.cfg.Workload,
		MaxDelay:      r.cfg.Delivery.MaxDelay,
		HbEvery:       r.cfg.Failure.HbEvery,
		HbTimeout:     r.cfg.Failure.HbTimeout,
		SeekTimeout:   r.cfg.Failure.SeekTimeout,
		DeliverySeed:  r.cfg.Delivery.Seed,
		Schedule:      schedule,
		Events:        events,
	}
	for i := 0; i < n; i++ {
		t.Parents[i] = r.cfg.Topology.Parent(i)
	}
	t.Outcome, t.Detections = AppendOutcome(nil, dets)
	return t, nil
}

// Metrics sums ClusterMetrics across the deployment's participants.
func (r *Recorder) Metrics() livenet.ClusterMetrics { return r.sess.metrics() }

// Detections returns the deployment's merged, canonically ordered detections
// — the list Run encoded into the trace's outcome — closing the deployment
// first if Run has not already done so (mirrors livenet.Cluster's
// Close/Detections pairing).
func (r *Recorder) Detections() []livenet.Detection { return r.sess.close() }

// Close stops the deployment (idempotent; waits for quiescence first).
func (r *Recorder) Close() error {
	r.sess.close()
	return nil
}

// Shutdown is Close bounded by ctx: on expiry the deployment keeps running
// and Shutdown can be retried.
func (r *Recorder) Shutdown(ctx context.Context) error {
	return r.sess.shutdown(ctx)
}
