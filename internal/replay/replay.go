// Package replay turns live detector executions into artifacts: a Recorder
// drives a cluster (or a multi-participant TCP deployment) through a
// declared schedule of observation phases and crash-stops, capturing the
// workload inputs, the causally-ordered obsv event stream and the canonical
// detection outcome into a compact versioned binary Trace; a Replayer feeds
// a Trace back through any of the four delivery planes (legacy / sharded /
// batched / parallel) at adjustable speed and checks the outcome
// byte-for-byte against the recording.
//
// # Determinism model
//
// A trace does not capture message interleavings — it captures the inputs
// (topology, workload spec, schedule) and relies on the detector's
// confluence: given the same per-process interval streams, the final
// detection multiset is independent of delivery order, delivery plane and
// deployment shape (the repo's isolation and parity suites pin this). The
// schedule quantizes failures to quiescent barriers: every step ends with a
// settle (ledger drained, cascades complete), each Kill waits for the
// repairs it caused to conclude before the next phase feeds. Under that
// protocol the outcome is reproducible bit-for-bit as long as the repair
// itself cannot race: kills of leaf processes (no orphans — the parent's
// queue drop is the only event) and kills in tree-links-only topologies
// (every orphan deterministically exhausts its candidates and becomes a
// partition root) qualify; kills that orphan subtrees in a complete graph
// do not, because which candidate adopts — and whether the parent's queue
// drop lands before or after the adoption — is a heartbeat-timing race that
// legitimately changes the recorded detections. Trace.Deterministic records
// which class a schedule fell in; replay always re-runs and checks
// soundness invariants, but byte-parity is asserted only for the
// deterministic class. See DESIGN.md §14.
//
// The wall-clock stamps on schedule steps and events are observational:
// they drive the Replayer's pacing (Speed) and latency analysis, never the
// outcome.
package replay

import (
	"fmt"
	"time"
)

// WorkloadSpec is the recorded generator input: together with the topology
// it regenerates the exact per-process interval streams (workload.Generate
// is deterministic in these fields).
type WorkloadSpec struct {
	// Rounds is the number of workload rounds (the paper's p).
	Rounds int
	// Seed fixes the round-kind sequence.
	Seed int64
	// PGlobal, PGroup and PSubset are the round-mix probabilities; the
	// remainder is isolated rounds. All in [0,1] with sum ≤ 1.
	PGlobal, PGroup, PSubset float64
}

// StepKind discriminates schedule steps.
type StepKind uint8

const (
	// StepObserve feeds rounds [Lo, Hi) of every alive process's stream,
	// then settles to a quiescent barrier.
	StepObserve StepKind = iota + 1
	// StepKill crash-stops process Node at a quiescent barrier, waits for
	// every repair the crash caused to conclude, then settles again.
	StepKill
)

// Step is one schedule entry. At is the step's start offset in nanoseconds
// since the session began — recorded for pacing, irrelevant to the outcome.
type Step struct {
	Kind   StepKind
	Lo, Hi int // StepObserve: round range [Lo, Hi)
	Node   int // StepKill: the victim
	At     int64
}

// EventRec is one recorded obsv event: the scalar fields of obsv.Event (the
// aggregate payloads live in the outcome, not the stream) plus the offset
// nanoseconds since the session began. Events of one node appear in that
// node's causal order; events of different nodes interleave in arrival
// order at the recorder.
type EventRec struct {
	Kind   uint8
	Node   int
	Peer   int
	Seq    int
	Count  int
	AtRoot bool
	At     int64
}

// Trace is one recorded execution, the unit the codec serializes.
type Trace struct {
	// Parents is the initial spanning tree: Parents[i] is node i's parent,
	// tree.None for the root. TreeLinksOnly records whether the
	// communication graph was restricted to tree edges (otherwise it was
	// complete).
	Parents       []int
	TreeLinksOnly bool
	// Deterministic reports whether the schedule stayed inside the
	// byte-reproducible class (see the package comment); replay asserts
	// outcome parity only when it is set.
	Deterministic bool
	// Plane names the delivery plane the recording ran on.
	Plane string
	// Workload regenerates the interval streams.
	Workload WorkloadSpec
	// Delivery/failure knobs the recording ran with, needed to re-run the
	// schedule faithfully (MaxDelay shapes message races, the heartbeat
	// knobs gate the repair protocol; none of them shape the outcome).
	MaxDelay     time.Duration
	HbEvery      time.Duration
	HbTimeout    time.Duration
	SeekTimeout  time.Duration
	DeliverySeed int64
	// Schedule is the recorded step sequence.
	Schedule []Step
	// Events is the recorded lifecycle stream.
	Events []EventRec
	// Outcome is the canonical encoding of the final merged detection list
	// (see AppendOutcome); Detections is its entry count.
	Outcome    []byte
	Detections int
}

// Planes lists the delivery planes a trace can be recorded on or replayed
// through, in the order the scale benchmarks use.
func Planes() []string { return []string{"legacy", "sharded", "batched", "parallel"} }

// ConfigError is the typed misuse error of the replay API, mirroring the
// facade's FlatConfigError pattern: Field names the offending RecorderConfig
// or ReplayerConfig field, Reason says what about it.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("replay: invalid %s: %s", e.Field, e.Reason)
}
