package replay

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"hierdet/internal/livenet"
	"hierdet/internal/obsv"
	"hierdet/internal/tree"
)

// ReplayerConfig parameterizes a replay. The zero value replays on the
// trace's recorded plane as fast as the barriers allow.
type ReplayerConfig struct {
	// Plane overrides the delivery plane to replay through; empty uses the
	// trace's recorded plane. Outcome parity holds across planes — that is
	// the point of the determinism model.
	Plane string
	// Speed scales the recorded step pacing: 1 replays steps at their
	// recorded wall-clock offsets, 2 at double speed, and 0 (the default)
	// runs each step as soon as the previous barrier clears.
	Speed float64
	// Events, when set, receives the replaying deployment's live event
	// stream (not the recorded one — compare the two to study divergence).
	Events func(obsv.Event)
}

// Result is the outcome of one replay.
type Result struct {
	// Detections is the replay's merged, canonically ordered detection
	// list; Outcome is its canonical encoding.
	Detections []livenet.Detection
	Outcome    []byte
	// Match reports byte-equality of Outcome against the recorded trace's.
	// It is the parity verdict only when Deterministic is set; a
	// nondeterministic trace can legitimately mismatch.
	Match bool
	// Deterministic is the trace's determinism class, downgraded when this
	// replay itself went off-script (a spurious failure suspicion under
	// load detached a live subtree) — Match is a verdict only when set.
	Deterministic bool
	// Plane is the plane the replay actually ran on.
	Plane string
}

// Replayer re-executes a recorded trace. Build with NewReplayer (the
// cluster starts immediately), execute with Run, release with Close or
// Shutdown if Run errored.
type Replayer struct {
	trace *Trace
	cfg   ReplayerConfig
	plane string
	sess  *session
	t0    time.Time
}

// TopologyOf reconstructs a trace's initial topology. It rejects parent
// arrays the tree package would panic on (cycles, out-of-range ids), so a
// decoded-but-hostile trace fails with an error instead.
func TopologyOf(t *Trace) (*tree.Topology, error) {
	n := len(t.Parents)
	if n == 0 {
		return nil, fmt.Errorf("replay: trace has no nodes: %w", errBadTrace)
	}
	for i, p := range t.Parents {
		if p < tree.None || p >= n || p == i {
			return nil, fmt.Errorf("replay: node %d has parent %d: %w", i, p, errBadTrace)
		}
	}
	// Reject cycles before SetParent (which panics on them): follow each
	// parent chain; more than n hops means a loop.
	for i := range t.Parents {
		hops, at := 0, i
		for t.Parents[at] != tree.None {
			at = t.Parents[at]
			if hops++; hops > n {
				return nil, fmt.Errorf("replay: parent cycle through node %d: %w", i, errBadTrace)
			}
		}
	}
	topo := tree.New(n)
	for i, p := range t.Parents {
		if p != tree.None {
			topo.SetParent(i, p)
		}
	}
	if t.TreeLinksOnly {
		topo.UseTreeLinksOnly()
	}
	return topo, nil
}

// errBadTrace marks a structurally valid encoding describing an unrunnable
// execution.
var errBadTrace = fmt.Errorf("unrunnable trace")

// NewReplayer validates the trace, reconstructs its topology and starts the
// deployment. The replay always runs as a single in-process cluster
// whatever deployment shape recorded the trace — outcome independence from
// deployment shape is part of the determinism model.
func NewReplayer(t *Trace, cfg ReplayerConfig) (*Replayer, error) {
	if t == nil {
		return nil, &ConfigError{Field: "Trace", Reason: "required"}
	}
	if cfg.Speed < 0 {
		return nil, &ConfigError{Field: "Speed", Reason: fmt.Sprintf("%v is negative", cfg.Speed)}
	}
	plane := cfg.Plane
	if plane == "" {
		plane = t.Plane
	}
	if _, _, err := planePreset(plane); err != nil {
		return nil, err
	}
	topo, err := TopologyOf(t)
	if err != nil {
		return nil, err
	}
	if t.Workload.Rounds <= 0 {
		return nil, fmt.Errorf("replay: trace declares %d workload rounds: %w", t.Workload.Rounds, errBadTrace)
	}
	hbEvery := t.HbEvery
	for _, s := range t.Schedule {
		if s.Kind == StepKill && hbEvery <= 0 {
			return nil, fmt.Errorf("replay: trace schedules kills without heartbeats: %w", errBadTrace)
		}
	}
	sess, err := startSession(sessionSpec{
		topo:         topo,
		treeOnly:     t.TreeLinksOnly,
		plane:        plane,
		workload:     t.Workload,
		maxDelay:     t.MaxDelay,
		deliverySeed: t.DeliverySeed,
		hbEvery:      hbEvery,
		hbTimeout:    t.HbTimeout,
		seekTimeout:  t.SeekTimeout,
		events:       cfg.Events,
	})
	if err != nil {
		return nil, err
	}
	return &Replayer{trace: t, cfg: cfg, plane: plane, sess: sess}, nil
}

// Run executes the trace's schedule and returns the replay result with the
// parity verdict. On error the deployment may still be live — call Close
// (or Shutdown) to release it.
func (r *Replayer) Run() (*Result, error) {
	r.t0 = time.Now()
	var pace func(int)
	if r.cfg.Speed > 0 {
		pace = func(i int) {
			target := time.Duration(float64(r.trace.Schedule[i].At) / r.cfg.Speed)
			if d := time.Until(r.t0.Add(target)); d > 0 {
				time.Sleep(d)
			}
		}
	}
	if err := r.sess.run(r.trace.Schedule, pace, nil); err != nil {
		return nil, err
	}
	onScript := !r.sess.offScript()
	dets := r.sess.close()
	out, _ := AppendOutcome(nil, dets)
	return &Result{
		Detections:    dets,
		Outcome:       out,
		Match:         bytes.Equal(out, r.trace.Outcome),
		Deterministic: r.trace.Deterministic && onScript,
		Plane:         r.plane,
	}, nil
}

// Metrics sums ClusterMetrics across the replaying deployment.
func (r *Replayer) Metrics() livenet.ClusterMetrics { return r.sess.metrics() }

// Close stops the deployment (idempotent; waits for quiescence first).
func (r *Replayer) Close() error {
	r.sess.close()
	return nil
}

// Shutdown is Close bounded by ctx: on expiry the deployment keeps running
// and Shutdown can be retried.
func (r *Replayer) Shutdown(ctx context.Context) error {
	return r.sess.shutdown(ctx)
}
