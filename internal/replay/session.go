package replay

// The session engine drives one execution of a trace's schedule — for the
// Recorder against live randomness, for the Replayer against a recorded
// trace; the two differ only in where the schedule comes from and what is
// captured on the way. A session owns one cluster per participant (wired
// over real loopback TCP when there is more than one), feeds workload
// rounds at quiescent barriers and quantizes crash-stops to the conclusion
// of the repairs they trigger, which is what makes the recorded outcome a
// property of the inputs rather than of the interleaving (see the package
// comment's determinism model).

import (
	"context"
	"fmt"
	"time"

	"hierdet/internal/livenet"
	"hierdet/internal/obsv"
	"hierdet/internal/transport/tcptransport"
	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// Delivery plane names (livenet lane presets, mirroring the scale
// benchmarks' lanes).
const (
	PlaneLegacy   = "legacy"
	PlaneSharded  = "sharded"
	PlaneBatched  = "batched"
	PlaneParallel = "parallel"
)

// planePreset translates a plane name into the livenet knobs the lane is
// defined by. batchFeed lanes take their observations through ObserveBatch.
func planePreset(plane string) (cfg livenet.Config, batchFeed bool, err error) {
	switch plane {
	case PlaneLegacy:
		cfg.LegacyDelivery = true
		cfg.SequentialDetect = true
	case PlaneSharded:
		cfg.SequentialDetect = true
	case PlaneBatched:
		cfg.BatchWindow = 200 * time.Microsecond
		cfg.SequentialDetect = true
		batchFeed = true
	case PlaneParallel:
		cfg.AdaptiveFlush = true
		batchFeed = true
	default:
		err = &ConfigError{Field: "Plane", Reason: fmt.Sprintf("unknown delivery plane %q (have legacy, sharded, batched, parallel)", plane)}
	}
	return cfg, batchFeed, err
}

// sessionPart is one participant: the cluster, the topology mirror it owns
// (clusters mutate their mirror during repair, so every participant gets a
// private clone) and the nodes it hosts.
type sessionPart struct {
	c     *livenet.Cluster
	nodes []int
	host  map[int]bool
}

// session is a running deployment executing a schedule.
type session struct {
	n         int
	mirror    *tree.Topology // session-owned view of the current tree
	parts     []*sessionPart
	exec      *workload.Execution
	batchFeed bool
	// deterministic tracks whether every kill so far stayed in the
	// byte-reproducible class; treeOnly is the recorded link mode.
	deterministic bool
	treeOnly      bool
	killsSeen     bool
	closed        bool
	// expectedSuspects/expectedRepairs tally the failure-detector activity
	// the schedule accounts for: each kill makes the victim's orphans and
	// its surviving parent suspect it, and each orphan concludes one repair.
	// Any excess (see offScript) means a heartbeat went missing under load —
	// a spurious suspicion the schedule never asked for, which detaches real
	// subtrees and takes the outcome out of the byte-reproducible class.
	expectedSuspects int64
	expectedRepairs  int64
}

// sessionSpec is everything startSession needs; both Recorder and Replayer
// reduce to one of these.
type sessionSpec struct {
	topo         *tree.Topology // session takes ownership (clones per part)
	treeOnly     bool
	plane        string
	workload     WorkloadSpec
	maxDelay     time.Duration
	deliverySeed int64
	hbEvery      time.Duration
	hbTimeout    time.Duration
	seekTimeout  time.Duration
	participants [][]int // nil/len≤1 → single in-process cluster
	events       func(obsv.Event)
}

// startSession builds the clusters (and, for multi-participant deployments,
// their TCP transports) and generates the workload. On error nothing is
// left running.
func startSession(spec sessionSpec) (*session, error) {
	s := &session{
		n:             spec.topo.N(),
		mirror:        spec.topo.Clone(),
		deterministic: true,
		treeOnly:      spec.treeOnly,
	}
	s.exec = workload.Generate(workload.Config{
		Topology: spec.topo,
		Rounds:   spec.workload.Rounds,
		Seed:     spec.workload.Seed,
		PGlobal:  spec.workload.PGlobal,
		PGroup:   spec.workload.PGroup,
		PSubset:  spec.workload.PSubset,
	})

	base, batchFeed, err := planePreset(spec.plane)
	if err != nil {
		return nil, err
	}
	s.batchFeed = batchFeed
	base.MaxDelay = spec.maxDelay
	base.Seed = spec.deliverySeed
	base.HbEvery = spec.hbEvery
	base.HbTimeout = spec.hbTimeout
	base.SeekTimeout = spec.seekTimeout
	base.Strict = true
	base.KeepMembers = true
	base.Events = spec.events

	if len(spec.participants) <= 1 {
		cfg := base
		cfg.Topology = spec.topo.Clone()
		s.parts = []*sessionPart{{c: livenet.New(cfg), nodes: spec.topo.AliveNodes()}}
	} else {
		// Bind every listener first, then cross-wire the address books:
		// adoption candidates can be any node, not just tree neighbours.
		trs := make([]*tcptransport.Transport, len(spec.participants))
		for i := range trs {
			tr, err := tcptransport.New(tcptransport.Config{Listen: "127.0.0.1:0"})
			if err != nil {
				for _, prev := range trs[:i] {
					prev.Close()
				}
				return nil, fmt.Errorf("replay: bind participant %d: %w", i, err)
			}
			trs[i] = tr
		}
		addrOf := make(map[int]string, s.n)
		for i, nodes := range spec.participants {
			for _, id := range nodes {
				addrOf[id] = trs[i].Addr()
			}
		}
		for i, nodes := range spec.participants {
			local := make(map[int]bool, len(nodes))
			for _, id := range nodes {
				local[id] = true
			}
			peers := make(map[int]string, s.n)
			for id, addr := range addrOf {
				if !local[id] {
					peers[id] = addr
				}
			}
			trs[i].SetPeers(peers)
		}
		for i, nodes := range spec.participants {
			cfg := base
			cfg.Topology = spec.topo.Clone()
			cfg.Transport = trs[i]
			cfg.LocalNodes = nodes
			part := &sessionPart{c: livenet.New(cfg), nodes: nodes, host: make(map[int]bool, len(nodes))}
			for _, id := range nodes {
				part.host[id] = true
			}
			s.parts = append(s.parts, part)
		}
	}
	return s, nil
}

// partOf returns the participant hosting node id.
func (s *session) partOf(id int) *sessionPart {
	if len(s.parts) == 1 {
		return s.parts[0]
	}
	for _, p := range s.parts {
		if p.host[id] {
			return p
		}
	}
	return nil
}

// observe feeds rounds [lo, hi) of every currently-alive process, then
// settles. Each workload round generates exactly one interval per process,
// so Streams[p][lo:hi] is the round range.
func (s *session) observe(lo, hi int) error {
	for _, p := range s.mirror.AliveNodes() {
		stream := s.exec.Streams[p]
		if hi > len(stream) {
			return fmt.Errorf("replay: observe step [%d,%d) beyond process %d's %d rounds", lo, hi, p, len(stream))
		}
		part := s.partOf(p)
		if s.batchFeed {
			part.c.ObserveBatch(p, stream[lo:hi])
		} else {
			for _, iv := range stream[lo:hi] {
				part.c.Observe(p, iv)
			}
		}
	}
	return s.settle()
}

// kill crash-stops victim at the current quiescent barrier and blocks until
// every repair the crash triggered has concluded: the orphans' repair
// counters account for each orphan, and the surviving parent (if any) has
// dropped the dead child's queue. It also classifies the kill against the
// determinism model.
func (s *session) kill(victim int) error {
	if !s.mirror.Alive(victim) {
		return fmt.Errorf("replay: kill of already-dead node %d", victim)
	}
	s.killsSeen = true
	if !s.mirror.IsLeaf(victim) && !s.treeOnly {
		// An orphaned subtree on a complete graph renegotiates its parent;
		// which candidate adopts is a heartbeat-timing race.
		s.deterministic = false
	}
	parent := s.mirror.Parent(victim)
	_, orphans := s.mirror.MarkFailed(victim)
	s.expectedRepairs += int64(len(orphans))
	s.expectedSuspects += int64(len(orphans))
	if parent != tree.None && s.mirror.Alive(parent) {
		s.expectedSuspects++
	}

	repairsBase := s.sumRepairs()
	dropsBase := int64(-1)
	var parentPart *sessionPart
	if parent != tree.None && s.mirror.Alive(parent) {
		parentPart = s.partOf(parent)
		dropsBase = int64(parentPart.c.Metrics()[parent].ChildDrops)
	}

	s.partOf(victim).c.Kill(victim)

	deadline := time.Now().Add(30 * time.Second)
	for {
		if s.offScriptExcess() {
			// The run has gone off-script — e.g. the parent spuriously
			// suspected and dropped the victim before the kill, which makes
			// this barrier unsatisfiable. The execution is still sound, just
			// not byte-reproducible: downgrade and settle for quiescence
			// instead of step precision.
			s.deterministic = false
			break
		}
		done := s.sumRepairs() >= repairsBase+int64(len(orphans))
		if done && parentPart != nil {
			done = int64(parentPart.c.Metrics()[parent].ChildDrops) >= dropsBase+1
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replay: repair barrier after killing %d timed out (%d orphans, repairs %d→%d)",
				victim, len(orphans), repairsBase, s.sumRepairs())
		}
		time.Sleep(time.Millisecond)
	}
	return s.settle()
}

func (s *session) sumRepairs() int64 {
	total := int64(0)
	for _, p := range s.parts {
		total += int64(len(p.c.Repairs()))
	}
	return total
}

// settle blocks until the whole deployment is quiescent. A single
// participant's credit ledger covers every in-flight consequence of what
// was fed, so Drain suffices; across participants TCP frames in flight
// carry no credit, so after draining every ledger the session polls the
// summed traffic counters until they hold still.
func (s *session) settle() error {
	for _, p := range s.parts {
		p.c.Drain()
	}
	if len(s.parts) == 1 {
		return nil
	}
	type snap struct{ in, out, dets, stale, drops, repairs, dups int64 }
	sum := func() snap {
		var v snap
		for _, p := range s.parts {
			cm := p.c.ClusterMetrics()
			v.in += cm.MsgsIn
			v.out += cm.MsgsOut
			v.dets += cm.Detections
			v.stale += cm.StaleReports
			v.drops += cm.ChildDrops
			v.repairs += cm.Repairs
			v.dups += cm.Duplicates
		}
		return v
	}
	deadline := time.Now().Add(60 * time.Second)
	prev := sum()
	stable := 0
	for stable < 3 {
		if time.Now().After(deadline) {
			return fmt.Errorf("replay: settle timed out (traffic still moving after 60s)")
		}
		time.Sleep(2 * time.Millisecond)
		for _, p := range s.parts {
			p.c.Drain()
		}
		cur := sum()
		if cur == prev {
			stable++
		} else {
			stable = 0
			prev = cur
		}
	}
	return nil
}

// run executes a schedule from the top. stepDone, when set, is called after
// each step with its index (the Recorder stamps step times through it).
func (s *session) run(schedule []Step, pace func(i int), stepDone func(i int)) error {
	for i, st := range schedule {
		if pace != nil {
			pace(i)
		}
		var err error
		switch st.Kind {
		case StepObserve:
			err = s.observe(st.Lo, st.Hi)
		case StepKill:
			err = s.kill(st.Node)
		default:
			err = fmt.Errorf("replay: unknown step kind %d", st.Kind)
		}
		if err != nil {
			return err
		}
		if stepDone != nil {
			stepDone(i)
		}
	}
	return nil
}

// close tears the deployment down (idempotent) and returns the merged,
// canonically ordered detections. Transports are closed by their clusters.
func (s *session) close() []livenet.Detection {
	lists := make([][]livenet.Detection, len(s.parts))
	for i, p := range s.parts {
		p.c.Close()
		lists[i] = p.c.Detections()
	}
	s.closed = true
	return MergeDetections(lists...)
}

// shutdown is close with a deadline: it stops participants in order and on
// ctx expiry reports which ones remain running (they can be shut down again
// — livenet.Shutdown leaves an expired cluster running and consistent).
func (s *session) shutdown(ctx context.Context) error {
	for i, p := range s.parts {
		if err := p.c.Shutdown(ctx); err != nil {
			return fmt.Errorf("replay: participant %d: %w", i, err)
		}
	}
	s.closed = true
	return nil
}

// offScript reports failure-detector activity beyond what the schedule
// accounts for: a suspicion or repair the harness never asked for happened —
// some heartbeat stalled past its timeout under load and a live subtree was
// detached. The outcome is still sound, but it is not byte-reproducible, so
// callers sample this at the final barrier (before close) and downgrade the
// determinism class.
func (s *session) offScript() bool {
	ev := s.metrics().Events
	return ev["node_suspected"] != s.expectedSuspects ||
		ev["repair_concluded"] != s.expectedRepairs
}

// offScriptExcess is the barrier-escape form of offScript: strictly more
// failure-detector activity than the schedule accounts for. Mid-kill the
// counters may legitimately lag the expectation; they may never exceed it.
func (s *session) offScriptExcess() bool {
	ev := s.metrics().Events
	return ev["node_suspected"] > s.expectedSuspects ||
		ev["repair_concluded"] > s.expectedRepairs
}

// metrics sums ClusterMetrics across participants (scalar fields the
// harnesses reconcile; per-kind event counts are merged too).
func (s *session) metrics() livenet.ClusterMetrics {
	var out livenet.ClusterMetrics
	out.Events = make(map[string]int64)
	for _, p := range s.parts {
		cm := p.c.ClusterMetrics()
		out.Nodes += cm.Nodes
		out.MsgsIn += cm.MsgsIn
		out.MsgsOut += cm.MsgsOut
		out.IntervalsIn += cm.IntervalsIn
		out.Detections += cm.Detections
		out.StaleReports += cm.StaleReports
		out.Duplicates += cm.Duplicates
		out.Repairs += cm.Repairs
		out.ChildDrops += cm.ChildDrops
		out.Heartbeats += cm.Heartbeats
		out.BadFrames += cm.BadFrames
		out.LatencyCount += cm.LatencyCount
		if cm.LatencyP50 > out.LatencyP50 {
			out.LatencyP50 = cm.LatencyP50
		}
		if cm.LatencyP99 > out.LatencyP99 {
			out.LatencyP99 = cm.LatencyP99
		}
		out.KilledProcesses += cm.KilledProcesses
		for k, v := range cm.Events {
			out.Events[k] += v
		}
	}
	return out
}
