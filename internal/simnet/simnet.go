// Package simnet is a deterministic discrete-event simulator for the
// asynchronous message-passing system of the paper's model: n processes, no
// shared clock, non-FIFO channels, crash-stop failures.
//
// The simulator substitutes for the physical large-scale network (WSN /
// modular-robot swarm) the paper targets but never deploys on — its model is
// exactly "asynchronous processes exchanging messages that may be delivered
// out of order", which the simulator reproduces while adding what a real
// testbed cannot give: perfect reproducibility (a seed fixes the entire
// schedule) and exact message/hop accounting for the complexity experiments.
//
// Each message is delivered after a pseudo-random delay drawn from the
// configured window; because later messages can draw shorter delays, channel
// reordering arises naturally (unless FIFO mode forces per-link ordering, an
// ablation knob). Handlers run on the single simulation goroutine, so
// component code needs no locking and every run is bit-reproducible.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is virtual time in abstract ticks (think microseconds).
type Time int64

// Kind labels a message or timer for dispatch and statistics.
type Kind string

// Message is one unit of communication between two processes.
type Message struct {
	From, To int
	Kind     Kind
	Payload  any
	// SentAt is the virtual send time; handlers can compute latency.
	SentAt Time
}

// Handler is implemented by every simulated process.
type Handler interface {
	// OnMessage delivers a message at virtual time at.
	OnMessage(at Time, msg Message)
	// OnTimer fires a timer the process armed with After/At.
	OnTimer(at Time, kind Kind, data any)
}

// Config tunes the simulator.
type Config struct {
	// Seed fixes the pseudo-random delay schedule.
	Seed int64
	// MinDelay and MaxDelay bound per-message delivery delay (uniform).
	// Defaults: 1 and 10 ticks.
	MinDelay, MaxDelay Time
	// FIFO forces per-(sender,receiver) in-order delivery, an ablation of
	// the paper's non-FIFO model.
	FIFO bool
	// LossProb drops each message with the given probability. The paper's
	// model assumes reliable channels; this knob exists to demonstrate the
	// consequences of violating that assumption (detections are missed —
	// never falsified; see the monitor loss tests).
	LossProb float64
	// LinkCheck, if non-nil, vets every Send; sending over a non-existent
	// link panics (it indicates a routing bug in the layer above).
	LinkCheck func(from, to int) bool
	// PayloadBytes, if non-nil, returns the wire size of a payload so the
	// statistics can report byte volumes alongside message counts (the
	// paper's messages carry O(n)-sized vector timestamps). It receives the
	// link endpoints so stateful encodings (differential timestamps) can be
	// accounted per link; it is called once per successfully queued message
	// in deterministic order.
	PayloadBytes func(from, to int, kind Kind, payload any) int
}

// Stats aggregates traffic counters. Message complexity in the paper counts
// one message per link traversal; multi-hop routes are sent hop-by-hop by
// the layer above, so Sent counts align with the paper's metric.
type Stats struct {
	Sent          map[Kind]int
	Delivered     map[Kind]int
	Bytes         map[Kind]int // populated when Config.PayloadBytes is set
	DroppedDead   int          // messages addressed to crashed processes
	Lost          int          // messages dropped by the lossy-channel knob
	TimersFired   int
	TotalSent     int
	TotalDeliverd int
	TotalBytes    int
}

// Sim is the simulator. Not safe for concurrent use: Register, Send, timers
// and Run all happen on one goroutine (handlers are invoked inline).
type Sim struct {
	cfg      Config
	now      Time
	rng      *rand.Rand
	events   eventHeap
	seq      uint64
	handlers map[int]Handler
	crashed  map[int]bool
	lastAt   map[linkKey]Time // FIFO mode: last scheduled delivery per link
	stats    Stats
	running  bool
}

type linkKey struct{ from, to int }

type event struct {
	at   Time
	seq  uint64 // FIFO tiebreak: schedule order
	to   int
	msg  *Message // nil for timers
	kind Kind     // timer kind
	data any      // timer payload
}

// New returns a simulator with the given configuration.
func New(cfg Config) *Sim {
	if cfg.MinDelay == 0 && cfg.MaxDelay == 0 {
		cfg.MinDelay, cfg.MaxDelay = 1, 10
	}
	if cfg.MinDelay < 0 || cfg.MaxDelay < cfg.MinDelay {
		panic(fmt.Sprintf("simnet: invalid delay window [%d,%d]", cfg.MinDelay, cfg.MaxDelay))
	}
	if cfg.LossProb < 0 || cfg.LossProb >= 1 {
		panic(fmt.Sprintf("simnet: invalid loss probability %v", cfg.LossProb))
	}
	return &Sim{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		handlers: make(map[int]Handler),
		crashed:  make(map[int]bool),
		lastAt:   make(map[linkKey]Time),
		stats: Stats{
			Sent:      make(map[Kind]int),
			Delivered: make(map[Kind]int),
			Bytes:     make(map[Kind]int),
		},
	}
}

// Register installs the handler for process id. Re-registering panics.
func (s *Sim) Register(id int, h Handler) {
	if _, dup := s.handlers[id]; dup {
		panic(fmt.Sprintf("simnet: process %d already registered", id))
	}
	s.handlers[id] = h
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Stats returns a copy of the traffic counters.
func (s *Sim) Stats() Stats {
	cp := s.stats
	cp.Sent = make(map[Kind]int, len(s.stats.Sent))
	for k, v := range s.stats.Sent {
		cp.Sent[k] = v
	}
	cp.Delivered = make(map[Kind]int, len(s.stats.Delivered))
	for k, v := range s.stats.Delivered {
		cp.Delivered[k] = v
	}
	cp.Bytes = make(map[Kind]int, len(s.stats.Bytes))
	for k, v := range s.stats.Bytes {
		cp.Bytes[k] = v
	}
	return cp
}

// Crashed reports whether id has crashed.
func (s *Sim) Crashed(id int) bool { return s.crashed[id] }

// Crash marks id failed (crash-stop): its pending and future messages and
// timers are silently discarded. Counting continues so experiments can see
// wasted traffic.
func (s *Sim) Crash(id int) { s.crashed[id] = true }

// Send schedules delivery of one message over one link after a random delay.
// Messages from or to crashed processes are dropped (the sender no longer
// exists / the receiver never processes them); messages to unregistered
// processes panic.
func (s *Sim) Send(from, to int, kind Kind, payload any) {
	if s.crashed[from] {
		return
	}
	if s.cfg.LinkCheck != nil && !s.cfg.LinkCheck(from, to) {
		panic(fmt.Sprintf("simnet: no link %d→%d for %q", from, to, kind))
	}
	if _, ok := s.handlers[to]; !ok {
		panic(fmt.Sprintf("simnet: send to unregistered process %d", to))
	}
	s.stats.Sent[kind]++
	s.stats.TotalSent++
	if s.cfg.LossProb > 0 && s.rng.Float64() < s.cfg.LossProb {
		s.stats.Lost++
		return
	}
	if s.cfg.PayloadBytes != nil {
		b := s.cfg.PayloadBytes(from, to, kind, payload)
		s.stats.Bytes[kind] += b
		s.stats.TotalBytes += b
	}
	at := s.now + s.delay()
	if s.cfg.FIFO {
		k := linkKey{from, to}
		if last := s.lastAt[k]; at < last {
			at = last
		}
		s.lastAt[k] = at
	}
	s.push(&event{at: at, to: to, msg: &Message{From: from, To: to, Kind: kind, Payload: payload, SentAt: s.now}})
}

// After arms a one-shot timer for process id, firing after d ticks.
func (s *Sim) After(id int, d Time, kind Kind, data any) {
	if d < 0 {
		panic(fmt.Sprintf("simnet: negative timer %d", d))
	}
	s.push(&event{at: s.now + d, to: id, kind: kind, data: data})
}

// Run processes events in timestamp order until the queue drains or virtual
// time would exceed until (0 means no limit). It returns the number of
// events processed.
func (s *Sim) Run(until Time) int {
	if s.running {
		panic("simnet: Run re-entered from a handler")
	}
	s.running = true
	defer func() { s.running = false }()
	processed := 0
	for len(s.events) > 0 {
		ev := s.events[0]
		if until > 0 && ev.at > until {
			break
		}
		heap.Pop(&s.events)
		if ev.at > s.now {
			s.now = ev.at
		}
		if s.crashed[ev.to] {
			if ev.msg != nil {
				s.stats.DroppedDead++
			}
			continue
		}
		h, ok := s.handlers[ev.to]
		if !ok {
			panic(fmt.Sprintf("simnet: event for unregistered process %d", ev.to))
		}
		if ev.msg != nil {
			s.stats.Delivered[ev.msg.Kind]++
			s.stats.TotalDeliverd++
			h.OnMessage(s.now, *ev.msg)
		} else {
			s.stats.TimersFired++
			h.OnTimer(s.now, ev.kind, ev.data)
		}
		processed++
	}
	if until > 0 && s.now < until {
		// The simulated window was quiet past the last event; time still
		// passes through it.
		s.now = until
	}
	return processed
}

// RunUntilIdle processes every pending event (including those scheduled by
// handlers while running) and returns the count.
func (s *Sim) RunUntilIdle() int { return s.Run(0) }

func (s *Sim) delay() Time {
	span := int64(s.cfg.MaxDelay - s.cfg.MinDelay)
	if span == 0 {
		return s.cfg.MinDelay
	}
	return s.cfg.MinDelay + Time(s.rng.Int63n(span+1))
}

func (s *Sim) push(ev *event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.events, ev)
}

// eventHeap orders events by (time, schedule order).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
