package simnet

import (
	"testing"
)

// recorder collects everything a process sees.
type recorder struct {
	msgs   []Message
	times  []Time
	timers []Kind
	onMsg  func(at Time, msg Message)
	onTmr  func(at Time, kind Kind, data any)
}

func (r *recorder) OnMessage(at Time, msg Message) {
	r.msgs = append(r.msgs, msg)
	r.times = append(r.times, at)
	if r.onMsg != nil {
		r.onMsg(at, msg)
	}
}

func (r *recorder) OnTimer(at Time, kind Kind, data any) {
	r.timers = append(r.timers, kind)
	if r.onTmr != nil {
		r.onTmr(at, kind, data)
	}
}

func TestDeliveryAndStats(t *testing.T) {
	s := New(Config{Seed: 1})
	a, b := &recorder{}, &recorder{}
	s.Register(0, a)
	s.Register(1, b)
	for i := 0; i < 10; i++ {
		s.Send(0, 1, "data", i)
	}
	s.RunUntilIdle()
	if len(b.msgs) != 10 {
		t.Fatalf("delivered %d, want 10", len(b.msgs))
	}
	st := s.Stats()
	if st.Sent["data"] != 10 || st.Delivered["data"] != 10 || st.TotalSent != 10 {
		t.Fatalf("stats: %+v", st)
	}
	// Delivery times are non-decreasing as processed.
	for i := 1; i < len(b.times); i++ {
		if b.times[i] < b.times[i-1] {
			t.Fatal("virtual time went backwards")
		}
	}
}

func TestNonFIFOReordersAndFIFODoesNot(t *testing.T) {
	reordered := func(fifo bool, seed int64) bool {
		s := New(Config{Seed: seed, FIFO: fifo, MinDelay: 1, MaxDelay: 50})
		r := &recorder{}
		s.Register(0, &recorder{})
		s.Register(1, r)
		for i := 0; i < 50; i++ {
			s.Send(0, 1, "m", i)
		}
		s.RunUntilIdle()
		for i := 1; i < len(r.msgs); i++ {
			if r.msgs[i].Payload.(int) < r.msgs[i-1].Payload.(int) {
				return true
			}
		}
		return false
	}
	anyReorder := false
	for seed := int64(0); seed < 10; seed++ {
		if reordered(true, seed) {
			t.Fatalf("seed %d: FIFO mode reordered", seed)
		}
		if reordered(false, seed) {
			anyReorder = true
		}
	}
	if !anyReorder {
		t.Fatal("non-FIFO mode never reordered across 10 seeds")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int {
		s := New(Config{Seed: 99, MinDelay: 1, MaxDelay: 30})
		r := &recorder{}
		s.Register(0, &recorder{})
		s.Register(1, r)
		for i := 0; i < 40; i++ {
			s.Send(0, 1, "m", i)
		}
		s.RunUntilIdle()
		var order []int
		for _, m := range r.msgs {
			order = append(order, m.Payload.(int))
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("equal seeds produced different schedules")
		}
	}
}

func TestCrashDropsTraffic(t *testing.T) {
	s := New(Config{Seed: 3})
	a, b := &recorder{}, &recorder{}
	s.Register(0, a)
	s.Register(1, b)
	s.Send(0, 1, "m", "early")
	s.Crash(1)
	s.Send(0, 1, "m", "late")
	s.RunUntilIdle()
	if len(b.msgs) != 0 {
		t.Fatalf("crashed process received %d messages", len(b.msgs))
	}
	if st := s.Stats(); st.DroppedDead != 2 {
		t.Fatalf("DroppedDead = %d, want 2", st.DroppedDead)
	}
	// A crashed sender's messages vanish without counting as sent.
	sentBefore := s.Stats().TotalSent
	s.Crash(0)
	s.Send(0, 1, "m", "ghost")
	if s.Stats().TotalSent != sentBefore {
		t.Fatal("crashed sender's message was counted")
	}
}

func TestTimers(t *testing.T) {
	s := New(Config{Seed: 4})
	r := &recorder{}
	s.Register(0, r)
	s.After(0, 100, "tick", nil)
	s.After(0, 50, "tock", nil)
	s.RunUntilIdle()
	if len(r.timers) != 2 || r.timers[0] != "tock" || r.timers[1] != "tick" {
		t.Fatalf("timers = %v", r.timers)
	}
	if s.Now() != 100 {
		t.Fatalf("Now = %d, want 100", s.Now())
	}
}

func TestRunUntilBound(t *testing.T) {
	s := New(Config{Seed: 5})
	r := &recorder{}
	s.Register(0, r)
	s.After(0, 10, "a", nil)
	s.After(0, 1000, "b", nil)
	if got := s.Run(100); got != 1 {
		t.Fatalf("processed %d, want 1", got)
	}
	if s.Now() != 100 {
		t.Fatalf("Now = %d, want clamped to 100", s.Now())
	}
	s.RunUntilIdle()
	if len(r.timers) != 2 {
		t.Fatalf("timers = %v", r.timers)
	}
}

func TestHandlersCanSendDuringRun(t *testing.T) {
	s := New(Config{Seed: 6})
	hops := 0
	relay := &recorder{}
	relay.onMsg = func(at Time, msg Message) {
		hops++
		if n := msg.Payload.(int); n > 0 {
			s.Send(1, 1, "loop", n-1)
		}
	}
	s.Register(1, relay)
	s.Send(1, 1, "loop", 4) // self-messages model local queuing
	s.RunUntilIdle()
	if hops != 5 {
		t.Fatalf("hops = %d, want 5", hops)
	}
}

func TestLinkCheckEnforced(t *testing.T) {
	s := New(Config{Seed: 7, LinkCheck: func(from, to int) bool { return false }})
	s.Register(0, &recorder{})
	s.Register(1, &recorder{})
	defer func() {
		if recover() == nil {
			t.Error("send over missing link did not panic")
		}
	}()
	s.Send(0, 1, "m", nil)
}

func TestLossyChannel(t *testing.T) {
	s := New(Config{Seed: 8, LossProb: 0.3})
	r := &recorder{}
	s.Register(0, &recorder{})
	s.Register(1, r)
	const sent = 500
	for i := 0; i < sent; i++ {
		s.Send(0, 1, "m", i)
	}
	s.RunUntilIdle()
	st := s.Stats()
	if st.Lost == 0 {
		t.Fatal("nothing lost at 30%")
	}
	if st.Lost+len(r.msgs) != sent {
		t.Fatalf("lost %d + delivered %d != sent %d", st.Lost, len(r.msgs), sent)
	}
	// Loss rate should be in the right ballpark.
	rate := float64(st.Lost) / sent
	if rate < 0.2 || rate > 0.4 {
		t.Fatalf("loss rate %v far from 0.3", rate)
	}
}

func TestValidationPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"dup-register": func() { s := New(Config{}); s.Register(0, &recorder{}); s.Register(0, &recorder{}) },
		"bad-window":   func() { New(Config{MinDelay: 10, MaxDelay: 5}) },
		"bad-loss":     func() { New(Config{LossProb: 1}) },
		"neg-timer":    func() { s := New(Config{}); s.Register(0, &recorder{}); s.After(0, -1, "x", nil) },
		"unregistered": func() { s := New(Config{}); s.Register(0, &recorder{}); s.Send(0, 9, "m", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
