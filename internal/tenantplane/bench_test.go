package tenantplane

import (
	"fmt"
	"runtime"
	"testing"

	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// tenantFootprint measures the steady-state cost of holding `tenants` idle
// registered predicates on one plane: the process goroutine count and the
// live heap bytes per tenant (GC'd before and after registration, so the
// delta is retained structures, not allocation churn). Run outside the timed
// loop — the GCs would otherwise pollute the throughput numbers.
func tenantFootprint(b *testing.B, tenants int) (goroutines int, bytesPerTenant float64) {
	b.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	plane, err := NewMultiplexer(Config{})
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < tenants; k++ {
		if _, err := plane.RegisterPredicate(fmt.Sprintf("fp-%03d", k), Spec{
			Topology: tree.Balanced(2, 5),
			Seed:     int64(k + 1),
			Workers:  1, SequentialDetect: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
	goroutines = runtime.NumGoroutine()
	runtime.GC()
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc {
		bytesPerTenant = float64(after.HeapAlloc-before.HeapAlloc) / float64(tenants)
	}
	plane.Close()
	return goroutines, bytesPerTenant
}

// BenchmarkMultiTenant measures the cost of multiplexing: the same total
// predicate work spread over 1, 16 and 256 tenants at a fixed tree size.
// Every tenant runs the full workload, so throughput is expected to scale
// with the tenant count while per-tenant throughput shows the multiplexing
// overhead (registration, per-cluster planes, plane bookkeeping) against the
// tenants=1 baseline. Clusters run lean (one worker, sequential engine) so
// the lane measures the plane, not GOMAXPROCS contention between 256 worker
// pools.
func BenchmarkMultiTenant(b *testing.B) {
	const rounds = 4
	topo := tree.Balanced(2, 5) // p = 63
	p := topo.N()
	e := workload.Generate(workload.Config{Topology: topo, Rounds: rounds, Seed: 42, PGlobal: 1})
	perTenant := 0
	for _, s := range e.Streams {
		perTenant += len(s)
	}

	for _, tenants := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("p=%d/tenants=%d", p, tenants), func(b *testing.B) {
			goroutines, bytesPerTenant := tenantFootprint(b, tenants)
			roots := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plane, err := NewMultiplexer(Config{})
				if err != nil {
					b.Fatal(err)
				}
				handles := make([]*Handle, tenants)
				for k := range handles {
					h, err := plane.RegisterPredicate(fmt.Sprintf("bench-%03d", k), Spec{
						Topology: tree.Balanced(2, 5),
						Seed:     int64(i*tenants + k + 1),
						Workers:  1, SequentialDetect: true,
					})
					if err != nil {
						b.Fatal(err)
					}
					handles[k] = h
				}
				for _, h := range handles {
					for proc := range e.Streams {
						h.ObserveBatch(proc, e.Streams[proc])
					}
				}
				for name, dets := range plane.Stop() {
					_ = name
					for _, d := range dets {
						if d.AtRoot {
							roots++
						}
					}
				}
			}
			b.StopTimer()
			if roots != rounds*tenants*b.N {
				b.Fatalf("root detections = %d, want %d — a tenant's plane is broken", roots, rounds*tenants*b.N)
			}
			total := float64(perTenant) * float64(tenants) * float64(b.N)
			b.ReportMetric(total/b.Elapsed().Seconds(), "intervals/sec")
			b.ReportMetric(total/float64(tenants)/b.Elapsed().Seconds(), "per-tenant-intervals/sec")
			b.ReportMetric(float64(roots)/float64(b.N), "detections/op")
			b.ReportMetric(float64(goroutines), "goroutines")
			b.ReportMetric(bytesPerTenant, "bytes/tenant")
		})
	}
}
