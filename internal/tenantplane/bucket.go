// Package tenantplane is the multi-tenant control plane: it multiplexes many
// independent detection trees — one per registered predicate — over one
// shared process fleet and one shared transport, and spreads tenant
// ownership across an active/active monitor fleet with bucket leases.
//
// The paper detects a single strong conjunctive predicate per spanning tree;
// a detection *service* runs thousands. Three pieces make that a plane
// instead of a pile of clusters:
//
//   - Multiplexer (plane.go): RegisterPredicate(tenantID, spec) instantiates
//     one livenet.Cluster per tenant over a shared transport. Each tenant's
//     frames are tagged with its wire id (reports inline, everything else in
//     a tenant envelope — internal/wire) and demultiplexed by a Mux
//     (mux.go), so one TCP connection carries every tenant's traffic with
//     per-tenant delta chaining intact.
//
//   - Bucket ownership (this file): tenant ids hash onto a fixed ring of
//     BucketCount buckets. Ownership is per bucket, not per tenant, so the
//     assignment state stays O(256) no matter how many tenants register —
//     the shape of the ARO-RP monitoring pattern the ROADMAP points at.
//
//   - Leases (lease.go, monitor.go): every fleet monitor maintains a TTL'd
//     liveness record and competes for bucket leases; a bucket's lease is
//     valid exactly while its holder's liveness record is. Monitors
//     rebalance toward an even share and pick up expired buckets, so any
//     monitor can own any tenant's root and a dead monitor's tenants are
//     re-owned within one TTL.
package tenantplane

import "hash/fnv"

// BucketCount is the fixed size of the ownership ring. 256 buckets keep the
// lease table O(1)-small while spreading tenants finely enough that a fleet
// of tens of monitors balances within a bucket or two.
const BucketCount = 256

// BucketOf maps a tenant id onto its ownership bucket.
func BucketOf(tenantID string) int {
	h := fnv.New32a()
	h.Write([]byte(tenantID))
	return int(h.Sum32() % BucketCount)
}

// WireID derives the default wire-level tenant tag for a tenant id: the
// FNV-32a hash, remapped off zero because the zero tag is reserved for
// untagged single-tenant traffic. Collisions across registered tenants are
// detected at registration (see Multiplexer.RegisterPredicate); a colliding
// tenant just supplies an explicit Spec.Wire.
func WireID(tenantID string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(tenantID))
	if v := h.Sum32(); v != 0 {
		return v
	}
	return 0x9e3779b9 // any fixed nonzero value; zero means "untagged"
}
