package tenantplane

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hierdet/internal/obsv"
	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// TestSchedulerFairness pins the DRR contract of the shared substrate: a hot
// tenant with a standing backlog on a deliberately small plane pool must not
// starve a quiet tenant. The plane runs two workers with a small quantum and
// a small mailbox bound, the hot tenant's feeders keep every one of its
// shards saturated (they block at the bound for most of the run), and the
// quiet tenant's observe→SolutionFound latency is measured round by round.
// Under starvation the quiet tenant's round would wait for the hot tenant's
// entire backlog — tens of seconds — so the per-round bound below catches
// the failure mode with a wide margin over scheduler jitter, including under
// the race detector.
func TestSchedulerFairness(t *testing.T) {
	const (
		hotRounds   = 20000
		quietRounds = 8
		roundBound  = 5 * time.Second
	)
	hotTopo := tree.Balanced(2, 3)   // 15 nodes
	quietTopo := tree.Balanced(2, 2) // 7 nodes

	plane, err := NewMultiplexer(Config{
		Workers:          2,
		SchedulerQuantum: 32,
		MailboxBound:     64,
	})
	if err != nil {
		t.Fatal(err)
	}

	hotExec := workload.Generate(workload.Config{Topology: hotTopo, Rounds: hotRounds, Seed: 7, PGlobal: 1})
	quietExec := workload.Generate(workload.Config{Topology: quietTopo, Rounds: quietRounds, Seed: 11, PGlobal: 1})

	hot, err := plane.RegisterPredicate("hot", Spec{
		Topology: tree.Balanced(2, 3), Seed: 1, SequentialDetect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The quiet tenant reports each root detection's arrival time.
	detections := make(chan time.Time, quietRounds)
	quiet, err := plane.RegisterPredicate("quiet", Spec{
		Topology: tree.Balanced(2, 2), Seed: 2, SequentialDetect: true,
		Events: func(ev obsv.Event) {
			if ev.Kind == obsv.SolutionFound && ev.Node == 0 {
				detections <- time.Now()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Flood the hot tenant from one feeder per process. With 15 nodes, a
	// 64-slot bound and two workers the feeders spend the run blocked at the
	// mailbox bound — the standing backlog the quiet tenant must cut through.
	var stopFeed atomic.Bool
	var hotFed atomic.Int64
	var feeders sync.WaitGroup
	for p := range hotExec.Streams {
		feeders.Add(1)
		go func(p int) {
			defer feeders.Done()
			for _, iv := range hotExec.Streams[p] {
				if stopFeed.Load() {
					return
				}
				hot.Observe(p, iv)
				hotFed.Add(1)
			}
		}(p)
	}
	// Wait until the flood has visibly queued work before measuring.
	waitFor(t, "the hot tenant's backlog", func() bool {
		for _, m := range hot.Cluster().Metrics() {
			if m.MailboxDepth > 0 {
				return true
			}
		}
		return false
	})

	hotTotal := int64(0)
	for _, s := range hotExec.Streams {
		hotTotal += int64(len(s))
	}
	var worst time.Duration
	for r := 0; r < quietRounds; r++ {
		start := time.Now()
		for p := range quietExec.Streams {
			quiet.Observe(p, quietExec.Streams[p][r])
		}
		select {
		case at := <-detections:
			if d := at.Sub(start); d > worst {
				worst = d
			}
		case <-time.After(roundBound):
			t.Fatalf("quiet tenant starved: round %d saw no root detection within %v (hot backlog fed %d/%d)",
				r, roundBound, hotFed.Load(), hotTotal)
		}
	}
	// The measurement only means something if the hot tenant still had work
	// queued the whole time; with these sizes it always does.
	if fed := hotFed.Load(); fed >= hotTotal {
		t.Fatalf("hot tenant drained before the quiet rounds finished (%d/%d fed) — grow hotRounds", fed, hotTotal)
	}
	t.Logf("quiet tenant worst observe→solution latency under flood: %v", worst)

	stopFeed.Store(true)
	feeders.Wait()
	plane.Close()
}
