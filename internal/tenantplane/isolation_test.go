package tenantplane

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hierdet/internal/interval"
	"hierdet/internal/livenet"
	"hierdet/internal/obsv"
	"hierdet/internal/transport"
	"hierdet/internal/transport/tcptransport"
	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// waitFor polls cond until it holds, failing the test on timeout.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// detBytes canonically serializes a detection list. Two runs of the same
// predicate over the same workload must produce byte-identical output — the
// isolation tests' equality currency. A solution Set holds one interval per
// queue and its order mirrors the node's child order, which after a repair
// depends on adoption timing; the serialization sorts each Set by origin so
// the comparison is over the solution itself, not the queue layout.
func detBytes(dets []livenet.Detection) []byte {
	var buf bytes.Buffer
	for _, d := range dets {
		set := append([]interval.Interval(nil), d.Det.Set...)
		sort.SliceStable(set, func(i, j int) bool {
			if set[i].Origin != set[j].Origin {
				return set[i].Origin < set[j].Origin
			}
			return set[i].Seq < set[j].Seq
		})
		fmt.Fprintf(&buf, "%d|%v|%d|%v|%+v\n", d.Node, d.AtRoot, d.Det.Node, set, d.Det.Agg)
	}
	return buf.Bytes()
}

// killStableBytes is detBytes for runs that killed a mid-tree node. Whether
// the parent drops its dead child's queue before or after it adopts the
// orphans is a real race (both are suspicion-triggered), and with kept queue
// members the drop-first ordering yields an extra root detection over the
// momentarily shrunken queue set — a correct solution, but a
// schedule-dependent one, and it shifts the root's detection sequence
// numbers behind it. The projection below is exactly the deterministic part:
// root detections spanning the full or the survivor tree (phase 1 and
// phase 2 solutions), every non-root detection, and no root sequence
// numbers. Everything else about each solution — members, clocks, spans —
// is compared verbatim.
func killStableBytes(dets []livenet.Detection, fullSpan, survivorSpan int) []byte {
	var buf bytes.Buffer
	for _, d := range dets {
		if d.AtRoot {
			if n := len(d.Det.Agg.Span); n != fullSpan && n != survivorSpan {
				continue
			}
		}
		set := append([]interval.Interval(nil), d.Det.Set...)
		sort.SliceStable(set, func(i, j int) bool {
			if set[i].Origin != set[j].Origin {
				return set[i].Origin < set[j].Origin
			}
			return set[i].Seq < set[j].Seq
		})
		agg := d.Det.Agg
		fmt.Fprintf(&buf, "%d|%v|%d|%v|%d|%v|%v|%v\n",
			d.Node, d.AtRoot, d.Det.Node, set, agg.Origin, agg.Lo, agg.Hi, agg.Span)
	}
	return buf.Bytes()
}

// mergeDets combines per-participant Stop outputs into the order a single
// hosting cluster would have returned (livenet's Stop comparator).
func mergeDets(parts ...[]livenet.Detection) []livenet.Detection {
	var out []livenet.Detection
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Det.Agg.Seq < out[j].Det.Agg.Seq
	})
	return out
}

// tcpPairFor builds two TCP transports whose peer maps split the topology's
// nodes between them: every node in nodes1 resolves to the first listener,
// the rest to the second.
func tcpPairFor(t *testing.T, allNodes []int, nodes1 []int) (tr1, tr2 *tcptransport.Transport) {
	t.Helper()
	mk := func() *tcptransport.Transport {
		tr, err := tcptransport.New(tcptransport.Config{Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	tr1, tr2 = mk(), mk()
	in1 := make(map[int]bool, len(nodes1))
	for _, id := range nodes1 {
		in1[id] = true
	}
	peers1, peers2 := map[int]string{}, map[int]string{}
	for _, id := range allNodes {
		if in1[id] {
			peers2[id] = tr1.Addr()
		} else {
			peers1[id] = tr2.Addr()
		}
	}
	tr1.SetPeers(peers1)
	tr2.SetPeers(peers2)
	return tr1, tr2
}

const (
	isoPhase1 = 6
	isoPhase2 = 6
	isoVictim = 1 // mid-tree node of Balanced(2, 2); orphans 3 and 4
)

// isoSpec is the tenant-side cluster configuration of the isolation test;
// isolated references run livenet directly with the same values.
func isoSpec(topo *tree.Topology) Spec {
	return Spec{
		Topology: topo, Seed: 29, Strict: true, KeepMembers: true,
		HbEvery:      2 * time.Millisecond,
		StartupGrace: 20 * time.Millisecond,
	}
}

// runIsolatedPair runs one predicate on its own private two-participant TCP
// mesh — the single-tenant deployment the shared-mesh tenants are measured
// against — and returns its canonically merged detections. With kill set,
// node isoVictim dies between the phases and the §III-F repair runs.
func runIsolatedPair(t *testing.T, e *workload.Execution, kill bool) []livenet.Detection {
	t.Helper()
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	topo := build()
	nodes1, nodes2 := []int{0, 1, 2, 3}, []int{4, 5, 6}
	tr1, tr2 := tcpPairFor(t, topo.AliveNodes(), nodes1)

	repaired := make(chan int, 8)
	spec := isoSpec(nil)
	mkRef := func(tr *tcptransport.Transport, local []int) *livenet.Cluster {
		return livenet.New(livenet.Config{
			Topology: build(), Seed: spec.Seed, Strict: spec.Strict, KeepMembers: spec.KeepMembers,
			HbEvery: spec.HbEvery, StartupGrace: spec.StartupGrace,
			Transport: tr, LocalNodes: local,
			OnRepair: func(orphan, newParent int) { repaired <- orphan },
		})
	}
	c1, c2 := mkRef(tr1, nodes1), mkRef(tr2, nodes2)
	host := func(p int) *livenet.Cluster {
		if p <= 3 {
			return c1
		}
		return c2
	}

	feed := func(lo, hi int) {
		var wg sync.WaitGroup
		for p := range e.Streams {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for k := lo; k < hi && k < len(e.Streams[p]); k++ {
					host(p).Observe(p, e.Streams[p][k])
					time.Sleep(10 * time.Microsecond)
				}
			}(p)
		}
		wg.Wait()
	}

	feed(0, isoPhase1)
	waitFor(t, "isolated phase-1 detections", func() bool {
		return c1.Metrics()[0].Detections >= isoPhase1
	})
	if kill {
		c1.Kill(isoVictim)
		for i := 0; i < 2; i++ {
			select {
			case <-repaired:
			case <-time.After(10 * time.Second):
				t.Fatal("isolated reference: timed out waiting for reattachment")
			}
		}
		waitFor(t, "isolated parent to drop dead child", func() bool {
			return c1.Metrics()[0].ChildDrops == 1
		})
	}
	feed(isoPhase1, isoPhase1+isoPhase2)
	waitFor(t, "isolated phase-2 detections", func() bool {
		return c1.Metrics()[0].Detections >= isoPhase1+isoPhase2
	})
	time.Sleep(20 * time.Millisecond) // settle: surplus detections would be a bug
	return mergeDets(c1.Stop(), c2.Stop())
}

// TestCrossTenantIsolation is the tenant plane's semantic contract: two
// tenants running identical workloads over ONE shared two-participant TCP
// mesh produce detections byte-identical to two isolated single-tenant
// deployments — through a mid-run Kill of one tenant's node and a lease
// failover of the monitor owning that tenant's bucket. The victim tenant
// repairs exactly like its isolated reference; the bystander tenant's output
// is untouched by its neighbour's failure.
func TestCrossTenantIsolation(t *testing.T) {
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	topo := build()
	e := workload.Generate(workload.Config{Topology: build(), Rounds: isoPhase1 + isoPhase2, Seed: 23, PGlobal: 1})

	refKilled := runIsolatedPair(t, e, true)
	refClean := runIsolatedPair(t, e, false)

	// Shared mesh: two fleet processes, each one Multiplexer, both in the
	// active/active monitor fleet on one lease table.
	nodes1, nodes2 := []int{0, 1, 2, 3}, []int{4, 5, 6}
	tr1, tr2 := tcpPairFor(t, topo.AliveNodes(), nodes1)
	tab := NewLeaseTable(200*time.Millisecond, nil)

	var alphaRepairs, leaseEvents atomic.Int64
	sink := func(ev obsv.Event) {
		switch ev.Kind {
		case obsv.RepairConcluded:
			if ev.Tenant == "alpha" {
				alphaRepairs.Add(1)
			}
		case obsv.LeaseAcquired, obsv.LeaseLost:
			leaseEvents.Add(1)
		}
	}
	mkPlane := func(tr *tcptransport.Transport, local []int, mon string) *Multiplexer {
		p, err := NewMultiplexer(Config{
			Transport: tr, LocalNodes: local,
			Monitor: mon, Leases: tab, LeaseEvery: 10 * time.Millisecond,
			Events: sink,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	plane1 := mkPlane(tr1, nodes1, "m1")
	plane2 := mkPlane(tr2, nodes2, "m2")
	defer plane1.Close()
	defer plane2.Close()

	reg := func(p *Multiplexer, tenant string) *Handle {
		h, err := p.RegisterPredicate(tenant, isoSpec(build()))
		if err != nil {
			t.Fatalf("RegisterPredicate(%s): %v", tenant, err)
		}
		return h
	}
	alpha := [2]*Handle{reg(plane1, "alpha"), reg(plane2, "alpha")}
	beta := [2]*Handle{reg(plane1, "beta"), reg(plane2, "beta")}

	feedTenant := func(h [2]*Handle, lo, hi int) {
		var wg sync.WaitGroup
		for p := range e.Streams {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				side := 0
				if p > 3 {
					side = 1
				}
				for k := lo; k < hi && k < len(e.Streams[p]); k++ {
					h[side].Observe(p, e.Streams[p][k])
					time.Sleep(10 * time.Microsecond)
				}
			}(p)
		}
		wg.Wait()
	}
	rootDets := func(h [2]*Handle) int { return h[0].Cluster().Metrics()[0].Detections }

	// Phase 1: both tenants to quiescence over the shared mesh.
	var wg sync.WaitGroup
	for _, h := range [][2]*Handle{alpha, beta} {
		wg.Add(1)
		go func(h [2]*Handle) { defer wg.Done(); feedTenant(h, 0, isoPhase1) }(h)
	}
	wg.Wait()
	waitFor(t, "phase-1 detections for both tenants", func() bool {
		return rootDets(alpha) >= isoPhase1 && rootDets(beta) >= isoPhase1
	})

	// Lease failover: the monitor owning alpha's bucket leaves the fleet;
	// the survivor must pick the bucket up within one TTL.
	bucket := BucketOf("alpha")
	waitFor(t, "alpha's bucket to be owned", func() bool { return tab.Owner(bucket) != "" })
	victimPlane, survivorPlane := plane1, plane2
	if tab.Owner(bucket) == "m2" {
		victimPlane, survivorPlane = plane2, plane1
	}
	survivorAlpha := alpha[0]
	if survivorPlane == plane2 {
		survivorAlpha = alpha[1]
	}
	handedOver := time.Now()
	victimPlane.Monitor().Stop()
	waitFor(t, "lease failover of alpha's bucket", func() bool { return survivorAlpha.Owned() })
	if took := time.Since(handedOver); took > tab.TTL() {
		t.Errorf("lease failover took %v, want within one TTL (%v)", took, tab.TTL())
	}
	if owner := tab.Owner(bucket); owner != survivorPlane.Monitor().ID() {
		t.Errorf("bucket %d owner = %q, want %q", bucket, owner, survivorPlane.Monitor().ID())
	}

	// Kill alpha's mid-tree node on its hosting plane. Beta shares the TCP
	// connections but must not notice.
	alpha[0].Cluster().Kill(isoVictim)
	waitFor(t, "alpha's reattachments", func() bool { return alphaRepairs.Load() >= 2 })
	waitFor(t, "alpha's parent to drop dead child", func() bool {
		return alpha[0].Cluster().Metrics()[0].ChildDrops == 1
	})

	// Phase 2: alpha detects over the survivor tree, beta over the full one.
	for _, h := range [][2]*Handle{alpha, beta} {
		wg.Add(1)
		go func(h [2]*Handle) { defer wg.Done(); feedTenant(h, isoPhase1, isoPhase1+isoPhase2) }(h)
	}
	wg.Wait()
	waitFor(t, "phase-2 detections for both tenants", func() bool {
		return rootDets(alpha) >= isoPhase1+isoPhase2 && rootDets(beta) >= isoPhase1+isoPhase2
	})
	time.Sleep(20 * time.Millisecond) // settle: surplus detections would be a bug

	gotAlpha := mergeDets(alpha[0].Stop(), alpha[1].Stop())
	gotBeta := mergeDets(beta[0].Stop(), beta[1].Stop())

	if !bytes.Equal(killStableBytes(gotAlpha, 7, 6), killStableBytes(refKilled, 7, 6)) {
		t.Errorf("alpha (shared mesh, kill) diverged from its isolated reference:\n got %d detections\nwant %d",
			len(gotAlpha), len(refKilled))
	}
	if !bytes.Equal(detBytes(gotBeta), detBytes(refClean)) {
		t.Errorf("beta (shared mesh, bystander) diverged from its isolated reference:\n got %d detections\nwant %d",
			len(gotBeta), len(refClean))
	}
	for i, h := range beta {
		for node, m := range h.Cluster().Metrics() {
			if m.BadFrames != 0 {
				t.Errorf("beta participant %d node %d: %d bad frames on a clean shared mesh", i, node, m.BadFrames)
			}
		}
	}
	if n := int(alphaRepairs.Load()); n != 2 {
		t.Errorf("alpha repairs = %d, want 2", n)
	}
	if leaseEvents.Load() == 0 {
		t.Error("no lease events; the monitor fleet never ran")
	}
}

// Test256TenantsSharedMesh is the scale acceptance run: 256 predicates
// multiplexed over one shared two-participant TCP mesh in one test process,
// each tenant's detections byte-identical to an isolated reference running
// its workload. Workloads cycle through four seeds, so four references
// cover all 256 tenants.
func Test256TenantsSharedMesh(t *testing.T) {
	tenants := 256
	if testing.Short() {
		tenants = 64
	}
	const rounds, seeds = 2, 4
	build := func() *tree.Topology { return tree.Chain(2) } // nodes 0 (root) and 1
	topo := build()

	spec := func(seed int64) Spec {
		return Spec{
			Topology: build(), Seed: seed, Strict: true, KeepMembers: true,
			Workers: 1, SequentialDetect: true,
		}
	}

	// Four isolated references over the deterministic in-process Network,
	// same two-participant split.
	execs := make([]*workload.Execution, seeds)
	refs := make([][]byte, seeds)
	for s := 0; s < seeds; s++ {
		execs[s] = workload.Generate(workload.Config{Topology: build(), Rounds: rounds, Seed: int64(100 + s), PGlobal: 1})
		net := transport.NewNetwork()
		sp := spec(int64(100 + s))
		mk := func(id int) *livenet.Cluster {
			return livenet.New(livenet.Config{
				Topology: build(), Seed: sp.Seed, Strict: sp.Strict, KeepMembers: sp.KeepMembers,
				Workers: sp.Workers, SequentialDetect: sp.SequentialDetect,
				Transport: net.Endpoint(id), LocalNodes: []int{id},
			})
		}
		c0, c1 := mk(0), mk(1)
		for k := 0; k < rounds; k++ {
			c0.Observe(0, execs[s].Streams[0][k])
			c1.Observe(1, execs[s].Streams[1][k])
		}
		waitFor(t, fmt.Sprintf("reference %d detections", s), func() bool {
			return c0.Metrics()[0].Detections >= rounds
		})
		time.Sleep(5 * time.Millisecond)
		refs[s] = detBytes(mergeDets(c0.Stop(), c1.Stop()))
	}

	// The shared mesh: two planes, one TCP connection pair, N tenants.
	tr1, tr2 := tcpPairFor(t, topo.AliveNodes(), []int{0})
	mkPlane := func(tr *tcptransport.Transport, local []int) *Multiplexer {
		p, err := NewMultiplexer(Config{Transport: tr, LocalNodes: local})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	plane1 := mkPlane(tr1, []int{0})
	plane2 := mkPlane(tr2, []int{1})
	defer plane1.Close()
	defer plane2.Close()

	handles := make([][2]*Handle, tenants)
	for k := range handles {
		name := fmt.Sprintf("tenant-%03d", k)
		sp := spec(int64(100 + k%seeds))
		h1, err := plane1.RegisterPredicate(name, sp)
		if err != nil {
			t.Fatalf("plane1 %s: %v", name, err)
		}
		h2, err := plane2.RegisterPredicate(name, sp)
		if err != nil {
			t.Fatalf("plane2 %s: %v", name, err)
		}
		handles[k] = [2]*Handle{h1, h2}
	}
	if got := len(plane1.Tenants()); got != tenants {
		t.Fatalf("plane1 tenants = %d, want %d", got, tenants)
	}

	for k, h := range handles {
		e := execs[k%seeds]
		for r := 0; r < rounds; r++ {
			h[0].Observe(0, e.Streams[0][r])
			h[1].Observe(1, e.Streams[1][r])
		}
	}
	waitFor(t, "every tenant's root detections", func() bool {
		for _, h := range handles {
			if h[0].Cluster().Metrics()[0].Detections < rounds {
				return false
			}
		}
		return true
	})
	time.Sleep(5 * time.Millisecond)

	for k, h := range handles {
		got := detBytes(mergeDets(h[0].Stop(), h[1].Stop()))
		if !bytes.Equal(got, refs[k%seeds]) {
			t.Fatalf("tenant %d diverged from its isolated reference (seed class %d)", k, k%seeds)
		}
	}
	if d := plane1.Registry(); d == nil {
		t.Fatal("plane registry missing")
	}
}
