package tenantplane

import (
	"sort"
	"sync"
	"time"
)

// LeaseTable is the fleet's shared ownership state: a TTL'd liveness record
// per monitor and a lease holder per bucket. It is the coordination-service
// document of the ARO-RP pattern (monitor docs with TTLs, a bucket
// assignment derived from whoever is alive) reduced to its semantics — an
// in-memory table safe for concurrent monitors. A deployment that wants the
// table shared across OS processes puts it behind its coordination service
// of choice; every rule below is expressed so that a remote implementation
// can replicate it: no operation reads more than the liveness set and one
// bucket's holder, and every decision is a compare-and-set on those.
//
// The invariant that makes expiry implicit: a bucket lease is valid exactly
// while its holder's liveness record is current. Monitors renew one liveness
// record per tick, not 256 leases, and a crashed monitor's buckets all
// expire together when its record lapses — rebalance-on-expiry needs no
// per-bucket timers.
type LeaseTable struct {
	ttl time.Duration
	now func() time.Time

	mu    sync.Mutex
	live  map[string]time.Time // monitor → liveness record expiry
	owner [BucketCount]string  // bucket → holder ("" = never held)
}

// NewLeaseTable builds a table whose liveness records last ttl. now, when
// non-nil, replaces time.Now — the injection point deterministic failover
// tests use.
func NewLeaseTable(ttl time.Duration, now func() time.Time) *LeaseTable {
	if ttl <= 0 {
		panic("tenantplane: lease TTL must be positive")
	}
	if now == nil {
		now = time.Now
	}
	return &LeaseTable{ttl: ttl, now: now, live: make(map[string]time.Time)}
}

// TTL returns the table's liveness-record duration.
func (t *LeaseTable) TTL() time.Duration { return t.ttl }

// Beat refreshes monitor's liveness record to now+TTL, creating it on the
// first call. Every lease the monitor holds stays valid for another TTL.
func (t *LeaseTable) Beat(monitor string) {
	t.mu.Lock()
	t.live[monitor] = t.now().Add(t.ttl)
	t.mu.Unlock()
}

// Retire deletes monitor's liveness record immediately — the clean-shutdown
// path. Its leases expire with the record, without waiting out the TTL.
func (t *LeaseTable) Retire(monitor string) {
	t.mu.Lock()
	delete(t.live, monitor)
	t.mu.Unlock()
}

// Live returns the monitors whose liveness records are current, sorted.
func (t *LeaseTable) Live() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	out := make([]string, 0, len(t.live))
	for m, exp := range t.live {
		if exp.After(now) {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// liveLocked reports whether monitor's liveness record is current.
func (t *LeaseTable) liveLocked(monitor string) bool {
	exp, ok := t.live[monitor]
	return ok && exp.After(t.now())
}

// Acquire attempts to take bucket's lease for monitor. It succeeds when the
// bucket is unheld, held by monitor already, or held by a monitor whose
// liveness record has expired — the rebalance-on-expiry rule. The caller
// should have Beat recently; acquiring without a current liveness record is
// refused (the lease would be born expired).
func (t *LeaseTable) Acquire(bucket int, monitor string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.liveLocked(monitor) {
		return false
	}
	holder := t.owner[bucket]
	if holder != "" && holder != monitor && t.liveLocked(holder) {
		return false
	}
	t.owner[bucket] = monitor
	return true
}

// Release gives bucket's lease up if monitor holds it — the voluntary half
// of rebalancing.
func (t *LeaseTable) Release(bucket int, monitor string) {
	t.mu.Lock()
	if t.owner[bucket] == monitor {
		t.owner[bucket] = ""
	}
	t.mu.Unlock()
}

// Owner returns bucket's current holder, or "" when the bucket is unheld or
// its holder's liveness record has expired.
func (t *LeaseTable) Owner(bucket int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h := t.owner[bucket]; h != "" && t.liveLocked(h) {
		return h
	}
	return ""
}

// OwnedBy returns the buckets monitor holds valid leases on, ascending.
func (t *LeaseTable) OwnedBy(monitor string) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.liveLocked(monitor) {
		return nil
	}
	var out []int
	for b, h := range t.owner {
		if h == monitor {
			out = append(out, b)
		}
	}
	return out
}

// Owners snapshots the valid assignment: bucket → holder, expired and
// unheld buckets absent.
func (t *LeaseTable) Owners() map[int]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]string)
	for b, h := range t.owner {
		if h != "" && t.liveLocked(h) {
			out[b] = h
		}
	}
	return out
}
