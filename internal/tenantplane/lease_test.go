package tenantplane

import (
	"sync"
	"testing"
	"time"

	"hierdet/internal/obsv"
)

// fakeClock is an injectable clock for deterministic lease tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBucketOfAndWireIDStable(t *testing.T) {
	for _, id := range []string{"", "alpha", "beta", "tenant-255"} {
		b := BucketOf(id)
		if b < 0 || b >= BucketCount {
			t.Fatalf("BucketOf(%q) = %d out of range", id, b)
		}
		if b != BucketOf(id) {
			t.Fatalf("BucketOf(%q) not stable", id)
		}
		if WireID(id) == 0 {
			t.Fatalf("WireID(%q) = 0; zero is reserved for untagged traffic", id)
		}
	}
	if BucketOf("alpha") == BucketOf("beta") && WireID("alpha") == WireID("beta") {
		t.Fatal("test tenants collide on both hashes; pick different names")
	}
}

func TestLeaseTableExpiryRules(t *testing.T) {
	clk := newFakeClock()
	tab := NewLeaseTable(100*time.Millisecond, clk.Now)

	if tab.Acquire(3, "m1") {
		t.Fatal("acquire without a liveness record must fail (lease would be born expired)")
	}
	tab.Beat("m1")
	if !tab.Acquire(3, "m1") {
		t.Fatal("live monitor could not take an unheld bucket")
	}
	if got := tab.Owner(3); got != "m1" {
		t.Fatalf("Owner(3) = %q, want m1", got)
	}

	// A live holder's lease is exclusive.
	tab.Beat("m2")
	if tab.Acquire(3, "m2") {
		t.Fatal("m2 stole a bucket from a live holder")
	}

	// The lease is valid exactly as long as the holder's liveness record:
	// once m1's record lapses, the bucket reads unheld and m2 may take it.
	clk.Advance(101 * time.Millisecond)
	if got := tab.Owner(3); got != "" {
		t.Fatalf("Owner(3) after holder expiry = %q, want unheld", got)
	}
	tab.Beat("m2") // m2's own record also lapsed above
	if !tab.Acquire(3, "m2") {
		t.Fatal("m2 could not take an expired bucket")
	}
	if got := tab.Owner(3); got != "m2" {
		t.Fatalf("Owner(3) = %q, want m2", got)
	}

	// Retire drops the record immediately — no TTL wait.
	tab.Retire("m2")
	if got := tab.Owner(3); got != "" {
		t.Fatalf("Owner(3) after retire = %q, want unheld", got)
	}
	if live := tab.Live(); len(live) != 0 {
		t.Fatalf("Live() = %v, want empty", live)
	}
}

// TestMonitorFairShareAndFailover drives two monitors by hand on a fake
// clock: they split the ring evenly; when one stops renewing, the survivor
// re-owns every bucket on its first tick after the TTL — the
// "rebalance within one TTL" acceptance criterion, with no slack beyond the
// tick that notices.
func TestMonitorFairShareAndFailover(t *testing.T) {
	clk := newFakeClock()
	tab := NewLeaseTable(100*time.Millisecond, clk.Now)

	var mu sync.Mutex
	events := map[string][2]int{} // monitor → {acquired, lost}
	sink := func(e obsv.Event) {
		mu.Lock()
		defer mu.Unlock()
		c := events[e.Monitor]
		switch e.Kind {
		case obsv.LeaseAcquired:
			c[0]++
		case obsv.LeaseLost:
			c[1]++
		}
		events[e.Monitor] = c
	}
	m1 := NewMonitor(MonitorConfig{ID: "m1", Table: tab, Events: sink})
	m2 := NewMonitor(MonitorConfig{ID: "m2", Table: tab, Events: sink})

	// Solo, m1 takes the whole ring.
	m1.Tick()
	if got := len(m1.Owned()); got != BucketCount {
		t.Fatalf("solo monitor owns %d buckets, want %d", got, BucketCount)
	}

	// m2 joins: fair share is 128 each. m1 sheds on its next tick, m2
	// acquires what was shed.
	m2.Tick()
	m1.Tick()
	m2.Tick()
	if g1, g2 := len(m1.Owned()), len(m2.Owned()); g1 != 128 || g2 != 128 {
		t.Fatalf("split = %d/%d, want 128/128", g1, g2)
	}
	// Stable from here: further ticks change nothing.
	m1.Tick()
	m2.Tick()
	if g1, g2 := len(m1.Owned()), len(m2.Owned()); g1 != 128 || g2 != 128 {
		t.Fatalf("split moved to %d/%d after steady-state ticks", g1, g2)
	}

	// m1 dies silently (no Retire, no more beats). Within one TTL its
	// record lapses; m2's first tick after that re-owns all 256.
	clk.Advance(tab.TTL() + time.Millisecond)
	m2.Tick()
	if got := len(m2.Owned()); got != BucketCount {
		t.Fatalf("survivor owns %d buckets after failover, want %d", got, BucketCount)
	}
	if got := len(tab.OwnedBy("m1")); got != 0 {
		t.Fatalf("dead monitor still holds %d valid leases", got)
	}

	// The ledger balances: every acquisition is matched by a loss except
	// the buckets currently held.
	mu.Lock()
	defer mu.Unlock()
	for _, m := range []*Monitor{m1, m2} {
		c := events[m.ID()]
		held := 0
		if m == m2 {
			held = BucketCount
		}
		// m1's shed buckets were released; its remaining 128 expired
		// without events (it never ticked again to notice).
		if m == m1 {
			held = 128
		}
		if c[0]-c[1] != held {
			t.Fatalf("%s: %d acquired - %d lost = %d, want %d", m.ID(), c[0], c[1], c[0]-c[1], held)
		}
	}
}

// TestMonitorStopReleasesEverything: a clean shutdown returns the buckets to
// the fleet immediately instead of making it wait out the TTL.
func TestMonitorStopReleasesEverything(t *testing.T) {
	clk := newFakeClock()
	tab := NewLeaseTable(time.Second, clk.Now)
	m1 := NewMonitor(MonitorConfig{ID: "m1", Table: tab})
	m2 := NewMonitor(MonitorConfig{ID: "m2", Table: tab})
	m1.Tick()
	m2.Tick()
	m1.Stop()
	m2.Tick()
	if got := len(m2.Owned()); got != BucketCount {
		t.Fatalf("survivor owns %d buckets after peer's clean stop, want %d (no TTL wait)", got, BucketCount)
	}
	m1.Stop() // idempotent
}
