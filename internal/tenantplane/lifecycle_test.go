package tenantplane

import (
	"context"
	"sync"
	"testing"
	"time"

	"hierdet/internal/livenet"
	"hierdet/internal/obsv"
	"hierdet/internal/tree"
	"hierdet/internal/workload"
)

// registerAndFeed puts one tenant on the plane and runs a small workload
// through it, returning the expected root-detection count.
func registerAndFeed(t *testing.T, p *Multiplexer, name string, seed int64) int {
	t.Helper()
	const rounds = 3
	topo := tree.Balanced(2, 2)
	h, err := p.RegisterPredicate(name, Spec{
		Topology: tree.Balanced(2, 2), Seed: seed,
		Workers: 1, SequentialDetect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := workload.Generate(workload.Config{Topology: topo, Rounds: rounds, Seed: seed, PGlobal: 1})
	for proc := range e.Streams {
		h.ObserveBatch(proc, e.Streams[proc])
	}
	return rounds
}

// TestMultiplexerCloseEqualsStop: Close+Detections is the same teardown as
// the deprecated Stop, and both are idempotent in their documented ways.
func TestMultiplexerCloseEqualsStop(t *testing.T) {
	viaStop := func() map[string][]livenet.Detection {
		p, err := NewMultiplexer(Config{})
		if err != nil {
			t.Fatal(err)
		}
		registerAndFeed(t, p, "alpha", 5)
		out := p.Stop()
		if second := p.Stop(); second != nil {
			t.Fatalf("second Stop returned %d tenants, want nil", len(second))
		}
		return out
	}()

	p, err := NewMultiplexer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	registerAndFeed(t, p, "alpha", 5)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	viaClose := p.Detections()
	if len(viaClose) != len(viaStop) {
		t.Fatalf("tenant count: Close %d, Stop %d", len(viaClose), len(viaStop))
	}
	for name, dets := range viaStop {
		if got := len(viaClose[name]); got != len(dets) {
			t.Fatalf("tenant %s: Close saw %d detections, Stop saw %d", name, got, len(dets))
		}
	}
}

// TestMultiplexerShutdown: a clean Shutdown equals Close; Detections serves
// the result afterwards.
func TestMultiplexerShutdown(t *testing.T) {
	p, err := NewMultiplexer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rounds := registerAndFeed(t, p, "beta", 7)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown after closed = %v, want nil", err)
	}
	roots := 0
	for _, d := range p.Detections()["beta"] {
		if d.AtRoot {
			roots++
		}
	}
	if roots != rounds {
		t.Fatalf("root detections = %d, want %d", roots, rounds)
	}
}

// TestMultiplexerShutdownDeadline: an expired deadline reopens the plane —
// the remaining tenants keep running, registration stays legal, and a later
// unbounded Shutdown finishes the job.
func TestMultiplexerShutdownDeadline(t *testing.T) {
	p, err := NewMultiplexer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A tenant with a long batch window parks report credits on flush
	// timers, guaranteeing the bounded Shutdown cannot quiesce in time.
	h, err := p.RegisterPredicate("gamma", Spec{
		Topology: tree.Chain(2), Seed: 3,
		Workers: 1, SequentialDetect: true, BatchWindow: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := workload.Generate(workload.Config{Topology: tree.Chain(2), Rounds: 2, Seed: 3, PGlobal: 1})
	for proc := range e.Streams {
		h.ObserveBatch(proc, e.Streams[proc])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("bounded Shutdown = %v, want context.DeadlineExceeded", err)
	}
	if p.Detections() != nil {
		t.Fatal("Detections non-nil after failed Shutdown")
	}
	// Plane reopened: registering another tenant must work.
	registerAndFeed(t, p, "delta", 11)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("unbounded Shutdown: %v", err)
	}
	out := p.Detections()
	if _, ok := out["gamma"]; !ok {
		t.Fatal("tenant gamma missing from final detections")
	}
	if _, ok := out["delta"]; !ok {
		t.Fatal("tenant delta missing from final detections")
	}
}

// TestMultiplexerEventsSubscription: Events mirrors Config.Events without
// construction-time presence — tenant-annotated cluster events arrive,
// cancel detaches, and a second subscriber is independent.
func TestMultiplexerEventsSubscription(t *testing.T) {
	p, err := NewMultiplexer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var mu sync.Mutex
	counts := map[obsv.EventKind]int{}
	tenants := map[string]bool{}
	cancel := p.Events(func(e obsv.Event) {
		mu.Lock()
		counts[e.Kind]++
		tenants[e.Tenant] = true
		mu.Unlock()
	})

	registerAndFeed(t, p, "eve", 13)
	h := p.Tenant("eve")
	h.Cluster().Drain()

	mu.Lock()
	if counts[obsv.TenantRegistered] != 1 {
		t.Fatalf("TenantRegistered events = %d, want 1", counts[obsv.TenantRegistered])
	}
	if counts[obsv.SolutionFound] == 0 {
		t.Fatal("no SolutionFound events reached the subscriber")
	}
	if !tenants["eve"] {
		t.Fatal("cluster events not annotated with the tenant id")
	}
	solBefore := counts[obsv.SolutionFound]
	mu.Unlock()

	cancel()
	cancel() // double-cancel is harmless

	// After cancel, a fresh workload's events must not arrive.
	e := workload.Generate(workload.Config{Topology: tree.Balanced(2, 2), Rounds: 2, Seed: 99, PGlobal: 1})
	for proc := range e.Streams {
		h.ObserveBatch(proc, e.Streams[proc])
	}
	h.Cluster().Drain()
	mu.Lock()
	if counts[obsv.SolutionFound] != solBefore {
		t.Fatalf("events after cancel: SolutionFound %d → %d", solBefore, counts[obsv.SolutionFound])
	}
	mu.Unlock()
}
