package tenantplane

import (
	"sync"
	"time"

	"hierdet/internal/obsv"
)

// MonitorConfig parameterizes one fleet monitor.
type MonitorConfig struct {
	// ID names this monitor in the lease table (required, unique per fleet).
	ID string
	// Table is the fleet's shared lease table (required).
	Table *LeaseTable
	// Every is the background tick period under Start (default TTL/4 —
	// several renewals fit inside one TTL, so a single missed tick cannot
	// expire a healthy monitor, and an expired peer's buckets are picked up
	// within the TTL the acceptance criterion names).
	Every time.Duration
	// OnAcquire and OnLose run on the ticking goroutine once per bucket
	// whose ownership changed hands, after the table already reflects it.
	OnAcquire func(bucket int)
	OnLose    func(bucket int)
	// Events receives LeaseAcquired/LeaseLost (Monitor = ID, Node = bucket).
	Events func(obsv.Event)
}

// Monitor is one member of the active/active fleet: it keeps its liveness
// record fresh and steers its bucket holdings toward the fleet's fair share
// — acquiring unheld and expired buckets, shedding surplus when new monitors
// join. Drive it manually with Tick (deterministic tests) or let Start run
// it on a background goroutine.
type Monitor struct {
	cfg MonitorConfig

	mu     sync.Mutex
	owned  [BucketCount]bool
	nOwned int

	startOnce, stopOnce sync.Once
	stop, done          chan struct{}
}

// NewMonitor builds a monitor. It holds nothing until the first Tick.
func NewMonitor(cfg MonitorConfig) *Monitor {
	if cfg.ID == "" {
		panic("tenantplane: MonitorConfig.ID is required")
	}
	if cfg.Table == nil {
		panic("tenantplane: MonitorConfig.Table is required")
	}
	if cfg.Every <= 0 {
		cfg.Every = cfg.Table.TTL() / 4
	}
	return &Monitor{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
}

// ID returns the monitor's fleet name.
func (m *Monitor) ID() string { return m.cfg.ID }

// Owns reports whether this monitor currently holds bucket's lease.
func (m *Monitor) Owns(bucket int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.owned[bucket]
}

// Owned returns the buckets this monitor holds, ascending.
func (m *Monitor) Owned() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, m.nOwned)
	for b, own := range m.owned {
		if own {
			out = append(out, b)
		}
	}
	return out
}

// Tick runs one renewal-and-rebalance sweep: beat, reconcile holdings the
// table no longer agrees with (a peer took an expired lease), acquire
// toward the fair share from the unheld/expired buckets, shed surplus above
// it. Scanning bucket order is deterministic — acquisition walks up from 0,
// shedding walks down from 255 — so a fleet converges to a stable partition
// instead of thrashing.
func (m *Monitor) Tick() {
	t := m.cfg.Table
	t.Beat(m.cfg.ID)
	live := len(t.Live())
	fair := (BucketCount + live - 1) / live // live ≥ 1: we just beat

	m.mu.Lock()
	defer m.mu.Unlock()
	for b := 0; b < BucketCount; b++ {
		if m.owned[b] && t.Owner(b) != m.cfg.ID {
			m.dropLocked(b)
		}
	}
	for b := 0; b < BucketCount && m.nOwned < fair; b++ {
		if !m.owned[b] && t.Owner(b) == "" && t.Acquire(b, m.cfg.ID) {
			m.owned[b] = true
			m.nOwned++
			m.notifyLocked(b, true)
		}
	}
	for b := BucketCount - 1; b >= 0 && m.nOwned > fair; b-- {
		if m.owned[b] {
			t.Release(b, m.cfg.ID)
			m.dropLocked(b)
		}
	}
}

// dropLocked records the loss of a bucket and notifies. Caller holds mu.
func (m *Monitor) dropLocked(b int) {
	m.owned[b] = false
	m.nOwned--
	m.notifyLocked(b, false)
}

// notifyLocked emits the lease event and runs the matching callback. The
// callbacks run under mu by design: they only flip plane-side ownership
// flags, and ordering them with the owned set keeps Owns consistent with
// the callback stream.
func (m *Monitor) notifyLocked(b int, acquired bool) {
	kind, cb := obsv.LeaseLost, m.cfg.OnLose
	if acquired {
		kind, cb = obsv.LeaseAcquired, m.cfg.OnAcquire
	}
	if m.cfg.Events != nil {
		m.cfg.Events(obsv.Event{Kind: kind, Node: b, Peer: obsv.NoPeer, Count: 1, Monitor: m.cfg.ID})
	}
	if cb != nil {
		cb(b)
	}
}

// Start runs Tick on a background goroutine every MonitorConfig.Every until
// Stop. The first tick runs immediately, so a freshly started monitor joins
// the fleet without waiting a period.
func (m *Monitor) Start() {
	m.startOnce.Do(func() {
		go func() {
			defer close(m.done)
			ticker := time.NewTicker(m.cfg.Every)
			defer ticker.Stop()
			m.Tick()
			for {
				select {
				case <-m.stop:
					return
				case <-ticker.C:
					m.Tick()
				}
			}
		}()
	})
}

// Stop ends the background goroutine (if Start ran), releases every held
// bucket and retires the liveness record, so the rest of the fleet re-owns
// the buckets on its next tick instead of waiting out the TTL.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() {
		close(m.stop)
		m.startOnce.Do(func() { close(m.done) }) // never started: nothing to wait for
		<-m.done
		m.mu.Lock()
		for b := 0; b < BucketCount; b++ {
			if m.owned[b] {
				m.cfg.Table.Release(b, m.cfg.ID)
				m.dropLocked(b)
			}
		}
		m.mu.Unlock()
		m.cfg.Table.Retire(m.cfg.ID)
	})
}
