package tenantplane

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hierdet/internal/transport"
	"hierdet/internal/wire"
)

// Mux multiplexes many tenants' detection traffic over one shared
// transport.Transport. Each tenant gets a virtual transport (Port) that the
// tenant's cluster uses exactly like a private one; on the way out the port
// stamps the tenant's wire id onto every frame — reports are tagged inline
// (so per-tenant delta chaining in tcptransport stays intact), everything
// else rides in a tenant envelope — and on the way in the mux routes each
// frame to the port its tag names. Tenant 0 is the compatibility lane: its
// frames travel bare, byte-identical to single-tenant traffic, and bare
// inbound frames route to it.
type Mux struct {
	inner transport.Transport

	mu      sync.RWMutex
	started bool
	closed  bool
	ports   map[uint32]*muxPort // wire tenant id → registered port

	dropped atomic.Uint64 // inbound frames with no registered port, or undecodable tags
}

// NewMux wraps inner. The caller hands ownership of inner to the mux: Close
// closes it, and nothing else may Start or Send on it.
func NewMux(inner transport.Transport) *Mux {
	if inner == nil {
		panic("tenantplane: NewMux requires a transport")
	}
	return &Mux{inner: inner, ports: make(map[uint32]*muxPort)}
}

// Start begins delivery on the shared transport. It is idempotent and may
// also happen implicitly when the first port starts; a Multiplexer calls it
// eagerly so a listen failure surfaces as an error instead of a panic inside
// livenet.New.
func (m *Mux) Start() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.startLocked()
}

func (m *Mux) startLocked() error {
	if m.started {
		return nil
	}
	if m.closed {
		return fmt.Errorf("tenantplane: mux is closed")
	}
	if err := m.inner.Start(m.route); err != nil {
		return err
	}
	m.started = true
	return nil
}

// Close tears down the shared transport. Ports become no-ops.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	return m.inner.Close()
}

// Dropped returns the number of inbound frames discarded because no port was
// registered for their tenant (or their tenant tag failed to decode).
func (m *Mux) Dropped() uint64 { return m.dropped.Load() }

// Port returns the virtual transport for the given wire tenant id. Each id
// can be claimed once at a time; the port frees the id again on Close.
func (m *Mux) Port(tenant uint32) (transport.Transport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("tenantplane: mux is closed")
	}
	if _, dup := m.ports[tenant]; dup {
		return nil, fmt.Errorf("tenantplane: wire tenant id %d already claimed", tenant)
	}
	p := &muxPort{m: m, tenant: tenant}
	m.ports[tenant] = p
	return p, nil
}

// route is the shared transport's receive callback: classify the frame's
// tenant and hand it to that tenant's port.
func (m *Mux) route(to int, frame []byte) {
	var tenant uint32
	switch {
	case wire.IsTenantEnvelope(frame):
		tn, inner, err := wire.DecodeTenantEnvelope(frame)
		if err != nil {
			m.dropped.Add(1)
			return
		}
		tenant, frame = tn, inner
	case wire.IsReportV2(frame):
		// Tagged reports route by their tag but are delivered as-is: the
		// receiving cluster's decoder reads through the tenant field.
		tn, err := wire.ReportTenantV2(frame)
		if err != nil {
			m.dropped.Add(1)
			return
		}
		tenant = tn
	default:
		// v1 frames and batch frames arrive enveloped when tagged; bare
		// ones belong to the default tenant.
	}
	m.mu.RLock()
	p := m.ports[tenant]
	m.mu.RUnlock()
	if p == nil {
		m.dropped.Add(1)
		return
	}
	p.deliver(to, frame)
}

// muxPort is one tenant's view of the shared transport. It satisfies
// transport.Transport so a livenet.Cluster can use it unchanged.
type muxPort struct {
	m      *Mux
	tenant uint32

	mu     sync.RWMutex
	recv   func(to int, frame []byte)
	closed bool
}

// Start registers the tenant's receive callback and makes sure the shared
// transport is running. Per the transport contract it is called once.
func (p *muxPort) Start(recv func(to int, frame []byte)) error {
	p.m.mu.Lock()
	if err := p.m.startLocked(); err != nil {
		p.m.mu.Unlock()
		return err
	}
	p.m.mu.Unlock()
	p.mu.Lock()
	p.recv = recv
	p.mu.Unlock()
	return nil
}

// deliver hands an inbound frame to the tenant's cluster. The frame may
// alias the shared transport's buffer; the cluster's onFrame decodes
// synchronously without retaining it, which is the same contract the shared
// transport already imposes on its own callback.
func (p *muxPort) deliver(to int, frame []byte) {
	p.mu.RLock()
	recv := p.recv
	p.mu.RUnlock()
	if recv == nil {
		p.m.dropped.Add(1)
		return
	}
	recv(to, frame)
}

// Send stamps the tenant onto the frame and ships it through the shared
// transport. Tenant 0 frames pass through byte-identical.
func (p *muxPort) Send(to int, frame []byte) {
	p.mu.RLock()
	closed := p.closed
	p.mu.RUnlock()
	if closed {
		return
	}
	if p.tenant == 0 {
		p.m.inner.Send(to, frame)
		return
	}
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	if wire.IsReportV2(frame) {
		tagged, err := wire.TagReportTenant((*buf)[:0], p.tenant, frame)
		if err != nil {
			// Already tagged (a cluster never produces these) — drop
			// rather than double-tag.
			return
		}
		*buf = tagged
	} else {
		*buf = wire.AppendTenantEnvelope((*buf)[:0], p.tenant, frame)
	}
	p.m.inner.Send(to, *buf)
}

// Close detaches the tenant from the mux. The shared transport stays up for
// the other tenants; Mux.Close owns its teardown.
func (p *muxPort) Close() error {
	p.mu.Lock()
	p.closed = true
	p.recv = nil
	p.mu.Unlock()
	p.m.mu.Lock()
	if p.m.ports[p.tenant] == p {
		delete(p.m.ports, p.tenant)
	}
	p.m.mu.Unlock()
	return nil
}
