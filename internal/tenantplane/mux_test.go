package tenantplane

import (
	"bytes"
	"testing"
	"time"

	"hierdet/internal/interval"
	"hierdet/internal/transport"
	"hierdet/internal/vclock"
	"hierdet/internal/wire"
)

// recvLog collects frames one tenant port delivered, with a channel to wait
// on (the in-process Network delivers on fresh goroutines).
type recvLog struct {
	ch chan []byte
}

func newRecvLog() *recvLog { return &recvLog{ch: make(chan []byte, 16)} }

func (l *recvLog) recv(to int, frame []byte) {
	l.ch <- append([]byte(nil), frame...)
}

func (l *recvLog) next(t *testing.T, what string) []byte {
	t.Helper()
	select {
	case f := <-l.ch:
		return f
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
		return nil
	}
}

func (l *recvLog) empty() bool { return len(l.ch) == 0 }

func muxReport(origin int) wire.Report {
	return wire.Report{
		Iv: interval.Interval{
			Lo:     vclock.VC{3, 1, 4},
			Hi:     vclock.VC{3, 2, 6},
			Origin: origin,
			Seq:    1,
			Span:   []int{origin},
		},
		LinkSeq: 1,
	}
}

// TestMuxRoutesTenants wires two muxes through the in-process Network — the
// shape of two fleet processes sharing one mesh — and checks the full
// demultiplexing contract: reports travel inline-tagged, control frames
// enveloped, tenant 0 byte-identical, unknown tenants counted and dropped.
func TestMuxRoutesTenants(t *testing.T) {
	net := transport.NewNetwork()
	muxA := NewMux(net.Endpoint(0))
	muxB := NewMux(net.Endpoint(1))
	defer muxA.Close()
	defer muxB.Close()

	portFor := func(m *Mux, tenant uint32) transport.Transport {
		p, err := m.Port(tenant)
		if err != nil {
			t.Fatalf("Port(%d): %v", tenant, err)
		}
		return p
	}
	a0, a7, a9 := portFor(muxA, 0), portFor(muxA, 7), portFor(muxA, 9)
	b0, b7 := portFor(muxB, 0), portFor(muxB, 7)

	logs := map[string]*recvLog{"b0": newRecvLog(), "b7": newRecvLog(), "a7": newRecvLog()}
	for port, log := range map[transport.Transport]*recvLog{b0: logs["b0"], b7: logs["b7"], a7: logs["a7"]} {
		if err := port.Start(log.recv); err != nil {
			t.Fatal(err)
		}
	}
	if err := a0.Start(func(int, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := a9.Start(func(int, []byte) {}); err != nil {
		t.Fatal(err)
	}

	// A control frame on tenant 7 rides an envelope and arrives unwrapped,
	// byte-identical to what the cluster handed the port.
	hb := wire.EncodeHeartbeat(wire.Heartbeat{Sender: 0, Epoch: 2})
	a7.Send(1, hb)
	if got := logs["b7"].next(t, "tenant-7 heartbeat"); !bytes.Equal(got, hb) {
		t.Fatalf("tenant-7 heartbeat corrupted: % x != % x", got, hb)
	}

	// A report on tenant 7 travels inline-tagged: the receiver sees the tag
	// (routing needs no strip) and decodes the same report with Tenant set.
	rep := muxReport(0)
	a7.Send(1, wire.EncodeReportV2(rep))
	frame := logs["b7"].next(t, "tenant-7 report")
	if tn, err := wire.ReportTenantV2(frame); err != nil || tn != 7 {
		t.Fatalf("delivered report tenant = %d, %v; want 7", tn, err)
	}
	var got wire.Report
	if err := wire.DecodeReportInto(frame, &got, nil); err != nil {
		t.Fatal(err)
	}
	want := rep
	want.Tenant = 7
	if got.Tenant != 7 || !got.Iv.Lo.Equal(want.Iv.Lo) || got.Iv.Origin != want.Iv.Origin {
		t.Fatalf("tenant-7 report decoded as %+v, want %+v", got, want)
	}

	// Tenant 0 frames pass byte-identical both ways.
	bare := wire.EncodeReportV2(muxReport(0))
	a0.Send(1, bare)
	if got := logs["b0"].next(t, "tenant-0 report"); !bytes.Equal(got, bare) {
		t.Fatal("tenant-0 report was rewritten by the mux")
	}

	// Reverse direction shares the same switchboard.
	b7.Send(0, hb)
	if got := logs["a7"].next(t, "reverse tenant-7 heartbeat"); !bytes.Equal(got, hb) {
		t.Fatal("reverse-direction heartbeat corrupted")
	}

	// Tenant 9 is not registered on B: its frames are dropped and counted,
	// and no registered port sees them.
	a9.Send(1, hb)
	a9.Send(1, wire.EncodeReportV2(muxReport(0)))
	deadline := time.Now().Add(5 * time.Second)
	for muxB.Dropped() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("muxB dropped = %d, want 2", muxB.Dropped())
		}
		time.Sleep(time.Millisecond)
	}
	if !logs["b0"].empty() || !logs["b7"].empty() {
		t.Fatal("unknown-tenant frame leaked into a registered port")
	}

	// Wire ids are exclusive while claimed, free again after Close.
	if _, err := muxA.Port(7); err == nil {
		t.Fatal("duplicate Port(7) claim succeeded")
	}
	if err := a7.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := muxA.Port(7); err != nil {
		t.Fatalf("Port(7) after Close: %v", err)
	}
}
