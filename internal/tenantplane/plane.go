package tenantplane

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hierdet/internal/interval"
	"hierdet/internal/livenet"
	"hierdet/internal/obsv"
	"hierdet/internal/transport"
	"hierdet/internal/tree"
)

// Config parameterizes a Multiplexer — the per-fleet-member state shared by
// every tenant it hosts.
type Config struct {
	// Transport, when set, is the shared message plane: every tenant's
	// cluster sends through it, demultiplexed by wire tenant id. The
	// Multiplexer owns it (Close closes it). Nil means every tenant runs
	// non-distributed in this process.
	Transport transport.Transport
	// LocalNodes is the topology subset this process hosts, shared by all
	// tenants (distributed mode only).
	LocalNodes []int
	// Events receives the plane's lifecycle stream: TenantRegistered and
	// TenantEvicted, LeaseAcquired/LeaseLost from the fleet monitor, and
	// every hosted cluster's own events annotated with Event.Tenant. Same
	// contract as livenet's sink: concurrent calls, keep it quick.
	Events func(obsv.Event)

	// Workers sizes the plane's shared worker pool: one pool drains every
	// tenant's mailbox shards, with deficit-round-robin fairness across
	// tenants, so the plane's steady-state goroutine count is independent of
	// the tenant count. Zero means GOMAXPROCS. The deprecated per-tenant
	// Spec.Workers is ignored on a plane (see Spec.Workers).
	Workers int
	// MailboxBound is the plane-wide default per-node mailbox bound applied
	// to each tenant's external producers. A tenant's Spec.MailboxBound
	// overrides it; zero for both inherits livenet's default (4096).
	MailboxBound int
	// DetectWorkers sizes the plane's shared comparison pool backing every
	// tenant's parallel detection engine. Zero means GOMAXPROCS. The
	// deprecated per-tenant Spec.DetectWorkers is ignored on a plane.
	DetectWorkers int
	// SchedulerQuantum is the deficit-round-robin quantum in messages: how
	// many messages one tenant may drain before the shared pool rotates to
	// the next backlogged tenant. Zero means 256. Smaller values tighten a
	// quiet tenant's latency bound under a noisy neighbour at some rotation
	// overhead; larger values favour throughput.
	SchedulerQuantum int

	// Monitor names this process in the active/active monitor fleet and,
	// together with Leases, enables bucket ownership: the plane runs one
	// Monitor competing for leases on the shared table. Empty disables
	// ownership (every Handle reports Owned() == false).
	Monitor string
	// Leases is the fleet's shared lease table (required when Monitor is
	// set). Fleets in one process share the *LeaseTable directly; a
	// multi-process fleet puts the same semantics behind its coordination
	// service.
	Leases *LeaseTable
	// LeaseEvery overrides the monitor's renewal period (default TTL/4).
	LeaseEvery time.Duration
}

// Spec describes one tenant's predicate: its spanning tree plus the
// per-cluster runtime knobs the tenant wants. Zero values inherit livenet's
// defaults, so Spec{Topology: topo} is a complete registration.
type Spec struct {
	// Topology is the tenant's detection tree (required).
	Topology *tree.Topology
	// Seed drives the tenant cluster's delivery randomness.
	Seed int64
	// Strict and KeepMembers configure the detector nodes (see core.Config).
	Strict, KeepMembers bool
	// MaxDelay, BatchWindow, AdaptiveFlush and SequentialDetect tune the
	// tenant cluster's delivery and detection planes (see livenet.Config).
	MaxDelay      time.Duration
	BatchWindow   time.Duration
	AdaptiveFlush bool
	// Workers and DetectWorkers are deprecated on a plane: every tenant's
	// shards are drained by the plane's one shared pool (Config.Workers) and
	// its one comparison pool (Config.DetectWorkers), so these per-tenant
	// values are ignored here. They remain honored by standalone
	// livenet.Clusters, which keep private pools. Precedence for sizing:
	// plane Config over Spec, always.
	Workers int
	// MailboxBound caps this tenant's per-node mailbox shards for external
	// producers. Precedence: Spec.MailboxBound (nonzero) over
	// Config.MailboxBound (nonzero) over livenet's default (4096).
	MailboxBound     int
	SequentialDetect bool
	DetectWorkers    int
	// HbEvery, HbTimeout, SeekTimeout, ResendLastOnAdopt and StartupGrace
	// configure the tenant's failure handling (see livenet.Config).
	HbEvery, HbTimeout, SeekTimeout time.Duration
	ResendLastOnAdopt               bool
	StartupGrace                    time.Duration
	// Events, when set, receives this tenant's cluster events (annotated
	// with Event.Tenant) in addition to the plane-level Config.Events sink.
	Events func(obsv.Event)
	// Wire overrides the tenant's wire id (default WireID(tenantID)). Use
	// it to resolve a registration-time hash collision. Zero means derive;
	// the zero id itself is reserved for untagged single-tenant traffic.
	Wire uint32
}

// Handle is one registered tenant: the live cluster plus its plane identity.
type Handle struct {
	p      *Multiplexer
	name   string
	wire   uint32
	bucket int
	c      *livenet.Cluster

	stopMu  sync.Mutex
	stopped bool
	dets    []livenet.Detection
}

// Name returns the tenant id the predicate was registered under.
func (h *Handle) Name() string { return h.name }

// Wire returns the tenant's wire id (its tag on shared-transport frames).
func (h *Handle) Wire() uint32 { return h.wire }

// Bucket returns the ownership bucket the tenant id hashes to.
func (h *Handle) Bucket() int { return h.bucket }

// Cluster exposes the tenant's underlying live cluster — metrics, Kill,
// Drain and the rest of the single-tenant API.
func (h *Handle) Cluster() *livenet.Cluster { return h.c }

// Owned reports whether this plane's monitor currently holds the lease on
// the tenant's bucket — i.e. whether this fleet member owns the tenant.
// Without a monitor it is always false.
func (h *Handle) Owned() bool {
	return h.p.mon != nil && h.p.mon.Owns(h.bucket)
}

// Observe feeds one interval to the tenant's cluster.
func (h *Handle) Observe(p int, iv interval.Interval) { h.c.Observe(p, iv) }

// ObserveBatch feeds a batch of process p's intervals to the tenant's
// cluster.
func (h *Handle) ObserveBatch(p int, ivs []interval.Interval) { h.c.ObserveBatch(p, ivs) }

// Stop unregisters the tenant — stops its cluster, frees its wire id and
// emits TenantEvicted — and returns the tenant's detections. Idempotent.
//
// Deprecated: use Close or Shutdown, then Detections.
func (h *Handle) Stop() []livenet.Detection {
	h.stopMu.Lock()
	defer h.stopMu.Unlock()
	if !h.stopped {
		h.dets = h.c.Stop()
		h.stopped = true
		h.p.forget(h)
	}
	return h.dets
}

// Close is Stop through the io.Closer convention: unregister the tenant,
// keep its detections readable through Detections. Idempotent, never fails.
func (h *Handle) Close() error {
	h.Stop()
	return nil
}

// Shutdown is Close with a deadline: the tenant's cluster quiesces only as
// long as ctx allows. On success the tenant is unregistered exactly as Close
// would. If ctx expires first, Shutdown returns ctx.Err() and the tenant
// KEEPS RUNNING, still registered — no work lost, retriable.
func (h *Handle) Shutdown(ctx context.Context) error {
	h.stopMu.Lock()
	defer h.stopMu.Unlock()
	if h.stopped {
		return nil
	}
	if err := h.c.Shutdown(ctx); err != nil {
		return err
	}
	h.dets = h.c.Detections()
	h.stopped = true
	h.p.forget(h)
	return nil
}

// Detections returns the tenant's final detection list once it has stopped
// (via Stop, Close or a successful Shutdown); nil before.
func (h *Handle) Detections() []livenet.Detection {
	h.stopMu.Lock()
	defer h.stopMu.Unlock()
	if !h.stopped {
		return nil
	}
	return h.dets
}

// Multiplexer is the per-process face of the tenant plane: one shared
// transport, one monitor-fleet membership, N tenants' clusters.
type Multiplexer struct {
	cfg   Config
	mux   *Mux // nil without a shared transport
	reg   *obsv.Registry
	mon   *Monitor // nil without lease ownership
	sched *livenet.SharedScheduler

	mu      sync.Mutex
	tenants map[string]*Handle
	byWire  map[uint32]string
	closed  bool
	final   map[string][]livenet.Detection // set by the first completed teardown

	// subs holds the Events subscribers as a copy-on-write slice: emit — the
	// plane-wide fan-out point, on hot worker goroutines — loads it with one
	// atomic read, while Events/cancel rebuild it under subMu.
	subMu sync.Mutex
	subs  atomic.Pointer[[]*eventSub]

	registered *obsv.Counter
	evicted    *obsv.Counter
}

// eventSub is one Events subscription; its identity is the cancel token.
type eventSub struct{ fn func(obsv.Event) }

// NewMultiplexer builds the plane and starts its shared transport (so a
// listen failure is an error here, not a panic inside the first tenant's
// cluster construction) and, when configured, its fleet monitor.
func NewMultiplexer(cfg Config) (*Multiplexer, error) {
	if cfg.Monitor != "" && cfg.Leases == nil {
		return nil, fmt.Errorf("tenantplane: Config.Monitor %q set without Config.Leases", cfg.Monitor)
	}
	p := &Multiplexer{
		cfg:     cfg,
		reg:     obsv.NewRegistry(),
		tenants: make(map[string]*Handle),
		byWire:  make(map[uint32]string),
	}
	// The shared scheduler substrate: one worker pool, one timer wheel, one
	// comparison pool and one clock arena for every tenant this plane will
	// host. Its wheel-lag histogram lives in the plane registry from the
	// start, so the first tenant's ticks are already observed.
	wheelLag := p.reg.Histogram("hierdet_plane_wheel_lag_seconds",
		"How far past its deadline each shared-wheel advance ran.",
		obsv.ExponentialBuckets(1e-6, 4, 10))
	p.sched = livenet.NewSharedScheduler(livenet.SharedSchedulerConfig{
		Workers:       cfg.Workers,
		Quantum:       cfg.SchedulerQuantum,
		DetectWorkers: cfg.DetectWorkers,
		WheelLagSink:  wheelLag.Observe,
	})
	if cfg.Transport != nil {
		p.mux = NewMux(cfg.Transport)
		if err := p.mux.Start(); err != nil {
			p.sched.Close()
			return nil, fmt.Errorf("tenantplane: starting shared transport: %w", err)
		}
		if in, ok := cfg.Transport.(interface {
			Instrument(*obsv.Registry, func(obsv.Event))
		}); ok {
			in.Instrument(p.reg, p.emit)
		}
	}
	p.registerFamilies()
	if cfg.Monitor != "" {
		p.mon = NewMonitor(MonitorConfig{
			ID:     cfg.Monitor,
			Table:  cfg.Leases,
			Every:  cfg.LeaseEvery,
			Events: p.emit,
		})
		p.mon.Start()
	}
	return p, nil
}

// Registry returns the plane's metric registry: per-tenant families, lease
// state, shared-transport families and mux drops.
func (p *Multiplexer) Registry() *obsv.Registry { return p.reg }

// Monitor returns the plane's fleet monitor, or nil when ownership is off.
func (p *Multiplexer) Monitor() *Monitor { return p.mon }

// emit forwards a plane-level event to the configured sink and every Events
// subscriber. This is the plane's single fan-out point: every hosted
// cluster's events (tenant-annotated), the monitor's lease events and the
// plane's own registration lifecycle all pass through here.
func (p *Multiplexer) emit(e obsv.Event) {
	if p.cfg.Events != nil {
		p.cfg.Events(e)
	}
	if subs := p.subs.Load(); subs != nil {
		for _, s := range *subs {
			s.fn(e)
		}
	}
}

// Events subscribes sink to the plane's full lifecycle stream — exactly what
// a Config.Events sink set at construction sees: every tenant cluster's
// events annotated with Event.Tenant, TenantRegistered/TenantEvicted, and
// the monitor's LeaseAcquired/LeaseLost — without having had to be present
// at construction. It is the tenant-plane mirror of LiveConfig.Events, and
// the one tap point a recorder needs for either plane. The sink runs on
// runtime goroutines under livenet's sink contract (concurrent calls, keep
// it quick, never tear the plane down from inside it). The returned cancel
// removes the subscription; events already in flight may still arrive while
// cancel returns.
func (p *Multiplexer) Events(sink func(obsv.Event)) (cancel func()) {
	sub := &eventSub{fn: sink}
	p.subMu.Lock()
	old := p.subs.Load()
	var next []*eventSub
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, sub)
	p.subs.Store(&next)
	p.subMu.Unlock()
	return func() {
		p.subMu.Lock()
		defer p.subMu.Unlock()
		cur := p.subs.Load()
		if cur == nil {
			return
		}
		rebuilt := make([]*eventSub, 0, len(*cur))
		for _, s := range *cur {
			if s != sub {
				rebuilt = append(rebuilt, s)
			}
		}
		p.subs.Store(&rebuilt)
	}
}

// RegisterPredicate instantiates a detection tree for the tenant over the
// shared fleet and returns its handle. The tenant id must be unique on this
// plane; its derived wire id must not collide with a registered tenant's
// (supply Spec.Wire to resolve a collision).
func (p *Multiplexer) RegisterPredicate(tenantID string, spec Spec) (*Handle, error) {
	if tenantID == "" {
		return nil, fmt.Errorf("tenantplane: empty tenant id")
	}
	if spec.Topology == nil {
		return nil, fmt.Errorf("tenantplane: tenant %q: Spec.Topology is required", tenantID)
	}
	wid := spec.Wire
	if wid == 0 {
		wid = WireID(tenantID)
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("tenantplane: multiplexer is closed")
	}
	if _, dup := p.tenants[tenantID]; dup {
		p.mu.Unlock()
		return nil, fmt.Errorf("tenantplane: tenant %q already registered", tenantID)
	}
	if other, dup := p.byWire[wid]; dup {
		p.mu.Unlock()
		return nil, fmt.Errorf("tenantplane: tenant %q wire id %d collides with tenant %q (set Spec.Wire)", tenantID, wid, other)
	}
	// Reserve both names before building the cluster so a concurrent
	// registration cannot race the same wire id.
	h := &Handle{p: p, name: tenantID, wire: wid, bucket: BucketOf(tenantID)}
	p.tenants[tenantID] = h
	p.byWire[wid] = tenantID
	p.mu.Unlock()

	var tr transport.Transport
	if p.mux != nil {
		port, err := p.mux.Port(wid)
		if err != nil {
			p.forget(h)
			return nil, err
		}
		tr = port
	}

	events := func(e obsv.Event) {
		e.Tenant = tenantID
		if spec.Events != nil {
			spec.Events(e)
		}
		p.emit(e)
	}
	// The per-tenant mailbox bound is the one delivery knob that stays per
	// cluster on the shared substrate: Spec over plane Config over livenet's
	// default. Spec.Workers and Spec.DetectWorkers are deliberately not
	// forwarded — the plane's pools are sized once, at plane construction.
	bound := spec.MailboxBound
	if bound == 0 {
		bound = p.cfg.MailboxBound
	}
	h.c = livenet.New(livenet.Config{
		Topology:          spec.Topology,
		MaxDelay:          spec.MaxDelay,
		Seed:              spec.Seed,
		Strict:            spec.Strict,
		KeepMembers:       spec.KeepMembers,
		MailboxBound:      bound,
		BatchWindow:       spec.BatchWindow,
		AdaptiveFlush:     spec.AdaptiveFlush,
		SequentialDetect:  spec.SequentialDetect,
		Scheduler:         p.sched,
		HbEvery:           spec.HbEvery,
		HbTimeout:         spec.HbTimeout,
		SeekTimeout:       spec.SeekTimeout,
		ResendLastOnAdopt: spec.ResendLastOnAdopt,
		StartupGrace:      spec.StartupGrace,
		Events:            events,
		Transport:         tr,
		LocalNodes:        p.cfg.LocalNodes,
	})

	p.registered.Inc()
	p.emit(obsv.Event{
		Kind: obsv.TenantRegistered, Tenant: tenantID, Node: h.bucket,
		Peer: obsv.NoPeer, Count: 1, Monitor: p.ownerOf(h.bucket),
	})
	return h, nil
}

// ownerOf returns the bucket's current lease holder, if ownership is on.
func (p *Multiplexer) ownerOf(bucket int) string {
	if p.cfg.Leases == nil {
		return ""
	}
	return p.cfg.Leases.Owner(bucket)
}

// Tenant returns the handle registered under tenantID, or nil.
func (p *Multiplexer) Tenant(tenantID string) *Handle {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tenants[tenantID]
}

// Tenants returns the registered tenant ids, sorted.
func (p *Multiplexer) Tenants() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.tenants))
	for name := range p.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// forget removes a stopped tenant from the plane's maps and emits
// TenantEvicted. The handle's cluster is already stopped (its mux port
// closed with it).
func (p *Multiplexer) forget(h *Handle) {
	p.mu.Lock()
	evict := p.tenants[h.name] == h
	if evict {
		delete(p.tenants, h.name)
		delete(p.byWire, h.wire)
	}
	p.mu.Unlock()
	if evict && h.c != nil {
		p.evicted.Inc()
		p.emit(obsv.Event{
			Kind: obsv.TenantEvicted, Tenant: h.name, Node: h.bucket,
			Peer: obsv.NoPeer, Count: 1, Monitor: p.ownerOf(h.bucket),
		})
	}
}

// Stop stops every remaining tenant, the monitor and the shared transport,
// returning each stopped tenant's detections keyed by tenant id. A second
// call returns nil (the historical contract of the method this aliases,
// which was named Close before the lifecycle API unified).
//
// Deprecated: use Close or Shutdown, then Detections.
func (p *Multiplexer) Stop() map[string][]livenet.Detection {
	handles, already := p.beginClose()
	if already {
		return nil
	}
	out := make(map[string][]livenet.Detection, len(handles))
	for _, h := range handles {
		out[h.name] = h.Stop()
	}
	p.teardown(out)
	return out
}

// Close stops every remaining tenant, the monitor and the shared transport.
// Detections stay readable through Detections. Idempotent, never fails; the
// error return matches the package family's lifecycle signature (see
// livenet.Cluster.Close).
func (p *Multiplexer) Close() error {
	p.Stop()
	return nil
}

// Shutdown is Close with a deadline shared across the whole plane: each
// remaining tenant's cluster quiesces under ctx, in tenant-id order. On
// success the plane is fully down and Shutdown returns nil. If ctx expires
// mid-plane, Shutdown returns ctx.Err() and REOPENS the plane: tenants
// already stopped stay stopped (and unregistered), the rest keep running,
// and registration and a later Close/Shutdown/Stop remain legal.
func (p *Multiplexer) Shutdown(ctx context.Context) error {
	handles, already := p.beginClose()
	if already {
		return nil
	}
	out := make(map[string][]livenet.Detection, len(handles))
	for _, h := range handles {
		if err := h.Shutdown(ctx); err != nil {
			p.mu.Lock()
			p.closed = false
			p.mu.Unlock()
			return err
		}
		out[h.name] = h.Detections()
	}
	p.teardown(out)
	return nil
}

// Detections returns every tenant's final detections, keyed by tenant id,
// once the plane has closed (via Stop, Close or a successful Shutdown); nil
// before.
func (p *Multiplexer) Detections() map[string][]livenet.Detection {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.final
}

// beginClose flips the plane to closed and returns the remaining handles in
// tenant-id order — a deterministic teardown order, so deadline-bounded
// shutdowns fail the same way twice. already reports the plane was closed.
func (p *Multiplexer) beginClose() (handles []*Handle, already bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, true
	}
	p.closed = true
	handles = make([]*Handle, 0, len(p.tenants))
	for _, h := range p.tenants {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i].name < handles[j].name })
	return handles, false
}

// teardown dismantles the shared planes after every tenant has stopped and
// publishes the final detections.
func (p *Multiplexer) teardown(out map[string][]livenet.Detection) {
	if p.mon != nil {
		p.mon.Stop()
	}
	if p.mux != nil {
		p.mux.Close()
	} else if p.cfg.Transport != nil {
		p.cfg.Transport.Close()
	}
	// Every tenant cluster has stopped and detached, so the substrate's
	// wheel and pools are idle and can come down last.
	p.sched.Close()
	p.mu.Lock()
	p.final = out
	p.mu.Unlock()
}

// snapshot returns the live handles, sorted by tenant id, for scrapes.
func (p *Multiplexer) snapshot() []*Handle {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Handle, 0, len(p.tenants))
	for _, h := range p.tenants {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// registerFamilies wires the plane's metric families: tenant counts, a
// per-tenant breakdown of the headline cluster counters, lease-ownership
// state and the mux's drop counter.
func (p *Multiplexer) registerFamilies() {
	p.registered = p.reg.Counter("hierdet_tenants_registered_total",
		"Predicates registered on this plane since start.")
	p.evicted = p.reg.Counter("hierdet_tenants_evicted_total",
		"Tenants evicted (stopped and unregistered) since start.")
	p.reg.Func("hierdet_tenants", "Tenants currently registered.",
		obsv.KindGauge, nil, func(emit func(float64, ...string)) {
			p.mu.Lock()
			n := len(p.tenants)
			p.mu.Unlock()
			emit(float64(n))
		})

	// Scheduler-plane families: the shared substrate every tenant rides.
	// (Its wheel-lag histogram is registered in NewMultiplexer, before the
	// substrate starts.)
	p.reg.Func("hierdet_plane_workers", "Size of the shared worker pool draining every tenant's mailbox shards.",
		obsv.KindGauge, nil, func(emit func(float64, ...string)) {
			emit(float64(p.sched.Workers()))
		})
	p.reg.Func("hierdet_plane_busy_workers", "Shared workers currently draining a tenant's shard.",
		obsv.KindGauge, nil, func(emit func(float64, ...string)) {
			emit(float64(p.sched.Busy()))
		})
	p.reg.Func("hierdet_plane_wheel_entries", "Live entries on the shared timer wheel, across all tenants.",
		obsv.KindGauge, nil, func(emit func(float64, ...string)) {
			emit(float64(p.sched.WheelEntries()))
		})
	p.reg.Func("hierdet_plane_wheel_ticks_total", "Shared timer wheel advances processed.",
		obsv.KindCounter, nil, func(emit func(float64, ...string)) {
			emit(float64(p.sched.WheelTicks()))
		})

	perTenant := []struct {
		name, help string
		get        func(livenet.ClusterMetrics) float64
	}{
		{"hierdet_tenant_detections_total", "Solution sets found, by tenant.",
			func(m livenet.ClusterMetrics) float64 { return float64(m.Detections) }},
		{"hierdet_tenant_intervals_in_total", "Intervals observed, by tenant.",
			func(m livenet.ClusterMetrics) float64 { return float64(m.IntervalsIn) }},
		{"hierdet_tenant_msgs_in_total", "Messages delivered, by tenant.",
			func(m livenet.ClusterMetrics) float64 { return float64(m.MsgsIn) }},
		{"hierdet_tenant_msgs_out_total", "Messages sent, by tenant.",
			func(m livenet.ClusterMetrics) float64 { return float64(m.MsgsOut) }},
		{"hierdet_tenant_repairs_total", "Reattachments concluded, by tenant.",
			func(m livenet.ClusterMetrics) float64 { return float64(m.Repairs) }},
	}
	p.reg.Func("hierdet_tenant_mailbox_high_water", "Deepest mailbox shard seen since start, by tenant.",
		obsv.KindGauge, []string{"tenant"}, func(emit func(float64, ...string)) {
			for _, h := range p.snapshot() {
				emit(float64(h.c.ClusterMetrics().MailboxHighWater), h.name)
			}
		})
	for _, fam := range perTenant {
		get := fam.get
		p.reg.Func(fam.name, fam.help, obsv.KindCounter, []string{"tenant"},
			func(emit func(float64, ...string)) {
				for _, h := range p.snapshot() {
					emit(get(h.c.ClusterMetrics()), h.name)
				}
			})
	}
	p.reg.Func("hierdet_tenant_owned", "Whether this plane's monitor owns the tenant's bucket, by tenant.",
		obsv.KindGauge, []string{"tenant"}, func(emit func(float64, ...string)) {
			for _, h := range p.snapshot() {
				v := 0.0
				if h.Owned() {
					v = 1
				}
				emit(v, h.name)
			}
		})

	if p.cfg.Monitor != "" {
		p.reg.Func("hierdet_lease_buckets_owned", "Ownership buckets this monitor holds leases on.",
			obsv.KindGauge, []string{"monitor"}, func(emit func(float64, ...string)) {
				if p.mon != nil {
					emit(float64(len(p.mon.Owned())), p.cfg.Monitor)
				}
			})
		p.reg.Func("hierdet_lease_monitors_live", "Monitors with a current liveness record in the fleet.",
			obsv.KindGauge, nil, func(emit func(float64, ...string)) {
				emit(float64(len(p.cfg.Leases.Live())))
			})
	}
	if p.mux != nil {
		p.reg.Func("hierdet_mux_dropped_total", "Inbound frames dropped by the tenant mux (unknown or undecodable tenant).",
			obsv.KindCounter, nil, func(emit func(float64, ...string)) {
				emit(float64(p.mux.Dropped()))
			})
	}
}
