package tenantplane

import (
	"testing"

	"hierdet/internal/livenet"
	"hierdet/internal/tree"
)

// TestSizingPrecedence pins the deprecation contract for Spec.Workers and
// Spec.MailboxBound on a plane. Pool sizing is plane-level only — a tenant's
// Spec.Workers is ignored because its shards are drained by the shared pool —
// while the mailbox bound stays per-tenant with the documented fallback
// chain: Spec.MailboxBound over Config.MailboxBound over livenet's default.
// Standalone clusters keep the old behavior verbatim.
func TestSizingPrecedence(t *testing.T) {
	plane, err := NewMultiplexer(Config{Workers: 3, MailboxBound: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()

	reg := func(name string, spec Spec) *Handle {
		t.Helper()
		spec.Topology = tree.Chain(2)
		spec.SequentialDetect = true
		h, err := plane.RegisterPredicate(name, spec)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	// Spec.Workers is dead weight on a plane: the cluster rides the shared
	// substrate and reports the plane pool's size, not its own ask.
	loud := reg("loud", Spec{Workers: 9})
	if !loud.Cluster().Shared() {
		t.Fatal("plane tenant is not on the shared substrate")
	}
	if got := loud.Cluster().Workers(); got != 3 {
		t.Errorf("tenant with Spec.Workers=9 on a Workers=3 plane: Workers() = %d, want 3 (plane wins)", got)
	}
	// Config.MailboxBound is the tenant default…
	if got := loud.Cluster().MailboxBound(); got != 128 {
		t.Errorf("tenant without Spec.MailboxBound: MailboxBound() = %d, want Config's 128", got)
	}
	// …and a nonzero Spec.MailboxBound overrides it per tenant.
	tight := reg("tight", Spec{MailboxBound: 32})
	if got := tight.Cluster().MailboxBound(); got != 32 {
		t.Errorf("tenant with Spec.MailboxBound=32: MailboxBound() = %d, want 32 (Spec wins)", got)
	}

	// A bare plane falls through to livenet's default bound.
	bare, err := NewMultiplexer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	def, err := bare.RegisterPredicate("def", Spec{Topology: tree.Chain(2), SequentialDetect: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := def.Cluster().MailboxBound(); got != 4096 {
		t.Errorf("tenant on a bare plane: MailboxBound() = %d, want livenet default 4096", got)
	}

	// Standalone clusters still honor the per-cluster knobs.
	solo := livenet.New(livenet.Config{
		Topology: tree.Chain(2), Workers: 2, MailboxBound: 77, SequentialDetect: true,
	})
	defer solo.Stop()
	if solo.Shared() {
		t.Fatal("standalone cluster reports a shared substrate")
	}
	if got := solo.Workers(); got != 2 {
		t.Errorf("standalone Workers() = %d, want 2", got)
	}
	if got := solo.MailboxBound(); got != 77 {
		t.Errorf("standalone MailboxBound() = %d, want 77", got)
	}
}
