// Package trace provides ground-truth machinery for validating the
// hierarchical detector: an order-robust flat reference detector fed
// directly from a recorded execution (no network, no hierarchy), and
// checkers that verify reported detections against the raw base intervals
// (paper Eq. 2).
//
// The flat reference is the centralized repeated-detection algorithm [12]
// run over an arbitrary process subset — the semantics the hierarchical
// algorithm must preserve per subtree (Theorems 1, 3, 4). Cross-validating
// per-node detection counts against it on arbitrary executions is the
// repository's strongest correctness check.
package trace

import (
	"fmt"
	"math/rand"

	"hierdet/internal/centralized"
	"hierdet/internal/core"
	"hierdet/internal/interval"
	"hierdet/internal/workload"
)

// FlatDetections runs the centralized repeated detector over the given
// process span of a recorded execution and returns its detections. Streams
// are interleaved deterministically from seed; detection *counts* are
// interleaving-independent (see TestFlatCountOrderIndependent), so any seed
// yields the reference count.
func FlatDetections(e *workload.Execution, span []int, seed int64) []core.Detection {
	if len(span) == 0 {
		panic("trace: empty span")
	}
	sink := centralized.NewSink(span[0], core.Config{N: e.N, Strict: true, KeepMembers: true}, span)
	var dets []core.Detection

	// Random-merge the per-process streams, preserving per-process order.
	idx := make([]int, e.N)
	r := rand.New(rand.NewSource(seed))
	remaining := 0
	for _, p := range span {
		remaining += len(e.Streams[p])
	}
	for remaining > 0 {
		// Pick a random span process with intervals left.
		k := r.Intn(remaining)
		for _, p := range span {
			left := len(e.Streams[p]) - idx[p]
			if k >= left {
				k -= left
				continue
			}
			iv := e.Streams[p][idx[p]]
			idx[p]++
			remaining--
			dets = append(dets, sink.OnInterval(p, iv)...)
			break
		}
	}
	return dets
}

// FlatCount returns the number of flat-reference detections over span.
func FlatCount(e *workload.Execution, span []int, seed int64) int {
	return len(FlatDetections(e, span, seed))
}

// CheckDetection verifies one reported detection: the aggregate must expand
// to base intervals (requires KeepMembers), the bases must pairwise satisfy
// the Definitely condition min(x) < max(y) (Eq. 2), and the aggregate's span
// must equal the set of base origins. Returns a descriptive error.
func CheckDetection(d core.Detection) error {
	bases := interval.BaseIntervals(d.Agg)
	origins := make(map[int]bool)
	for _, b := range bases {
		if b.Agg {
			return fmt.Errorf("detection at node %d contains an opaque aggregate (run with KeepMembers)", d.Node)
		}
		if origins[b.Origin] {
			return fmt.Errorf("detection at node %d contains two intervals from process %d", d.Node, b.Origin)
		}
		origins[b.Origin] = true
	}
	if !interval.OverlapAll(bases) {
		return fmt.Errorf("detection at node %d violates Eq. 2 (bases do not pairwise overlap)", d.Node)
	}
	if len(d.Agg.Span) != len(origins) {
		return fmt.Errorf("detection at node %d: span %v does not match base origins", d.Node, d.Agg.Span)
	}
	for _, p := range d.Agg.Span {
		if !origins[p] {
			return fmt.Errorf("detection at node %d: span lists %d but no base interval from it", d.Node, p)
		}
	}
	return nil
}

// CheckAll runs CheckDetection over a batch, failing on the first error.
func CheckAll(dets []core.Detection) error {
	for _, d := range dets {
		if err := CheckDetection(d); err != nil {
			return err
		}
	}
	return nil
}
