package trace

import (
	"sort"
	"testing"

	"hierdet/internal/core"
	"hierdet/internal/interval"
	"hierdet/internal/monitor"
	"hierdet/internal/tree"
	"hierdet/internal/vclock"
	"hierdet/internal/workload"
)

func TestFlatCountMatchesPulseGroundTruth(t *testing.T) {
	tp := tree.Balanced(2, 2)
	e := workload.Generate(workload.Config{Topology: tp, Rounds: 25, Seed: 1, PGlobal: 0.4, PGroup: 0.3})
	span := tp.Subtree(0)
	sort.Ints(span)
	want := e.ExpectedDetections(span)
	if got := FlatCount(e, span, 9); got != want {
		t.Fatalf("FlatCount = %d, want %d", got, want)
	}
}

func TestFlatCountOrderIndependent(t *testing.T) {
	// The number of detections must not depend on how the per-process
	// streams interleave at the sink.
	for trial := 0; trial < 10; trial++ {
		e := workload.GenerateChaotic(workload.ChaoticConfig{N: 4, Steps: 300, Seed: int64(trial)})
		span := []int{0, 1, 2, 3}
		first := FlatCount(e, span, 0)
		for seed := int64(1); seed < 6; seed++ {
			if got := FlatCount(e, span, seed); got != first {
				t.Fatalf("trial %d: count %d at seed %d vs %d at seed 0", trial, got, seed, first)
			}
		}
	}
}

func TestFlatDetectionsAreSound(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		e := workload.GenerateChaotic(workload.ChaoticConfig{N: 5, Steps: 400, Seed: int64(100 + trial)})
		dets := FlatDetections(e, []int{0, 1, 2, 3, 4}, 3)
		if err := CheckAll(dets); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestHierarchicalMatchesFlatOnChaos is the repository's strongest
// correctness check: on unstructured random executions, the hierarchical
// detector's per-node detection counts must equal the flat reference run
// over that node's span, for every node of several tree shapes — the
// equivalence Theorems 1, 3 and 4 promise.
func TestHierarchicalMatchesFlatOnChaos(t *testing.T) {
	shapes := []struct {
		name  string
		build func() *tree.Topology
	}{
		{"binary-h2", func() *tree.Topology { return tree.Balanced(2, 2) }},
		{"chain-5", func() *tree.Topology { return tree.Chain(5) }},
		{"star-6", func() *tree.Topology { return tree.Star(6) }},
		{"random-9", func() *tree.Topology { return tree.Random(9, 3, 7) }},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				n := shape.build().N()
				e := workload.GenerateChaotic(workload.ChaoticConfig{
					N: n, Steps: 120 * n, Seed: int64(trial * 31),
				})
				topo := shape.build()
				shapeRef := shape.build()
				res := monitor.NewRunner(monitor.Config{
					Mode: monitor.Hierarchical, Topology: topo, Exec: e,
					Seed: int64(trial), Strict: true, KeepMembers: true,
				}).Run()
				for node := 0; node < n; node++ {
					span := shapeRef.Subtree(node)
					sort.Ints(span)
					want := FlatCount(e, span, int64(trial)+17)
					got := len(res.DetectionsAt(node))
					if got != want {
						t.Errorf("trial %d node %d span %v: hierarchical %d vs flat %d",
							trial, node, span, got, want)
					}
				}
				for _, d := range res.Detections {
					if err := CheckDetection(d.Det); err != nil {
						t.Fatalf("trial %d: %v", trial, err)
					}
				}
			}
		})
	}
}

// TestSubsetWorkloadFullStack drives random-subset pulses (tree-oblivious
// synchronization groups) through the complete monitor stack and checks
// every node's detection count against the round ground truth and the flat
// reference.
func TestSubsetWorkloadFullStack(t *testing.T) {
	build := func() *tree.Topology { return tree.Balanced(2, 2) }
	shape := build()
	e := workload.Generate(workload.Config{
		Topology: shape, Rounds: 40, Seed: 5, PGlobal: 0.2, PSubset: 0.6,
	})
	res := monitor.NewRunner(monitor.Config{
		Mode: monitor.Hierarchical, Topology: build(), Exec: e,
		Seed: 11, Strict: true, KeepMembers: true,
	}).Run()
	for node := 0; node < shape.N(); node++ {
		span := shape.Subtree(node)
		sort.Ints(span)
		want := e.ExpectedDetections(span)
		if flat := FlatCount(e, span, 3); flat != want {
			t.Fatalf("node %d: flat %d vs ground truth %d — generator inconsistent", node, flat, want)
		}
		if got := len(res.DetectionsAt(node)); got != want {
			t.Errorf("node %d: hierarchical %d vs ground truth %d", node, got, want)
		}
	}
	for _, d := range res.Detections {
		if err := CheckDetection(d.Det); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckDetectionCatchesViolations(t *testing.T) {
	good := interval.New(0, 0, vclock.Of(1, 0), vclock.Of(3, 2))
	good2 := interval.New(1, 0, vclock.Of(0, 1), vclock.Of(2, 3))
	agg := interval.Aggregate([]interval.Interval{good, good2}, 1, 0, true)
	if err := CheckDetection(core.Detection{Node: 1, Set: []interval.Interval{good, good2}, Agg: agg}); err != nil {
		t.Fatalf("valid detection rejected: %v", err)
	}

	// Non-overlapping bases.
	late := interval.New(1, 0, vclock.Of(4, 4), vclock.Of(5, 5))
	bad := interval.Aggregate([]interval.Interval{good, late}, 1, 0, true)
	if err := CheckDetection(core.Detection{Node: 1, Agg: bad}); err == nil {
		t.Fatal("non-overlapping bases accepted")
	}

	// Opaque aggregate (no members retained).
	opaque := interval.Aggregate([]interval.Interval{good, good2}, 1, 0, false)
	if err := CheckDetection(core.Detection{Node: 1, Agg: opaque}); err == nil {
		t.Fatal("opaque aggregate accepted")
	}

	// Duplicate origin.
	dup := interval.Aggregate([]interval.Interval{good, good}, 1, 0, true)
	if err := CheckDetection(core.Detection{Node: 1, Agg: dup}); err == nil {
		t.Fatal("duplicate-origin solution accepted")
	}
}

func TestFlatDetectionsValidation(t *testing.T) {
	e := workload.GenerateChaotic(workload.ChaoticConfig{N: 2, Steps: 10, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("empty span did not panic")
		}
	}()
	FlatDetections(e, nil, 0)
}
