package transport

import (
	"sync"
)

// Network is an in-process frame switchboard: each participant (usually one
// livenet cluster hosting a subset of the topology) gets an Endpoint, and
// frames sent to a process id are handed to whichever endpoint registered
// that id. It drives the exact code path a real network transport does —
// wire encode, frame dispatch, wire decode — without sockets, which makes
// distributed-mode livenet tests deterministic and fast. Frames to ids
// nobody registered are dropped, like messages to a crashed process.
type Network struct {
	mu    sync.Mutex
	owner map[int]*Endpoint // process id → hosting endpoint
}

// NewNetwork returns an empty switchboard.
func NewNetwork() *Network {
	return &Network{owner: make(map[int]*Endpoint)}
}

// Endpoint returns a Transport that hosts the given process ids on this
// network. The ids are claimed immediately; delivery begins at Start.
func (n *Network) Endpoint(ids ...int) *Endpoint {
	ep := &Endpoint{net: n, ids: ids}
	n.mu.Lock()
	for _, id := range ids {
		n.owner[id] = ep
	}
	n.mu.Unlock()
	return ep
}

// Endpoint is one participant's attachment to a Network.
type Endpoint struct {
	net *Network
	ids []int

	mu     sync.Mutex
	recv   func(to int, frame []byte)
	closed bool
	wg     sync.WaitGroup

	// Drop, when set (before Start), filters outgoing frames: return true
	// to discard the frame instead of delivering it — fault injection for
	// loss-path tests. Called on the sender's goroutine.
	Drop func(to int, frame []byte) bool
}

// Start implements Transport.
func (ep *Endpoint) Start(recv func(to int, frame []byte)) error {
	ep.mu.Lock()
	ep.recv = recv
	ep.mu.Unlock()
	return nil
}

// Send implements Transport: the frame is copied and handed to the owning
// endpoint's receive callback on a fresh goroutine, so in-process delivery
// races exactly like a socket read would.
func (ep *Endpoint) Send(to int, frame []byte) {
	if ep.Drop != nil && ep.Drop(to, frame) {
		return
	}
	ep.net.mu.Lock()
	dst := ep.net.owner[to]
	ep.net.mu.Unlock()
	if dst == nil {
		return
	}
	dst.deliver(to, frame)
}

// Inject delivers a raw frame to one of this endpoint's own processes, as if
// a peer had sent it — the hook duplicate-delivery and corrupt-frame tests
// use.
func (ep *Endpoint) Inject(to int, frame []byte) { ep.deliver(to, frame) }

func (ep *Endpoint) deliver(to int, frame []byte) {
	cp := append([]byte(nil), frame...)
	ep.mu.Lock()
	if ep.closed || ep.recv == nil {
		ep.mu.Unlock()
		return
	}
	ep.wg.Add(1)
	recv := ep.recv
	ep.mu.Unlock()
	go func() {
		defer ep.wg.Done()
		recv(to, cp)
	}()
}

// Close implements Transport: the endpoint's ids are released and Close
// blocks until every in-flight recv callback has returned.
func (ep *Endpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	ep.mu.Unlock()
	ep.net.mu.Lock()
	for _, id := range ep.ids {
		if ep.net.owner[id] == ep {
			delete(ep.net.owner, id)
		}
	}
	ep.net.mu.Unlock()
	ep.wg.Wait()
	return nil
}
