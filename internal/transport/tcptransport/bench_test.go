package tcptransport

import (
	"sync/atomic"
	"testing"
	"time"

	"hierdet/internal/interval"
	"hierdet/internal/vclock"
	"hierdet/internal/wire"
)

// BenchmarkLoopbackRoundTrip measures the full TCP path a deployed report
// takes — encode is excluded (see the wire benchmarks); this isolates
// enqueue → coalesced write → kernel loopback → read → dispatch. It is the
// baseline any future transport change (framing, batching, buffer reuse)
// must move visibly.
func BenchmarkLoopbackRoundTrip(b *testing.B) {
	n := 64
	lo := make(vclock.VC, n)
	hi := make(vclock.VC, n)
	for i := range lo {
		hi[i] = uint64(i + 1)
	}
	payload, err := wire.EncodeReport(wire.Report{Iv: interval.New(1, 0, lo, hi)})
	if err != nil {
		b.Fatal(err)
	}

	sink, err := New(Config{Listen: "127.0.0.1:0"})
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()
	var delivered atomic.Int64
	if err := sink.Start(func(int, []byte) { delivered.Add(1) }); err != nil {
		b.Fatal(err)
	}
	src, err := New(Config{Listen: "127.0.0.1:0", Peers: map[int]string{1: sink.Addr()}})
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	if err := src.Start(func(int, []byte) {}); err != nil {
		b.Fatal(err)
	}

	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Send(1, payload)
	}
	for delivered.Load() < int64(b.N) {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	st := src.Stats()
	b.ReportMetric(float64(st.FramesOut)/float64(max(st.Flushes, 1)), "frames/flush")
}
