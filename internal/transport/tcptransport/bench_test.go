package tcptransport

import (
	"sync/atomic"
	"testing"
	"time"

	"hierdet/internal/wire"
)

// BenchmarkLoopbackRoundTrip measures the full TCP path a deployed report
// takes: enqueue → coalesced write (with delta rebase) → kernel loopback →
// read (with un-delta) → decode at the consumer, as any real handler does.
// Sub-benchmarks send the same near-monotone report stream three ways: v1
// framing, v2 with per-connection delta chaining (the default), and v2 with
// chaining disabled (absolute frames pass both sides untouched). Loopback
// has effectively infinite bandwidth, so this is the adversarial case for
// the chained codec, whose decode + re-encode is pure overhead here; the
// bytes-out/frame metric is what it buys on a real link.
func BenchmarkLoopbackRoundTrip(b *testing.B) {
	stream := reportStream(1, 256, 64)
	v1 := make([][]byte, len(stream))
	v2 := make([][]byte, len(stream))
	for i, rep := range stream {
		var err error
		if v1[i], err = wire.EncodeReport(rep); err != nil {
			b.Fatal(err)
		}
		v2[i] = wire.EncodeReportV2(rep)
	}
	for _, tc := range []struct {
		name    string
		frames  [][]byte
		nochain bool
	}{{"v1", v1, false}, {"v2", v2, false}, {"v2-nochain", v2, true}} {
		b.Run(tc.name, func(b *testing.B) {
			sink, err := New(Config{Listen: "127.0.0.1:0"})
			if err != nil {
				b.Fatal(err)
			}
			defer sink.Close()
			var delivered atomic.Int64
			var rep wire.Report
			if err := sink.Start(func(_ int, frame []byte) {
				if err := wire.DecodeReportInto(frame, &rep, nil); err != nil {
					b.Error(err)
				}
				delivered.Add(1)
			}); err != nil {
				b.Fatal(err)
			}
			src, err := New(Config{Listen: "127.0.0.1:0", Peers: map[int]string{1: sink.Addr()}, NoDeltaChain: tc.nochain})
			if err != nil {
				b.Fatal(err)
			}
			defer src.Close()
			if err := src.Start(func(int, []byte) {}); err != nil {
				b.Fatal(err)
			}

			b.SetBytes(int64(len(tc.frames[0])))
			b.ResetTimer()
			// Bound the in-flight window below the transport's MaxBacklog
			// (4096 default): an unthrottled send loop outruns the initial
			// dial, overflows the drop-oldest queue, and the delivered==N
			// wait below never finishes. Keep the window large enough that
			// writer, kernel and reader stay pipelined rather than running
			// in lock-step bursts.
			const window = 3072
			for i := 0; i < b.N; i++ {
				for int64(i)-delivered.Load() >= window {
					time.Sleep(50 * time.Microsecond)
				}
				src.Send(1, tc.frames[i%len(tc.frames)])
			}
			for delivered.Load() < int64(b.N) {
				time.Sleep(50 * time.Microsecond)
			}
			b.StopTimer()
			st := src.Stats()
			b.ReportMetric(float64(st.FramesOut)/float64(max(st.Flushes, 1)), "frames/flush")
			b.ReportMetric(float64(st.BytesOut)/float64(max(st.FramesOut, 1)), "bytes-out/frame")
		})
	}
}

// BenchmarkRebase isolates the writer-side cost of the per-connection delta
// rebase: decode-into, delta re-encode, basis update — the CPU the transport
// spends to shrink each report frame on the wire.
func BenchmarkRebase(b *testing.B) {
	stream := reportStream(1, 256, 64)
	frames := make([][]byte, len(stream))
	for i, rep := range stream {
		frames[i] = wire.EncodeReportV2(rep)
	}
	var reb rebaser
	reb.reset()
	var out int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out += len(reb.rebase(frames[i%len(frames)]))
	}
	b.StopTimer()
	b.ReportMetric(float64(out)/float64(b.N), "bytes-out/frame")
}
