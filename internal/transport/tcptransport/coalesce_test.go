package tcptransport

import (
	"bytes"
	"testing"
	"time"

	"hierdet/internal/wire"
)

// TestTenantFrameCoalescing pins the cross-tenant frame-coalescing contract:
// runs of consecutive tenant-tagged frames queued for one peer travel as one
// tenant batch frame, bare (tenant 0) frames are never packed, and every
// frame — packed or not — arrives byte-identical and in order. The frames
// are queued while the peer is not listening yet, so the writer's first
// flush deterministically sees the whole mix in one batch.
func TestTenantFrameCoalescing(t *testing.T) {
	a := mustNew(t, Config{Listen: "127.0.0.1:0", DialBackoff: time.Millisecond, DialBackoffMax: 10 * time.Millisecond})
	t.Cleanup(func() { a.Close() })
	if err := a.Start(func(int, []byte) {}); err != nil {
		t.Fatal(err)
	}
	probe := mustNew(t, Config{Listen: "127.0.0.1:0"})
	addr := probe.Addr()
	probe.Close()
	a.cfg.Peers = map[int]string{1: addr}

	// Interleave: a run of tenant-tagged reports, a bare report that must
	// break the run, a run of envelopes, another bare frame.
	const n = 4
	var sent [][]byte
	tagged := reportStream(2, 6, n)
	for i := range tagged {
		tagged[i].Tenant = uint32(7 + i%2) // two tenants in one run
		sent = append(sent, wire.EncodeReportV2(tagged[i]))
	}
	bare := reportStream(3, 2, n)
	sent = append(sent, wire.EncodeReportV2(bare[0]))
	for i := 0; i < 3; i++ {
		sent = append(sent, wire.AppendTenantEnvelope(nil, uint32(9+i),
			wire.EncodeHeartbeat(wire.Heartbeat{Sender: i, Epoch: 1})))
	}
	sent = append(sent, wire.EncodeReportV2(bare[1]))
	for _, f := range sent {
		a.Send(1, f)
	}

	b := mustNew(t, Config{Listen: addr})
	t.Cleanup(func() { b.Close() })
	var got collector
	if err := b.Start(got.recv); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "coalesced traffic", func() bool { return got.count() == len(sent) })

	got.mu.Lock()
	defer got.mu.Unlock()
	for i, f := range got.frames {
		if !bytes.Equal(f, sent[i]) {
			t.Fatalf("frame %d corrupted or reordered through coalescing", i)
		}
	}

	as, bs := a.Stats(), b.Stats()
	if as.TenantBatchesOut < 2 {
		t.Fatalf("TenantBatchesOut = %d, want >= 2 (two tagged runs queued)", as.TenantBatchesOut)
	}
	if as.TenantFramesCoalesced != len(tagged)+3 {
		t.Fatalf("TenantFramesCoalesced = %d, want %d", as.TenantFramesCoalesced, len(tagged)+3)
	}
	if bs.TenantBatchesIn != as.TenantBatchesOut {
		t.Fatalf("TenantBatchesIn = %d, TenantBatchesOut = %d; want equal", bs.TenantBatchesIn, as.TenantBatchesOut)
	}
	if as.FramesOut != len(sent) || bs.FramesIn != len(sent) {
		t.Fatalf("frame counts out=%d in=%d, want %d both (logical frames, not wire frames)", as.FramesOut, bs.FramesIn, len(sent))
	}
}

// TestSingleTaggedFrameTravelsBare: a run of one is not worth an envelope —
// the packer must emit the lone tagged frame unwrapped.
func TestSingleTaggedFrameTravelsBare(t *testing.T) {
	a, b := pair(t)
	if err := a.Start(func(int, []byte) {}); err != nil {
		t.Fatal(err)
	}
	var got collector
	if err := b.Start(got.recv); err != nil {
		t.Fatal(err)
	}
	env := wire.AppendTenantEnvelope(nil, 5, wire.EncodeHeartbeat(wire.Heartbeat{Sender: 1, Epoch: 1}))
	a.Send(1, env)
	waitFor(t, "the lone frame", func() bool { return got.count() == 1 })
	got.mu.Lock()
	frame := got.frames[0]
	got.mu.Unlock()
	if !bytes.Equal(frame, env) {
		t.Fatal("lone tagged frame corrupted")
	}
	if st := a.Stats(); st.TenantBatchesOut != 0 {
		t.Fatalf("TenantBatchesOut = %d for a single tagged frame, want 0", st.TenantBatchesOut)
	}
}
