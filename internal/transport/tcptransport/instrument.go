package tcptransport

import (
	"sync/atomic"

	"hierdet/internal/obsv"
)

// instrument.go — the transport's seat in the cluster's observability plane.
//
// livenet.New type-asserts its Transport for this method before Start, so a
// TCP-backed cluster gets transport families in the same registry (and
// TransportRedial events on the same stream) as the detector planes without
// livenet importing this package.

// Instrument registers the transport's metric families with reg and installs
// events as the sink for TransportRedial. Every family is func-backed: the
// scrape reads the same atomics Stats does, so the write path pays nothing.
// Call before Start; calling it again replaces the sink but re-registering
// the families panics (registry redefinition), so wire one registry per
// transport.
func (t *Transport) Instrument(reg *obsv.Registry, events func(obsv.Event)) {
	t.mu.Lock()
	t.events = events
	t.mu.Unlock()

	counter := func(name, help string, v *atomic.Int64) {
		reg.Func(name, help, obsv.KindCounter, nil, func(emit func(float64, ...string)) {
			emit(float64(v.Load()))
		})
	}
	counter("hierdet_transport_frames_out_total", "Frames written to peers (redeliveries included).", &t.framesOut)
	counter("hierdet_transport_frames_in_total", "Frames delivered from peers.", &t.framesIn)
	counter("hierdet_transport_bytes_out_total", "Payload bytes written, after delta compression.", &t.bytesOut)
	counter("hierdet_transport_bytes_in_total", "Payload bytes read, before delta reconstruction.", &t.bytesIn)
	counter("hierdet_transport_redelivered_total", "Frames replayed from the redelivery window after reconnects.", &t.redelivered)
	counter("hierdet_transport_dials_total", "Successful outbound dials.", &t.dials)
	counter("hierdet_transport_redials_total", "Reconnects among the successful dials.", &t.redials)
	counter("hierdet_transport_backlog_dropped_total", "Frames dropped because a peer's queue overflowed MaxBacklog.", &t.backlogDropped)
	counter("hierdet_transport_corrupt_frames_total", "Envelopes rejected by a reader (connection dropped).", &t.corruptFrames)
	counter("hierdet_transport_flushes_total", "Coalesced writes (one flush may carry many frames).", &t.flushes)
	counter("hierdet_transport_tenant_batches_out_total", "Tenant batch frames packed (runs of tenant-tagged frames coalesced).", &t.tenantBatchesOut)
	counter("hierdet_transport_tenant_frames_coalesced_total", "Tenant-tagged frames that rode a packed tenant batch.", &t.tenantFramesCoalesced)
	counter("hierdet_transport_tenant_batches_in_total", "Tenant batch frames unpacked by the readers.", &t.tenantBatchesIn)

	reg.Func("hierdet_transport_peers", "Outbound peer links with a live writer.",
		obsv.KindGauge, nil, func(emit func(float64, ...string)) {
			t.mu.Lock()
			n := len(t.peers)
			t.mu.Unlock()
			emit(float64(n))
		})
	reg.Func("hierdet_transport_backlog_depth", "Frames queued across all peer links awaiting a write.",
		obsv.KindGauge, nil, func(emit func(float64, ...string)) {
			emit(float64(t.queuedFrames()))
		})
	reg.Func("hierdet_transport_redelivery_ring", "Frames held across all redelivery rings for replay.",
		obsv.KindGauge, nil, func(emit func(float64, ...string)) {
			total := int64(0)
			for _, p := range t.snapshotPeers() {
				total += p.ringLen.Load()
			}
			emit(float64(total))
		})
}

// emitRedial reports a successful reconnect to the installed sink, if any.
// The event is emitted from the peer's writer goroutine, so it is ordered
// per link (see obsv.TransportRedial).
func (t *Transport) emitRedial(peerID int) {
	t.mu.Lock()
	sink := t.events
	t.mu.Unlock()
	if sink != nil {
		sink(obsv.Event{Kind: obsv.TransportRedial, Node: peerID, Peer: obsv.NoPeer, Count: 1})
	}
}

// snapshotPeers copies the peer set out from under the transport lock.
func (t *Transport) snapshotPeers() []*peer {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		out = append(out, p)
	}
	return out
}

// queuedFrames sums the per-peer queues.
func (t *Transport) queuedFrames() int {
	total := 0
	for _, p := range t.snapshotPeers() {
		p.mu.Lock()
		total += len(p.queue)
		p.mu.Unlock()
	}
	return total
}
