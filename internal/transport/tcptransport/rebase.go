package tcptransport

// Cross-frame delta compression for report streams (wire format v2).
//
// Successive reports from one origin are near-monotone (Theorem 2: the next
// interval starts causally after the previous one ended), so encoding each
// report's Lo against the previous report's Hi collapses most clock
// components to one or two bytes. That basis is stream state — a frame
// encoded against it is only decodable by a receiver that saw the previous
// frame — so the chaining lives entirely inside one TCP connection:
//
//   - the writer rebases outbound v2 report frames against a per-connection
//     basis map keyed by origin (a connection serves exactly one destination
//     node, and TCP keeps it FIFO, so the receiver sees the frames in the
//     order the bases were chained);
//   - the bases reset on every (re)dial, and the redelivery ring stores the
//     original absolute frames, so replay after a reconnect restarts the
//     chain from an absolute frame — a receiver that lost its state can
//     always resynchronize;
//   - the reader mirrors the writer: it un-deltas basis-relative frames back
//     to absolute ones before delivery, so resequencers and the runtime
//     above never see connection-scoped encodings.
//
// v1 frames, heartbeats, attach frames and (defensively) frames that are
// already basis-relative pass through untouched and leave the bases alone —
// on both sides, which is what keeps the two maps in lockstep.

import (
	"hierdet/internal/vclock"
	"hierdet/internal/wire"
)

// rebaser holds one connection's outbound delta state. Owned by the peer's
// writeLoop; reset on every dial.
//
// Bases are keyed by (tenant, origin): with a tenant plane multiplexing many
// detection trees over one connection, origin ids collide across tenants —
// every tree numbers its processes from zero — and chaining tenant A's
// report against tenant B's Hi would corrupt both streams. Single-tenant
// traffic is all tenant 0, where the pair key degenerates to the origin.
type rebaser struct {
	bases map[[2]int]vclock.VC // (tenant, origin) → Hi of the last report sent
	rep   wire.Report          // decode scratch, storage reused across frames
	buf   []byte               // encode scratch, valid until the next rebase call
}

func (e *rebaser) reset() {
	if e.bases == nil {
		e.bases = make(map[[2]int]vclock.VC)
	}
	clear(e.bases)
}

// rebase returns the bytes to put on the wire for frame: a basis-relative
// re-encoding when a basis for the frame's origin stream exists, the frame
// itself otherwise. The returned slice may alias e.buf and is only valid
// until the next call. Frames the rebaser does not understand pass through
// verbatim — the transport moves opaque payloads and compression is strictly
// an optimization.
func (e *rebaser) rebase(frame []byte) []byte {
	if !isAbsoluteV2Report(frame) {
		return frame
	}
	if err := wire.DecodeReportInto(frame, &e.rep, nil); err != nil {
		return frame
	}
	// AppendReportV2 round-trips e.rep.Tenant, so a tenant-tagged frame
	// stays tagged through the basis-relative re-encoding.
	key := [2]int{int(e.rep.Tenant), e.rep.Iv.Origin}
	out := frame
	if basis := e.bases[key]; basis.Len() == e.rep.Iv.Lo.Len() {
		e.buf = wire.AppendReportV2(e.buf[:0], e.rep, basis)
		out = e.buf
	}
	e.bases[key] = append(e.bases[key][:0], e.rep.Iv.Hi...)
	return out
}

// unbaser holds one inbound connection's delta state, mirroring the sending
// writer's rebaser. Owned by a readLoop.
//
// Absolute frames are not decoded here: their raw bytes are stashed and the
// basis they establish is recovered lazily when (if ever) a basis-relative
// frame follows. A sender with delta chaining disabled therefore costs the
// receiver one small copy per frame instead of a decode + re-encode.
type unbaser struct {
	bases   map[[3]int]vclock.VC // (to, tenant, origin) → Hi of the last delta-decoded report
	pending map[[3]int][]byte    // (to, tenant, origin) → raw bytes of the last absolute frame
	rep     wire.Report
	seed    wire.Report
}

// undelta rewrites a basis-relative report frame into an equivalent absolute
// frame (fresh storage, safe to deliver) and maintains the basis chain.
// Frames that are not v2 reports, and absolute v2 reports, pass through
// verbatim. A basis-relative frame whose basis is missing or mismatched
// returns an error: the stream state is unrecoverable, so the caller must
// drop the connection and let the peer redial, which resets both ends' bases.
func (d *unbaser) undelta(to int, payload []byte) ([]byte, error) {
	if !wire.IsReportV2(payload) {
		return payload, nil
	}
	origin, err := wire.ReportOriginV2(payload)
	if err != nil {
		return nil, err
	}
	tenant, err := wire.ReportTenantV2(payload)
	if err != nil {
		return nil, err
	}
	key := [3]int{to, int(tenant), origin}
	if !wire.ReportIsDelta(payload) {
		// An absolute frame resets the origin's chain point: stash its raw
		// bytes (the basis inside is only decoded if a delta frame needs it)
		// and forget any decoded basis, which is now stale.
		if d.pending == nil {
			d.pending = make(map[[3]int][]byte)
		}
		d.pending[key] = append(d.pending[key][:0], payload...)
		delete(d.bases, key)
		return payload, nil
	}
	basis := d.bases[key]
	if basis == nil {
		if raw := d.pending[key]; len(raw) > 0 {
			if err := wire.DecodeReportInto(raw, &d.seed, nil); err != nil {
				return nil, err
			}
			basis = d.seed.Iv.Hi
		}
	}
	if err := wire.DecodeReportInto(payload, &d.rep, basis); err != nil {
		return nil, err
	}
	out := wire.AppendReportV2(make([]byte, 0, wire.ReportSizeV2(d.rep, nil)), d.rep, nil)
	if d.bases == nil {
		d.bases = make(map[[3]int]vclock.VC)
	}
	d.bases[key] = append(d.bases[key][:0], d.rep.Iv.Hi...)
	if raw := d.pending[key]; raw != nil {
		d.pending[key] = raw[:0]
	}
	return out, nil
}

// isAbsoluteV2Report reports whether frame is a v2 report that is not
// already basis-relative — the only kind of frame the writer may rebase.
func isAbsoluteV2Report(frame []byte) bool {
	return wire.IsReportV2(frame) && !wire.ReportIsDelta(frame)
}
