package tcptransport

import (
	"sync"
	"testing"

	"hierdet/internal/interval"
	"hierdet/internal/repair"
	"hierdet/internal/vclock"
	"hierdet/internal/wire"
)

// reportStream builds a near-monotone succession of reports from one origin:
// each interval starts just after the previous one ended — the regime
// Theorem 2 guarantees and the delta chaining exploits.
func reportStream(origin, count, n int) []wire.Report {
	clock := make(vclock.VC, n)
	for c := range clock {
		clock[c] = uint32(1<<21 + c*977) // deep-run components, 3–4 varint bytes
	}
	out := make([]wire.Report, count)
	for i := range out {
		lo := clock.Clone()
		hi := clock.Clone()
		for c := range hi {
			hi[c] += uint32(1 + (i+c)%3)
		}
		clock = hi.Clone()
		clock[origin%n] += 2 // small gap before the next interval
		out[i] = wire.Report{Iv: interval.New(origin, i, lo, hi), LinkSeq: i, Epoch: 1}
	}
	return out
}

// reportSink collects decoded reports, asserting every delivered frame is
// self-contained (absolute): connection-scoped delta encodings must never
// escape the transport.
type reportSink struct {
	t  *testing.T
	mu sync.Mutex
	// got[origin][seq] = report
	got map[int]map[int]wire.Report
}

func (s *reportSink) recv(to int, frame []byte) {
	if wire.ReportIsDelta(frame) {
		s.t.Error("transport delivered a basis-relative frame")
		return
	}
	rep, err := wire.DecodeReport(frame)
	if err != nil {
		s.t.Errorf("delivered frame does not decode: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.got == nil {
		s.got = make(map[int]map[int]wire.Report)
	}
	m := s.got[rep.Iv.Origin]
	if m == nil {
		m = make(map[int]wire.Report)
		s.got[rep.Iv.Origin] = m
	}
	m[rep.Iv.Seq] = rep
}

func (s *reportSink) have(origin, count int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got[origin]) >= count
}

func (s *reportSink) check(t *testing.T, want []wire.Report) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range want {
		g, ok := s.got[w.Iv.Origin][w.Iv.Seq]
		if !ok {
			t.Fatalf("report P%d#%d never arrived", w.Iv.Origin, w.Iv.Seq)
		}
		if !g.Iv.Lo.Equal(w.Iv.Lo) || !g.Iv.Hi.Equal(w.Iv.Hi) || g.LinkSeq != w.LinkSeq || g.Epoch != w.Epoch {
			t.Fatalf("report P%d#%d arrived altered: %+v vs %+v", w.Iv.Origin, w.Iv.Seq, g, w)
		}
	}
}

// TestDeltaChainingShrinksWire sends a near-monotone report stream and
// checks (a) every report arrives intact and absolute, and (b) the payload
// bytes on the wire are a small fraction of the absolute v2 encodings —
// the cross-frame compression actually engaged.
func TestDeltaChainingShrinksWire(t *testing.T) {
	a, b := pair(t)
	sink := &reportSink{t: t}
	if err := a.Start(func(int, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(sink.recv); err != nil {
		t.Fatal(err)
	}
	stream := reportStream(3, 50, 32)
	absolute := 0
	for _, rep := range stream {
		frame := wire.EncodeReportV2(rep)
		absolute += len(frame)
		a.Send(1, frame)
	}
	waitFor(t, "all reports", func() bool { return sink.have(3, len(stream)) })
	sink.check(t, stream)
	if got := a.Stats().BytesOut; got >= absolute/2 {
		t.Fatalf("wire payload %d bytes, want well under half the absolute %d", got, absolute)
	}
}

// TestDeltaChainingSurvivesReconnect severs the connection mid-stream: the
// replayed frames come from the redelivery ring as absolute originals and
// restart the chain, so every report must still arrive intact even though
// both ends threw their bases away.
func TestDeltaChainingSurvivesReconnect(t *testing.T) {
	a, b := pair(t)
	sink := &reportSink{t: t}
	if err := a.Start(func(int, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(sink.recv); err != nil {
		t.Fatal(err)
	}
	// Two interleaved origin streams exercise the per-origin basis keying.
	s3, s5 := reportStream(3, 40, 16), reportStream(5, 40, 16)
	for i := range s3 {
		a.Send(1, wire.EncodeReportV2(s3[i]))
		a.Send(1, wire.EncodeReportV2(s5[i]))
		if i == 13 || i == 27 {
			waitFor(t, "partial delivery", func() bool { return sink.have(3, i) })
			a.DisconnectPeer(1)
		}
	}
	waitFor(t, "all reports", func() bool {
		return sink.have(3, len(s3)) && sink.have(5, len(s5))
	})
	sink.check(t, s3)
	sink.check(t, s5)
	if a.Stats().Redials == 0 {
		t.Fatal("disconnects did not force a redial")
	}
}

// TestMixedTrafficPassesThrough interleaves v1 reports, heartbeats and v2
// reports on one connection: non-v2 frames must pass through byte-identical
// and must not disturb the delta chain.
func TestMixedTrafficPassesThrough(t *testing.T) {
	a, b := pair(t)
	sink := &reportSink{t: t}
	var hbs struct {
		mu sync.Mutex
		n  int
	}
	recv := func(to int, frame []byte) {
		k, err := wire.FrameKind(frame)
		if err != nil {
			t.Errorf("undecodable frame: %v", err)
			return
		}
		if k == wire.KindHeartbeat {
			if _, err := wire.DecodeHeartbeat(frame); err != nil {
				t.Errorf("heartbeat altered in flight: %v", err)
			}
			hbs.mu.Lock()
			hbs.n++
			hbs.mu.Unlock()
			return
		}
		sink.recv(to, frame)
	}
	if err := a.Start(func(int, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(recv); err != nil {
		t.Fatal(err)
	}
	stream := reportStream(2, 30, 8)
	for i, rep := range stream {
		if i%2 == 0 {
			a.Send(1, wire.EncodeReportV2(rep))
		} else {
			v1, err := wire.EncodeReport(rep)
			if err != nil {
				t.Fatal(err)
			}
			a.Send(1, v1)
		}
		a.Send(1, wire.EncodeHeartbeat(wire.Heartbeat{Sender: 2, Epoch: 1, Covered: []int{2}}))
	}
	waitFor(t, "all traffic", func() bool {
		hbs.mu.Lock()
		defer hbs.mu.Unlock()
		return sink.have(2, len(stream)) && hbs.n >= len(stream)
	})
	sink.check(t, stream)
}

// TestUndeltaRejectsOrphanDeltaFrame: a basis-relative frame arriving with
// no chain state (as after a receiver restart) must kill the connection
// rather than misdecode.
func TestUndeltaRejectsOrphanDeltaFrame(t *testing.T) {
	var ub unbaser
	rep := wire.Report{Iv: interval.New(1, 4, vclock.Of(100, 200), vclock.Of(101, 202))}
	orphan := wire.AppendReportV2(nil, rep, vclock.Of(99, 199))
	if _, err := ub.undelta(7, orphan); err == nil {
		t.Fatal("orphan delta frame accepted")
	}
	// After the absolute form seeds the chain, the same delta frame decodes.
	if _, err := ub.undelta(7, wire.AppendReportV2(nil, wire.Report{
		Iv: interval.New(1, 3, vclock.Of(98, 198), vclock.Of(99, 199)),
	}, nil)); err != nil {
		t.Fatal(err)
	}
	out, err := ub.undelta(7, orphan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := wire.DecodeReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Iv.Lo.Equal(rep.Iv.Lo) || !back.Iv.Hi.Equal(rep.Iv.Hi) {
		t.Fatalf("un-deltaed report altered: %+v vs %+v", back, rep)
	}
}

// TestBatchFramesPassThrough: a report-batch frame carries its own
// intra-frame delta chain, so the connection-scoped machinery must treat it
// as opaque on both sides — pass it through verbatim and leave the basis
// maps exactly as they were, or the next single-report frame would decode
// against the wrong chain point.
func TestBatchFramesPassThrough(t *testing.T) {
	stream := reportStream(3, 6, 4)
	reps := make([]repair.Report, len(stream))
	for i, r := range stream {
		reps[i] = repair.Report{Iv: r.Iv, LinkSeq: r.LinkSeq, Epoch: r.Epoch}
	}
	batch := wire.AppendReportBatch(nil, reps)

	var rb rebaser
	rb.reset()
	single0 := wire.EncodeReportV2(stream[0])
	rb.rebase(single0) // establishes a basis for origin 3
	basisBefore := rb.bases[[2]int{0, 3}].Clone()
	if out := rb.rebase(batch); &out[0] != &batch[0] {
		t.Fatal("rebaser re-encoded a batch frame instead of passing it through")
	}
	if !rb.bases[[2]int{0, 3}].Equal(basisBefore) {
		t.Fatalf("rebaser basis moved on a batch frame: %v -> %v", basisBefore, rb.bases[[2]int{0, 3}])
	}
	// A subsequent single report still delta-encodes against the pre-batch
	// basis, and the mirrored unbaser recovers it.
	single1 := wire.EncodeReportV2(stream[1])
	delta := append([]byte(nil), rb.rebase(single1)...)
	if !wire.ReportIsDelta(delta) {
		t.Fatal("chain broke: single report after a batch frame is not a delta")
	}

	var ub unbaser
	if _, err := ub.undelta(0, single0); err != nil {
		t.Fatal(err)
	}
	out, err := ub.undelta(0, batch)
	if err != nil {
		t.Fatalf("unbaser rejected a batch frame: %v", err)
	}
	if &out[0] != &batch[0] {
		t.Fatal("unbaser rewrote a batch frame instead of passing it through")
	}
	back, err := wire.DecodeReportBatch(out)
	if err != nil || len(back) != len(reps) {
		t.Fatalf("batch frame corrupted in transit: %d reports, err %v", len(back), err)
	}
	abs, err := ub.undelta(0, delta)
	if err != nil {
		t.Fatalf("single delta after batch frame failed to undelta: %v", err)
	}
	rep, err := wire.DecodeReport(abs)
	if err != nil || !rep.Iv.Hi.Equal(stream[1].Iv.Hi) {
		t.Fatalf("post-batch single report arrived altered: %+v, err %v", rep, err)
	}
}
