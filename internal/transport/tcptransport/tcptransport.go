// Package tcptransport runs the detector's message plane over real TCP
// sockets: one listener per OS process, one lazily-dialed outbound
// connection per peer process. It implements transport.Transport, so a
// livenet cluster configured with it exchanges the same wire-encoded frames
// as the in-memory runtime — but across process (and machine) boundaries,
// which is the deployment model the paper assumes ("large-scale networks")
// and the repository's north star requires.
//
// # Framing
//
// Connections carry length-prefixed envelopes (big endian):
//
//	envelope := payloadLen u32 | to u32 | payload [payloadLen]byte
//
// `to` is the destination process id — the transport's own addressing, kept
// outside the wire formats so one listener can host several detector nodes.
// payload is one internal/wire frame (report, heartbeat or attach). A reader
// that sees an implausible length (> MaxFrame) treats the stream as corrupt
// and drops the connection; the peer redials.
//
// # Reliability
//
// Sends are asynchronous: Send enqueues and returns, a per-peer writer
// goroutine dials lazily on first use and reconnects with exponential
// backoff (plus jitter) after failures. All frames queued at write time are
// written in one buffered flush — write coalescing, so a burst of reports to
// the same parent costs one syscall. Because a TCP write() success does not
// mean delivery (data buffered in the kernel dies with a reset connection),
// the writer keeps the last RedeliveryWindow frames it wrote and replays
// them after every reconnect. Receivers absorb the duplicates: report
// streams are deduplicated by the per-link resequencers, and the repair
// protocol is idempotent by request id. Frames beyond the window on a
// connection that dies unnoticed are lost — the residual asynchrony the
// paper's lossless-channel assumption hides; deployments needing more can
// layer acknowledgements underneath without touching the detector.
//
// Frames to peers that stay unreachable accumulate up to MaxBacklog and
// then drop oldest-first: messages to a crashed process are lost by the
// model, and the cap keeps a dead peer from holding the sender's memory.
package tcptransport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hierdet/internal/obsv"
	"hierdet/internal/wire"
)

// maxPackBytes caps one tenant batch frame: a run longer than this flushes
// and starts a new batch, keeping any single wire frame far under MaxFrame.
const maxPackBytes = 64 << 10

// Config parameterizes a TCP transport.
type Config struct {
	// Listen is the local listen address ("127.0.0.1:0" picks a free
	// port; read the result back with Addr).
	Listen string
	// Peers is the address book: process id → "host:port". Ids hosted by
	// this process itself need no entry (livenet never routes local
	// traffic through the transport).
	Peers map[int]string
	// DialBackoff is the first reconnect delay after a failed dial or a
	// broken connection; it doubles per consecutive failure up to
	// DialBackoffMax. Defaults: 10ms and 1s.
	DialBackoff, DialBackoffMax time.Duration
	// RedeliveryWindow is how many recently-written frames are replayed
	// after a reconnect (default 64; 0 keeps the default, negative
	// disables replay).
	RedeliveryWindow int
	// MaxBacklog caps the frames queued per peer; beyond it the oldest
	// are dropped (default 4096).
	MaxBacklog int
	// MaxFrame caps the payload length a reader accepts before declaring
	// the stream corrupt (default 1<<24).
	MaxFrame int
	// NoDeltaChain disables cross-frame delta compression of outbound v2
	// report frames (see rebase.go). The chaining trades ~1–2 µs of CPU
	// per report frame on each side for the smallest wire encoding; on
	// links where bandwidth is free (loopback, same-host) that trade can
	// lose, and this knob turns it off. Inbound delta frames are always
	// understood regardless, so the setting is per-process, not
	// per-cluster.
	NoDeltaChain bool
	// Seed drives the reconnect jitter (0 seeds from the listen address).
	Seed int64
}

// Stats is a point-in-time snapshot of the transport's counters.
type Stats struct {
	// FramesOut and FramesIn count frames written and delivered
	// (redeliveries included).
	FramesOut, FramesIn int
	// Redelivered counts frames replayed after a reconnect.
	Redelivered int
	// Dials counts successful dials; Redials the reconnects among them.
	Dials, Redials int
	// BacklogDropped counts frames dropped because a peer's queue
	// overflowed MaxBacklog.
	BacklogDropped int
	// CorruptFrames counts envelopes rejected by a reader.
	CorruptFrames int
	// Flushes counts coalesced writes (one flush may carry many frames).
	Flushes int
	// BytesOut counts payload bytes written (envelope headers excluded),
	// after cross-frame delta compression — the transport's actual wire
	// volume, which the byte-cost experiments compare against the
	// fixed-width v1 framing.
	BytesOut int
	// BytesIn counts payload bytes read (envelope headers excluded, before
	// delta reconstruction) — the inbound counterpart of BytesOut.
	BytesIn int
	// TenantBatchesOut counts tenant batch frames packed by the writers:
	// runs of ≥2 consecutive tenant-tagged frames to the same peer coalesced
	// into one wire frame (see internal/wire tenant batch framing).
	// TenantFramesCoalesced counts the inner frames riding them.
	TenantBatchesOut, TenantFramesCoalesced int
	// TenantBatchesIn counts tenant batch frames unpacked by the readers.
	TenantBatchesIn int
}

// Transport is a running TCP transport. Create with New, wire into a
// cluster (livenet calls Start), tear down with Close.
type Transport struct {
	cfg Config
	ln  net.Listener

	mu     sync.Mutex
	peers  map[int]*peer
	conns  map[net.Conn]bool // accepted connections, for teardown
	recv   func(to int, frame []byte)
	closed bool

	readers sync.WaitGroup
	writers sync.WaitGroup

	framesOut, framesIn, redelivered        atomic.Int64
	dials, redials                          atomic.Int64
	backlogDropped, corruptFrames           atomic.Int64
	flushes, bytesOut, bytesIn              atomic.Int64
	tenantBatchesOut, tenantFramesCoalesced atomic.Int64
	tenantBatchesIn                         atomic.Int64

	// events is the cluster's lifecycle sink, installed by Instrument before
	// Start; nil when the transport runs unobserved. Guarded by mu.
	events func(obsv.Event)
}

// New binds the listener immediately (so Addr is valid before Start) but
// accepts no traffic until Start.
func New(cfg Config) (*Transport, error) {
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 10 * time.Millisecond
	}
	if cfg.DialBackoffMax <= 0 {
		cfg.DialBackoffMax = time.Second
	}
	if cfg.RedeliveryWindow == 0 {
		cfg.RedeliveryWindow = 64
	}
	if cfg.MaxBacklog <= 0 {
		cfg.MaxBacklog = 4096
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = 1 << 24
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("tcptransport: listen %s: %w", cfg.Listen, err)
	}
	if cfg.Seed == 0 {
		for _, b := range []byte(ln.Addr().String()) {
			cfg.Seed = cfg.Seed*131 + int64(b)
		}
	}
	return &Transport{
		cfg:   cfg,
		ln:    ln,
		peers: make(map[int]*peer),
		conns: make(map[net.Conn]bool),
	}, nil
}

// Addr returns the bound listen address (useful with "host:0").
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// SetPeers installs (or replaces) the address book. It exists for
// deployments whose listen addresses are only known after every participant
// has bound ("host:0"): bind all transports with New, exchange Addr values,
// then SetPeers before the first Send. Peers that already have a live writer
// keep the address they were created with.
func (t *Transport) SetPeers(peers map[int]string) {
	t.mu.Lock()
	t.cfg.Peers = peers
	t.mu.Unlock()
}

// Start implements transport.Transport: begin accepting and delivering.
func (t *Transport) Start(recv func(to int, frame []byte)) error {
	t.mu.Lock()
	if t.recv != nil {
		t.mu.Unlock()
		return errors.New("tcptransport: Start called twice")
	}
	t.recv = recv
	t.mu.Unlock()
	t.readers.Add(1)
	go t.acceptLoop()
	return nil
}

// Send implements transport.Transport: enqueue for the peer's writer.
func (t *Transport) Send(to int, frame []byte) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	p := t.peers[to]
	if p == nil {
		addr, ok := t.cfg.Peers[to]
		if !ok {
			t.mu.Unlock()
			return // unknown peer: dropped, like a message to the dead
		}
		p = newPeer(t, to, addr)
		t.peers[to] = p
		t.writers.Add(1)
		go p.writeLoop()
	}
	t.mu.Unlock()
	p.enqueue(append([]byte(nil), frame...))
}

// Stats snapshots the counters.
func (t *Transport) Stats() Stats {
	return Stats{
		FramesOut:      int(t.framesOut.Load()),
		FramesIn:       int(t.framesIn.Load()),
		Redelivered:    int(t.redelivered.Load()),
		Dials:          int(t.dials.Load()),
		Redials:        int(t.redials.Load()),
		BacklogDropped: int(t.backlogDropped.Load()),
		CorruptFrames:  int(t.corruptFrames.Load()),
		Flushes:        int(t.flushes.Load()),
		BytesOut:       int(t.bytesOut.Load()),
		BytesIn:        int(t.bytesIn.Load()),

		TenantBatchesOut:      int(t.tenantBatchesOut.Load()),
		TenantFramesCoalesced: int(t.tenantFramesCoalesced.Load()),
		TenantBatchesIn:       int(t.tenantBatchesIn.Load()),
	}
}

// DisconnectPeer severs the current outbound connection to a peer with a
// hard reset, as a failing network would. The writer notices on its next
// write, reconnects with backoff and replays its redelivery window. A
// fault-injection hook for tests; harmless in production.
func (t *Transport) DisconnectPeer(to int) {
	t.mu.Lock()
	p := t.peers[to]
	t.mu.Unlock()
	if p != nil {
		p.abortConn()
	}
}

// Close implements transport.Transport.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	peers := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()

	t.ln.Close()
	for _, p := range peers {
		p.close()
	}
	for _, c := range conns {
		c.Close()
	}
	t.writers.Wait()
	t.readers.Wait()
	return nil
}

// --- inbound path ---

func (t *Transport) acceptLoop() {
	defer t.readers.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = true
		t.readers.Add(1)
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

func (t *Transport) readLoop(conn net.Conn) {
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		t.readers.Done()
	}()
	var hdr [8]byte
	var ub unbaser      // per-connection delta state, mirroring the sender's
	var inners [][]byte // tenant-batch unpack scratch, reused across frames
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		size := int(binary.BigEndian.Uint32(hdr[:4]))
		to := int(binary.BigEndian.Uint32(hdr[4:]))
		if size > t.cfg.MaxFrame {
			t.corruptFrames.Add(1)
			return // stream corrupt: drop the connection, peer redials
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		t.bytesIn.Add(int64(size))
		if wire.IsTenantBatch(payload) {
			// A packed run of tenant-tagged frames: unpack before the delta
			// stage, so each inner report meets the unbaser in the exact
			// order the sender's rebaser emitted it.
			inners = inners[:0]
			if err := wire.DecodeTenantBatch(payload, func(inner []byte) {
				inners = append(inners, inner)
			}); err != nil {
				t.corruptFrames.Add(1)
				return
			}
			t.tenantBatchesIn.Add(1)
			for _, inner := range inners {
				if !t.deliver(to, inner, &ub) {
					return
				}
			}
			continue
		}
		if !t.deliver(to, payload, &ub) {
			return
		}
	}
}

// deliver runs one frame through the connection's delta state and hands it to
// the receive callback, returning false when the connection must drop
// (corrupt stream state or transport closed).
func (t *Transport) deliver(to int, frame []byte, ub *unbaser) bool {
	frame, err := ub.undelta(to, frame)
	if err != nil {
		// Undecodable stream state (e.g. a basis-relative frame whose basis
		// was lost): same remedy as corruption — drop the connection; the
		// peer redials with reset bases and replays.
		t.corruptFrames.Add(1)
		return false
	}
	t.mu.Lock()
	recv, closed := t.recv, t.closed
	t.mu.Unlock()
	if closed {
		return false
	}
	t.framesIn.Add(1)
	recv(to, frame)
	return true
}

// --- outbound path ---

// peer is one outbound link: a queue, a redelivery ring and a writer
// goroutine that owns the connection.
type peer struct {
	t    *Transport
	id   int
	addr string

	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	closed bool
	done   chan struct{} // closed with the peer, wakes backoff sleeps
	conn   net.Conn      // current connection, for abortConn; owned by writeLoop

	sent    [][]byte     // redelivery ring, most recent last; writeLoop only
	ringLen atomic.Int64 // len(sent), mirrored for scrapes
	rng     *rand.Rand

	// Write-path scratch, owned by writeLoop: the per-connection delta
	// encoder (reset on every dial, so replayed absolute frames restart the
	// chain), the coalescing buffer reused across flushes, and the
	// tenant-batch pack buffer accumulating runs of tenant-tagged frames.
	reb  rebaser
	wbuf []byte
	pbuf []byte
}

func newPeer(t *Transport, id int, addr string) *peer {
	p := &peer{
		t: t, id: id, addr: addr,
		done: make(chan struct{}),
		rng:  rand.New(rand.NewSource(t.cfg.Seed ^ int64(id)<<13)),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *peer) enqueue(frame []byte) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.queue = append(p.queue, frame)
	if over := len(p.queue) - p.t.cfg.MaxBacklog; over > 0 {
		p.queue = p.queue[over:]
		p.t.backlogDropped.Add(int64(over))
	}
	p.cond.Signal()
	p.mu.Unlock()
}

func (p *peer) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.done)
	}
	if p.conn != nil {
		p.conn.Close()
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// abortConn hard-resets the current connection (SO_LINGER 0 ⇒ RST), so even
// kernel-buffered data is lost — the failure mode the redelivery window
// exists for.
func (p *peer) abortConn() {
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	if conn == nil {
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// writeLoop owns the peer's connection: dial lazily with backoff, drain the
// queue in coalesced flushes, replay the redelivery window after reconnects.
func (p *peer) writeLoop() {
	defer p.t.writers.Done()
	var failures int
	dialed := false
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		batch := p.queue
		p.queue = nil
		conn := p.conn
		p.mu.Unlock()

		if conn == nil {
			var err error
			conn, err = net.DialTimeout("tcp", p.addr, time.Second)
			if err != nil {
				p.requeueFront(batch)
				if p.sleepBackoff(&failures) {
					return
				}
				continue
			}
			p.t.dials.Add(1)
			p.reb.reset() // new connection, new stream: bases start over
			if dialed {
				p.t.redials.Add(1)
				p.t.emitRedial(p.id)
				// The previous connection may have died with frames in
				// the kernel buffer: replay the window ahead of new
				// traffic and let the receiver's resequencers dedup.
				if len(p.sent) > 0 {
					replay := append([][]byte(nil), p.sent...)
					batch = append(replay, batch...)
					p.t.redelivered.Add(int64(len(replay)))
				}
			}
			dialed = true
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				conn.Close()
				return
			}
			p.conn = conn
			p.mu.Unlock()
		}

		if err := p.writeBatch(conn, batch); err != nil {
			p.mu.Lock()
			p.conn = nil
			p.mu.Unlock()
			conn.Close()
			p.requeueFront(batch)
			if p.sleepBackoff(&failures) {
				return
			}
			continue
		}
		failures = 0
		p.t.flushes.Add(1)
		p.t.framesOut.Add(int64(len(batch)))
		p.remember(batch)
	}
}

// requeueFront puts an unwritten batch back ahead of anything enqueued since.
func (p *peer) requeueFront(batch [][]byte) {
	p.mu.Lock()
	p.queue = append(batch, p.queue...)
	if over := len(p.queue) - p.t.cfg.MaxBacklog; over > 0 {
		p.queue = p.queue[over:]
		p.t.backlogDropped.Add(int64(over))
	}
	p.mu.Unlock()
}

// sleepBackoff waits the current exponential backoff (with jitter),
// returning true if the peer closed meanwhile.
func (p *peer) sleepBackoff(failures *int) bool {
	d := p.t.cfg.DialBackoff << uint(min(*failures, 20))
	if d > p.t.cfg.DialBackoffMax || d <= 0 {
		d = p.t.cfg.DialBackoffMax
	}
	*failures++
	timer := time.NewTimer(d + time.Duration(p.rng.Int63n(int64(d)/4+1)))
	defer timer.Stop()
	select {
	case <-timer.C:
		return false
	case <-p.done:
		return true
	}
}

// remember appends a written batch to the redelivery ring.
func (p *peer) remember(batch [][]byte) {
	w := p.t.cfg.RedeliveryWindow
	if w <= 0 {
		return
	}
	p.sent = append(p.sent, batch...)
	if over := len(p.sent) - w; over > 0 {
		p.sent = append([][]byte(nil), p.sent[over:]...)
	}
	p.ringLen.Store(int64(len(p.sent)))
}

// writeBatch writes every frame of a batch through one buffered flush,
// delta-rebasing report frames against the connection's stream bases on the
// way. Runs of ≥2 consecutive tenant-tagged frames — the shape a multi-tenant
// plane's traffic takes on a shared link — are packed into one tenant batch
// frame, so the run pays one transport envelope instead of one per frame;
// the default tenant's bare frames are never packed, keeping the
// single-tenant byte stream untouched. The coalescing buffers are reused
// across flushes; the batch itself (the absolute originals) is untouched, so
// requeueFront and the redelivery ring always hold frames any fresh
// connection can decode.
func (p *peer) writeBatch(conn net.Conn, batch [][]byte) error {
	buf := p.wbuf[:0]
	pbuf := p.pbuf[:0]
	var hdr [8]byte
	payloadBytes := 0
	emit := func(f []byte) {
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(f)))
		binary.BigEndian.PutUint32(hdr[4:], uint32(p.id))
		buf = append(buf, hdr[:]...)
		buf = append(buf, f...)
		payloadBytes += len(f)
	}
	// run is the number of tenant-tagged frames accumulated in pbuf (an open
	// tenant batch); firstOff is where the first inner starts, so a run of
	// one can be emitted bare — packing only ever pays for itself.
	run, firstOff := 0, 0
	packedBatches, packedFrames := 0, 0
	flushRun := func() {
		if run >= 2 {
			emit(pbuf)
			packedBatches++
			packedFrames += run
		} else if run == 1 {
			emit(pbuf[firstOff:])
		}
		pbuf = pbuf[:0]
		run = 0
	}
	for _, f := range batch {
		if !p.t.cfg.NoDeltaChain {
			f = p.reb.rebase(f)
		}
		if wire.IsTenantTagged(f) {
			// The rebased frame aliases the rebaser's scratch (valid only
			// until the next rebase call), so it is copied into the pack
			// buffer here and now.
			if run == 0 {
				pbuf = wire.AppendTenantBatchHeader(pbuf)
			}
			pbuf = wire.AppendTenantBatchFrame(pbuf, f)
			run++
			if run == 1 {
				firstOff = len(pbuf) - len(f)
			}
			if len(pbuf) >= maxPackBytes {
				flushRun()
			}
			continue
		}
		flushRun()
		emit(f)
	}
	flushRun()
	p.wbuf = buf
	p.pbuf = pbuf
	_, err := conn.Write(buf)
	if err == nil {
		p.t.bytesOut.Add(int64(payloadBytes))
		p.t.tenantBatchesOut.Add(int64(packedBatches))
		p.t.tenantFramesCoalesced.Add(int64(packedFrames))
	}
	return err
}
