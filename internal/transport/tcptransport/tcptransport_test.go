package tcptransport

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"
)

// pair builds two connected transports on loopback.
func pair(t *testing.T) (a, b *Transport) {
	t.Helper()
	a = mustNew(t, Config{Listen: "127.0.0.1:0"})
	b = mustNew(t, Config{Listen: "127.0.0.1:0"})
	a.cfg.Peers = map[int]string{1: b.Addr()}
	b.cfg.Peers = map[int]string{0: a.Addr()}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func mustNew(t *testing.T, cfg Config) *Transport {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// collector gathers received frames.
type collector struct {
	mu     sync.Mutex
	frames [][]byte
	tos    []int
}

func (c *collector) recv(to int, frame []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, append([]byte(nil), frame...))
	c.tos = append(c.tos, to)
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

// payloads returns the distinct payloads seen, by their trailing u32 tag.
func (c *collector) distinct() map[uint32]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint32]int)
	for _, f := range c.frames {
		out[binary.BigEndian.Uint32(f[len(f)-4:])]++
	}
	return out
}

func frame(tag uint32) []byte {
	buf := make([]byte, 12)
	binary.BigEndian.PutUint32(buf[8:], tag)
	return buf
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSendReceive(t *testing.T) {
	a, b := pair(t)
	var got collector
	if err := a.Start(func(int, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(got.recv); err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		a.Send(1, frame(uint32(i)))
	}
	waitFor(t, "all frames", func() bool { return len(got.distinct()) == n })
	for _, to := range got.tos {
		if to != 1 {
			t.Fatalf("frame addressed to %d, want 1", to)
		}
	}
	// Coalescing: 200 sends racing one writer must not take 200 flushes.
	if st := a.Stats(); st.Flushes >= st.FramesOut {
		t.Logf("flushes %d for %d frames (no coalescing observed; timing-dependent)", st.Flushes, st.FramesOut)
	}
}

// TestLazyDialAndBackoffThenRecover: sends to a peer that is not listening
// yet queue and are delivered once the peer appears — the lazy-dial plus
// exponential-backoff path.
func TestLazyDialAndBackoffThenRecover(t *testing.T) {
	a := mustNew(t, Config{Listen: "127.0.0.1:0", DialBackoff: 2 * time.Millisecond, DialBackoffMax: 20 * time.Millisecond})
	t.Cleanup(func() { a.Close() })
	if err := a.Start(func(int, []byte) {}); err != nil {
		t.Fatal(err)
	}

	// Reserve an address nobody listens on yet.
	probe := mustNew(t, Config{Listen: "127.0.0.1:0"})
	addr := probe.Addr()
	probe.Close()
	a.cfg.Peers = map[int]string{7: addr}

	for i := 0; i < 10; i++ {
		a.Send(7, frame(uint32(i)))
	}
	time.Sleep(30 * time.Millisecond) // let several dial attempts fail

	b := mustNew(t, Config{Listen: addr})
	t.Cleanup(func() { b.Close() })
	var got collector
	if err := b.Start(got.recv); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "queued frames after late listen", func() bool { return len(got.distinct()) == 10 })
}

// TestDisconnectMidStreamRedelivers is the transport half of the
// reconnect-redelivery contract: a hard connection reset mid-stream loses
// kernel-buffered frames, the writer reconnects with backoff and replays
// its redelivery window, and every payload still arrives (some twice — the
// receiver's resequencer owns deduplication, see livenet's redelivery test).
func TestDisconnectMidStreamRedelivers(t *testing.T) {
	a, b := pair(t)
	a.cfg.DialBackoff = time.Millisecond
	a.cfg.DialBackoffMax = 10 * time.Millisecond
	var got collector
	if err := a.Start(func(int, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(got.recv); err != nil {
		t.Fatal(err)
	}

	const total = 400
	for i := 0; i < total; i++ {
		a.Send(1, frame(uint32(i)))
		if i == 100 {
			waitFor(t, "first frames", func() bool { return got.count() > 0 })
			a.DisconnectPeer(1)
		}
		if i%50 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(t, "every payload at least once", func() bool { return len(got.distinct()) == total })

	st := a.Stats()
	if st.Redials == 0 {
		t.Error("no redial recorded after forced disconnect")
	}
	if st.Redelivered == 0 {
		t.Error("no frames replayed after reconnect")
	}
	dup := 0
	for _, n := range got.distinct() {
		if n > 1 {
			dup += n - 1
		}
	}
	t.Logf("redials=%d redelivered=%d duplicates-at-receiver=%d", st.Redials, st.Redelivered, dup)
}

// TestBacklogBounded: frames to a peer that never listens stop accumulating
// at MaxBacklog.
func TestBacklogBounded(t *testing.T) {
	a := mustNew(t, Config{
		Listen: "127.0.0.1:0", MaxBacklog: 32,
		DialBackoff: time.Millisecond, DialBackoffMax: 5 * time.Millisecond,
	})
	t.Cleanup(func() { a.Close() })
	if err := a.Start(func(int, []byte) {}); err != nil {
		t.Fatal(err)
	}
	probe := mustNew(t, Config{Listen: "127.0.0.1:0"})
	dead := probe.Addr()
	probe.Close()
	a.cfg.Peers = map[int]string{3: dead}
	for i := 0; i < 500; i++ {
		a.Send(3, frame(uint32(i)))
	}
	waitFor(t, "backlog drops", func() bool { return a.Stats().BacklogDropped > 0 })
}

// TestCorruptEnvelopeDropsConnection: a reader that sees an implausible
// length drops the stream instead of allocating it.
func TestCorruptEnvelopeDropsConnection(t *testing.T) {
	b := mustNew(t, Config{Listen: "127.0.0.1:0", MaxFrame: 1024})
	t.Cleanup(func() { b.Close() })
	var got collector
	if err := b.Start(got.recv); err != nil {
		t.Fatal(err)
	}
	a := mustNew(t, Config{Listen: "127.0.0.1:0"})
	t.Cleanup(func() { a.Close() })
	a.cfg.Peers = map[int]string{1: b.Addr()}
	if err := a.Start(func(int, []byte) {}); err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, 4096) // over b's MaxFrame
	a.Send(1, huge)
	waitFor(t, "corrupt-frame rejection", func() bool { return b.Stats().CorruptFrames == 1 })
	if got.count() != 0 {
		t.Fatalf("corrupt frame delivered anyway (%d frames)", got.count())
	}
}

// TestCloseQuiesces: after Close returns, no recv runs and Sends are no-ops.
func TestCloseQuiesces(t *testing.T) {
	a, b := pair(t)
	var got collector
	if err := a.Start(func(int, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(got.recv); err != nil {
		t.Fatal(err)
	}
	a.Send(1, frame(1))
	waitFor(t, "one frame", func() bool { return got.count() == 1 })
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	before := got.count()
	a.Send(1, frame(2))
	a.Send(1, frame(3))
	time.Sleep(20 * time.Millisecond)
	if got.count() != before {
		t.Fatalf("frames delivered after Close: %d -> %d", before, got.count())
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	a.Send(1, frame(4)) // must not panic
}

// TestManyPeers routes frames from one hub to many spokes by id.
func TestManyPeers(t *testing.T) {
	const spokes = 8
	hub := mustNew(t, Config{Listen: "127.0.0.1:0"})
	t.Cleanup(func() { hub.Close() })
	hub.cfg.Peers = make(map[int]string)
	cols := make([]*collector, spokes)
	for i := 0; i < spokes; i++ {
		sp := mustNew(t, Config{Listen: "127.0.0.1:0"})
		t.Cleanup(func() { sp.Close() })
		cols[i] = &collector{}
		if err := sp.Start(cols[i].recv); err != nil {
			t.Fatal(err)
		}
		hub.cfg.Peers[i] = sp.Addr()
	}
	if err := hub.Start(func(int, []byte) {}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		for i := 0; i < spokes; i++ {
			hub.Send(i, frame(uint32(round)))
		}
	}
	for i, c := range cols {
		i, c := i, c
		waitFor(t, fmt.Sprintf("spoke %d", i), func() bool { return c.count() == 20 })
	}
}
