package tcptransport

import (
	"bytes"
	"testing"

	"hierdet/internal/wire"
)

// TestTenantStreamsChainIndependently interleaves two tenants' report
// streams — same origin ids, different clocks — through one rebaser/unbaser
// pair, the shape one shared connection sees under a tenant plane. Every
// tenant's chain must stay intact: interleaving must not break the delta
// encoding (frames after the first still compress) and must decode back to
// exactly the frames sent, with tags preserved.
func TestTenantStreamsChainIndependently(t *testing.T) {
	const origin, count, n = 2, 8, 6
	streams := map[uint32][]wire.Report{
		0: reportStream(origin, count, n),
		7: reportStream(origin, count, n),
		9: reportStream(origin, count, n),
	}
	// Distinct clocks per tenant so a cross-tenant basis mix-up cannot
	// accidentally produce the right bytes.
	for tenant, reps := range streams {
		for i := range reps {
			reps[i].Tenant = tenant
			for c := range reps[i].Iv.Lo {
				reps[i].Iv.Lo[c] += tenant * 131071
				reps[i].Iv.Hi[c] += tenant * 131071
			}
		}
	}

	var rb rebaser
	rb.reset()
	var ub unbaser
	deltas := 0
	for i := 0; i < count; i++ {
		for _, tenant := range []uint32{0, 7, 9} { // interleave round-robin
			sent := wire.EncodeReportV2(streams[tenant][i])
			onWire := append([]byte(nil), rb.rebase(sent)...)
			if i > 0 && !wire.ReportIsDelta(onWire) {
				t.Fatalf("tenant %d frame %d did not chain", tenant, i)
			}
			if wire.ReportIsDelta(onWire) {
				deltas++
				if tn, err := wire.ReportTenantV2(onWire); err != nil || tn != tenant {
					t.Fatalf("rebase lost the tenant tag: %d, %v", tn, err)
				}
			}
			got, err := ub.undelta(0, onWire)
			if err != nil {
				t.Fatalf("tenant %d frame %d: %v", tenant, i, err)
			}
			if !bytes.Equal(got, sent) {
				t.Fatalf("tenant %d frame %d corrupted through the chain", tenant, i)
			}
		}
	}
	if deltas != 3*(count-1) {
		t.Fatalf("chained %d frames, want %d", deltas, 3*(count-1))
	}

	// Tenant envelopes are opaque to the chain on both sides, like batch
	// frames: pass-through, bases untouched.
	env := wire.AppendTenantEnvelope(nil, 7, wire.EncodeHeartbeat(wire.Heartbeat{Sender: 1, Epoch: 1}))
	key := [2]int{7, origin}
	before := rb.bases[key].Clone()
	if out := rb.rebase(env); &out[0] != &env[0] {
		t.Fatal("rebaser rewrote a tenant envelope")
	}
	if !rb.bases[key].Equal(before) {
		t.Fatal("rebaser basis moved on a tenant envelope")
	}
	if out, err := ub.undelta(0, env); err != nil || &out[0] != &env[0] {
		t.Fatalf("unbaser rewrote a tenant envelope: %v", err)
	}
}
