// Package transport defines the pluggable message plane of the live runtime.
//
// The detector's processes exchange three kinds of control messages —
// interval reports, heartbeats and reattachment-protocol frames, all
// wire-encoded by internal/wire — and a Transport moves those frames between
// processes, addressed by process id. internal/livenet owns everything above
// this line (resequencing, epochs, the credit-ledger lifecycle); a Transport
// owns everything below it (connections, framing, retries).
//
// Two implementations ship with the repository:
//
//   - the in-memory channel plumbing inside internal/livenet itself, used
//     when every node lives in one OS process (the default, and what the
//     simulator-parity tests exercise), plus this package's Network, which
//     connects several livenet clusters *in one process* through the real
//     frame path — the deterministic testbed for distributed mode;
//   - internal/transport/tcptransport, which runs each node as its own OS
//     process over real sockets.
//
// Delivery contract: best-effort, at-least-once, per-peer FIFO not required.
// A transport may redeliver a frame after a reconnect (the receiver's
// resequencers deduplicate) and drops frames addressed to dead or unknown
// peers — exactly the paper's asynchronous message-passing model, where
// messages to a crashed process are lost.
package transport

// Transport moves opaque wire-encoded frames between detector processes.
// Implementations must make Send safe for concurrent use; Start's receive
// callback may be invoked concurrently from multiple goroutines.
type Transport interface {
	// Send ships one frame to process `to`, asynchronously and
	// best-effort: it must not block on a slow or dead peer. Frames to
	// unknown peers are silently dropped. Send must not retain frame after
	// it returns (copy if queuing is needed): callers encode through pooled
	// scratch buffers and recycle them the moment Send returns.
	Send(to int, frame []byte)
	// Start begins delivery: every frame addressed to a process hosted
	// behind this transport is handed to recv together with the addressed
	// process id. Start is called exactly once, before any Send.
	Start(recv func(to int, frame []byte)) error
	// Close tears the transport down. When Close returns, no recv callback
	// is running or will run again, and subsequent Sends are no-ops.
	Close() error
}
