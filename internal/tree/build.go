package tree

import (
	"fmt"
	"math/rand"
)

// Balanced builds a complete d-ary tree of height h in heap layout: node 0
// is the root and the children of node i are d·i+1 … d·i+d. It contains
// (d^(h+1)−1)/(d−1) nodes; the paper's analysis approximates this as
// n = d^h. Balanced panics for d < 2 or h < 0.
func Balanced(d, h int) *Topology {
	if d < 2 {
		panic(fmt.Sprintf("tree: Balanced needs degree ≥ 2, got %d", d))
	}
	if h < 0 {
		panic(fmt.Sprintf("tree: negative height %d", h))
	}
	n := 1
	levelSize := 1
	for i := 0; i < h; i++ {
		levelSize *= d
		n += levelSize
	}
	return BalancedN(n, d)
}

// BalancedN builds a d-ary heap-layout tree over exactly n nodes: the
// children of node i are d·i+1 … d·i+d (those that exist). This gives a
// balanced tree for any n, which the sweep experiments use to hit exact
// network sizes.
func BalancedN(n, d int) *Topology {
	if d < 1 {
		panic(fmt.Sprintf("tree: BalancedN needs degree ≥ 1, got %d", d))
	}
	t := New(n)
	for i := 1; i < n; i++ {
		t.SetParent(i, (i-1)/d)
	}
	return t
}

// BalancedSize returns the number of nodes in a complete d-ary tree of
// height h — the n of a Balanced(d, h) topology.
func BalancedSize(d, h int) int {
	n := 1
	levelSize := 1
	for i := 0; i < h; i++ {
		levelSize *= d
		n += levelSize
	}
	return n
}

// Chain builds a path 0 → 1 → … → n−1 rooted at 0 (degree 1, height n−1) —
// the degenerate worst case for hierarchy depth.
func Chain(n int) *Topology {
	t := New(n)
	for i := 1; i < n; i++ {
		t.SetParent(i, i-1)
	}
	return t
}

// Star builds a root with n−1 direct children (height 1). Running the
// hierarchical algorithm on a star is exactly the centralized configuration
// the paper contrasts with (h ≤ 2 ⇒ "essentially … centralized").
func Star(n int) *Topology {
	t := New(n)
	for i := 1; i < n; i++ {
		t.SetParent(i, 0)
	}
	return t
}

// Random builds a random tree over n nodes where each non-root node picks a
// uniformly random parent among lower-numbered nodes, rejecting parents that
// already have maxDegree children. It is deterministic for a given seed.
func Random(n, maxDegree int, seed int64) *Topology {
	if maxDegree < 1 {
		panic(fmt.Sprintf("tree: Random needs maxDegree ≥ 1, got %d", maxDegree))
	}
	r := rand.New(rand.NewSource(seed))
	t := New(n)
	for i := 1; i < n; i++ {
		// Collect eligible parents; i−1 candidates, at least one of which
		// has spare capacity because a full d-ary tree over i nodes always
		// has a node with fewer than maxDegree children.
		var eligible []int
		for p := 0; p < i; p++ {
			if len(t.children[p]) < maxDegree {
				eligible = append(eligible, p)
			}
		}
		t.SetParent(i, eligible[r.Intn(len(eligible))])
	}
	return t
}
