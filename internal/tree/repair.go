package tree

// MarkFailed records the crash of node id without repairing: the node is
// detached from its parent, its children become roots of orphan subtrees,
// and the node is marked dead. It returns the partial change set and the
// orphan list. The oracle repair (Fail) builds on it; the distributed
// reattachment protocol (internal/monitor, DistributedRepair) mirrors its
// own attach decisions onto the topology after calling MarkFailed.
func (t *Topology) MarkFailed(id int) (ChangeSet, []int) {
	t.checkAlive(id)
	cs := ChangeSet{Failed: id, ParentOfFailed: t.parent[id]}
	if p := t.parent[id]; p != None {
		t.children[p] = removeInt(t.children[p], id)
		t.parent[id] = None
	}
	orphans := append([]int(nil), t.children[id]...)
	t.children[id] = nil
	for _, o := range orphans {
		t.parent[o] = None
	}
	t.alive[id] = false
	return cs, orphans
}

// Fail marks node id dead, detaches it from the spanning forest, and repairs
// the forest per the paper's §III-F:
//
//   - the failed node's parent simply loses that child (and its queue);
//   - every subtree rooted at a child of the failed node reattaches through
//     any member node that has a live neighbour outside the subtree —
//     re-rooting the subtree at that member when it is not the subtree's
//     root — preferring shallow attachment points for balance;
//   - subtrees with no surviving link to the rest of the network become
//     independent detection trees (network partitions), listed in
//     ChangeSet.PartitionRoots. If the failed node was the root, the first
//     orphan seeds the new main tree the same way.
//
// The returned ChangeSet records every parent change in application order so
// the monitor runtime can replay it onto the detector nodes.
func (t *Topology) Fail(id int) ChangeSet {
	cs, orphans := t.MarkFailed(id)

	// Established components: everything hanging off a root that is not one
	// of the fresh orphans.
	inTree := make(map[int]bool)
	orphanSet := make(map[int]bool, len(orphans))
	for _, o := range orphans {
		orphanSet[o] = true
	}
	for _, r := range t.Roots() {
		if !orphanSet[r] {
			for _, x := range t.Subtree(r) {
				inTree[x] = true
			}
		}
	}

	unattached := orphans
	for len(unattached) > 0 {
		// Attach as many orphan subtrees to the established components as
		// possible; each success may enable further attachments.
		progress := true
		for progress {
			progress = false
			for i := 0; i < len(unattached); i++ {
				o := unattached[i]
				members := t.Subtree(o)
				u, v := t.findAttachPoint(members, inTree)
				if u == None {
					continue
				}
				t.attachSubtree(o, u, v, id, &cs)
				for _, x := range members {
					inTree[x] = true
				}
				unattached = append(unattached[:i], unattached[i+1:]...)
				progress = true
				i--
			}
		}
		if len(unattached) == 0 {
			break
		}
		// No orphan can reach the established components: the first
		// remaining orphan seeds a new partition (or, if the old root died
		// and nothing was established, the new main tree), and the loop
		// retries the rest against it.
		seed := unattached[0]
		unattached = unattached[1:]
		cs.Reparented = append(cs.Reparented, Reparent{Node: seed, OldParent: id, NewParent: None})
		cs.PartitionRoots = append(cs.PartitionRoots, seed)
		for _, x := range t.Subtree(seed) {
			inTree[x] = true
		}
	}
	return cs
}

// findAttachPoint searches the subtree members (in DFS order, so the subtree
// root is preferred and no re-rooting is needed when it qualifies) for a
// node u with a live neighbour v inside the established set. Among v
// candidates it picks the shallowest, breaking ties by id, to keep the
// repaired tree balanced and the choice deterministic. Returns (None, None)
// if the subtree is disconnected from the established set.
func (t *Topology) findAttachPoint(members []int, inTree map[int]bool) (u, v int) {
	for _, m := range members {
		best, bestDepth := None, -1
		for _, nb := range t.Neighbors(m) {
			if !inTree[nb] {
				continue
			}
			d := t.Depth(nb)
			if best == None || d < bestDepth || (d == bestDepth && nb < best) {
				best, bestDepth = nb, d
			}
		}
		if best != None {
			return m, best
		}
	}
	return None, None
}

// attachSubtree re-roots the subtree currently rooted at o so that u becomes
// its root, then attaches u under v, recording every parent change. When
// u == o no re-rooting is needed.
func (t *Topology) attachSubtree(o, u, v, failed int, cs *ChangeSet) {
	if u == o {
		t.SetParent(o, v)
		cs.Reparented = append(cs.Reparented, Reparent{Node: o, OldParent: failed, NewParent: v})
		return
	}
	// Path from u up to the subtree root o; re-rooting reverses every edge
	// on it.
	path := []int{u}
	for x := t.parent[u]; ; x = t.parent[x] {
		path = append(path, x)
		if x == o {
			break
		}
	}
	oldParent := make(map[int]int, len(path))
	for _, x := range path {
		oldParent[x] = t.parent[x]
	}
	oldParent[o] = failed
	for _, x := range path {
		if t.parent[x] != None {
			t.SetParent(x, None)
		}
	}
	for i := 0; i+1 < len(path); i++ {
		t.SetParent(path[i+1], path[i])
		cs.Reparented = append(cs.Reparented, Reparent{Node: path[i+1], OldParent: oldParent[path[i+1]], NewParent: path[i]})
	}
	t.SetParent(u, v)
	cs.Reparented = append(cs.Reparented, Reparent{Node: u, OldParent: oldParent[u], NewParent: v})
}
