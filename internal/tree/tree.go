// Package tree maintains the pre-constructed spanning tree the hierarchical
// detection algorithm runs on, together with the underlying communication
// graph (the (P, L) of the system model) that constrains how the tree can be
// repaired after a node failure.
//
// The paper assumes the spanning tree exists and, on a failure, that each
// orphaned subtree "will reconnect itself to the system-wide spanning tree by
// establishing a link between a node in the subtree and its neighbor which is
// still in the spanning tree" (§III-F). This package implements exactly that
// repair: orphan subtrees attach through any member node with a live
// neighbour outside the subtree (re-rooting the subtree at that member when
// necessary), and subtrees with no such link become independent detection
// trees — the algorithm keeps detecting the partial predicate within each
// partition.
package tree

import (
	"fmt"
	"sort"
)

// None marks the absence of a parent (the node is a root).
const None = -1

// Topology is a spanning forest (usually a single tree) over the alive nodes
// of a fixed id space 0..n-1, plus the neighbour graph used for repairs.
// Topology is not safe for concurrent use; the monitor runtime serializes
// access.
type Topology struct {
	n        int
	parent   map[int]int
	children map[int][]int
	alive    map[int]bool
	// neighbors is the underlying communication graph. Nil means a complete
	// graph (every pair of processes shares a link — a wired network).
	neighbors map[int]map[int]bool
}

// Reparent records one parent change during a repair: Node's parent went
// from OldParent to NewParent (None if Node became a root).
type Reparent struct {
	Node, OldParent, NewParent int
}

// ChangeSet describes the surgery a failure caused, in the exact order the
// parent-pointer changes were applied. The monitor runtime replays it onto
// the detector nodes: every OldParent drops a queue, every NewParent gains
// one.
type ChangeSet struct {
	Failed int
	// ParentOfFailed is the failed node's former parent (None if it was a
	// root); that parent must drop the failed child's queue.
	ParentOfFailed int
	// Reparented lists every node whose parent changed, in application order.
	Reparented []Reparent
	// PartitionRoots lists roots of subtrees that could not reattach and now
	// operate as independent detection trees.
	PartitionRoots []int
}

// New returns a topology over ids 0..n-1 with all nodes alive and no edges;
// callers either use a builder (Balanced, Chain, Star, Random) or wire
// parents explicitly with SetParent.
func New(n int) *Topology {
	if n <= 0 {
		panic(fmt.Sprintf("tree: invalid size %d", n))
	}
	t := &Topology{
		n:        n,
		parent:   make(map[int]int, n),
		children: make(map[int][]int, n),
		alive:    make(map[int]bool, n),
	}
	for i := 0; i < n; i++ {
		t.parent[i] = None
		t.alive[i] = true
	}
	return t
}

// N returns the size of the id space (including failed nodes).
func (t *Topology) N() int { return t.n }

// Validate checks the forest invariants: parent/children maps agree, no
// dead node appears in the forest, no cycles, and every alive node belongs
// to exactly one tree. Tests call it after every repair.
func (t *Topology) Validate() error {
	seen := make(map[int]bool)
	for _, root := range t.Roots() {
		for _, x := range t.Subtree(root) {
			if !t.alive[x] {
				return fmt.Errorf("tree: dead node %d reachable from root %d", x, root)
			}
			if seen[x] {
				return fmt.Errorf("tree: node %d reachable twice", x)
			}
			seen[x] = true
		}
	}
	for i := 0; i < t.n; i++ {
		if t.alive[i] && !seen[i] {
			return fmt.Errorf("tree: alive node %d unreachable from any root (cycle or corruption)", i)
		}
		if p := t.parent[i]; t.alive[i] && p != None {
			found := false
			for _, c := range t.children[p] {
				if c == i {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("tree: node %d has parent %d but is not among its children", i, p)
			}
		}
	}
	for p, kids := range t.children {
		for _, c := range kids {
			if t.parent[c] != p {
				return fmt.Errorf("tree: child list of %d names %d whose parent is %d", p, c, t.parent[c])
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the topology; mutating one (e.g. through
// failure repair) leaves the other untouched.
func (t *Topology) Clone() *Topology {
	c := &Topology{
		n:        t.n,
		parent:   make(map[int]int, len(t.parent)),
		children: make(map[int][]int, len(t.children)),
		alive:    make(map[int]bool, len(t.alive)),
	}
	for k, v := range t.parent {
		c.parent[k] = v
	}
	for k, v := range t.children {
		c.children[k] = append([]int(nil), v...)
	}
	for k, v := range t.alive {
		c.alive[k] = v
	}
	if t.neighbors != nil {
		c.neighbors = make(map[int]map[int]bool, len(t.neighbors))
		for a, m := range t.neighbors {
			cm := make(map[int]bool, len(m))
			for b, v := range m {
				cm[b] = v
			}
			c.neighbors[a] = cm
		}
	}
	return c
}

// SetParent wires node under parent (parent == None detaches node into a
// root). It panics on dead or out-of-range nodes and on edges that would
// create a cycle.
func (t *Topology) SetParent(node, parent int) {
	t.checkAlive(node)
	if parent != None {
		t.checkAlive(parent)
		if node == parent || t.InSubtree(parent, node) {
			panic(fmt.Sprintf("tree: edge %d→%d would create a cycle", parent, node))
		}
	}
	if old := t.parent[node]; old != None {
		t.children[old] = removeInt(t.children[old], node)
	}
	t.parent[node] = parent
	if parent != None {
		t.children[parent] = append(t.children[parent], node)
	}
}

// Parent returns node's parent, or None.
func (t *Topology) Parent(node int) int { return t.parent[node] }

// Children returns node's children in attachment order.
func (t *Topology) Children(node int) []int {
	return append([]int(nil), t.children[node]...)
}

// Alive reports whether node has not failed.
func (t *Topology) Alive(node int) bool { return t.alive[node] }

// AliveNodes returns all alive node ids, ascending.
func (t *Topology) AliveNodes() []int {
	out := make([]int, 0, t.n)
	for i := 0; i < t.n; i++ {
		if t.alive[i] {
			out = append(out, i)
		}
	}
	return out
}

// Roots returns the roots of the spanning forest, ascending: normally one,
// more after an unrepairable partition.
func (t *Topology) Roots() []int {
	var out []int
	for i := 0; i < t.n; i++ {
		if t.alive[i] && t.parent[i] == None {
			out = append(out, i)
		}
	}
	return out
}

// IsLeaf reports whether node has no children.
func (t *Topology) IsLeaf(node int) bool { return len(t.children[node]) == 0 }

// Depth returns the number of edges from node to its root.
func (t *Topology) Depth(node int) int {
	d := 0
	for p := t.parent[node]; p != None; p = t.parent[p] {
		d++
	}
	return d
}

// Height returns the maximum depth across alive nodes (0 for a single node).
func (t *Topology) Height() int {
	h := 0
	for i := 0; i < t.n; i++ {
		if t.alive[i] {
			if d := t.Depth(i); d > h {
				h = d
			}
		}
	}
	return h
}

// Degree returns the maximum number of children of any alive node — the d of
// the paper's complexity analysis.
func (t *Topology) Degree() int {
	d := 0
	for i := 0; i < t.n; i++ {
		if t.alive[i] && len(t.children[i]) > d {
			d = len(t.children[i])
		}
	}
	return d
}

// InSubtree reports whether node lies in the subtree rooted at root.
func (t *Topology) InSubtree(node, root int) bool {
	for x := node; x != None; x = t.parent[x] {
		if x == root {
			return true
		}
	}
	return false
}

// Subtree returns the nodes of the subtree rooted at root (root included),
// in DFS order.
func (t *Topology) Subtree(root int) []int {
	var out []int
	var dfs func(int)
	dfs = func(x int) {
		out = append(out, x)
		for _, c := range t.children[x] {
			dfs(c)
		}
	}
	dfs(root)
	return out
}

// Route returns the tree path from a to b (both ends included): up from a to
// the lowest common ancestor, then down to b. The number of edges on the
// path — len(route)−1 — is the hop cost the centralized algorithm pays to
// ship an interval from a to the sink b (paper §IV-A).
func (t *Topology) Route(a, b int) []int {
	upA := t.pathToRoot(a)
	upB := t.pathToRoot(b)
	depth := make(map[int]int, len(upA))
	for i, x := range upA {
		depth[x] = i
	}
	lca := -1
	lcaIdxB := -1
	for i, x := range upB {
		if _, ok := depth[x]; ok {
			lca = x
			lcaIdxB = i
			break
		}
	}
	if lca == -1 {
		return nil // different components
	}
	route := append([]int(nil), upA[:depth[lca]+1]...)
	for i := lcaIdxB - 1; i >= 0; i-- {
		route = append(route, upB[i])
	}
	return route
}

func (t *Topology) pathToRoot(x int) []int {
	var out []int
	for ; x != None; x = t.parent[x] {
		out = append(out, x)
	}
	return out
}

// --- neighbour graph ---

// UseCompleteGraph declares every pair of processes linked (the default).
func (t *Topology) UseCompleteGraph() { t.neighbors = nil }

// UseTreeLinksOnly restricts the communication graph to the current tree
// edges. Failures then partition unless extra links are added.
func (t *Topology) UseTreeLinksOnly() {
	t.neighbors = make(map[int]map[int]bool, t.n)
	for c, p := range t.parent {
		if p != None {
			t.addLink(c, p)
		}
	}
}

// AddLink inserts an undirected communication link. It implicitly switches
// the topology to an explicit neighbour graph if it was complete.
func (t *Topology) AddLink(a, b int) {
	if t.neighbors == nil {
		t.UseTreeLinksOnly()
	}
	t.addLink(a, b)
}

func (t *Topology) addLink(a, b int) {
	if a == b {
		panic(fmt.Sprintf("tree: self-link at %d", a))
	}
	if t.neighbors[a] == nil {
		t.neighbors[a] = make(map[int]bool)
	}
	if t.neighbors[b] == nil {
		t.neighbors[b] = make(map[int]bool)
	}
	t.neighbors[a][b] = true
	t.neighbors[b][a] = true
}

// Linked reports whether processes a and b share a communication link.
func (t *Topology) Linked(a, b int) bool {
	if a == b {
		return false
	}
	if t.neighbors == nil {
		return true
	}
	return t.neighbors[a][b]
}

// Neighbors returns a's alive neighbours, ascending.
func (t *Topology) Neighbors(a int) []int {
	var out []int
	if t.neighbors == nil {
		for i := 0; i < t.n; i++ {
			if i != a && t.alive[i] {
				out = append(out, i)
			}
		}
		return out
	}
	for b := range t.neighbors[a] {
		if t.alive[b] {
			out = append(out, b)
		}
	}
	sort.Ints(out)
	return out
}

func (t *Topology) checkAlive(node int) {
	if node < 0 || node >= t.n {
		panic(fmt.Sprintf("tree: node %d out of range [0,%d)", node, t.n))
	}
	if !t.alive[node] {
		panic(fmt.Sprintf("tree: node %d is dead", node))
	}
}

func removeInt(s []int, x int) []int {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
