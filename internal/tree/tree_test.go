package tree

import (
	"math/rand"
	"testing"
)

func TestBalancedShape(t *testing.T) {
	// Complete binary tree of height 2: 7 nodes.
	tp := Balanced(2, 2)
	if tp.N() != 7 {
		t.Fatalf("N = %d, want 7", tp.N())
	}
	if got := BalancedSize(2, 2); got != 7 {
		t.Fatalf("BalancedSize = %d", got)
	}
	if tp.Height() != 2 || tp.Degree() != 2 {
		t.Fatalf("height %d degree %d, want 2, 2", tp.Height(), tp.Degree())
	}
	if roots := tp.Roots(); len(roots) != 1 || roots[0] != 0 {
		t.Fatalf("Roots = %v", roots)
	}
	kids := tp.Children(0)
	if len(kids) != 2 || kids[0] != 1 || kids[1] != 2 {
		t.Fatalf("Children(0) = %v", kids)
	}
	for _, leaf := range []int{3, 4, 5, 6} {
		if !tp.IsLeaf(leaf) {
			t.Errorf("node %d should be a leaf", leaf)
		}
	}
	if tp.IsLeaf(1) {
		t.Error("node 1 should not be a leaf")
	}
}

func TestBalancedNHandlesAnySize(t *testing.T) {
	for n := 1; n <= 64; n++ {
		tp := BalancedN(n, 3)
		if len(tp.Roots()) != 1 {
			t.Fatalf("n=%d: roots = %v", n, tp.Roots())
		}
		if tp.Degree() > 3 {
			t.Fatalf("n=%d: degree %d > 3", n, tp.Degree())
		}
		// Every node reaches the root.
		for i := 0; i < n; i++ {
			if !tp.InSubtree(i, 0) {
				t.Fatalf("n=%d: node %d detached", n, i)
			}
		}
	}
}

func TestChainAndStar(t *testing.T) {
	c := Chain(5)
	if c.Height() != 4 || c.Degree() != 1 {
		t.Fatalf("chain: height %d degree %d", c.Height(), c.Degree())
	}
	s := Star(5)
	if s.Height() != 1 || s.Degree() != 4 {
		t.Fatalf("star: height %d degree %d", s.Height(), s.Degree())
	}
}

func TestRandomTreeRespectsDegree(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tp := Random(40, 3, seed)
		if tp.Degree() > 3 {
			t.Fatalf("seed %d: degree %d > 3", seed, tp.Degree())
		}
		if len(tp.Roots()) != 1 {
			t.Fatalf("seed %d: forest, want tree", seed)
		}
	}
	// Determinism.
	a, b := Random(30, 2, 42), Random(30, 2, 42)
	for i := 0; i < 30; i++ {
		if a.Parent(i) != b.Parent(i) {
			t.Fatal("Random not deterministic for equal seeds")
		}
	}
}

func TestDepthSubtreeRoute(t *testing.T) {
	tp := Balanced(2, 3) // 15 nodes
	if tp.Depth(0) != 0 || tp.Depth(7) != 3 {
		t.Fatalf("depths: %d %d", tp.Depth(0), tp.Depth(7))
	}
	sub := tp.Subtree(1)
	want := map[int]bool{1: true, 3: true, 4: true, 7: true, 8: true, 9: true, 10: true}
	if len(sub) != len(want) {
		t.Fatalf("Subtree(1) = %v", sub)
	}
	for _, x := range sub {
		if !want[x] {
			t.Fatalf("unexpected member %d in %v", x, sub)
		}
	}
	// Route leaf 7 → leaf 13 goes through the root.
	r := tp.Route(7, 13)
	wantRoute := []int{7, 3, 1, 0, 2, 6, 13}
	if len(r) != len(wantRoute) {
		t.Fatalf("Route = %v, want %v", r, wantRoute)
	}
	for i := range r {
		if r[i] != wantRoute[i] {
			t.Fatalf("Route = %v, want %v", r, wantRoute)
		}
	}
	// Route to self.
	if r := tp.Route(4, 4); len(r) != 1 || r[0] != 4 {
		t.Fatalf("Route(4,4) = %v", r)
	}
	// Hop count from leaf to root equals depth (centralized cost model).
	if hops := len(tp.Route(7, 0)) - 1; hops != 3 {
		t.Fatalf("hops = %d, want 3", hops)
	}
}

func TestSetParentCycleDetection(t *testing.T) {
	tp := Chain(3) // 0→1→2
	defer func() {
		if recover() == nil {
			t.Error("cycle edge did not panic")
		}
	}()
	tp.SetParent(0, 2)
}

func TestNeighborGraphs(t *testing.T) {
	tp := Balanced(2, 2)
	// Default: complete graph.
	if !tp.Linked(3, 6) {
		t.Error("complete graph should link 3–6")
	}
	if tp.Linked(3, 3) {
		t.Error("self-link reported")
	}
	tp.UseTreeLinksOnly()
	if tp.Linked(3, 6) {
		t.Error("tree-only graph should not link leaves in different subtrees")
	}
	if !tp.Linked(3, 1) {
		t.Error("tree edge missing from tree-only graph")
	}
	tp.AddLink(3, 6)
	if !tp.Linked(3, 6) {
		t.Error("AddLink did not take")
	}
	nb := tp.Neighbors(3)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 6 {
		t.Fatalf("Neighbors(3) = %v", nb)
	}
}

func TestFailLeaf(t *testing.T) {
	tp := Balanced(2, 2)
	cs := tp.Fail(3)
	if cs.ParentOfFailed != 1 || len(cs.Reparented) != 0 || len(cs.PartitionRoots) != 0 {
		t.Fatalf("leaf failure changeset: %+v", cs)
	}
	if tp.Alive(3) {
		t.Error("failed node still alive")
	}
	if kids := tp.Children(1); len(kids) != 1 || kids[0] != 4 {
		t.Fatalf("Children(1) = %v", kids)
	}
}

func TestFailInternalNodeReattachesChildren(t *testing.T) {
	tp := Balanced(2, 2) // 0; 1,2; 3,4,5,6
	cs := tp.Fail(1)     // orphans 3 and 4
	if cs.ParentOfFailed != 0 {
		t.Fatalf("ParentOfFailed = %d", cs.ParentOfFailed)
	}
	if len(cs.PartitionRoots) != 0 {
		t.Fatalf("unexpected partitions: %v", cs.PartitionRoots)
	}
	if len(cs.Reparented) != 2 {
		t.Fatalf("Reparented = %+v, want 2 entries", cs.Reparented)
	}
	// Complete graph + shallowest-preferred: both orphans attach to root 0.
	for _, o := range []int{3, 4} {
		if tp.Parent(o) != 0 {
			t.Errorf("Parent(%d) = %d, want 0", o, tp.Parent(o))
		}
	}
	if got := len(tp.Roots()); got != 1 {
		t.Fatalf("roots = %d, want 1", got)
	}
}

func TestFailRootPromotesOrphan(t *testing.T) {
	tp := Balanced(2, 2)
	cs := tp.Fail(0)
	if cs.ParentOfFailed != None {
		t.Fatalf("ParentOfFailed = %d, want None", cs.ParentOfFailed)
	}
	roots := tp.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %v, want exactly one", roots)
	}
	if len(cs.PartitionRoots) != 1 || cs.PartitionRoots[0] != roots[0] {
		t.Fatalf("PartitionRoots = %v, roots = %v", cs.PartitionRoots, roots)
	}
	// All 6 survivors connected under the new root.
	if got := len(tp.Subtree(roots[0])); got != 6 {
		t.Fatalf("new tree size = %d, want 6", got)
	}
}

func TestFailPartitionsWithSparseGraph(t *testing.T) {
	// Chain 0→1→2 with tree-only links: failing 1 strands 2.
	tp := Chain(3)
	tp.UseTreeLinksOnly()
	cs := tp.Fail(1)
	if len(cs.PartitionRoots) != 1 || cs.PartitionRoots[0] != 2 {
		t.Fatalf("PartitionRoots = %v, want [2]", cs.PartitionRoots)
	}
	roots := tp.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots = %v, want two partitions", roots)
	}
}

func TestFailRerootsSubtreeThroughInnerLink(t *testing.T) {
	// 0→1→2→3 chain; only extra link is 3–0. Failing 1 orphans the subtree
	// {2,3}, whose only path back is through node 3: the subtree must
	// re-root at 3 and attach under 0, making 2 a child of 3.
	tp := Chain(4)
	tp.UseTreeLinksOnly()
	tp.AddLink(3, 0)
	cs := tp.Fail(1)
	if len(cs.PartitionRoots) != 0 {
		t.Fatalf("partitioned: %v", cs.PartitionRoots)
	}
	if tp.Parent(3) != 0 {
		t.Fatalf("Parent(3) = %d, want 0", tp.Parent(3))
	}
	if tp.Parent(2) != 3 {
		t.Fatalf("Parent(2) = %d, want 3 (edge reversed)", tp.Parent(2))
	}
	// Changeset order: the reversal (2 under 3) must be recorded along with
	// the attachment (3 under 0).
	if len(cs.Reparented) != 2 {
		t.Fatalf("Reparented = %+v", cs.Reparented)
	}
}

func TestFailOrphanSubtreesMergeIntoOnePartition(t *testing.T) {
	// Star with tree-only links plus a link between two leaves: failing the
	// hub leaves leaves 1,2 linked to each other and 3 isolated.
	tp := Star(4)
	tp.UseTreeLinksOnly()
	tp.AddLink(1, 2)
	cs := tp.Fail(0)
	roots := tp.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots = %v, want 2 (merged pair + singleton)", roots)
	}
	if len(cs.PartitionRoots) != 2 {
		t.Fatalf("PartitionRoots = %v", cs.PartitionRoots)
	}
	// 1 and 2 share a component.
	same := tp.InSubtree(2, 1) || tp.InSubtree(1, 2)
	if !same {
		t.Error("linked orphans did not merge")
	}
}

func TestSequentialFailures(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		tp := Random(30, 3, int64(trial))
		alive := 30
		for k := 0; k < 10; k++ {
			nodes := tp.AliveNodes()
			victim := nodes[r.Intn(len(nodes))]
			tp.Fail(victim)
			alive--
			// Invariants: forest consistent, all alive nodes in some tree.
			seen := 0
			for _, root := range tp.Roots() {
				for _, x := range tp.Subtree(root) {
					if !tp.Alive(x) {
						t.Fatalf("dead node %d in tree", x)
					}
					seen++
				}
			}
			if seen != alive {
				t.Fatalf("trial %d: %d nodes in forest, %d alive", trial, seen, alive)
			}
			// Parent/children maps agree.
			for _, x := range tp.AliveNodes() {
				if p := tp.Parent(x); p != None {
					found := false
					for _, c := range tp.Children(p) {
						if c == x {
							found = true
						}
					}
					if !found {
						t.Fatalf("child list of %d missing %d", p, x)
					}
				}
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := Balanced(2, 2)
	orig.UseTreeLinksOnly()
	orig.AddLink(3, 6)
	cp := orig.Clone()
	cp.Fail(1)
	if !orig.Alive(1) {
		t.Fatal("Fail on clone affected the original")
	}
	if orig.Parent(3) != 1 {
		t.Fatal("repair on clone reparented the original")
	}
	if !cp.Linked(3, 6) || !orig.Linked(3, 6) {
		t.Fatal("neighbour graph not cloned")
	}
	// Complete-graph clone keeps nil neighbours.
	full := Balanced(2, 1)
	if c := full.Clone(); !c.Linked(1, 2) {
		t.Fatal("complete-graph clone lost links")
	}
}

func TestUseCompleteGraphReset(t *testing.T) {
	tp := Balanced(2, 1)
	tp.UseTreeLinksOnly()
	if tp.Linked(1, 2) {
		t.Fatal("siblings linked under tree-only graph")
	}
	tp.UseCompleteGraph()
	if !tp.Linked(1, 2) {
		t.Fatal("UseCompleteGraph did not restore links")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	tp := Balanced(2, 2)
	if err := tp.Validate(); err != nil {
		t.Fatalf("fresh tree invalid: %v", err)
	}
	// Corrupt: detach node 3 into its own root; still a valid forest.
	tp.SetParent(3, None)
	if err := tp.Validate(); err != nil {
		t.Fatalf("forest invalid: %v", err)
	}
}

func TestValidationPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"size":       func() { New(0) },
		"balanced-d": func() { Balanced(1, 2) },
		"balanced-h": func() { Balanced(2, -1) },
		"random-deg": func() { Random(5, 0, 1) },
		"dead":       func() { tp := New(3); tp.Fail(1); tp.Fail(1) },
		"range":      func() { New(3).SetParent(5, 0) },
		"self-link":  func() { New(3).AddLink(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
