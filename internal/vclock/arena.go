package vclock

import "sync"

// Arena is a shared chunk source many Stores can draw from. A Store used
// alone makes its own chunks and strands whatever tail its final chunk never
// carves; with hundreds of tenants × hundreds of nodes each owning a Store,
// those tails add up to real memory. An Arena centralizes the chunk supply:
// Stores carve their (geometrically growing) chunks out of large shared
// slabs under one mutex, so the stranded tail exists once per slab instead
// of once per store.
//
// The mutex guards only the slab bump pointer — the carved chunks themselves
// are handed off exclusively to one Store, which stays single-goroutine
// exactly as before. Clocks carved from a slab keep the slab alive until
// every one of them is unreachable, so an Arena is best shared by stores
// with similar lifetimes (the tenant plane's clusters qualify: tenants come
// and go, but the plane outlives them all and slabs recycle through GC).
type Arena struct {
	mu   sync.Mutex
	slab []uint32
	off  int
}

// arenaSlabWords is the shared slab size: 256 KiB of uint32s, matching the
// largest chunk a solo Store grows to.
const arenaSlabWords = (256 * 1024) / 4

// NewArena returns an empty shared chunk source.
func NewArena() *Arena { return &Arena{} }

// carve hands out a zeroed chunk of the given word count. Requests near (or
// beyond) the slab size get their own allocation — splitting them across
// slabs would defeat the contiguity the flat clock layout exists for.
func (a *Arena) carve(words int) []uint32 {
	if words >= arenaSlabWords/2 {
		return make([]uint32, words)
	}
	a.mu.Lock()
	if a.off+words > len(a.slab) {
		a.slab = make([]uint32, arenaSlabWords)
		a.off = 0
	}
	out := a.slab[a.off : a.off+words : a.off+words]
	a.off += words
	a.mu.Unlock()
	return out
}
